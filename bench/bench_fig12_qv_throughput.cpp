// Figure 12: measured memory throughput in three tiers of the hierarchy
// (L1<->L2, GPU memory, NVLink-C2C) for the naturally oversubscribed
// Quantum Volume simulation (paper: 34 qubits ~ 130 % oversubscription;
// scaled: 21 qubits against 24 MiB HBM), in three managed configurations:
// 4 KiB pages, 4 KiB pages + explicit prefetch, 64 KiB pages.
//
// Paper shape: with managed 4 KiB, no page is migrated during compute —
// everything streams over NVLink-C2C at low bandwidth, throttling the
// L1<->L2 data rate. The explicit-prefetch optimization migrates data back
// into GPU memory, so most L1<->L2 throughput is fed from GPU memory and
// the rate rises sharply. 64 KiB pages accelerate eviction/migration
// (58 % faster migration phase).

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

struct Variant {
  const char* name;
  std::uint64_t page;
  bool prefetch;
};

}  // namespace

int main() {
  bs::print_figure_header(
      "Figure 12", "QV 130% oversubscription: per-tier throughput (managed)",
      "managed 4k: C2C-throttled L1L2 rate; +prefetch: mostly fed from GPU "
      "memory, much higher L1L2 rate; 64k: faster migration");

  const std::uint32_t qubits = 21;  // paper 34: ~130 % of scaled HBM
  const Variant variants[] = {
      {"managed_4k", pagetable::kSystemPage4K, false},
      {"managed_4k_prefetch", pagetable::kSystemPage4K, true},
      {"managed_64k", pagetable::kSystemPage64K, false},
  };

  std::printf("%-20s %12s %14s %14s %14s\n", "variant", "compute_ms",
              "l1l2_GBps", "gpumem_GBps", "c2c_GBps");
  for (const auto& v : variants) {
    core::System sys{bs::qv_config(v.page, false)};
    runtime::Runtime rt{sys};
    apps::QvConfig cfg = bs::qv_sim_config(bs::Scale::kDefault, qubits);
    cfg.prefetch_opt = v.prefetch;
    const auto r = apps::run_qvsim(rt, apps::MemMode::kManaged, cfg);

    const double s = r.times.compute_s;
    const auto& t = r.compute_traffic;
    const double l1l2 = static_cast<double>(t.l1l2_bytes) / s / 1e9;
    const double gpumem =
        static_cast<double>(t.hbm_read_bytes + t.hbm_write_bytes) / s / 1e9;
    const double c2c = static_cast<double>(t.c2c_read_bytes + t.c2c_write_bytes +
                                           t.migration_h2d_bytes +
                                           t.migration_d2h_bytes) /
                       s / 1e9;
    std::printf("%-20s %12.3f %14.1f %14.1f %14.1f\n", v.name, s * 1e3, l1l2,
                gpumem, c2c);
    std::printf("data\tfig12\t%s\t%g\t%g\t%g\n", v.name, l1l2, gpumem, c2c);
  }
  return 0;
}
