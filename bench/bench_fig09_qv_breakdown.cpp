// Figure 9: initialization/computation time breakdown of the largest
// in-memory Quantum Volume simulation (paper: 33 qubits; scaled: 20) for
// 4 KiB and 64 KiB system pages, in the system and managed versions.
//
// Paper shape: managed barely cares about the system page size (~10 %
// faster at 64 KiB). System memory is dominated by GPU-side first-touch
// initialization: 64 KiB pages cut the initialization ~5x and overall
// runtime ~2.9x, while computation time stays stable across page sizes.

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

int main() {
  bs::print_figure_header(
      "Figure 9", "init/compute breakdown, largest in-memory QV run",
      "system: init 5x faster and total ~2.9x faster at 64 KiB, compute "
      "stable; managed: ~10% effect only");

  const std::uint32_t qubits = 20;  // paper 33
  std::printf("%-9s %-6s %12s %12s %12s\n", "mode", "page", "init_ms",
              "compute_ms", "total_ms");
  double sys_init[2] = {0, 0}, sys_total[2] = {0, 0};
  int idx = 0;
  for (apps::MemMode mode : {apps::MemMode::kSystem, apps::MemMode::kManaged}) {
    idx = 0;
    for (const auto page : {pagetable::kSystemPage4K, pagetable::kSystemPage64K}) {
      core::System sys{bs::qv_config(page, false)};
      runtime::Runtime rt{sys};
      const auto r =
          apps::run_qvsim(rt, mode, bs::qv_sim_config(bs::Scale::kDefault, qubits));
      std::printf("%-9s %-6s %12.3f %12.3f %12.3f\n",
                  std::string{to_string(mode)}.c_str(),
                  page == pagetable::kSystemPage4K ? "4k" : "64k",
                  r.times.gpu_init_s * 1e3, r.times.compute_s * 1e3,
                  r.times.reported_total_s() * 1e3);
      std::printf("data\tfig09\t%s\t%s\t%g\t%g\n",
                  std::string{to_string(mode)}.c_str(),
                  page == pagetable::kSystemPage4K ? "4k" : "64k",
                  r.times.gpu_init_s * 1e3, r.times.compute_s * 1e3);
      if (mode == apps::MemMode::kSystem) {
        sys_init[idx] = r.times.gpu_init_s;
        sys_total[idx] = r.times.reported_total_s();
      }
      ++idx;
    }
  }
  bs::print_metric("fig09.system_init_speedup_64k", sys_init[0] / sys_init[1], "x");
  bs::print_metric("fig09.system_total_speedup_64k", sys_total[0] / sys_total[1],
                   "x");
  std::printf("paper: init ~5x, total ~2.9x\n");
  return 0;
}
