// Figure 5: memory usage over time in the Quantum Volume simulation,
// system vs managed.
//
// Paper shape: the end-to-end run is much longer with system memory, but
// the difference is concentrated in the initialization phase — GPU memory
// ramps *slowly* in the system version (replayable-fault-limited GPU
// first touch) and jumps to peak almost immediately in the managed version
// (2 MiB GPU-block first touch). Computation phases look alike.
//
// With --trace <path>, the system-mode run additionally records the full
// event log, the link monitor, and causal spans, and dumps an enriched
// Chrome trace (open in chrome://tracing or https://ui.perfetto.dev); the
// slow first-touch ramp is directly visible as a dense fault band there.

#include <cstdio>
#include <cstring>
#include <string>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "profile/trace_export.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace <file>]\n", argv[0]);
      return 2;
    }
  }

  bs::print_figure_header(
      "Figure 5", "Quantum Volume memory usage over time (system vs managed)",
      "system: slow GPU ramp during init, long end-to-end; managed: GPU "
      "usage peaks immediately; computation phases similar");

  const std::uint32_t qubits = 20;  // paper 33: largest that fits GPU memory
  for (apps::MemMode mode : {apps::MemMode::kSystem, apps::MemMode::kManaged}) {
    core::SystemConfig cfg = bs::qv_config(pagetable::kSystemPage64K, false);
    cfg.profiler_enabled = true;
    cfg.profiler_period = sim::microseconds(100);
    const bool dump_trace = !trace_path.empty() && mode == apps::MemMode::kSystem;
    if (dump_trace) {
      cfg.event_log = true;
      cfg.link_monitor = true;
    }
    core::System sys{cfg};
    runtime::Runtime rt{sys};
    const auto r =
        apps::run_qvsim(rt, mode, bs::qv_sim_config(bs::Scale::kDefault, qubits));
    sys.profiler().mark();

    std::printf("\n-- %s version: gpu_init=%.3f ms compute=%.3f ms --\n",
                std::string{to_string(mode)}.c_str(), r.times.gpu_init_s * 1e3,
                r.times.compute_s * 1e3);
    const auto& samples = sys.profiler().samples();
    std::printf("data\tfig05_%s\ttime_ms\tcpu_rss_mib\tgpu_used_mib\n",
                std::string{to_string(mode)}.c_str());
    const std::size_t step = samples.size() > 40 ? samples.size() / 40 : 1;
    for (std::size_t i = 0; i < samples.size(); i += step) {
      const auto& s = samples[i];
      std::printf("data\tfig05_%s\t%.3f\t%.2f\t%.2f\n",
                  std::string{to_string(mode)}.c_str(), sim::to_milliseconds(s.time),
                  static_cast<double>(s.cpu_rss_bytes) / (1 << 20),
                  static_cast<double>(s.gpu_used_bytes) / (1 << 20));
    }

    if (dump_trace) {
      sys.link_monitor().stop();
      profile::TraceOptions topts;
      topts.link_samples = &sys.link_monitor().samples();
      const std::string trace =
          profile::to_chrome_trace(sys.events(), sys.workload(), topts);
      if (std::FILE* f = std::fopen(trace_path.c_str(), "w")) {
        std::fwrite(trace.data(), 1, trace.size(), f);
        std::fclose(f);
        std::printf("wrote Chrome trace: %s (%zu bytes)\n", trace_path.c_str(),
                    trace.size());
      } else {
        std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        return 1;
      }
    }
  }
  return 0;
}
