// Figure 10: per-iteration execution time (top) and memory traffic
// (bottom) over the 12-iteration SRAD computation, for the system version
// (access-counter migration enabled, 64 KiB pages) and the managed version.
//
// Paper shape — managed: iteration 1 is much slower (on-demand migration),
// all reads come from GPU memory even during iteration 1 (pages are
// migrated first, then read locally). System: three sub-phases — a slow
// first iteration (GPU first-touch + remote reads), iterations 2-4 with
// decreasing time as access counters migrate the working set (C2C reads
// shrink while GPU-memory reads grow), and stable iterations 5+ that beat
// managed. No GPU->CPU migration ever triggers.

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "profile/tracer.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

int main() {
  bs::print_figure_header(
      "Figure 10", "SRAD per-iteration time and traffic (12 iterations)",
      "managed: iter1 spike then flat, local reads throughout; system: "
      "ramp down over iters 1-4 as counters migrate, then beats managed; "
      "C2C reads -> 0 as GPU reads stabilize");

  apps::SradConfig cfg = bs::srad_config(bs::Scale::kDefault);
  cfg.iterations = 12;

  for (apps::MemMode mode : {apps::MemMode::kManaged, apps::MemMode::kSystem}) {
    core::SystemConfig mc =
        bs::rodinia_config(pagetable::kSystemPage64K, /*access_counters=*/true);
    // Finer counter-region granularity (configurable 64 KiB - 16 MiB on real
    // hardware) so the scaled working set spans enough regions for the
    // driver's rate-limited queue to produce the paper's multi-iteration
    // migration ramp.
    mc.counter_region_bytes = 256ull << 10;
    mc.counter_min_interval = sim::microseconds(10);
    mc.counter_migrations_per_kernel = 1;
    mc.event_log = true;
    core::System sys{mc};
    runtime::Runtime rt{sys};
    const auto r = apps::run_srad(rt, mode, cfg);

    std::printf("\n-- %s version --\n", std::string{to_string(mode)}.c_str());
    std::printf("%-5s %12s %14s %14s %14s\n", "iter", "time_ms", "gpu_read_mib",
                "c2c_read_mib", "migrated_mib");
    for (std::size_t i = 0; i < r.iteration_s.size(); ++i) {
      const auto& t = r.iteration_traffic[i];
      std::printf("%-5zu %12.4f %14.3f %14.3f %14.3f\n", i + 1,
                  r.iteration_s[i] * 1e3,
                  static_cast<double>(t.hbm_read_bytes) / (1 << 20),
                  static_cast<double>(t.c2c_read_bytes) / (1 << 20),
                  static_cast<double>(t.migration_h2d_bytes) / (1 << 20));
      std::printf("data\tfig10_%s\t%zu\t%g\t%g\t%g\n",
                  std::string{to_string(mode)}.c_str(), i + 1,
                  r.iteration_s[i] * 1e3,
                  static_cast<double>(t.hbm_read_bytes) / (1 << 20),
                  static_cast<double>(t.c2c_read_bytes) / (1 << 20));
    }
    profile::Tracer tracer{sys.events()};
    const auto s = tracer.summarize();
    std::printf("notifications=%zu migr_h2d=%.1f MiB migr_d2h=%.1f MiB "
                "(paper: no D2H migration for system)\n",
                s.counter_notifications,
                static_cast<double>(s.migrated_h2d_bytes) / (1 << 20),
                static_cast<double>(s.migrated_d2h_bytes) / (1 << 20));
  }
  return 0;
}
