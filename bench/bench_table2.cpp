// Table 2: the application suite — name, access pattern, paper input and
// the scaled reproduction input, plus the *measured* peak GPU footprint of
// each scaled app (which is what the oversubscription rig divides by).

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

int main() {
  bs::print_figure_header("Table 2", "applications, access patterns, inputs",
                          "six apps: qiskit (mixed), needle (irregular), "
                          "pathfinder (regular), bfs (mixed), hotspot (regular), "
                          "srad (irregular)");
  std::printf("%-12s %-10s %-18s %-18s %s\n", "app", "pattern", "paper_input",
              "scaled_input", "peak_gpu_mib");

  struct Meta {
    const char* name;
    const char* pattern;
    const char* paper;
    std::string scaled;
  };
  const auto hs = bs::hotspot_config(bs::Scale::kDefault);
  const auto pf = bs::pathfinder_config(bs::Scale::kDefault);
  const auto nd = bs::needle_config(bs::Scale::kDefault);
  const auto bf = bs::bfs_config(bs::Scale::kDefault);
  const auto sr = bs::srad_config(bs::Scale::kDefault);
  const Meta meta[] = {
      {"qiskit", "mixed", "30-34 qubits", "17-21 qubits"},
      {"needle", "irregular", "32k x 32k", std::to_string(nd.n) + " x " + std::to_string(nd.n)},
      {"pathfinder", "regular", "100k x 20k", std::to_string(pf.cols) + " x " + std::to_string(pf.rows)},
      {"bfs", "mixed", "16M nodes", std::to_string(bf.nodes) + " nodes"},
      {"hotspot", "regular", "16k x 16k", std::to_string(hs.rows) + " x " + std::to_string(hs.cols)},
      {"srad", "irregular", "20k x 20k", std::to_string(sr.rows) + " x " + std::to_string(sr.cols)},
  };

  for (const auto& m : meta) {
    double peak_mib = 0;
    if (std::string{m.name} == "qiskit") {
      const auto peak = bs::measure_peak_gpu(
          bs::qv_config(pagetable::kSystemPage64K, false), [](runtime::Runtime& rt) {
            return apps::run_qvsim(rt, apps::MemMode::kExplicit,
                                   bs::qv_sim_config(bs::Scale::kDefault, 17));
          });
      peak_mib = static_cast<double>(peak) / (1 << 20);
    } else {
      for (const auto& app : bs::rodinia_apps()) {
        if (app.name != m.name) continue;
        const auto peak = bs::measure_peak_gpu(
            bs::rodinia_config(pagetable::kSystemPage64K, false),
            [&](runtime::Runtime& rt) {
              return app.run(rt, apps::MemMode::kExplicit, bs::Scale::kDefault);
            });
        peak_mib = static_cast<double>(peak) / (1 << 20);
      }
    }
    std::printf("%-12s %-10s %-18s %-18s %8.1f\n", m.name, m.pattern, m.paper,
                m.scaled.c_str(), peak_mib);
  }
  return 0;
}
