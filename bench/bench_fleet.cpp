// Fleet fault-domain bench (DESIGN.md Section 11). A node-kill storm is
// driven over a 4-node simulated superchip fleet (+1 spare) serving an
// open-loop stream of prioritized, deadlined requests over the six-app
// catalog. Mid-stream, one node is killed outright, one is degraded (and
// live-migrated onto the spare), and a second node is killed — the fleet
// must degrade instead of collapsing. Three gates, all enforced (nonzero
// exit on any violation):
//
//   (a) bit-for-bit reproducibility: two complete runs of the storm
//       produce identical fleet digests (per-node event-log digests +
//       every job's terminal record + the metrics exposition), and the
//       arrival generator emits an identical 2000-request stream twice;
//   (b) replay equivalence: every job that survives the storm — including
//       jobs live-migrated off the degraded node and jobs replayed after
//       losing theirs — finishes with the output checksum of its
//       uninterrupted solo run;
//   (c) SLO preservation: zero violations among top-priority (class 0)
//       jobs; lower classes absorb the capacity loss via shedding,
//       deadline cancellation, and queueing.
//
// Flags:
//   --smoke       small problem sizes (the ctest "perf" smoke target)
//   --out <file>  output JSON path (default BENCH_fleet.json)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "fleet/arrival.hpp"
#include "fleet/controller.hpp"
#include "tenant/scheduler.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

core::SystemConfig node_config() {
  core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, false);
  cfg.event_log = true;
  return cfg;
}

/// The fleet's job catalog: the five Rodinia apps plus the quantum-volume
/// simulator, all in managed mode (the mode that survives co-located
/// memory pressure by eviction instead of failing).
std::vector<fleet::JobTemplate> catalog(bs::Scale s) {
  const apps::MemMode m = apps::MemMode::kManaged;
  std::vector<fleet::JobTemplate> out;
  const auto add = [&](std::string name, std::uint64_t footprint,
                       std::function<apps::AppCoro(runtime::Runtime&)> make) {
    fleet::JobTemplate t;
    t.name = std::move(name);
    t.mode = m;
    t.make = std::move(make);
    t.footprint_bytes = footprint;
    out.push_back(std::move(t));
  };
  add("hotspot", 2ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::hotspot_steps(rt, m, bs::hotspot_config(s));
  });
  add("pathfinder", 1ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::pathfinder_steps(rt, m, bs::pathfinder_config(s));
  });
  add("needle", 4ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::needle_steps(rt, m, bs::needle_config(s));
  });
  add("bfs", 2ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::bfs_steps(rt, m, bs::bfs_config(s));
  });
  add("srad", 4ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::srad_steps(rt, m, bs::srad_config(s));
  });
  add("qvsim", 8ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::qvsim_steps(rt, m, bs::qv_sim_config(s, 16));
  });
  return out;
}

/// Uninterrupted solo runs of one template on a fresh node: the first
/// incarnation's checksum is gate (b)'s reference, and the *marginal*
/// cost of the second and third back-to-back runs (one-time GPU context
/// init amortized away) is the predicted cost the load-balance policy,
/// the deadline generator, and the offered-load calculation consume.
void measure_solo(fleet::JobTemplate& t) {
  core::System sys{node_config()};
  tenant::SchedulerConfig scfg;
  scfg.policy = tenant::Policy::kFifo;
  tenant::Scheduler sched{sys, scfg};
  const auto spec = [&] {
    tenant::JobSpec s;
    s.name = t.name;
    s.mode = t.mode;
    s.make = t.make;
    s.footprint_bytes = t.footprint_bytes;
    return s;
  };
  tenant::TenantId first = tenant::kNoTenant;
  tenant::TenantId last = tenant::kNoTenant;
  (void)sched.submit(spec(), &first);
  (void)sched.submit(spec(), nullptr);
  (void)sched.submit(spec(), &last);
  sched.run_all();
  t.solo_checksum = sched.job(first).report.checksum;
  t.est_cost = std::max<sim::Picos>(
      1, (sched.job(last).finished_at - sched.job(first).finished_at) / 2);
}

struct StormResult {
  std::uint64_t digest = 0;
  std::uint64_t finished = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  std::uint64_t migrated = 0;
  std::uint64_t replayed = 0;
  std::uint64_t checksum_mismatches = 0;
  std::vector<fleet::SloSummary> classes;
  std::vector<fleet::NodeStatus> nodes;
  std::uint64_t node_losses = 0;
  std::uint64_t evacuations = 0;
  sim::Picos makespan = 0;
};

StormResult run_storm(const fleet::FleetConfig& cfg,
                      const std::vector<fleet::JobTemplate>& templates,
                      const std::vector<fleet::JobRequest>& requests,
                      std::uint32_t classes) {
  fleet::Controller ctl{cfg, templates};
  (void)ctl.run(requests);

  StormResult r;
  r.digest = ctl.digest();
  for (const fleet::FleetJob& j : ctl.jobs()) {
    if (j.state == fleet::FleetJobState::kFinished) {
      ++r.finished;
      if (j.migrated) ++r.migrated;
      if (j.replayed_after_loss) ++r.replayed;
      if (j.checksum != templates[j.req.tmpl].solo_checksum) {
        ++r.checksum_mismatches;
      }
    } else if (j.state == fleet::FleetJobState::kFailed) {
      ++r.failed;
    }
    r.makespan = std::max(r.makespan, j.finished_at);
  }
  for (std::uint32_t c = 0; c < classes; ++c) {
    r.classes.push_back(ctl.slo_summary(c));
  }
  for (const fleet::FleetJob& j : ctl.jobs()) {
    if (!j.slo_violation || j.req.priority != 0) continue;
    std::printf("  violator job=%llu tmpl=%s arrival=%.3f placed=%.3f "
                "finished=%.3f deadline=%.3f state=%s status=%s "
                "placements=%u losses=%u%s%s\n",
                static_cast<unsigned long long>(j.req.id),
                templates[j.req.tmpl].name.c_str(),
                sim::to_milliseconds(j.req.arrival),
                sim::to_milliseconds(j.first_placed_at),
                sim::to_milliseconds(j.finished_at),
                sim::to_milliseconds(j.req.deadline),
                std::string{to_string(j.state)}.c_str(),
                std::string{to_string(j.status)}.c_str(), j.placements,
                j.loss_attempts, j.migrated ? " migrated" : "",
                j.replayed_after_loss ? " replayed" : "");
  }
  r.nodes = ctl.node_status();
  r.shed = ctl.metrics().counter("ghum_fleet_shed_total").value();
  r.node_losses = ctl.metrics().counter("ghum_fleet_node_losses_total").value();
  r.evacuations = ctl.metrics().counter("ghum_fleet_evacuations_total").value();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bs::Scale scale = bs::Scale::kDefault;
  std::string out_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      scale = bs::Scale::kSmall;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <file>]\n", argv[0]);
      return 2;
    }
  }

  bs::print_figure_header(
      "Fleet", "node-kill storm over a simulated superchip fleet",
      "4 nodes + 1 spare serve an open-loop prioritized stream through two "
      "node losses and one degradation-with-live-migration; the fleet must "
      "be bit-for-bit reproducible, replay-equivalent, and keep the top "
      "class violation-free");

  std::size_t failures = 0;

  // Solo reference pass: per-template cost + checksum.
  std::vector<fleet::JobTemplate> templates = catalog(scale);
  std::printf("solo reference runs\n");
  std::printf("%-12s %12s %12s %18s\n", "app", "cost_ms", "foot_mib",
              "solo_checksum");
  sim::Picos mean_cost = 0;
  for (fleet::JobTemplate& t : templates) {
    measure_solo(t);
    mean_cost += t.est_cost;
    std::printf("%-12s %12.3f %12.1f   %016llx\n", t.name.c_str(),
                sim::to_milliseconds(t.est_cost),
                static_cast<double>(t.footprint_bytes) / (1 << 20),
                static_cast<unsigned long long>(t.solo_checksum));
  }
  mean_cost /= static_cast<sim::Picos>(templates.size());

  // Open-loop arrival stream: offered load ~1.0 of the 4-node fleet, so
  // nodes stay busy (faults catch jobs mid-flight) and losing half the
  // fleet mid-storm overloads the survivors — the admission controller
  // has real work to do.
  fleet::ArrivalConfig acfg;
  acfg.count = scale == bs::Scale::kSmall ? 48 : 240;
  acfg.mean_interarrival = mean_cost / 4;
  acfg.priority_classes = 3;
  acfg.class_weights = {1, 2, 3};
  acfg.deadline_floor = sim::milliseconds(64);
  acfg.top_replicas = 2;
  const std::vector<fleet::JobRequest> requests =
      fleet::generate_arrivals(acfg, templates);

  // Gate (a1): the generator itself is deterministic at scale — two
  // 2000-request streams must be identical.
  {
    fleet::ArrivalConfig big = acfg;
    big.count = 2000;
    const auto s1 = fleet::generate_arrivals(big, templates);
    const auto s2 = fleet::generate_arrivals(big, templates);
    bool same = s1.size() == s2.size();
    for (std::size_t i = 0; same && i < s1.size(); ++i) {
      same = s1[i].arrival == s2[i].arrival && s1[i].tmpl == s2[i].tmpl &&
             s1[i].priority == s2[i].priority &&
             s1[i].deadline == s2[i].deadline &&
             s1[i].replicas == s2[i].replicas;
    }
    if (!same) {
      ++failures;
      std::fprintf(stderr, "  arrival stream NOT deterministic\n");
    }
    std::printf("arrival determinism (2000 requests): %s\n",
                same ? "ok" : "FAIL");
  }

  // The storm: kill node 1, degrade node 0 (live migration to the spare),
  // kill node 2 — survivors are node 3 and the migrated spare.
  const sim::Picos horizon =
      acfg.mean_interarrival * static_cast<sim::Picos>(acfg.count);
  fleet::FleetConfig fcfg;
  fcfg.nodes = 4;
  fcfg.spares = 1;
  fcfg.node_config = node_config();
  fcfg.scheduler.policy = tenant::Policy::kPriority;
  fcfg.placement = fleet::PlacementPolicy::kLoadBalance;
  fcfg.node_footprint_budget = 24ull << 20;
  fcfg.shed_protect_classes = 1;
  fcfg.replace_max_retries = 6;
  fcfg.replace_backoff = sim::milliseconds(2);
  fcfg.faults.node_loss = {{.time = (horizon * 3) / 10, .node = 1},
                           {.time = (horizon * 7) / 10, .node = 2}};
  fcfg.faults.node_degrade = {
      {.time = horizon / 2, .node = 0, .slow_factor = 4}};
  fcfg.faults.evacuate_degraded = true;

  std::printf("\nnode-kill storm: %llu requests over %u nodes (+%u spare), "
              "losses at %.1f/%.1f ms, degrade at %.1f ms\n",
              static_cast<unsigned long long>(acfg.count), fcfg.nodes,
              fcfg.spares, sim::to_milliseconds(fcfg.faults.node_loss[0].time),
              sim::to_milliseconds(fcfg.faults.node_loss[1].time),
              sim::to_milliseconds(fcfg.faults.node_degrade[0].time));

  const StormResult a =
      run_storm(fcfg, templates, requests, acfg.priority_classes);
  const StormResult b =
      run_storm(fcfg, templates, requests, acfg.priority_classes);

  // Gate (a2): bit-for-bit storm reproducibility.
  const bool repro_ok = a.digest == b.digest;
  if (!repro_ok) {
    ++failures;
    std::fprintf(stderr, "  storm NOT reproducible: %016llx vs %016llx\n",
                 static_cast<unsigned long long>(a.digest),
                 static_cast<unsigned long long>(b.digest));
  }
  // Gate (b): replay equivalence of every survivor.
  const bool replay_ok = a.checksum_mismatches == 0;
  if (!replay_ok) {
    ++failures;
    std::fprintf(stderr, "  %llu survivors diverged from their solo runs\n",
                 static_cast<unsigned long long>(a.checksum_mismatches));
  }
  // Gate (c): zero top-class SLO violations.
  const bool slo_ok = !a.classes.empty() && a.classes[0].violations == 0;
  if (!slo_ok) {
    ++failures;
    std::fprintf(stderr, "  top class violated its SLO %llu times\n",
                 static_cast<unsigned long long>(
                     a.classes.empty() ? 0 : a.classes[0].violations));
  }
  // Sanity: every fault fired, the migration happened, nothing was lost
  // track of (finished + failed == submitted).
  const bool storm_ok = a.node_losses == 2 && a.evacuations == 1 &&
                        a.finished + a.failed == acfg.count;
  if (!storm_ok) {
    ++failures;
    std::fprintf(stderr,
                 "  storm bookkeeping off: losses=%llu evac=%llu "
                 "finished+failed=%llu/%llu\n",
                 static_cast<unsigned long long>(a.node_losses),
                 static_cast<unsigned long long>(a.evacuations),
                 static_cast<unsigned long long>(a.finished + a.failed),
                 static_cast<unsigned long long>(acfg.count));
  }

  std::printf("\n%-7s %9s %9s %7s %10s %10s %10s %10s\n", "class", "submit",
              "finish", "fail", "violations", "p50_ms", "p95_ms", "p99_ms");
  for (const fleet::SloSummary& c : a.classes) {
    std::printf("%-7u %9llu %9llu %7llu %10llu %10.3f %10.3f %10.3f\n",
                c.priority, static_cast<unsigned long long>(c.submitted),
                static_cast<unsigned long long>(c.finished),
                static_cast<unsigned long long>(c.failed),
                static_cast<unsigned long long>(c.violations),
                sim::to_milliseconds(c.p50), sim::to_milliseconds(c.p95),
                sim::to_milliseconds(c.p99));
    std::printf("data\tslo\t%u\t%llu\t%llu\t%llu\t%llu\n", c.priority,
                static_cast<unsigned long long>(c.submitted),
                static_cast<unsigned long long>(c.finished),
                static_cast<unsigned long long>(c.failed),
                static_cast<unsigned long long>(c.violations));
  }
  std::printf("\nnodes after the storm\n");
  for (const fleet::NodeStatus& n : a.nodes) {
    std::printf("  node %u: %-8s local_now=%.3f ms live=%u\n", n.id,
                std::string{to_string(n.state)}.c_str(),
                sim::to_milliseconds(n.local_now), n.live_jobs);
  }
  std::printf(
      "\nfinished=%llu failed=%llu shed=%llu migrated=%llu replayed=%llu\n",
      static_cast<unsigned long long>(a.finished),
      static_cast<unsigned long long>(a.failed),
      static_cast<unsigned long long>(a.shed),
      static_cast<unsigned long long>(a.migrated),
      static_cast<unsigned long long>(a.replayed));
  std::printf("gates: repro=%s replay=%s top-slo=%s storm=%s\n",
              repro_ok ? "ok" : "FAIL", replay_ok ? "ok" : "FAIL",
              slo_ok ? "ok" : "FAIL", storm_ok ? "ok" : "FAIL");

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"fleet\",\n  \"scale\": \"%s\",\n",
                 scale == bs::Scale::kSmall ? "small" : "default");
    std::fprintf(f, "  \"requests\": %llu,\n",
                 static_cast<unsigned long long>(acfg.count));
    std::fprintf(f,
                 "  \"finished\": %llu,\n  \"failed\": %llu,\n"
                 "  \"shed\": %llu,\n  \"migrated\": %llu,\n"
                 "  \"replayed_after_loss\": %llu,\n",
                 static_cast<unsigned long long>(a.finished),
                 static_cast<unsigned long long>(a.failed),
                 static_cast<unsigned long long>(a.shed),
                 static_cast<unsigned long long>(a.migrated),
                 static_cast<unsigned long long>(a.replayed));
    std::fprintf(f, "  \"makespan_ms\": %.4f,\n",
                 sim::to_milliseconds(a.makespan));
    std::fprintf(f, "  \"classes\": [\n");
    for (std::size_t i = 0; i < a.classes.size(); ++i) {
      const fleet::SloSummary& c = a.classes[i];
      std::fprintf(f,
                   "    {\"class\": %u, \"submitted\": %llu, \"finished\": "
                   "%llu, \"failed\": %llu, \"violations\": %llu, "
                   "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                   c.priority, static_cast<unsigned long long>(c.submitted),
                   static_cast<unsigned long long>(c.finished),
                   static_cast<unsigned long long>(c.failed),
                   static_cast<unsigned long long>(c.violations),
                   sim::to_milliseconds(c.p50), sim::to_milliseconds(c.p95),
                   sim::to_milliseconds(c.p99),
                   i + 1 < a.classes.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"gates\": {\"repro_ok\": %s, \"replay_ok\": %s, "
                 "\"top_slo_ok\": %s, \"storm_ok\": %s},\n",
                 repro_ok ? "true" : "false", replay_ok ? "true" : "false",
                 slo_ok ? "true" : "false", storm_ok ? "true" : "false");
    std::fprintf(f, "  \"total_failures\": %zu,\n", failures);
    std::fprintf(f, "  \"ok\": %s\n", failures == 0 ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (failures != 0) {
    std::fprintf(stderr, "FAIL: %zu fleet check failures\n", failures);
    return 1;
  }
  std::printf("all fleet checks passed\n");
  return 0;
}
