// Observability cross-validation (DESIGN.md Section 9): every tier-1
// application x memory mode runs with the metrics registry, the causal
// event log, the memory profiler and the NVLink-C2C link monitor all
// enabled, twice. The bench fails (nonzero exit) when:
//   - any registry counter disagrees with the independently derived
//     profile::Tracer summary of the same run's event log;
//   - any histogram's count/sum disagrees with its sibling counters;
//   - the link monitor's per-window byte sums disagree with the
//     interconnect's cumulative traffic counters;
//   - two identical runs produce different metrics snapshots, end times
//     or event digests (exposition must be deterministic);
//   - any exported artifact (metrics JSON, Chrome trace) fails a strict
//     JSON parse.
// A final multi-tenant co-run exports an enriched Chrome trace and checks
// it contains per-tenant lanes, causal flow events and the C2C-utilization
// counter track; a crash-recovery co-run then exercises the reset/restart/
// checkpoint instruments at nonzero values and cross-checks them the same
// way. Results land in BENCH_observability.json.
//
// Flags:
//   --smoke          small problem sizes (the ctest "perf" smoke target)
//   --out <file>     output JSON path (default BENCH_observability.json)
//   --trace <file>   also dump the tenancy co-run's enriched Chrome trace

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "net/fabric.hpp"
#include "net/halo.hpp"
#include "obs/json_check.hpp"
#include "profile/trace_export.hpp"
#include "profile/tracer.hpp"
#include "runtime/runtime.hpp"
#include "tenant/scheduler.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

struct ObsApp {
  std::string name;
  std::function<core::SystemConfig()> config;
  std::function<apps::AppReport(runtime::Runtime&, apps::MemMode, bs::Scale)> run;
};

std::vector<ObsApp> obs_apps() {
  std::vector<ObsApp> v;
  for (const auto& a : bs::rodinia_apps()) {
    v.push_back(ObsApp{
        .name = a.name,
        .config = [] { return bs::rodinia_config(pagetable::kSystemPage64K, false); },
        .run = a.run});
  }
  v.push_back(ObsApp{
      .name = "qiskit",
      .config = [] { return bs::qv_config(pagetable::kSystemPage64K, false); },
      .run = [](runtime::Runtime& rt, apps::MemMode m, bs::Scale s) {
        return apps::run_qvsim(rt, m, bs::qv_sim_config(s, 17));
      }});
  return v;
}

struct RunResult {
  Status status = Status::kSuccess;
  sim::Picos end_time = 0;
  std::uint64_t digest = 0;
  std::string metrics_json;
  std::vector<std::string> failures;  ///< cross-check violations
};

/// One named equality check; a mismatch becomes a recorded failure.
void check_eq(std::vector<std::string>& failures, const char* what,
              std::uint64_t metric, std::uint64_t reference) {
  if (metric == reference) return;
  char buf[256];
  std::snprintf(buf, sizeof buf, "%s: registry=%llu reference=%llu", what,
                static_cast<unsigned long long>(metric),
                static_cast<unsigned long long>(reference));
  failures.emplace_back(buf);
}

/// Registry counters vs the Tracer's independent walk over the event log,
/// histogram count/sum vs sibling counters, TLB counters vs the MMUs'
/// native counters, and link-monitor window sums vs the interconnect.
void cross_check(core::System& sys, std::vector<std::string>& failures) {
  const profile::TraceSummary ts = profile::Tracer{sys.events()}.summarize();
  core::Machine& m = sys.machine();
  const obs::MemSysMetrics& met = m.metrics();

  check_eq(failures, "cpu_first_touch_faults",
           met.faults_cpu_first_touch->value(), ts.cpu_first_touch_faults);
  check_eq(failures, "gpu_first_touch_faults",
           met.faults_gpu_first_touch->value(), ts.gpu_first_touch_faults);
  check_eq(failures, "managed_gpu_faults", met.faults_gpu_managed->value(),
           ts.managed_gpu_faults);
  check_eq(failures, "migrations_h2d", met.migrations_h2d->value(),
           ts.migrations_h2d);
  check_eq(failures, "migrations_d2h", met.migrations_d2h->value(),
           ts.migrations_d2h);
  check_eq(failures, "migrated_h2d_bytes", met.migrated_bytes_h2d->value(),
           ts.migrated_h2d_bytes);
  check_eq(failures, "migrated_d2h_bytes", met.migrated_bytes_d2h->value(),
           ts.migrated_d2h_bytes);
  check_eq(failures, "evictions", met.evictions->value(), ts.evictions);
  check_eq(failures, "evicted_bytes", met.evicted_bytes->value(), ts.evicted_bytes);
  check_eq(failures, "counter_notifications", met.counter_notifications->value(),
           ts.counter_notifications);
  check_eq(failures, "explicit_prefetches", met.prefetches->value(),
           ts.explicit_prefetches);
  check_eq(failures, "alloc_denials", met.alloc_denials->value(), ts.alloc_denials);
  check_eq(failures, "migration_retries", met.migration_retries->value(),
           ts.migration_retries);
  check_eq(failures, "migration_aborts", met.migration_aborts->value(),
           ts.migration_aborts);
  check_eq(failures, "ecc_retirements", met.ecc_retirements->value(),
           ts.ecc_retirements);
  check_eq(failures, "ecc_retired_bytes", met.ecc_retired_bytes->value(),
           ts.ecc_retired_bytes);
  check_eq(failures, "fallback_placements", met.fallback_placements->value(),
           ts.fallback_placements);
  check_eq(failures, "oom_events", met.oom_events->value(), ts.oom_events);
  check_eq(failures, "cross_tenant_evictions", met.cross_tenant_evictions->value(),
           ts.cross_tenant_evictions);

  // Crash-ladder instruments (DESIGN.md Section 10): reset, restart and
  // scrub counters must agree with the event log's kGpuReset/kJobRestart
  // records. (The recovery counters read zero when no RecoveryManager ran.)
  check_eq(failures, "gpu_resets", met.gpu_resets->value(), ts.gpu_resets);
  const std::uint64_t restarts =
      m.obs().counter("ghum_recovery_restarts_total", {{"cause", "gpu_reset"}}).value() +
      m.obs().counter("ghum_recovery_restarts_total", {{"cause", "ecc_uncorrectable"}}).value() +
      m.obs().counter("ghum_recovery_restarts_total", {{"cause", "timeout"}}).value();
  check_eq(failures, "recovery_restarts", restarts, ts.job_restarts);
  check_eq(failures, "recovery_scrubbed_bytes",
           m.obs().counter("ghum_recovery_scrubbed_bytes_total").value(),
           ts.scrubbed_bytes);

  // Histograms vs their sibling counters: every migration/eviction/fault
  // observes exactly one histogram sample, and byte sums must agree.
  check_eq(failures, "migration_batch_h2d.count",
           met.migration_batch_bytes_h2d->count(), ts.migrations_h2d);
  check_eq(failures, "migration_batch_d2h.count",
           met.migration_batch_bytes_d2h->count(), ts.migrations_d2h);
  check_eq(failures, "migration_batch_h2d.sum",
           met.migration_batch_bytes_h2d->sum(), ts.migrated_h2d_bytes);
  check_eq(failures, "migration_batch_d2h.sum",
           met.migration_batch_bytes_d2h->sum(), ts.migrated_d2h_bytes);
  check_eq(failures, "migration_latency_h2d.count",
           met.migration_latency_h2d->count(), ts.migrations_h2d);
  check_eq(failures, "migration_latency_d2h.count",
           met.migration_latency_d2h->count(), ts.migrations_d2h);
  check_eq(failures, "eviction_batch.count", met.eviction_batch_bytes->count(),
           ts.evictions);
  check_eq(failures, "eviction_batch.sum", met.eviction_batch_bytes->sum(),
           ts.evicted_bytes);
  check_eq(failures, "fault_latency_cpu.count",
           met.fault_latency_cpu_first_touch->count(), ts.cpu_first_touch_faults);
  check_eq(failures, "fault_latency_gpu.count",
           met.fault_latency_gpu_first_touch->count(), ts.gpu_first_touch_faults);
  check_eq(failures, "fault_latency_managed.count",
           met.fault_latency_gpu_managed->count(), met.gpu_fault_requests->value());

  // TLB counters vs the MMUs' native hit/miss counters.
  auto tlb = [&](const char* mmu, const pagetable::Tlb& t) {
    check_eq(failures, (std::string{"tlb_hits{"} + mmu + "}").c_str(),
             m.obs().counter("ghum_tlb_hits_total", {{"mmu", mmu}}).value(),
             t.hits());
    check_eq(failures, (std::string{"tlb_misses{"} + mmu + "}").c_str(),
             m.obs().counter("ghum_tlb_misses_total", {{"mmu", mmu}}).value(),
             t.misses());
  };
  tlb("smmu_cpu", m.smmu().cpu_tlb());
  tlb("smmu_ats", m.smmu().ats_tlb());
  tlb("gmmu_gpu", m.gmmu().utlb_gpu());
  tlb("gmmu_ats", m.gmmu().utlb_sys());

  // Link monitor: per-window byte deltas must sum to the interconnect's
  // cumulative traffic (the monitor ran from t=0 and was stopped).
  std::uint64_t h2d = 0, d2h = 0;
  for (const auto& s : sys.link_monitor().samples()) {
    h2d += s.h2d_bytes;
    d2h += s.d2h_bytes;
  }
  check_eq(failures, "link_monitor.h2d_bytes", h2d,
           m.c2c().bytes_moved(interconnect::Direction::kCpuToGpu));
  check_eq(failures, "link_monitor.d2h_bytes", d2h,
           m.c2c().bytes_moved(interconnect::Direction::kGpuToCpu));
}

RunResult one_run(const ObsApp& app, apps::MemMode mode, bs::Scale scale) {
  core::SystemConfig cfg = app.config();
  cfg.event_log = true;
  cfg.link_monitor = true;
  cfg.profiler_enabled = true;
  core::System sys{cfg};
  runtime::Runtime rt{sys};
  const auto res = bs::guarded_run([&] { return app.run(rt, mode, scale); });

  sys.profiler().stop();
  sys.link_monitor().stop();

  RunResult out;
  out.status = res.status;
  out.end_time = sys.now();
  out.digest = sys.events().digest(sys.now());
  out.metrics_json = sys.metrics_json();
  cross_check(sys, out.failures);

  // Exposition self-checks: both formats must be well-formed, and the
  // Chrome trace (with the link-utilization counter track) must parse.
  std::string err;
  if (!obs::json_valid(out.metrics_json, &err)) {
    out.failures.push_back("metrics_json invalid: " + err);
  }
  if (sys.metrics_prometheus().empty()) {
    out.failures.emplace_back("prometheus exposition is empty");
  }
  profile::TraceOptions topts;
  topts.link_samples = &sys.link_monitor().samples();
  const std::string trace =
      profile::to_chrome_trace(sys.events(), sys.workload(), topts);
  if (!obs::json_valid(trace, &err)) {
    out.failures.push_back("chrome trace invalid: " + err);
  }
  return out;
}

struct Cell {
  std::string app;
  std::string mode;
  double sim_ms = 0;
  std::size_t crosscheck_failures = 0;
  bool repro_ok = false;
};

/// The multi-tenant co-run: three managed tenants contend for HBM on the
/// QV machine, which exercises tenant lanes, cross-tenant evictions and
/// causal fault->migration->eviction chains in one trace.
struct TenancyResult {
  std::string trace;
  std::vector<std::string> failures;
};

TenancyResult tenancy_corun(bs::Scale scale) {
  core::SystemConfig cfg = bs::qv_config(pagetable::kSystemPage64K, false);
  cfg.event_log = true;
  cfg.link_monitor = true;
  cfg.ddr_capacity = 256ull << 20;
  core::System sys{cfg};
  sys.ensure_gpu_context();
  tenant::Scheduler sched{sys};
  struct Mix {
    const char* name;
    std::uint64_t footprint;
    std::function<apps::AppCoro(runtime::Runtime&)> make;
  };
  const std::vector<Mix> mix{
      {"qvsim20/managed", 17ull << 20,
       [scale](runtime::Runtime& rt) {
         return apps::qvsim_steps(rt, apps::MemMode::kManaged,
                                  bs::qv_sim_config(scale, 20));
       }},
      {"qvsim20b/managed", 17ull << 20,
       [scale](runtime::Runtime& rt) {
         return apps::qvsim_steps(rt, apps::MemMode::kManaged,
                                  bs::qv_sim_config(scale, 20));
       }},
      {"hotspot/managed", 13ull << 20,
       [scale](runtime::Runtime& rt) {
         return apps::hotspot_steps(rt, apps::MemMode::kManaged,
                                    bs::hotspot_config(scale));
       }},
  };
  for (const Mix& k : mix) {
    tenant::JobSpec spec;
    spec.name = k.name;
    spec.footprint_bytes = k.footprint;
    spec.make = k.make;
    (void)sched.submit(std::move(spec));
  }
  sched.run_all();
  sys.link_monitor().stop();

  TenancyResult out;
  cross_check(sys, out.failures);
  profile::TraceOptions topts;
  topts.link_samples = &sys.link_monitor().samples();
  out.trace = profile::to_chrome_trace(sys.events(), sys.workload(), topts);

  std::string err;
  if (!obs::json_valid(out.trace, &err)) {
    out.failures.push_back("tenancy trace invalid: " + err);
  }
  // Enrichment markers the acceptance criteria require: per-tenant lanes,
  // causal flow events, and the C2C-utilization counter track.
  if (out.trace.find("\"Tenant 1 MemSys\"") == std::string::npos) {
    out.failures.emplace_back("tenancy trace has no per-tenant lanes");
  }
  if (out.trace.find("\"ph\":\"s\"") == std::string::npos ||
      out.trace.find("\"ph\":\"f\"") == std::string::npos) {
    out.failures.emplace_back("tenancy trace has no causal flow events");
  }
  if (out.trace.find("C2C util (permille)") == std::string::npos) {
    out.failures.emplace_back("tenancy trace has no C2C utilization track");
  }
  return out;
}

/// The crash-recovery co-run: a GPU channel reset fells one of two managed
/// tenants mid-run and the recovery ladder restarts it, with periodic
/// verified checkpoints on. The registry-vs-Tracer pass then sees NONZERO
/// reset/restart/scrub counters — the quiet matrix rows above cannot tell
/// a dead recovery instrument from an unused one.
std::vector<std::string> recovery_corun(bs::Scale scale) {
  auto base = [] {
    core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, false);
    cfg.event_log = true;
    return cfg;
  };
  auto spec = [scale](std::uint64_t seed) {
    tenant::JobSpec s;
    s.name = "hotspot";
    s.footprint_bytes = 1ull << 20;
    s.make = [scale, seed](runtime::Runtime& rt) {
      apps::HotspotConfig h = bs::hotspot_config(scale);
      h.seed = seed;
      return apps::hotspot_steps(rt, apps::MemMode::kManaged, h);
    };
    return s;
  };
  sim::Picos solo = 0;
  {
    core::System sys{base()};
    tenant::Scheduler sched{sys, {}};
    (void)sched.submit(spec(42));
    sched.run_all();
    solo = sys.now();
  }

  core::SystemConfig cfg = base();
  cfg.link_monitor = true;
  cfg.faults.enabled = true;
  cfg.faults.gpu_resets = {{.time = solo / 2}};
  core::System sys{cfg};
  tenant::SchedulerConfig scfg;
  scfg.recovery.enabled = true;
  scfg.recovery.checkpoint_period_quanta = 4;
  scfg.recovery.verify_checkpoints = true;
  tenant::Scheduler sched{sys, scfg};
  (void)sched.submit(spec(42));
  (void)sched.submit(spec(43));
  sched.run_all();
  sys.link_monitor().stop();

  std::vector<std::string> failures;
  cross_check(sys, failures);
  const profile::TraceSummary ts = profile::Tracer{sys.events()}.summarize();
  if (ts.gpu_resets == 0 || ts.job_restarts == 0) {
    failures.emplace_back("recovery co-run produced no reset/restart events");
  }
  // Instruments without an event-log mirror still must agree with the
  // scheduler's own accounting.
  obs::MetricsRegistry& reg = sys.machine().obs();
  check_eq(failures, "recovery.restarts(stats)",
           sys.stats().get("recovery.restarts"), ts.job_restarts);
  check_eq(failures, "chk_checkpoints",
           reg.counter("ghum_chk_checkpoints_total").value(),
           sys.stats().get("recovery.checkpoints"));
  check_eq(failures, "chk_snapshot_bytes.count",
           reg.histogram("ghum_chk_snapshot_bytes").count(),
           reg.counter("ghum_chk_checkpoints_total").value());
  if (reg.counter("ghum_recovery_replayed_picos_total").value() == 0) {
    failures.emplace_back("restart happened but replayed-picos counter is zero");
  }
  check_eq(failures, "recovery.watchdog_trips",
           reg.counter("ghum_recovery_watchdog_trips_total").value(),
           sys.stats().get("recovery.watchdog_trips"));
  return failures;
}

/// The inter-node network co-run: a fabric wired to a metrics registry
/// carries hand-picked messages through all four protocol regimes, both
/// memory types and a flap window, then a 4-node hotspot halo exchange on
/// the same fabric. Every ghum_net_* instrument is cross-checked against
/// the fabric's independent FabricTotals tally at NONZERO values — the
/// same dead-vs-unused distinction the recovery co-run makes.
std::vector<std::string> net_corun(bs::Scale scale) {
  std::vector<std::string> failures;
  obs::MetricsRegistry reg;
  const net::NetSpec spec;
  net::Fabric fab{spec, 4, &reg};

  // One message per protocol regime, on both memory types (64 B is
  // eager-short, 4 KiB eager-bcopy, 16 KiB zcopy, 1 MiB rendezvous with
  // the default cost model).
  for (const std::uint64_t b : {64ull, 4096ull, 16384ull, 1ull << 20}) {
    (void)fab.transfer(0, 1, b, net::MemType::kHost, 0);
    (void)fab.transfer(2, 3, b, net::MemType::kCudaManaged, 0);
  }

  // A real multi-node workload sharing the instrumented fabric.
  net::MultiNodeConfig mc;
  mc.nodes = 4;
  mc.mode = apps::MemMode::kManaged;
  mc.node_config = bs::rodinia_config(pagetable::kSystemPage64K, false);
  mc.node_config.event_log = true;
  apps::HotspotConfig hs = bs::hotspot_config(scale);
  if (scale == bs::Scale::kSmall) hs.iterations = 4;
  const net::MultiNodeResult halo = net::run_hotspot_halo(mc, hs, &fab);

  const net::FabricTotals& tot = fab.totals();
  check_eq(failures, "net.halo_totals_view", halo.net.total_msgs(),
           tot.total_msgs());
  for (std::size_t p = 0; p < net::kProtocols; ++p) {
    const auto proto = static_cast<net::Protocol>(p);
    const std::vector<obs::Label> lbl{
        {"proto", std::string{to_string(proto)}}};
    const std::string name{to_string(proto)};
    if (tot.msgs[p] == 0) {
      failures.push_back("net: protocol " + name + " never exercised");
      continue;
    }
    check_eq(failures, ("net_msgs{" + name + "}").c_str(),
             reg.counter("ghum_net_msgs_total", lbl).value(), tot.msgs[p]);
    check_eq(failures, ("net_bytes{" + name + "}").c_str(),
             reg.counter("ghum_net_bytes_total", lbl).value(), tot.bytes[p]);
    check_eq(failures, ("net_proto_selected{" + name + "}").c_str(),
             reg.counter("ghum_net_proto_selected_total", lbl).value(),
             tot.msgs[p]);
  }
  // The rendezvous handshake histogram records exactly one sample per
  // rendezvous message; the latency histogram one per message of any kind.
  check_eq(failures, "net_rndv_handshake_ns.count",
           reg.histogram("ghum_net_rndv_handshake_ns").count(),
           tot.rndv_handshakes);
  check_eq(failures, "net_rndv_handshakes==rndv_msgs", tot.rndv_handshakes,
           tot.msgs[static_cast<std::size_t>(net::Protocol::kRendezvous)]);
  if (reg.histogram("ghum_net_rndv_handshake_ns").sum() == 0) {
    failures.emplace_back("net: rendezvous handshake histogram sums to zero");
  }
  check_eq(failures, "net_msg_latency_ns.count",
           reg.histogram("ghum_net_msg_latency_ns").count(), tot.total_msgs());
  // Per-link byte counters over the 4-endpoint fabric must re-sum to the
  // per-protocol byte total.
  std::uint64_t link_sum = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (std::uint32_t d = 0; d < 4; ++d) {
      if (s == d) continue;
      link_sum += reg.counter("ghum_net_link_bytes_total",
                              {{"link", std::to_string(s) + "-" +
                                            std::to_string(d)}})
                      .value();
    }
  }
  check_eq(failures, "net_link_bytes.sum", link_sum, tot.total_bytes());
  check_eq(failures, "net_flapped(quiet)",
           reg.counter("ghum_net_flapped_msgs_total").value(), 0);

  // Flap instrument at a nonzero value, on its own registry (a second
  // fabric must not double-count into the first one's instruments).
  obs::MetricsRegistry flap_reg;
  fault::LinkFlapWindow w;
  w.start = 0;
  w.duration = sim::microseconds(100);
  w.node_a = 0;
  net::Fabric flap_fab{spec, 2, &flap_reg, {w}};
  (void)flap_fab.transfer(0, 1, 4096, net::MemType::kHost, 0);
  check_eq(failures, "net_flapped(open window)",
           flap_reg.counter("ghum_net_flapped_msgs_total").value(), 1);
  check_eq(failures, "net_flapped_totals",
           flap_fab.totals().flapped_msgs, 1);
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  bs::Scale scale = bs::Scale::kDefault;
  std::string out_path = "BENCH_observability.json";
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      scale = bs::Scale::kSmall;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <file>] [--trace <file>]\n",
                   argv[0]);
      return 2;
    }
  }

  bs::print_figure_header(
      "Observability", "metrics registry vs tracer cross-validation",
      "registry counters equal independent Tracer summaries, snapshots are "
      "bit-for-bit reproducible, all exported timelines parse as JSON");

  std::vector<Cell> cells;
  std::size_t total_failures = 0;

  std::printf("%-12s %-9s %10s %8s %6s\n", "app", "mode", "sim_ms", "checks",
              "repro");
  for (const auto& app : obs_apps()) {
    for (apps::MemMode mode : {apps::MemMode::kExplicit, apps::MemMode::kManaged,
                               apps::MemMode::kSystem}) {
      const RunResult a = one_run(app, mode, scale);
      const RunResult b = one_run(app, mode, scale);
      Cell c;
      c.app = app.name;
      c.mode = std::string{to_string(mode)};
      c.sim_ms = sim::to_milliseconds(a.end_time);
      c.crosscheck_failures = a.failures.size() + b.failures.size();
      c.repro_ok = a.end_time == b.end_time && a.digest == b.digest &&
                   a.metrics_json == b.metrics_json && a.status == b.status;
      for (const auto& f : a.failures) {
        std::fprintf(stderr, "  [%s/%s run1] %s\n", c.app.c_str(), c.mode.c_str(),
                     f.c_str());
      }
      for (const auto& f : b.failures) {
        std::fprintf(stderr, "  [%s/%s run2] %s\n", c.app.c_str(), c.mode.c_str(),
                     f.c_str());
      }
      if (!c.repro_ok) {
        std::fprintf(stderr, "  [%s/%s] snapshots differ between two runs\n",
                     c.app.c_str(), c.mode.c_str());
      }
      total_failures += c.crosscheck_failures + (c.repro_ok ? 0 : 1);
      std::printf("%-12s %-9s %10.3f %8zu %6s\n", c.app.c_str(), c.mode.c_str(),
                  c.sim_ms, c.crosscheck_failures, c.repro_ok ? "ok" : "FAIL");
      cells.push_back(std::move(c));
    }
  }

  const TenancyResult tenancy = tenancy_corun(scale);
  for (const auto& f : tenancy.failures) {
    std::fprintf(stderr, "  [tenancy] %s\n", f.c_str());
  }
  total_failures += tenancy.failures.size();
  std::printf("tenancy co-run: %zu check failures, trace %zu bytes\n",
              tenancy.failures.size(), tenancy.trace.size());

  const std::vector<std::string> recovery = recovery_corun(scale);
  for (const auto& f : recovery) {
    std::fprintf(stderr, "  [recovery] %s\n", f.c_str());
  }
  total_failures += recovery.size();
  std::printf("recovery co-run: %zu check failures\n", recovery.size());

  const std::vector<std::string> netf = net_corun(scale);
  for (const auto& f : netf) {
    std::fprintf(stderr, "  [net] %s\n", f.c_str());
  }
  total_failures += netf.size();
  std::printf("net co-run: %zu check failures\n", netf.size());

  if (!trace_path.empty()) {
    if (std::FILE* f = std::fopen(trace_path.c_str(), "w")) {
      std::fwrite(tenancy.trace.data(), 1, tenancy.trace.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
  }

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"observability\",\n  \"scale\": \"%s\",\n",
                 scale == bs::Scale::kSmall ? "small" : "default");
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(f,
                   "    {\"app\": \"%s\", \"mode\": \"%s\", \"sim_ms\": %.4f, "
                   "\"crosscheck_failures\": %zu, \"repro_ok\": %s}%s\n",
                   c.app.c_str(), c.mode.c_str(), c.sim_ms, c.crosscheck_failures,
                   c.repro_ok ? "true" : "false", i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"tenancy_failures\": %zu,\n", tenancy.failures.size());
    std::fprintf(f, "  \"recovery_failures\": %zu,\n", recovery.size());
    std::fprintf(f, "  \"net_failures\": %zu,\n", netf.size());
    std::fprintf(f, "  \"total_failures\": %zu,\n", total_failures);
    std::fprintf(f, "  \"ok\": %s\n", total_failures == 0 ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (total_failures != 0) {
    std::fprintf(stderr, "FAIL: %zu observability check failures\n", total_failures);
    return 1;
  }
  std::printf("all observability cross-checks passed\n");
  return 0;
}
