// Figure 13: initialization/computation breakdown of a 30-qubit
// (simulated-oversubscription, scaled 17 qubits) and a 34-qubit (natural
// oversubscription, scaled 21 qubits) Quantum Volume simulation, for
// managed memory at both system page sizes and system memory.
//
// Paper shape: at 34 qubits, 64 KiB pages shorten initialization and
// accelerate the eviction/migration phase by ~58 %. At 30 qubits under
// *simulated* oversubscription the preference flips: computation is ~3x
// slower with 64 KiB pages (evicted pages bounce back in larger units).
// The system version could not run the natural-oversubscription case on
// the real machine; the simulator's OS falls back to CPU placement, so we
// report it for completeness.

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

void run_case(const char* label, std::uint32_t qubits, double oversub_ratio) {
  std::printf("\n-- %s (scaled %u qubits) --\n", label, qubits);
  std::printf("%-9s %-6s %12s %12s %12s\n", "mode", "page", "init_ms",
              "compute_ms", "total_ms");
  for (apps::MemMode mode : {apps::MemMode::kExplicit, apps::MemMode::kManaged,
                             apps::MemMode::kSystem}) {
    for (const auto page : {pagetable::kSystemPage4K, pagetable::kSystemPage64K}) {
      core::System sys{bs::qv_config(page, false)};
      runtime::Runtime rt{sys};
      std::optional<core::Buffer> reserve;
      if (oversub_ratio > 1.0) {
        // Simulated oversubscription (Section 3.2): constrain free HBM so
        // the statevector oversubscribes it by the requested ratio.
        const std::uint64_t sv_bytes = 16ull << qubits;
        reserve = bs::reserve_for_oversubscription(sys, sv_bytes, oversub_ratio);
      }
      const auto res = bs::guarded_run([&] {
        return apps::run_qvsim(rt, mode, bs::qv_sim_config(bs::Scale::kDefault, qubits));
      });
      const char* page_name = page == pagetable::kSystemPage4K ? "4k" : "64k";
      if (!res.ok()) {
        // How the run ends on the real machine when the mode cannot survive
        // this oversubscription level — reported as a row, not a crash.
        std::printf("%-9s %-6s FAILED: %s\n", std::string{to_string(mode)}.c_str(),
                    page_name, std::string{to_string(res.status)}.c_str());
        std::printf("data\tfig13\t%s\t%s\t%s\tFAILED\tFAILED\n", label,
                    std::string{to_string(mode)}.c_str(), page_name);
        if (reserve) rt.free(*reserve);
        continue;
      }
      const auto& r = res.report;
      std::printf("%-9s %-6s %12.3f %12.3f %12.3f\n",
                  std::string{to_string(mode)}.c_str(), page_name,
                  r.times.gpu_init_s * 1e3, r.times.compute_s * 1e3,
                  r.times.reported_total_s() * 1e3);
      std::printf("data\tfig13\t%s\t%s\t%s\t%g\t%g\n", label,
                  std::string{to_string(mode)}.c_str(), page_name,
                  r.times.gpu_init_s * 1e3, r.times.compute_s * 1e3);
      if (reserve) rt.free(*reserve);
    }
  }
}

}  // namespace

int main() {
  bs::print_figure_header(
      "Figure 13", "QV oversubscription breakdowns (30q simulated, 34q natural)",
      "34q: 64 KiB shortens init and speeds migration ~58%; 30q simulated "
      "oversubscription prefers 4 KiB (~3x faster compute)");

  run_case("qv30_simulated_oversub", 17, 1.3);
  run_case("qv34_natural_oversub", 21, 1.0);  // statevector itself > HBM
  return 0;
}
