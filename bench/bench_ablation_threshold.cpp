// Ablation: access-counter notification threshold (Section 2.2.1 notes the
// threshold is user-tunable with a driver default of 256; Section 5.2
// suggests raising it to delay migrations). Sweeps the threshold for the
// iterative SRAD workload (which wants migration) and the single-pass
// pathfinder workload (which wants it delayed).

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "profile/tracer.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

int main() {
  bs::print_figure_header(
      "Ablation: counter threshold", "migration eagerness vs workload type",
      "iterative apps benefit from eager migration (low threshold); "
      "single-pass apps prefer delayed/no migration (high threshold)");

  std::printf("%-12s %10s %14s %16s %14s\n", "app", "threshold", "compute_ms",
              "notifications", "migr_h2d_mib");
  // Dense kernels deliver line-events in bursts of thousands per region,
  // so the driver default (256) behaves like "migrate at the first
  // notification opportunity"; meaningful delay only appears at
  // burst-scale thresholds.
  for (const char* app_name : {"srad", "pathfinder"}) {
    for (std::uint32_t threshold : {256u, 16384u, 65536u, 262144u, 1u << 30}) {
      core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, true);
      cfg.access_counter_threshold = threshold;
      cfg.event_log = true;
      core::System sys{cfg};
      runtime::Runtime rt{sys};
      apps::AppReport r;
      for (const auto& app : bs::rodinia_apps()) {
        if (app.name == app_name) {
          r = app.run(rt, apps::MemMode::kSystem, bs::Scale::kDefault);
        }
      }
      profile::Tracer tracer{sys.events()};
      const auto s = tracer.summarize();
      std::printf("%-12s %10u %14.3f %16zu %14.2f\n", app_name,
                  threshold == (1u << 30) ? 0 : threshold, r.times.compute_s * 1e3,
                  s.counter_notifications,
                  static_cast<double>(s.migrated_h2d_bytes) / (1 << 20));
      std::printf("data\tablation_threshold\t%s\t%u\t%g\n", app_name, threshold,
                  r.times.compute_s * 1e3);
    }
  }
  std::printf("(threshold 0 row = effectively disabled via huge threshold)\n");
  return 0;
}
