// Crash recovery bench (DESIGN.md Section 10). Two parts, both enforced
// (nonzero exit on any violation):
//
// Part A — restore equivalence. Every tier-1 application x memory mode is
// run twice: once straight through, once snapshotted mid-run by
// chk::Snapshotter, restored into a fresh core::System (donor adoption +
// Runtime::rebind, the donor destroyed), and continued there. The
// interrupted run must be bit-identical to the straight one: same
// simulated end time, same EventLog digest, same output checksum. The
// table also reports snapshot blob size and serialize/deserialize cost.
//
// Part B — crash scenarios under the co-scheduler. GPU channel resets,
// an ECC storm past the retirement budget, and a stalled job are injected
// against tenant workloads with the recovery ladder enabled. Checked per
// scenario: the victim ends exactly as the ladder prescribes (replayed to
// the correct checksum, or failed with Status::kErrorUnrecoverable once
// the restart budget is spent), the co-tenant's output is unchanged from
// a crash-free co-run, the scheduler terminates (never hangs), and the
// whole scenario is reproducible run to run. Results land in
// BENCH_recovery.json.
//
// Flags:
//   --smoke       small problem sizes (the ctest "perf" smoke target)
//   --out <file>  output JSON path (default BENCH_recovery.json)

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "chk/snapshot.hpp"
#include "runtime/runtime.hpp"
#include "tenant/scheduler.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

// ---------------------------------------------------------------------------
// Part A: restore equivalence across the app x mode matrix.
// ---------------------------------------------------------------------------

struct StepApp {
  std::string name;
  std::function<core::SystemConfig()> config;
  std::function<apps::AppCoro(runtime::Runtime&, apps::MemMode, bs::Scale)> steps;
};

std::vector<StepApp> step_apps() {
  auto rodinia = [] {
    core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, false);
    cfg.event_log = true;
    return cfg;
  };
  return {
      {"hotspot", rodinia,
       [](runtime::Runtime& rt, apps::MemMode m, bs::Scale s) {
         return apps::hotspot_steps(rt, m, bs::hotspot_config(s));
       }},
      {"pathfinder", rodinia,
       [](runtime::Runtime& rt, apps::MemMode m, bs::Scale s) {
         return apps::pathfinder_steps(rt, m, bs::pathfinder_config(s));
       }},
      {"needle", rodinia,
       [](runtime::Runtime& rt, apps::MemMode m, bs::Scale s) {
         return apps::needle_steps(rt, m, bs::needle_config(s));
       }},
      {"bfs", rodinia,
       [](runtime::Runtime& rt, apps::MemMode m, bs::Scale s) {
         return apps::bfs_steps(rt, m, bs::bfs_config(s));
       }},
      {"srad", rodinia,
       [](runtime::Runtime& rt, apps::MemMode m, bs::Scale s) {
         return apps::srad_steps(rt, m, bs::srad_config(s));
       }},
      {"qiskit",
       [] {
         core::SystemConfig cfg = bs::qv_config(pagetable::kSystemPage64K, false);
         cfg.event_log = true;
         return cfg;
       },
       [](runtime::Runtime& rt, apps::MemMode m, bs::Scale s) {
         return apps::qvsim_steps(rt, m, bs::qv_sim_config(s, 17));
       }},
  };
}

struct RunOutcome {
  sim::Picos end = 0;
  std::uint64_t digest = 0;
  std::uint64_t checksum = 0;
  int steps = 0;
  std::size_t blob_bytes = 0;
};

/// Uninterrupted reference run; counts coroutine steps so the interrupted
/// run can cut at the midpoint.
RunOutcome run_straight(const StepApp& app, apps::MemMode mode, bs::Scale s) {
  core::System sys{app.config()};
  runtime::Runtime rt{sys};
  apps::AppCoro coro = app.steps(rt, mode, s);
  RunOutcome out;
  while (coro.step()) ++out.steps;
  ++out.steps;  // the final step
  out.end = sys.now();
  out.digest = sys.events().digest(sys.now());
  out.checksum = coro.report().checksum;
  return out;
}

/// The same run snapshotted after \p cut steps, restored into a fresh
/// System (the donor is destroyed before the continuation), and finished
/// there. Bit-identical to run_straight or the bench fails.
RunOutcome run_interrupted(const StepApp& app, apps::MemMode mode, bs::Scale s,
                           int cut) {
  auto sys = std::make_unique<core::System>(app.config());
  auto rt = std::make_unique<runtime::Runtime>(*sys);
  apps::AppCoro coro = app.steps(*rt, mode, s);

  bool alive = true;
  for (int i = 0; i < cut && alive; ++i) alive = coro.step();

  RunOutcome out;
  const chk::Blob blob = chk::Snapshotter::snapshot(*sys);
  out.blob_bytes = blob.size();
  std::unique_ptr<core::System> restored =
      chk::Snapshotter::restore(blob, sys.get());
  rt->rebind(*restored);
  sys.reset();  // the donor dies; dangling pointers would surface here

  while (alive) alive = coro.step();
  out.end = restored->now();
  out.digest = restored->events().digest(restored->now());
  out.checksum = coro.report().checksum;
  return out;
}

struct MatrixCell {
  std::string app;
  std::string mode;
  double sim_ms = 0;
  int steps = 0;
  int cut = 0;
  double snap_kib = 0;
  bool repro_ok = false;
};

// ---------------------------------------------------------------------------
// Part B: crash scenarios under the co-scheduler.
// ---------------------------------------------------------------------------

core::SystemConfig scenario_config() {
  core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, false);
  cfg.event_log = true;
  return cfg;
}

tenant::JobSpec victim_spec(bs::Scale s, std::uint64_t seed) {
  tenant::JobSpec spec;
  spec.name = "hotspot";
  spec.mode = apps::MemMode::kManaged;
  spec.footprint_bytes = 1ull << 20;
  spec.make = [s, seed](runtime::Runtime& rt) {
    apps::HotspotConfig h = bs::hotspot_config(s);
    h.seed = seed;
    return apps::hotspot_steps(rt, apps::MemMode::kManaged, h);
  };
  return spec;
}

/// A job that yields forever without touching the machine: zero simulated
/// progress per quantum, which is exactly what the stall watchdog hunts.
apps::AppCoro stuck_steps(runtime::Runtime&) {
  for (;;) co_yield 0;
}

tenant::JobSpec stuck_spec() {
  tenant::JobSpec spec;
  spec.name = "stuck";
  spec.footprint_bytes = 0;
  spec.make = [](runtime::Runtime& rt) { return stuck_steps(rt); };
  return spec;
}

/// Simulated end time of the victim run solo and crash-free — crash
/// schedules aim at fractions of this.
sim::Picos solo_end_time(bs::Scale s) {
  core::System sys{scenario_config()};
  tenant::Scheduler sched{sys, {}};
  (void)sched.submit(victim_spec(s, 42));
  sched.run_all();
  return sys.now();
}

/// Reference checksums from a crash-free co-run of victim + sibling under
/// the same recovery-enabled scheduler config.
std::pair<std::uint64_t, std::uint64_t> clean_corun(bs::Scale s) {
  core::System sys{scenario_config()};
  tenant::SchedulerConfig scfg;
  scfg.recovery.enabled = true;
  tenant::Scheduler sched{sys, scfg};
  (void)sched.submit(victim_spec(s, 42));
  (void)sched.submit(victim_spec(s, 43));
  sched.run_all();
  return {sched.job(1).report.checksum, sched.job(2).report.checksum};
}

struct ScenarioOutcome {
  std::string outcome;  ///< "replayed" | "unrecoverable" | something wrong
  std::uint32_t restarts = 0;
  double replayed_ms = 0;
  sim::Picos end = 0;
  std::uint64_t digest = 0;
  bool victim_ok = false;
  bool sibling_ok = false;
};

struct Scenario {
  std::string name;
  std::function<ScenarioOutcome()> run;
};

std::string status_or_state(const tenant::Job& j) {
  if (j.state == tenant::JobState::kFinished) return "finished";
  return std::string{"failed("} + std::string{to_string(j.status)} + ")";
}

/// Common driver: configure faults + recovery, co-run victim (+ optional
/// sibling), and classify what the ladder did to the victim.
ScenarioOutcome run_scenario(const fault::FaultConfig& faults,
                             const tenant::RecoveryConfig& recovery,
                             bs::Scale s, bool with_sibling, bool stuck_victim,
                             std::uint64_t clean_victim,
                             std::uint64_t clean_sibling) {
  core::SystemConfig cfg = scenario_config();
  cfg.faults = faults;
  cfg.faults.enabled = true;
  core::System sys{cfg};
  tenant::SchedulerConfig scfg;
  scfg.recovery = recovery;
  scfg.recovery.enabled = true;
  tenant::Scheduler sched{sys, scfg};
  tenant::TenantId victim = tenant::kNoTenant;
  tenant::TenantId sibling = tenant::kNoTenant;
  (void)sched.submit(stuck_victim ? stuck_spec() : victim_spec(s, 42), &victim);
  if (with_sibling) (void)sched.submit(victim_spec(s, 43), &sibling);
  sched.run_all();  // bounded by the watchdog + restart budget: never hangs

  const tenant::Job& j = sched.job(victim);
  ScenarioOutcome out;
  out.restarts = j.restarts;
  out.replayed_ms = sim::to_milliseconds(j.replayed);
  out.end = sys.now();
  out.digest = sys.events().digest(sys.now());
  if (j.state == tenant::JobState::kFinished) {
    out.outcome = j.restarts > 0 ? "replayed" : "finished";
    out.victim_ok = !stuck_victim && j.report.checksum == clean_victim &&
                    j.restarts > 0 && j.replayed > 0;
  } else {
    out.outcome = status_or_state(j);
    // Graceful failure: the terminal status must be the attributed
    // escalation, never a hang or a raw crash code.
    out.victim_ok = j.status == Status::kErrorUnrecoverable;
  }
  if (with_sibling) {
    const tenant::Job& sib = sched.job(sibling);
    out.sibling_ok = sib.state == tenant::JobState::kFinished &&
                     sib.report.checksum == clean_sibling;
  } else {
    out.sibling_ok = true;  // solo scenario
  }
  return out;
}

struct ScenarioCell {
  std::string name;
  std::string outcome;
  std::uint32_t restarts = 0;
  double replayed_ms = 0;
  bool victim_ok = false;
  bool sibling_ok = false;
  bool repro_ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  bs::Scale scale = bs::Scale::kDefault;
  std::string out_path = "BENCH_recovery.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      scale = bs::Scale::kSmall;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <file>]\n", argv[0]);
      return 2;
    }
  }

  bs::print_figure_header(
      "Recovery", "checkpoint/restore equivalence and the crash ladder",
      "a run snapshotted mid-flight and restored into a fresh machine is "
      "bit-identical to an uninterrupted one; injected crashes end replayed "
      "or failed-with-attribution, with co-tenants unharmed");

  std::size_t failures = 0;

  // -- Part A ---------------------------------------------------------------
  std::printf("restore equivalence (snapshot at steps/2, donor destroyed)\n");
  std::printf("%-12s %-9s %10s %6s %5s %9s %6s\n", "app", "mode", "sim_ms",
              "steps", "cut", "snap_kib", "repro");
  std::vector<MatrixCell> matrix;
  for (const StepApp& app : step_apps()) {
    for (apps::MemMode mode : {apps::MemMode::kExplicit, apps::MemMode::kManaged,
                               apps::MemMode::kSystem}) {
      const RunOutcome straight = run_straight(app, mode, scale);
      const int cut = straight.steps / 2 > 0 ? straight.steps / 2 : 1;
      const RunOutcome resumed = run_interrupted(app, mode, scale, cut);
      MatrixCell c;
      c.app = app.name;
      c.mode = std::string{to_string(mode)};
      c.sim_ms = sim::to_milliseconds(straight.end);
      c.steps = straight.steps;
      c.cut = cut;
      c.snap_kib = static_cast<double>(resumed.blob_bytes) / 1024.0;
      c.repro_ok = resumed.end == straight.end &&
                   resumed.digest == straight.digest &&
                   resumed.checksum == straight.checksum;
      if (!c.repro_ok) {
        ++failures;
        std::fprintf(stderr,
                     "  [%s/%s] DIVERGED: end %lld vs %lld, digest %016llx vs "
                     "%016llx, checksum %016llx vs %016llx\n",
                     c.app.c_str(), c.mode.c_str(),
                     static_cast<long long>(resumed.end),
                     static_cast<long long>(straight.end),
                     static_cast<unsigned long long>(resumed.digest),
                     static_cast<unsigned long long>(straight.digest),
                     static_cast<unsigned long long>(resumed.checksum),
                     static_cast<unsigned long long>(straight.checksum));
      }
      std::printf("%-12s %-9s %10.3f %6d %5d %9.1f %6s\n", c.app.c_str(),
                  c.mode.c_str(), c.sim_ms, c.steps, c.cut, c.snap_kib,
                  c.repro_ok ? "ok" : "FAIL");
      std::printf("data\trestore\t%s\t%s\t%.4f\t%d\t%d\t%.1f\t%d\n",
                  c.app.c_str(), c.mode.c_str(), c.sim_ms, c.steps, c.cut,
                  c.snap_kib, c.repro_ok ? 1 : 0);
      matrix.push_back(std::move(c));
    }
  }

  // -- Part B ---------------------------------------------------------------
  const sim::Picos solo = solo_end_time(scale);
  const sim::Picos mid = solo / 2;
  const auto [clean_victim, clean_sibling] = clean_corun(scale);

  std::vector<Scenario> scenarios;
  scenarios.push_back({"gpu_reset_replay", [&] {
                         fault::FaultConfig f;
                         f.gpu_resets = {{.time = mid}};
                         tenant::RecoveryConfig r;
                         r.max_restarts = 2;
                         return run_scenario(f, r, scale, true, false,
                                             clean_victim, clean_sibling);
                       }});
  scenarios.push_back({"gpu_reset_budget", [&] {
                         fault::FaultConfig f;
                         // One reset per incarnation, spaced tighter than any
                         // incarnation's time to completion.
                         f.gpu_resets = {{.time = mid},
                                         {.time = mid + mid / 4},
                                         {.time = mid + mid / 2},
                                         {.time = mid + (3 * mid) / 4},
                                         {.time = mid + mid}};
                         tenant::RecoveryConfig r;
                         r.max_restarts = 2;
                         return run_scenario(f, r, scale, true, false,
                                             clean_victim, clean_sibling);
                       }});
  scenarios.push_back({"ecc_storm", [&] {
                         fault::FaultConfig f;
                         // Second retirement blows the 3 MiB budget: the
                         // device is dying, the escalation is terminal and
                         // no restart is attempted. Solo by design — frame
                         // retirement is device-global, so whichever tenant
                         // is executing would absorb the storm.
                         f.ecc_events = {{.time = mid / 2},
                                         {.time = mid}};
                         f.ecc_retirement_budget = 3ull << 20;
                         tenant::RecoveryConfig r;
                         r.max_restarts = 2;
                         return run_scenario(f, r, scale, false, false,
                                             clean_victim, clean_sibling);
                       }});
  scenarios.push_back({"watchdog_stall", [&] {
                         fault::FaultConfig f;
                         tenant::RecoveryConfig r;
                         r.max_restarts = 1;
                         r.stall_quanta = 4;
                         return run_scenario(f, r, scale, true, true,
                                             clean_victim, clean_sibling);
                       }});

  std::printf("\ncrash scenarios (recovery ladder on, co-tenant checked)\n");
  std::printf("%-17s %-22s %8s %11s %7s %8s %6s\n", "scenario", "outcome",
              "restarts", "replayed_ms", "victim", "sibling", "repro");
  std::vector<ScenarioCell> cells;
  for (const Scenario& sc : scenarios) {
    const ScenarioOutcome a = sc.run();
    const ScenarioOutcome b = sc.run();  // determinism: same crash, same story
    ScenarioCell c;
    c.name = sc.name;
    c.outcome = a.outcome;
    c.restarts = a.restarts;
    c.replayed_ms = a.replayed_ms;
    c.victim_ok = a.victim_ok;
    c.sibling_ok = a.sibling_ok;
    c.repro_ok = a.end == b.end && a.digest == b.digest &&
                 a.outcome == b.outcome && a.restarts == b.restarts;
    if (!c.victim_ok || !c.sibling_ok || !c.repro_ok) {
      ++failures;
      std::fprintf(stderr, "  [%s] victim=%s sibling=%s repro=%s outcome=%s\n",
                   c.name.c_str(), c.victim_ok ? "ok" : "FAIL",
                   c.sibling_ok ? "ok" : "FAIL", c.repro_ok ? "ok" : "FAIL",
                   c.outcome.c_str());
    }
    std::printf("%-17s %-22s %8u %11.3f %7s %8s %6s\n", c.name.c_str(),
                c.outcome.c_str(), c.restarts, c.replayed_ms,
                c.victim_ok ? "ok" : "FAIL", c.sibling_ok ? "ok" : "FAIL",
                c.repro_ok ? "ok" : "FAIL");
    std::printf("data\tscenario\t%s\t%s\t%u\t%.4f\t%d\t%d\t%d\n",
                c.name.c_str(), c.outcome.c_str(), c.restarts, c.replayed_ms,
                c.victim_ok ? 1 : 0, c.sibling_ok ? 1 : 0, c.repro_ok ? 1 : 0);
    cells.push_back(std::move(c));
  }

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"recovery\",\n  \"scale\": \"%s\",\n",
                 scale == bs::Scale::kSmall ? "small" : "default");
    std::fprintf(f, "  \"restore_matrix\": [\n");
    for (std::size_t i = 0; i < matrix.size(); ++i) {
      const MatrixCell& c = matrix[i];
      std::fprintf(f,
                   "    {\"app\": \"%s\", \"mode\": \"%s\", \"sim_ms\": %.4f, "
                   "\"steps\": %d, \"cut\": %d, \"snap_kib\": %.1f, "
                   "\"repro_ok\": %s}%s\n",
                   c.app.c_str(), c.mode.c_str(), c.sim_ms, c.steps, c.cut,
                   c.snap_kib, c.repro_ok ? "true" : "false",
                   i + 1 < matrix.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"scenarios\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const ScenarioCell& c = cells[i];
      std::fprintf(f,
                   "    {\"scenario\": \"%s\", \"outcome\": \"%s\", "
                   "\"restarts\": %u, \"replayed_ms\": %.4f, "
                   "\"victim_ok\": %s, \"sibling_ok\": %s, \"repro_ok\": %s}%s\n",
                   c.name.c_str(), c.outcome.c_str(), c.restarts, c.replayed_ms,
                   c.victim_ok ? "true" : "false",
                   c.sibling_ok ? "true" : "false",
                   c.repro_ok ? "true" : "false",
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"total_failures\": %zu,\n", failures);
    std::fprintf(f, "  \"ok\": %s\n", failures == 0 ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (failures != 0) {
    std::fprintf(stderr, "FAIL: %zu recovery check failures\n", failures);
    return 1;
  }
  std::printf("all recovery checks passed\n");
  return 0;
}
