// Figure 3: relative performance (speedup vs the explicit-copy version) of
// the system-allocated and managed versions across the six applications,
// in-memory, automatic system-memory migration disabled.
//
// Paper shape: system memory beats managed memory for needle, pathfinder,
// hotspot, bfs and small Quantum Volume runs (17-20 qubits; scaled 8-11);
// for needle/pathfinder the system version even beats the explicit one.
// Managed wins for SRAD and the larger QV runs (21-23 qubits; scaled
// 12-14), and the explicit version stays ahead of both unified versions
// for QV overall.

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

struct Row {
  std::string name;
  double explicit_s = 0, managed_s = 0, system_s = 0;
};

double reported(const apps::AppReport& r) { return r.times.reported_total_s(); }

}  // namespace

int main() {
  bs::print_figure_header(
      "Figure 3", "speedup of unified-memory versions vs explicit copies",
      "system > managed for needle/pathfinder/hotspot/bfs and QV<=20q; "
      "system > explicit for needle/pathfinder; managed > system for srad "
      "and QV 21-23q; explicit fastest for QV");

  std::vector<Row> rows;
  for (const auto& app : bs::rodinia_apps()) {
    Row row{.name = app.name};
    for (apps::MemMode mode : {apps::MemMode::kExplicit, apps::MemMode::kManaged,
                               apps::MemMode::kSystem}) {
      core::System sys{bs::rodinia_config(pagetable::kSystemPage64K, false)};
      runtime::Runtime rt{sys};
      const auto r = app.run(rt, mode, bs::Scale::kDefault);
      (mode == apps::MemMode::kExplicit  ? row.explicit_s
       : mode == apps::MemMode::kManaged ? row.managed_s
                                         : row.system_s) = reported(r);
    }
    rows.push_back(row);
  }
  // Quantum Volume sweep: scaled qubit counts 12-18 stand in for the
  // paper's 17-23. Figure 3 is an *in-memory* experiment, so its qubit
  // mapping is overhead-driven (offset 5) rather than capacity-driven like
  // the oversubscription figures (offset 13) — see EXPERIMENTS.md.
  for (std::uint32_t q = 12; q <= 18; ++q) {
    Row row{.name = "qv" + std::to_string(q) + "(p" + std::to_string(q + 5) + ")"};
    for (apps::MemMode mode : {apps::MemMode::kExplicit, apps::MemMode::kManaged,
                               apps::MemMode::kSystem}) {
      core::System sys{bs::qv_config(pagetable::kSystemPage64K, false)};
      runtime::Runtime rt{sys};
      const auto r =
          apps::run_qvsim(rt, mode, bs::qv_sim_config(bs::Scale::kDefault, q));
      (mode == apps::MemMode::kExplicit  ? row.explicit_s
       : mode == apps::MemMode::kManaged ? row.managed_s
                                         : row.system_s) = reported(r);
    }
    rows.push_back(row);
  }

  std::printf("\n%-16s %12s %12s %12s %10s %10s\n", "app", "explicit_ms",
              "managed_ms", "system_ms", "spd_mng", "spd_sys");
  for (const auto& r : rows) {
    std::printf("%-16s %12.3f %12.3f %12.3f %10.2f %10.2f\n", r.name.c_str(),
                r.explicit_s * 1e3, r.managed_s * 1e3, r.system_s * 1e3,
                bs::speedup(r.explicit_s, r.managed_s),
                bs::speedup(r.explicit_s, r.system_s));
    std::printf("data\tfig03\t%s\t%.4f\t%.4f\n", r.name.c_str(),
                bs::speedup(r.explicit_s, r.managed_s),
                bs::speedup(r.explicit_s, r.system_s));
  }
  return 0;
}
