// Ablation: copy/compute overlap in the explicit chunk-exchange pipeline.
// The paper calls the original Qiskit-Aer data-movement pipeline
// "sophisticated" and treats it as the ideal-performance baseline
// (Section 4); this bench quantifies how much of that sophistication comes
// from double-buffered async staging vs plain serial chunk exchange, at
// the naturally oversubscribed size (21 scaled qubits ≙ paper 34).

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

int main() {
  bs::print_figure_header(
      "Ablation: chunk pipeline overlap", "double-buffered vs serial staging",
      "async double buffering hides most of one copy direction behind the "
      "gate kernels");

  std::printf("%-12s %12s %12s %14s\n", "variant", "compute_ms", "total_ms",
              "checksum_ok");
  std::uint64_t sums[2];
  double compute[2];
  int i = 0;
  for (const bool pipelined : {false, true}) {
    core::System sys{bs::qv_config(pagetable::kSystemPage64K, false)};
    runtime::Runtime rt{sys};
    apps::QvConfig cfg = bs::qv_sim_config(bs::Scale::kDefault, 21);
    cfg.pipelined = pipelined;
    const auto r = apps::run_qvsim(rt, apps::MemMode::kExplicit, cfg);
    sums[i] = r.checksum;
    compute[i] = r.times.compute_s;
    std::printf("%-12s %12.3f %12.3f %14s\n", pipelined ? "pipelined" : "serial",
                r.times.compute_s * 1e3, r.times.reported_total_s() * 1e3,
                i == 0 || sums[0] == sums[1] ? "yes" : "NO");
    std::printf("data\tablation_pipeline\t%d\t%g\n", pipelined ? 1 : 0,
                r.times.compute_s * 1e3);
    ++i;
  }
  bs::print_metric("pipeline.overlap_speedup", compute[0] / compute[1], "x");
  return 0;
}
