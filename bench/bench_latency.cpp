// Latency microbenchmark: pointer-chase probes of the three access paths
// a Grace Hopper thread can take — local LPDDR5X, local HBM3, and remote
// memory over NVLink-C2C. The paper's characterization relies on these
// latencies implicitly (the direct-access-vs-migration trade is a
// bandwidth/latency trade); published GH200 measurements put remote
// C2C-loaded latency around 1.3-2x the local DRAM latency plus the link
// round trip, which is what the model's parameters encode.

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

constexpr std::uint64_t kChain = 4096;

/// Builds a random permutation cycle and chases it for kChain hops.
double chase_ns(core::System& sys, runtime::Runtime& rt, const core::Buffer& buf,
                bool gpu_side) {
  {  // Build the chain on whichever side owns the data (unaccounted setup).
    auto* idx = reinterpret_cast<std::uint32_t*>(buf.host);
    sim::Rng rng{7};
    std::vector<std::uint32_t> order(kChain);
    for (std::uint32_t i = 0; i < kChain; ++i) order[i] = i;
    for (std::uint32_t i = kChain - 1; i > 0; --i) {
      std::swap(order[i], order[rng.next_below(i + 1)]);
    }
    for (std::uint32_t i = 0; i < kChain; ++i) {
      idx[order[i]] = order[(i + 1) % kChain];
    }
  }
  sys.ensure_gpu_context();  // keep one-time context init out of the probe
  const sim::Picos t0 = sys.now();
  if (gpu_side) {
    (void)rt.launch("chase", 0, [&] {
      runtime::Span<std::uint32_t> s{sys, buf, mem::Node::kGpu};
      std::uint32_t cur = 0;
      for (std::uint64_t hop = 0; hop < kChain; ++hop) cur = s.load_chased(cur);
      if (cur == 0xffffffffu) std::abort();  // keep the chain live
    });
  } else {
    (void)rt.host_phase("chase", 0, [&] {
      runtime::Span<std::uint32_t> s{sys, buf, mem::Node::kCpu};
      std::uint32_t cur = 0;
      for (std::uint64_t hop = 0; hop < kChain; ++hop) cur = s.load_chased(cur);
      if (cur == 0xffffffffu) std::abort();
    });
  }
  return sim::to_microseconds(sys.now() - t0) * 1e3 / static_cast<double>(kChain);
}

}  // namespace

int main() {
  bs::print_figure_header("Latency probe", "pointer-chase latency per tier",
                          "LPDDR5X ~110 ns, HBM3 ~350 ns, remote access adds "
                          "the C2C round trip");

  std::printf("%-28s %14s\n", "path", "ns_per_hop");
  {
    core::System sys{bs::rodinia_config(pagetable::kSystemPage64K, false)};
    runtime::Runtime rt{sys};
    core::Buffer b = rt.malloc_host(kChain * 4, "chain");
    std::printf("%-28s %14.1f\n", "cpu -> local LPDDR5X",
                chase_ns(sys, rt, b, false));
  }
  {
    core::System sys{bs::rodinia_config(pagetable::kSystemPage64K, false)};
    runtime::Runtime rt{sys};
    core::Buffer b = rt.malloc_device(kChain * 4, "chain");
    std::printf("%-28s %14.1f\n", "gpu -> local HBM3", chase_ns(sys, rt, b, true));
  }
  {
    core::System sys{bs::rodinia_config(pagetable::kSystemPage64K, false)};
    runtime::Runtime rt{sys};
    core::Buffer b = rt.malloc_system(kChain * 4, "chain");
    // CPU-resident system memory chased from the GPU: remote over C2C.
    (void)rt.host_phase("touch", 0, [&] {
      auto s = rt.host_span<std::uint32_t>(b);
      for (std::size_t i = 0; i < kChain; ++i) s.store(i, 0);
    });
    std::printf("%-28s %14.1f\n", "gpu -> remote LPDDR5X (C2C)",
                chase_ns(sys, rt, b, true));
  }
  {
    core::System sys{bs::rodinia_config(pagetable::kSystemPage64K, false)};
    runtime::Runtime rt{sys};
    core::Buffer b = rt.malloc_system(kChain * 4, "chain");
    (void)rt.host_phase("touch", 0, [&] {
      auto s = rt.host_span<std::uint32_t>(b);
      for (std::size_t i = 0; i < kChain; ++i) s.store(i, 0);
    });
    sys.prefetch(b, 0, b.bytes, mem::Node::kGpu);
    // GPU-resident system memory chased from the CPU: remote the other way.
    std::printf("%-28s %14.1f\n", "cpu -> remote HBM3 (C2C)",
                chase_ns(sys, rt, b, false));
  }
  return 0;
}
