// Ablation: first-touch origin (Section 5.1). Initializes the same buffer
// from the CPU or from the GPU, for system and managed memory, at both
// page sizes, and reports the initialization cost plus the effect of the
// Section 5.1.2 mitigations (cudaHostRegister / CPU pre-touch loop).

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

constexpr std::uint64_t kBytes = 64ull << 20;

double init_time(apps::MemMode mode, std::uint64_t page, bool gpu_init,
                 bool register_first) {
  core::System sys{bs::rodinia_config(page, false)};
  runtime::Runtime rt{sys};
  sys.ensure_gpu_context();  // keep context init out of the measurement
  core::Buffer b = mode == apps::MemMode::kManaged ? rt.malloc_managed(kBytes)
                                                   : rt.malloc_system(kBytes);
  if (register_first) rt.host_register(b);
  const sim::Picos t0 = sys.now();
  if (gpu_init) {
    (void)rt.launch("init", 0, [&] {
      auto s = rt.device_span<float>(b);
      for (std::size_t i = 0; i < s.size(); ++i) s.store(i, 1.0f);
    });
  } else {
    (void)rt.host_phase("init", 0, [&] {
      auto s = rt.host_span<float>(b);
      for (std::size_t i = 0; i < s.size(); ++i) s.store(i, 1.0f);
    });
  }
  const double ms = sim::to_milliseconds(sys.now() - t0);
  rt.free(b);
  return ms;
}

}  // namespace

int main() {
  bs::print_figure_header(
      "Ablation: first-touch origin", "CPU-init vs GPU-init of a 64 MiB buffer",
      "GPU first-touch of system memory is the pathological case (4 KiB "
      "worst); managed GPU-init is fast (2 MiB blocks); host_register "
      "removes the system-memory penalty");

  std::printf("%-9s %-6s %-9s %-10s %12s\n", "alloc", "page", "init_by",
              "registered", "init_ms");
  for (apps::MemMode mode : {apps::MemMode::kSystem, apps::MemMode::kManaged}) {
    for (const auto page : {pagetable::kSystemPage4K, pagetable::kSystemPage64K}) {
      for (const bool gpu_init : {false, true}) {
        const double t = init_time(mode, page, gpu_init, false);
        std::printf("%-9s %-6s %-9s %-10s %12.3f\n",
                    std::string{to_string(mode)}.c_str(),
                    page == pagetable::kSystemPage4K ? "4k" : "64k",
                    gpu_init ? "gpu" : "cpu", "no", t);
        std::printf("data\tablation_firsttouch\t%s\t%s\t%s\t%g\n",
                    std::string{to_string(mode)}.c_str(),
                    page == pagetable::kSystemPage4K ? "4k" : "64k",
                    gpu_init ? "gpu" : "cpu", t);
      }
    }
  }
  // Mitigation: host_register before GPU init (system memory).
  for (const auto page : {pagetable::kSystemPage4K, pagetable::kSystemPage64K}) {
    const double t = init_time(apps::MemMode::kSystem, page, true, true);
    std::printf("%-9s %-6s %-9s %-10s %12.3f\n", "system",
                page == pagetable::kSystemPage4K ? "4k" : "64k", "gpu", "yes", t);
  }
  return 0;
}
