// Robustness chaos sweep: every application x memory mode under injected
// memory-system faults (frame-allocation denials, flaky migration batches,
// NVLink-C2C brownouts, uncorrectable-ECC frame retirement, and a combined
// scenario under GPU memory pressure).
//
// Expectations: zero uncaught exceptions — every run either completes
// (OK/DEGRADED vs. the fault-free baseline) or fails with a reported
// ghum::Status row ("FAILED: out of memory"), and every scenario is
// bit-for-bit reproducible: the same seed and config give the same
// simulated end time and event-log digest on a second run.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "profile/tracer.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

struct Scenario {
  std::string name;
  fault::FaultConfig faults;
  bool pressure = false;  ///< shrink HBM to ~75 % of the managed peak
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> v;
  v.push_back({.name = "baseline", .faults = {}});

  fault::FaultConfig denial;
  denial.enabled = true;
  denial.frame_alloc_denial_prob = 0.02;
  v.push_back({.name = "alloc_denial", .faults = denial});

  fault::FaultConfig flaky;
  flaky.enabled = true;
  flaky.migration_batch_fail_prob = 0.25;
  v.push_back({.name = "flaky_migration", .faults = flaky});

  // The apps spend their first ~8 ms of simulated time in host-side init;
  // compute (and thus C2C traffic) runs in the tail, so the brownout
  // windows straddle the mid-run and the compute phase.
  fault::FaultConfig brownout;
  brownout.enabled = true;
  brownout.link_degrade.push_back({.start = sim::milliseconds(4),
                                   .duration = sim::milliseconds(3),
                                   .bandwidth_factor = 4.0,
                                   .latency_factor = 3.0});
  brownout.link_degrade.push_back({.start = sim::milliseconds(7.5),
                                   .duration = sim::milliseconds(10),
                                   .bandwidth_factor = 2.0,
                                   .latency_factor = 2.0});
  v.push_back({.name = "link_brownout", .faults = brownout});

  fault::FaultConfig ecc;
  ecc.enabled = true;
  ecc.ecc_events.push_back({.time = sim::milliseconds(1), .bytes = 2ull << 20});
  ecc.ecc_events.push_back({.time = sim::milliseconds(2), .bytes = 2ull << 20});
  ecc.ecc_events.push_back({.time = sim::milliseconds(5), .bytes = 2ull << 20});
  v.push_back({.name = "ecc_storm", .faults = ecc});

  fault::FaultConfig combined;
  combined.enabled = true;
  combined.frame_alloc_denial_prob = 0.01;
  combined.migration_batch_fail_prob = 0.1;
  combined.link_degrade.push_back({.start = sim::milliseconds(6),
                                   .duration = sim::milliseconds(6),
                                   .bandwidth_factor = 3.0,
                                   .latency_factor = 2.0});
  combined.ecc_events.push_back({.time = sim::milliseconds(1), .bytes = 2ull << 20});
  combined.ecc_events.push_back({.time = sim::milliseconds(3), .bytes = 2ull << 20});
  v.push_back({.name = "combined_pressure", .faults = combined, .pressure = true});
  return v;
}

struct ChaosApp {
  std::string name;
  std::function<core::SystemConfig()> config;
  std::function<apps::AppReport(runtime::Runtime&, apps::MemMode)> run;
};

std::vector<ChaosApp> chaos_apps() {
  std::vector<ChaosApp> v;
  for (const auto& a : bs::rodinia_apps()) {
    v.push_back(ChaosApp{
        .name = a.name,
        .config = [] { return bs::rodinia_config(pagetable::kSystemPage64K, false); },
        .run = [run = a.run](runtime::Runtime& rt, apps::MemMode m) {
          return run(rt, m, bs::Scale::kDefault);
        }});
  }
  v.push_back(ChaosApp{
      .name = "qiskit",
      .config = [] { return bs::qv_config(pagetable::kSystemPage64K, false); },
      .run = [](runtime::Runtime& rt, apps::MemMode m) {
        return apps::run_qvsim(rt, m, bs::qv_sim_config(bs::Scale::kDefault, 17));
      }});
  return v;
}

struct RunOutcome {
  Status status = Status::kSuccess;
  sim::Picos end_time = 0;
  std::uint64_t digest = 0;
  std::uint64_t denials = 0;
  std::size_t retries = 0;
  std::size_t retirements = 0;
  std::size_t fallbacks = 0;
};

RunOutcome one_run(const ChaosApp& app, apps::MemMode mode, const Scenario& sc,
                   std::uint64_t peak) {
  core::SystemConfig cfg = app.config();
  cfg.event_log = true;
  cfg.faults = sc.faults;
  if (sc.pressure) {
    cfg.hbm_capacity =
        std::max<std::uint64_t>(8ull << 20, cfg.gpu_driver_baseline + peak * 3 / 4);
  }
  core::System sys{cfg};
  runtime::Runtime rt{sys};
  const auto res = bs::guarded_run([&] { return app.run(rt, mode); });

  RunOutcome out;
  out.status = res.status;
  out.end_time = sys.now();
  out.digest = sys.events().digest(sys.now());
  out.denials = sys.fault_injector().denials();
  const auto trace = profile::Tracer{sys.events()}.summarize();
  out.retries = trace.migration_retries;
  out.retirements = trace.ecc_retirements;
  out.fallbacks = trace.fallback_placements;
  return out;
}

}  // namespace

int main() {
  bs::print_figure_header(
      "Robustness", "chaos sweep: apps x memory modes under injected faults",
      "every cell completes or fails with a Status row; repeated runs are "
      "bit-for-bit identical (same simulated end time and event digest)");

  const auto apps_v = chaos_apps();
  const auto scenarios_v = scenarios();

  // Fault-free per-(app, mode) reference times, filled by the baseline
  // scenario (first in the list) and used to classify DEGRADED cells.
  std::vector<double> baseline_ms(apps_v.size() * 3, 0.0);

  std::size_t failed_cells = 0;
  std::size_t nonrepro_cells = 0;

  std::printf("%-18s %-12s %-9s %-24s %10s %9s %8s %8s %6s\n", "scenario", "app",
              "mode", "outcome", "time_ms", "slowdown", "denials", "retries",
              "repro");
  for (const auto& sc : scenarios_v) {
    for (std::size_t ai = 0; ai < apps_v.size(); ++ai) {
      const auto& app = apps_v[ai];
      // Managed-version peak GPU footprint (paper Section 3.2), used to
      // size the pressure scenario's shrunken HBM.
      const std::uint64_t peak =
          sc.pressure ? bs::measure_peak_gpu(app.config(),
                                             [&](runtime::Runtime& rt) {
                                               return app.run(rt, apps::MemMode::kManaged);
                                             })
                      : 0;
      for (apps::MemMode mode : {apps::MemMode::kExplicit, apps::MemMode::kManaged,
                                 apps::MemMode::kSystem}) {
        const RunOutcome r1 = one_run(app, mode, sc, peak);
        const RunOutcome r2 = one_run(app, mode, sc, peak);
        const bool repro = r1.end_time == r2.end_time && r1.digest == r2.digest;
        if (!repro) ++nonrepro_cells;

        const double ms = sim::to_milliseconds(r1.end_time);
        const std::size_t bi = ai * 3 + static_cast<std::size_t>(mode);
        if (sc.name == "baseline") baseline_ms[bi] = ms;
        const double slowdown = baseline_ms[bi] > 0 ? ms / baseline_ms[bi] : 1.0;

        std::string outcome;
        if (r1.status != Status::kSuccess) {
          ++failed_cells;
          outcome = "FAILED: " + std::string{to_string(r1.status)};
        } else {
          outcome = slowdown > 1.05 ? "DEGRADED" : "OK";
        }
        std::printf("%-18s %-12s %-9s %-24s %10.3f %8.2fx %8llu %8zu %6s\n",
                    sc.name.c_str(), app.name.c_str(),
                    std::string{to_string(mode)}.c_str(), outcome.c_str(), ms,
                    slowdown, static_cast<unsigned long long>(r1.denials),
                    r1.retries, repro ? "yes" : "NO");
        std::printf("data\tchaos\t%s\t%s\t%s\t%s\t%.4f\t%.4f\t%llu\t%zu\t%zu\t%zu\t%d\n",
                    sc.name.c_str(), app.name.c_str(),
                    std::string{to_string(mode)}.c_str(), outcome.c_str(), ms,
                    slowdown, static_cast<unsigned long long>(r1.denials),
                    r1.retries, r1.retirements, r1.fallbacks, repro ? 1 : 0);
      }
    }
  }

  std::printf("\nsummary: %zu cells, %zu failed-with-status, %zu non-reproducible, "
              "0 uncaught exceptions\n",
              scenarios_v.size() * apps_v.size() * 3, failed_cells, nonrepro_cells);
  // Non-reproducibility is a bug in the deterministic-injection contract.
  return nonrepro_cells == 0 ? 0 : 1;
}
