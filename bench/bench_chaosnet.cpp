// Lossy-fabric survival bench (DESIGN.md Section 14). The bench_fleet
// node-kill storm is re-run with every control and data message subject
// to a seeded chaos schedule — drops, corruptions, duplicates and
// reorders on every fabric link — and with the omniscient fault oracle
// replaced by heartbeat-based failure detection. The two scheduled node
// losses become *silent* deaths the controller must notice through
// missed heartbeats; the evacuation blob of the degraded node arrives
// corrupted end-to-end (past the link checksum) and must be recovered by
// digest verification + re-request. Gates, all enforced (nonzero exit):
//
//   (a) bit-for-bit reproducibility under chaos: two complete runs
//       produce identical fleet, fabric and alert-stream digests;
//   (b) the reliability protocol did real work: >= 1 retransmission and
//       >= 1 send that succeeded only after retransmitting;
//   (c) detection replaces omniscience: both silent deaths are detected
//       through the heartbeat miss threshold (and nothing else is — no
//       false-positive death), their victims replay, and every finished
//       job still matches its uninterrupted solo checksum;
//   (d) evacuation integrity: >= 1 corrupted evacuation blob, recovered
//       by re-request (or the replay ladder) — the migration completes;
//   (e) SLO preservation: zero violations among top-priority (class 0)
//       jobs despite the injected loss.
//
// Flags:
//   --smoke       small problem sizes (the ctest "perf" smoke target)
//   --out <file>  output JSON path (default BENCH_chaosnet.json)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "fleet/arrival.hpp"
#include "fleet/controller.hpp"
#include "tenant/scheduler.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

core::SystemConfig node_config() {
  core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, false);
  cfg.event_log = true;
  return cfg;
}

/// Same six-app managed-mode catalog as bench_fleet: the storm shape is
/// held constant so any behavior change is attributable to the chaos.
std::vector<fleet::JobTemplate> catalog(bs::Scale s) {
  const apps::MemMode m = apps::MemMode::kManaged;
  std::vector<fleet::JobTemplate> out;
  const auto add = [&](std::string name, std::uint64_t footprint,
                       std::function<apps::AppCoro(runtime::Runtime&)> make) {
    fleet::JobTemplate t;
    t.name = std::move(name);
    t.mode = m;
    t.make = std::move(make);
    t.footprint_bytes = footprint;
    out.push_back(std::move(t));
  };
  add("hotspot", 2ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::hotspot_steps(rt, m, bs::hotspot_config(s));
  });
  add("pathfinder", 1ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::pathfinder_steps(rt, m, bs::pathfinder_config(s));
  });
  add("needle", 4ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::needle_steps(rt, m, bs::needle_config(s));
  });
  add("bfs", 2ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::bfs_steps(rt, m, bs::bfs_config(s));
  });
  add("srad", 4ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::srad_steps(rt, m, bs::srad_config(s));
  });
  add("qvsim", 8ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::qvsim_steps(rt, m, bs::qv_sim_config(s, 16));
  });
  return out;
}

/// Solo reference pass, identical to bench_fleet's: checksum from the
/// first uninterrupted incarnation, marginal cost from the second/third.
void measure_solo(fleet::JobTemplate& t) {
  core::System sys{node_config()};
  tenant::SchedulerConfig scfg;
  scfg.policy = tenant::Policy::kFifo;
  tenant::Scheduler sched{sys, scfg};
  const auto spec = [&] {
    tenant::JobSpec s;
    s.name = t.name;
    s.mode = t.mode;
    s.make = t.make;
    s.footprint_bytes = t.footprint_bytes;
    return s;
  };
  tenant::TenantId first = tenant::kNoTenant;
  tenant::TenantId last = tenant::kNoTenant;
  (void)sched.submit(spec(), &first);
  (void)sched.submit(spec(), nullptr);
  (void)sched.submit(spec(), &last);
  sched.run_all();
  t.solo_checksum = sched.job(first).report.checksum;
  t.est_cost = std::max<sim::Picos>(
      1, (sched.job(last).finished_at - sched.job(first).finished_at) / 2);
}

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFFull;
    h *= 0x100000001b3ull;
  }
  return h;
}

struct ChaosResult {
  std::uint64_t digest = 0;         ///< fleet digest (nodes+jobs+metrics)
  std::uint64_t fabric_digest = 0;  ///< every transfer's cost fingerprint
  std::uint64_t alert_digest = 0;   ///< FNV over the alert transitions
  std::uint64_t finished = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  std::uint64_t migrated = 0;
  std::uint64_t replayed = 0;
  std::uint64_t checksum_mismatches = 0;
  std::vector<fleet::SloSummary> classes;
  std::vector<fleet::NodeStatus> nodes;
  std::uint64_t node_losses = 0;
  std::uint64_t detected_losses = 0;
  std::uint64_t evacuations = 0;
  std::uint64_t hb_probes = 0;
  std::uint64_t hb_misses = 0;
  std::uint64_t hb_suspects = 0;
  std::uint64_t hb_rejoins = 0;
  std::uint64_t evac_corruptions = 0;
  std::uint64_t evac_rerequests = 0;
  std::uint64_t evac_replays = 0;
  std::uint64_t alert_transitions = 0;
  net::ReliableTotals net;
  sim::Picos makespan = 0;
};

ChaosResult run_chaos(const fleet::FleetConfig& cfg,
                      const std::vector<fleet::JobTemplate>& templates,
                      const std::vector<fleet::JobRequest>& requests,
                      std::uint32_t classes) {
  fleet::Controller ctl{cfg, templates};
  (void)ctl.run(requests);

  ChaosResult r;
  r.digest = ctl.digest();
  r.fabric_digest = ctl.fabric()->digest();
  r.net = ctl.fabric()->reliable_totals();
  if (const obs::AlertEngine* ae = ctl.alert_engine()) {
    r.alert_transitions = ae->events().size();
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const obs::AlertEvent& e : ae->events()) {
      h = fnv1a_mix(h, static_cast<std::uint64_t>(e.time));
      h = fnv1a_mix(h, (static_cast<std::uint64_t>(e.rule) << 1) |
                           (e.open ? 1u : 0u));
      h = fnv1a_mix(h, static_cast<std::uint64_t>(e.value));
    }
    r.alert_digest = h;
  }
  for (const fleet::FleetJob& j : ctl.jobs()) {
    if (j.state == fleet::FleetJobState::kFinished) {
      ++r.finished;
      if (j.migrated) ++r.migrated;
      if (j.replayed_after_loss) ++r.replayed;
      if (j.checksum != templates[j.req.tmpl].solo_checksum) {
        ++r.checksum_mismatches;
      }
    } else if (j.state == fleet::FleetJobState::kFailed) {
      ++r.failed;
    }
    r.makespan = std::max(r.makespan, j.finished_at);
  }
  for (std::uint32_t c = 0; c < classes; ++c) {
    r.classes.push_back(ctl.slo_summary(c));
  }
  for (const fleet::FleetJob& j : ctl.jobs()) {
    if (!j.slo_violation || j.req.priority != 0) continue;
    std::printf("  violator job=%llu tmpl=%s arrival=%.3f placed=%.3f "
                "finished=%.3f deadline=%.3f state=%s status=%s\n",
                static_cast<unsigned long long>(j.req.id),
                templates[j.req.tmpl].name.c_str(),
                sim::to_milliseconds(j.req.arrival),
                sim::to_milliseconds(j.first_placed_at),
                sim::to_milliseconds(j.finished_at),
                sim::to_milliseconds(j.req.deadline),
                std::string{to_string(j.state)}.c_str(),
                std::string{to_string(j.status)}.c_str());
  }
  r.nodes = ctl.node_status();
  obs::MetricsRegistry& m = ctl.metrics();
  r.shed = m.counter("ghum_fleet_shed_total").value();
  r.node_losses = m.counter("ghum_fleet_node_losses_total").value();
  r.detected_losses = m.counter("ghum_fleet_detected_losses_total").value();
  r.evacuations = m.counter("ghum_fleet_evacuations_total").value();
  r.hb_probes = m.counter("ghum_fleet_heartbeat_probes_total").value();
  r.hb_misses = m.counter("ghum_fleet_heartbeat_misses_total").value();
  r.hb_suspects = m.counter("ghum_fleet_heartbeat_suspects_total").value();
  r.hb_rejoins = m.counter("ghum_fleet_heartbeat_rejoins_total").value();
  r.evac_corruptions = m.counter("ghum_fleet_evac_corruptions_total").value();
  r.evac_rerequests = m.counter("ghum_fleet_evac_rerequests_total").value();
  r.evac_replays = m.counter("ghum_fleet_evac_replays_total").value();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bs::Scale scale = bs::Scale::kDefault;
  std::string out_path = "BENCH_chaosnet.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      scale = bs::Scale::kSmall;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <file>]\n", argv[0]);
      return 2;
    }
  }

  bs::print_figure_header(
      "ChaosNet", "node-kill storm over a lossy fabric",
      "the bench_fleet storm re-run with seeded per-link message chaos "
      "(drop/corrupt/duplicate/reorder), heartbeat-based failure detection "
      "instead of an omniscient oracle, and a corrupted evacuation blob — "
      "survival must be reproducible, checksum-clean and top-class "
      "violation-free");

  std::size_t failures = 0;

  std::vector<fleet::JobTemplate> templates = catalog(scale);
  std::printf("solo reference runs\n");
  std::printf("%-12s %12s %12s %18s\n", "app", "cost_ms", "foot_mib",
              "solo_checksum");
  sim::Picos mean_cost = 0;
  for (fleet::JobTemplate& t : templates) {
    measure_solo(t);
    mean_cost += t.est_cost;
    std::printf("%-12s %12.3f %12.1f   %016llx\n", t.name.c_str(),
                sim::to_milliseconds(t.est_cost),
                static_cast<double>(t.footprint_bytes) / (1 << 20),
                static_cast<unsigned long long>(t.solo_checksum));
  }
  mean_cost /= static_cast<sim::Picos>(templates.size());

  // Same offered load as bench_fleet — chaos rides on top of a fleet that
  // is already busy when its nodes start dying.
  fleet::ArrivalConfig acfg;
  acfg.count = scale == bs::Scale::kSmall ? 48 : 240;
  acfg.mean_interarrival = mean_cost / 4;
  acfg.priority_classes = 3;
  acfg.class_weights = {1, 2, 3};
  acfg.deadline_floor = sim::milliseconds(64);
  acfg.top_replicas = 2;
  const std::vector<fleet::JobRequest> requests =
      fleet::generate_arrivals(acfg, templates);

  const sim::Picos horizon =
      acfg.mean_interarrival * static_cast<sim::Picos>(acfg.count);
  fleet::FleetConfig fcfg;
  fcfg.nodes = 4;
  fcfg.spares = 1;
  fcfg.node_config = node_config();
  fcfg.scheduler.policy = tenant::Policy::kPriority;
  fcfg.placement = fleet::PlacementPolicy::kLoadBalance;
  fcfg.node_footprint_budget = 24ull << 20;
  fcfg.shed_protect_classes = 1;
  fcfg.replace_max_retries = 6;
  fcfg.replace_backoff = sim::milliseconds(2);
  fcfg.faults.node_loss = {{.time = (horizon * 3) / 10, .node = 1},
                           {.time = (horizon * 7) / 10, .node = 2}};
  fcfg.faults.node_degrade = {
      {.time = horizon / 2, .node = 0, .slow_factor = 4}};
  fcfg.faults.evacuate_degraded = true;

  // The chaos schedule: every fabric message draws its fate from a
  // per-link seeded stream. ~3% of messages vanish, ~2% arrive corrupt
  // (link checksum catches those), ~2% are duplicated (receive-side dedup
  // discards the echo), ~2% are held out of order. On top of that, the
  // first bulk (>= 1 MiB) reliable payload — the evacuation blob — is
  // corrupted end-to-end, past the link checksum, so only the blob digest
  // check at the spare can catch it.
  fcfg.faults.messages.enabled = true;
  fcfg.faults.messages.drop_prob = 0.03;
  fcfg.faults.messages.corrupt_prob = 0.02;
  fcfg.faults.messages.duplicate_prob = 0.02;
  fcfg.faults.messages.reorder_prob = 0.02;
  fcfg.faults.messages.e2e_corrupt_bulk = {0};
  // Control messages are <= 512 B; the only reliable payloads above this
  // are evacuation blobs, so bulk index 0 is the first blob shipped even
  // at smoke scale (where the snapshot stays under the 1 MiB default).
  fcfg.faults.messages.bulk_threshold = 4096;

  // Detection replaces omniscience: the two node losses above are silent
  // deaths; the controller must notice them through missed heartbeats.
  // The miss threshold is sized so random probe loss (~ a few percent per
  // edge) practically never strings enough consecutive misses together
  // to declare a live node dead, while a genuinely dead endpoint — which
  // misses every edge — is declared within miss_threshold intervals.
  fcfg.heartbeat.enabled = true;
  fcfg.heartbeat.interval =
      std::max<sim::Picos>(sim::microseconds(50), horizon / 128);
  fcfg.heartbeat.miss_threshold = 4;

  // The observability stack rides along: recorder + SLO alert rules; the
  // alert transition stream is part of the reproducibility gate.
  fcfg.obs.enabled = true;
  fcfg.obs.cadence = std::max<sim::Picos>(1, acfg.mean_interarrival / 2);
  fcfg.obs.ring_capacity = 8192;
  {
    obs::AlertRule backlog;
    backlog.name = "fleet-backlog";
    backlog.instrument = "fleet.pending_jobs";
    backlog.predicate = obs::AlertPredicate::kAbove;
    backlog.threshold = 2;
    backlog.for_duration = fcfg.obs.cadence;
    backlog.severity = obs::AlertSeverity::kWarning;
    obs::AlertRule retrans;
    retrans.name = "net-retransmit-storm";
    retrans.instrument = "fabric.retransmits";
    retrans.predicate = obs::AlertPredicate::kAbove;
    retrans.threshold = 0;
    retrans.for_duration = 0;
    retrans.severity = obs::AlertSeverity::kWarning;
    fcfg.obs.alerts = {backlog, retrans};
  }

  std::printf("\nchaos storm: %llu requests over %u nodes (+%u spare), "
              "silent deaths at %.1f/%.1f ms, degrade at %.1f ms\n"
              "  drop=%.0f%% corrupt=%.0f%% dup=%.0f%% reorder=%.0f%%, "
              "heartbeat every %.3f ms, death after %u misses\n",
              static_cast<unsigned long long>(acfg.count), fcfg.nodes,
              fcfg.spares, sim::to_milliseconds(fcfg.faults.node_loss[0].time),
              sim::to_milliseconds(fcfg.faults.node_loss[1].time),
              sim::to_milliseconds(fcfg.faults.node_degrade[0].time),
              fcfg.faults.messages.drop_prob * 100,
              fcfg.faults.messages.corrupt_prob * 100,
              fcfg.faults.messages.duplicate_prob * 100,
              fcfg.faults.messages.reorder_prob * 100,
              sim::to_milliseconds(fcfg.heartbeat.interval),
              fcfg.heartbeat.miss_threshold);

  const ChaosResult a =
      run_chaos(fcfg, templates, requests, acfg.priority_classes);
  const ChaosResult b =
      run_chaos(fcfg, templates, requests, acfg.priority_classes);

  // Gate (a): chaos is seeded, so two runs are bit-for-bit identical —
  // fleet digest, every fabric transfer, every alert transition.
  const bool repro_ok = a.digest == b.digest &&
                        a.fabric_digest == b.fabric_digest &&
                        a.alert_digest == b.alert_digest;
  if (!repro_ok) {
    ++failures;
    std::fprintf(stderr,
                 "  chaos NOT reproducible: fleet %016llx/%016llx "
                 "fabric %016llx/%016llx alerts %016llx/%016llx\n",
                 static_cast<unsigned long long>(a.digest),
                 static_cast<unsigned long long>(b.digest),
                 static_cast<unsigned long long>(a.fabric_digest),
                 static_cast<unsigned long long>(b.fabric_digest),
                 static_cast<unsigned long long>(a.alert_digest),
                 static_cast<unsigned long long>(b.alert_digest));
  }
  // Gate (b): the reliability protocol actually fired.
  const bool retrans_ok =
      a.net.retransmits >= 1 && a.net.recovered_sends >= 1 && a.net.drops >= 1;
  if (!retrans_ok) {
    ++failures;
    std::fprintf(stderr,
                 "  no retransmission exercised: retransmits=%llu "
                 "recovered=%llu drops=%llu\n",
                 static_cast<unsigned long long>(a.net.retransmits),
                 static_cast<unsigned long long>(a.net.recovered_sends),
                 static_cast<unsigned long long>(a.net.drops));
  }
  // Gate (c): both silent deaths detected via the heartbeat ladder, no
  // false-positive death, victims replayed, survivors checksum-clean.
  const bool detect_ok = a.detected_losses == 2 && a.node_losses == 2 &&
                         a.replayed >= 1 && a.checksum_mismatches == 0;
  if (!detect_ok) {
    ++failures;
    std::fprintf(stderr,
                 "  detection off: detected=%llu losses=%llu replayed=%llu "
                 "mismatches=%llu\n",
                 static_cast<unsigned long long>(a.detected_losses),
                 static_cast<unsigned long long>(a.node_losses),
                 static_cast<unsigned long long>(a.replayed),
                 static_cast<unsigned long long>(a.checksum_mismatches));
  }
  // Gate (d): the evacuation blob arrived corrupt and the migration still
  // completed — by re-request, or (double corruption) the replay ladder.
  const bool evac_ok =
      a.evac_corruptions >= 1 && a.evac_rerequests >= 1 &&
      (a.evacuations >= 1 || a.evac_replays >= 1);
  if (!evac_ok) {
    ++failures;
    std::fprintf(stderr,
                 "  evac integrity off: corruptions=%llu rerequests=%llu "
                 "evacuations=%llu replays=%llu\n",
                 static_cast<unsigned long long>(a.evac_corruptions),
                 static_cast<unsigned long long>(a.evac_rerequests),
                 static_cast<unsigned long long>(a.evacuations),
                 static_cast<unsigned long long>(a.evac_replays));
  }
  // Gate (e): zero top-class SLO violations despite the chaos.
  const bool slo_ok = !a.classes.empty() && a.classes[0].violations == 0;
  if (!slo_ok) {
    ++failures;
    std::fprintf(stderr, "  top class violated its SLO %llu times\n",
                 static_cast<unsigned long long>(
                     a.classes.empty() ? 0 : a.classes[0].violations));
  }
  // Bookkeeping sanity: nothing lost track of.
  const bool book_ok = a.finished + a.failed == acfg.count;
  if (!book_ok) {
    ++failures;
    std::fprintf(stderr, "  bookkeeping off: finished+failed=%llu/%llu\n",
                 static_cast<unsigned long long>(a.finished + a.failed),
                 static_cast<unsigned long long>(acfg.count));
  }

  std::printf("\nreliability protocol\n");
  std::printf("  sends=%llu retransmits=%llu recovered=%llu exhausted=%llu\n",
              static_cast<unsigned long long>(a.net.sends),
              static_cast<unsigned long long>(a.net.retransmits),
              static_cast<unsigned long long>(a.net.recovered_sends),
              static_cast<unsigned long long>(a.net.exhausted));
  std::printf("  drops=%llu corrupt=%llu dup_discards=%llu reorders=%llu "
              "acks=%llu e2e_corrupt=%llu\n",
              static_cast<unsigned long long>(a.net.drops),
              static_cast<unsigned long long>(a.net.corruptions),
              static_cast<unsigned long long>(a.net.dup_discards),
              static_cast<unsigned long long>(a.net.reorders),
              static_cast<unsigned long long>(a.net.acks),
              static_cast<unsigned long long>(a.net.e2e_corruptions));
  std::printf("failure detection\n");
  std::printf("  probes=%llu misses=%llu suspects=%llu rejoins=%llu "
              "detected_losses=%llu\n",
              static_cast<unsigned long long>(a.hb_probes),
              static_cast<unsigned long long>(a.hb_misses),
              static_cast<unsigned long long>(a.hb_suspects),
              static_cast<unsigned long long>(a.hb_rejoins),
              static_cast<unsigned long long>(a.detected_losses));
  std::printf("evacuation integrity\n");
  std::printf("  corruptions=%llu rerequests=%llu replays=%llu "
              "evacuations=%llu\n",
              static_cast<unsigned long long>(a.evac_corruptions),
              static_cast<unsigned long long>(a.evac_rerequests),
              static_cast<unsigned long long>(a.evac_replays),
              static_cast<unsigned long long>(a.evacuations));
  std::printf("alerts: %llu transitions\n",
              static_cast<unsigned long long>(a.alert_transitions));

  std::printf("\n%-7s %9s %9s %7s %10s %10s %10s %10s\n", "class", "submit",
              "finish", "fail", "violations", "p50_ms", "p95_ms", "p99_ms");
  for (const fleet::SloSummary& c : a.classes) {
    std::printf("%-7u %9llu %9llu %7llu %10llu %10.3f %10.3f %10.3f\n",
                c.priority, static_cast<unsigned long long>(c.submitted),
                static_cast<unsigned long long>(c.finished),
                static_cast<unsigned long long>(c.failed),
                static_cast<unsigned long long>(c.violations),
                sim::to_milliseconds(c.p50), sim::to_milliseconds(c.p95),
                sim::to_milliseconds(c.p99));
    std::printf("data\tslo\t%u\t%llu\t%llu\t%llu\t%llu\n", c.priority,
                static_cast<unsigned long long>(c.submitted),
                static_cast<unsigned long long>(c.finished),
                static_cast<unsigned long long>(c.failed),
                static_cast<unsigned long long>(c.violations));
  }
  std::printf("\nnodes after the storm\n");
  for (const fleet::NodeStatus& n : a.nodes) {
    std::printf("  node %u: %-8s local_now=%.3f ms live=%u%s\n", n.id,
                std::string{to_string(n.state)}.c_str(),
                sim::to_milliseconds(n.local_now), n.live_jobs,
                n.suspected ? " SUSPECTED" : "");
  }
  std::printf(
      "\nfinished=%llu failed=%llu shed=%llu migrated=%llu replayed=%llu\n",
      static_cast<unsigned long long>(a.finished),
      static_cast<unsigned long long>(a.failed),
      static_cast<unsigned long long>(a.shed),
      static_cast<unsigned long long>(a.migrated),
      static_cast<unsigned long long>(a.replayed));
  std::printf("gates: repro=%s retrans=%s detect=%s evac=%s top-slo=%s "
              "book=%s\n",
              repro_ok ? "ok" : "FAIL", retrans_ok ? "ok" : "FAIL",
              detect_ok ? "ok" : "FAIL", evac_ok ? "ok" : "FAIL",
              slo_ok ? "ok" : "FAIL", book_ok ? "ok" : "FAIL");

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"chaosnet\",\n  \"scale\": \"%s\",\n",
                 scale == bs::Scale::kSmall ? "small" : "default");
    std::fprintf(f, "  \"requests\": %llu,\n",
                 static_cast<unsigned long long>(acfg.count));
    std::fprintf(f,
                 "  \"finished\": %llu,\n  \"failed\": %llu,\n"
                 "  \"shed\": %llu,\n  \"migrated\": %llu,\n"
                 "  \"replayed_after_loss\": %llu,\n",
                 static_cast<unsigned long long>(a.finished),
                 static_cast<unsigned long long>(a.failed),
                 static_cast<unsigned long long>(a.shed),
                 static_cast<unsigned long long>(a.migrated),
                 static_cast<unsigned long long>(a.replayed));
    std::fprintf(f,
                 "  \"net\": {\"sends\": %llu, \"retransmits\": %llu, "
                 "\"recovered\": %llu, \"exhausted\": %llu, \"drops\": %llu, "
                 "\"corruptions\": %llu, \"dup_discards\": %llu, "
                 "\"reorders\": %llu, \"acks\": %llu, "
                 "\"e2e_corruptions\": %llu},\n",
                 static_cast<unsigned long long>(a.net.sends),
                 static_cast<unsigned long long>(a.net.retransmits),
                 static_cast<unsigned long long>(a.net.recovered_sends),
                 static_cast<unsigned long long>(a.net.exhausted),
                 static_cast<unsigned long long>(a.net.drops),
                 static_cast<unsigned long long>(a.net.corruptions),
                 static_cast<unsigned long long>(a.net.dup_discards),
                 static_cast<unsigned long long>(a.net.reorders),
                 static_cast<unsigned long long>(a.net.acks),
                 static_cast<unsigned long long>(a.net.e2e_corruptions));
    std::fprintf(f,
                 "  \"detection\": {\"probes\": %llu, \"misses\": %llu, "
                 "\"suspects\": %llu, \"rejoins\": %llu, "
                 "\"detected_losses\": %llu},\n",
                 static_cast<unsigned long long>(a.hb_probes),
                 static_cast<unsigned long long>(a.hb_misses),
                 static_cast<unsigned long long>(a.hb_suspects),
                 static_cast<unsigned long long>(a.hb_rejoins),
                 static_cast<unsigned long long>(a.detected_losses));
    std::fprintf(f,
                 "  \"evacuation\": {\"corruptions\": %llu, "
                 "\"rerequests\": %llu, \"replays\": %llu, "
                 "\"evacuations\": %llu},\n",
                 static_cast<unsigned long long>(a.evac_corruptions),
                 static_cast<unsigned long long>(a.evac_rerequests),
                 static_cast<unsigned long long>(a.evac_replays),
                 static_cast<unsigned long long>(a.evacuations));
    std::fprintf(f, "  \"makespan_ms\": %.4f,\n",
                 sim::to_milliseconds(a.makespan));
    std::fprintf(f, "  \"classes\": [\n");
    for (std::size_t i = 0; i < a.classes.size(); ++i) {
      const fleet::SloSummary& c = a.classes[i];
      std::fprintf(f,
                   "    {\"class\": %u, \"submitted\": %llu, \"finished\": "
                   "%llu, \"failed\": %llu, \"violations\": %llu, "
                   "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                   c.priority, static_cast<unsigned long long>(c.submitted),
                   static_cast<unsigned long long>(c.finished),
                   static_cast<unsigned long long>(c.failed),
                   static_cast<unsigned long long>(c.violations),
                   sim::to_milliseconds(c.p50), sim::to_milliseconds(c.p95),
                   sim::to_milliseconds(c.p99),
                   i + 1 < a.classes.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"gates\": {\"repro_ok\": %s, \"retrans_ok\": %s, "
                 "\"detect_ok\": %s, \"evac_ok\": %s, \"top_slo_ok\": %s, "
                 "\"book_ok\": %s},\n",
                 repro_ok ? "true" : "false", retrans_ok ? "true" : "false",
                 detect_ok ? "true" : "false", evac_ok ? "true" : "false",
                 slo_ok ? "true" : "false", book_ok ? "true" : "false");
    std::fprintf(f, "  \"total_failures\": %zu,\n", failures);
    std::fprintf(f, "  \"ok\": %s\n", failures == 0 ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (failures != 0) {
    std::fprintf(stderr, "FAIL: %zu chaosnet check failures\n", failures);
    return 1;
  }
  std::printf("all chaosnet checks passed\n");
  return 0;
}
