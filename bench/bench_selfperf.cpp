// Simulator self-performance: wall-clock cost of the simulator's hot
// access path, not of the simulated machine. Every tier-1 application x
// memory mode runs twice on identical configs — once on the legacy
// per-access accounting path and once on the batched run path
// (SystemConfig::batched_access) — under a wall-clock timer.
//
// The batched path is an optimization of the simulator only: both runs
// must be bit-for-bit identical in simulated end time and event-log
// digest (the differential check; the process exits nonzero on any
// mismatch). Results land in BENCH_selfperf.json.
//
// The bench also reports absolute simulator throughput — simulated events
// per wall-clock second over the batched grid — and can drive a
// *full-scale* smoke: the paper's unscaled 96 GB / 480 GB machine
// (benchsupport::full_scale()), a 2^33-amplitude state-vector footprint
// touched page by page through the resolve/advance_view/commit access
// path. Only the extent-based page tables make this viable; the smoke
// asserts the structural wins (run count stays small, simulator RSS grows
// sub-linearly in the simulated footprint).
//
// Flags:
//   --smoke               small problem sizes (the ctest "perf" smoke target)
//   --out <file>          output JSON path (default BENCH_selfperf.json)
//   --check <file>        compare the aggregate legacy/batched speedup against
//                         a recorded baseline JSON and fail if the batched
//                         path has regressed more than 2x relative to it
//   --fullscale-out <f>   run the full-scale smoke and write its JSON to <f>
//   --gate-throughput <f> absolute events/sec gate (CI only — wall-clock
//                         sensitive, so it is NOT part of the ctest smoke):
//                         fail if measured events/sec (and, when the smoke
//                         ran, full-scale page visits/sec) fall below 80%
//                         of the values recorded in baseline <f>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

struct SelfperfApp {
  std::string name;
  std::function<core::SystemConfig()> config;
  std::function<apps::AppReport(runtime::Runtime&, apps::MemMode, bs::Scale)> run;
};

std::vector<SelfperfApp> selfperf_apps() {
  std::vector<SelfperfApp> v;
  for (const auto& a : bs::rodinia_apps()) {
    v.push_back(SelfperfApp{
        .name = a.name,
        .config = [] { return bs::rodinia_config(pagetable::kSystemPage64K, false); },
        .run = a.run});
  }
  v.push_back(SelfperfApp{
      .name = "qiskit",
      .config = [] { return bs::qv_config(pagetable::kSystemPage64K, false); },
      .run = [](runtime::Runtime& rt, apps::MemMode m, bs::Scale s) {
        return apps::run_qvsim(rt, m, bs::qv_sim_config(s, 17));
      }});
  return v;
}

struct TimedRun {
  double wall_ms = 0;
  sim::Picos end_time = 0;
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  Status status = Status::kSuccess;
};

TimedRun one_run(const SelfperfApp& app, apps::MemMode mode, bs::Scale scale,
                 bool batched) {
  core::SystemConfig cfg = app.config();
  cfg.event_log = true;
  cfg.batched_access = batched;
  core::System sys{cfg};
  runtime::Runtime rt{sys};
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = bs::guarded_run([&] { return app.run(rt, mode, scale); });
  const auto t1 = std::chrono::steady_clock::now();
  TimedRun out;
  out.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(t1 - t0)
          .count();
  out.end_time = sys.now();
  out.digest = sys.events().digest(sys.now());
  out.events = sys.events().events().size();
  out.status = res.status;
  return out;
}

struct Cell {
  std::string app;
  std::string mode;
  double legacy_ms = 0;
  double batched_ms = 0;
  double sim_ms = 0;
  bool differential_ok = false;
};

/// Minimal extraction of a numeric field from a baseline JSON written by a
/// previous run of this bench ("key": value).
bool find_json_number(const std::string& text, const char* key, double* out) {
  const std::string needle = std::string{"\""} + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

/// Current resident-set size of this process in KiB (Linux
/// /proc/self/status; 0 where unavailable, which disables the RSS check).
long read_vmrss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  long kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::strtol(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

/// One page-granular pass over [base, base+bytes): the batched hot path
/// (advance_view inside a residency run, full resolve at run boundaries),
/// committing a token access per page. Returns pages visited.
std::uint64_t sweep_pages(core::System& sys, std::uint64_t base,
                          std::uint64_t bytes, mem::Node origin) {
  const std::uint64_t page = sys.config().system_page_size;
  core::PageView view;
  std::uint64_t visits = 0;
  for (std::uint64_t va = base; va < base + bytes; va += page) {
    if (!sys.advance_view(view, va)) view = sys.resolve(va, origin);
    sys.commit(view, 64, 64, 2, 2);
    ++visits;
  }
  return visits;
}

struct FullScaleResult {
  std::uint32_t qubits = 0;
  std::uint64_t footprint = 0;
  std::uint64_t page_visits = 0;
  double wall_s = 0;
  double pages_per_sec = 0;
  std::size_t run_count = 0;
  std::uint64_t hbm_resident = 0;
  std::uint64_t ddr_resident = 0;
  long rss_before_kb = 0;
  long rss_after_kb = 0;
  bool runs_ok = false;
  bool rss_ok = false;
  [[nodiscard]] bool ok() const noexcept { return runs_ok && rss_ok; }
};

/// The paper's unscaled machine (96 GB HBM / 480 GB LPDDR5X) hosting a
/// 33-qubit state vector (128 GiB — the largest oversubscribed Section 7
/// size below the 34-qubit full run): CPU first-touch initialization,
/// prefetch until HBM fills, then two GPU passes (HBM prefix local, DDR
/// tail remote over C2C). Page-granular, no backing bytes, no event log —
/// the point is that the simulator itself stays fast and small: residency
/// must stay a handful of extents and the process RSS must grow
/// sub-linearly in the 128 GiB simulated footprint.
FullScaleResult run_full_scale(std::uint32_t qubits) {
  FullScaleResult r;
  r.qubits = qubits;
  r.footprint = 16ull << qubits;  // 2^q amplitudes x complex<double>
  r.rss_before_kb = read_vmrss_kb();
  const auto t0 = std::chrono::steady_clock::now();

  core::System sys{bs::full_scale()};
  core::Buffer state = sys.sys_malloc(r.footprint, "fullscale.state");
  r.page_visits += sweep_pages(sys, state.va, r.footprint, mem::Node::kCpu);
  sys.prefetch(state, 0, r.footprint, mem::Node::kGpu);
  for (int pass = 0; pass < 2; ++pass) {
    sys.kernel_begin("fullscale.sweep");
    r.page_visits += sweep_pages(sys, state.va, r.footprint, mem::Node::kGpu);
    (void)sys.kernel_end();
  }

  const auto t1 = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.pages_per_sec =
      r.wall_s > 0 ? static_cast<double>(r.page_visits) / r.wall_s : 0;
  const auto& pt = sys.machine().system_pt();
  r.run_count = pt.run_count();
  r.hbm_resident = pt.resident_bytes(mem::Node::kGpu);
  r.ddr_resident = pt.resident_bytes(mem::Node::kCpu);
  r.rss_after_kb = read_vmrss_kb();

  // Structural gates. A dense allocation split once by the HBM/DDR
  // boundary is a handful of runs; 64 leaves headroom for stray
  // fragmentation without letting per-page behavior (2 million runs)
  // sneak back in. RSS growth under footprint/256 (512 MiB for 128 GiB)
  // proves the simulator no longer materializes the machine it models.
  r.runs_ok = r.run_count <= 64;
  const auto rss_growth_bytes =
      static_cast<std::uint64_t>(
          r.rss_after_kb > r.rss_before_kb ? r.rss_after_kb - r.rss_before_kb
                                           : 0) *
      1024ull;
  r.rss_ok = r.rss_before_kb == 0 || rss_growth_bytes < r.footprint / 256;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bs::Scale scale = bs::Scale::kDefault;
  std::string out_path = "BENCH_selfperf.json";
  std::string check_path;
  std::string fullscale_path;
  std::string gate_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      scale = bs::Scale::kSmall;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fullscale-out") == 0 && i + 1 < argc) {
      fullscale_path = argv[++i];
    } else if (std::strcmp(argv[i], "--gate-throughput") == 0 && i + 1 < argc) {
      gate_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out <file>] [--check <baseline>] "
                   "[--fullscale-out <file>] [--gate-throughput <baseline>]\n",
                   argv[0]);
      return 2;
    }
  }

  bs::print_figure_header(
      "Selfperf", "simulator wall-clock: batched vs legacy access accounting",
      "batched path is faster in wall-clock time and bit-for-bit identical "
      "in simulated time and event stream");

  std::vector<Cell> cells;
  std::size_t differential_failures = 0;
  double total_legacy = 0, total_batched = 0;
  std::uint64_t total_events = 0;

  std::printf("%-12s %-9s %12s %12s %8s %10s %6s\n", "app", "mode", "legacy_ms",
              "batched_ms", "speedup", "sim_ms", "diff");
  for (const auto& app : selfperf_apps()) {
    for (apps::MemMode mode : {apps::MemMode::kExplicit, apps::MemMode::kManaged,
                               apps::MemMode::kSystem}) {
      const TimedRun legacy = one_run(app, mode, scale, /*batched=*/false);
      const TimedRun batched = one_run(app, mode, scale, /*batched=*/true);
      Cell c;
      c.app = app.name;
      c.mode = std::string{to_string(mode)};
      c.legacy_ms = legacy.wall_ms;
      c.batched_ms = batched.wall_ms;
      c.sim_ms = sim::to_milliseconds(batched.end_time);
      c.differential_ok = legacy.status == batched.status &&
                          legacy.end_time == batched.end_time &&
                          legacy.digest == batched.digest;
      if (!c.differential_ok) ++differential_failures;
      total_legacy += c.legacy_ms;
      total_batched += c.batched_ms;
      total_events += batched.events;
      std::printf("%-12s %-9s %12.2f %12.2f %7.2fx %10.3f %6s\n", c.app.c_str(),
                  c.mode.c_str(), c.legacy_ms, c.batched_ms,
                  c.batched_ms > 0 ? c.legacy_ms / c.batched_ms : 0.0, c.sim_ms,
                  c.differential_ok ? "ok" : "FAIL");
      cells.push_back(std::move(c));
    }
  }

  const double total_speedup = total_batched > 0 ? total_legacy / total_batched : 0;
  const double events_per_sec =
      total_batched > 0 ? static_cast<double>(total_events) /
                              (total_batched / 1000.0)
                        : 0;
  std::printf("\ntotal: legacy %.1f ms, batched %.1f ms, speedup %.2fx, "
              "%.0f simulated events/s, %zu differential failures\n",
              total_legacy, total_batched, total_speedup, events_per_sec,
              differential_failures);

  FullScaleResult fs;
  const bool fullscale_ran = !fullscale_path.empty();
  if (fullscale_ran) {
    fs = run_full_scale(/*qubits=*/33);
    std::printf("\nfull-scale: %u qubits (%.0f GiB) — %llu page visits in "
                "%.2f s (%.0f pages/s), %zu extents, HBM %.1f GiB / DDR "
                "%.1f GiB resident, RSS %+ld KiB [%s]\n",
                fs.qubits, static_cast<double>(fs.footprint) / (1ull << 30),
                static_cast<unsigned long long>(fs.page_visits), fs.wall_s,
                fs.pages_per_sec, fs.run_count,
                static_cast<double>(fs.hbm_resident) / (1ull << 30),
                static_cast<double>(fs.ddr_resident) / (1ull << 30),
                fs.rss_after_kb - fs.rss_before_kb, fs.ok() ? "ok" : "FAIL");
    if (std::FILE* f = std::fopen(fullscale_path.c_str(), "w")) {
      std::fprintf(f, "{\n  \"bench\": \"selfperf_fullscale\",\n");
      std::fprintf(f, "  \"qubits\": %u,\n", fs.qubits);
      std::fprintf(f, "  \"footprint_bytes\": %llu,\n",
                   static_cast<unsigned long long>(fs.footprint));
      std::fprintf(f, "  \"page_visits\": %llu,\n",
                   static_cast<unsigned long long>(fs.page_visits));
      std::fprintf(f, "  \"wall_s\": %.3f,\n", fs.wall_s);
      std::fprintf(f, "  \"fullscale_pages_per_sec\": %.1f,\n", fs.pages_per_sec);
      std::fprintf(f, "  \"run_count\": %zu,\n", fs.run_count);
      std::fprintf(f, "  \"hbm_resident_bytes\": %llu,\n",
                   static_cast<unsigned long long>(fs.hbm_resident));
      std::fprintf(f, "  \"ddr_resident_bytes\": %llu,\n",
                   static_cast<unsigned long long>(fs.ddr_resident));
      std::fprintf(f, "  \"rss_before_kb\": %ld,\n", fs.rss_before_kb);
      std::fprintf(f, "  \"rss_after_kb\": %ld,\n", fs.rss_after_kb);
      std::fprintf(f, "  \"runs_ok\": %s,\n", fs.runs_ok ? "true" : "false");
      std::fprintf(f, "  \"rss_ok\": %s\n", fs.rss_ok ? "true" : "false");
      std::fprintf(f, "}\n");
      std::fclose(f);
      std::printf("wrote %s\n", fullscale_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", fullscale_path.c_str());
      return 1;
    }
  }

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"selfperf\",\n  \"scale\": \"%s\",\n",
                 scale == bs::Scale::kSmall ? "small" : "default");
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(f,
                   "    {\"app\": \"%s\", \"mode\": \"%s\", \"legacy_ms\": %.3f, "
                   "\"batched_ms\": %.3f, \"speedup\": %.4f, \"sim_ms\": %.4f, "
                   "\"differential_ok\": %s}%s\n",
                   c.app.c_str(), c.mode.c_str(), c.legacy_ms, c.batched_ms,
                   c.batched_ms > 0 ? c.legacy_ms / c.batched_ms : 0.0, c.sim_ms,
                   c.differential_ok ? "true" : "false",
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"total_legacy_ms\": %.3f,\n", total_legacy);
    std::fprintf(f, "  \"total_batched_ms\": %.3f,\n", total_batched);
    std::fprintf(f, "  \"total_speedup\": %.4f,\n", total_speedup);
    std::fprintf(f, "  \"total_events\": %llu,\n",
                 static_cast<unsigned long long>(total_events));
    std::fprintf(f, "  \"events_per_sec\": %.1f,\n", events_per_sec);
    std::fprintf(f, "  \"differential_ok\": %s\n",
                 differential_failures == 0 ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (differential_failures != 0) {
    std::fprintf(stderr, "FAIL: %zu cells differ between batched and legacy\n",
                 differential_failures);
    return 1;
  }
  if (fullscale_ran && !fs.ok()) {
    std::fprintf(stderr,
                 "FAIL: full-scale smoke structural gate (%zu extents%s, RSS "
                 "%+ld KiB over a %.0f GiB footprint%s)\n",
                 fs.run_count, fs.runs_ok ? "" : " — too fragmented",
                 fs.rss_after_kb - fs.rss_before_kb,
                 static_cast<double>(fs.footprint) / (1ull << 30),
                 fs.rss_ok ? "" : " — super-linear RSS");
    return 1;
  }

  if (!check_path.empty()) {
    std::string text;
    if (!read_file(check_path, &text)) {
      std::fprintf(stderr, "cannot read baseline %s\n", check_path.c_str());
      return 1;
    }
    double baseline_speedup = 0;
    if (!find_json_number(text, "total_speedup", &baseline_speedup) ||
        baseline_speedup <= 0) {
      std::fprintf(stderr, "baseline %s has no total_speedup\n", check_path.c_str());
      return 1;
    }
    // The ratio legacy/batched normalizes out absolute machine speed; the
    // smoke gate trips only when the batched path loses more than half its
    // recorded advantage (a >2x relative regression).
    if (total_speedup < baseline_speedup / 2.0) {
      std::fprintf(stderr,
                   "FAIL: batched-path speedup %.2fx regressed >2x vs recorded "
                   "baseline %.2fx\n",
                   total_speedup, baseline_speedup);
      return 1;
    }
    std::printf("check: speedup %.2fx vs baseline %.2fx — ok\n", total_speedup,
                baseline_speedup);
  }

  if (!gate_path.empty()) {
    std::string text;
    if (!read_file(gate_path, &text)) {
      std::fprintf(stderr, "cannot read throughput baseline %s\n",
                   gate_path.c_str());
      return 1;
    }
    double baseline_eps = 0;
    if (!find_json_number(text, "events_per_sec", &baseline_eps) ||
        baseline_eps <= 0) {
      std::fprintf(stderr, "baseline %s has no events_per_sec\n",
                   gate_path.c_str());
      return 1;
    }
    // Absolute wall-clock gate (>20% regression fails). The recorded
    // baseline is deliberately conservative (a fraction of a healthy run)
    // so machine-to-machine variance does not trip it; a per-page
    // regression is orders of magnitude, not percent.
    if (events_per_sec < 0.8 * baseline_eps) {
      std::fprintf(stderr,
                   "FAIL: %.0f simulated events/s is >20%% below baseline "
                   "%.0f\n",
                   events_per_sec, baseline_eps);
      return 1;
    }
    std::printf("gate: %.0f events/s vs baseline %.0f — ok\n", events_per_sec,
                baseline_eps);
    double baseline_fps = 0;
    if (fullscale_ran &&
        find_json_number(text, "fullscale_pages_per_sec", &baseline_fps) &&
        baseline_fps > 0) {
      if (fs.pages_per_sec < 0.8 * baseline_fps) {
        std::fprintf(stderr,
                     "FAIL: full-scale %.0f pages/s is >20%% below baseline "
                     "%.0f\n",
                     fs.pages_per_sec, baseline_fps);
        return 1;
      }
      std::printf("gate: full-scale %.0f pages/s vs baseline %.0f — ok\n",
                  fs.pages_per_sec, baseline_fps);
    }
  }
  return 0;
}
