// Simulator self-performance: wall-clock cost of the simulator's hot
// access path, not of the simulated machine. Every tier-1 application x
// memory mode runs twice on identical configs — once on the legacy
// per-access accounting path and once on the batched run path
// (SystemConfig::batched_access) — under a wall-clock timer.
//
// The batched path is an optimization of the simulator only: both runs
// must be bit-for-bit identical in simulated end time and event-log
// digest (the differential check; the process exits nonzero on any
// mismatch). Results land in BENCH_selfperf.json.
//
// Flags:
//   --smoke          small problem sizes (the ctest "perf" smoke target)
//   --out <file>     output JSON path (default BENCH_selfperf.json)
//   --check <file>   compare the aggregate legacy/batched speedup against
//                    a recorded baseline JSON and fail if the batched
//                    path has regressed more than 2x relative to it

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

struct SelfperfApp {
  std::string name;
  std::function<core::SystemConfig()> config;
  std::function<apps::AppReport(runtime::Runtime&, apps::MemMode, bs::Scale)> run;
};

std::vector<SelfperfApp> selfperf_apps() {
  std::vector<SelfperfApp> v;
  for (const auto& a : bs::rodinia_apps()) {
    v.push_back(SelfperfApp{
        .name = a.name,
        .config = [] { return bs::rodinia_config(pagetable::kSystemPage64K, false); },
        .run = a.run});
  }
  v.push_back(SelfperfApp{
      .name = "qiskit",
      .config = [] { return bs::qv_config(pagetable::kSystemPage64K, false); },
      .run = [](runtime::Runtime& rt, apps::MemMode m, bs::Scale s) {
        return apps::run_qvsim(rt, m, bs::qv_sim_config(s, 17));
      }});
  return v;
}

struct TimedRun {
  double wall_ms = 0;
  sim::Picos end_time = 0;
  std::uint64_t digest = 0;
  Status status = Status::kSuccess;
};

TimedRun one_run(const SelfperfApp& app, apps::MemMode mode, bs::Scale scale,
                 bool batched) {
  core::SystemConfig cfg = app.config();
  cfg.event_log = true;
  cfg.batched_access = batched;
  core::System sys{cfg};
  runtime::Runtime rt{sys};
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = bs::guarded_run([&] { return app.run(rt, mode, scale); });
  const auto t1 = std::chrono::steady_clock::now();
  TimedRun out;
  out.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(t1 - t0)
          .count();
  out.end_time = sys.now();
  out.digest = sys.events().digest(sys.now());
  out.status = res.status;
  return out;
}

struct Cell {
  std::string app;
  std::string mode;
  double legacy_ms = 0;
  double batched_ms = 0;
  double sim_ms = 0;
  bool differential_ok = false;
};

/// Minimal extraction of a numeric field from a baseline JSON written by a
/// previous run of this bench ("key": value).
bool find_json_number(const std::string& text, const char* key, double* out) {
  const std::string needle = std::string{"\""} + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bs::Scale scale = bs::Scale::kDefault;
  std::string out_path = "BENCH_selfperf.json";
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      scale = bs::Scale::kSmall;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out <file>] [--check <baseline>]\n",
                   argv[0]);
      return 2;
    }
  }

  bs::print_figure_header(
      "Selfperf", "simulator wall-clock: batched vs legacy access accounting",
      "batched path is faster in wall-clock time and bit-for-bit identical "
      "in simulated time and event stream");

  std::vector<Cell> cells;
  std::size_t differential_failures = 0;
  double total_legacy = 0, total_batched = 0;

  std::printf("%-12s %-9s %12s %12s %8s %10s %6s\n", "app", "mode", "legacy_ms",
              "batched_ms", "speedup", "sim_ms", "diff");
  for (const auto& app : selfperf_apps()) {
    for (apps::MemMode mode : {apps::MemMode::kExplicit, apps::MemMode::kManaged,
                               apps::MemMode::kSystem}) {
      const TimedRun legacy = one_run(app, mode, scale, /*batched=*/false);
      const TimedRun batched = one_run(app, mode, scale, /*batched=*/true);
      Cell c;
      c.app = app.name;
      c.mode = std::string{to_string(mode)};
      c.legacy_ms = legacy.wall_ms;
      c.batched_ms = batched.wall_ms;
      c.sim_ms = sim::to_milliseconds(batched.end_time);
      c.differential_ok = legacy.status == batched.status &&
                          legacy.end_time == batched.end_time &&
                          legacy.digest == batched.digest;
      if (!c.differential_ok) ++differential_failures;
      total_legacy += c.legacy_ms;
      total_batched += c.batched_ms;
      std::printf("%-12s %-9s %12.2f %12.2f %7.2fx %10.3f %6s\n", c.app.c_str(),
                  c.mode.c_str(), c.legacy_ms, c.batched_ms,
                  c.batched_ms > 0 ? c.legacy_ms / c.batched_ms : 0.0, c.sim_ms,
                  c.differential_ok ? "ok" : "FAIL");
      cells.push_back(std::move(c));
    }
  }

  const double total_speedup = total_batched > 0 ? total_legacy / total_batched : 0;
  std::printf("\ntotal: legacy %.1f ms, batched %.1f ms, speedup %.2fx, "
              "%zu differential failures\n",
              total_legacy, total_batched, total_speedup, differential_failures);

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"selfperf\",\n  \"scale\": \"%s\",\n",
                 scale == bs::Scale::kSmall ? "small" : "default");
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(f,
                   "    {\"app\": \"%s\", \"mode\": \"%s\", \"legacy_ms\": %.3f, "
                   "\"batched_ms\": %.3f, \"speedup\": %.4f, \"sim_ms\": %.4f, "
                   "\"differential_ok\": %s}%s\n",
                   c.app.c_str(), c.mode.c_str(), c.legacy_ms, c.batched_ms,
                   c.batched_ms > 0 ? c.legacy_ms / c.batched_ms : 0.0, c.sim_ms,
                   c.differential_ok ? "true" : "false",
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"total_legacy_ms\": %.3f,\n", total_legacy);
    std::fprintf(f, "  \"total_batched_ms\": %.3f,\n", total_batched);
    std::fprintf(f, "  \"total_speedup\": %.4f,\n", total_speedup);
    std::fprintf(f, "  \"differential_ok\": %s\n",
                 differential_failures == 0 ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (differential_failures != 0) {
    std::fprintf(stderr, "FAIL: %zu cells differ between batched and legacy\n",
                 differential_failures);
    return 1;
  }

  if (!check_path.empty()) {
    std::string text;
    if (std::FILE* f = std::fopen(check_path.c_str(), "r")) {
      char buf[4096];
      std::size_t n;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot read baseline %s\n", check_path.c_str());
      return 1;
    }
    double baseline_speedup = 0;
    if (!find_json_number(text, "total_speedup", &baseline_speedup) ||
        baseline_speedup <= 0) {
      std::fprintf(stderr, "baseline %s has no total_speedup\n", check_path.c_str());
      return 1;
    }
    // The ratio legacy/batched normalizes out absolute machine speed; the
    // smoke gate trips only when the batched path loses more than half its
    // recorded advantage (a >2x relative regression).
    if (total_speedup < baseline_speedup / 2.0) {
      std::fprintf(stderr,
                   "FAIL: batched-path speedup %.2fx regressed >2x vs recorded "
                   "baseline %.2fx\n",
                   total_speedup, baseline_speedup);
      return 1;
    }
    std::printf("check: speedup %.2fx vs baseline %.2fx — ok\n", total_speedup,
                baseline_speedup);
  }
  return 0;
}
