// Multi-tenant co-run matrix (DESIGN.md Section 8): 1..8 tenants drawn
// from {qvsim-20q/managed, hotspot/managed, bfs/managed} share one
// simulated superchip (the 24 MiB-HBM QV machine) under the
// min-local-time co-scheduler. Reported per row: per-tenant slowdown vs
// the tenant's solo run, aggregate throughput, cross-tenant eviction
// counts from the attribution matrix, and a bit-for-bit reproducibility
// column (two identical runs must agree on end time and event digest).
//
// The designated interference row is the first with two qvsim tenants:
// two 20-qubit managed statevectors (16 MiB each) cannot share the 23 MiB
// of free HBM, so each tenant's gate kernels evict the other's resident
// blocks — the bench exits nonzero if that row shows no cross-tenant
// eviction, or if any row fails to reproduce.
//
// Flags:
//   --smoke          small satellite apps + tenant counts {1, 2, 4}
//   --out <file>     output JSON path (default BENCH_tenancy.json)

#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "tenant/scheduler.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

struct TenantKind {
  std::string name;
  std::uint64_t footprint = 0;
  std::function<apps::AppCoro(runtime::Runtime&)> make;
};

std::vector<TenantKind> tenant_mix(bool smoke) {
  const bs::Scale scale = smoke ? bs::Scale::kSmall : bs::Scale::kDefault;
  std::vector<TenantKind> v;
  // qvsim leads the rotation: the 20-qubit managed statevector is the
  // oversubscription driver (16 MiB on 23 MiB of free HBM — one fits, two
  // cannot), independent of the smoke scale.
  v.push_back({"qvsim20/managed", 17ull << 20, [scale](runtime::Runtime& rt) {
                 return apps::qvsim_steps(rt, apps::MemMode::kManaged,
                                          bs::qv_sim_config(scale, 20));
               }});
  v.push_back({"hotspot/managed", (smoke ? 1ull : 13ull) << 20,
               [scale](runtime::Runtime& rt) {
                 return apps::hotspot_steps(rt, apps::MemMode::kManaged,
                                            bs::hotspot_config(scale));
               }});
  v.push_back({"bfs/managed", (smoke ? 1ull : 10ull) << 20,
               [scale](runtime::Runtime& rt) {
                 return apps::bfs_steps(rt, apps::MemMode::kManaged,
                                        bs::bfs_config(scale));
               }});
  return v;
}

core::SystemConfig machine() {
  core::SystemConfig cfg = bs::qv_config(pagetable::kSystemPage64K, false);
  cfg.event_log = true;
  // Headroom so eight co-resident tenants contend for HBM, not for DDR:
  // the interference under study is GPU-memory pressure.
  cfg.ddr_capacity = 256ull << 20;
  return cfg;
}

struct TenantOutcome {
  std::string name;
  Status status = Status::kSuccess;
  sim::Picos duration = 0;  ///< finished_at - started_at
  std::uint64_t evictions_suffered = 0;
  std::uint64_t evictions_caused = 0;
};

struct RowOutcome {
  sim::Picos end = 0;
  std::uint64_t digest = 0;
  std::vector<TenantOutcome> tenants;
  std::uint64_t cross_evictions = 0;
  std::uint64_t cross_evicted_bytes = 0;
  std::string matrix;
};

RowOutcome run_row(std::size_t n, const std::vector<TenantKind>& mix) {
  core::System sys{machine()};
  // Pre-warm the GPU context: the 8 ms one-time charge otherwise lands in
  // whichever tenant's quantum touches the GPU first, inflating solo
  // baselines relative to co-run tenants that ride on a warmed machine.
  sys.ensure_gpu_context();
  const sim::Picos t0 = sys.now();
  tenant::Scheduler sched{sys};
  for (std::size_t i = 0; i < n; ++i) {
    const TenantKind& k = mix[i % mix.size()];
    tenant::JobSpec spec;
    spec.name = k.name;
    spec.footprint_bytes = k.footprint;
    spec.make = k.make;
    (void)sched.submit(std::move(spec));
  }
  sched.run_all();

  RowOutcome out;
  out.end = sys.now() - t0;  // makespan net of the pre-warm charge
  out.digest = sys.events().digest(sys.now());
  const tenant::AttributionTable& at = sys.attribution();
  for (const tenant::Job& j : sched.jobs()) {
    const tenant::TenantUsage& u = at.usage(j.id);
    out.tenants.push_back({j.spec.name, j.status, j.finished_at - j.started_at,
                           u.evictions_suffered, u.evictions_caused});
  }
  out.cross_evictions = at.cross_tenant_evictions();
  out.cross_evicted_bytes = at.cross_tenant_evicted_bytes();
  out.matrix = at.to_table();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_tenancy.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <file>]\n", argv[0]);
      return 2;
    }
  }

  bs::print_figure_header(
      "Tenancy", "multi-tenant co-run matrix on one simulated superchip",
      "per-tenant slowdown grows with co-located HBM pressure; rows with "
      "two qvsim tenants show attributable cross-tenant evictions; every "
      "row is bit-for-bit reproducible");

  const std::vector<TenantKind> mix = tenant_mix(smoke);
  const std::vector<std::size_t> counts =
      smoke ? std::vector<std::size_t>{1, 2, 4}
            : std::vector<std::size_t>{1, 2, 3, 4, 6, 8};
  // First row containing two qvsim tenants (rotation period = mix size).
  const std::size_t interference_row = mix.size() + 1;

  // Solo baselines per tenant kind: the same machine, one tenant.
  std::map<std::string, sim::Picos> solo;
  for (const TenantKind& k : mix) {
    solo[k.name] = run_row(1, {k}).tenants.at(0).duration;
  }

  std::size_t nonrepro_rows = 0;
  std::uint64_t interference_evictions = 0;
  struct JsonRow {
    std::size_t n;
    double end_ms, avg_slowdown, max_slowdown, throughput;
    std::uint64_t cross_evictions;
    bool repro;
  };
  std::vector<JsonRow> json_rows;

  std::printf("%-8s %-18s %10s %9s %9s %9s %7s\n", "tenants", "tenant",
              "time_ms", "slowdown", "evict_in", "evict_out", "repro");
  for (const std::size_t n : counts) {
    const RowOutcome r1 = run_row(n, mix);
    const RowOutcome r2 = run_row(n, mix);
    const bool repro = r1.end == r2.end && r1.digest == r2.digest;
    if (!repro) ++nonrepro_rows;
    if (n == interference_row) interference_evictions = r1.cross_evictions;

    double slow_sum = 0, slow_max = 0;
    for (std::size_t t = 0; t < r1.tenants.size(); ++t) {
      const TenantOutcome& to = r1.tenants[t];
      const double slowdown =
          static_cast<double>(to.duration) / static_cast<double>(solo[to.name]);
      slow_sum += slowdown;
      slow_max = std::max(slow_max, slowdown);
      std::printf("%-8zu %-18s %10.3f %8.2fx %9llu %9llu %7s\n", n,
                  to.name.c_str(), sim::to_milliseconds(to.duration), slowdown,
                  static_cast<unsigned long long>(to.evictions_suffered),
                  static_cast<unsigned long long>(to.evictions_caused),
                  repro ? "yes" : "NO");
      std::printf("data\ttenancy\t%zu\t%zu\t%s\t%.4f\t%.4f\t%llu\t%llu\t%d\n",
                  n, t + 1, to.name.c_str(), sim::to_milliseconds(to.duration),
                  slowdown, static_cast<unsigned long long>(to.evictions_suffered),
                  static_cast<unsigned long long>(to.evictions_caused),
                  repro ? 1 : 0);
    }
    const double end_ms = sim::to_milliseconds(r1.end);
    const double throughput =
        static_cast<double>(n) / sim::to_seconds(r1.end);
    std::printf("%-8zu %-18s %10.3f avg %5.2fx / max %5.2fx  "
                "%llu cross-tenant evictions  %.1f jobs/s\n\n",
                n, "(aggregate)", end_ms, slow_sum / static_cast<double>(n),
                slow_max, static_cast<unsigned long long>(r1.cross_evictions),
                throughput);
    if (n == interference_row) {
      std::printf("who-evicted-whom (tenants=%zu):\n%s\n", n, r1.matrix.c_str());
    }
    json_rows.push_back({n, end_ms, slow_sum / static_cast<double>(n), slow_max,
                         throughput, r1.cross_evictions, repro});
  }

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"tenancy\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"interference_row\": %zu,\n", interference_row);
    std::fprintf(f, "  \"interference_cross_tenant_evictions\": %llu,\n",
                 static_cast<unsigned long long>(interference_evictions));
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const JsonRow& jr = json_rows[i];
      std::fprintf(f,
                   "    {\"tenants\": %zu, \"end_ms\": %.4f, "
                   "\"avg_slowdown\": %.4f, \"max_slowdown\": %.4f, "
                   "\"throughput_jobs_per_s\": %.4f, "
                   "\"cross_tenant_evictions\": %llu, \"repro\": %s}%s\n",
                   jr.n, jr.end_ms, jr.avg_slowdown, jr.max_slowdown,
                   jr.throughput,
                   static_cast<unsigned long long>(jr.cross_evictions),
                   jr.repro ? "true" : "false",
                   i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (nonrepro_rows != 0) {
    std::fprintf(stderr, "FAIL: %zu rows were not bit-for-bit reproducible\n",
                 nonrepro_rows);
    return 1;
  }
  if (interference_evictions == 0) {
    std::fprintf(stderr,
                 "FAIL: designated interference row (tenants=%zu) shows no "
                 "cross-tenant evictions\n",
                 interference_row);
    return 1;
  }
  std::printf("summary: %zu rows, all reproducible; interference row "
              "(tenants=%zu) cross-tenant evictions: %llu\n",
              counts.size(), interference_row,
              static_cast<unsigned long long>(interference_evictions));
  return 0;
}
