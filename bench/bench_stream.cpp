// STREAM-style bandwidth microbenchmark (paper Section 2.1).
// Paper-measured: HBM3 3.4 TB/s (theoretical 4 TB/s); LPDDR5X 486 GB/s
// (theoretical 500 GB/s). The benchmark drives a triad kernel through the
// simulator and reports the achieved simulated bandwidth.

#include <benchmark/benchmark.h>

#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

namespace {

using namespace ghum;

// Triad: a[i] = b[i] + s * c[i] over `bytes/8` doubles per array.
double triad_bandwidth_gpu(std::uint64_t bytes) {
  core::System sys{benchsupport::rodinia_config(pagetable::kSystemPage64K, false)};
  runtime::Runtime rt{sys};
  core::Buffer a = rt.malloc_device(bytes, "a");
  core::Buffer b = rt.malloc_device(bytes, "b");
  core::Buffer c = rt.malloc_device(bytes, "c");
  const std::uint64_t n = bytes / sizeof(double);
  const auto rec = rt.launch("triad", static_cast<double>(2 * n), [&] {
    auto sa = rt.device_span<double>(a);
    auto sb = rt.device_span<double>(b);
    auto sc = rt.device_span<double>(c);
    for (std::uint64_t i = 0; i < n; ++i) {
      sa.store(i, sb.load(i) + 3.0 * sc.load(i));
    }
  });
  const double moved = static_cast<double>(3 * bytes);
  return moved / sim::to_seconds(rec.duration - sys.config().costs.kernel_launch);
}

double triad_bandwidth_cpu(std::uint64_t bytes) {
  core::System sys{benchsupport::rodinia_config(pagetable::kSystemPage64K, false)};
  runtime::Runtime rt{sys};
  core::Buffer a = rt.malloc_host(bytes, "a");
  core::Buffer b = rt.malloc_host(bytes, "b");
  core::Buffer c = rt.malloc_host(bytes, "c");
  const std::uint64_t n = bytes / sizeof(double);
  const auto rec = rt.host_phase("triad", 0, [&] {
    auto sa = rt.host_span<double>(a);
    auto sb = rt.host_span<double>(b);
    auto sc = rt.host_span<double>(c);
    for (std::uint64_t i = 0; i < n; ++i) {
      sa.store(i, sb.load(i) + 3.0 * sc.load(i));
    }
  });
  return static_cast<double>(3 * bytes) / sim::to_seconds(rec.duration);
}

void BM_StreamTriad_HBM3(benchmark::State& state) {
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  double bw = 0;
  for (auto _ : state) bw = triad_bandwidth_gpu(bytes);
  state.counters["sim_GBps"] = bw / 1e9;
  state.counters["paper_GBps"] = 3400.0;
}
BENCHMARK(BM_StreamTriad_HBM3)->Arg(16 << 20)->Unit(benchmark::kMillisecond);

void BM_StreamTriad_LPDDR5X(benchmark::State& state) {
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  double bw = 0;
  for (auto _ : state) bw = triad_bandwidth_cpu(bytes);
  state.counters["sim_GBps"] = bw / 1e9;
  state.counters["paper_GBps"] = 486.0;
}
BENCHMARK(BM_StreamTriad_LPDDR5X)->Arg(16 << 20)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
