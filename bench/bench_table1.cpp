// Table 1: the memory-management type matrix — allocation interface vs
// memory location, PTE-initialization origin, cache coherence, and
// migration granularity. Each row is *measured* from the simulator rather
// than merely printed: the bench performs the allocation, provokes the
// characteristic behaviour, and reads the result from the event log.

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "profile/tracer.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

core::System fresh() {
  auto cfg = bs::rodinia_config(pagetable::kSystemPage64K, true);
  cfg.event_log = true;
  return core::System{cfg};
}

void row(const char* api, const char* location, const char* pte_init,
         const char* coherent, const char* granularity) {
  std::printf("%-24s %-10s %-9s %-9s %s\n", api, location, pte_init, coherent,
              granularity);
}

}  // namespace

int main() {
  bs::print_figure_header("Table 1", "memory management types on Grace Hopper",
                          "four classes: malloc / cudaMallocManaged / cudaMalloc "
                          "/ host-pinned, differing in location, PTE init, "
                          "coherence and migration granularity");
  std::printf("%-24s %-10s %-9s %-9s %s\n", "interface", "location", "pte_init",
              "coherent", "migration_granularity");

  {  // malloc(): system memory. CPU or GPU resident; transparent migration.
    core::System sys = fresh();
    runtime::Runtime rt{sys};
    core::Buffer b = rt.malloc_system(4 << 20, "t1.sys");
    (void)rt.launch("probe", 0, [&] {
      auto s = rt.device_span<float>(b);
      for (std::size_t i = 0; i < s.size(); i += 131072) s.store(i, 1.f);
    });
    const bool gpu_placed =
        sys.machine().address_space().find(b.va)->resident_gpu_bytes > 0;
    const auto granularity = sys.config().system_page_size;
    char buf[96];
    std::snprintf(buf, sizeof buf, "transparent 128B direct + %llu KiB pages",
                  static_cast<unsigned long long>(granularity >> 10));
    row("malloc()", gpu_placed ? "CPU/GPU" : "CPU", "CPU", "yes", buf);
  }
  {  // cudaMallocManaged: system PT or GPU PT; 2 MiB migration granularity.
    core::System sys = fresh();
    runtime::Runtime rt{sys};
    core::Buffer b = rt.malloc_managed(4 << 20, "t1.managed");
    (void)rt.launch("probe", 0, [&] {
      auto s = rt.device_span<float>(b);
      s.store(0, 1.f);
    });
    const auto resident =
        sys.machine().address_space().find(b.va)->resident_gpu_bytes;
    char buf[64];
    std::snprintf(buf, sizeof buf, "transparent %llu MiB blocks",
                  static_cast<unsigned long long>(resident >> 20));
    row("cudaMallocManaged()", "CPU/GPU", "CPU", "yes", buf);
  }
  {  // cudaMalloc: GPU only, GPU page table, explicit 1-byte memcpy.
    core::System sys = fresh();
    runtime::Runtime rt{sys};
    core::Buffer b = rt.malloc_device(4 << 20, "t1.gpu");
    bool coherent = true;
    try {
      (void)sys.resolve(b.va, mem::Node::kCpu);
    } catch (const std::logic_error&) {
      coherent = false;  // CPU cannot touch it: explicit copies only
    }
    row("cudaMalloc()", "GPU", "GPU", coherent ? "yes" : "no", "explicit, 1 byte");
  }
  {  // pinned host memory: CPU only, GPU access over C2C, never migrates.
    core::System sys = fresh();
    runtime::Runtime rt{sys};
    core::Buffer b = rt.malloc_host(1 << 20, "t1.pinned");
    (void)rt.launch("probe", 0, [&] {
      auto s = rt.device_span<float>(b);
      s.store(0, 1.f);
    });
    const bool still_cpu =
        sys.machine().address_space().find(b.va)->resident_gpu_bytes == 0;
    row("cudaMallocHost()", still_cpu ? "CPU" : "?", "CPU", "no",
        "explicit, 1 byte");
  }
  return 0;
}
