// Ablation: the managed-memory driver's speculative prefetcher
// (Section 2.3.2). With prefetching, one fault batch covers a whole 2 MiB
// block; without it the driver pays one batch per 64 KiB basic block —
// the fault-handling overhead that papers since Ganguly et al. identify
// as dominating UVM cost.

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "profile/tracer.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

int main() {
  bs::print_figure_header(
      "Ablation: managed prefetcher", "fault batching vs per-block faults",
      "prefetch OFF multiplies fault batches ~32x per 2 MiB block; "
      "compute time of migration-heavy apps rises accordingly");

  std::printf("%-12s %-10s %14s %16s\n", "app", "prefetch", "compute_ms",
              "managed_faults");
  for (const auto& app : bs::rodinia_apps()) {
    for (const bool prefetch : {true, false}) {
      core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, false);
      cfg.managed_prefetch = prefetch;
      cfg.event_log = true;
      core::System sys{cfg};
      runtime::Runtime rt{sys};
      const auto r = app.run(rt, apps::MemMode::kManaged, bs::Scale::kDefault);
      profile::Tracer tracer{sys.events()};
      std::printf("%-12s %-10s %14.3f %16zu\n", app.name.c_str(),
                  prefetch ? "on" : "off", r.times.compute_s * 1e3,
                  tracer.summarize().managed_gpu_faults);
      std::printf("data\tablation_prefetch\t%s\t%d\t%g\n", app.name.c_str(),
                  prefetch ? 1 : 0, r.times.compute_s * 1e3);
    }
  }
  return 0;
}
