// Comm|Scope-style NVLink-C2C transfer microbenchmark (paper Section 2.1).
// Paper-measured: 375 GB/s host-to-device, 297 GB/s device-to-host
// (450 GB/s theoretical per direction). Uses pinned host buffers, as
// Comm|Scope's peak-bandwidth configurations do.

#include <benchmark/benchmark.h>

#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

namespace {

using namespace ghum;

double memcpy_bandwidth(bool h2d, std::uint64_t bytes) {
  core::System sys{benchsupport::rodinia_config(pagetable::kSystemPage64K, false)};
  runtime::Runtime rt{sys};
  core::Buffer host = rt.malloc_host(bytes, "host");
  core::Buffer dev = rt.malloc_device(bytes, "dev");
  const sim::Picos t0 = sys.now();
  if (h2d) {
    rt.memcpy(dev, host, bytes, runtime::CopyKind::kHostToDevice);
  } else {
    rt.memcpy(host, dev, bytes, runtime::CopyKind::kDeviceToHost);
  }
  const double s =
      sim::to_seconds(sys.now() - t0 - sys.config().costs.memcpy_base);
  return static_cast<double>(bytes) / s;
}

void BM_CommScope_H2D(benchmark::State& state) {
  double bw = 0;
  for (auto _ : state) bw = memcpy_bandwidth(true, 1ull * state.range(0));
  state.counters["sim_GBps"] = bw / 1e9;
  state.counters["paper_GBps"] = 375.0;
}
BENCHMARK(BM_CommScope_H2D)->Arg(64 << 20)->Unit(benchmark::kMillisecond);

void BM_CommScope_D2H(benchmark::State& state) {
  double bw = 0;
  for (auto _ : state) bw = memcpy_bandwidth(false, 1ull * state.range(0));
  state.counters["sim_GBps"] = bw / 1e9;
  state.counters["paper_GBps"] = 297.0;
}
BENCHMARK(BM_CommScope_D2H)->Arg(64 << 20)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
