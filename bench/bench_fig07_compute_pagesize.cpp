// Figure 7: computation time of the system-memory version at 4 KiB vs
// 64 KiB system pages across the five Rodinia applications, with automatic
// access-counter migration enabled (Section 5.2 setup).
//
// Paper shape: all apps except SRAD compute *faster* with 4 KiB pages
// (1.1x-2.1x) — per-notification migration batches drag more unused data
// at 64 KiB granularity and stall single-pass kernels. SRAD iterates over
// the same working set, so it benefits from the faster bulk migration of
// 64 KiB pages instead.

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

int main() {
  bs::print_figure_header(
      "Figure 7", "compute time, system version, 4 KiB vs 64 KiB pages",
      "4 KiB faster for all but srad (1.1x-2.1x); srad prefers 64 KiB");

  std::printf("%-12s %14s %14s %10s\n", "app", "compute4k_ms", "compute64k_ms",
              "64k/4k");
  for (const auto& app : bs::rodinia_apps()) {
    double compute[2];
    int i = 0;
    for (const auto page : {pagetable::kSystemPage4K, pagetable::kSystemPage64K}) {
      core::System sys{bs::rodinia_config(page, /*access_counters=*/true)};
      runtime::Runtime rt{sys};
      const auto r = app.run(rt, apps::MemMode::kSystem, bs::Scale::kDefault);
      compute[i++] = r.times.compute_s * 1e3;
    }
    std::printf("%-12s %14.3f %14.3f %9.2fx\n", app.name.c_str(), compute[0],
                compute[1], compute[1] / compute[0]);
    std::printf("data\tfig07\t%s\t%g\t%g\n", app.name.c_str(), compute[0],
                compute[1]);
  }
  return 0;
}
