// Ablation: NVLink-C2C access granularity (Section 2.1.1: 64 B transfers
// on the CPU side, 128 B on the GPU side). Varies the GPU-side cacheline
// size and measures the remote read amplification of a strided GPU sweep
// over CPU-resident system memory.

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

int main() {
  bs::print_figure_header(
      "Ablation: C2C access granularity", "remote amplification vs line size",
      "4-byte strided remote reads are amplified to one full cacheline "
      "each; amplification scales linearly with the line size");

  const std::uint64_t bytes = 16ull << 20;
  std::printf("%-10s %16s %16s %14s\n", "line_B", "useful_mib", "moved_mib",
              "amplification");
  for (const std::uint32_t line : {32u, 64u, 128u, 256u}) {
    core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, false);
    core::System sys{cfg};
    // Override the link's GPU-side granularity for this run.
    auto spec = sys.machine().c2c().spec();
    spec.cacheline_gpu = line;
    sys.machine().c2c() = interconnect::NvlinkC2C{spec};
    runtime::Runtime rt{sys};

    core::Buffer b = rt.malloc_system(bytes);
    (void)rt.host_phase("touch", 0, [&] {  // CPU first-touch: CPU-resident
      auto s = rt.host_span<float>(b);
      for (std::size_t i = 0; i < s.size(); i += 16384) s.store(i, 1.0f);
    });
    sys.host_register(b);  // fully populate on the CPU
    const std::uint64_t before =
        sys.machine().c2c().bytes_moved(interconnect::Direction::kCpuToGpu);
    std::uint64_t useful = 0;
    (void)rt.launch("strided", 0, [&] {
      auto s = rt.device_span<float>(b);
      for (std::size_t i = 0; i < s.size(); i += 64) {  // one read per 256 B
        (void)s.load(i);
        useful += sizeof(float);
      }
    });
    const std::uint64_t moved =
        sys.machine().c2c().bytes_moved(interconnect::Direction::kCpuToGpu) - before;
    std::printf("%-10u %16.2f %16.2f %13.1fx\n", line,
                static_cast<double>(useful) / (1 << 20),
                static_cast<double>(moved) / (1 << 20),
                static_cast<double>(moved) / static_cast<double>(useful));
    std::printf("data\tablation_granularity\t%u\t%g\n", line,
                static_cast<double>(moved) / static_cast<double>(useful));
  }
  return 0;
}
