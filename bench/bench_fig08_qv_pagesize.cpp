// Figure 8: speedup of 64 KiB system pages relative to 4 KiB pages for
// Quantum Volume simulations at increasing qubit counts, for the system
// and managed versions.
//
// Paper shape: both versions gain from 64 KiB pages (up to 2.5x managed,
// 4x system); with growing problem size the managed speedup *decreases*
// toward ~1 (GPU-resident managed data uses constant 2 MiB GPU pages, so
// the system page size only matters early) while the system speedup
// *increases* toward ~4x (GPU-side first-touch PTE initialization
// dominates and scales with page count).

#include <cstdio>
#include <vector>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

double run_total(apps::MemMode mode, std::uint64_t page, std::uint32_t qubits) {
  core::System sys{bs::qv_config(page, false)};
  runtime::Runtime rt{sys};
  const auto r = apps::run_qvsim(rt, mode, bs::qv_sim_config(bs::Scale::kDefault, qubits));
  return r.times.reported_total_s();
}

}  // namespace

int main() {
  bs::print_figure_header(
      "Figure 8", "QV speedup of 64 KiB vs 4 KiB pages, by qubit count",
      "managed speedup decreases with qubits (to ~1 from 25q on); system "
      "speedup increases with qubits (to ~4x)");

  std::printf("%-8s %-8s %12s %12s %10s\n", "qubits", "paper_q", "mode",
              "", "spd64k");
  std::printf("%-8s %-8s %12s %12s %10s\n", "", "", "total4k_ms", "total64k_ms", "");
  for (std::uint32_t q = 12; q <= 20; q += 2) {
    for (apps::MemMode mode : {apps::MemMode::kManaged, apps::MemMode::kSystem}) {
      const double t4k = run_total(mode, pagetable::kSystemPage4K, q);
      const double t64k = run_total(mode, pagetable::kSystemPage64K, q);
      std::printf("%-8u %-8u %12.3f %12.3f %9.2fx  [%s]\n", q, q + 13, t4k * 1e3,
                  t64k * 1e3, t4k / t64k, std::string{to_string(mode)}.c_str());
      std::printf("data\tfig08\t%s\t%u\t%.4f\n", std::string{to_string(mode)}.c_str(),
                  q, t4k / t64k);
    }
  }
  return 0;
}
