// Figure 6: allocation and de-allocation time of the system-memory version
// at 64 KiB vs 4 KiB system pages, across the five Rodinia applications.
//
// Paper shape: allocation time is nearly negligible for four of five apps;
// de-allocation dominates and is 4.6x-38x (avg 15.9x) cheaper with 64 KiB
// pages, because free() tears down one PTE per present page.

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

int main() {
  bs::print_figure_header(
      "Figure 6", "alloc/dealloc time, system version, 4 KiB vs 64 KiB pages",
      "dealloc dominates; 64 KiB pages 4.6x-38x faster (avg 15.9x)");

  std::printf("%-12s %12s %12s %12s %12s %8s\n", "app", "alloc4k_ms",
              "dealloc4k_ms", "alloc64k_ms", "dealloc64k_ms", "ratio");
  double ratio_sum = 0;
  int ratio_n = 0;
  for (const auto& app : bs::rodinia_apps()) {
    double alloc[2], dealloc[2];
    int i = 0;
    for (const auto page : {pagetable::kSystemPage4K, pagetable::kSystemPage64K}) {
      core::System sys{bs::rodinia_config(page, false)};
      runtime::Runtime rt{sys};
      const auto r = app.run(rt, apps::MemMode::kSystem, bs::Scale::kDefault);
      alloc[i] = r.times.alloc_s * 1e3;
      dealloc[i] = r.times.dealloc_s * 1e3;
      ++i;
    }
    const double ratio = dealloc[0] / dealloc[1];
    ratio_sum += ratio;
    ++ratio_n;
    std::printf("%-12s %12.3f %12.3f %12.3f %12.3f %8.1fx\n", app.name.c_str(),
                alloc[0], dealloc[0], alloc[1], dealloc[1], ratio);
    std::printf("data\tfig06\t%s\t%g\t%g\t%g\t%g\n", app.name.c_str(), alloc[0],
                dealloc[0], alloc[1], dealloc[1]);
  }
  bs::print_metric("fig06.avg_dealloc_ratio", ratio_sum / ratio_n, "x");
  std::printf("paper average: 15.9x\n");
  return 0;
}
