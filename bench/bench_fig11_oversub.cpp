// Figure 11: relative speedup of the system version over the managed
// version for all six applications at increasing memory oversubscription
// (4 KiB system pages, the paper's Section 7 setup).
//
// Paper shape: bfs, hotspot, needle, pathfinder are barely hurt by
// oversubscription with system memory (data stays on the CPU, accessed
// over C2C) while the managed version suffers eviction/migration churn —
// so the system/managed speedup *grows* with the oversubscription ratio.
// SRAD is the exception: its iterative reuse makes remote access expensive
// too, and the qv simulation behaves like srad.

#include <cstdio>
#include <optional>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

// nullopt => the run died of memory exhaustion at this ratio (the row
// prints FAILED instead of a speedup).
std::optional<double> run_with_ratio(const bs::NamedApp& app, apps::MemMode mode,
                                     double ratio, std::uint64_t peak) {
  core::System sys{bs::rodinia_config(pagetable::kSystemPage4K, false)};
  runtime::Runtime rt{sys};
  auto reserve = bs::reserve_for_oversubscription(sys, peak, ratio);
  const auto r =
      bs::guarded_run([&] { return app.run(rt, mode, bs::Scale::kDefault); });
  if (reserve) rt.free(*reserve);
  if (!r.ok()) return std::nullopt;
  return r.report.times.reported_total_s();
}

std::optional<double> qv_with_ratio(apps::MemMode mode, double ratio,
                                    std::uint64_t peak, std::uint32_t qubits) {
  core::System sys{bs::qv_config(pagetable::kSystemPage4K, false)};
  runtime::Runtime rt{sys};
  auto reserve = bs::reserve_for_oversubscription(sys, peak, ratio);
  const auto r = bs::guarded_run([&] {
    return apps::run_qvsim(rt, mode, bs::qv_sim_config(bs::Scale::kDefault, qubits));
  });
  if (reserve) rt.free(*reserve);
  if (!r.ok()) return std::nullopt;
  return r.report.times.reported_total_s();
}

}  // namespace

int main() {
  bs::print_figure_header(
      "Figure 11", "system/managed speedup vs oversubscription ratio",
      "speedup grows with oversubscription for bfs/hotspot/needle/"
      "pathfinder; srad (and qv) degrade for both versions");

  const double ratios[] = {1.0, 1.25, 1.5, 2.0};
  std::printf("%-12s", "app");
  for (double r : ratios) std::printf(" %9.2fx", r);
  std::printf("   (system/managed speedup per ratio)\n");

  for (const auto& app : bs::rodinia_apps()) {
    // Measure peak GPU usage of the managed version in-memory (Section 3.2).
    const std::uint64_t peak = bs::measure_peak_gpu(
        bs::rodinia_config(pagetable::kSystemPage4K, false),
        [&](runtime::Runtime& rt) {
          return app.run(rt, apps::MemMode::kManaged, bs::Scale::kDefault);
        });
    std::printf("%-12s", app.name.c_str());
    std::optional<double> spd[4];
    int i = 0;
    for (const double ratio : ratios) {
      const auto t_sys = run_with_ratio(app, apps::MemMode::kSystem, ratio, peak);
      const auto t_man = run_with_ratio(app, apps::MemMode::kManaged, ratio, peak);
      if (t_sys && t_man) {
        spd[i] = *t_man / *t_sys;
        std::printf(" %9.2fx", *spd[i]);
      } else {
        std::printf(" %10s", "FAILED");  // out of memory at this ratio
      }
      ++i;
    }
    std::printf("\n");
    i = 0;
    for (const double ratio : ratios) {
      if (spd[i]) {
        std::printf("data\tfig11\t%s\t%.2f\t%.4f\n", app.name.c_str(), ratio, *spd[i]);
      } else {
        std::printf("data\tfig11\t%s\t%.2f\tFAILED: out of memory\n",
                    app.name.c_str(), ratio);
      }
      ++i;
    }
  }

  {
    const std::uint32_t qubits = 17;  // paper's 30-qubit base for simulated oversub
    const std::uint64_t peak = bs::measure_peak_gpu(
        bs::qv_config(pagetable::kSystemPage4K, false), [&](runtime::Runtime& rt) {
          return apps::run_qvsim(rt, apps::MemMode::kManaged,
                                 bs::qv_sim_config(bs::Scale::kDefault, qubits));
        });
    std::printf("%-12s", "qiskit");
    for (const double ratio : ratios) {
      const auto t_sys = qv_with_ratio(apps::MemMode::kSystem, ratio, peak, qubits);
      const auto t_man = qv_with_ratio(apps::MemMode::kManaged, ratio, peak, qubits);
      if (t_sys && t_man) {
        std::printf(" %9.2fx", *t_man / *t_sys);
      } else {
        std::printf(" %10s", "FAILED");
      }
    }
    std::printf("\n");
  }
  return 0;
}
