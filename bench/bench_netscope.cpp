// Netscope bench (DESIGN.md Section 12): a Comm|Scope-style sweep of the
// inter-node fabric cost model plus a multi-node halo-exchange scaling
// run. Two sections, three gates, nonzero exit on any violation:
//
//   1. Message-size sweep, host and cuda-managed memory: for every size,
//      the protocol the fabric selects and its modeled latency/bandwidth,
//      plus the exact byte boundaries of every protocol crossover (found
//      by binary search on the selection function). Gates:
//        (a) the sweep exercises >= 3 distinct protocol regimes;
//        (b) selection is monotone — growing messages never fall back to
//            an earlier (smaller-message) protocol.
//   2. Halo-exchange scaling: hotspot and srad row-band halo exchange and
//      distributed qvsim chunk exchange over 2/4/8 simulated superchips,
//      each run twice. Gate:
//        (c) bit-for-bit reproducibility — both runs of every cell produce
//            identical digests (per-node event logs + fabric history).
//
// Flags:
//   --smoke       small problem sizes (the ctest "perf" smoke target)
//   --out <file>  output JSON path (default BENCH_netscope.json)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "net/fabric.hpp"
#include "net/halo.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

double cost_us(sim::Picos p) { return sim::to_seconds(p) * 1e6; }

double bw_GBps(std::uint64_t bytes, sim::Picos p) {
  const double s = sim::to_seconds(p);
  return s > 0 ? static_cast<double>(bytes) / s / 1e9 : 0.0;
}

// to_string returns views over string literals, so data() is NUL-terminated.
const char* proto_name(net::Protocol p) { return to_string(p).data(); }

struct SweepRow {
  std::uint64_t bytes = 0;
  net::Protocol host_proto{};
  sim::Picos host_cost = 0;
  net::Protocol cuda_proto{};
  sim::Picos cuda_cost = 0;
};

struct Crossover {
  net::Protocol from{};
  net::Protocol to{};
  std::uint64_t bytes = 0;  ///< smallest size selecting `to`
};

/// Exact crossover boundaries of the selection function on [lo, hi]:
/// wherever the protocol differs between two probe points, binary-search
/// the smallest size that flips.
std::vector<Crossover> find_crossovers(const net::Fabric& fab, net::MemType mem,
                                       std::uint64_t lo, std::uint64_t hi) {
  std::vector<Crossover> out;
  std::uint64_t at = lo;
  net::Protocol cur = fab.select(at, mem);
  while (at < hi) {
    std::uint64_t next = std::max(at + 1, at * 2);
    next = std::min(next, hi);
    const net::Protocol p = fab.select(next, mem);
    if (p == cur) {
      at = next;
      continue;
    }
    std::uint64_t a = at, b = next;  // select(a) == cur, select(b) != cur
    while (a + 1 < b) {
      const std::uint64_t m = a + (b - a) / 2;
      if (fab.select(m, mem) == cur) {
        a = m;
      } else {
        b = m;
      }
    }
    out.push_back({cur, fab.select(b, mem), b});
    cur = fab.select(b, mem);
    at = b;
  }
  return out;
}

struct HaloCell {
  const char* app = "";
  std::uint32_t nodes = 0;
  net::MultiNodeResult r;
  bool repro_ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  bs::Scale scale = bs::Scale::kDefault;
  std::string out_path = "BENCH_netscope.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      scale = bs::Scale::kSmall;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <file>]\n", argv[0]);
      return 2;
    }
  }
  const bool smoke = scale == bs::Scale::kSmall;

  bs::print_figure_header(
      "Netscope", "inter-node fabric protocol sweep + halo-exchange scaling",
      "Comm|Scope-style latency/bandwidth sweep over the UCX protocol "
      "ladder (eager-short / eager-bcopy / zcopy / rendezvous), then "
      "hotspot/srad halo exchange and distributed qvsim chunk exchange "
      "over 2/4/8 simulated superchips, gated bit-for-bit reproducible");

  std::size_t failures = 0;
  const net::NetSpec spec;  // ucx.conf-seeded defaults
  const net::Fabric fab{spec, 2};

  // --- section 1: protocol sweep -------------------------------------------
  const std::uint64_t sweep_max = smoke ? (1ull << 20) : (16ull << 20);
  std::vector<SweepRow> sweep;
  std::printf("protocol sweep (host | cuda-managed)\n");
  std::printf("%10s  %-12s %10s %9s   %-12s %10s %9s\n", "bytes", "host_proto",
              "host_us", "host_GBs", "cuda_proto", "cuda_us", "cuda_GBs");
  for (std::uint64_t b = 8; b <= sweep_max; b *= 2) {
    SweepRow r;
    r.bytes = b;
    r.host_proto = fab.select(b, net::MemType::kHost);
    r.host_cost = fab.cost(r.host_proto, b, net::MemType::kHost);
    r.cuda_proto = fab.select(b, net::MemType::kCudaManaged);
    r.cuda_cost = fab.cost(r.cuda_proto, b, net::MemType::kCudaManaged);
    sweep.push_back(r);
    std::printf("%10llu  %-12s %10.3f %9.2f   %-12s %10.3f %9.2f\n",
                static_cast<unsigned long long>(b), proto_name(r.host_proto),
                cost_us(r.host_cost), bw_GBps(b, r.host_cost),
                proto_name(r.cuda_proto), cost_us(r.cuda_cost),
                bw_GBps(b, r.cuda_cost));
    std::printf("data\tsweep\t%llu\t%s\t%.4f\t%s\t%.4f\n",
                static_cast<unsigned long long>(b), proto_name(r.host_proto),
                cost_us(r.host_cost), proto_name(r.cuda_proto),
                cost_us(r.cuda_cost));
  }

  // Gate (a): >= 3 distinct regimes on the host sweep.
  bool seen[net::kProtocols] = {};
  for (const SweepRow& r : sweep) seen[static_cast<std::size_t>(r.host_proto)] = true;
  std::size_t regimes = 0;
  for (const bool s : seen) regimes += s ? 1 : 0;
  const bool regimes_ok = regimes >= 3;
  if (!regimes_ok) {
    ++failures;
    std::fprintf(stderr, "  only %zu protocol regimes in the sweep (< 3)\n",
                 regimes);
  }

  // Gate (b): protocol index monotone non-decreasing in message size.
  bool monotone_ok = true;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].host_proto < sweep[i - 1].host_proto ||
        sweep[i].cuda_proto < sweep[i - 1].cuda_proto) {
      monotone_ok = false;
    }
  }
  if (!monotone_ok) {
    ++failures;
    std::fprintf(stderr, "  protocol selection is not monotone in size\n");
  }

  const std::vector<Crossover> host_cross =
      find_crossovers(fab, net::MemType::kHost, 8, sweep_max);
  const std::vector<Crossover> cuda_cross =
      find_crossovers(fab, net::MemType::kCudaManaged, 8, sweep_max);
  std::printf("\nexact crossovers (host)\n");
  for (const Crossover& c : host_cross) {
    std::printf("  %-12s -> %-12s at %llu bytes\n", proto_name(c.from),
                proto_name(c.to), static_cast<unsigned long long>(c.bytes));
  }
  std::printf("exact crossovers (cuda-managed)\n");
  for (const Crossover& c : cuda_cross) {
    std::printf("  %-12s -> %-12s at %llu bytes\n", proto_name(c.from),
                proto_name(c.to), static_cast<unsigned long long>(c.bytes));
  }
  std::printf("protocol regimes: %zu  monotone: %s\n", regimes,
              monotone_ok ? "ok" : "FAIL");

  // --- section 2: multi-node halo scaling ----------------------------------
  core::SystemConfig node_cfg =
      bs::rodinia_config(pagetable::kSystemPage64K, false);
  node_cfg.event_log = true;

  apps::HotspotConfig hs = bs::hotspot_config(scale);
  apps::SradConfig sr = bs::srad_config(scale);
  if (smoke) {
    hs.iterations = 4;
    sr.iterations = 4;
  }
  const apps::QvConfig qv = bs::qv_sim_config(scale, smoke ? 10 : 14);

  std::vector<HaloCell> cells;
  std::printf("\nhalo-exchange scaling (two runs per cell, digests gated)\n");
  std::printf("%-8s %6s %12s %12s %8s %12s %7s\n", "app", "nodes",
              "makespan_ms", "net_wait_ms", "msgs", "net_bytes", "repro");
  for (const std::uint32_t n : {2u, 4u, 8u}) {
    net::MultiNodeConfig mc;
    mc.nodes = n;
    mc.mode = apps::MemMode::kManaged;
    mc.node_config = node_cfg;
    mc.net = spec;

    const auto run_cell = [&](const char* app, auto&& fn) {
      HaloCell c;
      c.app = app;
      c.nodes = n;
      c.r = fn();
      const net::MultiNodeResult again = fn();
      c.repro_ok = c.r.digest == again.digest && c.r.checksum == again.checksum;
      if (!c.repro_ok) {
        ++failures;
        std::fprintf(stderr, "  %s/%u NOT reproducible: %016llx vs %016llx\n",
                     app, n, static_cast<unsigned long long>(c.r.digest),
                     static_cast<unsigned long long>(again.digest));
      }
      if (c.r.net.total_msgs() == 0 || c.r.exchanges == 0) {
        ++failures;
        std::fprintf(stderr, "  %s/%u moved no fabric traffic\n", app, n);
      }
      std::printf("%-8s %6u %12.3f %12.3f %8llu %12llu %7s\n", app, n,
                  sim::to_milliseconds(c.r.makespan),
                  sim::to_milliseconds(c.r.net_wait),
                  static_cast<unsigned long long>(c.r.net.total_msgs()),
                  static_cast<unsigned long long>(c.r.net.total_bytes()),
                  c.repro_ok ? "ok" : "FAIL");
      std::printf("data\thalo\t%s\t%u\t%.4f\t%.4f\t%llu\t%llu\n", app, n,
                  sim::to_milliseconds(c.r.makespan),
                  sim::to_milliseconds(c.r.net_wait),
                  static_cast<unsigned long long>(c.r.net.total_msgs()),
                  static_cast<unsigned long long>(c.r.net.total_bytes()));
      cells.push_back(std::move(c));
    };

    run_cell("hotspot", [&] { return net::run_hotspot_halo(mc, hs); });
    run_cell("srad", [&] { return net::run_srad_halo(mc, sr); });
    run_cell("qvsim", [&] { return net::run_qv_chunks(mc, qv); });
  }

  const bool repro_ok =
      std::all_of(cells.begin(), cells.end(),
                  [](const HaloCell& c) { return c.repro_ok; });
  std::printf("\ngates: regimes=%s monotone=%s halo-repro=%s\n",
              regimes_ok ? "ok" : "FAIL", monotone_ok ? "ok" : "FAIL",
              repro_ok ? "ok" : "FAIL");

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"netscope\",\n  \"scale\": \"%s\",\n",
                 smoke ? "small" : "default");
    std::fprintf(f, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const SweepRow& r = sweep[i];
      std::fprintf(f,
                   "    {\"bytes\": %llu, \"host_proto\": \"%s\", "
                   "\"host_us\": %.4f, \"cuda_proto\": \"%s\", "
                   "\"cuda_us\": %.4f}%s\n",
                   static_cast<unsigned long long>(r.bytes),
                   proto_name(r.host_proto), cost_us(r.host_cost),
                   proto_name(r.cuda_proto), cost_us(r.cuda_cost),
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"crossovers_host\": [\n");
    for (std::size_t i = 0; i < host_cross.size(); ++i) {
      const Crossover& c = host_cross[i];
      std::fprintf(f,
                   "    {\"from\": \"%s\", \"to\": \"%s\", \"bytes\": %llu}%s\n",
                   proto_name(c.from), proto_name(c.to),
                   static_cast<unsigned long long>(c.bytes),
                   i + 1 < host_cross.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"halo\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const HaloCell& c = cells[i];
      std::fprintf(f,
                   "    {\"app\": \"%s\", \"nodes\": %u, "
                   "\"makespan_ms\": %.4f, \"net_wait_ms\": %.4f, "
                   "\"msgs\": %llu, \"bytes\": %llu, \"rndv_handshakes\": "
                   "%llu, \"digest\": \"%016llx\", \"repro_ok\": %s}%s\n",
                   c.app, c.nodes, sim::to_milliseconds(c.r.makespan),
                   sim::to_milliseconds(c.r.net_wait),
                   static_cast<unsigned long long>(c.r.net.total_msgs()),
                   static_cast<unsigned long long>(c.r.net.total_bytes()),
                   static_cast<unsigned long long>(c.r.net.rndv_handshakes),
                   static_cast<unsigned long long>(c.r.digest),
                   c.repro_ok ? "true" : "false",
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"gates\": {\"regimes_ok\": %s, \"monotone_ok\": "
                 "%s, \"halo_repro_ok\": %s},\n",
                 regimes_ok ? "true" : "false", monotone_ok ? "true" : "false",
                 repro_ok ? "true" : "false");
    std::fprintf(f, "  \"protocol_regimes\": %zu,\n", regimes);
    std::fprintf(f, "  \"total_failures\": %zu,\n", failures);
    std::fprintf(f, "  \"ok\": %s\n", failures == 0 ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (failures != 0) {
    std::fprintf(stderr, "FAIL: %zu netscope check failures\n", failures);
    return 1;
  }
  std::printf("all netscope checks passed\n");
  return 0;
}
