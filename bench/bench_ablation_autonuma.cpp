// Ablation: Linux Automatic NUMA Scheduling and Balancing. The paper's
// testbed explicitly disables it "because the additional page-faults
// introduced by AutoNUMA can significantly hurt GPU-heavy application
// performance" (Section 3). This bench turns it back on for the
// system-memory versions and measures the damage, validating the
// configuration choice.

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

int main() {
  bs::print_figure_header(
      "Ablation: AutoNUMA balancing", "why the paper's testbed disables it",
      "hint faults re-taken through the GPU's replayable-fault path slow "
      "GPU-heavy system-memory runs; CPU-side phases barely notice");

  std::printf("%-12s %-9s %12s %12s %14s\n", "app", "autonuma", "compute_ms",
              "cpuinit_ms", "hint_faults");
  for (const auto& app : bs::rodinia_apps()) {
    for (const bool numa : {false, true}) {
      core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, false);
      cfg.autonuma_balancing = numa;
      core::System sys{cfg};
      runtime::Runtime rt{sys};
      const auto r = app.run(rt, apps::MemMode::kSystem, bs::Scale::kDefault);
      std::printf("%-12s %-9s %12.3f %12.3f %14llu\n", app.name.c_str(),
                  numa ? "on" : "off", r.times.compute_s * 1e3,
                  r.times.cpu_init_s * 1e3,
                  static_cast<unsigned long long>(
                      sys.stats().get("os.numa_hint_faults")));
      std::printf("data\tablation_autonuma\t%s\t%d\t%g\n", app.name.c_str(),
                  numa ? 1 : 0, r.times.compute_s * 1e3);
    }
  }
  return 0;
}
