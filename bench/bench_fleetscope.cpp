// Fleet observability bench (DESIGN.md Section 13). The bench_fleet
// node-kill storm is re-run with the full observability stack on — the
// deterministic flight recorder, the SLO alert engine, cross-node causal
// tracing, and link-flap windows on the fabric — twice, and gates the
// stack's core promises (nonzero exit on any violation):
//
//   (a) bit-for-bit alerting: the two runs produce identical alert
//       open/close sequences (engine digests), identical recorder digests,
//       and identical fleet digests — turning observability on does not
//       perturb the storm, and the storm does not perturb observability;
//   (b) federation equality: every counter in the federated registry
//       equals the per-source sum (fleet registry + each live node's
//       machine registry), at nonzero values, and both expositions parse;
//   (c) cross-node span continuity: at least one finished job carries a
//       root span rooted on a *different* node than the one it finished on
//       (a loss-replay chain crossed a machine boundary), and the exported
//       fleet Chrome trace is strictly valid JSON containing that span's
//       flow arrows plus the link-flap duration events.
//
// Flags:
//   --smoke         small problem sizes (the ctest "perf" smoke target)
//   --out <file>    output JSON path (default BENCH_fleetscope.json)
//   --trace <file>  fleet Chrome trace path (default trace_fleetscope.json)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "fleet/arrival.hpp"
#include "fleet/controller.hpp"
#include "obs/json_check.hpp"
#include "tenant/scheduler.hpp"

using namespace ghum;
namespace bs = benchsupport;

namespace {

core::SystemConfig node_config() {
  core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, false);
  cfg.event_log = true;
  return cfg;
}

/// Same six-app managed catalog as bench_fleet — the storm under
/// observation must be the one the fleet bench already gates.
std::vector<fleet::JobTemplate> catalog(bs::Scale s) {
  const apps::MemMode m = apps::MemMode::kManaged;
  std::vector<fleet::JobTemplate> out;
  const auto add = [&](std::string name, std::uint64_t footprint,
                       std::function<apps::AppCoro(runtime::Runtime&)> make) {
    fleet::JobTemplate t;
    t.name = std::move(name);
    t.mode = m;
    t.make = std::move(make);
    t.footprint_bytes = footprint;
    out.push_back(std::move(t));
  };
  add("hotspot", 2ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::hotspot_steps(rt, m, bs::hotspot_config(s));
  });
  add("pathfinder", 1ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::pathfinder_steps(rt, m, bs::pathfinder_config(s));
  });
  add("needle", 4ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::needle_steps(rt, m, bs::needle_config(s));
  });
  add("bfs", 2ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::bfs_steps(rt, m, bs::bfs_config(s));
  });
  add("srad", 4ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::srad_steps(rt, m, bs::srad_config(s));
  });
  // A deliberately hostile template name: it flows into trace labels and
  // must survive the JSON escaping path end to end.
  add("qv\"sim\\16\n", 8ull << 20, [s, m](runtime::Runtime& rt) {
    return apps::qvsim_steps(rt, m, bs::qv_sim_config(s, 16));
  });
  return out;
}

void measure_solo(fleet::JobTemplate& t) {
  core::System sys{node_config()};
  tenant::SchedulerConfig scfg;
  scfg.policy = tenant::Policy::kFifo;
  tenant::Scheduler sched{sys, scfg};
  const auto spec = [&] {
    tenant::JobSpec s;
    s.name = t.name;
    s.mode = t.mode;
    s.make = t.make;
    s.footprint_bytes = t.footprint_bytes;
    return s;
  };
  tenant::TenantId first = tenant::kNoTenant;
  tenant::TenantId last = tenant::kNoTenant;
  (void)sched.submit(spec(), &first);
  (void)sched.submit(spec(), nullptr);
  (void)sched.submit(spec(), &last);
  sched.run_all();
  t.solo_checksum = sched.job(first).report.checksum;
  t.est_cost = std::max<sim::Picos>(
      1, (sched.job(last).finished_at - sched.job(first).finished_at) / 2);
}

/// Label-blind per-name counter sums over one registry.
std::map<std::string, std::uint64_t> counter_sums(
    const obs::MetricsRegistry& reg) {
  std::map<std::string, std::uint64_t> out;
  reg.for_each([&](const obs::MetricsRegistry::InstrumentView& v) {
    if (v.counter != nullptr) out[std::string{v.name}] += v.counter->value();
  });
  return out;
}

struct ScopeResult {
  std::uint64_t fleet_digest = 0;
  std::uint64_t recorder_digest = 0;
  std::uint64_t alert_digest = 0;
  std::uint64_t alerts_opened = 0;
  std::uint64_t alerts_closed = 0;
  std::uint64_t recorder_samples = 0;
  std::uint64_t trace_events = 0;
  std::uint64_t cross_node_spans = 0;   ///< finished jobs, origin != completion
  std::uint64_t traced_transfers = 0;   ///< fabric messages carrying a span
  std::uint64_t finished = 0;
  std::uint64_t failed = 0;
  bool federation_ok = false;
  bool federation_nonzero = false;
  bool expositions_parse = false;
  bool unresolved_rules = false;
  std::string chrome_trace;
  std::string recorder_json;
};

ScopeResult run_scope(const fleet::FleetConfig& cfg,
                      const std::vector<fleet::JobTemplate>& templates,
                      const std::vector<fleet::JobRequest>& requests) {
  fleet::Controller ctl{cfg, templates};
  (void)ctl.run(requests);

  ScopeResult r;
  r.fleet_digest = ctl.digest();
  if (ctl.recorder() != nullptr) {
    r.recorder_digest = ctl.recorder()->digest();
    r.recorder_samples = ctl.recorder()->size();
    r.recorder_json = ctl.recorder()->to_json();
  }
  if (ctl.alert_engine() != nullptr) {
    r.alert_digest = ctl.alert_engine()->digest();
    r.unresolved_rules = !ctl.alert_engine()->unresolved().empty();
  }
  r.alerts_opened =
      ctl.metrics().counter("ghum_fleet_alerts_opened_total").value();
  r.alerts_closed =
      ctl.metrics().counter("ghum_fleet_alerts_closed_total").value();
  r.trace_events = ctl.trace_events().size();

  for (const fleet::FleetJob& j : ctl.jobs()) {
    if (j.state == fleet::FleetJobState::kFinished) {
      ++r.finished;
      if (j.ctx.traced() && j.ctx.origin_node != obs::TraceContext::kExternal &&
          j.completion_node != fleet::kNoNode &&
          j.completion_node != j.ctx.origin_node) {
        ++r.cross_node_spans;
      }
    } else if (j.state == fleet::FleetJobState::kFailed) {
      ++r.failed;
    }
  }
  if (ctl.fabric() != nullptr) {
    for (const net::TransferRecord& t : ctl.fabric()->log()) {
      if (t.ctx.traced()) ++r.traced_transfers;
    }
  }

  // Gate (b): the federated registry against the per-source ground truth.
  obs::MetricsRegistry fed = ctl.federated_metrics();
  std::map<std::string, std::uint64_t> expect = counter_sums(ctl.metrics());
  for (fleet::NodeId id = 0; id < cfg.nodes + cfg.spares; ++id) {
    const obs::MetricsRegistry* nm = ctl.node_metrics(id);
    if (nm == nullptr) continue;  // dead or still-spare node: no machine
    for (const auto& [name, v] : counter_sums(*nm)) expect[name] += v;
  }
  r.federation_ok = counter_sums(fed) == expect;
  std::uint64_t nonzero = 0;
  for (const auto& [name, v] : expect) nonzero += v != 0 ? 1 : 0;
  r.federation_nonzero = nonzero >= 10;
  std::string err;
  r.expositions_parse = obs::json_valid(ctl.metrics_json(), &err) &&
                        obs::json_valid(r.recorder_json, &err);

  r.chrome_trace = ctl.chrome_trace();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bs::Scale scale = bs::Scale::kDefault;
  std::string out_path = "BENCH_fleetscope.json";
  std::string trace_path = "trace_fleetscope.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      scale = bs::Scale::kSmall;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <file>] [--trace <file>]\n",
                   argv[0]);
      return 2;
    }
  }

  bs::print_figure_header(
      "FleetScope", "fleet-wide observability through a node-kill storm",
      "the bench_fleet storm re-runs with the flight recorder, SLO alert "
      "engine, causal tracing and link flaps on: alert firings must be "
      "bit-for-bit reproducible, the federated registry must equal the "
      "per-node sums, and a root span must cross a node boundary");

  std::size_t failures = 0;

  std::vector<fleet::JobTemplate> templates = catalog(scale);
  std::printf("solo reference runs\n");
  sim::Picos mean_cost = 0;
  for (fleet::JobTemplate& t : templates) {
    measure_solo(t);
    mean_cost += t.est_cost;
    std::printf("  %-14s cost=%9.3f ms  foot=%4.1f MiB\n",
                t.name == templates.back().name ? "qvsim(hostile)"
                                                : t.name.c_str(),
                sim::to_milliseconds(t.est_cost),
                static_cast<double>(t.footprint_bytes) / (1 << 20));
  }
  mean_cost /= static_cast<sim::Picos>(templates.size());

  fleet::ArrivalConfig acfg;
  acfg.count = scale == bs::Scale::kSmall ? 48 : 240;
  acfg.mean_interarrival = mean_cost / 4;
  acfg.priority_classes = 3;
  acfg.class_weights = {1, 2, 3};
  acfg.deadline_floor = sim::milliseconds(64);
  acfg.top_replicas = 2;
  const std::vector<fleet::JobRequest> requests =
      fleet::generate_arrivals(acfg, templates);

  // The bench_fleet storm — two losses and one degrade-with-evacuation —
  // plus a link-flap window over the loss/evacuation stretch, so traced
  // transfers cross a degraded fabric.
  const sim::Picos horizon =
      acfg.mean_interarrival * static_cast<sim::Picos>(acfg.count);
  fleet::FleetConfig fcfg;
  fcfg.nodes = 4;
  fcfg.spares = 1;
  fcfg.node_config = node_config();
  fcfg.scheduler.policy = tenant::Policy::kPriority;
  fcfg.placement = fleet::PlacementPolicy::kLoadBalance;
  fcfg.node_footprint_budget = 24ull << 20;
  fcfg.shed_protect_classes = 1;
  fcfg.replace_max_retries = 6;
  fcfg.replace_backoff = sim::milliseconds(2);
  fcfg.faults.node_loss = {{.time = (horizon * 3) / 10, .node = 1},
                           {.time = (horizon * 7) / 10, .node = 2}};
  fcfg.faults.node_degrade = {
      {.time = horizon / 2, .node = 0, .slow_factor = 4}};
  fcfg.faults.evacuate_degraded = true;
  fcfg.faults.link_flap = {{.start = (horizon * 2) / 10,
                            .duration = horizon / 5,
                            .node_a = 3,
                            .node_b = fault::LinkFlapWindow::kAllPeers,
                            .bandwidth_factor = 4.0,
                            .latency_factor = 2.0}};

  // The observability stack under test.
  fcfg.obs.enabled = true;
  fcfg.obs.cadence = std::max<sim::Picos>(1, acfg.mean_interarrival / 2);
  fcfg.obs.ring_capacity = 8192;
  {
    obs::AlertRule backlog;
    backlog.name = "fleet-backlog";
    backlog.instrument = "fleet.pending_jobs";
    backlog.predicate = obs::AlertPredicate::kAbove;
    backlog.threshold = 2;
    backlog.for_duration = fcfg.obs.cadence;
    backlog.severity = obs::AlertSeverity::kWarning;
    obs::AlertRule slo;
    slo.name = "class2-slo-burn";
    slo.instrument = "class2.slo_attainment_permille";
    slo.predicate = obs::AlertPredicate::kBelow;
    slo.threshold = 900;
    slo.for_duration = 0;
    slo.burn_window = 8 * fcfg.obs.cadence;
    slo.severity = obs::AlertSeverity::kCritical;
    fcfg.obs.alerts = {backlog, slo};
  }

  std::printf("\nstorm under observation: %llu requests, cadence=%.3f ms, "
              "losses at %.1f/%.1f ms, degrade at %.1f ms, flap %.1f-%.1f ms\n",
              static_cast<unsigned long long>(acfg.count),
              sim::to_milliseconds(fcfg.obs.cadence),
              sim::to_milliseconds(fcfg.faults.node_loss[0].time),
              sim::to_milliseconds(fcfg.faults.node_loss[1].time),
              sim::to_milliseconds(fcfg.faults.node_degrade[0].time),
              sim::to_milliseconds(fcfg.faults.link_flap[0].start),
              sim::to_milliseconds(fcfg.faults.link_flap[0].start +
                                   fcfg.faults.link_flap[0].duration));

  const ScopeResult a = run_scope(fcfg, templates, requests);
  const ScopeResult b = run_scope(fcfg, templates, requests);

  // Gate (a): bit-for-bit alerting + recorder + fleet digest.
  const bool repro_ok = a.fleet_digest == b.fleet_digest &&
                        a.recorder_digest == b.recorder_digest &&
                        a.alert_digest == b.alert_digest &&
                        a.alerts_opened == b.alerts_opened &&
                        a.alerts_closed == b.alerts_closed &&
                        a.recorder_json == b.recorder_json &&
                        a.chrome_trace == b.chrome_trace;
  if (!repro_ok) {
    ++failures;
    std::fprintf(stderr,
                 "  NOT reproducible: fleet %016llx/%016llx recorder "
                 "%016llx/%016llx alerts %016llx/%016llx\n",
                 static_cast<unsigned long long>(a.fleet_digest),
                 static_cast<unsigned long long>(b.fleet_digest),
                 static_cast<unsigned long long>(a.recorder_digest),
                 static_cast<unsigned long long>(b.recorder_digest),
                 static_cast<unsigned long long>(a.alert_digest),
                 static_cast<unsigned long long>(b.alert_digest));
  }
  // The rules must resolve and actually fire, and at least one firing
  // must also clear (the SLO-burn rule may stay open through the end of
  // the horizon: failed jobs permanently depress class attainment).
  const bool alerts_ok = !a.unresolved_rules && a.alerts_opened >= 1 &&
                         a.alerts_closed >= 1 &&
                         a.alerts_closed <= a.alerts_opened;
  if (!alerts_ok) {
    ++failures;
    std::fprintf(stderr, "  alerting off: unresolved=%d opened=%llu closed=%llu\n",
                 a.unresolved_rules ? 1 : 0,
                 static_cast<unsigned long long>(a.alerts_opened),
                 static_cast<unsigned long long>(a.alerts_closed));
  }
  // Gate (b): federation equality at nonzero values, parsing expositions.
  const bool federation_ok =
      a.federation_ok && a.federation_nonzero && a.expositions_parse;
  if (!federation_ok) {
    ++failures;
    std::fprintf(stderr, "  federation broken: equal=%d nonzero=%d parse=%d\n",
                 a.federation_ok ? 1 : 0, a.federation_nonzero ? 1 : 0,
                 a.expositions_parse ? 1 : 0);
  }
  // Gate (c): cross-node span continuity + valid fleet trace.
  std::string err;
  const bool trace_valid = obs::json_valid(a.chrome_trace, &err);
  const bool spans_ok = a.cross_node_spans >= 1 && a.traced_transfers >= 1 &&
                        trace_valid &&
                        a.chrome_trace.find("\"ph\":\"s\"") != std::string::npos &&
                        a.chrome_trace.find("\"ph\":\"f\"") != std::string::npos &&
                        a.chrome_trace.find("link flap") != std::string::npos;
  if (!spans_ok) {
    ++failures;
    std::fprintf(stderr,
                 "  span continuity broken: cross=%llu transfers=%llu "
                 "valid=%d (%s)\n",
                 static_cast<unsigned long long>(a.cross_node_spans),
                 static_cast<unsigned long long>(a.traced_transfers),
                 trace_valid ? 1 : 0, err.c_str());
  }

  std::printf("\nfinished=%llu failed=%llu samples=%llu trace_events=%llu "
              "alerts=%llu/%llu cross_node_spans=%llu traced_transfers=%llu\n",
              static_cast<unsigned long long>(a.finished),
              static_cast<unsigned long long>(a.failed),
              static_cast<unsigned long long>(a.recorder_samples),
              static_cast<unsigned long long>(a.trace_events),
              static_cast<unsigned long long>(a.alerts_opened),
              static_cast<unsigned long long>(a.alerts_closed),
              static_cast<unsigned long long>(a.cross_node_spans),
              static_cast<unsigned long long>(a.traced_transfers));
  std::printf("data\tfleetscope\t%llu\t%llu\t%llu\t%llu\t%llu\n",
              static_cast<unsigned long long>(a.recorder_samples),
              static_cast<unsigned long long>(a.trace_events),
              static_cast<unsigned long long>(a.alerts_opened),
              static_cast<unsigned long long>(a.cross_node_spans),
              static_cast<unsigned long long>(a.traced_transfers));
  std::printf("gates: repro=%s alerts=%s federation=%s spans=%s\n",
              repro_ok ? "ok" : "FAIL", alerts_ok ? "ok" : "FAIL",
              federation_ok ? "ok" : "FAIL", spans_ok ? "ok" : "FAIL");

  if (std::FILE* f = std::fopen(trace_path.c_str(), "w")) {
    std::fwrite(a.chrome_trace.data(), 1, a.chrome_trace.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", trace_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
    return 1;
  }

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"fleetscope\",\n  \"scale\": \"%s\",\n",
                 scale == bs::Scale::kSmall ? "small" : "default");
    std::fprintf(f, "  \"requests\": %llu,\n",
                 static_cast<unsigned long long>(acfg.count));
    std::fprintf(f,
                 "  \"finished\": %llu,\n  \"failed\": %llu,\n"
                 "  \"recorder_samples\": %llu,\n  \"trace_events\": %llu,\n"
                 "  \"alerts_opened\": %llu,\n  \"alerts_closed\": %llu,\n"
                 "  \"cross_node_spans\": %llu,\n  \"traced_transfers\": %llu,\n",
                 static_cast<unsigned long long>(a.finished),
                 static_cast<unsigned long long>(a.failed),
                 static_cast<unsigned long long>(a.recorder_samples),
                 static_cast<unsigned long long>(a.trace_events),
                 static_cast<unsigned long long>(a.alerts_opened),
                 static_cast<unsigned long long>(a.alerts_closed),
                 static_cast<unsigned long long>(a.cross_node_spans),
                 static_cast<unsigned long long>(a.traced_transfers));
    std::fprintf(f,
                 "  \"gates\": {\"repro_ok\": %s, \"alerts_ok\": %s, "
                 "\"federation_ok\": %s, \"spans_ok\": %s},\n",
                 repro_ok ? "true" : "false", alerts_ok ? "true" : "false",
                 federation_ok ? "true" : "false", spans_ok ? "true" : "false");
    std::fprintf(f, "  \"total_failures\": %zu,\n", failures);
    std::fprintf(f, "  \"ok\": %s\n", failures == 0 ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (failures != 0) {
    std::fprintf(stderr, "FAIL: %zu fleetscope check failures\n", failures);
    return 1;
  }
  std::printf("all fleetscope checks passed\n");
  return 0;
}
