// Figure 4: memory usage over time in hotspot, system vs managed version.
//
// Paper shape — system version: GPU usage stays flat at the driver
// baseline while CPU RSS ramps during initialization and stays up through
// the computation (data is accessed remotely, never migrated). Managed
// version: the same CPU ramp, then at the start of computation a steep RSS
// drop mirrored by a sharp GPU-usage rise (on-demand migration).

#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

int main() {
  bs::print_figure_header(
      "Figure 4", "hotspot memory usage over time (system vs managed)",
      "system: flat GPU usage, CPU RSS ramp persists; managed: RSS drop + "
      "GPU spike when computation begins migrating pages");

  for (apps::MemMode mode : {apps::MemMode::kSystem, apps::MemMode::kManaged}) {
    core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, false);
    cfg.profiler_enabled = true;
    cfg.profiler_period = sim::microseconds(100);
    core::System sys{cfg};
    runtime::Runtime rt{sys};
    (void)apps::run_hotspot(rt, mode, bs::hotspot_config(bs::Scale::kDefault));
    sys.profiler().mark();

    std::printf("\n-- %s version --\n", std::string{to_string(mode)}.c_str());
    std::printf("data\tfig04_%s\ttime_ms\tcpu_rss_mib\tgpu_used_mib\n",
                std::string{to_string(mode)}.c_str());
    const auto& samples = sys.profiler().samples();
    // Thin the series for readability: ~40 rows.
    const std::size_t step = samples.size() > 40 ? samples.size() / 40 : 1;
    for (std::size_t i = 0; i < samples.size(); i += step) {
      const auto& s = samples[i];
      std::printf("data\tfig04_%s\t%.3f\t%.2f\t%.2f\n",
                  std::string{to_string(mode)}.c_str(), sim::to_milliseconds(s.time),
                  static_cast<double>(s.cpu_rss_bytes) / (1 << 20),
                  static_cast<double>(s.gpu_used_bytes) / (1 << 20));
    }
    std::printf("peak: cpu_rss=%.1f MiB gpu_used=%.1f MiB, final gpu=%.1f MiB\n",
                static_cast<double>(sys.profiler().peak_cpu_rss()) / (1 << 20),
                static_cast<double>(sys.profiler().peak_gpu_used()) / (1 << 20),
                static_cast<double>(samples.back().gpu_used_bytes) / (1 << 20));
  }
  return 0;
}
