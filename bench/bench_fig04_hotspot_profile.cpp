// Figure 4: memory usage over time in hotspot, system vs managed version.
//
// Paper shape — system version: GPU usage stays flat at the driver
// baseline while CPU RSS ramps during initialization and stays up through
// the computation (data is accessed remotely, never migrated). Managed
// version: the same CPU ramp, then at the start of computation a steep RSS
// drop mirrored by a sharp GPU-usage rise (on-demand migration).
//
// With --trace <path>, the managed run additionally records the full event
// log, the link monitor, and causal spans, and dumps an enriched Chrome
// trace (open in chrome://tracing or https://ui.perfetto.dev).

#include <cstdio>
#include <cstring>
#include <string>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "profile/trace_export.hpp"
#include "runtime/runtime.hpp"

using namespace ghum;
namespace bs = benchsupport;

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace <file>]\n", argv[0]);
      return 2;
    }
  }

  bs::print_figure_header(
      "Figure 4", "hotspot memory usage over time (system vs managed)",
      "system: flat GPU usage, CPU RSS ramp persists; managed: RSS drop + "
      "GPU spike when computation begins migrating pages");

  for (apps::MemMode mode : {apps::MemMode::kSystem, apps::MemMode::kManaged}) {
    core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, false);
    cfg.profiler_enabled = true;
    cfg.profiler_period = sim::microseconds(100);
    const bool dump_trace =
        !trace_path.empty() && mode == apps::MemMode::kManaged;
    if (dump_trace) {
      cfg.event_log = true;
      cfg.link_monitor = true;
    }
    core::System sys{cfg};
    runtime::Runtime rt{sys};
    (void)apps::run_hotspot(rt, mode, bs::hotspot_config(bs::Scale::kDefault));
    sys.profiler().mark();

    std::printf("\n-- %s version --\n", std::string{to_string(mode)}.c_str());
    std::printf("data\tfig04_%s\ttime_ms\tcpu_rss_mib\tgpu_used_mib\n",
                std::string{to_string(mode)}.c_str());
    const auto& samples = sys.profiler().samples();
    // Thin the series for readability: ~40 rows.
    const std::size_t step = samples.size() > 40 ? samples.size() / 40 : 1;
    for (std::size_t i = 0; i < samples.size(); i += step) {
      const auto& s = samples[i];
      std::printf("data\tfig04_%s\t%.3f\t%.2f\t%.2f\n",
                  std::string{to_string(mode)}.c_str(), sim::to_milliseconds(s.time),
                  static_cast<double>(s.cpu_rss_bytes) / (1 << 20),
                  static_cast<double>(s.gpu_used_bytes) / (1 << 20));
    }
    std::printf("peak: cpu_rss=%.1f MiB gpu_used=%.1f MiB, final gpu=%.1f MiB\n",
                static_cast<double>(sys.profiler().peak_cpu_rss()) / (1 << 20),
                static_cast<double>(sys.profiler().peak_gpu_used()) / (1 << 20),
                static_cast<double>(samples.back().gpu_used_bytes) / (1 << 20));

    if (dump_trace) {
      sys.link_monitor().stop();
      profile::TraceOptions topts;
      topts.link_samples = &sys.link_monitor().samples();
      const std::string trace =
          profile::to_chrome_trace(sys.events(), sys.workload(), topts);
      if (std::FILE* f = std::fopen(trace_path.c_str(), "w")) {
        std::fwrite(trace.data(), 1, trace.size(), f);
        std::fclose(f);
        std::printf("wrote Chrome trace: %s (%zu bytes)\n", trace_path.c_str(),
                    trace.size());
      } else {
        std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        return 1;
      }
    }
  }
  return 0;
}
