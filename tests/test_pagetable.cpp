#include <gtest/gtest.h>

#include "pagetable/gmmu.hpp"
#include "pagetable/page_table.hpp"
#include "pagetable/smmu.hpp"
#include "pagetable/tlb.hpp"

namespace ghum::pagetable {
namespace {

TEST(PageTable, RejectsNonPowerOfTwoPageSize) {
  EXPECT_THROW(PageTable{0}, std::invalid_argument);
  EXPECT_THROW(PageTable{3000}, std::invalid_argument);
}

TEST(PageTable, MapLookupUnmap) {
  PageTable pt{kSystemPage4K};
  const std::uint64_t va = 0x1234'5678;
  EXPECT_EQ(pt.lookup(va), nullptr);
  pt.map(va, Pte{.node = mem::Node::kGpu, .writable = true});
  const Pte* pte = pt.lookup(va);
  ASSERT_NE(pte, nullptr);
  EXPECT_EQ(pte->node, mem::Node::kGpu);
  // Any address within the same page resolves to the same entry.
  EXPECT_NE(pt.lookup(pt.page_base(va) + kSystemPage4K - 1), nullptr);
  EXPECT_EQ(pt.lookup(pt.page_base(va) + kSystemPage4K), nullptr);
  EXPECT_TRUE(pt.unmap(va));
  EXPECT_FALSE(pt.unmap(va));
}

TEST(PageTable, SetNodeMovesResidency) {
  PageTable pt{kSystemPage64K};
  pt.map(0x100000, Pte{.node = mem::Node::kCpu, .writable = true});
  pt.set_node(0x100000, mem::Node::kGpu);
  EXPECT_EQ(pt.lookup(0x100000)->node, mem::Node::kGpu);
  EXPECT_THROW(pt.set_node(0x900000, mem::Node::kCpu), std::logic_error);
}

TEST(PageTable, ResidentPageCountsByNode) {
  PageTable pt{kSystemPage4K};
  pt.map(0x0000, Pte{.node = mem::Node::kCpu});
  pt.map(0x1000, Pte{.node = mem::Node::kGpu});
  pt.map(0x2000, Pte{.node = mem::Node::kGpu});
  EXPECT_EQ(pt.mapped_pages(), 3u);
  EXPECT_EQ(pt.resident_pages(mem::Node::kCpu), 1u);
  EXPECT_EQ(pt.resident_pages(mem::Node::kGpu), 2u);
}

TEST(PageTable, ResidentRunEndScansContiguousResidency) {
  PageTable pt{kSystemPage4K};
  // Pages 0-2 on CPU, page 3 on GPU, page 4 unmapped, page 5 on CPU.
  pt.map(0x0000, Pte{.node = mem::Node::kCpu});
  pt.map(0x1000, Pte{.node = mem::Node::kCpu});
  pt.map(0x2000, Pte{.node = mem::Node::kCpu});
  pt.map(0x3000, Pte{.node = mem::Node::kGpu});
  pt.map(0x5000, Pte{.node = mem::Node::kCpu});
  const std::uint64_t limit = 0x10000;
  // Run stops at the first page on a different node...
  EXPECT_EQ(pt.resident_run_end(0x0000, mem::Node::kCpu, limit, 256), 0x3000u);
  // ...starting mid-run still scans forward from the containing page...
  EXPECT_EQ(pt.resident_run_end(0x1800, mem::Node::kCpu, limit, 256), 0x3000u);
  // ...a hole ends the run...
  EXPECT_EQ(pt.resident_run_end(0x3000, mem::Node::kGpu, limit, 256), 0x4000u);
  // ...and the scan is clamped by max_pages and by the limit.
  EXPECT_EQ(pt.resident_run_end(0x0000, mem::Node::kCpu, limit, 2), 0x2000u);
  EXPECT_EQ(pt.resident_run_end(0x0000, mem::Node::kCpu, 0x1800, 256), 0x1800u);
  // The first page is never checked (the caller already resolved it), so a
  // scan from the unmapped page 4 still extends across the mapped page 5.
  EXPECT_EQ(pt.resident_run_end(0x4000, mem::Node::kCpu, limit, 256), 0x6000u);
}

TEST(PageTable, AdjacentRunsMergeOnSetNode) {
  PageTable pt{kSystemPage4K};
  // Per-page maps of identical PTEs coalesce into a single extent.
  for (std::uint64_t p = 0; p < 6; ++p) {
    pt.map(p * 0x1000, Pte{.node = mem::Node::kCpu});
  }
  EXPECT_EQ(pt.run_count(), 1u);
  // Moving the middle pages splits the extent in three...
  pt.set_node(0x2000, mem::Node::kGpu);
  pt.set_node(0x3000, mem::Node::kGpu);
  EXPECT_EQ(pt.run_count(), 3u);
  EXPECT_EQ(pt.resident_pages(mem::Node::kGpu), 2u);
  // ...and moving them back re-merges everything into one run.
  pt.set_node(0x2000, mem::Node::kCpu);
  pt.set_node(0x3000, mem::Node::kCpu);
  EXPECT_EQ(pt.run_count(), 1u);
  EXPECT_EQ(pt.resident_pages(mem::Node::kCpu), 6u);
}

TEST(PageTable, MidRunUnmapSplitsExtent) {
  PageTable pt{kSystemPage4K};
  pt.map_range(0x0000, 10, Pte{.node = mem::Node::kCpu});
  EXPECT_EQ(pt.run_count(), 1u);
  EXPECT_TRUE(pt.unmap(0x4000));
  EXPECT_EQ(pt.run_count(), 2u);
  EXPECT_EQ(pt.mapped_pages(), 9u);
  EXPECT_EQ(pt.lookup(0x4000), nullptr);
  ASSERT_NE(pt.lookup(0x3000), nullptr);
  ASSERT_NE(pt.lookup(0x5000), nullptr);
  // Remapping the hole with the same attributes heals the single extent.
  pt.map(0x4000, Pte{.node = mem::Node::kCpu});
  EXPECT_EQ(pt.run_count(), 1u);
  EXPECT_EQ(pt.mapped_pages(), 10u);
}

TEST(PageTable, BulkRangeOpsSpliceWholeExtents) {
  PageTable pt{kSystemPage4K};
  pt.map_range(0x0000, 8, Pte{.node = mem::Node::kCpu});
  // Partial node change reports only the pages that actually moved.
  EXPECT_EQ(pt.set_node_range(0x2000, 4, mem::Node::kGpu), 4u);
  EXPECT_EQ(pt.set_node_range(0x2000, 4, mem::Node::kGpu), 0u);
  EXPECT_EQ(pt.run_count(), 3u);
  // map_range overwrites: re-mapping the whole range back to one PTE value
  // collapses the fragmentation.
  pt.map_range(0x0000, 8, Pte{.node = mem::Node::kCpu});
  EXPECT_EQ(pt.run_count(), 1u);
  // unmap_range over a partially mapped window counts only mapped pages.
  EXPECT_EQ(pt.unmap_range(0x6000, 4), 2u);
  EXPECT_EQ(pt.mapped_pages(), 6u);
}

TEST(PageTable, RunsStraddlingRangeBoundariesAreClipped) {
  PageTable pt{kSystemPage4K};
  pt.map_range(0x0000, 12, Pte{.node = mem::Node::kGpu});
  // Queries over a window inside the run see exactly the window.
  EXPECT_EQ(pt.resident_pages_in_range(0x3000, 4), 4u);
  std::uint64_t seen_pages = 0;
  std::uint64_t first = 0;
  pt.for_each_run_in_range(0x3000, 4,
                           [&](std::uint64_t vpn, std::uint64_t pages, const Pte&) {
                             first = vpn;
                             seen_pages += pages;
                           });
  EXPECT_EQ(first, 3u);
  EXPECT_EQ(seen_pages, 4u);
  // A bulk unmap clipped to the window splits the straddling run in two.
  EXPECT_EQ(pt.unmap_range(0x3000, 4), 4u);
  EXPECT_EQ(pt.run_count(), 2u);
  EXPECT_EQ(pt.mapped_pages(), 8u);
}

TEST(PageTable, WritableMismatchTerminatesResidentRun) {
  PageTable pt{kSystemPage4K};
  pt.map_range(0x0000, 6, Pte{.node = mem::Node::kCpu, .writable = true});
  pt.map(0x3000, Pte{.node = mem::Node::kCpu, .writable = false});
  // Same node throughout, but extents are attribute-maximal: the
  // permission boundary ends the batched run at page 3.
  EXPECT_EQ(pt.run_count(), 3u);
  EXPECT_EQ(pt.resident_run_end(0x0000, mem::Node::kCpu, 0x10000, 256),
            0x3000u);
  // Restoring write permission re-merges the extent and the run again
  // spans all six pages.
  pt.map(0x3000, Pte{.node = mem::Node::kCpu, .writable = true});
  EXPECT_EQ(pt.run_count(), 1u);
  EXPECT_EQ(pt.resident_run_end(0x0000, mem::Node::kCpu, 0x10000, 256),
            0x6000u);
}

TEST(PageTable, NumaGenerationSplitsAndRemerges) {
  PageTable pt{kSystemPage4K};
  pt.map_range(0x0000, 4, Pte{.node = mem::Node::kCpu});
  // A hint fault bumps one page's generation: the run splits around it.
  pt.set_numa_generation(0x1000, 1);
  EXPECT_EQ(pt.run_count(), 3u);
  EXPECT_EQ(pt.resident_run_end(0x0000, mem::Node::kCpu, 0x10000, 256),
            0x1000u);
  // Once the scanner catches the neighbours up, the extent re-coalesces.
  pt.set_numa_generation(0x0000, 1);
  pt.set_numa_generation(0x2000, 1);
  pt.set_numa_generation(0x3000, 1);
  EXPECT_EQ(pt.run_count(), 1u);
  EXPECT_THROW(pt.set_numa_generation(0x9000, 1), std::logic_error);
}

TEST(PageTable, SamplingDoesNotScanTheMap) {
  PageTable pt{kSystemPage64K};
  pt.map_range(0, 1u << 16, Pte{.node = mem::Node::kCpu});
  pt.set_node_range(0x100000, 16, mem::Node::kGpu);
  const std::uint64_t steps_before = pt.scan_steps();
  // Everything the profiler/report sampling path reads per tick must be
  // O(1) or O(log runs) — never a walk over the run map.
  (void)pt.resident_pages(mem::Node::kCpu);
  (void)pt.resident_pages(mem::Node::kGpu);
  (void)pt.resident_bytes(mem::Node::kGpu);
  (void)pt.mapped_pages();
  (void)pt.run_count();
  (void)pt.lookup(0x200000);
  (void)pt.resident_run_end(0x200000, mem::Node::kCpu, ~0ull, 4096);
  EXPECT_EQ(pt.scan_steps(), steps_before);
  // Linear walks do advance the counter (that is what it measures).
  pt.for_each_run([](std::uint64_t, std::uint64_t, const Pte&) {});
  EXPECT_GT(pt.scan_steps(), steps_before);
}

TEST(PageTable, GraceSupportedPageSizes) {
  // Section 2.1.3: system pages are 4 KiB or 64 KiB; GPU pages are 2 MiB.
  EXPECT_EQ(kSystemPage4K, 4096u);
  EXPECT_EQ(kSystemPage64K, 65536u);
  EXPECT_EQ(kGpuPageSize, 2u << 20);
}

TEST(Tlb, HitRefreshesAndMissCounts) {
  Tlb tlb{2};
  EXPECT_FALSE(tlb.lookup(1).has_value());
  tlb.insert(1, mem::Node::kCpu);
  EXPECT_EQ(tlb.lookup(1), mem::Node::kCpu);
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, LruEvictionOrder) {
  Tlb tlb{2};
  tlb.insert(1, mem::Node::kCpu);
  tlb.insert(2, mem::Node::kCpu);
  ASSERT_TRUE(tlb.lookup(1).has_value());  // 1 becomes MRU
  tlb.insert(3, mem::Node::kCpu);          // evicts 2
  EXPECT_TRUE(tlb.lookup(1).has_value());
  EXPECT_FALSE(tlb.lookup(2).has_value());
  EXPECT_TRUE(tlb.lookup(3).has_value());
}

TEST(Tlb, InvalidateAndFlush) {
  Tlb tlb{8};
  tlb.insert(1, mem::Node::kCpu);
  tlb.insert(2, mem::Node::kGpu);
  tlb.invalidate(1);
  EXPECT_FALSE(tlb.lookup(1).has_value());
  EXPECT_TRUE(tlb.lookup(2).has_value());
  tlb.flush();
  EXPECT_EQ(tlb.size(), 0u);
}

TEST(Tlb, CapacityZeroAlwaysMisses) {
  // Regression: a zero-capacity TLB (no-TLB ablation) used to behave as a
  // size-1 cache because insert() evicted then inserted anyway, so repeat
  // accesses to one page were under-charged their walks.
  Tlb tlb{0};
  EXPECT_FALSE(tlb.lookup(7).has_value());
  tlb.insert(7, mem::Node::kCpu);
  EXPECT_EQ(tlb.size(), 0u);
  EXPECT_FALSE(tlb.lookup(7).has_value());  // the insert must not stick
  tlb.insert(7, mem::Node::kGpu);
  tlb.insert(8, mem::Node::kGpu);
  EXPECT_FALSE(tlb.lookup(7).has_value());
  EXPECT_FALSE(tlb.lookup(8).has_value());
  EXPECT_EQ(tlb.hits(), 0u);
  EXPECT_EQ(tlb.misses(), 4u);
  EXPECT_EQ(tlb.size(), 0u);
}

TEST(Tlb, InsertUpdatesExistingNode) {
  Tlb tlb{4};
  tlb.insert(5, mem::Node::kCpu);
  tlb.insert(5, mem::Node::kGpu);
  EXPECT_EQ(tlb.size(), 1u);
  EXPECT_EQ(tlb.lookup(5), mem::Node::kGpu);
}

class SmmuTest : public ::testing::Test {
 protected:
  PageTable pt{kSystemPage64K};
  Smmu smmu{pt, SmmuCosts{}, 16, 16};
};

TEST_F(SmmuTest, UnmappedPageFaultsWithWalkCost) {
  const Translation t = smmu.translate_cpu(0x10000);
  EXPECT_FALSE(t.present);
  EXPECT_EQ(t.cost, smmu.costs().walk);
}

TEST_F(SmmuTest, MappedPageHitsTlbSecondTime) {
  pt.map(0x10000, Pte{.node = mem::Node::kCpu});
  const Translation t1 = smmu.translate_cpu(0x10000);
  EXPECT_TRUE(t1.present);
  EXPECT_FALSE(t1.tlb_hit);
  const Translation t2 = smmu.translate_cpu(0x10000 + 100);
  EXPECT_TRUE(t2.tlb_hit);
  EXPECT_EQ(t2.cost, 0);
}

TEST_F(SmmuTest, AtsRequestCostsC2CRoundTrip) {
  pt.map(0x20000, Pte{.node = mem::Node::kCpu});
  const Translation t = smmu.translate_ats(0x20000);
  EXPECT_TRUE(t.present);
  EXPECT_EQ(t.cost, smmu.costs().ats_round_trip + smmu.costs().walk);
  // Cached in the ATS TLB afterwards.
  EXPECT_TRUE(smmu.translate_ats(0x20000).tlb_hit);
}

TEST_F(SmmuTest, InvalidateDropsBothTlbs) {
  pt.map(0x30000, Pte{.node = mem::Node::kGpu});
  (void)smmu.translate_cpu(0x30000);
  (void)smmu.translate_ats(0x30000);
  smmu.invalidate(0x30000);
  EXPECT_FALSE(smmu.translate_cpu(0x30000).tlb_hit);
  EXPECT_FALSE(smmu.translate_ats(0x30000).tlb_hit);
}

class GmmuTest : public ::testing::Test {
 protected:
  PageTable sys_pt{kSystemPage64K};
  PageTable gpu_pt{kGpuPageSize};
  Smmu smmu{sys_pt, SmmuCosts{}, 16, 16};
  Gmmu gmmu{gpu_pt, smmu, GmmuCosts{}, 16, 16};
};

TEST_F(GmmuTest, GpuTableMissIsManagedFault) {
  const GpuTranslation t = gmmu.translate_gpu_table(0x200000);
  EXPECT_EQ(t.outcome, GpuXlatOutcome::kManagedFault);
}

TEST_F(GmmuTest, GpuTableHitAfterMap) {
  gpu_pt.map(0x200000, Pte{.node = mem::Node::kGpu});
  const GpuTranslation t1 = gmmu.translate_gpu_table(0x200000);
  EXPECT_EQ(t1.outcome, GpuXlatOutcome::kResident);
  EXPECT_FALSE(t1.tlb_hit);
  // Whole 2 MiB block served by one uTLB entry.
  const GpuTranslation t2 = gmmu.translate_gpu_table(0x200000 + (1 << 20));
  EXPECT_TRUE(t2.tlb_hit);
}

TEST_F(GmmuTest, SystemPathFirstTouchThenAtsCached) {
  const GpuTranslation t0 = gmmu.translate_system(0x40000);
  EXPECT_EQ(t0.outcome, GpuXlatOutcome::kSystemFirstTouch);
  sys_pt.map(0x40000, Pte{.node = mem::Node::kCpu});
  const GpuTranslation t1 = gmmu.translate_system(0x40000);
  EXPECT_EQ(t1.outcome, GpuXlatOutcome::kResident);
  EXPECT_FALSE(t1.tlb_hit);
  EXPECT_TRUE(gmmu.translate_system(0x40000 + 64).tlb_hit);
}

TEST_F(GmmuTest, SystemInvalidationForcesNewAtsRequest) {
  sys_pt.map(0x40000, Pte{.node = mem::Node::kCpu});
  (void)gmmu.translate_system(0x40000);
  gmmu.invalidate_system(0x40000);
  EXPECT_FALSE(gmmu.translate_system(0x40000).tlb_hit);
}

}  // namespace
}  // namespace ghum::pagetable
