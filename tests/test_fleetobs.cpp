#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/hotspot.hpp"
#include "fleet/arrival.hpp"
#include "fleet/controller.hpp"
#include "obs/alerts.hpp"
#include "obs/fleet_trace.hpp"
#include "obs/json_check.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "tenant/scheduler.hpp"

/// Fleet observability tests (DESIGN.md Section 13): the deterministic
/// flight recorder, the SLO alert engine on top of it, the cross-node
/// causal trace exporter, and the fleet controller integration — federated
/// metrics, alert firings in the digest, and a root span that demonstrably
/// crosses a node boundary through a loss-replay chain.

namespace ghum {
namespace {

constexpr sim::Picos kFar = sim::milliseconds(10'000);

// ---------------------------------------------------------------------------
// TimeSeries: the flight recorder.
// ---------------------------------------------------------------------------

TEST(TimeSeries, EdgesAreCadenceMultiplesIndependentOfChopping) {
  // Two recorders over the same deterministic sampler, one advanced in a
  // single jump and one in ragged slices: identical edges, values, digest.
  auto build = [](const std::vector<sim::Picos>& steps) {
    obs::TimeSeries ts{100};
    std::int64_t v = 0;
    ts.add("ticks", [&v] { return ++v; });
    for (sim::Picos t : steps) ts.advance(t);
    return ts.digest();
  };
  EXPECT_EQ(build({1000}), build({1, 99, 100, 101, 350, 350, 999, 1000}));

  obs::TimeSeries ts{100};
  ts.add("zero", [] { return 0; });
  ts.advance(1000);
  ASSERT_EQ(ts.size(), 11u);  // edges 0, 100, ..., 1000
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(ts.time_at(i), static_cast<sim::Picos>(100 * i));
  }
  EXPECT_EQ(ts.last_edge(), 1000);
  // Advancing backwards (or to the same time) samples nothing new.
  ts.advance(1000);
  ts.advance(500);
  EXPECT_EQ(ts.size(), 11u);
}

TEST(TimeSeries, RingOverwritesOldestAndCountsDrops) {
  obs::TimeSeries ts{10, 4};
  std::int64_t v = 0;
  const std::size_t s = ts.add("v", [&v] { return v; });
  for (int i = 0; i <= 9; ++i) {
    v = i;
    ts.advance(10 * i);
  }
  // 10 edges (0..90) through a capacity-4 ring: 6 dropped, newest 4 kept.
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.dropped(), 6u);
  EXPECT_EQ(ts.time_at(0), 60);
  EXPECT_EQ(ts.time_at(3), 90);
  EXPECT_EQ(ts.value_at(s, 0), 6);
  EXPECT_EQ(ts.value_at(s, 3), 9);
}

TEST(TimeSeries, WindowAggregatesRetainedSamplesOnly) {
  obs::TimeSeries ts{10};
  std::int64_t v = 0;
  const std::size_t s = ts.add("v", [&v] { return v; });
  for (int i = 0; i <= 5; ++i) {
    v = i * i;  // 0 1 4 9 16 25 at t = 0 10 20 30 40 50
    ts.advance(10 * i);
  }
  const obs::SeriesWindow w = ts.window(s, 10, 40);
  EXPECT_EQ(w.count, 4u);
  EXPECT_EQ(w.min, 1);
  EXPECT_EQ(w.max, 16);
  EXPECT_EQ(w.sum, 30);
  EXPECT_EQ(w.avg(), 7);
  EXPECT_EQ(ts.window(s, 1000, 2000).count, 0u);
  EXPECT_EQ(ts.window(obs::TimeSeries::kNoSeries, 0, 100).count, 0u);
}

TEST(TimeSeries, LateRegisteredSeriesReadsZeroForMissedEdges) {
  obs::TimeSeries ts{10};
  ts.add("early", [] { return 7; });
  ts.advance(20);
  const std::size_t late = ts.add("late", [] { return 9; });
  ts.advance(40);
  ASSERT_EQ(ts.size(), 5u);
  EXPECT_EQ(ts.value_at(late, 0), 0);  // edge 0: series did not exist yet
  EXPECT_EQ(ts.value_at(late, 2), 0);  // edge 20
  EXPECT_EQ(ts.value_at(late, 3), 9);  // edge 30: first sampled edge
}

TEST(TimeSeries, ExportsParseAndAreDeterministic) {
  auto build = [] {
    obs::TimeSeries ts{100};
    std::int64_t v = 0;
    ts.add("a.b-c", [&v] { return v += 3; });
    ts.add("d", [&v] { return -v; });
    ts.advance(500);
    return ts;
  };
  const obs::TimeSeries t1 = build();
  const obs::TimeSeries t2 = build();
  EXPECT_EQ(t1.to_tsv(), t2.to_tsv());
  EXPECT_EQ(t1.to_json(), t2.to_json());
  EXPECT_EQ(t1.digest(), t2.digest());
  std::string err;
  EXPECT_TRUE(obs::json_valid(t1.to_json(), &err)) << err;
  EXPECT_EQ(t1.to_tsv().substr(0, 18), "time_ps\ta.b-c\td\n0\t");
  EXPECT_EQ(t1.find("d"), 1u);
  EXPECT_EQ(t1.find("nope"), obs::TimeSeries::kNoSeries);
}

// ---------------------------------------------------------------------------
// AlertEngine: threshold / for-duration / burn-window semantics.
// ---------------------------------------------------------------------------

obs::AlertRule above(std::string name, std::string instr, std::int64_t thr,
                     sim::Picos for_d = 0, sim::Picos burn = 0) {
  obs::AlertRule r;
  r.name = std::move(name);
  r.instrument = std::move(instr);
  r.predicate = obs::AlertPredicate::kAbove;
  r.threshold = thr;
  r.for_duration = for_d;
  r.burn_window = burn;
  return r;
}

TEST(AlertEngine, OpensAfterForDurationAndClosesOnRecovery) {
  obs::TimeSeries ts{10};
  std::int64_t v = 0;
  ts.add("depth", [&v] { return v; });
  obs::AlertEngine eng{ts, {above("deep", "depth", 5, 20)}};

  v = 9;            // breach starts at edge 0
  ts.advance(10);   // edges 0, 10: breach held 10 < 20 — not open yet
  EXPECT_EQ(eng.evaluate(), 0u);
  EXPECT_FALSE(eng.is_open(0));
  ts.advance(20);   // edge 20: breach has held 20 — opens
  EXPECT_EQ(eng.evaluate(), 1u);
  EXPECT_TRUE(eng.is_open(0));
  EXPECT_EQ(eng.open_count(), 1u);
  v = 5;            // exactly at threshold: kAbove requires strictly >
  ts.advance(30);
  EXPECT_EQ(eng.evaluate(), 1u);
  EXPECT_FALSE(eng.is_open(0));

  ASSERT_EQ(eng.events().size(), 2u);
  EXPECT_EQ(eng.events()[0].time, 20);
  EXPECT_TRUE(eng.events()[0].open);
  EXPECT_EQ(eng.events()[0].value, 9);
  EXPECT_EQ(eng.events()[1].time, 30);
  EXPECT_FALSE(eng.events()[1].open);
}

TEST(AlertEngine, BreachRunResetsWhenValueRecovers) {
  obs::TimeSeries ts{10};
  std::int64_t v = 0;
  ts.add("depth", [&v] { return v; });
  obs::AlertEngine eng{ts, {above("deep", "depth", 5, 20)}};
  // Breach, dip, breach again: the for-duration clock restarts at the dip.
  v = 9;
  ts.advance(10);
  v = 0;
  ts.advance(20);
  v = 9;
  ts.advance(30);
  eng.evaluate();
  EXPECT_FALSE(eng.is_open(0)) << "dip at t=20 must reset the breach run";
  ts.advance(50);  // breach has now held 30..50 >= 20
  eng.evaluate();
  EXPECT_TRUE(eng.is_open(0));
}

TEST(AlertEngine, BurnWindowAveragesIgnoreSingleEdgeSpikes) {
  obs::TimeSeries ts{10};
  std::int64_t v = 0;
  ts.add("rate", [&v] { return v; });
  // Instantaneous twin vs a 40 ps trailing-average twin of the same rule.
  obs::AlertEngine eng{
      ts, {above("spiky", "rate", 10), above("burn", "rate", 10, 0, 40)}};
  v = 100;          // spike over edges 0 and 10
  ts.advance(10);
  v = 0;
  ts.advance(30);
  eng.evaluate();
  // The instantaneous rule opened on the spike and closed right after it;
  // the burn rule is still open — the trailing average at edge 30 is
  // avg{100,100,0,0} = 50, well above threshold.
  ASSERT_GE(eng.events().size(), 2u);
  EXPECT_EQ(eng.events()[0].rule, 0u);
  EXPECT_TRUE(eng.events()[0].open);
  EXPECT_FALSE(eng.is_open(0));
  EXPECT_TRUE(eng.is_open(1));
  // Once the spike slides out of the 40 ps window the burn rule closes too.
  ts.advance(50);
  eng.evaluate();
  EXPECT_FALSE(eng.is_open(1));
  // Sustained load keeps the burn rule open.
  v = 50;
  ts.advance(200);
  eng.evaluate();
  EXPECT_TRUE(eng.is_open(1));
}

TEST(AlertEngine, UnresolvedInstrumentsAreReportedAndNeverFire) {
  obs::TimeSeries ts{10};
  ts.add("real", [] { return 100; });
  obs::AlertEngine eng{ts, {above("ok", "real", 1), above("bad", "ghost", 1)}};
  ASSERT_EQ(eng.unresolved().size(), 1u);
  EXPECT_EQ(eng.unresolved()[0], 1u);
  ts.advance(100);
  eng.evaluate();
  EXPECT_TRUE(eng.is_open(0));
  EXPECT_FALSE(eng.is_open(1));
  for (const obs::AlertEvent& e : eng.events()) EXPECT_NE(e.rule, 1u);
}

TEST(AlertEngine, DigestIsBitIdenticalAcrossEqualRuns) {
  auto run = [] {
    obs::TimeSeries ts{10};
    std::int64_t v = 0;
    ts.add("v", [&v] { return v; });
    obs::AlertEngine eng{ts, {above("a", "v", 3, 20)}};
    for (int i = 1; i <= 20; ++i) {
      v = (i % 7) - 1;
      ts.advance(10 * i);
      eng.evaluate();
    }
    return eng.digest();
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Fleet trace export.
// ---------------------------------------------------------------------------

TEST(FleetTrace, ExportParsesWithHostileLabelsAndRendersLanes) {
  std::vector<obs::FleetTraceEvent> ev;
  obs::FleetTraceEvent a;
  a.time = sim::microseconds(1);
  a.kind = obs::FleetTraceKind::kArrival;
  a.label = "we\"ird\\na\nme\x01";  // must not break the JSON
  ev.push_back(a);
  obs::FleetTraceEvent p;
  p.time = sim::microseconds(2);
  p.kind = obs::FleetTraceKind::kPlacement;
  p.node = 0;
  p.tenant = 3;
  ev.push_back(p);
  obs::FleetTraceEvent f;
  f.time = sim::microseconds(3);
  f.duration = sim::microseconds(1);
  f.kind = obs::FleetTraceKind::kLinkFlap;
  ev.push_back(f);

  const std::string json = obs::export_fleet_trace(ev, 2);
  std::string err;
  ASSERT_TRUE(obs::json_valid(json, &err)) << err;
  EXPECT_NE(json.find("fleet control"), std::string::npos);
  EXPECT_NE(json.find("node 0"), std::string::npos);
  EXPECT_NE(json.find("node 1"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << "no duration events";
}

TEST(FleetTrace, FlowArrowsCrossNodeLanesPerRootSpan) {
  // One root span born on node 0 that finishes on node 1: the exporter
  // must chain s -> t -> f across the two pid lanes.
  std::vector<obs::FleetTraceEvent> ev;
  const obs::TraceContext ctx{42, 0};
  obs::FleetTraceEvent loss;
  loss.time = 10;
  loss.kind = obs::FleetTraceKind::kNodeLoss;
  loss.node = 0;
  loss.ctx = ctx;
  ev.push_back(loss);
  obs::FleetTraceEvent retry;
  retry.time = 20;
  retry.kind = obs::FleetTraceKind::kReplacementRetry;
  retry.ctx = ctx;
  ev.push_back(retry);
  obs::FleetTraceEvent fin;
  fin.time = 30;
  fin.kind = obs::FleetTraceKind::kJobFinish;
  fin.node = 1;
  fin.tenant = 2;
  fin.ctx = ctx;
  ev.push_back(fin);

  const std::string json = obs::export_fleet_trace(ev, 2);
  std::string err;
  ASSERT_TRUE(obs::json_valid(json, &err)) << err;
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos) << "no flow start";
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos) << "no flow step";
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos) << "no flow finish";
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);

  obs::FleetTraceOptions flat;
  flat.flow_events = false;
  const std::string noflow = obs::export_fleet_trace(ev, 2, flat);
  EXPECT_EQ(noflow.find("\"ph\":\"s\""), std::string::npos);
  ASSERT_TRUE(obs::json_valid(noflow, &err)) << err;
}

// ---------------------------------------------------------------------------
// Fleet controller integration.
// ---------------------------------------------------------------------------

core::SystemConfig node_cfg() {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage64K;
  cfg.hbm_capacity = 16ull << 20;
  cfg.ddr_capacity = 256ull << 20;
  cfg.gpu_driver_baseline = 1ull << 20;
  cfg.event_log = true;
  return cfg;
}

struct Solo {
  sim::Picos end = 0;
  std::uint64_t checksum = 0;
};

const Solo& solo() {
  static const Solo s = [] {
    core::System sys{node_cfg()};
    tenant::Scheduler sched{sys, {}};
    tenant::JobSpec spec;
    spec.name = "hotspot";
    spec.mode = apps::MemMode::kManaged;
    spec.footprint_bytes = 1ull << 20;
    spec.make = [](runtime::Runtime& rt) {
      apps::HotspotConfig h;
      h.rows = 128;
      h.cols = 128;
      h.iterations = 3;
      return apps::hotspot_steps(rt, apps::MemMode::kManaged, h);
    };
    tenant::TenantId id = tenant::kNoTenant;
    (void)sched.submit(std::move(spec), &id);
    sched.run_all();
    return Solo{sys.now(), sched.job(id).report.checksum};
  }();
  return s;
}

std::vector<fleet::JobTemplate> catalog() {
  fleet::JobTemplate t;
  t.name = "hotspot";
  t.mode = apps::MemMode::kManaged;
  t.make = [](runtime::Runtime& rt) {
    apps::HotspotConfig h;
    h.rows = 128;
    h.cols = 128;
    h.iterations = 3;
    return apps::hotspot_steps(rt, apps::MemMode::kManaged, h);
  };
  t.footprint_bytes = 1ull << 20;
  t.est_cost = solo().end;
  t.solo_checksum = solo().checksum;
  return {t};
}

fleet::FleetConfig obs_fleet(std::uint32_t nodes) {
  fleet::FleetConfig f;
  f.nodes = nodes;
  f.spares = 0;
  f.node_config = node_cfg();
  f.scheduler.policy = tenant::Policy::kPriority;
  f.obs.enabled = true;
  f.obs.cadence = solo().end / 8;
  return f;
}

fleet::JobRequest make_req(std::uint64_t id, sim::Picos arrival) {
  fleet::JobRequest r;
  r.id = id;
  r.arrival = arrival;
  r.tmpl = 0;
  r.priority = 0;
  r.deadline = kFar;
  r.replicas = 1;
  return r;
}

std::vector<fleet::JobRequest> stream(std::uint64_t n, sim::Picos gap) {
  std::vector<fleet::JobRequest> out;
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(make_req(i, gap * i));
  return out;
}

TEST(FleetObs, RecorderSamplesNodeAndFleetSeriesDuringRun) {
  fleet::Controller ctl{obs_fleet(2), catalog()};
  ASSERT_EQ(ctl.run(stream(6, solo().end / 2)), Status::kSuccess);
  const obs::TimeSeries* ts = ctl.recorder();
  ASSERT_NE(ts, nullptr);
  EXPECT_GT(ts->size(), 0u);
  for (const char* name :
       {"node0.placed_bytes", "node0.live_jobs", "node0.queue_depth",
        "node0.gpu_used_bytes", "node1.live_jobs", "fleet.pending_jobs",
        "class0.slo_attainment_permille", "fabric.total_bytes"}) {
    EXPECT_NE(ts->find(name), obs::TimeSeries::kNoSeries) << name;
  }
  // Something actually happened on node 0 at some edge.
  const obs::SeriesWindow w =
      ts->window(ts->find("node0.live_jobs"), 0, ts->last_edge());
  EXPECT_GT(w.max, 0);
  // SLO attainment starts at the all-on-time sentinel and stays a permille.
  const obs::SeriesWindow slo =
      ts->window(ts->find("class0.slo_attainment_permille"), 0, ts->last_edge());
  EXPECT_LE(slo.max, 1000);
  EXPECT_GE(slo.min, 0);
  std::string err;
  EXPECT_TRUE(obs::json_valid(ts->to_json(), &err)) << err;
}

TEST(FleetObs, DisabledObsKeepsRecorderAlertsAndTraceEmpty) {
  fleet::FleetConfig f = obs_fleet(2);
  f.obs.enabled = false;
  fleet::Controller ctl{f, catalog()};
  ASSERT_EQ(ctl.run(stream(2, solo().end)), Status::kSuccess);
  EXPECT_EQ(ctl.recorder(), nullptr);
  EXPECT_EQ(ctl.alert_engine(), nullptr);
  EXPECT_TRUE(ctl.trace_events().empty());
  for (const fleet::FleetJob& j : ctl.jobs()) {
    EXPECT_FALSE(j.ctx.traced());
  }
}

TEST(FleetObs, QueueDepthAlertFiresDeterministically) {
  auto run = [](std::uint64_t* opened, std::uint64_t* closed) -> std::uint64_t {
    fleet::FleetConfig f = obs_fleet(1);
    obs::AlertRule r;
    r.name = "node0-backlog";
    r.instrument = "node0.queue_depth";
    r.predicate = obs::AlertPredicate::kAbove;
    r.threshold = 1;
    r.for_duration = 0;
    r.severity = obs::AlertSeverity::kWarning;
    f.obs.alerts = {r};
    fleet::Controller ctl{f, catalog()};
    // Jobs arrive 4x faster than one node can serve them: the queue grows
    // past 1 at the sampled edges, then the drain empties it — the alert
    // must open and close.
    (void)ctl.run(stream(8, solo().end / 4));
    if (ctl.alert_engine() == nullptr) {
      ADD_FAILURE() << "alert engine missing with obs enabled";
      return 0;
    }
    EXPECT_TRUE(ctl.alert_engine()->unresolved().empty());
    *opened = ctl.metrics().counter("ghum_fleet_alerts_opened_total").value();
    *closed = ctl.metrics().counter("ghum_fleet_alerts_closed_total").value();
    return ctl.digest();
  };
  std::uint64_t o1 = 0, c1 = 0, o2 = 0, c2 = 0;
  const std::uint64_t d1 = run(&o1, &c1);
  const std::uint64_t d2 = run(&o2, &c2);
  EXPECT_GE(o1, 1u) << "backlog alert never opened";
  EXPECT_EQ(o1, c1) << "alert left open after the fleet drained";
  EXPECT_EQ(o1, o2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(d1, d2) << "alert firings must be bit-for-bit reproducible";
}

TEST(FleetObs, LossReplayCarriesRootSpanAcrossNodes) {
  fleet::FleetConfig f = obs_fleet(2);
  f.faults.node_loss = {{.time = solo().end / 2, .node = 0}};
  f.replace_max_retries = 6;
  f.replace_backoff = solo().end / 4;
  fleet::Controller ctl{f, catalog()};
  ASSERT_EQ(ctl.run(stream(4, 0)), Status::kSuccess);

  // At least one job died with node 0 and finished elsewhere, carrying the
  // fault's root span: origin node != completion node.
  std::size_t crossed = 0;
  for (const fleet::FleetJob& j : ctl.jobs()) {
    if (j.state != fleet::FleetJobState::kFinished) continue;
    EXPECT_TRUE(j.ctx.traced());
    ASSERT_NE(j.completion_node, fleet::kNoNode);
    if (j.replayed_after_loss) {
      EXPECT_EQ(j.ctx.origin_node, 0u) << "replayed span must root at the fault";
      EXPECT_NE(j.completion_node, j.ctx.origin_node);
      ++crossed;
    }
  }
  EXPECT_GT(crossed, 0u) << "no span crossed a node boundary";

  // The trace renders both node lanes, the loss, and flow arrows.
  const std::string json = ctl.chrome_trace();
  std::string err;
  ASSERT_TRUE(obs::json_valid(json, &err)) << err;
  EXPECT_NE(json.find("node loss"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  bool saw_loss = false, saw_retry = false, saw_transfer = false;
  for (const obs::FleetTraceEvent& e : ctl.trace_events()) {
    saw_loss |= e.kind == obs::FleetTraceKind::kNodeLoss;
    saw_retry |= e.kind == obs::FleetTraceKind::kReplacementRetry;
  }
  ASSERT_NE(ctl.fabric(), nullptr);
  for (const net::TransferRecord& r : ctl.fabric()->log()) {
    saw_transfer |= r.ctx.traced();
  }
  EXPECT_TRUE(saw_loss);
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_transfer) << "no fabric transfer carried a trace context";
}

/// Label-blind per-name counter sums over one registry.
std::map<std::string, std::uint64_t> counter_sums(
    const obs::MetricsRegistry& reg) {
  std::map<std::string, std::uint64_t> out;
  reg.for_each([&](const obs::MetricsRegistry::InstrumentView& v) {
    if (v.counter != nullptr) out[std::string{v.name}] += v.counter->value();
  });
  return out;
}

TEST(FleetObs, FederatedRegistryEqualsPerNodeSums) {
  fleet::Controller ctl{obs_fleet(2), catalog()};
  ASSERT_EQ(ctl.run(stream(6, solo().end / 2)), Status::kSuccess);

  obs::MetricsRegistry fed = ctl.federated_metrics();
  // Every federated instrument carries the node label.
  fed.for_each([&](const obs::MetricsRegistry::InstrumentView& v) {
    bool has_node = false;
    for (const obs::Label& l : *v.labels) has_node |= l.key == "node";
    EXPECT_TRUE(has_node) << v.name;
  });

  // Ground truth: the fleet registry plus every node's machine registry.
  std::map<std::string, std::uint64_t> expect = counter_sums(ctl.metrics());
  for (fleet::NodeId id = 0; id < 2; ++id) {
    const obs::MetricsRegistry* nm = ctl.node_metrics(id);
    ASSERT_NE(nm, nullptr);
    for (const auto& [name, v] : counter_sums(*nm)) expect[name] += v;
  }
  const std::map<std::string, std::uint64_t> got = counter_sums(fed);
  EXPECT_EQ(got, expect) << "federated counters diverge from per-node sums";
  // And the machines actually counted something (nonzero equality).
  ASSERT_TRUE(expect.count("ghum_faults_total"));
  EXPECT_GT(expect.at("ghum_faults_total"), 0u);

  // The federated exposition parses and mentions every source label.
  const std::string prom = ctl.metrics_prometheus();
  EXPECT_NE(prom.find("node=\"fleet\""), std::string::npos);
  EXPECT_NE(prom.find("node=\"0\""), std::string::npos);
  EXPECT_NE(prom.find("node=\"1\""), std::string::npos);
  const std::string json = ctl.metrics_json();
  std::string err;
  EXPECT_TRUE(obs::json_valid(json, &err)) << err;
}

TEST(FleetObs, RegistryMergePreservesCountsGaugesAndHistograms) {
  obs::MetricsRegistry a;
  a.counter("x_total").inc(3);
  a.gauge("g_bytes").set(10);
  a.histogram("h_bytes").observe(4);
  a.histogram("h_bytes").observe(1024);
  obs::MetricsRegistry b;
  b.counter("x_total").inc(5);
  b.gauge("g_bytes").set(-4);
  b.histogram("h_bytes").observe(0);

  obs::MetricsRegistry fed;
  fed.merge_from(a, {{"node", "0"}});
  fed.merge_from(b, {{"node", "1"}});
  // Distinct node labels keep the sources separate...
  EXPECT_EQ(fed.counter("x_total", {{"node", "0"}}).value(), 3u);
  EXPECT_EQ(fed.counter("x_total", {{"node", "1"}}).value(), 5u);
  // ...while merging both under one label accumulates exactly.
  obs::MetricsRegistry sum;
  sum.merge_from(a, {{"node", "all"}});
  sum.merge_from(b, {{"node", "all"}});
  EXPECT_EQ(sum.counter("x_total", {{"node", "all"}}).value(), 8u);
  EXPECT_EQ(sum.gauge("g_bytes", {{"node", "all"}}).value(), 6);
  const obs::Histogram& h = sum.histogram("h_bytes", {{"node", "all"}});
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1028u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
}

}  // namespace
}  // namespace ghum
