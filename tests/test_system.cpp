#include <gtest/gtest.h>

#include "core/system.hpp"
#include "profile/tracer.hpp"

namespace ghum {
namespace {

core::SystemConfig sys_config(std::uint64_t page = pagetable::kSystemPage64K) {
  core::SystemConfig cfg;
  cfg.system_page_size = page;
  cfg.hbm_capacity = 8ull << 20;
  cfg.ddr_capacity = 64ull << 20;
  cfg.gpu_driver_baseline = 1ull << 20;
  cfg.event_log = true;
  return cfg;
}

TEST(System, RejectsUnsupportedPageSize) {
  core::SystemConfig cfg = sys_config();
  cfg.system_page_size = 16 << 10;
  EXPECT_THROW(core::System{cfg}, std::invalid_argument);
}

TEST(System, ContextInitChargedOnceAtFirstCudaCall) {
  core::System sys{sys_config()};
  EXPECT_FALSE(sys.gpu_context_initialized());
  // malloc() is NOT a CUDA call: no context init.
  (void)sys.sys_malloc(1 << 20);
  EXPECT_FALSE(sys.gpu_context_initialized());
  const sim::Picos t0 = sys.now();
  (void)sys.managed_malloc(1 << 20);
  EXPECT_TRUE(sys.gpu_context_initialized());
  EXPECT_GE(sys.now() - t0, sys.config().costs.context_init);
  // Second CUDA call: no second charge.
  const sim::Picos t1 = sys.now();
  (void)sys.gpu_malloc(1 << 20);
  EXPECT_LT(sys.now() - t1, sys.config().costs.context_init);
}

TEST(System, SystemVersionPaysContextInitInFirstKernel) {
  // Paper Section 4: without CUDA allocations, the first kernel launch
  // implicitly initializes the GPU context.
  core::System sys{sys_config()};
  (void)sys.sys_malloc(1 << 20);
  sys.kernel_begin("k");
  const auto& rec = sys.kernel_end();
  EXPECT_GE(rec.duration, sys.config().costs.context_init);
}

TEST(System, GpuMallocFailsWithBadAllocWhenFull) {
  core::System sys{sys_config()};
  (void)sys.gpu_malloc(6ull << 20);  // 7 MiB free after baseline
  EXPECT_THROW((void)sys.gpu_malloc(4ull << 20), std::bad_alloc);
  // Failed allocation must not leak frames.
  EXPECT_GE(sys.gpu_free_bytes(), 1ull << 20);
}

TEST(System, ResolveOutsideAnyAllocationThrows) {
  core::System sys{sys_config()};
  EXPECT_THROW((void)sys.resolve(0xdeadbeef, mem::Node::kCpu), std::out_of_range);
}

TEST(System, CpuAccessToGpuOnlyThrows) {
  core::System sys{sys_config()};
  core::Buffer b = sys.gpu_malloc(1 << 20);
  EXPECT_THROW((void)sys.resolve(b.va, mem::Node::kCpu), std::logic_error);
}

TEST(System, FirstTouchPlacementFollowsOrigin) {
  core::System sys{sys_config()};
  core::Buffer b = sys.sys_malloc(4 << 20);
  const auto cpu_view = sys.resolve(b.va, mem::Node::kCpu);
  EXPECT_EQ(cpu_view.node, mem::Node::kCpu);
  sys.kernel_begin("k");
  const auto gpu_view = sys.resolve(b.va + (1 << 20), mem::Node::kGpu);
  EXPECT_EQ(gpu_view.node, mem::Node::kGpu);
  (void)sys.kernel_end();
}

TEST(System, SystemPageViewBoundsAreSystemPages) {
  core::System sys{sys_config(pagetable::kSystemPage4K)};
  core::Buffer b = sys.sys_malloc(1 << 20);
  const auto v = sys.resolve(b.va + 5000, mem::Node::kCpu);
  EXPECT_EQ(v.page_base, b.va + 4096);
  EXPECT_EQ(v.page_end, b.va + 8192);
}

TEST(System, ManagedGpuViewSpansWholeBlock) {
  core::System sys{sys_config()};
  core::Buffer b = sys.managed_malloc(4 << 20);
  sys.kernel_begin("k");
  const auto v = sys.resolve(b.va + 100, mem::Node::kGpu);
  (void)sys.kernel_end();
  EXPECT_EQ(v.node, mem::Node::kGpu);
  EXPECT_EQ(v.page_base, b.va);
  EXPECT_EQ(v.page_end, b.va + (2 << 20));
}

TEST(System, CommitChargesRemoteTrafficOverC2C) {
  core::System sys{sys_config()};
  core::Buffer b = sys.sys_malloc(1 << 20);
  // CPU first touch -> CPU-resident.
  const auto cpu_view = sys.resolve(b.va, mem::Node::kCpu);
  sys.commit(cpu_view, 64 << 10, 0, 1024, 16384);
  sys.kernel_begin("k");
  const auto gpu_view = sys.resolve(b.va, mem::Node::kGpu);
  EXPECT_EQ(gpu_view.node, mem::Node::kCpu);  // stays CPU-resident
  const std::uint64_t h2d0 =
      sys.machine().c2c().bytes_moved(interconnect::Direction::kCpuToGpu);
  sys.commit(gpu_view, 64 << 10, 0, 512, 16384);
  const std::uint64_t h2d1 =
      sys.machine().c2c().bytes_moved(interconnect::Direction::kCpuToGpu);
  const auto& rec = sys.kernel_end();
  EXPECT_EQ(h2d1 - h2d0, 512u * 128u);  // GPU cacheline granularity
  EXPECT_EQ(rec.traffic.c2c_read_bytes, 512u * 128u);
  EXPECT_EQ(rec.traffic.l1l2_bytes, 512u * 128u);
}

TEST(System, CommitChargesLocalHbmForGpuResidentData) {
  core::System sys{sys_config()};
  core::Buffer b = sys.gpu_malloc(1 << 20);
  sys.kernel_begin("k");
  const auto v = sys.resolve(b.va, mem::Node::kGpu);
  sys.commit(v, 1 << 20, 0, (1 << 20) / 128, 1 << 18);
  const auto& rec = sys.kernel_end();
  EXPECT_EQ(rec.traffic.hbm_read_bytes, 1u << 20);
  EXPECT_EQ(rec.traffic.c2c_read_bytes, 0u);
}

TEST(System, SparseAccessIsLineAmplified) {
  core::System sys{sys_config()};
  core::Buffer b = sys.sys_malloc(1 << 20);
  sys.host_phase_begin("sparse");
  const auto v = sys.resolve(b.va, mem::Node::kCpu);
  // 100 separate 4-byte reads on distinct lines: charged 100 * 64 B of
  // DDR traffic (read amplification for irregular patterns).
  sys.commit(v, 400, 0, 100, 100);
  const auto& rec = sys.host_phase_end();
  EXPECT_EQ(rec.traffic.ddr_read_bytes, 100u * 64u);
}

TEST(System, KernelComputeFloorExtendsShortKernels) {
  core::System sys{sys_config()};
  sys.ensure_gpu_context();
  sys.kernel_begin("compute_bound");
  const auto& rec = sys.kernel_end(/*flop_work=*/30e9);  // 1 ms at 30 TFLOPS
  EXPECT_NEAR(sim::to_seconds(rec.duration), 1e-3,
              1e-4 + sim::to_seconds(sys.config().costs.kernel_launch));
}

TEST(System, MemcpyMovesRealBytesAndChargesLink) {
  core::System sys{sys_config()};
  core::Buffer host = sys.sys_malloc(64 << 10);
  core::Buffer dev = sys.gpu_malloc(64 << 10);
  auto* p = reinterpret_cast<std::uint32_t*>(host.host);
  for (int i = 0; i < 1024; ++i) p[i] = 0xabcd0000u + static_cast<std::uint32_t>(i);
  const sim::Picos t0 = sys.now();
  sys.memcpy_buffers(dev, 0, host, 0, 64 << 10);
  EXPECT_GT(sys.now(), t0);
  EXPECT_EQ(reinterpret_cast<std::uint32_t*>(dev.host)[1023], 0xabcd0000u + 1023);
  EXPECT_GE(sys.machine().c2c().bytes_moved(interconnect::Direction::kCpuToGpu),
            std::uint64_t{64} << 10);
}

TEST(System, MemcpyOutOfRangeThrows) {
  core::System sys{sys_config()};
  core::Buffer a = sys.sys_malloc(1 << 10);
  core::Buffer b = sys.sys_malloc(1 << 10);
  EXPECT_THROW(sys.memcpy_buffers(a, 512, b, 0, 1 << 10), std::out_of_range);
}

TEST(System, FreeBufferReleasesEverything) {
  core::System sys{sys_config()};
  core::Buffer b = sys.managed_malloc(4 << 20);
  sys.kernel_begin("k");
  const auto v = sys.resolve(b.va, mem::Node::kGpu);
  (void)v;
  (void)sys.kernel_end();
  const std::uint64_t used_before = sys.machine().gpu_used_bytes();
  EXPECT_GT(used_before, sys.config().gpu_driver_baseline);
  sys.free_buffer(b);
  EXPECT_EQ(sys.machine().gpu_used_bytes(), sys.config().gpu_driver_baseline);
  EXPECT_FALSE(b.valid());
}

TEST(System, PhasesCannotNest) {
  core::System sys{sys_config()};
  sys.ensure_gpu_context();
  sys.kernel_begin("a");
  EXPECT_THROW(sys.kernel_begin("b"), std::logic_error);
  (void)sys.kernel_end();
  EXPECT_THROW((void)sys.kernel_end(), std::logic_error);
}

TEST(System, PinnedMemoryIsGpuAccessibleWithoutMigration) {
  core::System sys{sys_config()};
  core::Buffer pin = sys.pinned_malloc(128 << 10);
  sys.kernel_begin("k");
  const auto v = sys.resolve(pin.va, mem::Node::kGpu);
  sys.commit(v, 4096, 0, 32, 1024);
  const auto& rec = sys.kernel_end();
  EXPECT_EQ(v.node, mem::Node::kCpu);
  EXPECT_GT(rec.traffic.c2c_read_bytes, 0u);
  // Still resident on the CPU, nothing migrated.
  EXPECT_EQ(sys.machine().address_space().find(pin.va)->resident_cpu_bytes,
            std::uint64_t{128} << 10);
}

TEST(System, EpochBumpsOnResidencyChanges) {
  core::System sys{sys_config()};
  core::Buffer b = sys.sys_malloc(1 << 20);
  const std::uint64_t e0 = sys.epoch();
  (void)sys.resolve(b.va, mem::Node::kCpu);  // first touch maps a page
  EXPECT_GT(sys.epoch(), e0);
}

TEST(System, PrefetchSystemBufferMigratesPages) {
  core::System sys{sys_config()};
  core::Buffer b = sys.sys_malloc(512 << 10);
  for (std::uint64_t off = 0; off < b.bytes; off += 64 << 10) {
    (void)sys.resolve(b.va + off, mem::Node::kCpu);
  }
  sys.prefetch(b, 0, b.bytes, mem::Node::kGpu);
  EXPECT_EQ(sys.machine().address_space().find(b.va)->resident_gpu_bytes,
            std::uint64_t{512} << 10);
}

TEST(System, SummaryListsCountersAndUsage) {
  core::System sys{sys_config()};
  core::Buffer b = sys.sys_malloc(1 << 20);
  (void)sys.resolve(b.va, mem::Node::kCpu);
  const std::string s = sys.summary();
  EXPECT_NE(s.find("simulated time"), std::string::npos);
  EXPECT_NE(s.find("os.fault.cpu_first_touch"), std::string::npos);
  EXPECT_NE(s.find("cpu rss"), std::string::npos);
}

TEST(System, AutoNumaHintFaultsChargedOncePerScanGeneration) {
  core::SystemConfig cfg = sys_config();
  cfg.autonuma_balancing = true;
  cfg.autonuma_scan_period = sim::milliseconds(1);
  core::System sys{cfg};
  core::Buffer b = sys.sys_malloc(1 << 20);
  (void)sys.resolve(b.va, mem::Node::kCpu);  // first touch
  const std::uint64_t f0 = sys.stats().get("os.numa_hint_faults");
  EXPECT_GE(f0, 1u);
  // Same scan window: no second hint fault for the same page.
  (void)sys.resolve(b.va + 64, mem::Node::kCpu);
  EXPECT_EQ(sys.stats().get("os.numa_hint_faults"), f0);
  // Next scan window: the scanner has unmapped it again.
  sys.advance(sim::milliseconds(2));
  (void)sys.resolve(b.va, mem::Node::kCpu);
  EXPECT_EQ(sys.stats().get("os.numa_hint_faults"), f0 + 1);
}

TEST(System, HintFaultedPageSplitsBatchedRunBitIdentically) {
  // A hint fault bumps one page's AutoNUMA generation, which must split
  // the extent it lived in — the batched run may not coast over a page the
  // legacy path would hint-fault on. Both paths must stay bit-identical.
  auto run = [](bool batched) {
    core::SystemConfig cfg = sys_config();
    cfg.autonuma_balancing = true;
    cfg.autonuma_scan_period = sim::milliseconds(1);
    cfg.batched_access = batched;
    core::System sys{cfg};
    core::Buffer b = sys.sys_malloc(1 << 20);
    const std::uint64_t page = cfg.system_page_size;
    for (std::uint64_t off = 0; off < b.bytes; off += page) {
      (void)sys.resolve(b.va + off, mem::Node::kCpu);
    }
    const auto& pt = sys.machine().system_pt();
    EXPECT_EQ(pt.run_count(), 1u);  // uniform generation => one extent
    // Next scan window: hint-fault only the middle page.
    sys.advance(sim::milliseconds(2));
    (void)sys.resolve(b.va + 7 * page, mem::Node::kCpu);
    EXPECT_EQ(pt.run_count(), 3u);
    // The batched run from the base stops at the hint-faulted page even
    // though node and permissions match across the whole allocation.
    EXPECT_EQ(pt.resident_run_end(b.va, mem::Node::kCpu, b.va + b.bytes, 4096),
              b.va + 7 * page);
    // Touching the rest of the window catches the generations up and the
    // extent heals.
    for (std::uint64_t off = 0; off < b.bytes; off += page) {
      (void)sys.resolve(b.va + off, mem::Node::kCpu);
    }
    EXPECT_EQ(pt.run_count(), 1u);
    return std::pair{sys.now(), sys.events().digest(sys.now())};
  };
  const auto legacy = run(false);
  const auto fast = run(true);
  EXPECT_EQ(legacy.first, fast.first);
  EXPECT_EQ(legacy.second, fast.second);
}

TEST(System, AutoNumaDisabledByDefaultLikeThePaperTestbed) {
  core::System sys{sys_config()};
  core::Buffer b = sys.sys_malloc(1 << 20);
  (void)sys.resolve(b.va, mem::Node::kCpu);
  sys.advance(sim::milliseconds(5));
  (void)sys.resolve(b.va, mem::Node::kCpu);
  EXPECT_EQ(sys.stats().get("os.numa_hint_faults"), 0u);
}

TEST(System, AutoNumaGpuHintFaultIsHeavierThanCpuOne) {
  core::SystemConfig cfg = sys_config();
  cfg.autonuma_balancing = true;
  core::System sys{cfg};
  core::Buffer b = sys.sys_malloc(4 << 20);
  (void)sys.resolve(b.va, mem::Node::kCpu);  // CPU first touch + hint
  sys.advance(sim::milliseconds(2));
  const sim::Picos t0 = sys.now();
  (void)sys.resolve(b.va, mem::Node::kCpu);  // CPU hint fault
  const sim::Picos cpu_cost = sys.now() - t0;
  sys.advance(sim::milliseconds(2));
  sys.kernel_begin("k");
  const sim::Picos t1 = sys.now();
  (void)sys.resolve(b.va, mem::Node::kGpu);  // GPU hint fault (replayable)
  const sim::Picos gpu_cost = sys.now() - t1;
  (void)sys.kernel_end();
  EXPECT_GT(gpu_cost, cpu_cost);
}

TEST(System, WorkloadRecordsMigrationTrafficSeparately) {
  core::System sys{sys_config()};
  core::Buffer b = sys.managed_malloc(2 << 20);
  // CPU-populate, then fault from GPU inside a kernel: the migration bytes
  // must show up as migration traffic, not direct-access traffic.
  for (std::uint64_t off = 0; off < b.bytes; off += 64 << 10) {
    (void)sys.resolve(b.va + off, mem::Node::kCpu);
  }
  sys.kernel_begin("k");
  (void)sys.resolve(b.va, mem::Node::kGpu);
  const auto& rec = sys.kernel_end();
  EXPECT_EQ(rec.traffic.migration_h2d_bytes, 2u << 20);
  EXPECT_EQ(rec.traffic.c2c_read_bytes, 0u);
}

}  // namespace
}  // namespace ghum
