#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "apps/hotspot.hpp"
#include "fleet/arrival.hpp"
#include "fleet/controller.hpp"
#include "tenant/scheduler.hpp"

/// Fleet-controller tests (DESIGN.md Section 11): deterministic arrivals,
/// placement and anti-affinity, node-loss replay with bounded retries,
/// degrade-and-evacuate live migration, admission control (shed + deadline
/// expiry), SLO accounting, and the bit-for-bit digest contract.

namespace ghum {
namespace {

constexpr sim::Picos kFar = sim::milliseconds(10'000);

core::SystemConfig node_cfg() {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage64K;
  cfg.hbm_capacity = 16ull << 20;
  cfg.ddr_capacity = 256ull << 20;
  cfg.gpu_driver_baseline = 1ull << 20;
  cfg.event_log = true;
  return cfg;
}

apps::HotspotConfig small_hotspot() {
  apps::HotspotConfig h;
  h.rows = 128;
  h.cols = 128;
  h.iterations = 3;
  return h;
}

struct Solo {
  sim::Picos end = 0;
  std::uint64_t checksum = 0;
};

/// Uninterrupted single-node, single-tenant reference run of the one job
/// template every fleet test uses (measured once, cached).
const Solo& solo() {
  static const Solo s = [] {
    core::System sys{node_cfg()};
    tenant::Scheduler sched{sys, {}};
    tenant::JobSpec spec;
    spec.name = "hotspot";
    spec.mode = apps::MemMode::kManaged;
    spec.footprint_bytes = 1ull << 20;
    spec.make = [](runtime::Runtime& rt) {
      return apps::hotspot_steps(rt, apps::MemMode::kManaged, small_hotspot());
    };
    tenant::TenantId id = tenant::kNoTenant;
    (void)sched.submit(std::move(spec), &id);
    sched.run_all();
    return Solo{sys.now(), sched.job(id).report.checksum};
  }();
  return s;
}

std::vector<fleet::JobTemplate> catalog() {
  fleet::JobTemplate t;
  t.name = "hotspot";
  t.mode = apps::MemMode::kManaged;
  t.make = [](runtime::Runtime& rt) {
    return apps::hotspot_steps(rt, apps::MemMode::kManaged, small_hotspot());
  };
  t.footprint_bytes = 1ull << 20;
  t.est_cost = solo().end;
  t.solo_checksum = solo().checksum;
  return {t};
}

fleet::FleetConfig small_fleet(std::uint32_t nodes, std::uint32_t spares = 0) {
  fleet::FleetConfig f;
  f.nodes = nodes;
  f.spares = spares;
  f.node_config = node_cfg();
  f.scheduler.policy = tenant::Policy::kPriority;
  return f;
}

fleet::JobRequest make_req(std::uint64_t id, sim::Picos arrival,
                           std::uint32_t priority = 0,
                           sim::Picos deadline = kFar,
                           std::uint32_t replicas = 1) {
  fleet::JobRequest r;
  r.id = id;
  r.arrival = arrival;
  r.tmpl = 0;
  r.priority = priority;
  r.deadline = deadline;
  r.replicas = replicas;
  return r;
}

// --- arrival process ---------------------------------------------------------

TEST(FleetArrival, SameConfigYieldsBitIdenticalStream) {
  fleet::ArrivalConfig a;
  a.seed = 7;
  a.count = 64;
  a.priority_classes = 3;
  a.class_weights = {1, 2, 3};
  a.deadline_floor = sim::microseconds(50);
  a.top_replicas = 2;
  const auto s1 = fleet::generate_arrivals(a, catalog());
  const auto s2 = fleet::generate_arrivals(a, catalog());
  ASSERT_EQ(s1.size(), 64u);
  ASSERT_EQ(s2.size(), 64u);
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].id, i);
    EXPECT_EQ(s1[i].arrival, s2[i].arrival);
    EXPECT_EQ(s1[i].tmpl, s2[i].tmpl);
    EXPECT_EQ(s1[i].priority, s2[i].priority);
    EXPECT_EQ(s1[i].deadline, s2[i].deadline);
    EXPECT_EQ(s1[i].replicas, s2[i].replicas);
    // Sorted by arrival, deadlines respect the floor, replicas only for
    // the top class.
    if (i > 0) {
      EXPECT_GE(s1[i].arrival, s1[i - 1].arrival);
    }
    EXPECT_LT(s1[i].priority, 3u);
    EXPECT_GE(s1[i].deadline, s1[i].arrival + a.deadline_floor);
    EXPECT_EQ(s1[i].replicas, s1[i].priority == 0 ? 2u : 1u);
  }
}

TEST(FleetArrival, RejectsEmptyTemplatesAndZeroWeights) {
  fleet::ArrivalConfig a;
  a.count = 4;
  EXPECT_THROW((void)fleet::generate_arrivals(a, {}), std::invalid_argument);
  a.priority_classes = 2;
  a.class_weights = {0, 0};
  EXPECT_THROW((void)fleet::generate_arrivals(a, catalog()),
               std::invalid_argument);
}

// --- controller construction and error surface -------------------------------

TEST(FleetController, ConstructorRejectsMalformedConfigs) {
  auto expect_invalid = [](auto&& build) {
    try {
      build();
      FAIL() << "malformed fleet config must throw";
    } catch (const StatusError& e) {
      EXPECT_EQ(e.status(), Status::kErrorInvalidValue);
    }
  };
  expect_invalid([] { fleet::Controller ctl{small_fleet(2), {}}; });
  expect_invalid([] { fleet::Controller ctl{small_fleet(0), catalog()}; });
  expect_invalid([] {
    auto f = small_fleet(2);
    f.faults.node_loss = {{.time = 0, .node = 5}};
    fleet::Controller ctl{f, catalog()};
  });
  expect_invalid([] {
    auto f = small_fleet(2);
    f.faults.node_degrade = {{.time = 0, .node = 0, .slow_factor = 0}};
    fleet::Controller ctl{f, catalog()};
  });
}

TEST(FleetController, RunIsOneShotAndErrorsAreStickyUntilRead) {
  fleet::Controller ctl{small_fleet(1), catalog()};
  // A request naming an unknown template is rejected and recorded.
  fleet::Controller bad{small_fleet(1), catalog()};
  auto alien = make_req(0, 0);
  alien.tmpl = 9;
  EXPECT_EQ(bad.run({alien}), Status::kErrorInvalidValue);
  EXPECT_EQ(bad.peek_last_error(), Status::kErrorInvalidValue);

  EXPECT_EQ(ctl.run({make_req(0, 0)}), Status::kSuccess);
  EXPECT_EQ(ctl.peek_last_error(), Status::kSuccess);
  // Second run: one-shot. get_last_error reads clear (sticky until read).
  EXPECT_EQ(ctl.run({make_req(1, 0)}), Status::kErrorInvalidValue);
  EXPECT_EQ(ctl.peek_last_error(), Status::kErrorInvalidValue);
  EXPECT_EQ(ctl.get_last_error(), Status::kErrorInvalidValue);
  EXPECT_EQ(ctl.get_last_error(), Status::kSuccess);
}

// --- placement and SLO accounting --------------------------------------------

TEST(FleetController, ServesRequestsMatchingSoloResults) {
  fleet::Controller ctl{small_fleet(2), catalog()};
  const std::vector<fleet::JobRequest> reqs = {
      make_req(0, 0), make_req(1, 0), make_req(2, 0), make_req(3, 0)};
  ASSERT_EQ(ctl.run(reqs), Status::kSuccess);

  for (const fleet::FleetJob& j : ctl.jobs()) {
    EXPECT_EQ(j.state, fleet::FleetJobState::kFinished);
    EXPECT_EQ(j.checksum, solo().checksum);
    EXPECT_FALSE(j.slo_violation);
    EXPECT_GE(j.latency, 0);
  }
  fleet::SloSummary s = ctl.slo_summary(0);
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.finished, 4u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.violations, 0u);
  EXPECT_GT(s.p99, 0);
  EXPECT_LE(s.p50, s.p99);
  EXPECT_LE(s.p95, s.p99);

  const auto status = ctl.node_status();
  ASSERT_EQ(status.size(), 2u);
  for (const fleet::NodeStatus& n : status) {
    EXPECT_EQ(n.state, fleet::NodeState::kAlive);
    EXPECT_EQ(n.live_jobs, 0u);
    EXPECT_GT(n.local_now, 0);
  }
  EXPECT_EQ(ctl.metrics().counter("ghum_fleet_finished_total").value(), 4u);
  EXPECT_EQ(ctl.metrics().counter("ghum_fleet_node_losses_total").value(), 0u);
}

TEST(FleetController, IdenticalRunsProduceIdenticalDigests) {
  auto fleet_cfg = [] {
    auto f = small_fleet(2, 1);
    f.faults.node_loss = {{.time = solo().end, .node = 1}};
    f.faults.node_degrade = {
        {.time = 2 * solo().end, .node = 0, .slow_factor = 3}};
    return f;
  };
  fleet::ArrivalConfig a;
  a.count = 8;
  a.mean_interarrival = solo().end / 2;
  a.priority_classes = 2;
  a.deadline_floor = kFar;
  const auto reqs = fleet::generate_arrivals(a, catalog());

  fleet::Controller c1{fleet_cfg(), catalog()};
  fleet::Controller c2{fleet_cfg(), catalog()};
  ASSERT_EQ(c1.run(reqs), Status::kSuccess);
  ASSERT_EQ(c2.run(reqs), Status::kSuccess);
  EXPECT_EQ(c1.digest(), c2.digest());

  // A different stream lands on a different fingerprint.
  fleet::Controller c3{fleet_cfg(), catalog()};
  a.seed ^= 0xbeef;
  ASSERT_EQ(c3.run(fleet::generate_arrivals(a, catalog())), Status::kSuccess);
  EXPECT_NE(c1.digest(), c3.digest());
}

// --- fault domain ------------------------------------------------------------

TEST(FleetFault, NodeLossReplaysVictimsOnSurvivors) {
  auto f = small_fleet(2);
  f.faults.node_loss = {{.time = solo().end / 2, .node = 1}};
  fleet::Controller ctl{f, catalog()};
  ASSERT_EQ(ctl.run({make_req(0, 0), make_req(1, 0)}), Status::kSuccess);

  std::uint32_t replayed = 0;
  for (const fleet::FleetJob& j : ctl.jobs()) {
    EXPECT_EQ(j.state, fleet::FleetJobState::kFinished);
    EXPECT_EQ(j.checksum, solo().checksum);
    if (j.replayed_after_loss) {
      ++replayed;
      EXPECT_EQ(j.loss_attempts, 1u);
      EXPECT_EQ(j.placements, 2u);  // original + re-placement
    }
  }
  EXPECT_EQ(replayed, 1u);
  EXPECT_EQ(ctl.metrics().counter("ghum_fleet_node_losses_total").value(), 1u);
  EXPECT_GE(ctl.metrics().counter("ghum_fleet_replacement_retries_total").value(),
            1u);
  const auto status = ctl.node_status();
  EXPECT_EQ(status[1].state, fleet::NodeState::kDead);
  EXPECT_EQ(status[1].live_jobs, 0u);
  EXPECT_EQ(status[0].state, fleet::NodeState::kAlive);
}

TEST(FleetFault, LosingTheOnlyNodeExhaustsRetriesIntoNodeLost) {
  auto f = small_fleet(1);
  f.faults.node_loss = {{.time = solo().end / 2, .node = 0}};
  f.replace_max_retries = 2;
  f.replace_backoff = sim::microseconds(10);
  fleet::Controller ctl{f, catalog()};
  // Job 1 arrives after the fleet is gone: it is never replayed, so its
  // terminal cause is the deadline, not the loss.
  ASSERT_EQ(ctl.run({make_req(0, 0), make_req(1, 2 * solo().end)}),
            Status::kSuccess);

  const auto& jobs = ctl.jobs();
  EXPECT_EQ(jobs[0].state, fleet::FleetJobState::kFailed);
  EXPECT_EQ(jobs[0].status, Status::kErrorNodeLost);
  EXPECT_EQ(jobs[0].loss_attempts, 2u);
  EXPECT_EQ(jobs[1].state, fleet::FleetJobState::kFailed);
  EXPECT_EQ(jobs[1].status, Status::kErrorDeadlineExceeded);
  // Both failures were recorded on the sticky error surface.
  EXPECT_NE(ctl.get_last_error(), Status::kSuccess);
}

TEST(FleetFault, DegradeEvacuatesToSpareMidFlight) {
  auto f = small_fleet(1, 1);
  f.faults.node_degrade = {
      {.time = solo().end / 2, .node = 0, .slow_factor = 4}};
  fleet::Controller ctl{f, catalog()};
  ASSERT_EQ(ctl.run({make_req(0, 0)}), Status::kSuccess);

  const fleet::FleetJob& j = ctl.jobs()[0];
  EXPECT_EQ(j.state, fleet::FleetJobState::kFinished);
  EXPECT_EQ(j.checksum, solo().checksum);
  EXPECT_TRUE(j.migrated);
  EXPECT_FALSE(j.replayed_after_loss);

  const auto status = ctl.node_status();
  EXPECT_EQ(status[0].state, fleet::NodeState::kRetired);
  EXPECT_EQ(status[1].state, fleet::NodeState::kAlive);
  EXPECT_EQ(status[1].slow_factor, 1u);
  // The job finished on the spare, later than solo (transfer cost charged).
  EXPECT_GT(status[1].local_now, solo().end);
  EXPECT_EQ(ctl.metrics().counter("ghum_fleet_evacuations_total").value(), 1u);
  EXPECT_EQ(ctl.metrics().counter("ghum_fleet_migrated_jobs_total").value(), 1u);
  EXPECT_GT(ctl.metrics().counter("ghum_fleet_migrated_bytes_total").value(),
            0u);
}

TEST(FleetFault, DegradeWithoutSpareKeepsRunningSlow) {
  auto f = small_fleet(1, 0);
  f.faults.node_degrade = {
      {.time = solo().end / 2, .node = 0, .slow_factor = 4}};
  fleet::Controller ctl{f, catalog()};
  ASSERT_EQ(ctl.run({make_req(0, 0)}), Status::kSuccess);

  const fleet::FleetJob& j = ctl.jobs()[0];
  EXPECT_EQ(j.state, fleet::FleetJobState::kFinished);
  EXPECT_EQ(j.checksum, solo().checksum);
  EXPECT_FALSE(j.migrated);

  const auto status = ctl.node_status();
  EXPECT_EQ(status[0].state, fleet::NodeState::kDegraded);
  EXPECT_EQ(status[0].slow_factor, 4u);
  // Slow-factor dilation: the back half of the run took 4x as long.
  EXPECT_GT(status[0].local_now, solo().end);
  EXPECT_EQ(ctl.metrics().counter("ghum_fleet_evacuations_total").value(), 0u);
}

TEST(FleetFault, AntiAffinityReplicaSurvivesNodeLossWithoutReplay) {
  auto f = small_fleet(2);
  f.faults.node_loss = {{.time = solo().end / 2, .node = 1}};
  fleet::Controller ctl{f, catalog()};
  ASSERT_EQ(ctl.run({make_req(0, 0, 0, kFar, /*replicas=*/2)}),
            Status::kSuccess);

  const fleet::FleetJob& j = ctl.jobs()[0];
  EXPECT_EQ(j.placements, 2u);  // one replica per node (anti-affinity)
  EXPECT_EQ(j.state, fleet::FleetJobState::kFinished);
  EXPECT_EQ(j.checksum, solo().checksum);
  // The surviving replica carried the job: no replay, no retry spent.
  EXPECT_FALSE(j.replayed_after_loss);
  EXPECT_EQ(j.loss_attempts, 0u);
  EXPECT_EQ(ctl.metrics().counter("ghum_fleet_replacement_retries_total").value(),
            0u);
}

TEST(FleetFault, RedundantReplicaCompletionIsHarmless) {
  fleet::Controller ctl{small_fleet(2), catalog()};
  ASSERT_EQ(ctl.run({make_req(0, 0, 0, kFar, /*replicas=*/2)}),
            Status::kSuccess);
  const fleet::FleetJob& j = ctl.jobs()[0];
  EXPECT_EQ(j.placements, 2u);
  EXPECT_EQ(j.state, fleet::FleetJobState::kFinished);
  EXPECT_EQ(j.checksum, solo().checksum);
  EXPECT_EQ(ctl.metrics().counter("ghum_fleet_finished_total").value(), 1u);
}

// --- admission control -------------------------------------------------------

TEST(FleetAdmission, ShedDropsLowestPriorityAndNeverTheProtectedClass) {
  auto f = small_fleet(2);
  f.node_footprint_budget = 1ull << 20;  // one job per node
  f.shed_protect_classes = 1;
  f.faults.node_loss = {{.time = solo().end / 4, .node = 1}};
  fleet::Controller ctl{f, catalog()};
  const std::vector<fleet::JobRequest> reqs = {
      make_req(0, 0, 0), make_req(1, 0, 1), make_req(2, 0, 1),
      make_req(3, 0, 1), make_req(4, 0, 1)};
  ASSERT_EQ(ctl.run(reqs), Status::kSuccess);

  // The protected top-class job rode out the storm untouched.
  EXPECT_EQ(ctl.jobs()[0].state, fleet::FleetJobState::kFinished);
  EXPECT_EQ(ctl.jobs()[0].checksum, solo().checksum);
  // Losing half the fleet halved capacity: every unprotected pending job
  // was shed gracefully with the loss as its cause — the fleet never stalls.
  for (std::size_t i = 1; i < ctl.jobs().size(); ++i) {
    EXPECT_EQ(ctl.jobs()[i].state, fleet::FleetJobState::kFailed) << i;
    EXPECT_EQ(ctl.jobs()[i].status, Status::kErrorNodeLost) << i;
  }
  EXPECT_EQ(ctl.metrics().counter("ghum_fleet_shed_total").value(), 4u);
  fleet::SloSummary top = ctl.slo_summary(0);
  EXPECT_EQ(top.failed, 0u);
  EXPECT_EQ(top.violations, 0u);
}

TEST(FleetAdmission, OversizedJobFailsOutOfMemory) {
  auto f = small_fleet(1);
  f.node_footprint_budget = 512ull << 10;  // smaller than the template
  fleet::Controller ctl{f, catalog()};
  ASSERT_EQ(ctl.run({make_req(0, 0)}), Status::kSuccess);
  EXPECT_EQ(ctl.jobs()[0].state, fleet::FleetJobState::kFailed);
  EXPECT_EQ(ctl.jobs()[0].status, Status::kErrorOutOfMemory);
  EXPECT_EQ(ctl.peek_last_error(), Status::kErrorOutOfMemory);
}

TEST(FleetAdmission, PendingPastDeadlineExpiresInsteadOfStalling) {
  auto f = small_fleet(1);
  f.node_footprint_budget = 1ull << 20;  // one job at a time
  fleet::Controller ctl{f, catalog()};
  const std::vector<fleet::JobRequest> reqs = {
      make_req(0, 0, 0, kFar),
      // Unprotected, with a deadline that expires while job 0 still holds
      // the node.
      make_req(1, 0, 1, solo().end / 8),
      // A later arrival gives the controller a fleet event at which the
      // expiry check runs.
      make_req(2, solo().end / 2, 0, kFar)};
  ASSERT_EQ(ctl.run(reqs), Status::kSuccess);

  EXPECT_EQ(ctl.jobs()[0].state, fleet::FleetJobState::kFinished);
  EXPECT_EQ(ctl.jobs()[1].state, fleet::FleetJobState::kFailed);
  EXPECT_EQ(ctl.jobs()[1].status, Status::kErrorDeadlineExceeded);
  EXPECT_TRUE(ctl.jobs()[1].slo_violation);
  EXPECT_EQ(ctl.jobs()[2].state, fleet::FleetJobState::kFinished);
  fleet::SloSummary s = ctl.slo_summary(1);
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.violations, 1u);
}

// --- inter-node fabric -------------------------------------------------------

TEST(FleetNet, DefaultModeChargesControlAndDataThroughFabric) {
  auto f = small_fleet(2, 1);
  f.faults.node_degrade = {{.time = solo().end / 2, .node = 0, .slow_factor = 4}};
  fleet::Controller ctl{f, catalog()};
  ASSERT_NE(ctl.fabric(), nullptr);
  ASSERT_EQ(ctl.run({make_req(0, 0), make_req(1, 0)}), Status::kSuccess);

  const net::FabricTotals& tot = ctl.fabric()->totals();
  // 2 arrival notifications + 2 placement commands, eager-sized; plus one
  // evacuation blob, rendezvous-sized.
  EXPECT_GE(tot.total_msgs(), 5u);
  EXPECT_EQ(tot.msgs[static_cast<std::size_t>(net::Protocol::kRendezvous)], 1u);
  EXPECT_EQ(tot.rndv_handshakes, 1u);
  // The fabric's instruments live in the fleet registry.
  EXPECT_EQ(ctl.metrics()
                .counter("ghum_net_msgs_total", {{"proto", "rendezvous"}})
                .value(),
            1u);
}

TEST(FleetNet, LegacyModeKeepsFlatCostAndNoFabric) {
  auto f = small_fleet(1);
  f.legacy_transfer_cost = true;
  fleet::Controller ctl{f, catalog()};
  EXPECT_EQ(ctl.fabric(), nullptr);
  ASSERT_EQ(ctl.run({make_req(0, 0)}), Status::kSuccess);
  EXPECT_EQ(ctl.jobs()[0].state, fleet::FleetJobState::kFinished);
  EXPECT_EQ(ctl.jobs()[0].checksum, solo().checksum);
}

TEST(FleetNet, BothModesAreDeterministic) {
  for (const bool legacy : {false, true}) {
    auto f = small_fleet(2);
    f.legacy_transfer_cost = legacy;
    const std::vector<fleet::JobRequest> reqs = {
        make_req(0, 0), make_req(1, sim::microseconds(5)),
        make_req(2, sim::microseconds(9))};
    fleet::Controller a{f, catalog()};
    fleet::Controller b{f, catalog()};
    (void)a.run(reqs);
    (void)b.run(reqs);
    EXPECT_EQ(a.digest(), b.digest()) << "legacy=" << legacy;
  }
}

TEST(FleetNet, ConstructorRejectsBadNetSpecAndFlapWindows) {
  auto bad_spec = small_fleet(1);
  bad_spec.net.wire_bandwidth_Bps = -1.0;
  try {
    fleet::Controller ctl{bad_spec, catalog()};
    FAIL() << "malformed net spec must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorNetConfig);
  }

  auto bad_flap = small_fleet(2, 1);
  fault::LinkFlapWindow w;
  w.node_a = 7;  // 2 nodes + 1 spare: machine ids are 0..2
  bad_flap.faults.link_flap = {w};
  try {
    fleet::Controller ctl{bad_flap, catalog()};
    FAIL() << "flap window outside the fleet must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorInvalidValue);
  }

  // The flap schedule is part of the fault config, not the fabric, so
  // legacy mode rejects malformed windows too.
  auto legacy_flap = bad_flap;
  legacy_flap.legacy_transfer_cost = true;
  EXPECT_THROW((fleet::Controller{legacy_flap, catalog()}), StatusError);
}

TEST(FleetNet, LinkFlapDelaysPlacementDelivery) {
  // A flap window open over the control link at t=0 dilates the placement
  // command, so the job starts (and finishes) later than without it.
  const auto makespan = [&](std::vector<fault::LinkFlapWindow> flaps) {
    auto f = small_fleet(1);
    f.faults.link_flap = std::move(flaps);
    fleet::Controller ctl{f, catalog()};
    (void)ctl.run({make_req(0, 0)});
    return ctl.jobs()[0].finished_at;
  };
  fault::LinkFlapWindow w;
  w.start = 0;
  w.duration = sim::milliseconds(1000);
  w.node_a = 0;  // everything touching node 0, incl. control -> node 0
  w.bandwidth_factor = 8.0;
  w.latency_factor = 8.0;
  const sim::Picos quiet = makespan({});
  const sim::Picos flapped = makespan({w});
  EXPECT_GT(flapped, quiet);
  EXPECT_EQ(makespan({w}), flapped);  // and deterministically so
}

// --- heartbeat failure detection (DESIGN.md Section 14) ----------------------

TEST(FleetDetect, ConstructorRejectsMalformedHeartbeatConfigs) {
  // Heartbeats are fabric messages; the flat legacy cost model has no
  // fabric to charge them through.
  auto legacy = small_fleet(1);
  legacy.legacy_transfer_cost = true;
  legacy.heartbeat.enabled = true;
  try {
    fleet::Controller ctl{legacy, catalog()};
    FAIL() << "heartbeat without a fabric must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorInvalidValue);
  }
  for (auto mutate : {+[](fleet::HeartbeatConfig& h) { h.interval = 0; },
                      +[](fleet::HeartbeatConfig& h) { h.miss_threshold = 0; },
                      +[](fleet::HeartbeatConfig& h) { h.heartbeat_bytes = 0; }}) {
    auto f = small_fleet(1);
    f.heartbeat.enabled = true;
    mutate(f.heartbeat);
    EXPECT_THROW((fleet::Controller{f, catalog()}), StatusError);
  }
}

TEST(FleetDetect, HeartbeatDetectsSilentDeathAndReplays) {
  auto f = small_fleet(2);
  f.heartbeat.enabled = true;
  f.heartbeat.interval = sim::microseconds(20);
  f.heartbeat.miss_threshold = 3;
  f.faults.node_loss = {{.time = solo().end / 2, .node = 1}};
  fleet::Controller ctl{f, catalog()};
  ASSERT_EQ(ctl.run({make_req(0, 0), make_req(1, 0)}), Status::kSuccess);

  // With detection on, the loss is a silent death: recovery still happens,
  // but only because the miss threshold declared the node dead.
  std::uint32_t replayed = 0;
  for (const fleet::FleetJob& j : ctl.jobs()) {
    EXPECT_EQ(j.state, fleet::FleetJobState::kFinished);
    EXPECT_EQ(j.checksum, solo().checksum);
    if (j.replayed_after_loss) ++replayed;
  }
  EXPECT_EQ(replayed, 1u);
  auto& m = ctl.metrics();
  EXPECT_EQ(m.counter("ghum_fleet_detected_losses_total").value(), 1u);
  EXPECT_EQ(m.counter("ghum_fleet_node_losses_total").value(), 1u);
  // The dead node walked the suspicion ladder: one suspect transition and
  // miss_threshold consecutive misses.
  EXPECT_GE(m.counter("ghum_fleet_heartbeat_suspects_total").value(), 1u);
  EXPECT_GE(m.counter("ghum_fleet_heartbeat_misses_total").value(), 3u);
  EXPECT_GE(m.counter("ghum_fleet_heartbeat_probes_total").value(), 3u);
  const auto status = ctl.node_status();
  EXPECT_EQ(status[1].state, fleet::NodeState::kDead);
  EXPECT_EQ(status[0].state, fleet::NodeState::kAlive);
  EXPECT_FALSE(status[0].suspected);
}

TEST(FleetDetect, SuspectedAliveNodeRejoinsWithoutDoublePlacement) {
  // Chaos clips enough heartbeats to raise false suspicions on live
  // nodes, but the miss threshold is high enough that only the genuinely
  // dead node (every edge missed) is ever declared lost.
  auto f = small_fleet(2);
  f.heartbeat.enabled = true;
  f.heartbeat.interval = sim::microseconds(20);
  f.heartbeat.miss_threshold = 6;
  f.faults.messages.enabled = true;
  f.faults.messages.drop_prob = 0.15;
  f.faults.node_loss = {{.time = solo().end, .node = 1}};
  fleet::Controller ctl{f, catalog()};
  ASSERT_EQ(ctl.run({make_req(0, 0), make_req(1, 0)}), Status::kSuccess);

  auto& m = ctl.metrics();
  // False positives were raised and cleared by on-time responses...
  EXPECT_GE(m.counter("ghum_fleet_heartbeat_suspects_total").value(), 2u);
  EXPECT_GE(m.counter("ghum_fleet_heartbeat_rejoins_total").value(), 1u);
  // ...and only the real death was ever declared.
  EXPECT_EQ(m.counter("ghum_fleet_detected_losses_total").value(), 1u);
  EXPECT_EQ(m.counter("ghum_fleet_node_losses_total").value(), 1u);
  for (const fleet::FleetJob& j : ctl.jobs()) {
    EXPECT_EQ(j.state, fleet::FleetJobState::kFinished);
    EXPECT_EQ(j.checksum, solo().checksum);
    // A suspected-but-alive node keeps its work: a rejoin never re-places
    // a running job (placements grow only through a real loss replay).
    if (!j.replayed_after_loss) EXPECT_EQ(j.placements, 1u);
  }
}

TEST(FleetDetect, ChaoticDetectionRunsAreDeterministic) {
  const auto drive = [] {
    auto f = small_fleet(2, 1);
    f.heartbeat.enabled = true;
    f.heartbeat.interval = sim::microseconds(20);
    f.heartbeat.miss_threshold = 6;
    f.faults.messages.enabled = true;
    f.faults.messages.drop_prob = 0.1;
    f.faults.messages.corrupt_prob = 0.05;
    f.faults.messages.duplicate_prob = 0.05;
    f.faults.node_loss = {{.time = solo().end / 2, .node = 1}};
    fleet::Controller ctl{f, catalog()};
    (void)ctl.run({make_req(0, 0), make_req(1, 0), make_req(2, 0)});
    return ctl.digest();
  };
  EXPECT_EQ(drive(), drive());
}

// --- evacuation-blob integrity ----------------------------------------------

TEST(FleetChk, CorruptEvacBlobIsReRequested) {
  auto f = small_fleet(1, 1);
  f.faults.node_degrade = {
      {.time = solo().end / 2, .node = 0, .slow_factor = 4}};
  // Schedule the first bulk reliable payload — the evacuation image — to
  // arrive corrupted end-to-end, past the link checksum.
  f.faults.messages.enabled = true;
  f.faults.messages.bulk_threshold = 4096;
  f.faults.messages.e2e_corrupt_bulk = {0};
  fleet::Controller ctl{f, catalog()};
  ASSERT_EQ(ctl.run({make_req(0, 0)}), Status::kSuccess);

  // The spare's digest check caught the corruption, the re-requested copy
  // arrived clean, and the migration completed mid-flight as usual.
  const fleet::FleetJob& j = ctl.jobs()[0];
  EXPECT_EQ(j.state, fleet::FleetJobState::kFinished);
  EXPECT_EQ(j.checksum, solo().checksum);
  EXPECT_TRUE(j.migrated);
  EXPECT_FALSE(j.replayed_after_loss);
  auto& m = ctl.metrics();
  EXPECT_EQ(m.counter("ghum_fleet_evac_corruptions_total").value(), 1u);
  EXPECT_EQ(m.counter("ghum_fleet_evac_rerequests_total").value(), 1u);
  EXPECT_EQ(m.counter("ghum_fleet_evac_replays_total").value(), 0u);
  EXPECT_EQ(m.counter("ghum_fleet_evacuations_total").value(), 1u);
  EXPECT_EQ(ctl.fabric()->reliable_totals().e2e_corruptions, 1u);
  EXPECT_EQ(ctl.node_status()[0].state, fleet::NodeState::kRetired);
  EXPECT_EQ(ctl.node_status()[1].state, fleet::NodeState::kAlive);
}

TEST(FleetChk, DoublyCorruptEvacBlobFallsBackToReplay) {
  auto f = small_fleet(1, 1);
  f.faults.node_degrade = {
      {.time = solo().end / 2, .node = 0, .slow_factor = 4}};
  // Both the original ship and the re-request arrive corrupt: the spare
  // boots fresh and the donor's jobs replay from scratch (PR 5 ladder).
  f.faults.messages.enabled = true;
  f.faults.messages.bulk_threshold = 4096;
  f.faults.messages.e2e_corrupt_bulk = {0, 1};
  fleet::Controller ctl{f, catalog()};
  ASSERT_EQ(ctl.run({make_req(0, 0)}), Status::kSuccess);

  const fleet::FleetJob& j = ctl.jobs()[0];
  EXPECT_EQ(j.state, fleet::FleetJobState::kFinished);
  EXPECT_EQ(j.checksum, solo().checksum);
  EXPECT_FALSE(j.migrated);  // nothing continued mid-flight
  EXPECT_TRUE(j.replayed_after_loss);
  auto& m = ctl.metrics();
  EXPECT_EQ(m.counter("ghum_fleet_evac_corruptions_total").value(), 2u);
  EXPECT_EQ(m.counter("ghum_fleet_evac_rerequests_total").value(), 1u);
  EXPECT_EQ(m.counter("ghum_fleet_evac_replays_total").value(), 1u);
  EXPECT_EQ(m.counter("ghum_fleet_evacuations_total").value(), 0u);
  // The corruption surfaced on the sticky error surface.
  EXPECT_EQ(ctl.get_last_error(), Status::kErrorDataCorruption);
  EXPECT_EQ(ctl.node_status()[0].state, fleet::NodeState::kRetired);
  EXPECT_EQ(ctl.node_status()[1].state, fleet::NodeState::kAlive);
}

}  // namespace
}  // namespace ghum
