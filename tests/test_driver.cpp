#include <gtest/gtest.h>

#include "driver/access_counter.hpp"
#include "driver/managed_engine.hpp"
#include "driver/migration_engine.hpp"
#include "driver/prefetcher.hpp"
#include "os/page_fault.hpp"

namespace ghum {
namespace {

core::SystemConfig driver_config() {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage64K;
  cfg.hbm_capacity = 8ull << 20;
  cfg.ddr_capacity = 64ull << 20;
  cfg.gpu_driver_baseline = 0;
  cfg.event_log = true;
  cfg.access_counter_migration = true;
  cfg.access_counter_threshold = 256;
  cfg.counter_region_bytes = 2ull << 20;
  cfg.counter_min_interval = 0;
  return cfg;
}

class DriverTest : public ::testing::Test {
 protected:
  core::Machine m{driver_config()};
  os::PageFaultHandler pf{m};
  driver::MigrationEngine mig{m};
  driver::AccessCounterEngine ac{m, mig};
  driver::ManagedEngine managed{m, mig, pf};

  os::Vma& system_vma(std::uint64_t bytes) {
    return m.address_space().create(bytes, os::AllocKind::kSystem, 65536, "sys");
  }
  void populate_cpu(os::Vma& v) {
    for (std::uint64_t va = v.base; va < v.end(); va += 65536) {
      ASSERT_TRUE(m.map_system_page(v, va, mem::Node::kCpu));
    }
  }
};

TEST_F(DriverTest, MigrationMovesOnlyCpuResidentPagesUpToBudget) {
  os::Vma& v = system_vma(1 << 20);  // 16 pages of 64 KiB
  populate_cpu(v);
  const std::uint64_t moved =
      mig.migrate_system_range_to_gpu(v, v.base, v.size, 256 << 10);
  EXPECT_EQ(moved, 256u << 10);  // budget-limited
  EXPECT_EQ(v.resident_gpu_bytes, 256u << 10);
  EXPECT_EQ(m.events().count(sim::EventType::kMigrationH2D), 1u);
}

TEST_F(DriverTest, MigrationStopsWhenGpuFull) {
  os::Vma& v = system_vma(12ull << 20);  // larger than the 8 MiB HBM
  populate_cpu(v);
  const std::uint64_t moved =
      mig.migrate_system_range_to_gpu(v, v.base, v.size, ~0ull);
  EXPECT_EQ(moved, 8ull << 20);
  EXPECT_EQ(m.frames(mem::Node::kGpu).free_bytes(), 0u);
}

TEST_F(DriverTest, MigrationChargesTimeAndTraffic) {
  os::Vma& v = system_vma(1 << 20);
  populate_cpu(v);
  const sim::Picos t0 = m.clock().now();
  (void)mig.migrate_system_range_to_gpu(v, v.base, v.size, ~0ull);
  EXPECT_GT(m.clock().now(), t0);
  EXPECT_EQ(m.c2c().bytes_moved(interconnect::Direction::kCpuToGpu), 1u << 20);
}

TEST_F(DriverTest, AccessCounterFiresAtThreshold) {
  os::Vma& v = system_vma(2 << 20);
  populate_cpu(v);
  ac.note_gpu_access(v, v.base, 255, 100);
  EXPECT_EQ(ac.notifications(), 0u);
  ac.note_gpu_access(v, v.base, 1, 101);
  EXPECT_EQ(ac.notifications(), 1u);
  // The whole 2 MiB region migrated.
  EXPECT_EQ(ac.migrated_h2d_bytes(), 2u << 20);
  EXPECT_EQ(m.events().count(sim::EventType::kCounterNotification), 1u);
}

TEST_F(DriverTest, AccessCounterDisabledDoesNothing) {
  auto cfg = driver_config();
  cfg.access_counter_migration = false;
  core::Machine m2{cfg};
  driver::MigrationEngine mig2{m2};
  driver::AccessCounterEngine ac2{m2, mig2};
  os::Vma& v = m2.address_space().create(1 << 20, os::AllocKind::kSystem, 65536, "s");
  for (std::uint64_t va = v.base; va < v.end(); va += 65536) {
    ASSERT_TRUE(m2.map_system_page(v, va, mem::Node::kCpu));
  }
  ac2.note_gpu_access(v, v.base, 100'000, 102);
  EXPECT_EQ(ac2.notifications(), 0u);
  EXPECT_EQ(ac2.migrated_h2d_bytes(), 0u);
}

TEST_F(DriverTest, AccessCounterRateLimitDelaysNextNotification) {
  auto cfg = driver_config();
  cfg.counter_min_interval = sim::milliseconds(1);
  core::Machine m2{cfg};
  driver::MigrationEngine mig2{m2};
  driver::AccessCounterEngine ac2{m2, mig2};
  os::Vma& v = m2.address_space().create(4ull << 20, os::AllocKind::kSystem, 65536, "s");
  for (std::uint64_t va = v.base; va < v.end(); va += 65536) {
    ASSERT_TRUE(m2.map_system_page(v, va, mem::Node::kCpu));
  }
  ac2.note_gpu_access(v, v.base, 500, 103);
  // Rate-limited: same time window (distinct kernel, so only the interval
  // gates it).
  ac2.note_gpu_access(v, v.base, 500, 104);
  EXPECT_EQ(ac2.notifications(), 1u);
  m2.clock().advance(sim::milliseconds(2));
  ac2.note_gpu_access(v, v.base, 500, 104);
  EXPECT_EQ(ac2.notifications(), 2u);
}

TEST_F(DriverTest, CounterRegionsAreIndependent) {
  os::Vma& v = system_vma(4ull << 20);  // two 2 MiB regions
  populate_cpu(v);
  ac.note_gpu_access(v, v.base, 200, 105);
  ac.note_gpu_access(v, v.base + (2 << 20), 200, 106);
  EXPECT_EQ(ac.notifications(), 0u);  // neither region crossed 256
  ac.note_gpu_access(v, v.base, 56, 107);
  EXPECT_EQ(ac.notifications(), 1u);
}

TEST(Prefetcher, FaultBatchCoverage) {
  const driver::Prefetcher on{true};
  const driver::Prefetcher off{false};
  // Section 2.3.2: the tree prefetcher ramps 64K->128K->...->2M, so a
  // 2 MiB block costs 6 fault batches; without prefetching the driver
  // pays one batch per 64 KiB basic block (32).
  EXPECT_EQ(on.fault_batches(2 << 20), 6u);
  EXPECT_EQ(on.fault_batches(64 << 10), 1u);
  EXPECT_EQ(on.fault_batches(128 << 10), 2u);
  EXPECT_EQ(off.fault_batches(2 << 20), 32u);
  EXPECT_EQ(off.fault_batches(64 << 10), 1u);
  EXPECT_EQ(off.fault_batches((64 << 10) + 1), 2u);
}

class ManagedTest : public DriverTest {
 protected:
  os::Vma& managed_vma(std::uint64_t bytes) {
    return managed.allocate(bytes, "m");
  }
};

TEST_F(ManagedTest, GpuFirstTouchMapsWholeBlockOnGpu) {
  os::Vma& v = managed_vma(4 << 20);
  const auto r = managed.gpu_fault(v, v.base, 1);
  EXPECT_EQ(r.node, mem::Node::kGpu);
  EXPECT_FALSE(r.remote_mapped);
  EXPECT_EQ(v.resident_gpu_bytes, 2u << 20);
  EXPECT_EQ(v.resident_cpu_bytes, 0u);
  EXPECT_EQ(managed.resident_blocks(), 1u);
}

TEST_F(ManagedTest, CpuResidentBlockMigratesOnGpuFault) {
  os::Vma& v = managed_vma(2 << 20);
  // CPU touches two pages first (first-touch on CPU).
  managed.cpu_fault(v, v.base);
  managed.cpu_fault(v, v.base + 65536);
  EXPECT_EQ(v.resident_cpu_bytes, 128u << 10);
  // GPU fault migrates the resident pages and maps the 2 MiB block.
  (void)managed.gpu_fault(v, v.base, 1);
  EXPECT_EQ(v.resident_cpu_bytes, 0u);
  EXPECT_EQ(v.resident_gpu_bytes, 2u << 20);
  EXPECT_EQ(m.events().count(sim::EventType::kMigrationH2D), 1u);
  EXPECT_EQ(m.events().total_bytes(sim::EventType::kMigrationH2D), 128u << 10);
}

TEST_F(ManagedTest, CpuFaultOnGpuBlockMigratesBack) {
  os::Vma& v = managed_vma(2 << 20);
  (void)managed.gpu_fault(v, v.base, 1);
  managed.cpu_fault(v, v.base + 4096);
  EXPECT_EQ(v.resident_gpu_bytes, 0u);
  EXPECT_EQ(v.resident_cpu_bytes, 2u << 20);
  EXPECT_EQ(managed.resident_blocks(), 0u);
  EXPECT_EQ(m.events().count(sim::EventType::kMigrationD2H), 1u);
}

TEST_F(ManagedTest, LruEvictionUnderPressure) {
  // HBM = 8 MiB, so 4 blocks of 2 MiB fill it.
  os::Vma& v = managed_vma(16ull << 20);
  for (int b = 0; b < 4; ++b) {
    (void)managed.gpu_fault(v, v.base + (std::uint64_t{2} << 20) * b, 1);
  }
  EXPECT_EQ(m.frames(mem::Node::kGpu).free_bytes(), 0u);
  // Touch block 0 so block 1 is LRU, then fault block 4.
  managed.touch_gpu_block(v.base, 2);
  (void)managed.gpu_fault(v, v.base + (std::uint64_t{2} << 20) * 4, 2);
  EXPECT_EQ(managed.evictions(), 1u);
  EXPECT_EQ(m.events().count(sim::EventType::kEviction), 1u);
  // Block 1 was evicted; its pages are CPU-resident system pages now.
  EXPECT_EQ(v.resident_cpu_bytes, 2u << 20);
}

TEST_F(ManagedTest, ThrashGuardFlipsToRemoteMapping) {
  // Allocation twice the HBM: sustained faulting evicts its own blocks
  // until evicted bytes exceed the VMA size, then remote mapping kicks in
  // (the paper's oversubscribed steady state, Section 7).
  os::Vma& v = managed_vma(16ull << 20);
  bool saw_remote = false;
  for (int round = 0; round < 3 && !saw_remote; ++round) {
    for (std::uint64_t off = 0; off < v.size && !saw_remote; off += 2 << 20) {
      const auto r = managed.gpu_fault(v, v.base + off, 1);
      saw_remote = r.remote_mapped;
    }
  }
  EXPECT_TRUE(saw_remote);
  EXPECT_TRUE(managed.remote_mode(v));
  EXPECT_GT(managed.evictions(), 0u);
}

TEST_F(ManagedTest, ExplicitPrefetchMigratesAndRearms) {
  os::Vma& v = managed_vma(4 << 20);
  managed.cpu_fault(v, v.base);  // some CPU residency
  managed.prefetch(v, v.base, v.size, mem::Node::kGpu);
  EXPECT_EQ(v.resident_gpu_bytes, 4u << 20);
  EXPECT_EQ(v.resident_cpu_bytes, 0u);
  EXPECT_FALSE(managed.remote_mode(v));
  EXPECT_EQ(m.events().count(sim::EventType::kExplicitPrefetch), 1u);
  // Prefetch back to CPU.
  managed.prefetch(v, v.base, v.size, mem::Node::kCpu);
  EXPECT_EQ(v.resident_gpu_bytes, 0u);
  EXPECT_EQ(v.resident_cpu_bytes, 4u << 20);
}

TEST_F(ManagedTest, EnterRemoteModeEvacuatesResidentBlocks) {
  // UVM's thrashing mitigation pins the range to system memory: once the
  // guard trips, *everything* is CPU-resident and served over C2C
  // (paper Section 7's oversubscribed steady state).
  os::Vma& v = managed_vma(16ull << 20);
  for (int round = 0; round < 3 && !managed.remote_mode(v); ++round) {
    for (std::uint64_t off = 0; off < v.size && !managed.remote_mode(v);
         off += 2 << 20) {
      (void)managed.gpu_fault(v, v.base + off, 1);
    }
  }
  ASSERT_TRUE(managed.remote_mode(v));
  EXPECT_EQ(v.resident_gpu_bytes, 0u);
  EXPECT_EQ(v.resident_cpu_bytes, v.size);
}

TEST_F(ManagedTest, PrefetchDoesNotEvictItsOwnBlocks) {
  // Prefetching a range larger than the GPU must keep the fitting prefix
  // resident rather than churning it out for the tail.
  os::Vma& v = managed_vma(16ull << 20);  // HBM is 8 MiB
  managed.prefetch(v, v.base, v.size, mem::Node::kGpu);
  // Exactly the fitting prefix (4 blocks of 2 MiB) is resident.
  EXPECT_EQ(v.resident_gpu_bytes, 8ull << 20);
  for (std::uint64_t off = 0; off < (8ull << 20); off += 2 << 20) {
    EXPECT_NE(m.gpu_pt().lookup(v.base + off), nullptr) << off;
  }
  EXPECT_EQ(m.gpu_pt().lookup(v.base + (8ull << 20)), nullptr);
  EXPECT_EQ(managed.evictions(), 0u);
}

TEST_F(ManagedTest, PartialPrefetchKeepsThrashGuardEngaged) {
  os::Vma& v = managed_vma(16ull << 20);
  // Trip the guard first.
  for (int round = 0; round < 3 && !managed.remote_mode(v); ++round) {
    for (std::uint64_t off = 0; off < v.size && !managed.remote_mode(v);
         off += 2 << 20) {
      (void)managed.gpu_fault(v, v.base + off, 1);
    }
  }
  ASSERT_TRUE(managed.remote_mode(v));
  // Partial prefetch (range > HBM): fills what fits, guard stays on so
  // the remainder remote-maps instead of churning.
  managed.prefetch(v, v.base, v.size, mem::Node::kGpu);
  EXPECT_TRUE(managed.remote_mode(v));
  EXPECT_GT(v.resident_gpu_bytes, 0u);
  const auto r = managed.gpu_fault(v, v.base + (10ull << 20), 2);
  EXPECT_TRUE(r.remote_mapped);
}

TEST_F(ManagedTest, FullySatisfiedPrefetchRearmsMigration) {
  os::Vma& v = managed_vma(16ull << 20);
  for (int round = 0; round < 3 && !managed.remote_mode(v); ++round) {
    for (std::uint64_t off = 0; off < v.size && !managed.remote_mode(v);
         off += 2 << 20) {
      (void)managed.gpu_fault(v, v.base + off, 1);
    }
  }
  ASSERT_TRUE(managed.remote_mode(v));
  // Prefetching a sub-range that fits entirely is a fully satisfied hint:
  // it re-arms migration for the allocation.
  managed.prefetch(v, v.base, 4ull << 20, mem::Node::kGpu);
  EXPECT_FALSE(managed.remote_mode(v));
  EXPECT_EQ(v.resident_gpu_bytes, 4ull << 20);
}

TEST_F(ManagedTest, PureFirstTouchIsCheaperThanMigration) {
  // GPU first touch of an unpopulated block costs one fault batch; a
  // migrated block pays the prefetcher ramp plus the copy
  // (Section 5.1.2: managed memory initializes fast on the GPU).
  os::Vma& fresh = managed_vma(2 << 20);
  const sim::Picos t0 = m.clock().now();
  (void)managed.gpu_fault(fresh, fresh.base, 1);
  const sim::Picos first_touch = m.clock().now() - t0;

  os::Vma& populated = managed_vma(2 << 20);
  for (std::uint64_t va = populated.base; va < populated.end(); va += 65536) {
    managed.cpu_fault(populated, va);
  }
  const sim::Picos t1 = m.clock().now();
  (void)managed.gpu_fault(populated, populated.base, 1);
  const sim::Picos migration = m.clock().now() - t1;
  EXPECT_LT(first_touch, migration / 2);
}

TEST_F(ManagedTest, PrefetcherWarmsUpAcrossBlocks) {
  // First migrated block pays the full tree-prefetcher ramp; later blocks
  // of the same allocation migrate with fewer fault batches.
  os::Vma& v = managed_vma(6ull << 20);
  for (std::uint64_t va = v.base; va < v.end(); va += 65536) {
    managed.cpu_fault(v, va);
  }
  const sim::Picos t0 = m.clock().now();
  (void)managed.gpu_fault(v, v.base, 1);
  const sim::Picos first = m.clock().now() - t0;
  const sim::Picos t1 = m.clock().now();
  (void)managed.gpu_fault(v, v.base + (2 << 20), 1);
  const sim::Picos second = m.clock().now() - t1;
  EXPECT_LT(second, first);
}

TEST_F(ManagedTest, ReleaseGpuBlocksClearsResidency) {
  os::Vma& v = managed_vma(4 << 20);
  (void)managed.gpu_fault(v, v.base, 1);
  (void)managed.gpu_fault(v, v.base + (2 << 20), 1);
  managed.release_gpu_blocks(v);
  EXPECT_EQ(v.resident_gpu_bytes, 0u);
  EXPECT_EQ(managed.resident_blocks(), 0u);
  EXPECT_EQ(m.frames(mem::Node::kGpu).used(), 0u);
}

TEST_F(ManagedTest, EvictionBlockedByCpuExhaustionDegradesToRemote) {
  // Leave only 1 MiB of CPU frames: less than one 2 MiB block, so eviction
  // writeback has nowhere to land.
  os::Vma& cfill = system_vma(63ull << 20);
  populate_cpu(cfill);
  // Fill all 8 MiB of HBM with managed blocks (driver baseline is 0 here).
  os::Vma& a = managed_vma(8ull << 20);
  for (std::uint64_t off = 0; off < a.size; off += 2ull << 20) {
    (void)managed.gpu_fault(a, a.base + off, 1);
  }
  ASSERT_EQ(m.frames(mem::Node::kGpu).free_bytes(), 0u);
  // A new managed fault needs GPU room, but every eviction candidate is
  // blocked by the exhausted CPU; the engine degrades to a coherent remote
  // CPU mapping instead of terminating.
  os::Vma& b = managed_vma(2ull << 20);
  const auto r = managed.gpu_fault(b, b.base, 2);
  EXPECT_EQ(r.node, mem::Node::kCpu);
  EXPECT_TRUE(r.remote_mapped);
  EXPECT_GE(m.stats().get("driver.managed.eviction_blocked"), 1u);
  EXPECT_EQ(managed.evictions(), 0u);
  // The original working set is untouched.
  EXPECT_EQ(a.resident_gpu_bytes, 8ull << 20);
}

}  // namespace
}  // namespace ghum
