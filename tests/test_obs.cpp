#include <gtest/gtest.h>

#include <regex>
#include <set>

#include "chk/snapshot.hpp"
#include "core/system.hpp"
#include "obs/json_check.hpp"
#include "obs/link_monitor.hpp"
#include "obs/metrics.hpp"
#include "profile/trace_export.hpp"
#include "profile/tracer.hpp"
#include "runtime/runtime.hpp"

namespace ghum {
namespace {

// ---------------------------------------------------------------------------
// Metrics registry semantics.
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, InstrumentsAreStableAndCumulative) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("reqs_total");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Re-registering the same name+labels returns the same instrument.
  EXPECT_EQ(&reg.counter("reqs_total"), &c);

  obs::Gauge& g = reg.gauge("depth");
  g.set(7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
}

TEST(MetricsRegistry, LabelOrderCanonicalizes) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x_total", {{"dir", "h2d"}, {"node", "gpu"}});
  obs::Counter& b = reg.counter("x_total", {{"node", "gpu"}, {"dir", "h2d"}});
  EXPECT_EQ(&a, &b) << "label key order must not create distinct series";
  obs::Counter& other = reg.counter("x_total", {{"dir", "d2h"}, {"node", "gpu"}});
  EXPECT_NE(&a, &other);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  obs::MetricsRegistry reg;
  (void)reg.counter("dual");
  EXPECT_THROW((void)reg.gauge("dual"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("dual"), std::logic_error);
}

TEST(Histogram, PowerOfTwoBucketsAndExactSums) {
  obs::Histogram h;
  h.observe(0);    // bucket 0 (bit width 0)
  h.observe(1);    // bucket 1: [1, 1]
  h.observe(2);    // bucket 2: [2, 3]
  h.observe(3);    // bucket 2
  h.observe(4);    // bucket 3: [4, 7]
  h.observe(1024); // bucket 11
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 1034u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(11), 1u);
  EXPECT_EQ(obs::Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_bound(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_bound(2), 3u);
  EXPECT_EQ(obs::Histogram::bucket_bound(11), 2047u);
  EXPECT_EQ(obs::Histogram::bucket_bound(64), ~0ull);
}

TEST(MetricsRegistry, ExpositionIsDeterministicAndParses) {
  auto build = [](bool reversed) {
    obs::MetricsRegistry reg;
    if (reversed) {
      reg.gauge("zz").set(1);
      reg.counter("aa_total", {{"k", "v"}}).inc(3);
    } else {
      reg.counter("aa_total", {{"k", "v"}}).inc(3);
      reg.gauge("zz").set(1);
    }
    reg.histogram("hh").observe(5);
    return reg;
  };
  const obs::MetricsRegistry r1 = build(false);
  const obs::MetricsRegistry r2 = build(true);
  // Registration order must not leak into the exposition.
  EXPECT_EQ(r1.to_prometheus(), r2.to_prometheus());
  EXPECT_EQ(r1.to_json(), r2.to_json());
  EXPECT_NE(r1.to_prometheus().find("# TYPE aa_total counter"),
            std::string::npos);
  EXPECT_NE(r1.to_prometheus().find("aa_total{k=\"v\"} 3"), std::string::npos);
  std::string err;
  EXPECT_TRUE(obs::json_valid(r1.to_json(), &err)) << err;
}

TEST(MetricsRegistry, LabelValuesAreEscapedInJson) {
  obs::MetricsRegistry reg;
  reg.counter("esc_total", {{"name", "we\"ird\\path\n"}}).inc();
  std::string err;
  EXPECT_TRUE(obs::json_valid(reg.to_json(), &err)) << err;
}

TEST(MetricsRegistry, PrometheusEscapesExactlyBackslashQuoteNewline) {
  // The exposition format defines exactly three label-value escapes:
  // \\ for backslash, \" for quote, \n for newline. Anything else —
  // including tabs and carriage returns — passes through raw; escaping it
  // (e.g. "\t") would make scrapers read a literal backslash-t.
  obs::MetricsRegistry reg;
  reg.counter("esc_total", {{"p", "a\\b\"c\nd\te\rf"}}).inc(2);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("esc_total{p=\"a\\\\b\\\"c\\nd\te\rf\"} 2"),
            std::string::npos)
      << prom;
}

TEST(MetricsRegistry, HostileLabelValuesRoundTripBothExpositions) {
  // Names no scraper should ever see but every exporter must survive:
  // quotes, backslashes, newlines, tabs, and raw control bytes.
  const std::vector<std::string> hostile = {
      "plain", "with \"quotes\"", "back\\slash", "new\nline",
      "tab\tand\rcr",  std::string{"ctrl\x01\x1f"},
  };
  obs::MetricsRegistry reg;
  for (std::size_t i = 0; i < hostile.size(); ++i) {
    reg.counter("hostile_total", {{"v", hostile[i]}}).inc(i + 1);
  }
  // Distinct hostile values stay distinct series...
  EXPECT_EQ(reg.size(), hostile.size());
  for (std::size_t i = 0; i < hostile.size(); ++i) {
    EXPECT_EQ(reg.counter("hostile_total", {{"v", hostile[i]}}).value(), i + 1);
  }
  // ...the JSON snapshot stays strictly parseable (control bytes become
  // \u00XX, which the validator accepts and raw bytes would fail)...
  std::string err;
  ASSERT_TRUE(obs::json_valid(reg.to_json(), &err)) << err;
  EXPECT_NE(reg.to_json().find("\\u0001"), std::string::npos);
  // ...and the Prometheus exposition contains each value under its own
  // escaping rules, with no invalid \t-style escapes introduced.
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("with \\\"quotes\\\""), std::string::npos);
  EXPECT_NE(prom.find("back\\\\slash"), std::string::npos);
  EXPECT_NE(prom.find("new\\nline"), std::string::npos);
  EXPECT_NE(prom.find("tab\tand\rcr"), std::string::npos);
  EXPECT_EQ(prom.find("\\t"), std::string::npos)
      << "\\t is not a valid exposition escape";
}

TEST(Histogram, ExactPowerOfTwoBoundariesLandInTheRightBucket) {
  // Bucket i holds values of bit width i: an exact power 2^k is the FIRST
  // value of bucket k+1, and 2^k - 1 is the LAST value of bucket k.
  for (std::size_t k = 1; k < 63; ++k) {
    obs::Histogram h;
    h.observe(1ull << k);
    h.observe((1ull << k) - 1);
    EXPECT_EQ(h.bucket(k + 1), 1u) << "2^" << k;
    EXPECT_EQ(h.bucket(k), 1u) << "2^" << k << " - 1";
    EXPECT_EQ(obs::Histogram::bucket_bound(k), (1ull << k) - 1);
  }
  obs::Histogram edge;
  edge.observe(~0ull);  // bit width 64: the last bucket
  EXPECT_EQ(edge.bucket(64), 1u);
  EXPECT_EQ(edge.max(), ~0ull);
  // A bucket's inclusive bound observed directly never spills over.
  obs::Histogram bound;
  bound.observe(obs::Histogram::bucket_bound(11));  // 2047
  EXPECT_EQ(bound.bucket(11), 1u);
  EXPECT_EQ(bound.bucket(12), 0u);
  EXPECT_EQ(bound.quantile_upper_bound(100), 2047u);
}

// ---------------------------------------------------------------------------
// JSON validator.
// ---------------------------------------------------------------------------

TEST(JsonCheck, AcceptsValidDocuments) {
  for (const char* ok :
       {"{}", "[]", "null", "true", "-1.5e3", "\"a\\u00e9\\n\"",
        R"({"a":[1,2,{"b":null}],"c":"x"})", "  [0]  "}) {
    std::string err;
    EXPECT_TRUE(obs::json_valid(ok, &err)) << ok << ": " << err;
  }
}

TEST(JsonCheck, RejectsInvalidDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{'a':1}", "01", "1.", "+1", "nul",
        "\"unterminated", "\"bad\\q\"", "[1] extra", "{\"a\":1,}",
        "\"raw\ncontrol\""}) {
    EXPECT_FALSE(obs::json_valid(bad)) << bad;
  }
}

// ---------------------------------------------------------------------------
// Machine integration: counters at record sites, TLB families, snapshots.
// ---------------------------------------------------------------------------

core::SystemConfig obs_config() {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage64K;
  cfg.hbm_capacity = 8ull << 20;
  cfg.ddr_capacity = 64ull << 20;
  cfg.event_log = true;
  return cfg;
}

/// Managed working set double the HBM, initialized on the host so every
/// GPU touch is a populated-block fault: forces the fault -> H2D migration
/// -> eviction chain the causal tests walk.
void run_oversubscribed_managed(core::System& sys) {
  runtime::Runtime rt{sys};
  core::Buffer b = rt.malloc_managed(16ull << 20);
  {
    auto h = rt.host_span<float>(b);
    for (std::uint64_t off = 0; off < (16ull << 20); off += 2ull << 20) {
      h.store(off / sizeof(float), 1.0f);
    }
  }
  (void)rt.launch("touch_all", 0, [&] {
    auto s = rt.device_span<float>(b);
    for (std::uint64_t off = 0; off < (16ull << 20); off += 2ull << 20) {
      s.store(off / sizeof(float), 1.0f);
    }
  });
}

TEST(ObsIntegration, CountersMatchTracerOnOversubscribedRun) {
  core::System sys{obs_config()};
  run_oversubscribed_managed(sys);
  const profile::TraceSummary ts = profile::Tracer{sys.events()}.summarize();
  const obs::MemSysMetrics& met = sys.machine().metrics();
  EXPECT_GT(ts.managed_gpu_faults, 0u);
  EXPECT_GT(ts.evictions, 0u);
  EXPECT_EQ(met.faults_gpu_managed->value(), ts.managed_gpu_faults);
  EXPECT_EQ(met.migrations_h2d->value(), ts.migrations_h2d);
  EXPECT_EQ(met.evictions->value(), ts.evictions);
  EXPECT_EQ(met.evicted_bytes->value(), ts.evicted_bytes);
  EXPECT_EQ(met.eviction_batch_bytes->count(), ts.evictions);
  EXPECT_EQ(met.eviction_batch_bytes->sum(), ts.evicted_bytes);
}

TEST(ObsIntegration, CountersCountEvenWithEventLogDisabled) {
  core::SystemConfig cfg = obs_config();
  cfg.event_log = false;
  core::System sys{cfg};
  run_oversubscribed_managed(sys);
  // The log is off (no events recorded), but the registry still counts:
  // observability must not depend on trace capture being enabled.
  EXPECT_TRUE(sys.events().events().empty());
  EXPECT_GT(sys.machine().metrics().faults_gpu_managed->value(), 0u);
  EXPECT_GT(sys.machine().metrics().evictions->value(), 0u);
}

TEST(ObsIntegration, TlbFamiliesMirrorMmuCounters) {
  core::System sys{obs_config()};
  run_oversubscribed_managed(sys);
  core::Machine& m = sys.machine();
  EXPECT_EQ(m.obs().counter("ghum_tlb_hits_total", {{"mmu", "gmmu_gpu"}}).value(),
            m.gmmu().utlb_gpu().hits());
  EXPECT_EQ(
      m.obs().counter("ghum_tlb_misses_total", {{"mmu", "gmmu_gpu"}}).value(),
      m.gmmu().utlb_gpu().misses());
  EXPECT_GT(m.gmmu().utlb_gpu().hits() + m.gmmu().utlb_gpu().misses(), 0u);
}

TEST(ObsIntegration, SnapshotsAreBitIdenticalAcrossRuns) {
  auto snapshot = [] {
    core::System sys{obs_config()};
    run_oversubscribed_managed(sys);
    return sys.metrics_json();
  };
  const std::string a = snapshot();
  const std::string b = snapshot();
  EXPECT_EQ(a, b);
  std::string err;
  EXPECT_TRUE(obs::json_valid(a, &err)) << err;
}

// ---------------------------------------------------------------------------
// Metric catalog naming convention (the DESIGN.md Section 13 audit).
// ---------------------------------------------------------------------------

TEST(ObsNaming, EveryRegisteredInstrumentMatchesTheConvention) {
  // The ghum_* catalog convention: lowercase snake_case under the ghum_
  // prefix; counters end in _total; gauges name their unit (_bytes,
  // _permille, _runs, _count); histograms name their sample unit (_bytes,
  // _picos, _ns, _us, _attempts).
  const std::regex name_re{"ghum_[a-z0-9]+(_[a-z0-9]+)*"};
  const std::regex counter_re{".*_total"};
  const std::regex gauge_re{".*_(bytes|permille|runs|count)"};
  const std::regex histogram_re{".*_(bytes|picos|ns|us|attempts)"};
  std::size_t audited = 0;
  const auto audit = [&](const obs::MetricsRegistry& reg) {
    reg.for_each([&](const obs::MetricsRegistry::InstrumentView& v) {
      const std::string n{v.name};
      ++audited;
      EXPECT_TRUE(std::regex_match(n, name_re)) << n;
      if (v.counter != nullptr) {
        EXPECT_TRUE(std::regex_match(n, counter_re))
            << n << ": counters must end in _total";
      } else if (v.gauge != nullptr) {
        EXPECT_TRUE(std::regex_match(n, gauge_re))
            << n << ": gauges must name their unit";
      } else if (v.histogram != nullptr) {
        EXPECT_TRUE(std::regex_match(n, histogram_re))
            << n << ": histograms must name their sample unit";
      }
    });
  };
  // A machine registry after a faulting, migrating, evicting run — plus a
  // checkpoint so the chk_* family registers too.
  core::System sys{obs_config()};
  run_oversubscribed_managed(sys);
  (void)chk::Snapshotter::snapshot(sys);
  sys.machine().sync_obs_gauges();
  audit(sys.machine().obs());
  EXPECT_GT(audited, 40u) << "audit saw suspiciously few instruments";
}

// ---------------------------------------------------------------------------
// Causal span tracing.
// ---------------------------------------------------------------------------

TEST(Spans, FaultMigrationEvictionShareTheRootSpan) {
  core::System sys{obs_config()};
  run_oversubscribed_managed(sys);
  const auto& events = sys.events().events();

  std::set<std::uint32_t> fault_spans;
  for (const auto& e : events) {
    if (e.type == sim::EventType::kGpuManagedFault) {
      EXPECT_NE(e.span, 0u) << "managed fault outside any span";
      fault_spans.insert(e.span);
    }
  }
  ASSERT_FALSE(fault_spans.empty());

  // Every migration and eviction in this run is fault-triggered, so each
  // must carry the span of the GPU fault it was servicing.
  std::size_t chained_evictions = 0;
  for (const auto& e : events) {
    switch (e.type) {
      case sim::EventType::kMigrationH2D:
      case sim::EventType::kMigrationD2H:
      case sim::EventType::kEviction:
        EXPECT_NE(e.span, 0u) << sim::to_string(e.type) << " outside any span";
        EXPECT_TRUE(fault_spans.count(e.span))
            << sim::to_string(e.type) << " span " << e.span
            << " does not belong to any GPU fault";
        chained_evictions += e.type == sim::EventType::kEviction;
        break;
      default:
        break;
    }
  }
  EXPECT_GT(chained_evictions, 0u) << "scenario must exercise evictions";
}

TEST(Spans, DistinctFaultsOpenDistinctSpans) {
  core::System sys{obs_config()};
  runtime::Runtime rt{sys};
  core::Buffer b = rt.malloc_managed(4ull << 20);
  (void)rt.launch("two_blocks", 0, [&] {
    auto s = rt.device_span<float>(b);
    s.store(0, 1.0f);
    s.store((2ull << 20) / sizeof(float), 1.0f);
  });
  std::set<std::uint32_t> spans;
  for (const auto& e : sys.events().events()) {
    if (e.type == sim::EventType::kGpuManagedFault) spans.insert(e.span);
  }
  EXPECT_EQ(spans.size(), 2u) << "independent faults must not share a span";
}

TEST(Spans, MigrationRetriesInheritTheFaultSpan) {
  core::SystemConfig cfg = obs_config();
  cfg.faults.enabled = true;
  cfg.faults.seed = 7;
  cfg.faults.migration_batch_fail_prob = 0.5;
  core::System sysf{cfg};
  run_oversubscribed_managed(sysf);
  const auto& events = sysf.events().events();
  std::set<std::uint32_t> fault_spans;
  for (const auto& e : events) {
    if (e.type == sim::EventType::kGpuManagedFault ||
        e.type == sim::EventType::kGpuFirstTouchFault) {
      fault_spans.insert(e.span);
    }
  }
  // Every retry happens inside some causal span. A fault whose own block
  // migration ultimately aborts records no kGpuManagedFault event, so not
  // every retry span can be matched to a fault event — but retries raised
  // while servicing a *completed* fault must carry that fault's span.
  std::size_t retries = 0, rooted = 0;
  for (const auto& e : events) {
    if (e.type != sim::EventType::kFaultMigrationRetry) continue;
    ++retries;
    EXPECT_NE(e.span, 0u) << "retry outside any span";
    rooted += fault_spans.count(e.span);
  }
  EXPECT_GT(retries, 0u) << "fail_prob=0.5 must produce at least one retry";
  EXPECT_GT(rooted, 0u) << "no retry shares a span with the fault it serviced";
}

TEST(Spans, SpanSequenceAdvancesWhileLogDisabled) {
  // Enabling the log must never change simulator decisions, so span ids
  // are consumed identically either way.
  sim::EventLog log;
  { sim::SpanScope s{log}; }
  log.set_enabled(true);
  { sim::SpanScope s{log}; }
  log.record({.time = 1, .type = sim::EventType::kMigrationH2D});
  ASSERT_EQ(log.events().size(), 1u);
  EXPECT_EQ(log.events()[0].span, 0u);  // scope already closed
  {
    sim::SpanScope s{log};
    log.record({.time = 2, .type = sim::EventType::kMigrationH2D});
  }
  EXPECT_EQ(log.events()[1].span, 3u);  // two ids consumed before this one
}

// ---------------------------------------------------------------------------
// Link monitor.
// ---------------------------------------------------------------------------

TEST(LinkMonitor, WindowByteSumsMatchInterconnectTotals) {
  core::SystemConfig cfg = obs_config();
  cfg.link_monitor = true;
  cfg.link_monitor_window = sim::microseconds(20);
  core::System sys{cfg};
  run_oversubscribed_managed(sys);
  sys.link_monitor().stop();
  const auto& samples = sys.link_monitor().samples();
  ASSERT_FALSE(samples.empty());
  std::uint64_t h2d = 0, d2h = 0;
  for (const auto& s : samples) {
    EXPECT_LT(s.t0, s.t1);
    EXPECT_LE(s.h2d_util_permille, 1000u);
    EXPECT_LE(s.d2h_util_permille, 1000u);
    h2d += s.h2d_bytes;
    d2h += s.d2h_bytes;
  }
  core::Machine& m = sys.machine();
  EXPECT_EQ(h2d, m.c2c().bytes_moved(interconnect::Direction::kCpuToGpu));
  EXPECT_EQ(d2h, m.c2c().bytes_moved(interconnect::Direction::kGpuToCpu));
  EXPECT_GT(h2d, 0u);
  EXPECT_GT(sys.link_monitor().peak_h2d_permille(), 0u);
}

TEST(LinkMonitor, WindowsDoNotStraddleACheckpointRestoreCut) {
  // Snapshot a machine mid-window, restore it, and keep driving traffic:
  // the donor's monitor keeps its pre-cut history, and the restored
  // monitor restarts empty with its first window opening AT the cut — no
  // window spans the cut, and the pre-cut byte history is not re-counted
  // into the restored run's first sample.
  core::SystemConfig cfg = obs_config();
  cfg.link_monitor = true;
  cfg.link_monitor_window = sim::microseconds(20);
  core::System sys{cfg};
  run_oversubscribed_managed(sys);
  const sim::Picos cut = sys.now();
  ASSERT_GT(cut, 0);
  const chk::Blob blob = chk::Snapshotter::snapshot(sys);

  std::unique_ptr<core::System> twin = chk::Snapshotter::restore(blob, &sys);
  ASSERT_EQ(twin->now(), cut);
  ASSERT_TRUE(twin->link_monitor().running());
  EXPECT_TRUE(twin->link_monitor().samples().empty())
      << "restored monitor must restart its series empty";

  // Drive fresh traffic on the restored machine.
  const std::uint64_t h2d_at_cut =
      twin->machine().c2c().bytes_moved(interconnect::Direction::kCpuToGpu);
  run_oversubscribed_managed(*twin);
  twin->link_monitor().stop();
  const auto& post = twin->link_monitor().samples();
  ASSERT_FALSE(post.empty());
  std::uint64_t post_h2d = 0;
  for (const auto& s : post) {
    EXPECT_GE(s.t0, cut) << "restored window straddles the cut";
    EXPECT_LT(s.t0, s.t1);
    post_h2d += s.h2d_bytes;
  }
  EXPECT_EQ(post[0].t0, cut) << "first restored window must open at the cut";
  EXPECT_EQ(post_h2d,
            twin->machine().c2c().bytes_moved(
                interconnect::Direction::kCpuToGpu) -
                h2d_at_cut)
      << "restored windows must count exactly the post-cut traffic";

  // The donor side is untouched: stopping it emits a final partial window
  // that ends at the donor's own clock, never beyond the cut.
  sys.link_monitor().stop();
  const auto& pre = sys.link_monitor().samples();
  ASSERT_FALSE(pre.empty());
  for (const auto& s : pre) EXPECT_LE(s.t1, cut);
  EXPECT_EQ(pre.back().t1, cut);
}

// ---------------------------------------------------------------------------
// Enriched trace export.
// ---------------------------------------------------------------------------

TEST(TraceExportEnriched, FlowEventsAndLinkCountersParse) {
  core::SystemConfig cfg = obs_config();
  cfg.link_monitor = true;
  core::System sys{cfg};
  run_oversubscribed_managed(sys);
  sys.link_monitor().stop();
  profile::TraceOptions opts;
  opts.link_samples = &sys.link_monitor().samples();
  const std::string json =
      profile::to_chrome_trace(sys.events(), sys.workload(), opts);
  std::string err;
  ASSERT_TRUE(obs::json_valid(json, &err)) << err;
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos) << "no flow starts";
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos) << "no flow finishes";
  EXPECT_NE(json.find("C2C util (permille)"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceExportEnriched, TenantLanesAppearForStampedEvents) {
  // Synthetic two-tenant log: lane metadata and per-lane routing are purely
  // a function of Event::tenant, so a hand-built log exercises them.
  sim::EventLog log;
  log.set_enabled(true);
  log.set_current_tenant(1);
  log.record({.time = sim::microseconds(1),
              .type = sim::EventType::kGpuManagedFault,
              .va = 0x1000,
              .bytes = 64});
  log.set_current_tenant(2);
  log.record({.time = sim::microseconds(2),
              .type = sim::EventType::kMigrationH2D,
              .va = 0x2000,
              .bytes = 128});
  profile::WorkloadAnalysis wa;
  const std::string json = profile::to_chrome_trace(log, wa, {});
  std::string err;
  ASSERT_TRUE(obs::json_valid(json, &err)) << err;
  EXPECT_NE(json.find("\"Tenant 1 MemSys\""), std::string::npos);
  EXPECT_NE(json.find("\"Tenant 2 MemSys\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":101"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":102"), std::string::npos);
  // With lanes off, both events fall back to the shared MemSys lane.
  profile::TraceOptions flat;
  flat.tenant_lanes = false;
  const std::string shared = profile::to_chrome_trace(log, wa, flat);
  EXPECT_EQ(shared.find("\"Tenant 1 MemSys\""), std::string::npos);
}

}  // namespace
}  // namespace ghum
