#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "fault/status.hpp"
#include "os/address_space.hpp"
#include "os/page_fault.hpp"
#include "os/system_allocator.hpp"

namespace ghum {
namespace {

core::SystemConfig small_config() {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage64K;
  cfg.hbm_capacity = 8ull << 20;
  cfg.ddr_capacity = 64ull << 20;
  cfg.gpu_driver_baseline = 1ull << 20;
  cfg.event_log = true;
  return cfg;
}

TEST(AddressSpace, CreateFindDestroy) {
  os::AddressSpace as;
  os::Vma& v = as.create(1000, os::AllocKind::kSystem, 4096, "a");
  EXPECT_EQ(v.size, 1000u);
  EXPECT_EQ(v.base % 4096, 0u);
  EXPECT_EQ(as.find(v.base + 500), &v);
  EXPECT_EQ(as.find(v.base + 1000), nullptr);  // one past the end
  EXPECT_EQ(as.find_exact(v.base), &v);
  EXPECT_EQ(as.find_exact(v.base + 1), nullptr);
  as.destroy(v.base);
  EXPECT_EQ(as.vma_count(), 0u);
}

TEST(AddressSpace, VmasNeverSharePagesAtAnySupportedSize) {
  os::AddressSpace as;
  os::Vma& a = as.create(10, os::AllocKind::kSystem, 4096, "a");
  os::Vma& b = as.create(10, os::AllocKind::kSystem, 4096, "b");
  // Even at the largest page granularity (2 MiB), the two allocations
  // cannot land in the same page.
  EXPECT_GE(b.base - a.end(), pagetable::kGpuPageSize);
}

TEST(AddressSpace, HostBackingIsPerVmaAndWritable) {
  os::AddressSpace as;
  os::Vma& v = as.create(64, os::AllocKind::kSystem, 4096, "a");
  *v.host_ptr(v.base) = std::byte{0x5a};
  *v.host_ptr(v.base + 63) = std::byte{0xa5};
  EXPECT_EQ(*v.host_ptr(v.base), std::byte{0x5a});
}

TEST(AddressSpace, RssFollowsResidencyDeltas) {
  os::AddressSpace as;
  os::Vma& v = as.create(1 << 20, os::AllocKind::kSystem, 4096, "a");
  as.note_resident_delta(v, 4096, 0);
  as.note_resident_delta(v, 4096, 65536);
  EXPECT_EQ(as.rss_bytes(), 8192u);
  EXPECT_EQ(v.resident_cpu_bytes, 8192u);
  EXPECT_EQ(v.resident_gpu_bytes, 65536u);
  as.note_resident_delta(v, -4096, 0);
  EXPECT_EQ(as.rss_bytes(), 4096u);
}

TEST(AddressSpace, InvalidCreateArguments) {
  os::AddressSpace as;
  EXPECT_THROW(as.create(0, os::AllocKind::kSystem, 4096, "z"),
               std::invalid_argument);
  EXPECT_THROW(as.create(10, os::AllocKind::kSystem, 3, "z"), std::invalid_argument);
}

class FaultTest : public ::testing::Test {
 protected:
  core::Machine m{small_config()};
  os::PageFaultHandler pf{m};
};

TEST_F(FaultTest, CpuFirstTouchPlacesOnCpu) {
  os::Vma& v = m.address_space().create(1 << 20, os::AllocKind::kSystem, 65536, "a");
  const sim::Picos before = m.clock().now();
  EXPECT_EQ(pf.first_touch(v, v.base, mem::Node::kCpu), mem::Node::kCpu);
  EXPECT_GT(m.clock().now(), before);
  EXPECT_EQ(v.resident_cpu_bytes, 65536u);
  EXPECT_EQ(m.events().count(sim::EventType::kCpuFirstTouchFault), 1u);
}

TEST_F(FaultTest, GpuFirstTouchPlacesOnGpuAndCostsMore) {
  os::Vma& v = m.address_space().create(1 << 20, os::AllocKind::kSystem, 65536, "a");
  const sim::Picos t0 = m.clock().now();
  (void)pf.first_touch(v, v.base, mem::Node::kCpu);
  const sim::Picos cpu_cost = m.clock().now() - t0;
  const sim::Picos t1 = m.clock().now();
  EXPECT_EQ(pf.first_touch(v, v.base + 65536, mem::Node::kGpu), mem::Node::kGpu);
  const sim::Picos gpu_cost = m.clock().now() - t1;
  // Section 5.1.2: GPU-origin replayable faults are heavier than CPU minor
  // faults. Both share the page-clearing cost; the handling component
  // differs by the configured ratio.
  EXPECT_GT(gpu_cost, cpu_cost);
  const auto& costs = m.config().costs;
  EXPECT_EQ(gpu_cost - cpu_cost, costs.gpu_replayable_fault - costs.cpu_minor_fault);
  EXPECT_EQ(v.resident_gpu_bytes, 65536u);
}

TEST_F(FaultTest, GpuFirstTouchFallsBackToCpuWhenHbmFull) {
  // Exhaust the GPU (8 MiB capacity, 1 MiB baseline -> 7 MiB free).
  os::Vma& filler =
      m.address_space().create(7ull << 20, os::AllocKind::kGpuOnly, 1 << 21, "f");
  for (std::uint64_t b = filler.base; b < filler.end(); b += 2 << 20) {
    ASSERT_TRUE(m.map_gpu_block(filler, b));
  }
  os::Vma& v = m.address_space().create(1 << 20, os::AllocKind::kSystem, 65536, "a");
  // System memory never evicts: the fault falls back to CPU placement
  // (Section 7: data stays on CPU and is accessed over C2C).
  EXPECT_EQ(pf.first_touch(v, v.base, mem::Node::kGpu), mem::Node::kCpu);
}

TEST_F(FaultTest, HostRegisterPopulatesAllPages) {
  os::Vma& v = m.address_space().create(512 << 10, os::AllocKind::kSystem, 65536, "a");
  (void)pf.first_touch(v, v.base, mem::Node::kCpu);  // one page pre-existing
  EXPECT_TRUE(pf.host_register(v));
  EXPECT_TRUE(v.host_registered);
  EXPECT_EQ(v.resident_cpu_bytes, 512u << 10);
  EXPECT_EQ(m.stats().get("os.host_register.pages"), 7u);  // 8 pages - 1
}

TEST_F(FaultTest, FirstTouchThrowsStatusWhenBothNodesFull) {
  // Fill the GPU (8 MiB capacity minus the 1 MiB driver baseline).
  os::Vma& gfill =
      m.address_space().create(7ull << 20, os::AllocKind::kGpuOnly, 1 << 21, "g");
  for (std::uint64_t b = gfill.base; b < gfill.end(); b += 2 << 20) {
    ASSERT_TRUE(m.map_gpu_block(gfill, b));
  }
  // Fill all 64 MiB of DDR.
  os::Vma& cfill =
      m.address_space().create(64ull << 20, os::AllocKind::kSystem, 65536, "c");
  for (std::uint64_t va = cfill.base; va < cfill.end(); va += 65536) {
    ASSERT_TRUE(m.map_system_page(cfill, va, mem::Node::kCpu));
  }
  // System memory has nowhere left to place the page: the fault surfaces
  // as a Status-carrying error (the process-kill of a real OOM), not an
  // uncontrolled crash or a silent wrong placement.
  os::Vma& v = m.address_space().create(1 << 20, os::AllocKind::kSystem, 65536, "a");
  try {
    (void)pf.first_touch(v, v.base, mem::Node::kCpu);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorOutOfMemory);
  }
  EXPECT_GE(m.stats().get("os.fault.oom"), 1u);
  EXPECT_GE(m.events().count(sim::EventType::kOutOfMemory), 1u);
}

TEST_F(FaultTest, HostRegisterPartialWhenCpuExhausted) {
  // Leave exactly two free 64 KiB CPU pages.
  os::Vma& cfill = m.address_space().create((64ull << 20) - (128 << 10),
                                            os::AllocKind::kSystem, 65536, "c");
  for (std::uint64_t va = cfill.base; va < cfill.end(); va += 65536) {
    ASSERT_TRUE(m.map_system_page(cfill, va, mem::Node::kCpu));
  }
  os::Vma& v = m.address_space().create(256 << 10, os::AllocKind::kSystem, 65536, "a");
  // Registration maps what fits and reports the shortfall instead of
  // terminating; the VMA is not marked registered.
  EXPECT_FALSE(pf.host_register(v));
  EXPECT_FALSE(v.host_registered);
  EXPECT_EQ(v.resident_cpu_bytes, 128u << 10);  // the two pages that fit
  EXPECT_GE(m.stats().get("os.host_register.partial"), 1u);
}

class AllocatorTest : public ::testing::Test {
 protected:
  core::Machine m{small_config()};
  os::PageFaultHandler pf{m};
  os::SystemAllocator alloc{m};
};

TEST_F(AllocatorTest, MallocIsLazy) {
  os::Vma& v = alloc.allocate(4 << 20, "a");
  EXPECT_EQ(v.resident_cpu_bytes, 0u);
  EXPECT_EQ(m.system_pt().mapped_pages(), 0u);
  EXPECT_EQ(m.events().count(sim::EventType::kAllocation), 1u);
}

TEST_F(AllocatorTest, PinnedIsEager) {
  os::Vma& v = alloc.allocate_pinned(256 << 10, "p");
  EXPECT_EQ(v.resident_cpu_bytes, 256u << 10);
  EXPECT_EQ(v.kind, os::AllocKind::kPinnedHost);
}

TEST_F(AllocatorTest, DeallocTearsDownOnlyPresentPages) {
  os::Vma& v = alloc.allocate(1 << 20, "a");
  (void)pf.first_touch(v, v.base, mem::Node::kCpu);
  (void)pf.first_touch(v, v.base + 65536, mem::Node::kCpu);
  alloc.deallocate(v);
  EXPECT_EQ(m.stats().get("os.dealloc.pages"), 2u);
  EXPECT_EQ(m.address_space().vma_count(), 0u);
  EXPECT_EQ(m.frames(mem::Node::kCpu).used(), 0u);
}

TEST_F(AllocatorTest, DeallocCostScalesWithPresentPages) {
  os::Vma& a = alloc.allocate(2 << 20, "a");
  for (std::uint64_t va = a.base; va < a.end(); va += 65536) {
    (void)pf.first_touch(a, va, mem::Node::kCpu);
  }
  const sim::Picos t0 = m.clock().now();
  alloc.deallocate(a);
  const sim::Picos full = m.clock().now() - t0;

  os::Vma& b = alloc.allocate(2 << 20, "b");
  const sim::Picos t1 = m.clock().now();
  alloc.deallocate(b);
  const sim::Picos empty = m.clock().now() - t1;
  EXPECT_GT(full, empty);
}

TEST_F(AllocatorTest, PinnedAllocationUnwindsOnCpuExhaustion) {
  // Leave one free 64 KiB CPU page — not enough for a 256 KiB pinned range.
  os::Vma& cfill = m.address_space().create((64ull << 20) - (64 << 10),
                                            os::AllocKind::kSystem, 65536, "c");
  for (std::uint64_t va = cfill.base; va < cfill.end(); va += 65536) {
    ASSERT_TRUE(m.map_system_page(cfill, va, mem::Node::kCpu));
  }
  const std::uint64_t free_before = m.frames(mem::Node::kCpu).free_bytes();
  const std::size_t vmas_before = m.address_space().vma_count();
  try {
    (void)alloc.allocate_pinned(256 << 10, "p");
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorMemoryAllocation);
  }
  // Fully unwound: no leaked frames, no half-populated VMA left behind.
  EXPECT_EQ(m.frames(mem::Node::kCpu).free_bytes(), free_before);
  EXPECT_EQ(m.address_space().vma_count(), vmas_before);
}

TEST(Machine, MoveSystemPageKeepsLedgersConsistent) {
  core::Machine m{small_config()};
  os::Vma& v = m.address_space().create(1 << 20, os::AllocKind::kSystem, 65536, "a");
  ASSERT_TRUE(m.map_system_page(v, v.base, mem::Node::kCpu));
  const std::uint64_t cpu_used = m.frames(mem::Node::kCpu).used();
  const std::uint64_t gpu_used = m.frames(mem::Node::kGpu).used();
  const std::uint64_t epoch = m.epoch();
  ASSERT_TRUE(m.move_system_page(v, v.base, mem::Node::kGpu));
  EXPECT_EQ(m.frames(mem::Node::kCpu).used(), cpu_used - 65536);
  EXPECT_EQ(m.frames(mem::Node::kGpu).used(), gpu_used + 65536);
  EXPECT_EQ(v.resident_cpu_bytes, 0u);
  EXPECT_EQ(v.resident_gpu_bytes, 65536u);
  EXPECT_GT(m.epoch(), epoch);
}

TEST(Machine, GpuBlockBytesClipsToVmaEnd) {
  core::Machine m{small_config()};
  os::Vma& v = m.address_space().create((2 << 20) + 4096, os::AllocKind::kManaged,
                                        2 << 20, "a");
  EXPECT_EQ(m.gpu_block_bytes(v, v.base), 2u << 20);
  EXPECT_EQ(m.gpu_block_bytes(v, v.base + (2 << 20)), 4096u);
}

TEST(Machine, DoubleMapThrows) {
  core::Machine m{small_config()};
  os::Vma& v = m.address_space().create(1 << 20, os::AllocKind::kSystem, 65536, "a");
  ASSERT_TRUE(m.map_system_page(v, v.base, mem::Node::kCpu));
  EXPECT_THROW((void)m.map_system_page(v, v.base, mem::Node::kCpu), std::logic_error);
  EXPECT_THROW(m.unmap_system_page(v, v.base + 65536), std::logic_error);
}

}  // namespace
}  // namespace ghum
