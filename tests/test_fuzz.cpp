#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "apps/hotspot.hpp"
#include "chk/snapshot.hpp"
#include "net/halo.hpp"
#include "runtime/runtime.hpp"
#include "sim/rng.hpp"

/// Randomized state-machine tests: long deterministic sequences of
/// allocator/driver/access operations, with global invariants re-checked
/// after every step. These are the simulator's crash-and-conservation
/// fuzzers — any residency-ledger desync, frame leak, or page-table
/// inconsistency the directed tests miss should trip here.

namespace ghum {
namespace {

core::SystemConfig fuzz_config(std::uint64_t page) {
  core::SystemConfig cfg;
  cfg.system_page_size = page;
  cfg.hbm_capacity = 8ull << 20;
  cfg.ddr_capacity = 96ull << 20;
  cfg.gpu_driver_baseline = 1ull << 20;
  cfg.access_counter_migration = true;
  cfg.counter_min_interval = sim::microseconds(5);
  return cfg;
}

struct Live {
  core::Buffer buf;
  bool managed = false;
};

void check_invariants(core::System& sys, const std::vector<Live>& live) {
  auto& m = sys.machine();
  // Frames on each node never exceed capacity (allocator guarantees it;
  // the ledger must agree with the VMA-level residency sums).
  std::uint64_t vma_cpu = 0, vma_gpu = 0;
  for (const auto& l : live) {
    const os::Vma* v = m.address_space().find(l.buf.va);
    ASSERT_NE(v, nullptr);
    vma_cpu += v->resident_cpu_bytes;
    vma_gpu += v->resident_gpu_bytes;
  }
  EXPECT_EQ(vma_cpu, m.cpu_rss_bytes());
  EXPECT_EQ(vma_gpu + sys.config().gpu_driver_baseline,
            m.frames(mem::Node::kGpu).used());
  EXPECT_EQ(vma_cpu, m.frames(mem::Node::kCpu).used());
  EXPECT_LE(m.frames(mem::Node::kGpu).used(), sys.config().hbm_capacity);
}

class FuzzSweep : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(FuzzSweep, RandomOpSequenceKeepsLedgersConsistent) {
  const auto [page, seed] = GetParam();
  core::System sys{fuzz_config(page)};
  runtime::Runtime rt{sys};
  sim::Rng rng{static_cast<std::uint64_t>(seed) * 7919 + 13};

  std::vector<Live> live;
  for (int step = 0; step < 300; ++step) {
    const std::uint64_t op = rng.next_below(10);
    if (op < 2 || live.empty()) {
      // Allocate (sizes span partial pages and multiple blocks).
      const std::uint64_t bytes = 1 + rng.next_below(5ull << 20);
      Live l;
      l.managed = rng.next_below(2) == 0;
      l.buf = l.managed ? rt.malloc_managed(bytes) : rt.malloc_system(bytes);
      live.push_back(l);
    } else if (op == 2 && live.size() > 1) {
      const std::size_t idx = rng.next_below(live.size());
      rt.free(live[idx].buf);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (op == 3) {
      // Explicit prefetch of a random sub-range, either direction.
      Live& l = live[rng.next_below(live.size())];
      const std::uint64_t off = rng.next_below(l.buf.bytes);
      const std::uint64_t len = 1 + rng.next_below(l.buf.bytes - off);
      sys.prefetch(l.buf, off, len,
                   rng.next_below(2) ? mem::Node::kGpu : mem::Node::kCpu);
    } else if (op == 4) {
      // Advice (managed-only advice guarded).
      Live& l = live[rng.next_below(live.size())];
      const auto pick = rng.next_below(l.managed ? 5 : 3);
      using MA = core::System::MemAdvice;
      static constexpr MA kAll[] = {MA::kPreferredLocationCpu,
                                    MA::kPreferredLocationGpu,
                                    MA::kUnsetPreferredLocation, MA::kReadMostly,
                                    MA::kUnsetReadMostly};
      sys.mem_advise(l.buf, kAll[pick]);
    } else if (op == 5) {
      // Host sweep over a random range.
      Live& l = live[rng.next_below(live.size())];
      const std::uint64_t n = l.buf.bytes / sizeof(float);
      if (n == 0) continue;
      sys.host_phase_begin("h");
      {
        runtime::Span<float> s{sys, l.buf, mem::Node::kCpu};
        const std::uint64_t start = rng.next_below(n);
        const std::uint64_t count = std::min<std::uint64_t>(n - start, 20'000);
        for (std::uint64_t i = start; i < start + count; ++i) {
          if (rng.next_below(4) == 0) {
            s.store(i, 1.0f);
          } else {
            (void)s.load(i);
          }
        }
      }
      (void)sys.host_phase_end();
    } else {
      // GPU sweep (dense or strided) over a random range.
      Live& l = live[rng.next_below(live.size())];
      const std::uint64_t n = l.buf.bytes / sizeof(float);
      if (n == 0) continue;
      sys.kernel_begin("k");
      {
        runtime::Span<float> s{sys, l.buf, mem::Node::kGpu};
        const std::uint64_t start = rng.next_below(n);
        const std::uint64_t stride = 1 + rng.next_below(64);
        std::uint64_t touched = 0;
        for (std::uint64_t i = start; i < n && touched < 20'000; i += stride) {
          if (rng.next_below(4) == 0) {
            s.store(i, 2.0f);
          } else {
            (void)s.load(i);
          }
          ++touched;
        }
      }
      (void)sys.kernel_end();
    }
    check_invariants(sys, live);
  }
  // Tear everything down: the machine must return to its pristine state.
  for (auto& l : live) rt.free(l.buf);
  EXPECT_EQ(sys.machine().frames(mem::Node::kCpu).used(), 0u);
  EXPECT_EQ(sys.machine().frames(mem::Node::kGpu).used(),
            sys.config().gpu_driver_baseline);
  EXPECT_EQ(sys.machine().system_pt().mapped_pages(), 0u);
  EXPECT_EQ(sys.machine().gpu_pt().mapped_pages(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzSweep,
    ::testing::Combine(::testing::Values(pagetable::kSystemPage4K,
                                         pagetable::kSystemPage64K),
                       ::testing::Range(0, 6)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == pagetable::kSystemPage4K
                             ? "p4k_"
                             : "p64k_") +
             std::to_string(std::get<1>(info.param));
    });

/// Differential fuzz for the batched access path: the same randomized
/// workload runs once with batched accounting and once with the legacy
/// per-access path, under fault injection that bumps the residency epoch
/// while Spans hold cached PageViews (ECC retirements evict resident
/// blocks, denials trigger fallback placement, migrations retry). Any use
/// of a stale cached run would desync the two timelines; they must agree
/// bit for bit on simulated end time and on the full event stream.
TEST(FuzzBatchedDifferential, BatchedAndLegacyShareOneTimelineUnderFaults) {
  struct Outcome {
    sim::Picos end = 0;
    std::uint64_t digest = 0;
    std::size_t ecc_retirements = 0;
  };
  auto run = [](bool batched, std::uint64_t seed) {
    auto cfg = fuzz_config(pagetable::kSystemPage64K);
    cfg.batched_access = batched;
    cfg.event_log = true;
    cfg.faults.enabled = true;
    cfg.faults.frame_alloc_denial_prob = 0.02;
    cfg.faults.migration_batch_fail_prob = 0.05;
    cfg.faults.ecc_events = {{.time = sim::microseconds(50), .bytes = 2ull << 20},
                             {.time = sim::microseconds(400), .bytes = 2ull << 20}};
    cfg.faults.link_degrade = {{.start = sim::microseconds(100),
                                .duration = sim::microseconds(150),
                                .bandwidth_factor = 4.0,
                                .latency_factor = 2.0}};
    core::System sys{cfg};
    runtime::Runtime rt{sys};
    sim::Rng rng{seed};
    std::vector<core::Buffer> live;
    live.push_back(rt.malloc_managed(4 << 20));
    live.push_back(rt.malloc_system(4 << 20));
    for (int step = 0; step < 60; ++step) {
      const std::uint64_t op = rng.next_below(6);
      core::Buffer& b = live[rng.next_below(live.size())];
      const std::uint64_t n = b.bytes / sizeof(float);
      if (op == 0) {
        sys.prefetch(b, 0, b.bytes,
                     rng.next_below(2) ? mem::Node::kGpu : mem::Node::kCpu);
      } else if (op < 3) {
        // Host bulk sweep over a random sub-range.
        sys.host_phase_begin("h");
        {
          runtime::Span<float> s{sys, b, mem::Node::kCpu};
          const std::uint64_t start = rng.next_below(n);
          const std::uint64_t count = std::min<std::uint64_t>(n - start, 40'000);
          if (rng.next_below(2)) {
            std::fill_n(s.store_run(start, count), count, 1.0f);
          } else {
            (void)s.load_run(start, count);
          }
        }
        (void)sys.host_phase_end();
      } else if (op == 3) {
        // Host scalar strided sweep: keeps the per-element path in the mix.
        sys.host_phase_begin("hs");
        {
          runtime::Span<float> s{sys, b, mem::Node::kCpu};
          const std::uint64_t stride = 1 + rng.next_below(32);
          std::uint64_t touched = 0;
          for (std::uint64_t i = rng.next_below(n); i < n && touched < 10'000;
               i += stride, ++touched) {
            (void)s.load(i);
          }
        }
        (void)sys.host_phase_end();
      } else {
        // GPU bulk sweep.
        sys.kernel_begin("k");
        {
          runtime::Span<float> s{sys, b, mem::Node::kGpu};
          const std::uint64_t start = rng.next_below(n);
          const std::uint64_t count = std::min<std::uint64_t>(n - start, 40'000);
          if (rng.next_below(2)) {
            std::fill_n(s.store_run(start, count), count, 2.0f);
          } else {
            (void)s.load_run(start, count);
          }
        }
        (void)sys.kernel_end();
      }
    }
    for (auto& b : live) rt.free(b);
    Outcome out;
    out.end = sys.now();
    out.ecc_retirements = sys.events().count(sim::EventType::kEccRetirement);
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    for (const auto& e : sys.events().events()) {
      mix(static_cast<std::uint64_t>(e.time));
      mix(static_cast<std::uint64_t>(e.type));
      mix(e.va);
      mix(e.bytes);
      mix(e.aux);
    }
    mix(static_cast<std::uint64_t>(out.end));
    out.digest = h;
    return out;
  };
  for (std::uint64_t seed : {11ull, 29ull, 63ull}) {
    const Outcome legacy = run(false, seed);
    const Outcome fast = run(true, seed);
    EXPECT_EQ(legacy.end, fast.end) << "seed " << seed;
    EXPECT_EQ(legacy.digest, fast.digest) << "seed " << seed;
    // The hazard must actually have been exercised: ECC retirements bumped
    // the epoch underneath live Spans in both runs.
    EXPECT_GE(fast.ecc_retirements, 1u) << "seed " << seed;
    EXPECT_EQ(legacy.ecc_retirements, fast.ecc_retirements) << "seed " << seed;
  }
}

/// Crash-point fuzzing for checkpoint/restore: the same randomized op
/// sequence runs straight through, and again with a snapshot/restore cut
/// at a pseudo-random op index (between ops — never inside a kernel). The
/// restored run adopts the donor's buffer backing (host pointers survive)
/// and must finish on the same simulated end time with the same event
/// digest. Any state the Snapshotter forgets to carry — a TLB entry, an
/// access-counter cursor, an LRU position — shifts the continuation's
/// timeline and trips here.
TEST(FuzzCrashPoint, SnapshotRestoreContinueMatchesUninterruptedRun) {
  auto run = [](std::uint64_t seed, bool cut) {
    auto cfg = fuzz_config(pagetable::kSystemPage64K);
    cfg.event_log = true;
    auto sys = std::make_unique<core::System>(cfg);
    auto rt = std::make_unique<runtime::Runtime>(*sys);
    sim::Rng rng{seed * 6271 + 5};
    const int kOps = 80;
    // Drawn in both runs so the op stream is identical with and without
    // the snapshot/restore cut.
    const int cut_draw = 10 + static_cast<int>(rng.next_below(60));
    const int cut_at = cut ? cut_draw : -1;

    std::vector<core::Buffer> live;
    live.push_back(rt->malloc_managed(3 << 20));
    live.push_back(rt->malloc_system(3 << 20));
    for (int step = 0; step < kOps; ++step) {
      if (step == cut_at) {
        const chk::Blob blob = chk::Snapshotter::snapshot(*sys);
        std::unique_ptr<core::System> restored =
            chk::Snapshotter::restore(blob, sys.get());
        rt->rebind(*restored);
        sys = std::move(restored);
      }
      const std::uint64_t op = rng.next_below(6);
      core::Buffer& b = live[rng.next_below(live.size())];
      const std::uint64_t n = b.bytes / sizeof(float);
      if (op == 0) {
        sys->prefetch(b, 0, b.bytes,
                      rng.next_below(2) ? mem::Node::kGpu : mem::Node::kCpu);
      } else if (op < 3) {
        sys->host_phase_begin("h");
        {
          runtime::Span<float> s{*sys, b, mem::Node::kCpu};
          const std::uint64_t start = rng.next_below(n);
          const std::uint64_t count = std::min<std::uint64_t>(n - start, 30'000);
          if (rng.next_below(2)) {
            std::fill_n(s.store_run(start, count), count,
                        static_cast<float>(step));
          } else {
            (void)s.load_run(start, count);
          }
        }
        (void)sys->host_phase_end();
      } else {
        sys->kernel_begin("k");
        {
          runtime::Span<float> s{*sys, b, mem::Node::kGpu};
          const std::uint64_t start = rng.next_below(n);
          const std::uint64_t count = std::min<std::uint64_t>(n - start, 30'000);
          if (rng.next_below(2)) {
            std::fill_n(s.store_run(start, count), count,
                        static_cast<float>(step) * 2);
          } else {
            (void)s.load_run(start, count);
          }
        }
        (void)sys->kernel_end();
      }
    }
    for (auto& b : live) rt->free(b);
    return std::pair{sys->now(), sys->events().digest(sys->now())};
  };
  for (std::uint64_t seed : {3ull, 17ull, 51ull, 88ull}) {
    const auto straight = run(seed, false);
    const auto resumed = run(seed, true);
    EXPECT_EQ(straight.first, resumed.first) << "seed " << seed;
    EXPECT_EQ(straight.second, resumed.second) << "seed " << seed;
  }
}

/// Differential fuzz for the lossy fabric: a 2-node halo exchange runs
/// twice under a *random* drop/corrupt schedule (probabilities and chaos
/// seed themselves drawn per iteration), and must be bit-for-bit
/// reproducible — same fabric digest, same application checksum. Any
/// hidden nondeterminism in the retransmission protocol (an unseeded
/// draw, iteration-order dependence in the per-link RNG map, fate
/// streams coupling across links) trips here where the directed tests'
/// fixed schedules would not.
TEST(FuzzLossyFabric, RandomChaosScheduleIsReproducible) {
  auto halo_cfg = [] {
    core::SystemConfig cfg;
    cfg.system_page_size = pagetable::kSystemPage64K;
    cfg.hbm_capacity = 16ull << 20;
    cfg.ddr_capacity = 256ull << 20;
    cfg.gpu_driver_baseline = 1ull << 20;
    cfg.event_log = true;
    return cfg;
  };
  sim::Rng meta{0xC4A05ull};
  for (int iter = 0; iter < 4; ++iter) {
    net::MultiNodeConfig mc;
    mc.nodes = 2;
    mc.mode = apps::MemMode::kManaged;
    mc.node_config = halo_cfg();
    mc.messages.enabled = true;
    mc.messages.seed = meta.next_u64();
    mc.messages.drop_prob =
        static_cast<double>(meta.next_below(40)) / 100.0;  // [0, 0.39]
    mc.messages.corrupt_prob =
        static_cast<double>(meta.next_below(30)) / 100.0;  // [0, 0.29]
    apps::HotspotConfig h;
    h.rows = 64;
    h.cols = 64;
    h.iterations = 3;
    const net::MultiNodeResult a = net::run_hotspot_halo(mc, h);
    const net::MultiNodeResult b = net::run_hotspot_halo(mc, h);
    EXPECT_EQ(a.digest, b.digest) << "iter " << iter;
    EXPECT_EQ(a.checksum, b.checksum) << "iter " << iter;
    EXPECT_EQ(a.makespan, b.makespan) << "iter " << iter;
  }
}

/// The two reliability-protocol error codes round-trip through
/// to_string like every other status (fleet logs print them verbatim).
TEST(FuzzLossyFabric, NewStatusCodesRoundTrip) {
  EXPECT_EQ(to_string(Status::kErrorRetransmitExhausted),
            "retransmit budget exhausted");
  EXPECT_EQ(to_string(Status::kErrorDataCorruption),
            "data corruption detected");
  EXPECT_NE(to_string(Status::kErrorRetransmitExhausted),
            to_string(Status::kErrorDataCorruption));
}

TEST(FuzzDeterminism, SameSeedSameSimulatedTimeline) {
  auto run = [](int seed) {
    core::System sys{fuzz_config(pagetable::kSystemPage64K)};
    runtime::Runtime rt{sys};
    sim::Rng rng{static_cast<std::uint64_t>(seed)};
    core::Buffer b = rt.malloc_managed(4 << 20);
    for (int i = 0; i < 50; ++i) {
      sys.kernel_begin("k");
      {
        runtime::Span<float> s{sys, b, mem::Node::kGpu};
        for (int j = 0; j < 1000; ++j) {
          s.store(rng.next_below(b.bytes / 4), 1.f);
        }
      }
      (void)sys.kernel_end();
    }
    return sys.now();
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace ghum
