#include <gtest/gtest.h>

#include <cstdint>
#include <ios>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "apps/hotspot.hpp"
#include "apps/srad.hpp"
#include "chk/snapshot.hpp"
#include "runtime/runtime.hpp"

/// Checkpoint/restore tests (DESIGN.md Section 10): blob round trips, header
/// validation, and the core replay-equivalence guarantee — a run snapshotted
/// mid-flight, restored into a fresh System, and continued must be
/// bit-identical (same EventLog digest, same simulated end time) to the
/// uninterrupted run.

namespace ghum {
namespace {

core::SystemConfig chk_cfg() {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage64K;
  cfg.hbm_capacity = 16ull << 20;
  cfg.ddr_capacity = 256ull << 20;
  cfg.gpu_driver_baseline = 1ull << 20;
  cfg.event_log = true;
  cfg.access_counter_migration = true;
  cfg.counter_min_interval = sim::microseconds(5);
  return cfg;
}

apps::HotspotConfig small_hotspot() {
  apps::HotspotConfig h;
  h.rows = 128;
  h.cols = 128;
  h.iterations = 3;
  return h;
}

struct RunOutcome {
  sim::Picos end = 0;
  std::uint64_t digest = 0;
  std::uint64_t checksum = 0;
};

/// Uninterrupted reference run.
RunOutcome run_straight(apps::MemMode mode) {
  core::System sys{chk_cfg()};
  runtime::Runtime rt{sys};
  const apps::AppReport rep = apps::run_hotspot(rt, mode, small_hotspot());
  return {sys.now(), sys.events().digest(sys.now()), rep.checksum};
}

/// Same run, but snapshotted after \p snap_steps coroutine steps, restored
/// into a fresh System (donor adoption + Runtime::rebind), and continued
/// there. The original System is destroyed before the continuation runs so
/// any surviving pointer into it would be caught by ASan/UBSan builds.
RunOutcome run_interrupted(apps::MemMode mode, int snap_steps) {
  auto sys = std::make_unique<core::System>(chk_cfg());
  auto rt = std::make_unique<runtime::Runtime>(*sys);
  apps::AppCoro coro = apps::hotspot_steps(*rt, mode, small_hotspot());

  bool alive = true;
  for (int i = 0; i < snap_steps && alive; ++i) alive = coro.step();

  const chk::Blob blob = chk::Snapshotter::snapshot(*sys);
  std::unique_ptr<core::System> restored =
      chk::Snapshotter::restore(blob, sys.get());
  rt->rebind(*restored);
  sys.reset();  // the donor dies; the coroutine must not miss it

  while (alive) alive = coro.step();
  const apps::AppReport& rep = coro.report();
  return {restored->now(), restored->events().digest(restored->now()),
          rep.checksum};
}

TEST(ChkRoundTrip, RestoredMachineCarriesIdenticalState) {
  core::System sys{chk_cfg()};
  runtime::Runtime rt{sys};
  (void)apps::run_hotspot(rt, apps::MemMode::kManaged, small_hotspot());

  const chk::Blob blob = chk::Snapshotter::snapshot(sys);
  std::unique_ptr<core::System> twin = chk::Snapshotter::restore(blob);

  EXPECT_EQ(twin->now(), sys.now());
  EXPECT_EQ(chk::Snapshotter::state_digest(*twin),
            chk::Snapshotter::state_digest(sys));
  // Re-serializing the twin reproduces the payload bit for bit.
  const chk::Blob again = chk::Snapshotter::snapshot(*twin);
  EXPECT_EQ(chk::Snapshotter::blob_digest(again),
            chk::Snapshotter::blob_digest(blob));
  EXPECT_EQ(again, blob);
}

TEST(ChkRoundTrip, SnapshotIsStableAcrossIdenticalRuns) {
  auto digest_of_run = [] {
    core::System sys{chk_cfg()};
    runtime::Runtime rt{sys};
    (void)apps::run_hotspot(rt, apps::MemMode::kSystem, small_hotspot());
    return chk::Snapshotter::state_digest(sys);
  };
  EXPECT_EQ(digest_of_run(), digest_of_run());
}

class ChkReplay : public ::testing::TestWithParam<apps::MemMode> {};

TEST_P(ChkReplay, ContinuedRunIsBitIdenticalToUninterrupted) {
  const apps::MemMode mode = GetParam();
  const RunOutcome straight = run_straight(mode);
  for (int snap_steps : {1, 2, 4}) {
    const RunOutcome resumed = run_interrupted(mode, snap_steps);
    EXPECT_EQ(resumed.end, straight.end) << "snap at step " << snap_steps;
    EXPECT_EQ(resumed.digest, straight.digest) << "snap at step " << snap_steps;
    EXPECT_EQ(resumed.checksum, straight.checksum)
        << "snap at step " << snap_steps;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ChkReplay,
                         ::testing::Values(apps::MemMode::kExplicit,
                                           apps::MemMode::kManaged,
                                           apps::MemMode::kSystem),
                         [](const auto& info) {
                           return std::string{apps::to_string(info.param)};
                         });

TEST(ChkCompat, Version1BlobRestoresBitIdentical) {
  core::System sys{chk_cfg()};
  runtime::Runtime rt{sys};
  (void)apps::run_hotspot(rt, apps::MemMode::kManaged, small_hotspot());
  // A contiguous first-touched region: one extent, 64 resident pages.
  const core::Buffer big = sys.sys_malloc(4ull << 20, "contiguous");
  for (std::uint64_t off = 0; off < big.bytes; off += chk_cfg().system_page_size)
    (void)sys.resolve(big.va + off, mem::Node::kCpu);

  // The legacy encoding (per-page page tables, unconditional VMA bytes)
  // must still restore to the same machine: loading per-page entries into
  // the extent map coalesces them back to the canonical runs.
  const chk::Blob legacy = chk::Snapshotter::snapshot(sys, /*version=*/1);
  std::unique_ptr<core::System> twin = chk::Snapshotter::restore(legacy);
  EXPECT_EQ(twin->now(), sys.now());
  EXPECT_EQ(chk::Snapshotter::state_digest(*twin),
            chk::Snapshotter::state_digest(sys));
  // Re-serializing the twin at the current version matches the original's
  // current-version blob bit for bit.
  EXPECT_EQ(chk::Snapshotter::snapshot(*twin), chk::Snapshotter::snapshot(sys));
  // A version-1 blob is strictly larger: it spends one record per page
  // where the extent encoding spends one per run.
  EXPECT_GT(legacy.size(), chk::Snapshotter::snapshot(sys).size());
}

TEST(ChkCompat, Version1CannotDescribeNonMaterializedBacking) {
  core::SystemConfig cfg = chk_cfg();
  cfg.materialize_backing = false;
  cfg.event_log = false;
  core::System sys{cfg};
  core::Buffer b = sys.sys_malloc(1 << 20, "virtual-only");
  (void)b;
  // No byte image exists, so the v1 format (unconditional VMA bytes) must
  // refuse rather than serialize garbage...
  EXPECT_THROW((void)chk::Snapshotter::snapshot(sys, /*version=*/1),
               StatusError);
  // ...while the current format round-trips the data-less VMA.
  const chk::Blob blob = chk::Snapshotter::snapshot(sys);
  std::unique_ptr<core::System> twin = chk::Snapshotter::restore(blob);
  EXPECT_EQ(chk::Snapshotter::state_digest(*twin),
            chk::Snapshotter::state_digest(sys));
}

TEST(ChkCompat, UnwritableVersionsAreRejected) {
  core::System sys{chk_cfg()};
  EXPECT_THROW((void)chk::Snapshotter::snapshot(sys, 0), StatusError);
  EXPECT_THROW((void)chk::Snapshotter::snapshot(sys, chk::kFormatVersion + 1),
               StatusError);
}

TEST(ChkRoundTrip, MaximallyFragmentedAddressSpaceRoundTrips) {
  core::System sys{chk_cfg()};
  runtime::Runtime rt{sys};
  const std::uint64_t page = sys.config().system_page_size;
  core::Buffer b = rt.malloc_system(32 * page, "frag");
  ASSERT_EQ(sys.host_register(b), Status::kSuccess);
  // Alternate every other page to the GPU: worst-case fragmentation, one
  // extent per page across the whole allocation.
  for (std::uint64_t off = 0; off < b.bytes; off += 2 * page) {
    sys.prefetch(b, off, page, mem::Node::kGpu);
  }
  ASSERT_GE(sys.machine().system_pt().run_count(), 31u);

  const chk::Blob blob = chk::Snapshotter::snapshot(sys);
  std::unique_ptr<core::System> twin = chk::Snapshotter::restore(blob);
  EXPECT_EQ(chk::Snapshotter::state_digest(*twin),
            chk::Snapshotter::state_digest(sys));
  EXPECT_EQ(twin->machine().system_pt().run_count(),
            sys.machine().system_pt().run_count());
  EXPECT_EQ(chk::Snapshotter::snapshot(*twin), blob);
  // The legacy encoding agrees on the same machine even at maximal
  // fragmentation (every run is a single page).
  std::unique_ptr<core::System> legacy_twin =
      chk::Snapshotter::restore(chk::Snapshotter::snapshot(sys, /*version=*/1));
  EXPECT_EQ(chk::Snapshotter::state_digest(*legacy_twin),
            chk::Snapshotter::state_digest(sys));
  rt.free(b);
}

TEST(ChkValidation, RejectsCorruptTruncatedAndAlienBlobs) {
  core::System sys{chk_cfg()};
  runtime::Runtime rt{sys};
  core::Buffer b = rt.malloc_managed(1 << 20);
  (void)b;
  chk::Blob blob = chk::Snapshotter::snapshot(sys);

  // Flipped payload byte: digest check trips.
  chk::Blob corrupt = blob;
  corrupt.back() ^= 0x5a;
  EXPECT_THROW((void)chk::Snapshotter::restore(corrupt), StatusError);

  // Truncated payload: size check trips.
  chk::Blob trunc{blob.begin(), blob.begin() + 40};
  EXPECT_THROW((void)chk::Snapshotter::restore(trunc), StatusError);

  // Truncated below even the header: both entry points reject it.
  chk::Blob stub{blob.begin(), blob.begin() + 10};
  EXPECT_THROW((void)chk::Snapshotter::restore(stub), StatusError);
  EXPECT_THROW((void)chk::Snapshotter::blob_digest(stub), StatusError);

  // Alien magic.
  chk::Blob alien = blob;
  alien[0] ^= 0xff;
  EXPECT_THROW((void)chk::Snapshotter::restore(alien), StatusError);

  // Unsupported format version. The payload digest does not cover the
  // header, so this exercises the version check itself (offset 8 is the
  // version word, io.hpp).
  for (const std::uint8_t v : {std::uint8_t{0},
                               std::uint8_t(chk::kFormatVersion + 1)}) {
    chk::Blob vers = blob;
    vers[8] = v;
    EXPECT_THROW((void)chk::Snapshotter::restore(vers), StatusError)
        << "version " << int{v};
  }
}

TEST(ChkValidation, SnapshotInsideOpenKernelThrows) {
  core::System sys{chk_cfg()};
  sys.kernel_begin("k");
  try {
    (void)chk::Snapshotter::snapshot(sys);
    FAIL() << "snapshot inside a kernel must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorInvalidValue);
  }
  (void)sys.kernel_end();
}

TEST(ChkDonor, HostPointersSurviveRestoreViaDonorAdoption) {
  auto sys = std::make_unique<core::System>(chk_cfg());
  runtime::Runtime rt{*sys};
  core::Buffer b = rt.malloc_system(1 << 20, "probe");
  sys->host_phase_begin("w");
  {
    runtime::Span<std::uint64_t> s{*sys, b, mem::Node::kCpu};
    s.store(7, 0xfeedfaceull);
  }
  (void)sys->host_phase_end();

  const chk::Blob blob = chk::Snapshotter::snapshot(*sys);
  std::unique_ptr<core::System> restored =
      chk::Snapshotter::restore(blob, sys.get());
  rt.rebind(*restored);
  sys.reset();

  restored->host_phase_begin("r");
  {
    runtime::Span<std::uint64_t> s{*restored, b, mem::Node::kCpu};
    EXPECT_EQ(s.load(7), 0xfeedfaceull);
  }
  (void)restored->host_phase_end();
  rt.free(b);
}

TEST(StatusStrings, EveryCodeHasADistinctName) {
  const std::vector<Status> all = {
      Status::kSuccess,
      Status::kErrorMemoryAllocation,
      Status::kErrorOutOfMemory,
      Status::kErrorInvalidValue,
      Status::kErrorDoubleFree,
      Status::kErrorEccUncorrectable,
      Status::kErrorGpuReset,
      Status::kErrorUnrecoverable,
      Status::kErrorTimeout,
      Status::kErrorNodeLost,
      Status::kErrorDeadlineExceeded,
  };
  // Round trip: every code maps to a unique, non-placeholder string, and
  // the string maps back to exactly one code.
  for (std::size_t i = 0; i < all.size(); ++i) {
    const std::string_view name = to_string(all[i]);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown");
    for (std::size_t j = 0; j < all.size(); ++j) {
      if (i != j) EXPECT_NE(name, to_string(all[j]));
    }
  }
  EXPECT_EQ(to_string(Status::kErrorGpuReset), "GPU channel reset");
  EXPECT_EQ(to_string(Status::kErrorUnrecoverable), "unrecoverable");
  EXPECT_EQ(to_string(Status::kErrorTimeout), "watchdog timeout");
  EXPECT_EQ(to_string(Status::kErrorNodeLost), "node lost");
  EXPECT_EQ(to_string(Status::kErrorDeadlineExceeded), "deadline exceeded");
}

/// Corruption fuzz for restore(): a malformed blob must always surface a
/// StatusError — never crash, never hand back a machine, and never touch
/// the donor. The blob layout is a 28-byte header (magic, version, payload
/// digest, payload size) followed by the digest-covered payload, so every
/// truncation and every single-byte flip lands in validated territory.
class ChkFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = std::make_unique<core::System>(chk_cfg());
    rt_ = std::make_unique<runtime::Runtime>(*sys_);
    probe_ = rt_->malloc_managed(256 << 10);
    // Fragment the system page table (alternate pages CPU/GPU) so the
    // fuzzed payload contains a multi-run extent section — flips and
    // truncations land inside the run records too.
    const std::uint64_t page = sys_->config().system_page_size;
    frag_ = rt_->malloc_system(8 * page, "frag");
    ASSERT_EQ(sys_->host_register(frag_), Status::kSuccess);
    for (std::uint64_t off = 0; off < frag_.bytes; off += 2 * page) {
      sys_->prefetch(frag_, off, page, mem::Node::kGpu);
    }
    blob_ = chk::Snapshotter::snapshot(*sys_);
    ASSERT_GT(blob_.size(), 28u);
  }

  std::unique_ptr<core::System> sys_;
  std::unique_ptr<runtime::Runtime> rt_;
  core::Buffer probe_;
  core::Buffer frag_;
  chk::Blob blob_;
};

TEST_F(ChkFuzz, EveryTruncationIsRejected) {
  // Every length through the header byte by byte, then strided through the
  // payload (stride coprime with 8 so cuts land at every field offset).
  for (std::size_t len = 0; len < blob_.size();
       len += (len < 64 ? 1 : 97)) {
    chk::Blob t{blob_.begin(), blob_.begin() + static_cast<std::ptrdiff_t>(len)};
    EXPECT_THROW((void)chk::Snapshotter::restore(t), StatusError)
        << "truncated to " << len << " of " << blob_.size() << " bytes";
  }
}

TEST_F(ChkFuzz, EverySingleByteFlipIsRejected) {
  // Every header byte plus strided payload positions, several flip masks.
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < 64 && i < blob_.size(); ++i) positions.push_back(i);
  for (std::size_t i = 64; i < blob_.size(); i += 131) positions.push_back(i);
  positions.push_back(blob_.size() - 1);
  for (const std::size_t pos : positions) {
    for (const std::uint8_t mask : {0x01, 0x80, 0xff}) {
      chk::Blob flipped = blob_;
      flipped[pos] ^= mask;
      EXPECT_THROW((void)chk::Snapshotter::restore(flipped), StatusError)
          << "flip 0x" << std::hex << int{mask} << " at byte " << std::dec
          << pos;
    }
  }
}

TEST_F(ChkFuzz, LegacyVersionBlobCorruptionIsRejectedToo) {
  // The version-1 compat loader gets the same treatment: strided flips and
  // truncations of a legacy blob must always surface StatusError.
  const chk::Blob legacy = chk::Snapshotter::snapshot(*sys_, /*version=*/1);
  for (std::size_t pos = 0; pos < legacy.size(); pos += 157) {
    chk::Blob flipped = legacy;
    flipped[pos] ^= 0xff;
    EXPECT_THROW((void)chk::Snapshotter::restore(flipped), StatusError)
        << "flip at byte " << pos;
  }
  for (std::size_t len = 0; len < legacy.size();
       len += (len < 64 ? 1 : 211)) {
    chk::Blob t{legacy.begin(), legacy.begin() + static_cast<std::ptrdiff_t>(len)};
    EXPECT_THROW((void)chk::Snapshotter::restore(t), StatusError)
        << "truncated to " << len;
  }
  // Pristine, it restores bit-identically.
  std::unique_ptr<core::System> twin = chk::Snapshotter::restore(legacy);
  EXPECT_EQ(chk::Snapshotter::state_digest(*twin),
            chk::Snapshotter::state_digest(*sys_));
}

TEST_F(ChkFuzz, FailedRestoreLeavesTheDonorIntact) {
  const std::uint64_t before = chk::Snapshotter::state_digest(*sys_);
  chk::Blob corrupt = blob_;
  corrupt[corrupt.size() / 2] ^= 0x40;
  // Validation precedes donor adoption: a rejected blob must not have
  // partially moved the donor's backing state.
  EXPECT_THROW((void)chk::Snapshotter::restore(corrupt, sys_.get()),
               StatusError);
  EXPECT_EQ(chk::Snapshotter::state_digest(*sys_), before);
  // The donor is still fully serviceable: a clean restore from it works.
  std::unique_ptr<core::System> twin =
      chk::Snapshotter::restore(blob_, sys_.get());
  EXPECT_EQ(chk::Snapshotter::state_digest(*twin), before);
}

}  // namespace
}  // namespace ghum
