#include <gtest/gtest.h>

#include "apps/hotspot.hpp"
#include "tenant/scheduler.hpp"

/// Recovery-ladder tests: GPU-reset crash faults under the co-scheduler,
/// bounded restart with replay, watchdog stall detection, budget-exhausted
/// graceful failure, and sibling integrity (a crashing tenant must not
/// corrupt its co-tenants' results).

namespace ghum {
namespace {

core::SystemConfig recovery_cfg() {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage64K;
  cfg.hbm_capacity = 16ull << 20;
  cfg.ddr_capacity = 256ull << 20;
  cfg.gpu_driver_baseline = 1ull << 20;
  cfg.event_log = true;
  return cfg;
}

apps::HotspotConfig small_hotspot(std::uint64_t seed = 42) {
  apps::HotspotConfig h;
  h.rows = 128;
  h.cols = 128;
  h.iterations = 3;
  h.seed = seed;
  return h;
}

tenant::JobSpec hotspot_spec(std::uint64_t seed = 42) {
  tenant::JobSpec spec;
  spec.name = "hotspot";
  spec.mode = apps::MemMode::kManaged;
  spec.footprint_bytes = 1ull << 20;
  spec.make = [seed](runtime::Runtime& rt) {
    return apps::hotspot_steps(rt, apps::MemMode::kManaged,
                               small_hotspot(seed));
  };
  return spec;
}

/// A job that yields forever without ever touching the machine: zero
/// simulated progress per quantum — exactly what the stall watchdog hunts.
apps::AppCoro stuck_steps(runtime::Runtime&) {
  for (;;) co_yield 0;
}

tenant::JobSpec stuck_spec() {
  tenant::JobSpec spec;
  spec.name = "stuck";
  spec.footprint_bytes = 0;
  spec.make = [](runtime::Runtime& rt) { return stuck_steps(rt); };
  return spec;
}

/// Simulated end time of one hotspot job run solo (to aim crash faults at
/// the middle of the run).
sim::Picos solo_end_time() {
  core::System sys{recovery_cfg()};
  tenant::Scheduler sched{sys, {}};
  (void)sched.submit(hotspot_spec());
  sched.run_all();
  return sys.now();
}

TEST(RecoveryGpuReset, WithoutRecoveryTheJobFailsWithGpuReset) {
  auto cfg = recovery_cfg();
  cfg.faults.enabled = true;
  cfg.faults.gpu_resets = {{.time = solo_end_time() / 2}};
  core::System sys{cfg};
  tenant::Scheduler sched{sys, {}};
  tenant::TenantId id = tenant::kNoTenant;
  (void)sched.submit(hotspot_spec(), &id);
  sched.run_all();
  EXPECT_EQ(sched.job(id).state, tenant::JobState::kFailed);
  EXPECT_EQ(sched.job(id).status, Status::kErrorGpuReset);
  EXPECT_EQ(sys.events().count(sim::EventType::kGpuReset), 1u);
}

TEST(RecoveryGpuReset, RestartReplaysTheJobToTheSameResult) {
  const std::uint64_t want = [] {
    core::System sys{recovery_cfg()};
    tenant::Scheduler sched{sys, {}};
    (void)sched.submit(hotspot_spec());
    sched.run_all();
    return sched.job(1).report.checksum;
  }();

  auto cfg = recovery_cfg();
  cfg.faults.enabled = true;
  cfg.faults.gpu_resets = {{.time = solo_end_time() / 2}};
  core::System sys{cfg};
  tenant::SchedulerConfig scfg;
  scfg.recovery.enabled = true;
  scfg.recovery.max_restarts = 2;
  tenant::Scheduler sched{sys, scfg};
  tenant::TenantId id = tenant::kNoTenant;
  (void)sched.submit(hotspot_spec(), &id);
  sched.run_all();

  const tenant::Job& j = sched.job(id);
  EXPECT_EQ(j.state, tenant::JobState::kFinished);
  EXPECT_EQ(j.report.checksum, want);
  EXPECT_EQ(j.restarts, 1u);
  EXPECT_GT(j.replayed, 0);
  EXPECT_EQ(sys.events().count(sim::EventType::kJobRestart), 1u);
  EXPECT_EQ(sys.machine()
                .obs()
                .counter("ghum_recovery_restarts_total",
                         {{"cause", "gpu_reset"}})
                .value(),
            1u);
  EXPECT_EQ(sys.stats().get("recovery.restarts"), 1u);
}

TEST(RecoveryGpuReset, RepeatedResetsExhaustTheBudgetAndFailUnrecoverably) {
  const sim::Picos mid = solo_end_time() / 2;
  auto cfg = recovery_cfg();
  cfg.faults.enabled = true;
  // One reset per incarnation: each replay crashes shortly after its
  // restart (the global clock keeps moving forward, so the schedule is
  // spaced tighter than any incarnation's time to completion).
  cfg.faults.gpu_resets = {{.time = mid},
                           {.time = mid + mid / 4},
                           {.time = mid + mid / 2},
                           {.time = mid + (3 * mid) / 4}};
  core::System sys{cfg};
  tenant::SchedulerConfig scfg;
  scfg.recovery.enabled = true;
  scfg.recovery.max_restarts = 2;
  tenant::Scheduler sched{sys, scfg};
  tenant::TenantId id = tenant::kNoTenant;
  (void)sched.submit(hotspot_spec(), &id);
  sched.run_all();  // must terminate — never hang

  const tenant::Job& j = sched.job(id);
  EXPECT_EQ(j.state, tenant::JobState::kFailed);
  EXPECT_EQ(j.status, Status::kErrorUnrecoverable);
  EXPECT_EQ(j.restarts, 2u);
  EXPECT_EQ(sys.stats().get("recovery.failed_jobs"), 1u);
}

TEST(RecoveryIntegrity, CrashingTenantDoesNotCorruptItsSibling) {
  auto co_run = [](bool crash) {
    auto cfg = recovery_cfg();
    if (crash) {
      cfg.faults.enabled = true;
      cfg.faults.gpu_resets = {{.time = solo_end_time() / 2}};
    }
    core::System sys{cfg};
    tenant::SchedulerConfig scfg;
    scfg.recovery.enabled = true;
    tenant::Scheduler sched{sys, scfg};
    (void)sched.submit(hotspot_spec(42));
    (void)sched.submit(hotspot_spec(43));
    sched.run_all();
    return std::pair{sched.job(1).report.checksum,
                     sched.job(2).report.checksum};
  };
  const auto clean = co_run(false);
  const auto crashed = co_run(true);
  // Both jobs still produce their correct outputs; the reset victim
  // replayed to the same answer and its sibling never noticed.
  EXPECT_EQ(crashed.first, clean.first);
  EXPECT_EQ(crashed.second, clean.second);
}

TEST(RecoveryWatchdog, StallTripsTimeoutThenBudgetExhaustionFailsTheJob) {
  core::System sys{recovery_cfg()};
  tenant::SchedulerConfig scfg;
  scfg.recovery.enabled = true;
  scfg.recovery.max_restarts = 1;
  scfg.recovery.stall_quanta = 4;
  tenant::Scheduler sched{sys, scfg};
  tenant::TenantId id = tenant::kNoTenant;
  (void)sched.submit(stuck_spec(), &id);
  sched.run_all();  // terminates: watchdog + restart budget bound the loop

  const tenant::Job& j = sched.job(id);
  EXPECT_EQ(j.state, tenant::JobState::kFailed);
  EXPECT_EQ(j.status, Status::kErrorUnrecoverable);
  EXPECT_EQ(j.restarts, 1u);
  EXPECT_EQ(sys.stats().get("recovery.watchdog_trips"), 2u);
  // The stuck job never advanced the clock — and neither did recovery.
  EXPECT_EQ(sys.now(), 0);
}

TEST(RecoveryBudget, ZeroRestartBudgetFailsGracefullyOnTheFirstCrash) {
  auto cfg = recovery_cfg();
  cfg.faults.enabled = true;
  cfg.faults.gpu_resets = {{.time = solo_end_time() / 2}};
  core::System sys{cfg};
  tenant::SchedulerConfig scfg;
  scfg.recovery.enabled = true;
  scfg.recovery.max_restarts = 0;  // recovery on, but no replay allowance
  tenant::Scheduler sched{sys, scfg};
  tenant::TenantId id = tenant::kNoTenant;
  (void)sched.submit(hotspot_spec(), &id);
  sched.run_all();  // must terminate immediately at the crash — no replay

  const tenant::Job& j = sched.job(id);
  EXPECT_EQ(j.state, tenant::JobState::kFailed);
  // Exhausted budget on a restartable cause escalates, so callers can tell
  // "crashed with no budget" from "crashed once, fatal by nature".
  EXPECT_EQ(j.status, Status::kErrorUnrecoverable);
  EXPECT_EQ(j.restarts, 0u);
  EXPECT_EQ(sys.events().count(sim::EventType::kJobRestart), 0u);
  EXPECT_EQ(sys.stats().get("recovery.restarts"), 0u);
  EXPECT_EQ(sys.stats().get("recovery.failed_jobs"), 1u);
}

/// Yields \p stalls zero-progress quanta, then finishes cleanly — a job
/// whose remaining runtime is shorter than the watchdog interval.
apps::AppCoro briefly_stalled_steps(runtime::Runtime&, int stalls) {
  for (int i = 0; i < stalls; ++i) co_yield 0;
  apps::AppReport rep;
  rep.app = "briefly-stalled";
  rep.checksum = 0x5717ull;
  co_return rep;
}

TEST(RecoveryWatchdog, IntervalLongerThanTheRemainingJobNeverTrips) {
  core::System sys{recovery_cfg()};
  tenant::SchedulerConfig scfg;
  scfg.recovery.enabled = true;
  // The job stalls for 3 quanta then completes; the watchdog needs 4
  // consecutive zero-progress quanta to fire. The run ends first — a
  // spurious timeout here would fail a perfectly healthy job.
  scfg.recovery.stall_quanta = 4;
  scfg.recovery.max_restarts = 0;  // any trip would be terminal
  tenant::Scheduler sched{sys, scfg};
  tenant::JobSpec spec;
  spec.name = "briefly-stalled";
  spec.footprint_bytes = 0;
  spec.make = [](runtime::Runtime& rt) { return briefly_stalled_steps(rt, 3); };
  tenant::TenantId id = tenant::kNoTenant;
  (void)sched.submit(std::move(spec), &id);
  sched.run_all();

  const tenant::Job& j = sched.job(id);
  EXPECT_EQ(j.state, tenant::JobState::kFinished);
  EXPECT_EQ(j.report.checksum, 0x5717ull);
  EXPECT_EQ(j.restarts, 0u);
  EXPECT_EQ(sys.stats().get("recovery.watchdog_trips"), 0u);
}

TEST(RecoveryWatchdog, HealthyJobsNeverTripTheWatchdog) {
  core::System sys{recovery_cfg()};
  tenant::SchedulerConfig scfg;
  scfg.recovery.enabled = true;
  scfg.recovery.stall_quanta = 2;
  tenant::Scheduler sched{sys, scfg};
  (void)sched.submit(hotspot_spec());
  sched.run_all();
  EXPECT_EQ(sched.job(1).state, tenant::JobState::kFinished);
  EXPECT_EQ(sys.stats().get("recovery.watchdog_trips"), 0u);
}

TEST(RecoveryCheckpoint, PeriodicVerifiedCheckpointsRoundTripUnderCoRun) {
  core::System sys{recovery_cfg()};
  tenant::SchedulerConfig scfg;
  scfg.recovery.enabled = true;
  scfg.recovery.checkpoint_period_quanta = 3;
  scfg.recovery.verify_checkpoints = true;
  tenant::Scheduler sched{sys, scfg};
  (void)sched.submit(hotspot_spec(42));
  (void)sched.submit(hotspot_spec(43));
  sched.run_all();  // verify_checkpoints throws on any round-trip divergence
  EXPECT_EQ(sched.job(1).state, tenant::JobState::kFinished);
  EXPECT_EQ(sched.job(2).state, tenant::JobState::kFinished);
  EXPECT_GE(sys.stats().get("recovery.checkpoints"), 1u);
  ASSERT_NE(sched.recovery(), nullptr);
  EXPECT_FALSE(sched.recovery()->last_checkpoint().empty());
}

TEST(RecoverySoloEquivalence, RecoveryEnabledChangesNothingWithoutCrashes) {
  auto run = [](bool recovery) {
    core::System sys{recovery_cfg()};
    tenant::SchedulerConfig scfg;
    scfg.recovery.enabled = recovery;
    scfg.recovery.stall_quanta = 8;
    tenant::Scheduler sched{sys, scfg};
    (void)sched.submit(hotspot_spec());
    sched.run_all();
    return std::pair{sys.now(), sys.events().digest(sys.now())};
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace ghum
