#include <gtest/gtest.h>

#include <tuple>

#include "benchsupport/scenarios.hpp"
#include "profile/tracer.hpp"
#include "runtime/runtime.hpp"

/// Property-based sweeps: global invariants of the memory system that must
/// hold for every (application, memory mode, page size, counter setting)
/// combination. These are the simulator's conservation laws.

namespace ghum {
namespace {

namespace bs = benchsupport;
using apps::MemMode;

struct Combo {
  std::size_t app_index;
  MemMode mode;
  std::uint64_t page_size;
  bool counters;
};

class Invariants
    : public ::testing::TestWithParam<std::tuple<int, MemMode, std::uint64_t, bool>> {
};

TEST_P(Invariants, ResidencyLedgersStayConsistent) {
  const auto [app_idx, mode, page, counters] = GetParam();
  core::SystemConfig cfg = bs::rodinia_config(page, counters);
  core::System sys{cfg};
  runtime::Runtime rt{sys};
  const auto& app = bs::rodinia_apps()[static_cast<std::size_t>(app_idx)];
  (void)app.run(rt, mode, bs::Scale::kSmall);

  auto& m = sys.machine();
  // 1. After freeing everything, no frames remain beyond the baseline.
  EXPECT_EQ(m.frames(mem::Node::kGpu).used(), cfg.gpu_driver_baseline)
      << app.name << " leaked GPU frames";
  EXPECT_EQ(m.frames(mem::Node::kCpu).used(), 0u) << app.name << " leaked CPU frames";
  // 2. Page tables are empty again.
  EXPECT_EQ(m.system_pt().mapped_pages(), 0u);
  EXPECT_EQ(m.gpu_pt().mapped_pages(), 0u);
  // 3. RSS returns to zero.
  EXPECT_EQ(m.cpu_rss_bytes(), 0u);
  // 4. Peak usage never exceeded capacity (frame allocator enforces it,
  //    but the ledger must agree).
  EXPECT_LE(m.frames(mem::Node::kGpu).peak_used(), cfg.hbm_capacity);
  EXPECT_LE(m.frames(mem::Node::kCpu).peak_used(), cfg.ddr_capacity);
}

TEST_P(Invariants, SimulatedTimeAdvancesAndIsDeterministic) {
  const auto [app_idx, mode, page, counters] = GetParam();
  const auto& app = bs::rodinia_apps()[static_cast<std::size_t>(app_idx)];
  auto run_once = [&]() {
    core::System sys{bs::rodinia_config(page, counters)};
    runtime::Runtime rt{sys};
    const auto r = app.run(rt, mode, bs::Scale::kSmall);
    return std::pair{sys.now(), r.checksum};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_GT(a.first, 0);
  EXPECT_EQ(a.first, b.first) << "simulated time must be bit-reproducible";
  EXPECT_EQ(a.second, b.second);
}

TEST_P(Invariants, TrafficAccountingIsConserved) {
  const auto [app_idx, mode, page, counters] = GetParam();
  core::System sys{bs::rodinia_config(page, counters)};
  runtime::Runtime rt{sys};
  const auto& app = bs::rodinia_apps()[static_cast<std::size_t>(app_idx)];
  (void)app.run(rt, mode, bs::Scale::kSmall);

  // Sum of per-phase attributed C2C traffic (direct + migration) must not
  // exceed the link's own byte counters (phases cover all work the apps
  // do; out-of-phase traffic like memcpy staging may add to the link).
  std::uint64_t attributed = 0;
  for (const auto& rec : sys.workload().records()) {
    attributed += rec.traffic.c2c_read_bytes + rec.traffic.c2c_write_bytes +
                  rec.traffic.cpu_remote_read_bytes +
                  rec.traffic.cpu_remote_write_bytes +
                  rec.traffic.migration_h2d_bytes + rec.traffic.migration_d2h_bytes;
  }
  auto& link = sys.machine().c2c();
  const std::uint64_t link_total =
      link.bytes_moved(interconnect::Direction::kCpuToGpu) +
      link.bytes_moved(interconnect::Direction::kGpuToCpu);
  EXPECT_LE(attributed, link_total) << app.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Invariants,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(MemMode::kExplicit, MemMode::kManaged,
                                         MemMode::kSystem),
                       ::testing::Values(pagetable::kSystemPage4K,
                                         pagetable::kSystemPage64K),
                       ::testing::Bool()),
    [](const testing::TestParamInfo<std::tuple<int, MemMode, std::uint64_t, bool>>&
           info) {
      const int app = std::get<0>(info.param);
      const MemMode mode = std::get<1>(info.param);
      const std::uint64_t page = std::get<2>(info.param);
      const bool counters = std::get<3>(info.param);
      return bs::rodinia_apps()[static_cast<std::size_t>(app)].name + "_" +
             std::string{apps::to_string(mode)} + "_" +
             (page == pagetable::kSystemPage4K ? "4k" : "64k") +
             (counters ? "_ctr" : "_noctr");
    });

// --- page-size direction properties (paper Figures 6 and 8) --------------------

class PageSizeProps : public ::testing::TestWithParam<int> {};

TEST_P(PageSizeProps, DeallocationIsCheaperWith64KPages) {
  const auto& app = bs::rodinia_apps()[static_cast<std::size_t>(GetParam())];
  auto dealloc_time = [&](std::uint64_t page) {
    core::System sys{bs::rodinia_config(page, false)};
    runtime::Runtime rt{sys};
    return app.run(rt, MemMode::kSystem, bs::Scale::kSmall).times.dealloc_s;
  };
  // Paper Figure 6: 64 KiB pages cut deallocation cost 4.6x-38x.
  EXPECT_GT(dealloc_time(pagetable::kSystemPage4K),
            dealloc_time(pagetable::kSystemPage64K))
      << app.name;
}

TEST_P(PageSizeProps, SystemVersionFaultCountScalesWithPageSize) {
  const auto& app = bs::rodinia_apps()[static_cast<std::size_t>(GetParam())];
  auto fault_count = [&](std::uint64_t page) {
    core::System sys{bs::rodinia_config(page, false)};
    runtime::Runtime rt{sys};
    (void)app.run(rt, MemMode::kSystem, bs::Scale::kSmall);
    return sys.stats().get("os.fault.cpu_first_touch") +
           sys.stats().get("os.fault.gpu_first_touch");
  };
  EXPECT_GT(fault_count(pagetable::kSystemPage4K),
            4 * fault_count(pagetable::kSystemPage64K))
      << app.name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, PageSizeProps, ::testing::Range(0, 5),
                         [](const auto& info) {
                           return bs::rodinia_apps()[static_cast<std::size_t>(
                                                         info.param)]
                               .name;
                         });

// --- oversubscription properties -----------------------------------------------

TEST(OversubscriptionProps, SystemMemoryNeverEvicts) {
  // Fill most of the GPU, then run the system version: no evictions may
  // occur (Section 7: system memory falls back to remote access).
  core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage4K, false);
  cfg.hbm_capacity = 16ull << 20;
  cfg.event_log = true;
  core::System sys{cfg};
  runtime::Runtime rt{sys};
  core::Buffer reserve = sys.gpu_malloc(13ull << 20, "reserve");
  (void)apps::run_hotspot(rt, MemMode::kSystem,
                          bs::hotspot_config(bs::Scale::kSmall));
  profile::Tracer tracer{sys.events()};
  EXPECT_EQ(tracer.summarize().evictions, 0u);
  rt.free(reserve);
}

TEST(OversubscriptionProps, ManagedEvictsUnderPressure) {
  core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage4K, false);
  cfg.hbm_capacity = 8ull << 20;
  cfg.event_log = true;
  core::System sys{cfg};
  runtime::Runtime rt{sys};
  // Managed allocation larger than HBM, written wholesale by the GPU.
  core::Buffer big = rt.malloc_managed(12ull << 20, "big");
  (void)rt.launch("fill", 0, [&] {
    auto s = rt.device_span<float>(big);
    for (std::size_t i = 0; i < s.size(); i += 1024) s.store(i, 1.0f);
  });
  profile::Tracer tracer{sys.events()};
  EXPECT_GT(tracer.summarize().evictions, 0u);
  rt.free(big);
}

TEST(OversubscriptionProps, RigComputesReserveFromRatio) {
  core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, false);
  core::System sys{cfg};
  const std::uint64_t peak = 64ull << 20;
  auto reserve = bs::reserve_for_oversubscription(sys, peak, 2.0);
  ASSERT_TRUE(reserve.has_value());
  // Free GPU memory must now be ~peak/2.
  EXPECT_NEAR(static_cast<double>(sys.gpu_free_bytes()),
              static_cast<double>(peak) / 2.0, static_cast<double>(4 << 20));
  EXPECT_FALSE(bs::reserve_for_oversubscription(sys, peak, 1.0).has_value());
}

}  // namespace
}  // namespace ghum
