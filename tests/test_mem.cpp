#include <gtest/gtest.h>

#include "interconnect/nvlink_c2c.hpp"
#include "mem/frame_allocator.hpp"
#include "mem/memory_device.hpp"

namespace ghum {
namespace {

using mem::FrameAllocator;
using mem::MemoryDevice;
using mem::Node;

TEST(MemoryDevice, PaperMeasuredBandwidths) {
  const MemoryDevice hbm{mem::hbm3_spec(96ull << 30)};
  const MemoryDevice ddr{mem::lpddr5x_spec(480ull << 30)};
  // Section 2.1: STREAM measured 3.4 TB/s HBM3 and 486 GB/s LPDDR5X.
  EXPECT_NEAR(sim::to_seconds(hbm.read_time(3'400ull << 30)),
              static_cast<double>(3'400ull << 30) / 3.4e12, 1e-6);
  EXPECT_NEAR(sim::to_seconds(ddr.read_time(486ull << 20)),
              static_cast<double>(486ull << 20) / 486e9, 1e-6);
  EXPECT_EQ(hbm.spec().node, Node::kGpu);
  EXPECT_EQ(ddr.spec().node, Node::kCpu);
}

TEST(MemoryDevice, HbmIsFasterThanDdr) {
  const MemoryDevice hbm{mem::hbm3_spec(1 << 20)};
  const MemoryDevice ddr{mem::lpddr5x_spec(1 << 20)};
  EXPECT_LT(hbm.read_time(1 << 20), ddr.read_time(1 << 20));
}

TEST(FrameAllocator, TracksUsageAndCapacity) {
  FrameAllocator fa{Node::kGpu, 1000};
  EXPECT_TRUE(fa.allocate(400));
  EXPECT_TRUE(fa.allocate(600));
  EXPECT_FALSE(fa.allocate(1));
  EXPECT_EQ(fa.used(), 1000u);
  EXPECT_EQ(fa.free_bytes(), 0u);
  fa.release(500);
  EXPECT_EQ(fa.free_bytes(), 500u);
  EXPECT_TRUE(fa.allocate(500));
}

TEST(FrameAllocator, ReleaseUnderflowThrows) {
  FrameAllocator fa{Node::kCpu, 100};
  EXPECT_TRUE(fa.allocate(10));
  EXPECT_THROW(fa.release(11), std::logic_error);
}

TEST(FrameAllocator, PeakAndLifetimeCounters) {
  FrameAllocator fa{Node::kGpu, 100};
  EXPECT_TRUE(fa.allocate(60));
  fa.release(60);
  EXPECT_TRUE(fa.allocate(30));
  EXPECT_EQ(fa.peak_used(), 60u);
  EXPECT_EQ(fa.total_allocated(), 90u);
}

TEST(FrameAllocator, BaselineCountsTowardUsed) {
  FrameAllocator fa{Node::kGpu, 100};
  fa.reserve_baseline(25);
  EXPECT_EQ(fa.baseline(), 25u);
  EXPECT_EQ(fa.used(), 25u);
  EXPECT_FALSE(fa.allocate(80));
  EXPECT_TRUE(fa.allocate(75));
}

TEST(FrameAllocator, BaselineOverCapacityThrows) {
  FrameAllocator fa{Node::kGpu, 10};
  EXPECT_THROW(fa.reserve_baseline(11), std::runtime_error);
}

TEST(FrameAllocator, RetireWhileNearFullKeepsUsedWithinCapacity) {
  FrameAllocator fa{Node::kGpu, 1000};
  EXPECT_TRUE(fa.allocate(990));
  // Only the 10 free bytes are retirable; used_ <= capacity_ must survive.
  EXPECT_EQ(fa.retire(500), 10u);
  EXPECT_EQ(fa.capacity(), 990u);
  EXPECT_EQ(fa.used(), 990u);
  EXPECT_EQ(fa.free_bytes(), 0u);
  EXPECT_LE(fa.used(), fa.capacity());
  EXPECT_LE(fa.peak_used(), fa.capacity());
}

TEST(FrameAllocator, RetireThenAllocateRespectsShrunkenCapacity) {
  FrameAllocator fa{Node::kGpu, 1000};
  EXPECT_TRUE(fa.allocate(600));
  EXPECT_EQ(fa.retire(300), 300u);
  EXPECT_EQ(fa.capacity(), 700u);
  // Exactly the remaining 100 free bytes allocate; one more byte fails.
  EXPECT_FALSE(fa.allocate(101));
  EXPECT_TRUE(fa.allocate(100));
  EXPECT_EQ(fa.used(), 700u);
  EXPECT_FALSE(fa.allocate(1));
  fa.release(700);
  EXPECT_EQ(fa.free_bytes(), 700u);
}

TEST(FrameAllocator, RetireEverythingThenPeakStaysBounded) {
  FrameAllocator fa{Node::kCpu, 100};
  EXPECT_TRUE(fa.allocate(80));
  EXPECT_EQ(fa.peak_used(), 80u);
  fa.release(80);
  // Retiring below the historical peak re-clamps it (utilization <= 1).
  EXPECT_EQ(fa.retire(70), 70u);
  EXPECT_EQ(fa.capacity(), 30u);
  EXPECT_LE(fa.peak_used(), fa.capacity());
  EXPECT_FALSE(fa.allocate(31));
  EXPECT_TRUE(fa.allocate(30));
}

TEST(FrameAllocator, OversizeAllocateDoesNotOverflow) {
  FrameAllocator fa{Node::kGpu, 100};
  EXPECT_TRUE(fa.allocate(50));
  // bytes > capacity - used must fail cleanly even when bytes + used_
  // would wrap uint64.
  EXPECT_FALSE(fa.allocate(~0ull));
  EXPECT_EQ(fa.used(), 50u);
  EXPECT_LE(fa.used(), fa.capacity());
}

TEST(NvlinkC2C, AsymmetricPaperBandwidths) {
  interconnect::NvlinkC2C link;
  // Section 2.1: 375 GB/s H2D, 297 GB/s D2H via Comm|Scope.
  const auto h2d = link.transfer(interconnect::Direction::kCpuToGpu, 375ull << 30);
  const auto d2h = link.transfer(interconnect::Direction::kGpuToCpu, 297ull << 30);
  EXPECT_NEAR(sim::to_seconds(h2d), static_cast<double>(375ull << 30) / 375e9, 1e-4);
  EXPECT_NEAR(sim::to_seconds(d2h), static_cast<double>(297ull << 30) / 297e9, 1e-4);
  EXPECT_EQ(link.bytes_moved(interconnect::Direction::kCpuToGpu), 375ull << 30);
  EXPECT_EQ(link.bytes_moved(interconnect::Direction::kGpuToCpu), 297ull << 30);
}

TEST(NvlinkC2C, CachelineGranularitiesPerSide) {
  const interconnect::NvlinkC2C link;
  // Section 2.1.1: 64 B transfers on the CPU side, 128 B on the GPU side.
  EXPECT_EQ(link.spec().cacheline_cpu, 64u);
  EXPECT_EQ(link.spec().cacheline_gpu, 128u);
}

TEST(NvlinkC2C, AtomicsCountAndCostLatency) {
  interconnect::NvlinkC2C link;
  const auto t = link.atomic_op();
  EXPECT_EQ(link.atomics_issued(), 1u);
  EXPECT_EQ(t, 2 * link.latency());
}

}  // namespace
}  // namespace ghum
