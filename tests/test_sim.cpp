#include <gtest/gtest.h>

#include "sim/clock.hpp"
#include "sim/event_log.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace ghum::sim {
namespace {

TEST(Time, UnitConversionsRoundTrip) {
  EXPECT_EQ(nanoseconds(1), 1'000);
  EXPECT_EQ(microseconds(1), 1'000'000);
  EXPECT_EQ(milliseconds(1), 1'000'000'000);
  EXPECT_EQ(seconds(1), kPicosPerSecond);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(3.25)), 3.25);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(7)), 7.0);
}

TEST(Time, TransferTimeMatchesBandwidth) {
  // 1 GiB at 1 GB/s is ~1.0737 s.
  const Picos t = transfer_time(1ull << 30, 1e9);
  EXPECT_NEAR(to_seconds(t), 1.0737, 1e-3);
}

TEST(Time, TransferTimeZeroBytesIsFree) {
  EXPECT_EQ(transfer_time(0, 1e9), 0);
}

TEST(Time, TransferTimeNonZeroIsAtLeastOnePicosecond) {
  // One byte at an absurd bandwidth still advances time (monotonicity).
  EXPECT_GE(transfer_time(1, 1e18), 1);
}

TEST(Clock, AdvancesMonotonically) {
  Clock c;
  EXPECT_EQ(c.now(), 0);
  c.advance(100);
  c.advance(0);
  c.advance(50);
  EXPECT_EQ(c.now(), 150);
}

TEST(Clock, RejectsNegativeDelta) {
  Clock c;
  EXPECT_THROW(c.advance(-1), std::invalid_argument);
}

TEST(Clock, ObserversSeeBeforeAndAfter) {
  Clock c;
  std::vector<std::pair<Picos, Picos>> seen;
  c.add_observer([&](Picos b, Picos a) { seen.emplace_back(b, a); });
  c.advance(10);
  c.advance(5);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<Picos, Picos>{0, 10}));
  EXPECT_EQ(seen[1], (std::pair<Picos, Picos>{10, 15}));
}

TEST(Clock, RemovedObserverStopsFiring) {
  Clock c;
  int count = 0;
  const std::size_t id = c.add_observer([&](Picos, Picos) { ++count; });
  c.advance(1);
  c.remove_observer(id);
  c.advance(1);
  EXPECT_EQ(count, 1);
}

TEST(Clock, ZeroAdvanceDoesNotNotify) {
  Clock c;
  int count = 0;
  c.add_observer([&](Picos, Picos) { ++count; });
  c.advance(0);
  EXPECT_EQ(count, 0);
}

TEST(Stats, AccumulatesAndReads) {
  StatsRegistry s;
  EXPECT_EQ(s.get("x"), 0u);
  s.add("x");
  s.add("x", 4);
  s.add("y", 2);
  EXPECT_EQ(s.get("x"), 5u);
  EXPECT_EQ(s.get("y"), 2u);
  const auto snap = s.snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.at("x"), 5u);
}

TEST(EventLog, DisabledByDefaultAndDropsRecords) {
  EventLog log;
  log.record(Event{.time = 1, .type = EventType::kMigrationH2D, .va = 0, .bytes = 64});
  EXPECT_TRUE(log.events().empty());
}

TEST(EventLog, CountsAndBytesByType) {
  EventLog log;
  log.set_enabled(true);
  log.record(Event{.time = 1, .type = EventType::kMigrationH2D, .va = 0, .bytes = 64});
  log.record(Event{.time = 2, .type = EventType::kMigrationH2D, .va = 0, .bytes = 36});
  log.record(Event{.time = 3, .type = EventType::kEviction, .va = 0, .bytes = 100});
  EXPECT_EQ(log.count(EventType::kMigrationH2D), 2u);
  EXPECT_EQ(log.total_bytes(EventType::kMigrationH2D), 100u);
  EXPECT_EQ(log.count(EventType::kEviction), 1u);
  EXPECT_EQ(log.count(EventType::kMigrationD2H), 0u);
}

TEST(EventLog, EveryTypeHasAName) {
  for (int i = 0; i <= static_cast<int>(EventType::kNumaHintFault); ++i) {
    EXPECT_NE(to_string(static_cast<EventType>(i)), "unknown");
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r{7};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r{9};
  bool seen[8]{};
  for (int i = 0; i < 1'000; ++i) seen[r.next_below(8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r{11};
  for (int i = 0; i < 10'000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanIsRoughlyHalf) {
  Rng r{13};
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
}  // namespace ghum::sim
