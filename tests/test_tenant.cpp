#include <gtest/gtest.h>

#include "apps/hotspot.hpp"
#include "apps/pathfinder.hpp"
#include "apps/qvsim.hpp"
#include "profile/tracer.hpp"
#include "tenant/scheduler.hpp"

/// Tests for the multi-tenant co-scheduler (DESIGN.md Section 8):
/// admission control, scheduling-policy ordering, bit-for-bit determinism,
/// solo-run equivalence with the direct app harness, and cross-tenant
/// eviction attribution.

namespace ghum {
namespace {

core::SystemConfig small_cfg(std::uint64_t hbm = 16ull << 20) {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage64K;
  cfg.hbm_capacity = hbm;
  cfg.ddr_capacity = 256ull << 20;
  cfg.gpu_driver_baseline = 1ull << 20;
  cfg.event_log = true;
  return cfg;
}

apps::HotspotConfig small_hotspot(std::uint64_t seed = 42) {
  apps::HotspotConfig h;
  h.rows = 128;
  h.cols = 128;
  h.iterations = 3;
  h.seed = seed;
  return h;
}

tenant::JobSpec hotspot_spec(apps::MemMode mode, std::uint64_t footprint,
                             std::uint64_t seed = 42, int priority = 0) {
  tenant::JobSpec spec;
  spec.name = "hotspot";
  spec.mode = mode;
  spec.footprint_bytes = footprint;
  spec.priority = priority;
  spec.make = [mode, seed](runtime::Runtime& rt) {
    return apps::hotspot_steps(rt, mode, small_hotspot(seed));
  };
  return spec;
}

tenant::JobSpec qvsim_spec(std::uint32_t qubits, std::uint64_t footprint) {
  tenant::JobSpec spec;
  spec.name = "qvsim";
  spec.mode = apps::MemMode::kManaged;
  spec.footprint_bytes = footprint;
  spec.make = [qubits](runtime::Runtime& rt) {
    apps::QvConfig q;
    q.qubits = qubits;
    q.depth = 2;
    return apps::qvsim_steps(rt, apps::MemMode::kManaged, q);
  };
  return spec;
}

TEST(TenantAdmission, RejectsFootprintOverBudget) {
  core::System sys{small_cfg()};
  tenant::Scheduler sched{sys, {.footprint_budget = 8ull << 20}};
  tenant::TenantId id = tenant::kNoTenant;
  const Status s =
      sched.submit(hotspot_spec(apps::MemMode::kManaged, 16ull << 20), &id);
  EXPECT_EQ(s, Status::kErrorOutOfMemory);
  EXPECT_EQ(sched.job(id).state, tenant::JobState::kRejected);
  EXPECT_EQ(sched.job(id).status, Status::kErrorOutOfMemory);
  // The rejected job never ran: no simulated time passed.
  EXPECT_EQ(sys.now(), 0);
}

TEST(TenantAdmission, RejectsWhenAggregateExceedsBudget) {
  core::System sys{small_cfg()};
  tenant::Scheduler sched{sys, {.footprint_budget = 10ull << 20}};
  EXPECT_EQ(sched.submit(hotspot_spec(apps::MemMode::kManaged, 6ull << 20)),
            Status::kSuccess);
  EXPECT_EQ(sched.submit(hotspot_spec(apps::MemMode::kManaged, 6ull << 20)),
            Status::kErrorOutOfMemory);
  EXPECT_EQ(sched.admitted_bytes(), 6ull << 20);
  sched.run_all();
  EXPECT_EQ(sched.job(1).state, tenant::JobState::kFinished);
  EXPECT_EQ(sched.job(2).state, tenant::JobState::kRejected);
}

TEST(TenantAdmission, QueuesOverBudgetJobsUntilCapacityFrees) {
  core::System sys{small_cfg()};
  tenant::Scheduler sched{
      sys, {.footprint_budget = 10ull << 20, .queue_over_budget = true}};
  EXPECT_EQ(sched.submit(hotspot_spec(apps::MemMode::kManaged, 6ull << 20)),
            Status::kSuccess);
  EXPECT_EQ(sched.submit(hotspot_spec(apps::MemMode::kManaged, 6ull << 20)),
            Status::kSuccess);
  EXPECT_EQ(sched.job(2).state, tenant::JobState::kQueued);
  EXPECT_EQ(sched.waiting_count(), 1u);
  sched.run_all();
  EXPECT_EQ(sched.job(1).state, tenant::JobState::kFinished);
  EXPECT_EQ(sched.job(2).state, tenant::JobState::kFinished);
  // The queued job was admitted only after the first released its budget.
  EXPECT_GE(sched.job(2).started_at, sched.job(1).finished_at);
  EXPECT_EQ(sched.waiting_count(), 0u);
  EXPECT_EQ(sched.admitted_bytes(), 0u);
}

TEST(TenantPolicy, FifoRunsJobsToCompletionInSubmissionOrder) {
  core::System sys{small_cfg()};
  tenant::Scheduler sched{sys, {.policy = tenant::Policy::kFifo}};
  (void)sched.submit(hotspot_spec(apps::MemMode::kManaged, 1ull << 20, 42));
  (void)sched.submit(hotspot_spec(apps::MemMode::kManaged, 1ull << 20, 43));
  sched.run_all();
  EXPECT_LE(sched.job(1).finished_at, sched.job(2).started_at);
}

TEST(TenantPolicy, PriorityRunsMoreUrgentJobFirst) {
  core::System sys{small_cfg()};
  tenant::Scheduler sched{sys, {.policy = tenant::Policy::kPriority}};
  (void)sched.submit(
      hotspot_spec(apps::MemMode::kManaged, 1ull << 20, 42, /*priority=*/0));
  (void)sched.submit(
      hotspot_spec(apps::MemMode::kManaged, 1ull << 20, 43, /*priority=*/5));
  sched.run_all();
  // The later-submitted but higher-priority job ran to completion before
  // the first job got its first quantum.
  EXPECT_LE(sched.job(2).finished_at, sched.job(1).started_at);
}

TEST(TenantPolicy, RoundRobinInterleavesQuanta) {
  core::System sys{small_cfg()};
  tenant::Scheduler sched{sys, {.policy = tenant::Policy::kRoundRobin}};
  (void)sched.submit(hotspot_spec(apps::MemMode::kManaged, 1ull << 20, 42));
  (void)sched.submit(hotspot_spec(apps::MemMode::kManaged, 1ull << 20, 43));
  sched.run_all();
  // Both tenants were in flight at once: each started before the other
  // finished.
  EXPECT_LT(sched.job(1).started_at, sched.job(2).finished_at);
  EXPECT_LT(sched.job(2).started_at, sched.job(1).finished_at);
}

/// One full co-run; returns (end time, event digest) for replay checks.
std::pair<sim::Picos, std::uint64_t> co_run(tenant::Policy policy) {
  core::System sys{small_cfg()};
  tenant::Scheduler sched{sys, {.policy = policy}};
  (void)sched.submit(hotspot_spec(apps::MemMode::kManaged, 1ull << 20, 42));
  (void)sched.submit(hotspot_spec(apps::MemMode::kSystem, 1ull << 20, 43));
  (void)sched.submit(qvsim_spec(/*qubits=*/14, 1ull << 20));
  sched.run_all();
  return {sys.now(), sys.events().digest(sys.now())};
}

TEST(TenantDeterminism, IdenticalRunsAreBitForBitIdentical) {
  for (const tenant::Policy p :
       {tenant::Policy::kMinLocalTime, tenant::Policy::kRoundRobin}) {
    const auto a = co_run(p);
    const auto b = co_run(p);
    EXPECT_EQ(a.first, b.first) << "policy " << to_string(p);
    EXPECT_EQ(a.second, b.second) << "policy " << to_string(p);
  }
}

TEST(TenantDeterminism, SoloSchedulerRunMatchesDirectHarness) {
  const apps::HotspotConfig hcfg = small_hotspot();

  core::System direct_sys{small_cfg()};
  apps::AppReport direct;
  {
    runtime::Runtime rt{direct_sys};
    direct = apps::run_hotspot(rt, apps::MemMode::kManaged, hcfg);
  }

  core::System sched_sys{small_cfg()};
  tenant::Scheduler sched{sched_sys};
  (void)sched.submit(hotspot_spec(apps::MemMode::kManaged, 1ull << 20));
  sched.run_all();

  // The scheduler adds zero simulated overhead: a solo tenant's end time
  // is exactly the direct harness's end time, and the app saw the same
  // simulation (checksum + phase breakdown).
  EXPECT_EQ(sched_sys.now(), direct_sys.now());
  const apps::AppReport& r = sched.job(1).report;
  EXPECT_EQ(r.checksum, direct.checksum);
  EXPECT_DOUBLE_EQ(r.times.compute_s, direct.times.compute_s);
}

TEST(TenantAttribution, CrossTenantEvictionsAreAttributed) {
  // Two managed 18-qubit statevectors (4 MiB each) on a 6 MiB-HBM GPU:
  // either fits alone next to the 1 MiB driver baseline, both together do
  // not — interleaved quanta force the tenants to evict each other.
  core::System sys{small_cfg(/*hbm=*/6ull << 20)};
  tenant::Scheduler sched{sys};
  (void)sched.submit(qvsim_spec(18, 4ull << 20));
  (void)sched.submit(qvsim_spec(18, 4ull << 20));
  sched.run_all();
  ASSERT_EQ(sched.job(1).state, tenant::JobState::kFinished);
  ASSERT_EQ(sched.job(2).state, tenant::JobState::kFinished);

  const tenant::AttributionTable& at = sys.attribution();
  EXPECT_GT(at.cross_tenant_evictions(), 0u);
  EXPECT_GT(at.cross_tenant_evicted_bytes(), 0u);
  // The who-evicted-whom matrix names both directions' cells; at least
  // one of them saw traffic.
  EXPECT_GT(at.evictions(1, 2).count + at.evictions(2, 1).count, 0u);
  // Per-tenant ledgers agree with the matrix.
  EXPECT_EQ(at.usage(1).evictions_suffered + at.usage(2).evictions_suffered,
            at.usage(1).evictions_caused + at.usage(2).evictions_caused);

  // The event log carries the same signal: the Tracer reconstructs
  // cross-tenant evictions from (Event::tenant, Event::aux) alone.
  const profile::TraceSummary ts = profile::Tracer{sys.events()}.summarize();
  EXPECT_EQ(ts.cross_tenant_evictions, at.cross_tenant_evictions());
  EXPECT_EQ(ts.cross_tenant_evicted_bytes, at.cross_tenant_evicted_bytes());
}

TEST(TenantAttribution, C2CBytesAreChargedPerTenant) {
  core::System sys{small_cfg()};
  tenant::Scheduler sched{sys};
  // kExplicit hotspot stages H2D/D2H copies over the C2C link.
  (void)sched.submit(hotspot_spec(apps::MemMode::kExplicit, 1ull << 20));
  sched.run_all();
  const tenant::TenantUsage& u = sys.attribution().usage(1);
  EXPECT_GT(u.c2c_h2d_bytes, 0u);
  EXPECT_GT(u.c2c_d2h_bytes, 0u);
  // The solo tenant owns the whole link traffic.
  const auto& c2c = sys.machine().c2c();
  EXPECT_EQ(u.c2c_h2d_bytes,
            c2c.bytes_moved(interconnect::Direction::kCpuToGpu));
  EXPECT_EQ(u.c2c_d2h_bytes,
            c2c.bytes_moved(interconnect::Direction::kGpuToCpu));
}

TEST(TenantScheduler, FailedQuantumRetiresJobAndKeepsOthersRunning) {
  core::System sys{small_cfg()};
  tenant::Scheduler sched{sys};
  // A job whose coroutine throws StatusError mid-run (cudaMalloc larger
  // than HBM) fails without taking the scheduler or its peers down.
  tenant::JobSpec bad;
  bad.name = "oom";
  bad.footprint_bytes = 1ull << 20;
  bad.make = [](runtime::Runtime& rt) -> apps::AppCoro {
    return [](runtime::Runtime& r) -> apps::AppCoro {
      co_yield 0;
      (void)r.malloc_device(1ull << 30, "too_big");  // throws StatusError
      co_return apps::AppReport{};
    }(rt);
  };
  (void)sched.submit(std::move(bad));
  (void)sched.submit(hotspot_spec(apps::MemMode::kManaged, 1ull << 20));
  sched.run_all();
  EXPECT_EQ(sched.job(1).state, tenant::JobState::kFailed);
  EXPECT_EQ(sched.job(1).status, Status::kErrorMemoryAllocation);
  EXPECT_EQ(sched.job(2).state, tenant::JobState::kFinished);
}

}  // namespace
}  // namespace ghum
