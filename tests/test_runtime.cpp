#include <gtest/gtest.h>

#include "apps/qvsim.hpp"
#include "runtime/runtime.hpp"

namespace ghum {
namespace {

core::SystemConfig rt_config() {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage64K;
  cfg.hbm_capacity = 16ull << 20;
  cfg.ddr_capacity = 64ull << 20;
  cfg.gpu_driver_baseline = 1ull << 20;
  cfg.event_log = true;
  return cfg;
}

class RuntimeTest : public ::testing::Test {
 protected:
  core::System sys{rt_config()};
  runtime::Runtime rt{sys};
};

TEST_F(RuntimeTest, AllocationKindsMatchTable1) {
  core::Buffer sysb = rt.malloc_system(1 << 20);
  core::Buffer man = rt.malloc_managed(1 << 20);
  core::Buffer dev = rt.malloc_device(1 << 20);
  core::Buffer pin = rt.malloc_host(1 << 20);
  EXPECT_EQ(sysb.kind, os::AllocKind::kSystem);
  EXPECT_EQ(man.kind, os::AllocKind::kManaged);
  EXPECT_EQ(dev.kind, os::AllocKind::kGpuOnly);
  EXPECT_EQ(pin.kind, os::AllocKind::kPinnedHost);
}

TEST_F(RuntimeTest, MemcpyDirectionValidation) {
  core::Buffer h = rt.malloc_system(1 << 10);
  core::Buffer d = rt.malloc_device(1 << 10);
  EXPECT_NO_THROW(rt.memcpy(d, h, 1 << 10, runtime::CopyKind::kHostToDevice));
  EXPECT_NO_THROW(rt.memcpy(h, d, 1 << 10, runtime::CopyKind::kDeviceToHost));
  EXPECT_THROW(rt.memcpy(h, d, 1 << 10, runtime::CopyKind::kHostToDevice),
               std::invalid_argument);
  EXPECT_THROW(rt.memcpy(d, d, 1 << 10, runtime::CopyKind::kHostToHost),
               std::invalid_argument);
}

TEST_F(RuntimeTest, LaunchRecordsNamedKernel) {
  core::Buffer d = rt.malloc_device(1 << 12);
  const auto rec = rt.launch("my_kernel", 0, [&] {
    auto s = rt.device_span<int>(d);
    s.store(0, 42);
  });
  EXPECT_EQ(rec.name, "my_kernel");
  EXPECT_GT(rec.duration, 0);
  EXPECT_EQ(sys.workload().records().back().name, "my_kernel");
  EXPECT_EQ(reinterpret_cast<int*>(d.host)[0], 42);
}

TEST_F(RuntimeTest, HostPhaseUsesCpuComputeFloor) {
  const auto rec = rt.host_phase("init", /*flop_work=*/4e8, [] {});
  // 4e8 flops at 0.4 TFLOP/s = 1 ms.
  EXPECT_NEAR(sim::to_seconds(rec.duration), 1e-3, 1e-5);
}

TEST_F(RuntimeTest, DevicePropertiesReflectConfig) {
  const auto props = runtime::get_device_properties(sys);
  EXPECT_EQ(props.total_global_mem, 16ull << 20);
  EXPECT_EQ(props.system_page_size, pagetable::kSystemPage64K);
  EXPECT_TRUE(props.pageable_memory_access);   // ATS on Grace Hopper
  EXPECT_TRUE(props.concurrent_managed_access);
}

TEST_F(RuntimeTest, HostRegisterEliminatesGpuFirstTouchFaults) {
  core::Buffer b = rt.malloc_system(1 << 20);
  rt.host_register(b);
  (void)rt.launch("k", 0, [&] {
    auto s = rt.device_span<float>(b);
    for (std::size_t i = 0; i < s.size(); i += 16384) s.store(i, 1.0f);
  });
  EXPECT_EQ(sys.stats().get("os.fault.gpu_first_touch"), 0u);
}

TEST_F(RuntimeTest, WithoutHostRegisterGpuFirstTouchFaults) {
  core::Buffer b = rt.malloc_system(1 << 20);
  (void)rt.launch("k", 0, [&] {
    auto s = rt.device_span<float>(b);
    for (std::size_t i = 0; i < s.size(); i += 16384) s.store(i, 1.0f);
  });
  // 1 MiB at 64 KiB pages = 16 GPU-origin first-touch faults.
  EXPECT_EQ(sys.stats().get("os.fault.gpu_first_touch"), 16u);
}

TEST_F(RuntimeTest, AsyncMemcpyDefersTimeToStream) {
  core::Buffer h = rt.malloc_host(8 << 20);
  core::Buffer d = rt.malloc_device(8 << 20);
  runtime::Stream s;
  const sim::Picos t0 = sys.now();
  rt.memcpy_async(d, h, 8 << 20, runtime::CopyKind::kHostToDevice, s);
  // The clock barely moved (data is staged; time is on the stream).
  EXPECT_LT(sys.now() - t0, sim::microseconds(50));
  EXPECT_GT(s.ready_at(), sys.now());
  rt.stream_synchronize(s);
  // Now the full transfer time has been paid: 8 MiB at 375 GB/s ~ 22 us.
  EXPECT_GE(sys.now() - t0, sim::microseconds(20));
  EXPECT_TRUE(s.idle_at(sys.now()));
}

TEST_F(RuntimeTest, AsyncCopyOverlapsWithInterveningWork) {
  core::Buffer h = rt.malloc_host(4 << 20);
  core::Buffer d = rt.malloc_device(4 << 20);
  core::Buffer other = rt.malloc_device(4 << 20);
  auto run = [&](bool overlap) {
    runtime::Stream s;
    const sim::Picos t0 = sys.now();
    if (overlap) {
      rt.memcpy_async(d, h, 4 << 20, runtime::CopyKind::kHostToDevice, s);
    }
    (void)rt.launch("work", 0, [&] {  // local GPU work on another buffer
      auto sp = rt.device_span<float>(other);
      for (std::size_t i = 0; i < sp.size(); ++i) sp.store(i, 1.f);
    });
    if (!overlap) {
      rt.memcpy_async(d, h, 4 << 20, runtime::CopyKind::kHostToDevice, s);
    }
    rt.stream_synchronize(s);
    return sys.now() - t0;
  };
  const sim::Picos serial = run(false);
  const sim::Picos overlapped = run(true);
  EXPECT_LT(overlapped, serial);
}

TEST_F(RuntimeTest, AsyncCopyMovesDataAtIssue) {
  core::Buffer h = rt.malloc_host(1 << 12);
  core::Buffer d = rt.malloc_device(1 << 12);
  reinterpret_cast<int*>(h.host)[7] = 1234;
  runtime::Stream s;
  rt.memcpy_async(d, h, 1 << 12, runtime::CopyKind::kHostToDevice, s);
  // Sequential consistency: the simulator stages data immediately.
  EXPECT_EQ(reinterpret_cast<int*>(d.host)[7], 1234);
  rt.stream_synchronize(s);
}

TEST_F(RuntimeTest, StreamsAccumulateBackToBackTransfers) {
  core::Buffer h = rt.malloc_host(4 << 20);
  core::Buffer d = rt.malloc_device(4 << 20);
  runtime::Stream s;
  rt.memcpy_async(d, h, 4 << 20, runtime::CopyKind::kHostToDevice, s);
  const sim::Picos one = s.ready_at();
  rt.memcpy_async(h, d, 4 << 20, runtime::CopyKind::kDeviceToHost, s);
  EXPECT_GT(s.ready_at(), one);  // second transfer queued behind the first
  rt.stream_synchronize(s);
}

TEST_F(RuntimeTest, QvPipelinedAndSerialChunkingAgree) {
  // Both staging strategies must produce bit-identical statevectors, and
  // the pipelined one must be faster.
  auto run = [](bool pipelined) {
    core::SystemConfig mc;
    mc.system_page_size = pagetable::kSystemPage64K;
    mc.hbm_capacity = 2ull << 20;
    mc.ddr_capacity = 64ull << 20;
    mc.gpu_driver_baseline = 512 << 10;
    core::System sys{mc};
    runtime::Runtime rt{sys};
    apps::QvConfig cfg{.qubits = 13, .depth = 2, .seed = 21};
    cfg.pipelined = pipelined;
    const auto r = apps::run_qvsim(rt, apps::MemMode::kExplicit, cfg);
    return std::pair{r.checksum, r.times.compute_s};
  };
  const auto serial = run(false);
  const auto pipelined = run(true);
  EXPECT_EQ(serial.first, pipelined.first);
  EXPECT_LT(pipelined.second, serial.second);
}

TEST_F(RuntimeTest, StreamTimelineCrossingLinkDegradeWindow) {
  // An async copy issued *before* a fault-injected NVLink-C2C degradation
  // window, synchronized *inside* it: the copy is priced at issue time
  // (undegraded link), so the stream's ready_at matches a clean run; the
  // synchronize then advances the clock across the window boundary, the
  // injector's clock observer flips the link state, and transfers issued
  // from that point on pay the degraded bandwidth.
  auto run = [&](sim::Picos window_start) {
    core::SystemConfig cfg = rt_config();
    if (window_start > 0) {
      cfg.faults.enabled = true;
      cfg.faults.link_degrade.push_back({.start = window_start,
                                         .duration = sim::milliseconds(50),
                                         .bandwidth_factor = 4.0,
                                         .latency_factor = 2.0});
    }
    core::System sys{cfg};
    runtime::Runtime rt{sys};
    core::Buffer h = rt.malloc_host(8 << 20);
    core::Buffer d = rt.malloc_device(8 << 20);
    runtime::Stream s;
    const sim::Picos issue_at = sys.now();
    rt.memcpy_async(d, h, 8 << 20, runtime::CopyKind::kHostToDevice, s);
    const sim::Picos ready = s.ready_at();
    rt.stream_synchronize(s);
    // A second, synchronous copy issued after the window opened.
    const sim::Picos t0 = sys.now();
    rt.memcpy(d, h, 8 << 20, runtime::CopyKind::kHostToDevice);
    return std::tuple{issue_at, ready, sys.now() - t0,
                      sys.events().count(sim::EventType::kLinkDegradeBegin)};
  };
  // Probe run (clean) to place the window strictly between the async
  // copy's issue point and its stream completion time.
  const auto clean = run(0);
  const sim::Picos mid =
      std::get<0>(clean) + (std::get<1>(clean) - std::get<0>(clean)) / 2;
  ASSERT_GT(mid, std::get<0>(clean));
  const auto faulty = run(mid);

  // Identical issue-time pricing: the copy was issued before the window,
  // so the stream's completion time is the clean run's even though the
  // timeline crosses into the degraded interval.
  EXPECT_EQ(std::get<1>(faulty), std::get<1>(clean));
  EXPECT_EQ(std::get<3>(faulty), 1u);  // observer recorded the window entry
  EXPECT_EQ(std::get<3>(clean), 0u);
  // The copy issued inside the window pays the 4x bandwidth division.
  EXPECT_GT(std::get<2>(faulty), 3 * std::get<2>(clean));
}

TEST_F(RuntimeTest, MemPrefetchManagedToGpuAndBack) {
  core::Buffer b = rt.malloc_managed(4 << 20);
  sys.host_phase_begin("touch");
  {
    auto s = rt.host_span<float>(b);
    for (std::size_t i = 0; i < s.size(); i += 1024) s.store(i, 1.0f);
  }
  (void)sys.host_phase_end();
  rt.mem_prefetch(b, 0, b.bytes, mem::Node::kGpu);
  EXPECT_EQ(sys.machine().address_space().find(b.va)->resident_gpu_bytes, 4ull << 20);
  rt.mem_prefetch(b, 0, b.bytes, mem::Node::kCpu);
  EXPECT_EQ(sys.machine().address_space().find(b.va)->resident_gpu_bytes, 0u);
}

}  // namespace
}  // namespace ghum
