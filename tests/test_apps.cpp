#include <gtest/gtest.h>

#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

namespace ghum {
namespace {

namespace bs = benchsupport;
using apps::MemMode;

core::System make_system(std::uint64_t page = pagetable::kSystemPage64K,
                         bool counters = false) {
  return core::System{bs::rodinia_config(page, counters)};
}

/// Runs one app in one mode on a fresh small machine.
template <typename Fn>
apps::AppReport run_mode(MemMode mode, Fn&& fn, bool counters = false) {
  core::System sys{bs::rodinia_config(pagetable::kSystemPage64K, counters)};
  runtime::Runtime rt{sys};
  return fn(rt, mode);
}

// --- correctness against host references, all three memory modes -------------

class AppModes : public ::testing::TestWithParam<MemMode> {};

TEST_P(AppModes, HotspotMatchesReference) {
  const auto cfg = bs::hotspot_config(bs::Scale::kSmall);
  const auto r = run_mode(GetParam(), [&](runtime::Runtime& rt, MemMode m) {
    return apps::run_hotspot(rt, m, cfg);
  });
  EXPECT_EQ(r.checksum, apps::hotspot_reference_checksum(cfg));
}

TEST_P(AppModes, PathfinderMatchesReference) {
  const auto cfg = bs::pathfinder_config(bs::Scale::kSmall);
  const auto r = run_mode(GetParam(), [&](runtime::Runtime& rt, MemMode m) {
    return apps::run_pathfinder(rt, m, cfg);
  });
  EXPECT_EQ(r.checksum, apps::pathfinder_reference_checksum(cfg));
}

TEST_P(AppModes, NeedleMatchesReference) {
  const auto cfg = bs::needle_config(bs::Scale::kSmall);
  const auto r = run_mode(GetParam(), [&](runtime::Runtime& rt, MemMode m) {
    return apps::run_needle(rt, m, cfg);
  });
  EXPECT_EQ(r.checksum, apps::needle_reference_checksum(cfg));
}

TEST_P(AppModes, BfsMatchesReference) {
  const auto cfg = bs::bfs_config(bs::Scale::kSmall);
  const auto r = run_mode(GetParam(), [&](runtime::Runtime& rt, MemMode m) {
    return apps::run_bfs(rt, m, cfg);
  });
  EXPECT_EQ(r.checksum, apps::bfs_reference_checksum(cfg));
}

TEST_P(AppModes, SradMatchesReference) {
  const auto cfg = bs::srad_config(bs::Scale::kSmall);
  const auto r = run_mode(GetParam(), [&](runtime::Runtime& rt, MemMode m) {
    return apps::run_srad(rt, m, cfg);
  });
  EXPECT_EQ(r.checksum, apps::srad_reference_checksum(cfg));
}

TEST_P(AppModes, QvsimMatchesReference) {
  apps::QvConfig cfg = bs::qv_sim_config(bs::Scale::kSmall, 10);
  core::System sys{bs::qv_config(pagetable::kSystemPage64K, false)};
  runtime::Runtime rt{sys};
  const auto r = apps::run_qvsim(rt, GetParam(), cfg);
  EXPECT_EQ(r.checksum, apps::qvsim_reference_checksum(cfg));
}

INSTANTIATE_TEST_SUITE_P(AllModes, AppModes,
                         ::testing::Values(MemMode::kExplicit, MemMode::kManaged,
                                           MemMode::kSystem),
                         [](const auto& info) {
                           return std::string{apps::to_string(info.param)};
                         });

// --- app-specific behaviours ---------------------------------------------------

TEST(Apps, SradIterationCountMatchesConfig) {
  auto cfg = bs::srad_config(bs::Scale::kSmall);
  cfg.iterations = 5;
  const auto r = run_mode(MemMode::kSystem, [&](runtime::Runtime& rt, MemMode m) {
    return apps::run_srad(rt, m, cfg);
  });
  EXPECT_EQ(r.iteration_s.size(), 5u);
  EXPECT_EQ(r.iteration_traffic.size(), 5u);
}

TEST(Apps, SradHostRegisterOptRemovesGpuFaults) {
  auto cfg = bs::srad_config(bs::Scale::kSmall);
  cfg.host_register_opt = true;
  core::System sys{bs::rodinia_config(pagetable::kSystemPage64K, false)};
  runtime::Runtime rt{sys};
  const auto r = apps::run_srad(rt, MemMode::kSystem, cfg);
  EXPECT_EQ(sys.stats().get("os.fault.gpu_first_touch"), 0u);
  EXPECT_EQ(r.checksum, apps::srad_reference_checksum(cfg));
}

TEST(Apps, QvsimNormIsPreservedAcrossDepths) {
  // Unitarity property: the statevector norm stays 1 for any circuit.
  for (std::uint32_t depth : {1u, 2u, 4u}) {
    apps::QvConfig cfg{.qubits = 8, .depth = depth, .seed = 99};
    core::System sys{bs::qv_config(pagetable::kSystemPage64K, false)};
    runtime::Runtime rt{sys};
    const auto r = apps::run_qvsim(rt, MemMode::kExplicit, cfg);
    EXPECT_EQ(r.checksum, apps::qvsim_reference_checksum(cfg)) << "depth " << depth;
  }
}

TEST(Apps, BfsRmatGraphMatchesReferenceAcrossModes) {
  apps::BfsConfig cfg = bs::bfs_config(bs::Scale::kSmall);
  cfg.graph = apps::GraphKind::kRmat;
  const std::uint64_t ref = apps::bfs_reference_checksum(cfg);
  for (MemMode m : {MemMode::kExplicit, MemMode::kManaged, MemMode::kSystem}) {
    core::System sys{bs::rodinia_config(pagetable::kSystemPage64K, false)};
    runtime::Runtime rt{sys};
    EXPECT_EQ(apps::run_bfs(rt, m, cfg).checksum, ref);
  }
}

TEST(Apps, BfsRmatIsMoreIrregularThanSmallWorld) {
  // The hub-skewed R-MAT scatter touches more distinct cachelines per
  // useful byte than the uniform small-world instance: higher C2C read
  // amplification in the system version.
  auto remote_amplification = [](apps::GraphKind kind) {
    apps::BfsConfig cfg = bs::bfs_config(bs::Scale::kSmall);
    cfg.graph = kind;
    core::System sys{bs::rodinia_config(pagetable::kSystemPage64K, false)};
    runtime::Runtime rt{sys};
    const auto r = apps::run_bfs(rt, MemMode::kSystem, cfg);
    return static_cast<double>(r.compute_traffic.c2c_read_bytes +
                               r.compute_traffic.c2c_write_bytes);
  };
  // Both run; exact ratios depend on the instance, so just require the
  // R-MAT run to be a valid, non-degenerate instance.
  EXPECT_GT(remote_amplification(apps::GraphKind::kRmat), 0.0);
  EXPECT_GT(remote_amplification(apps::GraphKind::kSmallWorld), 0.0);
}

TEST(Apps, QvsimExplicitChunkedPipelineMatchesReference) {
  // Statevector (16 * 2^14 B = 256 KiB) far exceeds a 32 KiB-free HBM:
  // the explicit version must switch to Aer's chunk-exchange pipeline and
  // still produce the exact reference statevector.
  apps::QvConfig cfg{.qubits = 14, .depth = 2, .seed = 5};
  core::SystemConfig mc = bs::qv_config(pagetable::kSystemPage64K, false);
  mc.hbm_capacity = 2ull << 20;
  mc.gpu_driver_baseline = 1ull << 20;
  core::System sys{mc};
  runtime::Runtime rt{sys};
  const auto r = apps::run_qvsim(rt, MemMode::kExplicit, cfg);
  EXPECT_EQ(r.checksum, apps::qvsim_reference_checksum(cfg));
  // Chunk staging traffic flowed both ways over the link.
  EXPECT_GT(sys.machine().c2c().bytes_moved(interconnect::Direction::kCpuToGpu),
            16ull << 14);
  EXPECT_GT(sys.machine().c2c().bytes_moved(interconnect::Direction::kGpuToCpu),
            16ull << 14);
  // Everything released.
  EXPECT_EQ(sys.machine().frames(mem::Node::kGpu).used(), 1ull << 20);
}

TEST(Apps, QvsimExplicitChunkedAcrossChunkWidths) {
  // Sweep HBM sizes so the chunk width and the number of coupled chunks
  // per gate (1, 2, 4) all get exercised.
  for (const std::uint64_t hbm_mib : {1ull, 2ull, 4ull}) {
    apps::QvConfig cfg{.qubits = 12, .depth = 3, .seed = 11};
    core::SystemConfig mc = bs::qv_config(pagetable::kSystemPage64K, false);
    mc.hbm_capacity = hbm_mib << 20;
    mc.gpu_driver_baseline = 512ull << 10;
    core::System sys{mc};
    runtime::Runtime rt{sys};
    const auto r = apps::run_qvsim(rt, MemMode::kExplicit, cfg);
    EXPECT_EQ(r.checksum, apps::qvsim_reference_checksum(cfg)) << hbm_mib;
  }
}

TEST(Apps, QvHeavyOutputProbabilityMatchesTheProtocolBand) {
  // Random QV circuits have ideal heavy-output probability converging to
  // (1 + ln 2)/2 ~ 0.85; any sane instance sits well above the 2/3
  // passing threshold. Identical across memory modes by construction.
  apps::QvConfig cfg{.qubits = 10, .depth = 10, .seed = 77};
  double hop[3];
  int i = 0;
  for (MemMode m : {MemMode::kExplicit, MemMode::kManaged, MemMode::kSystem}) {
    core::System sys{bs::qv_config(pagetable::kSystemPage64K, false)};
    runtime::Runtime rt{sys};
    hop[i++] = apps::qv_heavy_output_probability(rt, m, cfg);
  }
  EXPECT_GT(hop[0], 2.0 / 3.0);
  EXPECT_LT(hop[0], 1.0);
  EXPECT_NEAR(hop[0], 0.85, 0.08);
  EXPECT_DOUBLE_EQ(hop[0], hop[1]);
  EXPECT_DOUBLE_EQ(hop[1], hop[2]);
}

TEST(Apps, QvsimGateCountMatchesQvDefinition) {
  apps::QvConfig cfg{.qubits = 9, .depth = 4, .seed = 1};
  const auto gates = apps::qv_circuit(cfg);
  // floor(9/2) = 4 gates per layer, 4 layers.
  EXPECT_EQ(gates.size(), 16u);
  for (const auto& g : gates) {
    EXPECT_LT(g.p, g.q);
    EXPECT_LT(g.q, cfg.qubits);
  }
}

TEST(Apps, QvsimStatevectorBytesMatchPaperFormula) {
  // Paper Section 3.1: the statevector needs 8 * 2^N bytes (complex float)
  // — our double-precision backend doubles that.
  apps::QvConfig cfg{.qubits = 12, .depth = 1, .seed = 3};
  core::System sys{bs::qv_config(pagetable::kSystemPage64K, false)};
  sys.machine().events().set_enabled(true);
  runtime::Runtime rt{sys};
  (void)apps::run_qvsim(rt, MemMode::kSystem, cfg);
  bool found = false;
  for (const auto& e : sys.events().events()) {
    if (e.type == sim::EventType::kAllocation && e.bytes == (16ull << 12)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Apps, ChecksumsIdenticalAcrossModesAndPageSizes) {
  const auto cfg = bs::hotspot_config(bs::Scale::kSmall);
  std::vector<std::uint64_t> sums;
  for (const auto page : {pagetable::kSystemPage4K, pagetable::kSystemPage64K}) {
    for (MemMode m : {MemMode::kExplicit, MemMode::kManaged, MemMode::kSystem}) {
      core::System sys{bs::rodinia_config(page, true)};
      runtime::Runtime rt{sys};
      sums.push_back(apps::run_hotspot(rt, m, cfg).checksum);
    }
  }
  for (std::size_t i = 1; i < sums.size(); ++i) EXPECT_EQ(sums[i], sums[0]);
}

TEST(Apps, ReportsFillAllPhases) {
  const auto r = run_mode(MemMode::kExplicit, [&](runtime::Runtime& rt, MemMode m) {
    return apps::run_hotspot(rt, m, bs::hotspot_config(bs::Scale::kSmall));
  });
  EXPECT_GT(r.times.alloc_s, 0.0);
  EXPECT_GT(r.times.cpu_init_s, 0.0);
  EXPECT_GT(r.times.compute_s, 0.0);
  EXPECT_GT(r.times.dealloc_s, 0.0);
  EXPECT_NEAR(r.times.reported_total_s(),
              r.times.alloc_s + r.times.gpu_init_s + r.times.compute_s +
                  r.times.dealloc_s,
              1e-12);
  EXPECT_GT(r.compute_traffic.l1l2_bytes, 0u);
}

TEST(Apps, UnifiedBufferExplicitModeKeepsHostDevicePair) {
  core::System sys = make_system();
  runtime::Runtime rt{sys};
  auto ub = apps::UnifiedBuffer::create(rt, MemMode::kExplicit, 1 << 12, "x");
  EXPECT_FALSE(ub.unified());
  EXPECT_NE(ub.host().va, ub.device().va);
  reinterpret_cast<int*>(ub.host().host)[0] = 11;
  ub.h2d(rt);
  EXPECT_EQ(reinterpret_cast<int*>(ub.device().host)[0], 11);
  ub.free(rt);
}

TEST(Apps, UnifiedBufferUnifiedModesShareOneBuffer) {
  core::System sys = make_system();
  runtime::Runtime rt{sys};
  auto ub = apps::UnifiedBuffer::create(rt, MemMode::kSystem, 1 << 12, "x");
  EXPECT_TRUE(ub.unified());
  EXPECT_EQ(ub.host().va, ub.device().va);
  ub.h2d(rt);  // no-op, must not throw
  ub.free(rt);
}

}  // namespace
}  // namespace ghum
