// Fault-injection and resilience subsystem (DESIGN.md "Fault model &
// resilience"): Status surface, injected denials/batch failures, link
// degradation windows, ECC frame retirement, and the determinism contract
// (same seed + config => same simulated timeline, bit for bit).

#include <gtest/gtest.h>

#include "apps/hotspot.hpp"
#include "benchsupport/scenarios.hpp"
#include "core/system.hpp"
#include "driver/migration_engine.hpp"
#include "fault/fault_injector.hpp"
#include "fault/status.hpp"
#include "os/page_fault.hpp"
#include "profile/tracer.hpp"
#include "runtime/runtime.hpp"

namespace ghum {
namespace {

core::SystemConfig small_config() {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage64K;
  cfg.hbm_capacity = 8ull << 20;
  cfg.ddr_capacity = 64ull << 20;
  cfg.gpu_driver_baseline = 1ull << 20;
  cfg.event_log = true;
  return cfg;
}

// --- Status surface -----------------------------------------------------------

TEST(Status, ToStringCoversAllCodes) {
  EXPECT_EQ(to_string(Status::kSuccess), "success");
  EXPECT_EQ(to_string(Status::kErrorMemoryAllocation), "out of memory");
  EXPECT_EQ(to_string(Status::kErrorOutOfMemory), "system out of memory");
  EXPECT_EQ(to_string(Status::kErrorInvalidValue), "invalid value");
  EXPECT_EQ(to_string(Status::kErrorDoubleFree), "double free");
  EXPECT_EQ(to_string(Status::kErrorEccUncorrectable), "uncorrectable ECC error");
}

TEST(Status, StatusErrorCarriesCode) {
  const StatusError e{Status::kErrorOutOfMemory, "ctx"};
  EXPECT_EQ(e.status(), Status::kErrorOutOfMemory);
  EXPECT_NE(std::string{e.what()}.find("out of memory"), std::string::npos);
}

TEST(RuntimeStatus, MallocDeviceReportsOomWithoutThrowing) {
  core::System sys{small_config()};
  runtime::Runtime rt{sys};
  core::Buffer out;
  // 16 MiB into an 8 MiB HBM: genuine OOM, reported not thrown.
  EXPECT_EQ(rt.malloc_device(16ull << 20, out, "big"), Status::kErrorMemoryAllocation);
  EXPECT_FALSE(out.valid());
  EXPECT_EQ(rt.peek_last_error(), Status::kErrorMemoryAllocation);
  // cudaGetLastError semantics: returns the sticky error, then clears it.
  EXPECT_EQ(rt.get_last_error(), Status::kErrorMemoryAllocation);
  EXPECT_EQ(rt.get_last_error(), Status::kSuccess);
  EXPECT_GE(sys.stats().get("runtime.oom.gpu_malloc"), 1u);
  EXPECT_GE(sys.events().count(sim::EventType::kOutOfMemory), 1u);
  // The machine is still usable after the failure.
  core::Buffer ok;
  EXPECT_EQ(rt.malloc_device(1ull << 20, ok, "small"), Status::kSuccess);
  EXPECT_TRUE(ok.valid());
}

// --- injected frame-allocation denials ---------------------------------------

TEST(Injection, PersistentDenialExhaustsGpuMallocRetries) {
  core::SystemConfig cfg = small_config();
  cfg.faults.enabled = true;
  cfg.faults.frame_alloc_denial_prob = 1.0;  // every attempt denied
  core::System sys{cfg};
  core::Buffer out;
  const sim::Picos t0 = sys.now();
  EXPECT_EQ(sys.gpu_malloc_status(2ull << 20, out), Status::kErrorMemoryAllocation);
  EXPECT_FALSE(out.valid());
  // Bounded retry: several denied attempts, backoff charged to the clock.
  EXPECT_GE(sys.fault_injector().denials(), 4u);
  EXPECT_GT(sys.now(), t0);
  EXPECT_GE(sys.stats().get("fault.alloc_denials"), 4u);
}

TEST(Injection, DenialFallsBackToCpuPlacement) {
  core::SystemConfig cfg = small_config();
  cfg.faults.enabled = true;
  cfg.faults.frame_alloc_denial_prob = 1.0;
  core::System sys{cfg};
  core::Buffer b = sys.sys_malloc(1 << 20);
  sys.kernel_begin("k");
  // GPU first touch is denied; the handler falls back (suppressed, so the
  // cure cannot be re-injected) and the access is served from the CPU.
  const auto v = sys.resolve(b.va, mem::Node::kGpu);
  EXPECT_EQ(v.node, mem::Node::kCpu);
  sys.kernel_end();
  EXPECT_GE(sys.stats().get("fault.alloc_denials"), 1u);
  EXPECT_GE(sys.stats().get("os.fault.fallback"), 1u);
  EXPECT_GE(sys.events().count(sim::EventType::kFallbackPlacement), 1u);
}

// --- migration-batch failures --------------------------------------------------

TEST(Injection, MigrationRetryIsBoundedAndCharged) {
  core::SystemConfig cfg = small_config();
  cfg.faults.enabled = true;
  cfg.faults.migration_batch_fail_prob = 1.0;  // every batch fails
  core::Machine m{cfg};
  fault::FaultInjector fi{m};
  m.set_fault_injector(&fi);
  os::PageFaultHandler pf{m};
  driver::MigrationEngine mig{m};

  os::Vma& v = m.address_space().create(1 << 20, os::AllocKind::kSystem, 65536, "a");
  for (std::uint64_t va = v.base; va < v.end(); va += 65536) {
    ASSERT_TRUE(m.map_system_page(v, va, mem::Node::kCpu));
  }
  const sim::Picos t0 = m.clock().now();
  // Fails every retry, aborts the batch; no pages move, residency intact.
  EXPECT_EQ(mig.migrate_system_range_to_gpu(v, v.base, v.size, ~0ull), 0u);
  EXPECT_EQ(v.resident_cpu_bytes, 1u << 20);
  EXPECT_EQ(m.stats().get("fault.migration_retries"),
            static_cast<std::uint64_t>(cfg.faults.migration_max_retries));
  EXPECT_EQ(m.stats().get("fault.migration_aborts"), 1u);
  EXPECT_GT(m.clock().now(), t0);  // retry backoff is simulated time
  EXPECT_GE(m.events().count(sim::EventType::kFaultMigrationRetry), 1u);
  EXPECT_EQ(m.events().count(sim::EventType::kFaultMigrationAbort), 1u);
}

// --- NVLink-C2C degradation windows -------------------------------------------

TEST(Injection, LinkDegradeWindowSlowsMigration) {
  core::SystemConfig clean_cfg = small_config();
  core::System clean{clean_cfg};
  {
    core::Buffer b = clean.sys_malloc(1 << 20);
    for (std::uint64_t off = 0; off < b.bytes; off += 64 << 10) {
      (void)clean.resolve(b.va + off, mem::Node::kCpu);
    }
    clean.prefetch(b, 0, b.bytes, mem::Node::kGpu);
  }

  core::SystemConfig slow_cfg = small_config();
  slow_cfg.faults.enabled = true;
  slow_cfg.faults.link_degrade.push_back({.start = 0,
                                          .duration = sim::milliseconds(100),
                                          .bandwidth_factor = 4.0,
                                          .latency_factor = 4.0});
  core::System slow{slow_cfg};
  {
    core::Buffer b = slow.sys_malloc(1 << 20);
    for (std::uint64_t off = 0; off < b.bytes; off += 64 << 10) {
      (void)slow.resolve(b.va + off, mem::Node::kCpu);
    }
    slow.prefetch(b, 0, b.bytes, mem::Node::kGpu);
  }
  EXPECT_GT(slow.now(), clean.now());
  EXPECT_EQ(slow.stats().get("fault.link_degrade_windows"), 1u);
  EXPECT_GE(slow.events().count(sim::EventType::kLinkDegradeBegin), 1u);
}

// --- ECC uncorrectable errors ---------------------------------------------------

TEST(Injection, EccRetirementShrinksHbm) {
  core::SystemConfig cfg = small_config();
  cfg.faults.enabled = true;
  cfg.faults.ecc_events.push_back({.time = 1, .bytes = 2ull << 20});
  core::System sys{cfg};
  sys.advance(sim::microseconds(1));
  sys.service_faults();
  const auto& gpu = sys.machine().frames(mem::Node::kGpu);
  EXPECT_EQ(gpu.retired_bytes(), 2ull << 20);
  EXPECT_EQ(gpu.capacity(), 6ull << 20);  // 8 MiB - 2 MiB retired
  EXPECT_EQ(sys.stats().get("fault.ecc_events"), 1u);
  EXPECT_EQ(sys.stats().get("fault.ecc_retired_bytes"), 2ull << 20);
  EXPECT_EQ(sys.events().count(sim::EventType::kEccRetirement), 1u);
  // The shrunken HBM still serves allocations.
  core::Buffer b;
  EXPECT_EQ(sys.gpu_malloc_status(2ull << 20, b), Status::kSuccess);
}

TEST(Injection, EccRetirementEvictsManagedToVacateFrames) {
  core::SystemConfig cfg = small_config();
  cfg.faults.enabled = true;
  cfg.faults.ecc_events.push_back({.time = sim::milliseconds(1), .bytes = 2ull << 20});
  core::System sys{cfg};
  // Fill the GPU with managed data: 6 MiB resident + 1 MiB driver baseline
  // leaves only 1 MiB of free frames — less than the 2 MiB the ECC event
  // wants to retire, so retirement must first evict a block.
  core::Buffer b = sys.managed_malloc(6ull << 20);
  sys.kernel_begin("fill");
  for (std::uint64_t off = 0; off < b.bytes; off += 2ull << 20) {
    (void)sys.resolve(b.va + off, mem::Node::kGpu);
  }
  sys.kernel_end();
  ASSERT_LT(sys.machine().frames(mem::Node::kGpu).free_bytes(), 2ull << 20);

  sys.advance(sim::milliseconds(2));
  sys.service_faults();
  EXPECT_EQ(sys.machine().frames(mem::Node::kGpu).retired_bytes(), 2ull << 20);
  EXPECT_EQ(sys.stats().get("fault.ecc_retired_bytes"), 2ull << 20);
  EXPECT_EQ(sys.stats().get("fault.ecc_unretired_bytes"), 0u);
  EXPECT_GE(sys.events().count(sim::EventType::kEviction), 1u);
  // The run survives: the evicted data is CPU-resident, not lost.
  const os::Vma* vma = sys.machine().address_space().find(b.va);
  ASSERT_NE(vma, nullptr);
  EXPECT_EQ(vma->resident_cpu_bytes + vma->resident_gpu_bytes, b.bytes);
}

// --- determinism under injection -----------------------------------------------

struct TimelineFingerprint {
  sim::Picos end_time = 0;
  std::uint64_t digest = 0;
};

TimelineFingerprint run_hotspot_under(const fault::FaultConfig& faults) {
  namespace bs = benchsupport;
  core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, false);
  cfg.event_log = true;
  cfg.faults = faults;
  core::System sys{cfg};
  runtime::Runtime rt{sys};
  const auto r = bs::guarded_run([&] {
    return apps::run_hotspot(rt, apps::MemMode::kManaged,
                             bs::hotspot_config(bs::Scale::kDefault));
  });
  EXPECT_TRUE(r.ok());
  return {sys.now(), sys.events().digest(sys.now())};
}

TEST(Determinism, SameSeedSameTimelineUnderInjection) {
  std::vector<fault::FaultConfig> scenarios;
  {
    fault::FaultConfig denial;
    denial.enabled = true;
    denial.frame_alloc_denial_prob = 0.05;
    scenarios.push_back(denial);
  }
  {
    fault::FaultConfig flaky;
    flaky.enabled = true;
    flaky.migration_batch_fail_prob = 0.3;
    scenarios.push_back(flaky);
  }
  {
    fault::FaultConfig combined;
    combined.enabled = true;
    combined.frame_alloc_denial_prob = 0.02;
    combined.migration_batch_fail_prob = 0.1;
    combined.link_degrade.push_back({.start = sim::milliseconds(4),
                                     .duration = sim::milliseconds(10),
                                     .bandwidth_factor = 3.0,
                                     .latency_factor = 2.0});
    combined.ecc_events.push_back(
        {.time = sim::milliseconds(1), .bytes = 2ull << 20});
    scenarios.push_back(combined);
  }
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const TimelineFingerprint a = run_hotspot_under(scenarios[i]);
    const TimelineFingerprint b = run_hotspot_under(scenarios[i]);
    EXPECT_EQ(a.end_time, b.end_time) << "scenario " << i;
    EXPECT_EQ(a.digest, b.digest) << "scenario " << i;
  }
}

TEST(Determinism, DifferentSeedDifferentDraws) {
  fault::FaultConfig f1;
  f1.enabled = true;
  f1.frame_alloc_denial_prob = 0.05;
  fault::FaultConfig f2 = f1;
  f2.seed = 0xdecafbadull;
  // Not required to differ in end time, but the injected decisions almost
  // surely diverge; assert only reproducibility per seed.
  const TimelineFingerprint a1 = run_hotspot_under(f1);
  const TimelineFingerprint a2 = run_hotspot_under(f1);
  const TimelineFingerprint b1 = run_hotspot_under(f2);
  EXPECT_EQ(a1.digest, a2.digest);
  EXPECT_EQ(b1.digest, run_hotspot_under(f2).digest);
}

}  // namespace
}  // namespace ghum
