#include <gtest/gtest.h>

#include "profile/tracer.hpp"
#include "runtime/runtime.hpp"

/// cudaMemAdvise semantics: preferred location (placement pinning) and
/// read-mostly duplication, including their interactions with first-touch,
/// access-counter migration, eviction pressure and writes.

namespace ghum {
namespace {

using MemAdvice = core::System::MemAdvice;

core::SystemConfig advise_config(bool counters = true) {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage64K;
  cfg.hbm_capacity = 8ull << 20;
  cfg.ddr_capacity = 64ull << 20;
  cfg.gpu_driver_baseline = 0;
  cfg.event_log = true;
  cfg.access_counter_migration = counters;
  cfg.counter_min_interval = 0;
  return cfg;
}

class AdviseTest : public ::testing::Test {
 protected:
  core::System sys{advise_config()};
  runtime::Runtime rt{sys};

  os::Vma& vma_of(const core::Buffer& b) {
    return *sys.machine().address_space().find_exact(b.va);
  }
};

TEST_F(AdviseTest, RejectsNonAdvisableKinds) {
  core::Buffer dev = rt.malloc_device(1 << 20);
  core::Buffer pin = rt.malloc_host(1 << 20);
  EXPECT_THROW(rt.mem_advise(dev, MemAdvice::kPreferredLocationCpu),
               std::invalid_argument);
  EXPECT_THROW(rt.mem_advise(pin, MemAdvice::kReadMostly), std::invalid_argument);
  core::Buffer sysb = rt.malloc_system(1 << 20);
  EXPECT_THROW(rt.mem_advise(sysb, MemAdvice::kReadMostly), std::invalid_argument);
}

TEST_F(AdviseTest, PreferredLocationOverridesGpuFirstTouchForSystemMemory) {
  core::Buffer b = rt.malloc_system(1 << 20);
  rt.mem_advise(b, MemAdvice::kPreferredLocationCpu);
  (void)rt.launch("touch", 0, [&] {
    auto s = rt.device_span<float>(b);
    for (std::size_t i = 0; i < s.size(); i += 16384) s.store(i, 1.f);
  });
  // GPU-origin first touch, but placement followed the advice.
  EXPECT_EQ(vma_of(b).resident_cpu_bytes, 1ull << 20);
  EXPECT_EQ(vma_of(b).resident_gpu_bytes, 0u);
}

TEST_F(AdviseTest, PreferredLocationGpuPlacesCpuFirstTouchOnGpu) {
  core::Buffer b = rt.malloc_system(1 << 20);
  rt.mem_advise(b, MemAdvice::kPreferredLocationGpu);
  (void)rt.host_phase("init", 0, [&] {
    auto s = rt.host_span<float>(b);
    for (std::size_t i = 0; i < s.size(); i += 16384) s.store(i, 1.f);
  });
  EXPECT_EQ(vma_of(b).resident_gpu_bytes, 1ull << 20);
}

TEST_F(AdviseTest, PreferredCpuSuppressesCounterMigration) {
  core::Buffer b = rt.malloc_system(4 << 20);
  rt.mem_advise(b, MemAdvice::kPreferredLocationCpu);
  (void)rt.host_phase("init", 0, [&] {
    auto s = rt.host_span<float>(b);
    for (std::size_t i = 0; i < s.size(); ++i) s.store(i, 1.f);
  });
  for (int round = 0; round < 4; ++round) {
    (void)rt.launch("sweep", 0, [&] {
      auto s = rt.device_span<float>(b);
      for (std::size_t i = 0; i < s.size(); ++i) (void)s.load(i);
    });
  }
  // Hot data, but the advice pins it: no counter-driven migration.
  EXPECT_EQ(sys.access_counters().migrated_h2d_bytes(), 0u);
  EXPECT_EQ(vma_of(b).resident_cpu_bytes, 4ull << 20);
}

TEST_F(AdviseTest, UnsetPreferredLocationRestoresMigration) {
  core::Buffer b = rt.malloc_system(4 << 20);
  rt.mem_advise(b, MemAdvice::kPreferredLocationCpu);
  rt.mem_advise(b, MemAdvice::kUnsetPreferredLocation);
  (void)rt.host_phase("init", 0, [&] {
    auto s = rt.host_span<float>(b);
    for (std::size_t i = 0; i < s.size(); ++i) s.store(i, 1.f);
  });
  for (int round = 0; round < 4; ++round) {
    (void)rt.launch("sweep", 0, [&] {
      auto s = rt.device_span<float>(b);
      for (std::size_t i = 0; i < s.size(); ++i) (void)s.load(i);
    });
  }
  EXPECT_GT(sys.access_counters().migrated_h2d_bytes(), 0u);
}

TEST_F(AdviseTest, ManagedPreferredCpuRemoteMapsInsteadOfMigrating) {
  core::Buffer b = rt.malloc_managed(2 << 20);
  rt.mem_advise(b, MemAdvice::kPreferredLocationCpu);
  (void)rt.host_phase("init", 0, [&] {
    auto s = rt.host_span<float>(b);
    for (std::size_t i = 0; i < s.size(); ++i) s.store(i, 1.f);
  });
  const auto rec = rt.launch("read", 0, [&] {
    auto s = rt.device_span<float>(b);
    for (std::size_t i = 0; i < s.size(); ++i) (void)s.load(i);
  });
  EXPECT_EQ(rec.traffic.migration_h2d_bytes, 0u);
  EXPECT_GT(rec.traffic.c2c_read_bytes, 0u);
  EXPECT_EQ(vma_of(b).resident_gpu_bytes, 0u);
}

TEST_F(AdviseTest, ManagedPreferredGpuKeepsCpuAccessRemote) {
  core::Buffer b = rt.malloc_managed(2 << 20);
  rt.mem_advise(b, MemAdvice::kPreferredLocationGpu);
  (void)rt.launch("gpu_init", 0, [&] {
    auto s = rt.device_span<float>(b);
    for (std::size_t i = 0; i < s.size(); ++i) s.store(i, 2.f);
  });
  ASSERT_EQ(vma_of(b).resident_gpu_bytes, 2ull << 20);
  const auto rec = rt.host_phase("cpu_read", 0, [&] {
    auto s = rt.host_span<float>(b);
    for (std::size_t i = 0; i < s.size(); i += 1024) (void)s.load(i);
  });
  // Data stayed GPU-resident; the CPU read it over the link.
  EXPECT_EQ(vma_of(b).resident_gpu_bytes, 2ull << 20);
  EXPECT_GT(rec.traffic.cpu_remote_read_bytes, 0u);
  EXPECT_EQ(rec.traffic.migration_d2h_bytes, 0u);
}

TEST_F(AdviseTest, ReadMostlyDuplicatesAndServesBothSidesLocally) {
  core::Buffer b = rt.malloc_managed(2 << 20);
  rt.mem_advise(b, MemAdvice::kReadMostly);
  (void)rt.host_phase("init", 0, [&] {
    auto s = rt.host_span<float>(b);
    for (std::size_t i = 0; i < s.size(); ++i) s.store(i, 3.f);
  });
  const auto gpu_rec = rt.launch("gpu_read", 0, [&] {
    auto s = rt.device_span<float>(b);
    for (std::size_t i = 0; i < s.size(); ++i) (void)s.load(i);
  });
  // Replica built (one-off copy), then reads are local HBM.
  EXPECT_EQ(sys.managed_engine().replica_count(), 1u);
  EXPECT_GT(gpu_rec.traffic.hbm_read_bytes, 0u);
  EXPECT_EQ(gpu_rec.traffic.c2c_read_bytes, 0u);
  // Both copies accounted: residency exceeds the allocation size.
  EXPECT_EQ(vma_of(b).resident_cpu_bytes, 2ull << 20);
  EXPECT_EQ(vma_of(b).resident_gpu_bytes, 2ull << 20);
  // CPU reads stay local too.
  const auto cpu_rec = rt.host_phase("cpu_read", 0, [&] {
    auto s = rt.host_span<float>(b);
    for (std::size_t i = 0; i < s.size(); i += 64) (void)s.load(i);
  });
  EXPECT_EQ(cpu_rec.traffic.cpu_remote_read_bytes, 0u);
  EXPECT_GT(cpu_rec.traffic.ddr_read_bytes, 0u);
}

TEST_F(AdviseTest, GpuWriteCollapsesReplica) {
  core::Buffer b = rt.malloc_managed(2 << 20);
  rt.mem_advise(b, MemAdvice::kReadMostly);
  (void)rt.launch("read_then_write", 0, [&] {
    auto s = rt.device_span<float>(b);
    (void)s.load(0);  // builds the replica
    s.store(1, 9.f);  // write collapses it
    s.flush();
  });
  EXPECT_EQ(sys.managed_engine().replica_count(), 0u);
  EXPECT_EQ(vma_of(b).resident_gpu_bytes, 0u);
}

TEST_F(AdviseTest, CpuWriteCollapsesReplica) {
  core::Buffer b = rt.malloc_managed(2 << 20);
  rt.mem_advise(b, MemAdvice::kReadMostly);
  (void)rt.launch("read", 0, [&] {
    auto s = rt.device_span<float>(b);
    (void)s.load(0);
  });
  ASSERT_EQ(sys.managed_engine().replica_count(), 1u);
  (void)rt.host_phase("write", 0, [&] {
    auto s = rt.host_span<float>(b);
    s.store(0, 1.f);
  });
  EXPECT_EQ(sys.managed_engine().replica_count(), 0u);
}

TEST_F(AdviseTest, UnsetReadMostlyDropsAllReplicas) {
  core::Buffer b = rt.malloc_managed(6 << 20);
  rt.mem_advise(b, MemAdvice::kReadMostly);
  (void)rt.launch("read", 0, [&] {
    auto s = rt.device_span<float>(b);
    for (std::size_t i = 0; i < s.size(); i += 1024) (void)s.load(i);
  });
  ASSERT_EQ(sys.managed_engine().replica_count(), 3u);
  rt.mem_advise(b, MemAdvice::kUnsetReadMostly);
  EXPECT_EQ(sys.managed_engine().replica_count(), 0u);
  EXPECT_EQ(vma_of(b).resident_gpu_bytes, 0u);
}

TEST_F(AdviseTest, ReplicasAreDroppedFirstUnderPressure) {
  // 8 MiB HBM: 3 replicas + then a big cudaMalloc forces... replicas are
  // invisible to cudaMalloc; pressure comes from managed faults instead.
  core::Buffer ro = rt.malloc_managed(6 << 20, "ro");
  rt.mem_advise(ro, MemAdvice::kReadMostly);
  (void)rt.launch("read", 0, [&] {
    auto s = rt.device_span<float>(ro);
    for (std::size_t i = 0; i < s.size(); i += 1024) (void)s.load(i);
  });
  ASSERT_EQ(sys.managed_engine().replica_count(), 3u);
  // A second managed allocation faults in 4 MiB: replicas must yield
  // without counting as real evictions.
  core::Buffer rw = rt.malloc_managed(4 << 20, "rw");
  (void)rt.launch("fill", 0, [&] {
    auto s = rt.device_span<float>(rw);
    for (std::size_t i = 0; i < s.size(); i += 4096) s.store(i, 1.f);
  });
  EXPECT_LT(sys.managed_engine().replica_count(), 3u);
  EXPECT_EQ(sys.managed_engine().evictions(), 0u);
  // The read-mostly data is still fully CPU-resident (authoritative copy).
  EXPECT_EQ(vma_of(ro).resident_cpu_bytes, 6ull << 20);
}

TEST_F(AdviseTest, ReadMostlyFreeReleasesEverything) {
  core::Buffer b = rt.malloc_managed(4 << 20);
  rt.mem_advise(b, MemAdvice::kReadMostly);
  (void)rt.launch("read", 0, [&] {
    auto s = rt.device_span<float>(b);
    for (std::size_t i = 0; i < s.size(); i += 1024) (void)s.load(i);
  });
  rt.free(b);
  EXPECT_EQ(sys.machine().frames(mem::Node::kGpu).used(), 0u);
  EXPECT_EQ(sys.machine().frames(mem::Node::kCpu).used(), 0u);
  EXPECT_EQ(sys.managed_engine().replica_count(), 0u);
}

}  // namespace
}  // namespace ghum
