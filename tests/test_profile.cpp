#include <gtest/gtest.h>

#include "core/system.hpp"
#include "obs/json_check.hpp"
#include "profile/memory_profiler.hpp"
#include "profile/trace_export.hpp"
#include "profile/tracer.hpp"
#include "profile/workload_analysis.hpp"
#include "runtime/runtime.hpp"

namespace ghum {
namespace {

core::SystemConfig prof_config() {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage64K;
  cfg.hbm_capacity = 8ull << 20;
  cfg.ddr_capacity = 64ull << 20;
  cfg.gpu_driver_baseline = 1ull << 20;
  cfg.event_log = true;
  cfg.profiler_enabled = true;
  cfg.profiler_period = sim::microseconds(10);
  return cfg;
}

TEST(MemoryProfiler, SamplesOnThePeriodDuringAdvances) {
  core::System sys{prof_config()};
  sys.advance(sim::microseconds(100));
  const auto& samples = sys.profiler().samples();
  // Initial mark + ~10 periodic samples.
  EXPECT_GE(samples.size(), 10u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].time, samples[i - 1].time);
  }
}

TEST(MemoryProfiler, GpuUsedIncludesDriverBaseline) {
  core::System sys{prof_config()};
  sys.profiler().mark();
  EXPECT_EQ(sys.profiler().samples().back().gpu_used_bytes, 1ull << 20);
}

TEST(MemoryProfiler, RssRampsDuringCpuInitialization) {
  core::System sys{prof_config()};
  runtime::Runtime rt{sys};
  core::Buffer b = rt.malloc_system(2 << 20);
  sys.host_phase_begin("init");
  {
    auto s = rt.host_span<float>(b);
    for (std::size_t i = 0; i < s.size(); ++i) s.store(i, 1.0f);
  }
  (void)sys.host_phase_end();
  sys.profiler().mark();
  const auto& samples = sys.profiler().samples();
  // RSS must be non-decreasing during the ramp and reach the buffer size.
  EXPECT_EQ(samples.back().cpu_rss_bytes, 2ull << 20);
  bool saw_partial = false;
  for (const auto& s : samples) {
    if (s.cpu_rss_bytes > 0 && s.cpu_rss_bytes < (2ull << 20)) saw_partial = true;
  }
  EXPECT_TRUE(saw_partial) << "profiler should capture the ramp, not just ends";
}

TEST(MemoryProfiler, PeaksAndTsvOutput) {
  core::System sys{prof_config()};
  runtime::Runtime rt{sys};
  core::Buffer b = rt.malloc_device(2 << 20);
  sys.profiler().mark();
  rt.free(b);
  sys.profiler().mark();
  EXPECT_EQ(sys.profiler().peak_gpu_used(), (2ull << 20) + (1ull << 20));
  const std::string tsv = sys.profiler().to_tsv();
  EXPECT_NE(tsv.find("time_ms"), std::string::npos);
  EXPECT_NE(tsv.find('\n'), std::string::npos);
}

TEST(Tracer, SummarizesByTypeAndWindow) {
  core::System sys{prof_config()};
  runtime::Runtime rt{sys};
  core::Buffer b = rt.malloc_managed(4 << 20);
  const sim::Picos mid = sys.now();
  (void)rt.launch("k", 0, [&] {
    auto s = rt.device_span<float>(b);
    s.store(0, 1.0f);
    s.store((2 << 20) / 4, 1.0f);  // second block
  });
  profile::Tracer tracer{sys.events()};
  const auto all = tracer.summarize();
  EXPECT_EQ(all.managed_gpu_faults, 2u);
  const auto before = tracer.summarize(0, mid);
  EXPECT_EQ(before.managed_gpu_faults, 0u);
  EXPECT_FALSE(tracer.to_text().empty());
}

TEST(Tracer, LinkDegradeWindowsCountByOverlapNotByBeginEvent) {
  sim::EventLog log;
  log.set_enabled(true);
  auto window = [&](sim::Picos b, sim::Picos e) {
    log.record({.time = b, .type = sim::EventType::kLinkDegradeBegin});
    log.record({.time = e, .type = sim::EventType::kLinkDegradeEnd});
  };
  window(sim::microseconds(1), sim::microseconds(5));     // entirely before
  window(sim::microseconds(10), sim::microseconds(30));   // straddles t0
  window(sim::microseconds(40), sim::microseconds(60));   // fully inside
  window(sim::microseconds(90), sim::microseconds(200));  // straddles t1
  window(sim::microseconds(300), sim::microseconds(310)); // entirely after
  profile::Tracer tracer{log};
  // Regression: a window whose Begin fell before t0 but whose End lands
  // inside [t0, t1) used to be invisible (only Begin events were counted).
  const auto s = tracer.summarize(sim::microseconds(20), sim::microseconds(100));
  EXPECT_EQ(s.link_degrade_windows, 3u);
  // The full-range summary still sees every window once.
  EXPECT_EQ(tracer.summarize().link_degrade_windows, 5u);
}

TEST(Tracer, OpenLinkDegradeWindowCountsUntilEndOfLog) {
  sim::EventLog log;
  log.set_enabled(true);
  log.record({.time = sim::microseconds(10),
              .type = sim::EventType::kLinkDegradeBegin});
  profile::Tracer tracer{log};
  // Still degrading when the log ends: visible to any window it overlaps...
  EXPECT_EQ(tracer.summarize(sim::microseconds(20), sim::microseconds(100))
                .link_degrade_windows,
            1u);
  EXPECT_EQ(tracer.summarize().link_degrade_windows, 1u);
  // ...but not to one that closed before the degradation began.
  EXPECT_EQ(tracer.summarize(0, sim::microseconds(5)).link_degrade_windows, 0u);
}

TEST(WorkloadAnalysis, MatchingAndTotals) {
  profile::WorkloadAnalysis wa;
  cache::KernelRecord r1{.name = "srad.coeff", .kernel_id = 1, .start = 0,
                         .duration = sim::microseconds(5), .traffic = {}};
  r1.traffic.hbm_read_bytes = 100;
  cache::KernelRecord r2 = r1;
  r2.name = "srad.update";
  r2.traffic.hbm_read_bytes = 50;
  cache::KernelRecord r3 = r1;
  r3.name = "other";
  wa.add(r1);
  wa.add(r2);
  wa.add(r3);
  EXPECT_EQ(wa.matching("srad").size(), 2u);
  EXPECT_EQ(wa.total("srad").hbm_read_bytes, 150u);
  EXPECT_EQ(wa.total("nope").hbm_read_bytes, 0u);
  EXPECT_FALSE(wa.to_table().empty());
}

TEST(WorkloadAnalysis, ThroughputComputation) {
  cache::KernelRecord r{.name = "k", .kernel_id = 1, .start = 0,
                        .duration = sim::milliseconds(1), .traffic = {}};
  r.traffic.l1l2_bytes = 1 << 20;
  // 1 MiB / 1 ms = ~1.07 GB/s.
  EXPECT_NEAR(r.l1l2_throughput_Bps(), static_cast<double>(1 << 20) / 1e-3, 1.0);
}

TEST(TraceExport, ProducesWellFormedChromeTrace) {
  core::System sys{prof_config()};
  runtime::Runtime rt{sys};
  core::Buffer b = rt.malloc_managed(4 << 20);
  (void)rt.launch("my_kernel", 0, [&] {
    auto s = rt.device_span<float>(b);
    s.store(0, 1.0f);
  });
  const std::string json = profile::to_chrome_trace(sys.events(), sys.workload());
  // Structural sanity: document shape, the kernel duration event, and at
  // least one memory-system instant event.
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"my_kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("gpu_managed_fault"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  long braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceExport, KernelArgsCarryTrafficCounters) {
  core::System sys{prof_config()};
  runtime::Runtime rt{sys};
  core::Buffer b = rt.malloc_device(1 << 20);
  (void)rt.launch("k", 0, [&] {
    auto s = rt.device_span<float>(b);
    for (std::size_t i = 0; i < s.size(); ++i) s.store(i, 1.0f);
  });
  const std::string json = profile::to_chrome_trace(sys.events(), sys.workload());
  EXPECT_NE(json.find("\"hbm_bytes\":1048576"), std::string::npos);
}

TEST(MemoryProfiler, StopEmitsFinalSampleWhenPeriodExceedsRun) {
  // Regression: a run shorter than one profiler period used to leave only
  // the t0 sample, losing the end state Figures 4/5 plot.
  core::SystemConfig cfg = prof_config();
  cfg.profiler_period = sim::milliseconds(10);  // far beyond the run below
  core::System sys{cfg};
  runtime::Runtime rt{sys};
  core::Buffer b = rt.malloc_device(2 << 20);
  sys.advance(sim::microseconds(5));
  sys.profiler().stop();
  const auto& samples = sys.profiler().samples();
  ASSERT_GE(samples.size(), 2u);
  EXPECT_EQ(samples.back().time, sys.now());
  EXPECT_EQ(samples.back().gpu_used_bytes, (2ull << 20) + (1ull << 20));
  rt.free(b);
}

TEST(MemoryProfiler, NoDuplicateTimestamps) {
  core::System sys{prof_config()};
  sys.profiler().mark();  // same time as the start() sample
  sys.advance(sim::microseconds(40));
  sys.profiler().mark();  // may coincide with a periodic sample
  sys.profiler().stop();
  const auto& samples = sys.profiler().samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].time, samples[i].time) << "duplicate sample at " << i;
  }
}

TEST(Tracer, ToTextListsEventsAndTruncates) {
  sim::EventLog log;
  log.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    log.record({.time = sim::microseconds(i + 1),
                .type = sim::EventType::kMigrationH2D,
                .va = 0xabc0ull + static_cast<std::uint64_t>(i),
                .bytes = 64});
  }
  profile::Tracer tracer{log};
  const std::string full = tracer.to_text();
  EXPECT_NE(full.find("migration_h2d"), std::string::npos);
  EXPECT_NE(full.find("va=0xabc0"), std::string::npos);
  EXPECT_EQ(full.find("more)"), std::string::npos);
  // Truncation reports how many events were dropped.
  const std::string cut = tracer.to_text(2);
  EXPECT_NE(cut.find("... (3 more)"), std::string::npos);
}

TEST(Tracer, SummarizeWindowEdgesAreHalfOpen) {
  sim::EventLog log;
  log.set_enabled(true);
  const sim::Picos t0 = sim::microseconds(10);
  const sim::Picos t1 = sim::microseconds(20);
  log.record({.time = t0, .type = sim::EventType::kMigrationH2D, .bytes = 1});
  log.record({.time = sim::microseconds(15),
              .type = sim::EventType::kMigrationH2D,
              .bytes = 2});
  log.record({.time = t1, .type = sim::EventType::kMigrationH2D, .bytes = 4});
  profile::Tracer tracer{log};
  // [t0, t1): the event at t0 is included, the one exactly at t1 is not.
  const auto s = tracer.summarize(t0, t1);
  EXPECT_EQ(s.migrations_h2d, 2u);
  EXPECT_EQ(s.migrated_h2d_bytes, 3u);
  // Empty window.
  const auto empty = tracer.summarize(t0, t0);
  EXPECT_EQ(empty.migrations_h2d, 0u);
  EXPECT_EQ(empty.migrated_h2d_bytes, 0u);
}

TEST(TraceExport, ParsesAsStrictJson) {
  core::System sys{prof_config()};
  runtime::Runtime rt{sys};
  core::Buffer b = rt.malloc_managed(4 << 20);
  (void)rt.launch("k", 0, [&] {
    auto s = rt.device_span<float>(b);
    s.store(0, 1.0f);
  });
  std::string err;
  EXPECT_TRUE(obs::json_valid(
      profile::to_chrome_trace(sys.events(), sys.workload()), &err))
      << err;
}

TEST(TraceExport, EscapesHostileKernelNames) {
  // Caller-supplied kernel names can contain quotes, backslashes and
  // control characters; the exporter must keep the document parseable.
  core::System sys{prof_config()};
  runtime::Runtime rt{sys};
  core::Buffer b = rt.malloc_device(1 << 20);
  (void)rt.launch("step \"k\"\\x\ttail\n", 0, [&] {
    auto s = rt.device_span<float>(b);
    s.store(0, 1.0f);
  });
  const std::string json = profile::to_chrome_trace(sys.events(), sys.workload());
  std::string err;
  ASSERT_TRUE(obs::json_valid(json, &err)) << err;
  EXPECT_NE(json.find(R"(step \"k\"\\x\ttail\n)"), std::string::npos);
}

TEST(KernelTraffic, AggregationOperator) {
  cache::KernelTraffic a, b;
  a.hbm_read_bytes = 1;
  a.c2c_write_bytes = 2;
  a.managed_faults = 3;
  b.hbm_read_bytes = 10;
  b.l1l2_bytes = 5;
  a += b;
  EXPECT_EQ(a.hbm_read_bytes, 11u);
  EXPECT_EQ(a.c2c_write_bytes, 2u);
  EXPECT_EQ(a.l1l2_bytes, 5u);
  EXPECT_EQ(a.gpu_local_bytes(), 11u);
  EXPECT_EQ(a.gpu_remote_bytes(), 2u);
}

}  // namespace
}  // namespace ghum
