#include <gtest/gtest.h>

#include "benchsupport/scenarios.hpp"
#include "profile/tracer.hpp"
#include "runtime/runtime.hpp"

/// Cross-cutting integration scenarios: multiple subsystems interacting
/// the way real workloads drive them.

namespace ghum {
namespace {

namespace bs = benchsupport;
using apps::MemMode;

TEST(Integration, ChecksumsEqualAcrossModesUnderHeavyOversubscription) {
  // Correctness must be independent of the memory-management style even
  // when eviction, remote mapping and CPU fallback all trigger.
  const auto cfg = bs::hotspot_config(bs::Scale::kSmall);
  const std::uint64_t ref = apps::hotspot_reference_checksum(cfg);
  for (MemMode m : {MemMode::kExplicit, MemMode::kManaged, MemMode::kSystem}) {
    core::SystemConfig mc = bs::rodinia_config(pagetable::kSystemPage4K, true);
    mc.hbm_capacity = 8ull << 20;  // barely fits the cudaMalloc intermediate
    core::System sys{mc};
    runtime::Runtime rt{sys};
    EXPECT_EQ(apps::run_hotspot(rt, m, cfg).checksum, ref)
        << "mode " << to_string(m);
  }
}

TEST(Integration, QvAllModesAgreeUnderOversubscription) {
  apps::QvConfig cfg{.qubits = 13, .depth = 2, .seed = 31};
  const std::uint64_t ref = apps::qvsim_reference_checksum(cfg);
  for (MemMode m : {MemMode::kExplicit, MemMode::kManaged, MemMode::kSystem}) {
    core::SystemConfig mc = bs::qv_config(pagetable::kSystemPage64K, false);
    mc.hbm_capacity = 2ull << 20;  // statevector is 128 KiB... force chunking
    mc.hbm_capacity = 512ull << 10;
    mc.gpu_driver_baseline = 256ull << 10;
    core::System sys{mc};
    runtime::Runtime rt{sys};
    EXPECT_EQ(apps::run_qvsim(rt, m, cfg).checksum, ref) << to_string(m);
  }
}

TEST(Integration, BackToBackAppsShareOneMachineCleanly) {
  core::System sys{bs::rodinia_config(pagetable::kSystemPage64K, true)};
  runtime::Runtime rt{sys};
  const auto r1 =
      apps::run_hotspot(rt, MemMode::kSystem, bs::hotspot_config(bs::Scale::kSmall));
  const auto r2 =
      apps::run_srad(rt, MemMode::kManaged, bs::srad_config(bs::Scale::kSmall));
  EXPECT_EQ(r1.checksum, apps::hotspot_reference_checksum(
                             bs::hotspot_config(bs::Scale::kSmall)));
  EXPECT_EQ(r2.checksum,
            apps::srad_reference_checksum(bs::srad_config(bs::Scale::kSmall)));
  // Second app pays no context init (already up).
  EXPECT_EQ(r2.times.context_s, 0.0);
  // Machine drained back to baseline.
  EXPECT_EQ(sys.machine().gpu_used_bytes(), sys.config().gpu_driver_baseline);
  EXPECT_EQ(sys.machine().cpu_rss_bytes(), 0u);
}

TEST(Integration, MemcpyTimingOrdersAcrossPaths) {
  core::System sys{bs::rodinia_config(pagetable::kSystemPage64K, false)};
  runtime::Runtime rt{sys};
  const std::uint64_t bytes = 16 << 20;
  core::Buffer h1 = rt.malloc_host(bytes);
  core::Buffer h2 = rt.malloc_host(bytes);
  core::Buffer d1 = rt.malloc_device(bytes);
  core::Buffer d2 = rt.malloc_device(bytes);
  auto timed = [&](auto&& fn) {
    const sim::Picos t0 = sys.now();
    fn();
    return sys.now() - t0;
  };
  const auto d2d = timed([&] {
    rt.memcpy(d2, d1, bytes, runtime::CopyKind::kDeviceToDevice);
  });
  const auto h2h = timed([&] {
    rt.memcpy(h2, h1, bytes, runtime::CopyKind::kHostToHost);
  });
  const auto h2d = timed([&] {
    rt.memcpy(d1, h1, bytes, runtime::CopyKind::kHostToDevice);
  });
  const auto d2h = timed([&] {
    rt.memcpy(h1, d1, bytes, runtime::CopyKind::kDeviceToHost);
  });
  // HBM-local copies are fastest; pinned link copies follow the 375/297
  // asymmetry; a host-to-host copy pays DDR read + DDR write and is the
  // slowest of the four.
  EXPECT_LT(d2d, h2d);
  EXPECT_LT(h2d, d2h);
  EXPECT_LT(d2h, h2h);
}

TEST(Integration, AtomicExchangeRemoteCostsLinkRoundTrip) {
  core::System sys{bs::rodinia_config(pagetable::kSystemPage64K, false)};
  runtime::Runtime rt{sys};
  core::Buffer pin = rt.malloc_host(1 << 12);
  sys.kernel_begin("atomics");
  {
    auto s = rt.device_span<int>(pin);
    const sim::Picos t0 = sys.now();
    (void)s.atomic_exchange(0, 42);
    EXPECT_GE(sys.now() - t0, 2 * sys.machine().c2c().latency());
  }
  (void)sys.kernel_end();
  EXPECT_EQ(sys.machine().c2c().atomics_issued(), 1u);
  EXPECT_EQ(reinterpret_cast<int*>(pin.host)[0], 42);
}

TEST(Integration, TracerWindowsIsolatePhases) {
  core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, true);
  cfg.event_log = true;
  core::System sys{cfg};
  runtime::Runtime rt{sys};
  const sim::Picos before_run = sys.now();
  (void)apps::run_srad(rt, MemMode::kSystem, bs::srad_config(bs::Scale::kSmall));
  const sim::Picos after_run = sys.now();
  profile::Tracer tracer{sys.events()};
  const auto inside = tracer.summarize(before_run, after_run);
  const auto outside = tracer.summarize(after_run, after_run + 1);
  EXPECT_GT(inside.gpu_first_touch_faults, 0u);
  EXPECT_EQ(outside.gpu_first_touch_faults, 0u);
}

TEST(Integration, FreeingUnknownBufferReportsInvalidValue) {
  core::System sys{bs::rodinia_config(pagetable::kSystemPage64K, false)};
  core::Buffer bogus;
  bogus.va = 0x1234;
  bogus.bytes = 64;
  bogus.host = reinterpret_cast<std::byte*>(&bogus);
  EXPECT_EQ(sys.free_buffer(bogus), ghum::Status::kErrorInvalidValue);
}

TEST(Integration, DoubleFreeReportsDistinctStatus) {
  core::System sys{bs::rodinia_config(pagetable::kSystemPage64K, false)};
  core::Buffer b = sys.sys_malloc(1 << 20);
  core::Buffer stale = b;  // keeps the handle after the real free clears b
  EXPECT_EQ(sys.free_buffer(b), ghum::Status::kSuccess);
  EXPECT_EQ(sys.free_buffer(stale), ghum::Status::kErrorDoubleFree);
  // Freeing the cleared handle is a silent no-op (cudaFree(nullptr)).
  EXPECT_EQ(sys.free_buffer(b), ghum::Status::kSuccess);
}

TEST(Integration, HostRegisterThenCounterMigrationStillWorks) {
  // The Section 5.1.2 optimization (pre-populate on CPU) composes with the
  // Section 2.2.1 mechanism (counters later migrate hot pages to the GPU).
  core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, true);
  cfg.counter_min_interval = 0;
  core::System sys{cfg};
  runtime::Runtime rt{sys};
  core::Buffer b = rt.malloc_system(4 << 20);
  rt.host_register(b);
  for (int round = 0; round < 4; ++round) {
    (void)rt.launch("sweep", 0, [&] {
      auto s = rt.device_span<float>(b);
      for (std::size_t i = 0; i < s.size(); ++i) (void)s.load(i);
    });
  }
  EXPECT_EQ(sys.stats().get("os.fault.gpu_first_touch"), 0u);
  EXPECT_GT(sys.access_counters().migrated_h2d_bytes(), 0u);
}

}  // namespace
}  // namespace ghum
