#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "apps/hotspot.hpp"
#include "apps/qvsim.hpp"
#include "apps/srad.hpp"
#include "net/fabric.hpp"
#include "net/halo.hpp"
#include "obs/metrics.hpp"

/// Inter-node network-model tests (DESIGN.md Section 12): NetSpec
/// validation, protocol selection at the exact crossover boundaries,
/// link-flap dilation, per-link serialization, history-digest determinism
/// and the multi-node halo workloads.

namespace ghum {
namespace {

core::SystemConfig node_cfg() {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage64K;
  cfg.hbm_capacity = 16ull << 20;
  cfg.ddr_capacity = 256ull << 20;
  cfg.gpu_driver_baseline = 1ull << 20;
  cfg.event_log = true;
  return cfg;
}

apps::HotspotConfig small_hotspot() {
  apps::HotspotConfig h;
  h.rows = 64;
  h.cols = 64;
  h.iterations = 3;
  return h;
}

// --- NetSpec validation ------------------------------------------------------

TEST(NetSpec, DefaultSpecValidates) {
  EXPECT_EQ(net::NetSpec{}.validate(), Status::kSuccess);
}

TEST(NetSpec, RejectsNonPositiveBandwidths) {
  for (auto field : {&net::NetSpec::wire_bandwidth_Bps,
                     &net::NetSpec::bcopy_bandwidth_Bps,
                     &net::NetSpec::gdr_get_bandwidth_Bps,
                     &net::NetSpec::gdr_put_bandwidth_Bps,
                     &net::NetSpec::distance_bandwidth_Bps}) {
    net::NetSpec s;
    s.*field = 0.0;
    EXPECT_EQ(s.validate(), Status::kErrorNetConfig);
    s.*field = -1.0;
    EXPECT_EQ(s.validate(), Status::kErrorNetConfig);
  }
}

TEST(NetSpec, RejectsNegativeLatencies) {
  for (auto field :
       {&net::NetSpec::wire_latency, &net::NetSpec::rndv_rts,
        &net::NetSpec::send_db, &net::NetSpec::am_bcopy,
        &net::NetSpec::rcache_overhead, &net::NetSpec::gdr_latency}) {
    net::NetSpec s;
    s.*field = -1;
    EXPECT_EQ(s.validate(), Status::kErrorNetConfig);
  }
}

TEST(NetSpec, RejectsPartialOrUnorderedThresholds) {
  net::NetSpec s;
  s.bcopy_max = 8192;  // zcopy_max still 0: partial ladder
  EXPECT_EQ(s.validate(), Status::kErrorNetConfig);

  s.zcopy_max = 4096;  // zcopy_max < bcopy_max: unordered
  EXPECT_EQ(s.validate(), Status::kErrorNetConfig);

  s.zcopy_max = 65536;  // ordered: eager_short_max <= bcopy_max <= zcopy_max
  EXPECT_EQ(s.validate(), Status::kSuccess);

  s.bcopy_max = 100;  // below eager_short_max (208)
  EXPECT_EQ(s.validate(), Status::kErrorNetConfig);
}

TEST(NetSpec, FabricConstructionThrowsNetConfig) {
  net::NetSpec bad;
  bad.wire_bandwidth_Bps = 0.0;
  try {
    net::Fabric f{bad, 2};
    FAIL() << "malformed spec must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorNetConfig);
  }
  try {
    net::Fabric f{net::NetSpec{}, 0};
    FAIL() << "zero endpoints must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorNetConfig);
  }
}

TEST(NetSpec, FlapWindowValidation) {
  fault::LinkFlapWindow bad_node;
  bad_node.node_a = 9;  // outside a 2-endpoint fabric
  try {
    net::Fabric f{net::NetSpec{}, 2, nullptr, {bad_node}};
    FAIL() << "out-of-range flap endpoint must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorInvalidValue);
  }
  fault::LinkFlapWindow bad_factor;
  bad_factor.bandwidth_factor = 0.5;  // factors dilate, never accelerate
  try {
    net::Fabric f{net::NetSpec{}, 2, nullptr, {bad_factor}};
    FAIL() << "factor < 1 must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorInvalidValue);
  }
}

TEST(NetSpec, StatusToStringRoundTrip) {
  // The new code has a distinct, stable message...
  EXPECT_EQ(to_string(Status::kErrorNetConfig), "malformed network spec");
  // ...and collides with no other status string.
  std::set<std::string_view> seen;
  for (const Status s :
       {Status::kSuccess, Status::kErrorMemoryAllocation,
        Status::kErrorOutOfMemory, Status::kErrorInvalidValue,
        Status::kErrorDoubleFree, Status::kErrorEccUncorrectable,
        Status::kErrorGpuReset, Status::kErrorUnrecoverable,
        Status::kErrorTimeout, Status::kErrorNodeLost,
        Status::kErrorDeadlineExceeded, Status::kErrorNetConfig}) {
    EXPECT_TRUE(seen.insert(to_string(s)).second)
        << "duplicate status string: " << to_string(s);
  }
}

TEST(NetSpec, ProtocolAndMemTypeNames) {
  EXPECT_EQ(to_string(net::Protocol::kEagerShort), "eager-short");
  EXPECT_EQ(to_string(net::Protocol::kEagerBcopy), "eager-bcopy");
  EXPECT_EQ(to_string(net::Protocol::kZcopy), "zcopy");
  EXPECT_EQ(to_string(net::Protocol::kRendezvous), "rendezvous");
  EXPECT_EQ(to_string(net::MemType::kHost), "host");
  EXPECT_EQ(to_string(net::MemType::kCudaManaged), "cuda-managed");
}

// --- protocol selection ------------------------------------------------------

/// Smallest size in (lo, hi] whose selected protocol differs from lo's.
std::uint64_t boundary_after(const net::Fabric& f, net::MemType mem,
                             std::uint64_t lo, std::uint64_t hi) {
  const net::Protocol base = f.select(lo, mem);
  while (lo + 1 < hi) {
    const std::uint64_t m = lo + (hi - lo) / 2;
    if (f.select(m, mem) == base) {
      lo = m;
    } else {
      hi = m;
    }
  }
  return hi;
}

TEST(Protocol, CrossoversLandOnCheaperProtocolBothSides) {
  const net::Fabric f{net::NetSpec{}, 2};
  for (const net::MemType mem :
       {net::MemType::kHost, net::MemType::kCudaManaged}) {
    std::uint64_t at = 8;
    std::vector<net::Protocol> order{f.select(at, mem)};
    // Walk every crossover up to 16 MiB.
    while (at < (16ull << 20)) {
      if (f.select(16ull << 20, mem) == f.select(at, mem)) break;
      const std::uint64_t b = boundary_after(f, mem, at, 16ull << 20);
      const net::Protocol before = f.select(b - 1, mem);
      const net::Protocol after = f.select(b, mem);
      ASSERT_NE(before, after);
      order.push_back(after);

      // One byte below the threshold, the old protocol is genuinely no
      // worse; at the threshold, the new one is strictly cheaper. The
      // short->bcopy boundary is eligibility-driven (the inline capacity),
      // so the cost comparison applies from bcopy onward.
      if (before != net::Protocol::kEagerShort) {
        EXPECT_LE(f.cost(before, b - 1, mem), f.cost(after, b - 1, mem))
            << "below boundary " << b << " mem " << to_string(mem);
        EXPECT_LT(f.cost(after, b, mem), f.cost(before, b, mem))
            << "at boundary " << b << " mem " << to_string(mem);
      } else {
        EXPECT_EQ(b, net::NetSpec{}.eager_short_max + 1);
      }
      at = b;
    }
    // All four regimes appear, in ladder order.
    ASSERT_EQ(order.size(), 4u) << "mem " << to_string(mem);
    EXPECT_EQ(order[0], net::Protocol::kEagerShort);
    EXPECT_EQ(order[1], net::Protocol::kEagerBcopy);
    EXPECT_EQ(order[2], net::Protocol::kZcopy);
    EXPECT_EQ(order[3], net::Protocol::kRendezvous);
  }
}

TEST(Protocol, ExplicitThresholdLadderIsHonoredExactly) {
  net::NetSpec s;
  s.bcopy_max = 4096;
  s.zcopy_max = 65536;
  const net::Fabric f{s, 2};
  const auto mem = net::MemType::kHost;
  EXPECT_EQ(f.select(s.eager_short_max, mem), net::Protocol::kEagerShort);
  EXPECT_EQ(f.select(s.eager_short_max + 1, mem), net::Protocol::kEagerBcopy);
  EXPECT_EQ(f.select(4096, mem), net::Protocol::kEagerBcopy);
  EXPECT_EQ(f.select(4097, mem), net::Protocol::kZcopy);
  EXPECT_EQ(f.select(65536, mem), net::Protocol::kZcopy);
  EXPECT_EQ(f.select(65537, mem), net::Protocol::kRendezvous);
}

TEST(Protocol, CudaManagedCostsExceedHost) {
  const net::Fabric f{net::NetSpec{}, 2};
  for (const std::uint64_t b : {64ull, 4096ull, 32768ull, 1ull << 20}) {
    const net::Protocol p = f.select(b, net::MemType::kCudaManaged);
    EXPECT_GT(f.cost(p, b, net::MemType::kCudaManaged),
              f.cost(p, b, net::MemType::kHost))
        << b;
  }
}

// --- transfers, serialization, flaps ----------------------------------------

TEST(Fabric, DirectedLinkSerializes) {
  net::Fabric f{net::NetSpec{}, 3};
  const auto mem = net::MemType::kHost;
  const net::Transfer a = f.transfer(0, 1, 1 << 20, mem, 0);
  EXPECT_EQ(a.queued, 0);
  // Same directed link, same request time: queues behind a.
  const net::Transfer b = f.transfer(0, 1, 1 << 20, mem, 0);
  EXPECT_EQ(b.start, a.end);
  EXPECT_EQ(b.queued, a.end);
  // Reverse direction and unrelated links are independent.
  EXPECT_EQ(f.transfer(1, 0, 1 << 20, mem, 0).queued, 0);
  EXPECT_EQ(f.transfer(0, 2, 1 << 20, mem, 0).queued, 0);
}

TEST(Fabric, TransferEndpointValidation) {
  net::Fabric f{net::NetSpec{}, 2};
  EXPECT_THROW((void)f.transfer(0, 0, 64, net::MemType::kHost, 0), StatusError);
  EXPECT_THROW((void)f.transfer(0, 7, 64, net::MemType::kHost, 0), StatusError);
}

TEST(Fabric, FlapWindowDilatesDeterministically) {
  fault::LinkFlapWindow w;
  w.start = sim::microseconds(10);
  w.duration = sim::microseconds(10);
  w.node_a = 0;  // node_b = kAllPeers: every link touching node 0
  w.bandwidth_factor = 4.0;
  w.latency_factor = 2.0;

  const auto run = [&] {
    net::Fabric f{net::NetSpec{}, 3, nullptr, {w}};
    const auto mem = net::MemType::kHost;
    struct Out {
      sim::Picos before, inside, inside_untouched, after;
      std::uint64_t flapped;
      std::uint64_t digest;
    } o{};
    o.before = f.transfer(0, 1, 1 << 20, mem, 0).end - 0;
    const sim::Picos t1 = sim::microseconds(12);
    const net::Transfer in = f.transfer(0, 2, 1 << 20, mem, t1);
    o.inside = in.end - in.start;
    // Link 1->2 does not touch node 0: unaffected even inside the window.
    const net::Transfer un = f.transfer(1, 2, 1 << 20, mem, t1);
    o.inside_untouched = un.end - un.start;
    const sim::Picos t2 = sim::microseconds(50);
    const net::Transfer af = f.transfer(2, 0, 1 << 20, mem, t2);
    o.after = af.end - af.start;
    o.flapped = f.totals().flapped_msgs;
    o.digest = f.digest();
    return o;
  };

  const auto a = run();
  EXPECT_GT(a.inside, a.before);          // dilated while the window is open
  EXPECT_EQ(a.inside_untouched, a.before);  // untouched link, same cost
  EXPECT_EQ(a.after, a.before);           // window closed, cost restored
  EXPECT_EQ(a.flapped, 1u);

  const auto b = run();  // bit-for-bit deterministic
  EXPECT_EQ(a.inside, b.inside);
  EXPECT_EQ(a.digest, b.digest);
}

TEST(Fabric, OverlappingFlapWindowsCompound) {
  fault::LinkFlapWindow w1;
  w1.start = 0;
  w1.duration = sim::microseconds(100);
  w1.node_a = 0;
  w1.bandwidth_factor = 2.0;
  w1.latency_factor = 1.0;
  fault::LinkFlapWindow w2 = w1;

  net::Fabric one{net::NetSpec{}, 2, nullptr, {w1}};
  net::Fabric two{net::NetSpec{}, 2, nullptr, {w1, w2}};
  const auto mem = net::MemType::kHost;
  const sim::Picos c1 = one.transfer(0, 1, 1 << 20, mem, 0).end;
  const sim::Picos c2 = two.transfer(0, 1, 1 << 20, mem, 0).end;
  EXPECT_GT(c2, c1);  // 4x bandwidth cut beats 2x
}

TEST(Fabric, DigestTracksHistoryExactly) {
  const auto drive = [](std::uint64_t third_size) {
    net::Fabric f{net::NetSpec{}, 2};
    (void)f.transfer(0, 1, 64, net::MemType::kHost, 0);
    (void)f.transfer(1, 0, 4096, net::MemType::kCudaManaged, 100);
    (void)f.transfer(0, 1, third_size, net::MemType::kHost, 200);
    return f.digest();
  };
  EXPECT_EQ(drive(1 << 20), drive(1 << 20));
  EXPECT_NE(drive(1 << 20), drive((1 << 20) + 1));
}

// --- multi-node workloads ----------------------------------------------------

TEST(Halo, HotspotRunsAndReproduces) {
  net::MultiNodeConfig mc;
  mc.nodes = 3;
  mc.mode = apps::MemMode::kManaged;
  mc.node_config = node_cfg();

  const net::MultiNodeResult a = net::run_hotspot_halo(mc, small_hotspot());
  const net::MultiNodeResult b = net::run_hotspot_halo(mc, small_hotspot());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.nodes, 3u);
  EXPECT_EQ(a.exchanges, small_hotspot().iterations);
  // 3 nodes: ends send 1 halo each, the middle sends 2 — per iteration.
  EXPECT_EQ(a.net.total_msgs(), 4ull * small_hotspot().iterations);
  EXPECT_GT(a.net_wait, 0);
  EXPECT_EQ(a.node_end.size(), 3u);
  EXPECT_GT(a.makespan, 0);
}

TEST(Halo, SradMovesTwoFieldsPerNeighbor) {
  net::MultiNodeConfig mc;
  mc.nodes = 2;
  mc.mode = apps::MemMode::kManaged;
  mc.node_config = node_cfg();
  apps::SradConfig s;
  s.rows = 64;
  s.cols = 64;
  s.iterations = 3;
  const net::MultiNodeResult r = net::run_srad_halo(mc, s);
  EXPECT_EQ(r.net.total_msgs(), 2ull * s.iterations);
  EXPECT_EQ(r.net.total_bytes(),
            2ull * s.iterations * 2ull * s.cols * sizeof(float));
}

TEST(Halo, QvChunkExchange) {
  net::MultiNodeConfig mc;
  mc.nodes = 4;
  mc.mode = apps::MemMode::kManaged;
  mc.node_config = node_cfg();
  apps::QvConfig q;
  q.qubits = 8;
  q.depth = 2;
  const net::MultiNodeResult a = net::run_qv_chunks(mc, q);
  const net::MultiNodeResult b = net::run_qv_chunks(mc, q);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_GT(a.exchanges, 0u);
  // Every node swaps half its 2^(8-2)-amplitude chunk every gate round.
  apps::QvConfig local = q;
  local.qubits = 6;
  const std::uint64_t gates = apps::qv_circuit(local).size();
  EXPECT_EQ(a.net.total_msgs(), 4ull * gates);
  EXPECT_EQ(a.net.total_bytes(), 4ull * gates * ((16ull << 6) / 2));
}

TEST(Halo, RejectsBadShapes) {
  net::MultiNodeConfig mc;
  mc.node_config = node_cfg();
  mc.nodes = 1;
  EXPECT_THROW((void)net::run_hotspot_halo(mc, small_hotspot()), StatusError);
  mc.nodes = 9;
  EXPECT_THROW((void)net::run_hotspot_halo(mc, small_hotspot()), StatusError);

  mc.nodes = 3;  // not a power of two
  EXPECT_THROW((void)net::run_qv_chunks(mc, apps::QvConfig{}), StatusError);

  mc.nodes = 4;
  mc.mode = apps::MemMode::kExplicit;  // chunked path: different yields
  EXPECT_THROW((void)net::run_qv_chunks(mc, apps::QvConfig{}), StatusError);

  mc.mode = apps::MemMode::kManaged;
  apps::QvConfig tiny;
  tiny.qubits = 3;  // 4 nodes need >= k+2 = 4 qubits
  EXPECT_THROW((void)net::run_qv_chunks(mc, tiny), StatusError);

  apps::HotspotConfig thin = small_hotspot();
  thin.rows = 4;  // 8 nodes cannot all get a row band
  mc.nodes = 8;
  mc.mode = apps::MemMode::kManaged;
  EXPECT_THROW((void)net::run_hotspot_halo(mc, thin), StatusError);
}

TEST(Halo, SharedFabricAccumulates) {
  obs::MetricsRegistry reg;
  net::Fabric fab{net::NetSpec{}, 4, &reg};
  net::MultiNodeConfig mc;
  mc.nodes = 2;
  mc.mode = apps::MemMode::kManaged;
  mc.node_config = node_cfg();
  const net::MultiNodeResult a = net::run_hotspot_halo(mc, small_hotspot(), &fab);
  const std::uint64_t after_one = fab.totals().total_msgs();
  EXPECT_EQ(after_one, a.net.total_msgs());
  (void)net::run_hotspot_halo(mc, small_hotspot(), &fab);
  EXPECT_EQ(fab.totals().total_msgs(), 2 * after_one);
  // Registry sees the shared fabric's traffic.
  std::uint64_t reg_msgs = 0;
  for (std::size_t p = 0; p < net::kProtocols; ++p) {
    reg_msgs += reg.counter("ghum_net_msgs_total",
                            {{"proto", std::string{to_string(
                                           static_cast<net::Protocol>(p))}}})
                    .value();
  }
  EXPECT_EQ(reg_msgs, fab.totals().total_msgs());
}

}  // namespace
}  // namespace ghum
