#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "apps/hotspot.hpp"
#include "apps/qvsim.hpp"
#include "apps/srad.hpp"
#include "net/fabric.hpp"
#include "net/halo.hpp"
#include "obs/metrics.hpp"

/// Inter-node network-model tests (DESIGN.md Section 12): NetSpec
/// validation, protocol selection at the exact crossover boundaries,
/// link-flap dilation, per-link serialization, history-digest determinism
/// and the multi-node halo workloads.

namespace ghum {
namespace {

core::SystemConfig node_cfg() {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage64K;
  cfg.hbm_capacity = 16ull << 20;
  cfg.ddr_capacity = 256ull << 20;
  cfg.gpu_driver_baseline = 1ull << 20;
  cfg.event_log = true;
  return cfg;
}

apps::HotspotConfig small_hotspot() {
  apps::HotspotConfig h;
  h.rows = 64;
  h.cols = 64;
  h.iterations = 3;
  return h;
}

// --- NetSpec validation ------------------------------------------------------

TEST(NetSpec, DefaultSpecValidates) {
  EXPECT_EQ(net::NetSpec{}.validate(), Status::kSuccess);
}

TEST(NetSpec, RejectsNonPositiveBandwidths) {
  for (auto field : {&net::NetSpec::wire_bandwidth_Bps,
                     &net::NetSpec::bcopy_bandwidth_Bps,
                     &net::NetSpec::gdr_get_bandwidth_Bps,
                     &net::NetSpec::gdr_put_bandwidth_Bps,
                     &net::NetSpec::distance_bandwidth_Bps}) {
    net::NetSpec s;
    s.*field = 0.0;
    EXPECT_EQ(s.validate(), Status::kErrorNetConfig);
    s.*field = -1.0;
    EXPECT_EQ(s.validate(), Status::kErrorNetConfig);
  }
}

TEST(NetSpec, RejectsNegativeLatencies) {
  for (auto field :
       {&net::NetSpec::wire_latency, &net::NetSpec::rndv_rts,
        &net::NetSpec::send_db, &net::NetSpec::am_bcopy,
        &net::NetSpec::rcache_overhead, &net::NetSpec::gdr_latency}) {
    net::NetSpec s;
    s.*field = -1;
    EXPECT_EQ(s.validate(), Status::kErrorNetConfig);
  }
}

TEST(NetSpec, RejectsPartialOrUnorderedThresholds) {
  net::NetSpec s;
  s.bcopy_max = 8192;  // zcopy_max still 0: partial ladder
  EXPECT_EQ(s.validate(), Status::kErrorNetConfig);

  s.zcopy_max = 4096;  // zcopy_max < bcopy_max: unordered
  EXPECT_EQ(s.validate(), Status::kErrorNetConfig);

  s.zcopy_max = 65536;  // ordered: eager_short_max <= bcopy_max <= zcopy_max
  EXPECT_EQ(s.validate(), Status::kSuccess);

  s.bcopy_max = 100;  // below eager_short_max (208)
  EXPECT_EQ(s.validate(), Status::kErrorNetConfig);
}

TEST(NetSpec, FabricConstructionThrowsNetConfig) {
  net::NetSpec bad;
  bad.wire_bandwidth_Bps = 0.0;
  try {
    net::Fabric f{bad, 2};
    FAIL() << "malformed spec must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorNetConfig);
  }
  try {
    net::Fabric f{net::NetSpec{}, 0};
    FAIL() << "zero endpoints must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorNetConfig);
  }
}

TEST(NetSpec, FlapWindowValidation) {
  fault::LinkFlapWindow bad_node;
  bad_node.node_a = 9;  // outside a 2-endpoint fabric
  try {
    net::Fabric f{net::NetSpec{}, 2, nullptr, {bad_node}};
    FAIL() << "out-of-range flap endpoint must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorInvalidValue);
  }
  fault::LinkFlapWindow bad_factor;
  bad_factor.bandwidth_factor = 0.5;  // factors dilate, never accelerate
  try {
    net::Fabric f{net::NetSpec{}, 2, nullptr, {bad_factor}};
    FAIL() << "factor < 1 must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorInvalidValue);
  }
  // Schedule shape is a config error, distinct from the value errors
  // above: a window cannot start before t=0 ...
  fault::LinkFlapWindow bad_start;
  bad_start.start = -1;
  bad_start.duration = sim::microseconds(1);
  try {
    net::Fabric f{net::NetSpec{}, 2, nullptr, {bad_start}};
    FAIL() << "negative flap start must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorNetConfig);
  }
  // ... and its end (start + duration) cannot precede its start.
  fault::LinkFlapWindow bad_duration;
  bad_duration.start = sim::microseconds(10);
  bad_duration.duration = -sim::microseconds(1);
  try {
    net::Fabric f{net::NetSpec{}, 2, nullptr, {bad_duration}};
    FAIL() << "window end preceding its start must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorNetConfig);
  }
  // A zero-duration (degenerate but well-ordered) window is accepted.
  fault::LinkFlapWindow empty;
  empty.start = sim::microseconds(10);
  empty.duration = 0;
  EXPECT_NO_THROW((net::Fabric{net::NetSpec{}, 2, nullptr, {empty}}));
}

TEST(NetSpec, MessageFaultConfigValidation) {
  EXPECT_EQ(fault::MessageFaultConfig{}.validate(), Status::kSuccess);
  for (auto field :
       {&fault::MessageFaultConfig::drop_prob,
        &fault::MessageFaultConfig::corrupt_prob,
        &fault::MessageFaultConfig::duplicate_prob,
        &fault::MessageFaultConfig::reorder_prob,
        &fault::MessageFaultConfig::e2e_corrupt_prob}) {
    fault::MessageFaultConfig m;
    m.*field = -0.01;
    EXPECT_EQ(m.validate(), Status::kErrorNetConfig);
    m.*field = 1.01;
    EXPECT_EQ(m.validate(), Status::kErrorNetConfig);
    m.*field = 1.0;
    EXPECT_EQ(m.validate(), Status::kSuccess);
  }
  fault::MessageFaultConfig m;
  m.reorder_delay = -1;
  EXPECT_EQ(m.validate(), Status::kErrorNetConfig);
  m = {};
  m.ack_timeout = 0;
  EXPECT_EQ(m.validate(), Status::kErrorNetConfig);
  m = {};
  m.ack_bytes = 0;
  EXPECT_EQ(m.validate(), Status::kErrorNetConfig);
  m = {};
  m.bulk_threshold = 0;
  EXPECT_EQ(m.validate(), Status::kErrorNetConfig);

  // The fabric rejects a malformed schedule at construction.
  m = {};
  m.enabled = true;
  m.drop_prob = 2.0;
  try {
    net::Fabric f{net::NetSpec{}, 2, nullptr, {}, m};
    FAIL() << "malformed message-fault config must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kErrorNetConfig);
  }
}

TEST(NetSpec, StatusToStringRoundTrip) {
  // The new codes have distinct, stable messages...
  EXPECT_EQ(to_string(Status::kErrorNetConfig), "malformed network spec");
  EXPECT_EQ(to_string(Status::kErrorRetransmitExhausted),
            "retransmit budget exhausted");
  EXPECT_EQ(to_string(Status::kErrorDataCorruption),
            "data corruption detected");
  // ...and collide with no other status string.
  std::set<std::string_view> seen;
  for (const Status s :
       {Status::kSuccess, Status::kErrorMemoryAllocation,
        Status::kErrorOutOfMemory, Status::kErrorInvalidValue,
        Status::kErrorDoubleFree, Status::kErrorEccUncorrectable,
        Status::kErrorGpuReset, Status::kErrorUnrecoverable,
        Status::kErrorTimeout, Status::kErrorNodeLost,
        Status::kErrorDeadlineExceeded, Status::kErrorNetConfig,
        Status::kErrorRetransmitExhausted, Status::kErrorDataCorruption}) {
    EXPECT_TRUE(seen.insert(to_string(s)).second)
        << "duplicate status string: " << to_string(s);
  }
}

TEST(NetSpec, ProtocolAndMemTypeNames) {
  EXPECT_EQ(to_string(net::Protocol::kEagerShort), "eager-short");
  EXPECT_EQ(to_string(net::Protocol::kEagerBcopy), "eager-bcopy");
  EXPECT_EQ(to_string(net::Protocol::kZcopy), "zcopy");
  EXPECT_EQ(to_string(net::Protocol::kRendezvous), "rendezvous");
  EXPECT_EQ(to_string(net::MemType::kHost), "host");
  EXPECT_EQ(to_string(net::MemType::kCudaManaged), "cuda-managed");
}

// --- protocol selection ------------------------------------------------------

/// Smallest size in (lo, hi] whose selected protocol differs from lo's.
std::uint64_t boundary_after(const net::Fabric& f, net::MemType mem,
                             std::uint64_t lo, std::uint64_t hi) {
  const net::Protocol base = f.select(lo, mem);
  while (lo + 1 < hi) {
    const std::uint64_t m = lo + (hi - lo) / 2;
    if (f.select(m, mem) == base) {
      lo = m;
    } else {
      hi = m;
    }
  }
  return hi;
}

TEST(Protocol, CrossoversLandOnCheaperProtocolBothSides) {
  const net::Fabric f{net::NetSpec{}, 2};
  for (const net::MemType mem :
       {net::MemType::kHost, net::MemType::kCudaManaged}) {
    std::uint64_t at = 8;
    std::vector<net::Protocol> order{f.select(at, mem)};
    // Walk every crossover up to 16 MiB.
    while (at < (16ull << 20)) {
      if (f.select(16ull << 20, mem) == f.select(at, mem)) break;
      const std::uint64_t b = boundary_after(f, mem, at, 16ull << 20);
      const net::Protocol before = f.select(b - 1, mem);
      const net::Protocol after = f.select(b, mem);
      ASSERT_NE(before, after);
      order.push_back(after);

      // One byte below the threshold, the old protocol is genuinely no
      // worse; at the threshold, the new one is strictly cheaper. The
      // short->bcopy boundary is eligibility-driven (the inline capacity),
      // so the cost comparison applies from bcopy onward.
      if (before != net::Protocol::kEagerShort) {
        EXPECT_LE(f.cost(before, b - 1, mem), f.cost(after, b - 1, mem))
            << "below boundary " << b << " mem " << to_string(mem);
        EXPECT_LT(f.cost(after, b, mem), f.cost(before, b, mem))
            << "at boundary " << b << " mem " << to_string(mem);
      } else {
        EXPECT_EQ(b, net::NetSpec{}.eager_short_max + 1);
      }
      at = b;
    }
    // All four regimes appear, in ladder order.
    ASSERT_EQ(order.size(), 4u) << "mem " << to_string(mem);
    EXPECT_EQ(order[0], net::Protocol::kEagerShort);
    EXPECT_EQ(order[1], net::Protocol::kEagerBcopy);
    EXPECT_EQ(order[2], net::Protocol::kZcopy);
    EXPECT_EQ(order[3], net::Protocol::kRendezvous);
  }
}

TEST(Protocol, ExplicitThresholdLadderIsHonoredExactly) {
  net::NetSpec s;
  s.bcopy_max = 4096;
  s.zcopy_max = 65536;
  const net::Fabric f{s, 2};
  const auto mem = net::MemType::kHost;
  EXPECT_EQ(f.select(s.eager_short_max, mem), net::Protocol::kEagerShort);
  EXPECT_EQ(f.select(s.eager_short_max + 1, mem), net::Protocol::kEagerBcopy);
  EXPECT_EQ(f.select(4096, mem), net::Protocol::kEagerBcopy);
  EXPECT_EQ(f.select(4097, mem), net::Protocol::kZcopy);
  EXPECT_EQ(f.select(65536, mem), net::Protocol::kZcopy);
  EXPECT_EQ(f.select(65537, mem), net::Protocol::kRendezvous);
}

TEST(Protocol, CudaManagedCostsExceedHost) {
  const net::Fabric f{net::NetSpec{}, 2};
  for (const std::uint64_t b : {64ull, 4096ull, 32768ull, 1ull << 20}) {
    const net::Protocol p = f.select(b, net::MemType::kCudaManaged);
    EXPECT_GT(f.cost(p, b, net::MemType::kCudaManaged),
              f.cost(p, b, net::MemType::kHost))
        << b;
  }
}

// --- transfers, serialization, flaps ----------------------------------------

TEST(Fabric, DirectedLinkSerializes) {
  net::Fabric f{net::NetSpec{}, 3};
  const auto mem = net::MemType::kHost;
  const net::Transfer a = f.transfer(0, 1, 1 << 20, mem, 0);
  EXPECT_EQ(a.queued, 0);
  // Same directed link, same request time: queues behind a.
  const net::Transfer b = f.transfer(0, 1, 1 << 20, mem, 0);
  EXPECT_EQ(b.start, a.end);
  EXPECT_EQ(b.queued, a.end);
  // Reverse direction and unrelated links are independent.
  EXPECT_EQ(f.transfer(1, 0, 1 << 20, mem, 0).queued, 0);
  EXPECT_EQ(f.transfer(0, 2, 1 << 20, mem, 0).queued, 0);
}

TEST(Fabric, TransferEndpointValidation) {
  net::Fabric f{net::NetSpec{}, 2};
  EXPECT_THROW((void)f.transfer(0, 0, 64, net::MemType::kHost, 0), StatusError);
  EXPECT_THROW((void)f.transfer(0, 7, 64, net::MemType::kHost, 0), StatusError);
}

TEST(Fabric, FlapWindowDilatesDeterministically) {
  fault::LinkFlapWindow w;
  w.start = sim::microseconds(10);
  w.duration = sim::microseconds(10);
  w.node_a = 0;  // node_b = kAllPeers: every link touching node 0
  w.bandwidth_factor = 4.0;
  w.latency_factor = 2.0;

  const auto run = [&] {
    net::Fabric f{net::NetSpec{}, 3, nullptr, {w}};
    const auto mem = net::MemType::kHost;
    struct Out {
      sim::Picos before, inside, inside_untouched, after;
      std::uint64_t flapped;
      std::uint64_t digest;
    } o{};
    o.before = f.transfer(0, 1, 1 << 20, mem, 0).end - 0;
    const sim::Picos t1 = sim::microseconds(12);
    const net::Transfer in = f.transfer(0, 2, 1 << 20, mem, t1);
    o.inside = in.end - in.start;
    // Link 1->2 does not touch node 0: unaffected even inside the window.
    const net::Transfer un = f.transfer(1, 2, 1 << 20, mem, t1);
    o.inside_untouched = un.end - un.start;
    const sim::Picos t2 = sim::microseconds(50);
    const net::Transfer af = f.transfer(2, 0, 1 << 20, mem, t2);
    o.after = af.end - af.start;
    o.flapped = f.totals().flapped_msgs;
    o.digest = f.digest();
    return o;
  };

  const auto a = run();
  EXPECT_GT(a.inside, a.before);          // dilated while the window is open
  EXPECT_EQ(a.inside_untouched, a.before);  // untouched link, same cost
  EXPECT_EQ(a.after, a.before);           // window closed, cost restored
  EXPECT_EQ(a.flapped, 1u);

  const auto b = run();  // bit-for-bit deterministic
  EXPECT_EQ(a.inside, b.inside);
  EXPECT_EQ(a.digest, b.digest);
}

TEST(Fabric, OverlappingFlapWindowsCompound) {
  fault::LinkFlapWindow w1;
  w1.start = 0;
  w1.duration = sim::microseconds(100);
  w1.node_a = 0;
  w1.bandwidth_factor = 2.0;
  w1.latency_factor = 1.0;
  fault::LinkFlapWindow w2 = w1;

  net::Fabric one{net::NetSpec{}, 2, nullptr, {w1}};
  net::Fabric two{net::NetSpec{}, 2, nullptr, {w1, w2}};
  const auto mem = net::MemType::kHost;
  const sim::Picos c1 = one.transfer(0, 1, 1 << 20, mem, 0).end;
  const sim::Picos c2 = two.transfer(0, 1, 1 << 20, mem, 0).end;
  EXPECT_GT(c2, c1);  // 4x bandwidth cut beats 2x
}

TEST(Fabric, DigestTracksHistoryExactly) {
  const auto drive = [](std::uint64_t third_size) {
    net::Fabric f{net::NetSpec{}, 2};
    (void)f.transfer(0, 1, 64, net::MemType::kHost, 0);
    (void)f.transfer(1, 0, 4096, net::MemType::kCudaManaged, 100);
    (void)f.transfer(0, 1, third_size, net::MemType::kHost, 200);
    return f.digest();
  };
  EXPECT_EQ(drive(1 << 20), drive(1 << 20));
  EXPECT_NE(drive(1 << 20), drive((1 << 20) + 1));
}

// --- reliable delivery under message faults ---------------------------------

fault::MessageFaultConfig clean_chaos() {
  fault::MessageFaultConfig m;
  m.enabled = true;  // all fate probabilities stay 0: every delivery clean
  return m;
}

TEST(Reliable, CleanSendSucceedsFirstAttempt) {
  net::Fabric f{net::NetSpec{}, 2, nullptr, {}, clean_chaos()};
  const net::ReliableTransfer t =
      f.send(0, 1, 4096, net::MemType::kHost, 0);
  EXPECT_EQ(t.status, Status::kSuccess);
  EXPECT_EQ(t.attempts, 1u);
  EXPECT_EQ(t.retransmits, 0u);
  EXPECT_FALSE(t.payload_corrupt);
  EXPECT_EQ(t.delivered_at, t.wire.end);
  EXPECT_GT(t.end, t.delivered_at);  // the ack rode the reverse link
  const net::ReliableTotals& r = f.reliable_totals();
  EXPECT_EQ(r.sends, 1u);
  EXPECT_EQ(r.retransmits, 0u);
  EXPECT_EQ(r.acks, 1u);
  EXPECT_EQ(r.exhausted, 0u);
}

TEST(Reliable, DropsAreRetransmittedAndRecovered) {
  fault::MessageFaultConfig m = clean_chaos();
  m.drop_prob = 0.3;
  net::Fabric f{net::NetSpec{}, 2, nullptr, {}, m};
  sim::Picos now = 0;
  for (int i = 0; i < 40; ++i) {
    const net::ReliableTransfer t =
        f.send(0, 1, 4096, net::MemType::kHost, now);
    EXPECT_EQ(t.status, Status::kSuccess) << "send " << i;
    EXPECT_EQ(t.attempts, t.retransmits + 1) << "send " << i;
    now = t.end;
  }
  const net::ReliableTotals& r = f.reliable_totals();
  EXPECT_EQ(r.sends, 40u);
  EXPECT_GE(r.drops, 1u);             // the schedule did drop messages
  EXPECT_GE(r.retransmits, 1u);       // ...which forced retransmissions
  EXPECT_GE(r.recovered_sends, 1u);   // ...that recovered the send
  EXPECT_EQ(r.exhausted, 0u);
}

TEST(Reliable, CorruptDeliveriesAreNakedAndRetried) {
  fault::MessageFaultConfig m = clean_chaos();
  m.corrupt_prob = 1.0;  // every delivery fails the link checksum
  m.max_retransmits = 2;
  net::Fabric f{net::NetSpec{}, 2, nullptr, {}, m};
  const net::ReliableTransfer t =
      f.send(0, 1, 4096, net::MemType::kHost, 0);
  EXPECT_EQ(t.status, Status::kErrorRetransmitExhausted);
  EXPECT_EQ(t.attempts, 3u);  // budget + 1 payload transmissions
  EXPECT_EQ(t.retransmits, 2u);
  // Payload corruptions (one per attempt) plus any corrupted NAKs — the
  // reverse link draws fates from the same schedule.
  const net::ReliableTotals& r = f.reliable_totals();
  EXPECT_GE(r.corruptions, 3u);
  EXPECT_EQ(r.exhausted, 1u);
  EXPECT_EQ(r.recovered_sends, 0u);
}

TEST(Reliable, SendToDownEndpointExhaustsBudget) {
  fault::MessageFaultConfig m = clean_chaos();
  m.max_retransmits = 3;
  net::Fabric f{net::NetSpec{}, 2, nullptr, {}, m};
  f.set_endpoint_down(1, true);
  EXPECT_TRUE(f.endpoint_down(1));
  const net::ReliableTransfer t =
      f.send(0, 1, 4096, net::MemType::kHost, 0);
  EXPECT_EQ(t.status, Status::kErrorRetransmitExhausted);
  EXPECT_EQ(t.attempts, 4u);
  EXPECT_EQ(t.retransmits, 3u);
  // Exponential backoff: the sender waited out every timeout rung.
  sim::Picos waited = 0;
  for (std::uint32_t k = 1; k <= 4; ++k) {
    waited += m.ack_timeout * (sim::Picos{1} << (k - 1));
  }
  EXPECT_GE(t.end, waited);
  EXPECT_EQ(f.reliable_totals().exhausted, 1u);
  // Back up: the next send goes straight through.
  f.set_endpoint_down(1, false);
  EXPECT_EQ(f.send(0, 1, 4096, net::MemType::kHost, t.end).status,
            Status::kSuccess);
}

TEST(Reliable, DuplicatedDeliveriesAreDeduped) {
  fault::MessageFaultConfig m = clean_chaos();
  m.duplicate_prob = 1.0;  // the link echoes every delivery
  net::Fabric f{net::NetSpec{}, 2, nullptr, {}, m};
  const net::ReliableTransfer t =
      f.send(0, 1, 4096, net::MemType::kHost, 0);
  EXPECT_EQ(t.status, Status::kSuccess);
  EXPECT_GE(f.reliable_totals().dup_discards, 1u);
}

TEST(Reliable, E2eBulkCorruptionFollowsSchedule) {
  fault::MessageFaultConfig m = clean_chaos();
  m.bulk_threshold = 4096;
  m.e2e_corrupt_bulk = {0, 2};  // first and third bulk payloads
  net::Fabric f{net::NetSpec{}, 2, nullptr, {}, m};
  // A sub-threshold send is never e2e-corrupted and does not consume a
  // bulk index.
  EXPECT_FALSE(f.send(0, 1, 256, net::MemType::kHost, 0).payload_corrupt);
  const net::ReliableTransfer b0 =
      f.send(0, 1, 8192, net::MemType::kHost, 0);
  const net::ReliableTransfer b1 =
      f.send(0, 1, 8192, net::MemType::kHost, b0.end);
  const net::ReliableTransfer b2 =
      f.send(0, 1, 8192, net::MemType::kHost, b1.end);
  EXPECT_TRUE(b0.payload_corrupt);   // scheduled
  EXPECT_FALSE(b1.payload_corrupt);  // not scheduled
  EXPECT_TRUE(b2.payload_corrupt);   // scheduled
  // E2e corruption is invisible to the link protocol: the sends succeed.
  EXPECT_EQ(b0.status, Status::kSuccess);
  EXPECT_EQ(f.reliable_totals().e2e_corruptions, 2u);
}

TEST(Reliable, LossySequenceIsBitForBitReproducible) {
  fault::MessageFaultConfig m = clean_chaos();
  m.drop_prob = 0.2;
  m.corrupt_prob = 0.1;
  m.duplicate_prob = 0.1;
  m.reorder_prob = 0.1;
  const auto drive = [&m] {
    net::Fabric f{net::NetSpec{}, 3, nullptr, {}, m};
    sim::Picos now = 0;
    for (int i = 0; i < 24; ++i) {
      const net::ReliableTransfer t = f.send(
          static_cast<std::uint32_t>(i % 2), 2,
          1024 + static_cast<std::uint64_t>(i) * 512, net::MemType::kHost,
          now);
      now = t.end;
    }
    return f.digest();
  };
  EXPECT_EQ(drive(), drive());
}

TEST(Reliable, PerLinkStreamsAreIndependent) {
  // The same message sequence on link 0->1 must meet the same fates
  // whether or not unrelated traffic runs on link 2->3 in between —
  // fates come from per-link streams, not one global draw order.
  fault::MessageFaultConfig m = clean_chaos();
  m.drop_prob = 0.3;
  m.corrupt_prob = 0.2;
  const auto drive = [&m](bool interleave) {
    net::Fabric f{net::NetSpec{}, 4, nullptr, {}, m};
    std::vector<std::uint32_t> attempts;
    sim::Picos now = 0;
    for (int i = 0; i < 16; ++i) {
      if (interleave) {
        (void)f.send(2, 3, 4096, net::MemType::kHost, now);
      }
      const net::ReliableTransfer t =
          f.send(0, 1, 4096, net::MemType::kHost, now);
      attempts.push_back(t.attempts);
      now = t.end;
    }
    return attempts;
  };
  EXPECT_EQ(drive(false), drive(true));
}

// --- multi-node workloads ----------------------------------------------------

TEST(Halo, HotspotRunsAndReproduces) {
  net::MultiNodeConfig mc;
  mc.nodes = 3;
  mc.mode = apps::MemMode::kManaged;
  mc.node_config = node_cfg();

  const net::MultiNodeResult a = net::run_hotspot_halo(mc, small_hotspot());
  const net::MultiNodeResult b = net::run_hotspot_halo(mc, small_hotspot());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.nodes, 3u);
  EXPECT_EQ(a.exchanges, small_hotspot().iterations);
  // 3 nodes: ends send 1 halo each, the middle sends 2 — per iteration.
  EXPECT_EQ(a.net.total_msgs(), 4ull * small_hotspot().iterations);
  EXPECT_GT(a.net_wait, 0);
  EXPECT_EQ(a.node_end.size(), 3u);
  EXPECT_GT(a.makespan, 0);
}

TEST(Halo, SradMovesTwoFieldsPerNeighbor) {
  net::MultiNodeConfig mc;
  mc.nodes = 2;
  mc.mode = apps::MemMode::kManaged;
  mc.node_config = node_cfg();
  apps::SradConfig s;
  s.rows = 64;
  s.cols = 64;
  s.iterations = 3;
  const net::MultiNodeResult r = net::run_srad_halo(mc, s);
  EXPECT_EQ(r.net.total_msgs(), 2ull * s.iterations);
  EXPECT_EQ(r.net.total_bytes(),
            2ull * s.iterations * 2ull * s.cols * sizeof(float));
}

TEST(Halo, QvChunkExchange) {
  net::MultiNodeConfig mc;
  mc.nodes = 4;
  mc.mode = apps::MemMode::kManaged;
  mc.node_config = node_cfg();
  apps::QvConfig q;
  q.qubits = 8;
  q.depth = 2;
  const net::MultiNodeResult a = net::run_qv_chunks(mc, q);
  const net::MultiNodeResult b = net::run_qv_chunks(mc, q);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_GT(a.exchanges, 0u);
  // Every node swaps half its 2^(8-2)-amplitude chunk every gate round.
  apps::QvConfig local = q;
  local.qubits = 6;
  const std::uint64_t gates = apps::qv_circuit(local).size();
  EXPECT_EQ(a.net.total_msgs(), 4ull * gates);
  EXPECT_EQ(a.net.total_bytes(), 4ull * gates * ((16ull << 6) / 2));
}

TEST(Halo, RejectsBadShapes) {
  net::MultiNodeConfig mc;
  mc.node_config = node_cfg();
  mc.nodes = 1;
  EXPECT_THROW((void)net::run_hotspot_halo(mc, small_hotspot()), StatusError);
  mc.nodes = 9;
  EXPECT_THROW((void)net::run_hotspot_halo(mc, small_hotspot()), StatusError);

  mc.nodes = 3;  // not a power of two
  EXPECT_THROW((void)net::run_qv_chunks(mc, apps::QvConfig{}), StatusError);

  mc.nodes = 4;
  mc.mode = apps::MemMode::kExplicit;  // chunked path: different yields
  EXPECT_THROW((void)net::run_qv_chunks(mc, apps::QvConfig{}), StatusError);

  mc.mode = apps::MemMode::kManaged;
  apps::QvConfig tiny;
  tiny.qubits = 3;  // 4 nodes need >= k+2 = 4 qubits
  EXPECT_THROW((void)net::run_qv_chunks(mc, tiny), StatusError);

  apps::HotspotConfig thin = small_hotspot();
  thin.rows = 4;  // 8 nodes cannot all get a row band
  mc.nodes = 8;
  mc.mode = apps::MemMode::kManaged;
  EXPECT_THROW((void)net::run_hotspot_halo(mc, thin), StatusError);
}

TEST(Halo, LossyFabricReproducesAndChargesRetries) {
  net::MultiNodeConfig mc;
  mc.nodes = 3;
  mc.mode = apps::MemMode::kManaged;
  mc.node_config = node_cfg();
  mc.messages.enabled = true;
  mc.messages.drop_prob = 0.2;
  mc.messages.corrupt_prob = 0.1;

  const net::MultiNodeResult a = net::run_hotspot_halo(mc, small_hotspot());
  const net::MultiNodeResult b = net::run_hotspot_halo(mc, small_hotspot());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.checksum, b.checksum);
  // The chaos never changes the computed answer, only the timeline.
  net::MultiNodeConfig clean = mc;
  clean.messages = {};
  const net::MultiNodeResult c = net::run_hotspot_halo(clean, small_hotspot());
  EXPECT_EQ(a.checksum, c.checksum);
  EXPECT_GE(a.makespan, c.makespan);  // retransmissions only ever cost time
  // Retried payloads and their acks appear as extra wire messages.
  EXPECT_GT(a.net.total_msgs(), c.net.total_msgs());
}

TEST(Halo, SharedFabricAccumulates) {
  obs::MetricsRegistry reg;
  net::Fabric fab{net::NetSpec{}, 4, &reg};
  net::MultiNodeConfig mc;
  mc.nodes = 2;
  mc.mode = apps::MemMode::kManaged;
  mc.node_config = node_cfg();
  const net::MultiNodeResult a = net::run_hotspot_halo(mc, small_hotspot(), &fab);
  const std::uint64_t after_one = fab.totals().total_msgs();
  EXPECT_EQ(after_one, a.net.total_msgs());
  (void)net::run_hotspot_halo(mc, small_hotspot(), &fab);
  EXPECT_EQ(fab.totals().total_msgs(), 2 * after_one);
  // Registry sees the shared fabric's traffic.
  std::uint64_t reg_msgs = 0;
  for (std::size_t p = 0; p < net::kProtocols; ++p) {
    reg_msgs += reg.counter("ghum_net_msgs_total",
                            {{"proto", std::string{to_string(
                                           static_cast<net::Protocol>(p))}}})
                    .value();
  }
  EXPECT_EQ(reg_msgs, fab.totals().total_msgs());
}

}  // namespace
}  // namespace ghum
