#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "runtime/runtime.hpp"
#include "runtime/span.hpp"
#include "sim/rng.hpp"

namespace ghum {
namespace {

core::SystemConfig span_config() {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage4K;
  cfg.hbm_capacity = 8ull << 20;
  cfg.ddr_capacity = 64ull << 20;
  cfg.gpu_driver_baseline = 0;
  cfg.event_log = true;
  return cfg;
}

class SpanTest : public ::testing::Test {
 protected:
  core::System sys{span_config()};
  runtime::Runtime rt{sys};
};

TEST_F(SpanTest, LoadStoreRoundTripsRealData) {
  core::Buffer b = rt.malloc_system(1 << 16);
  sys.host_phase_begin("p");
  {
    auto s = rt.host_span<int>(b);
    for (int i = 0; i < 1000; ++i) s.store(i, i * 3);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(s.load(i), i * 3);
  }
  (void)sys.host_phase_end();
}

TEST_F(SpanTest, SequentialSweepChargesRawByteVolume) {
  core::Buffer b = rt.malloc_system(1 << 16);
  sys.host_phase_begin("seq");
  {
    auto s = rt.host_span<float>(b);
    for (std::size_t i = 0; i < s.size(); ++i) s.store(i, 1.0f);
  }
  const auto& rec = sys.host_phase_end();
  // Dense write sweep: line volume equals the buffer size exactly.
  EXPECT_EQ(rec.traffic.ddr_write_bytes, std::uint64_t{1} << 16);
}

TEST_F(SpanTest, StridedSweepIsAmplifiedToWholeLines) {
  core::Buffer b = rt.malloc_system(1 << 16);
  sys.host_phase_begin("strided");
  {
    auto s = rt.host_span<float>(b);
    // One 4-byte store per 64-byte line: 1024 lines.
    for (std::size_t i = 0; i < s.size(); i += 16) s.store(i, 1.0f);
  }
  const auto& rec = sys.host_phase_end();
  EXPECT_EQ(rec.traffic.ddr_write_bytes, 1024u * 64u);
}

TEST_F(SpanTest, RepeatedAccessToSameLineCountsOncePerPageVisit) {
  core::Buffer b = rt.malloc_system(1 << 16);
  sys.host_phase_begin("reuse");
  {
    auto s = rt.host_span<float>(b);
    for (int rep = 0; rep < 100; ++rep) {
      (void)s.load(3);  // same element, same line, same page visit
    }
  }
  const auto& rec = sys.host_phase_end();
  EXPECT_EQ(rec.traffic.ddr_read_bytes, 64u);
}

TEST_F(SpanTest, PageTransitionFlushesAndReresolves) {
  core::Buffer b = rt.malloc_system(16 << 10);  // 4 pages of 4 KiB
  sys.host_phase_begin("pages");
  {
    auto s = rt.host_span<std::uint8_t>(b);
    s.store(0, 1);
    s.store(4096, 1);
    s.store(8192, 1);
    s.store(12288, 1);
  }
  (void)sys.host_phase_end();
  // Four first-touch faults: one per page.
  EXPECT_EQ(sys.stats().get("os.fault.cpu_first_touch"), 4u);
}

TEST_F(SpanTest, GpuSpanUses128ByteLines) {
  core::Buffer b = rt.malloc_device(1 << 16);
  auto rec = rt.launch("k", 0, [&] {
    auto s = rt.device_span<float>(b);
    // One store per 128-byte line: 512 lines.
    for (std::size_t i = 0; i < s.size(); i += 32) s.store(i, 2.0f);
  });
  EXPECT_EQ(rec.traffic.l1l2_bytes, 512u * 128u);
}

TEST_F(SpanTest, EpochInvalidationAfterMigration) {
  core::Buffer b = rt.malloc_system(64 << 10);
  sys.host_phase_begin("touch");
  {
    auto s = rt.host_span<float>(b);
    for (std::size_t i = 0; i < s.size(); ++i) s.store(i, 1.0f);
  }
  (void)sys.host_phase_end();
  auto rec = rt.launch("k", 0, [&] {
    auto s = rt.device_span<float>(b);
    (void)s.load(0);  // resolves page 0 (CPU-resident, remote)
    // Mid-kernel migration invalidates the cached view via the epoch.
    sys.prefetch(b, 0, b.bytes, mem::Node::kGpu);
    (void)s.load(1);  // must re-resolve and see GPU-resident data
  });
  EXPECT_GT(rec.traffic.hbm_read_bytes, 0u);
}

TEST_F(SpanTest, OffsetSpanAddressesSubrange) {
  core::Buffer b = rt.malloc_system(1 << 12);
  sys.host_phase_begin("off");
  {
    auto s = rt.host_span<std::uint32_t>(b, 16, 4);
    EXPECT_EQ(s.size(), 4u);
    s.store(0, 7);
  }
  (void)sys.host_phase_end();
  EXPECT_EQ(reinterpret_cast<std::uint32_t*>(b.host)[16], 7u);
}

TEST_F(SpanTest, MutateCountsReadAndWrite) {
  core::Buffer b = rt.malloc_system(1 << 12);
  sys.host_phase_begin("rmw");
  {
    auto s = rt.host_span<int>(b);
    s.mutate(0) += 1;
  }
  const auto& rec = sys.host_phase_end();
  EXPECT_GT(rec.traffic.ddr_read_bytes, 0u);
  EXPECT_GT(rec.traffic.ddr_write_bytes, 0u);
}

TEST_F(SpanTest, ChasedLoadsPayFullTierLatency) {
  core::Buffer local = rt.malloc_host(1 << 12);
  sys.host_phase_begin("chase");
  const sim::Picos t0 = sys.now();
  {
    auto s = rt.host_span<std::uint32_t>(local);
    std::uint32_t cur = 0;
    for (int hop = 0; hop < 100; ++hop) cur = s.load_chased(cur % 1024);
    (void)cur;
  }
  (void)sys.host_phase_end();
  // 100 hops x 110 ns LPDDR5X latency dominates.
  EXPECT_GE(sys.now() - t0, 100 * sim::nanoseconds(110));
}

TEST_F(SpanTest, RemoteChaseIsSlowerThanLocalChase) {
  auto chase = [&](const core::Buffer& buf, mem::Node origin) {
    const sim::Picos t0 = sys.now();
    if (origin == mem::Node::kGpu) sys.kernel_begin("chase");
    {
      runtime::Span<std::uint32_t> s{sys, buf, origin};
      for (int hop = 0; hop < 100; ++hop) (void)s.load_chased(0);
    }
    if (origin == mem::Node::kGpu) {
      (void)sys.kernel_end();
    }
    return sys.now() - t0;
  };
  sys.ensure_gpu_context();
  core::Buffer dev = rt.malloc_device(1 << 12);
  core::Buffer host_side = rt.malloc_host(1 << 12);
  const sim::Picos local = chase(dev, mem::Node::kGpu);
  const sim::Picos remote = chase(host_side, mem::Node::kGpu);
  EXPECT_GT(remote, local);
}

TEST_F(SpanTest, RandomPatternChargesMatchAnalyticLineCount) {
  // Property: for any access pattern within one page visit, charged line
  // volume equals (distinct cachelines touched) x line size.
  core::Buffer b = rt.malloc_system(4 << 10);  // one 4 KiB page
  sim::Rng rng{123};
  std::vector<std::uint64_t> offsets;
  for (int i = 0; i < 400; ++i) offsets.push_back(rng.next_below(1024));
  std::set<std::uint64_t> distinct_lines;
  for (auto off : offsets) distinct_lines.insert(off * 4 / 64);

  sys.host_phase_begin("rand");
  {
    auto s = rt.host_span<std::uint32_t>(b);
    for (auto off : offsets) (void)s.load(off);
  }
  const auto& rec = sys.host_phase_end();
  EXPECT_EQ(rec.traffic.ddr_read_bytes, distinct_lines.size() * 64);
}

TEST_F(SpanTest, BulkRunChargesExactlyLikeScalarLoop) {
  // Same multi-page workload (unaligned start, partial tail, store sweep
  // then re-read) on two identical buffers: the bulk accessors must charge
  // the same bytes, lines and simulated time as the per-element loop.
  const std::uint64_t bytes = 96 << 10;  // 24 pages of 4 KiB
  core::Buffer a = rt.malloc_system(bytes);
  core::Buffer b = rt.malloc_system(bytes);
  const std::size_t n = bytes / sizeof(float) - 12;
  sys.host_phase_begin("scalar");
  {
    auto s = rt.host_span<float>(a);
    for (std::size_t i = 0; i < n; ++i) s.store(7 + i, 1.0f);
    for (std::size_t i = 0; i < n; ++i) (void)s.load(7 + i);
  }
  const cache::KernelRecord scalar = sys.host_phase_end();
  sys.host_phase_begin("bulk");
  {
    auto s = rt.host_span<float>(b);
    std::fill_n(s.store_run(7, n), n, 1.0f);
    (void)s.load_run(7, n);
  }
  const cache::KernelRecord bulk = sys.host_phase_end();
  EXPECT_EQ(bulk.traffic.ddr_write_bytes, scalar.traffic.ddr_write_bytes);
  EXPECT_EQ(bulk.traffic.ddr_read_bytes, scalar.traffic.ddr_read_bytes);
  EXPECT_EQ(bulk.duration, scalar.duration);
}

TEST_F(SpanTest, BulkRunGpuRemoteAccessMatchesScalar) {
  // GPU-origin access to CPU-resident system memory (the paper's hot
  // remote path, 128-byte lines over C2C): bulk == scalar, including the
  // GPU first-touch faults and link traffic.
  const std::uint64_t bytes = 64 << 10;
  core::Buffer a = rt.malloc_system(bytes);
  core::Buffer b = rt.malloc_system(bytes);
  const std::size_t n = bytes / sizeof(float);
  (void)rt.launch("warmup", 0, [] {});  // pay the one-time context init
  const auto scalar = rt.launch("scalar", 0, [&] {
    auto s = rt.device_span<float>(a);
    for (std::size_t i = 0; i < n; ++i) s.store(i, 2.0f);
  });
  const auto bulk = rt.launch("bulk", 0, [&] {
    auto s = rt.device_span<float>(b);
    std::fill_n(s.store_run(0, n), n, 2.0f);
  });
  EXPECT_EQ(bulk.traffic.c2c_write_bytes, scalar.traffic.c2c_write_bytes);
  EXPECT_EQ(bulk.traffic.l1l2_bytes, scalar.traffic.l1l2_bytes);
  EXPECT_EQ(bulk.traffic.gpu_first_touch_faults,
            scalar.traffic.gpu_first_touch_faults);
  EXPECT_EQ(bulk.duration, scalar.duration);
}

TEST_F(SpanTest, BulkRunRoundTripsRealData) {
  core::Buffer buf = rt.malloc_system(8 << 10);
  sys.host_phase_begin("rw");
  {
    auto s = rt.host_span<int>(buf);
    int* w = s.store_run(3, 1000);
    for (int i = 0; i < 1000; ++i) w[i] = i * 7;
    const int* r = s.load_run(3, 1000);
    for (int i = 0; i < 1000; ++i) ASSERT_EQ(r[i], i * 7);
  }
  (void)sys.host_phase_end();
}

TEST_F(SpanTest, BulkRunWideElementsFallBackToScalarMarking) {
  // Elements wider than a cacheline mark only their start lines; the bulk
  // path must not over-mark the lines in between.
  struct Wide {
    unsigned char d[96];  // > 64-byte CPU line
  };
  core::Buffer a = rt.malloc_system(32 << 10);
  core::Buffer b = rt.malloc_system(32 << 10);
  const std::size_t n = (32 << 10) / sizeof(Wide);
  sys.host_phase_begin("scalar");
  {
    auto s = rt.host_span<Wide>(a);
    for (std::size_t i = 0; i < n; ++i) s.store(i, Wide{});
  }
  const cache::KernelRecord scalar = sys.host_phase_end();
  sys.host_phase_begin("bulk");
  {
    auto s = rt.host_span<Wide>(b);
    std::fill_n(s.store_run(0, n), n, Wide{});
  }
  const cache::KernelRecord bulk = sys.host_phase_end();
  EXPECT_EQ(bulk.traffic.ddr_write_bytes, scalar.traffic.ddr_write_bytes);
  EXPECT_EQ(bulk.duration, scalar.duration);
}

TEST_F(SpanTest, FlushIsIdempotent) {
  core::Buffer b = rt.malloc_system(1 << 12);
  sys.host_phase_begin("flush");
  {
    auto s = rt.host_span<int>(b);
    s.store(0, 1);
    s.flush();
    s.flush();
    s.store(1, 2);
  }
  const auto& rec = sys.host_phase_end();
  EXPECT_EQ(rec.traffic.ddr_write_bytes, 2u * 64u);  // two page visits, 1 line each
}

}  // namespace
}  // namespace ghum
