#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "runtime/runtime.hpp"
#include "runtime/span.hpp"
#include "sim/rng.hpp"

namespace ghum {
namespace {

core::SystemConfig span_config() {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage4K;
  cfg.hbm_capacity = 8ull << 20;
  cfg.ddr_capacity = 64ull << 20;
  cfg.gpu_driver_baseline = 0;
  cfg.event_log = true;
  return cfg;
}

class SpanTest : public ::testing::Test {
 protected:
  core::System sys{span_config()};
  runtime::Runtime rt{sys};
};

TEST_F(SpanTest, LoadStoreRoundTripsRealData) {
  core::Buffer b = rt.malloc_system(1 << 16);
  sys.host_phase_begin("p");
  {
    auto s = rt.host_span<int>(b);
    for (int i = 0; i < 1000; ++i) s.store(i, i * 3);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(s.load(i), i * 3);
  }
  (void)sys.host_phase_end();
}

TEST_F(SpanTest, SequentialSweepChargesRawByteVolume) {
  core::Buffer b = rt.malloc_system(1 << 16);
  sys.host_phase_begin("seq");
  {
    auto s = rt.host_span<float>(b);
    for (std::size_t i = 0; i < s.size(); ++i) s.store(i, 1.0f);
  }
  const auto& rec = sys.host_phase_end();
  // Dense write sweep: line volume equals the buffer size exactly.
  EXPECT_EQ(rec.traffic.ddr_write_bytes, std::uint64_t{1} << 16);
}

TEST_F(SpanTest, StridedSweepIsAmplifiedToWholeLines) {
  core::Buffer b = rt.malloc_system(1 << 16);
  sys.host_phase_begin("strided");
  {
    auto s = rt.host_span<float>(b);
    // One 4-byte store per 64-byte line: 1024 lines.
    for (std::size_t i = 0; i < s.size(); i += 16) s.store(i, 1.0f);
  }
  const auto& rec = sys.host_phase_end();
  EXPECT_EQ(rec.traffic.ddr_write_bytes, 1024u * 64u);
}

TEST_F(SpanTest, RepeatedAccessToSameLineCountsOncePerPageVisit) {
  core::Buffer b = rt.malloc_system(1 << 16);
  sys.host_phase_begin("reuse");
  {
    auto s = rt.host_span<float>(b);
    for (int rep = 0; rep < 100; ++rep) {
      (void)s.load(3);  // same element, same line, same page visit
    }
  }
  const auto& rec = sys.host_phase_end();
  EXPECT_EQ(rec.traffic.ddr_read_bytes, 64u);
}

TEST_F(SpanTest, PageTransitionFlushesAndReresolves) {
  core::Buffer b = rt.malloc_system(16 << 10);  // 4 pages of 4 KiB
  sys.host_phase_begin("pages");
  {
    auto s = rt.host_span<std::uint8_t>(b);
    s.store(0, 1);
    s.store(4096, 1);
    s.store(8192, 1);
    s.store(12288, 1);
  }
  (void)sys.host_phase_end();
  // Four first-touch faults: one per page.
  EXPECT_EQ(sys.stats().get("os.fault.cpu_first_touch"), 4u);
}

TEST_F(SpanTest, GpuSpanUses128ByteLines) {
  core::Buffer b = rt.malloc_device(1 << 16);
  auto rec = rt.launch("k", 0, [&] {
    auto s = rt.device_span<float>(b);
    // One store per 128-byte line: 512 lines.
    for (std::size_t i = 0; i < s.size(); i += 32) s.store(i, 2.0f);
  });
  EXPECT_EQ(rec.traffic.l1l2_bytes, 512u * 128u);
}

TEST_F(SpanTest, EpochInvalidationAfterMigration) {
  core::Buffer b = rt.malloc_system(64 << 10);
  sys.host_phase_begin("touch");
  {
    auto s = rt.host_span<float>(b);
    for (std::size_t i = 0; i < s.size(); ++i) s.store(i, 1.0f);
  }
  (void)sys.host_phase_end();
  auto rec = rt.launch("k", 0, [&] {
    auto s = rt.device_span<float>(b);
    (void)s.load(0);  // resolves page 0 (CPU-resident, remote)
    // Mid-kernel migration invalidates the cached view via the epoch.
    sys.prefetch(b, 0, b.bytes, mem::Node::kGpu);
    (void)s.load(1);  // must re-resolve and see GPU-resident data
  });
  EXPECT_GT(rec.traffic.hbm_read_bytes, 0u);
}

TEST_F(SpanTest, OffsetSpanAddressesSubrange) {
  core::Buffer b = rt.malloc_system(1 << 12);
  sys.host_phase_begin("off");
  {
    auto s = rt.host_span<std::uint32_t>(b, 16, 4);
    EXPECT_EQ(s.size(), 4u);
    s.store(0, 7);
  }
  (void)sys.host_phase_end();
  EXPECT_EQ(reinterpret_cast<std::uint32_t*>(b.host)[16], 7u);
}

TEST_F(SpanTest, MutateCountsReadAndWrite) {
  core::Buffer b = rt.malloc_system(1 << 12);
  sys.host_phase_begin("rmw");
  {
    auto s = rt.host_span<int>(b);
    s.mutate(0) += 1;
  }
  const auto& rec = sys.host_phase_end();
  EXPECT_GT(rec.traffic.ddr_read_bytes, 0u);
  EXPECT_GT(rec.traffic.ddr_write_bytes, 0u);
}

TEST_F(SpanTest, ChasedLoadsPayFullTierLatency) {
  core::Buffer local = rt.malloc_host(1 << 12);
  sys.host_phase_begin("chase");
  const sim::Picos t0 = sys.now();
  {
    auto s = rt.host_span<std::uint32_t>(local);
    std::uint32_t cur = 0;
    for (int hop = 0; hop < 100; ++hop) cur = s.load_chased(cur % 1024);
    (void)cur;
  }
  (void)sys.host_phase_end();
  // 100 hops x 110 ns LPDDR5X latency dominates.
  EXPECT_GE(sys.now() - t0, 100 * sim::nanoseconds(110));
}

TEST_F(SpanTest, RemoteChaseIsSlowerThanLocalChase) {
  auto chase = [&](const core::Buffer& buf, mem::Node origin) {
    const sim::Picos t0 = sys.now();
    if (origin == mem::Node::kGpu) sys.kernel_begin("chase");
    {
      runtime::Span<std::uint32_t> s{sys, buf, origin};
      for (int hop = 0; hop < 100; ++hop) (void)s.load_chased(0);
    }
    if (origin == mem::Node::kGpu) {
      (void)sys.kernel_end();
    }
    return sys.now() - t0;
  };
  sys.ensure_gpu_context();
  core::Buffer dev = rt.malloc_device(1 << 12);
  core::Buffer host_side = rt.malloc_host(1 << 12);
  const sim::Picos local = chase(dev, mem::Node::kGpu);
  const sim::Picos remote = chase(host_side, mem::Node::kGpu);
  EXPECT_GT(remote, local);
}

TEST_F(SpanTest, RandomPatternChargesMatchAnalyticLineCount) {
  // Property: for any access pattern within one page visit, charged line
  // volume equals (distinct cachelines touched) x line size.
  core::Buffer b = rt.malloc_system(4 << 10);  // one 4 KiB page
  sim::Rng rng{123};
  std::vector<std::uint64_t> offsets;
  for (int i = 0; i < 400; ++i) offsets.push_back(rng.next_below(1024));
  std::set<std::uint64_t> distinct_lines;
  for (auto off : offsets) distinct_lines.insert(off * 4 / 64);

  sys.host_phase_begin("rand");
  {
    auto s = rt.host_span<std::uint32_t>(b);
    for (auto off : offsets) (void)s.load(off);
  }
  const auto& rec = sys.host_phase_end();
  EXPECT_EQ(rec.traffic.ddr_read_bytes, distinct_lines.size() * 64);
}

TEST_F(SpanTest, FlushIsIdempotent) {
  core::Buffer b = rt.malloc_system(1 << 12);
  sys.host_phase_begin("flush");
  {
    auto s = rt.host_span<int>(b);
    s.store(0, 1);
    s.flush();
    s.flush();
    s.store(1, 2);
  }
  const auto& rec = sys.host_phase_end();
  EXPECT_EQ(rec.traffic.ddr_write_bytes, 2u * 64u);  // two page visits, 1 line each
}

}  // namespace
}  // namespace ghum
