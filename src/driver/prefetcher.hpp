#pragma once

#include <cstdint>

#include "core/system_config.hpp"
#include "pagetable/page_table.hpp"

/// \file prefetcher.hpp
/// The managed-memory driver's speculative prefetching policy (paper
/// Section 2.3.2). On a GMMU fault the driver does not move only the
/// faulting system page: its tree-based prefetcher (Ganguly et al.) ramps
/// the migration up from a 64 KiB basic block by doublings until the whole
/// 2 MiB virtual block is resident — so one block costs a logarithmic
/// number of fault batches (6 for 64K->2M) instead of one per basic block
/// (32). With prefetching disabled every 64 KiB basic block pays its own
/// fault batch (bench/bench_ablation_prefetch quantifies this trade).

namespace ghum::driver {

class Prefetcher {
 public:
  explicit Prefetcher(bool enabled) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// UVM basic block: the finest migration granularity of the driver.
  static constexpr std::uint64_t kBasicBlock = 64ull << 10;

  /// Number of fault batches the driver pays to bring one GPU block of
  /// \p block_bytes into GPU memory: logarithmic ramp with the tree
  /// prefetcher, one per basic block without it.
  [[nodiscard]] std::uint64_t fault_batches(std::uint64_t block_bytes) const {
    const std::uint64_t basics = (block_bytes + kBasicBlock - 1) / kBasicBlock;
    if (!enabled_) return basics;
    std::uint64_t batches = 1, covered = 1;
    while (covered < basics) {
      covered *= 2;
      ++batches;
    }
    return batches;
  }

 private:
  bool enabled_;
};

}  // namespace ghum::driver
