#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/machine.hpp"
#include "driver/migration_engine.hpp"

/// \file access_counter.hpp
/// The automatic delayed access-counter-based migration of system-allocated
/// memory (paper Section 2.2.1). Hardware counters track GPU accesses to
/// virtual memory regions; when a counter crosses a user-configurable
/// threshold (driver default 256) the GPU raises a *notification* interrupt,
/// and the driver decides whether to migrate the region's pages toward GPU
/// memory. Because coherent direct access already works, this machinery is
/// purely a performance optimization — disabling it (SystemConfig) leaves
/// applications fully functional, exactly as on real hardware.
///
/// Each serviced notification migrates the CPU-resident pages of the whole
/// associated region; the driver's work queue services at most one
/// notification per `counter_min_interval` of simulated time, which is
/// what spreads working-set migration over several iterations in
/// iterative workloads (the iteration 1-4 ramp of paper Figure 10).

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::driver {

class AccessCounterEngine {
 public:
  AccessCounterEngine(core::Machine& m, MigrationEngine& mig)
      : m_(&m), mig_(&mig) {}

  /// Reports \p events GPU accesses to the CPU-resident system page
  /// containing \p va during kernel \p kernel_id. May fire a notification
  /// and perform a migration (at most counter_migrations_per_kernel per
  /// kernel launch).
  void note_gpu_access(os::Vma& vma, std::uint64_t va, std::uint64_t events,
                       std::uint64_t kernel_id);

  /// Reports CPU accesses to GPU-resident system pages. The symmetric
  /// direction exists in hardware but the paper observes it never fires in
  /// practice (Section 6): CPU access volumes stay far below the threshold
  /// relative to GPU traffic. We model it with the same threshold.
  void note_cpu_access(os::Vma& vma, std::uint64_t va, std::uint64_t events);

  [[nodiscard]] std::uint64_t notifications() const noexcept { return notifications_; }
  [[nodiscard]] std::uint64_t migrated_h2d_bytes() const noexcept { return h2d_; }
  [[nodiscard]] std::uint64_t migrated_d2h_bytes() const noexcept { return d2h_; }

  /// Forgets all counters (e.g. when an allocation is freed).
  void reset();

 private:
  void note(os::Vma& vma, std::uint64_t va, std::uint64_t events, mem::Node to,
            std::uint64_t kernel_id);

  core::Machine* m_;
  MigrationEngine* mig_;
  /// Counters keyed by (region index); regions are counter_region_bytes
  /// aligned slices of the VA space. Separate maps per direction.
  std::unordered_map<std::uint64_t, std::uint64_t> gpu_counts_;
  std::unordered_map<std::uint64_t, std::uint64_t> cpu_counts_;
  sim::Picos next_notification_allowed_ = 0;  ///< global work-queue limit
  std::uint64_t current_kernel_ = ~0ull;      ///< per-kernel batch limiter
  std::uint32_t fired_this_kernel_ = 0;
  std::uint64_t notifications_ = 0;
  std::uint64_t h2d_ = 0;
  std::uint64_t d2h_ = 0;

  friend class ghum::chk::Snapshotter;
};

}  // namespace ghum::driver
