#pragma once

#include <cstdint>
#include <list>
#include <set>
#include <string>
#include <unordered_map>

#include "core/machine.hpp"
#include "driver/migration_engine.hpp"
#include "driver/prefetcher.hpp"
#include "os/page_fault.hpp"

/// \file managed_engine.hpp
/// The CUDA managed memory engine (paper Section 2.3): cudaMallocManaged
/// allocations live in a single shared virtual address space but hop
/// between the *system page table* (CPU-resident parts, system page size)
/// and the *GPU-exclusive page table* (GPU-resident parts, 2 MiB blocks).
///
/// Behaviours reproduced:
///  - first-touch placement: CPU touch -> system PTE on CPU; GPU touch ->
///    2 MiB GPU block mapped directly (no migration), which is why managed
///    memory initializes fast for GPU-initialized apps (Section 5.1.2);
///  - on-demand migration: a GPU access to CPU-resident managed data takes
///    a GMMU fault and migrates the 2 MiB block in (Section 2.3.1);
///  - CPU access to GPU-resident data migrates the block back;
///  - LRU eviction under GPU memory pressure;
///  - a thrash guard: once a VMA's eviction volume exceeds its own size,
///    further GPU faults map the data *remotely* instead of migrating —
///    reproducing the oversubscribed 34-qubit behaviour where "no page is
///    migrated and all data is accessed over NVLink-C2C at a low
///    bandwidth" (Section 7);
///  - explicit prefetch (cudaMemPrefetchAsync), which migrates at full
///    link bandwidth without fault overhead and re-arms migration.

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::driver {

/// How a GPU access to a managed page got resolved.
struct ManagedResolution {
  mem::Node node = mem::Node::kGpu;
  bool remote_mapped = false;  ///< thrash-guard remote mapping (stays on CPU)
};

class ManagedEngine {
 public:
  ManagedEngine(core::Machine& m, MigrationEngine& mig, os::PageFaultHandler& pf)
      : m_(&m),
        mig_(&mig),
        pf_(&pf),
        prefetcher_(m.config().managed_prefetch) {}

  /// cudaMallocManaged(): lazy VMA, 2 MiB aligned.
  os::Vma& allocate(std::uint64_t bytes, std::string label);

  /// Releases all GPU-resident blocks of \p vma (the system-page part is
  /// torn down by os::SystemAllocator afterwards).
  void release_gpu_blocks(os::Vma& vma);

  /// Resolves a faulting GPU access (page absent from the GPU page table).
  /// Honours cudaMemAdvise state: a CPU preferred location remote-maps
  /// instead of migrating; read-mostly ranges get a GPU read replica.
  ManagedResolution gpu_fault(os::Vma& vma, std::uint64_t va, std::uint64_t kernel_id);

  /// Resolves a faulting CPU access (page absent from the system page
  /// table): plain CPU first-touch, migration of a GPU block back, or —
  /// for GPU-preferred ranges — a coherent remote mapping (returns the
  /// node the access is served from).
  mem::Node cpu_fault(os::Vma& vma, std::uint64_t va);

  // --- read duplication (cudaMemAdviseSetReadMostly) -----------------------
  /// True when the 2 MiB block at \p block_base is a GPU read replica
  /// (CPU copy remains authoritative in the system page table).
  [[nodiscard]] bool is_replica(std::uint64_t block_base) const {
    return replicas_.contains(block_base);
  }
  /// Drops the GPU replica (a write happened, or pressure/unadvise).
  void collapse_replica(os::Vma& vma, std::uint64_t block_base);
  /// Drops every replica of \p vma (cudaMemAdviseUnsetReadMostly).
  void collapse_all_replicas(os::Vma& vma);
  [[nodiscard]] std::size_t replica_count() const noexcept { return replicas_.size(); }

  /// LRU bookkeeping: the GPU touched a resident block during \p kernel_id.
  void touch_gpu_block(std::uint64_t block_base, std::uint64_t kernel_id);

  /// cudaMemPrefetchAsync-style explicit migration of [base, base+len).
  void prefetch(os::Vma& vma, std::uint64_t base, std::uint64_t len, mem::Node dst);

  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] std::uint64_t gpu_faults() const noexcept { return gpu_faults_; }
  [[nodiscard]] std::uint64_t cpu_faults() const noexcept { return cpu_faults_; }
  [[nodiscard]] std::size_t resident_blocks() const noexcept { return blocks_.size(); }

  /// True when \p vma is operating in remote-map mode (thrash guard hit).
  [[nodiscard]] bool remote_mode(const os::Vma& vma) const;

  /// Evicts managed blocks until \p bytes of GPU frames are free (used by
  /// core::System to vacate frames for ECC retirement and by cudaMalloc's
  /// allocation path). Returns false when pressure cannot be relieved.
  bool make_room(std::uint64_t bytes) {
    return ensure_gpu_room(bytes, /*keep_block=*/~0ull);
  }

 private:
  struct BlockInfo {
    std::list<std::uint64_t>::iterator lru_it;
    std::uint64_t vma_base = 0;
    std::uint64_t last_kernel = 0;
  };
  struct VmaState {
    std::uint64_t evicted_bytes = 0;
    std::uint64_t migrated_blocks = 0;  ///< prefetcher warm-up state
    bool remote_mode = false;
  };

  /// Evicts LRU blocks (excluding \p keep_block and blocks protected by an
  /// in-flight prefetch) until \p bytes fit on the GPU. Returns false if
  /// pressure cannot be relieved.
  bool ensure_gpu_room(std::uint64_t bytes, std::uint64_t keep_block);

  /// Thrash-guard entry: models UVM's thrashing mitigation, which pins the
  /// range to system memory — remaining GPU-resident blocks of \p vma are
  /// written back so the whole range is served remotely afterwards
  /// (paper Section 7: the oversubscribed managed steady state accesses
  /// everything over NVLink-C2C).
  void enter_remote_mode(os::Vma& vma);

  /// Moves one GPU-resident block back to CPU system pages (eviction or
  /// CPU-fault path). Charges copy + overhead. Returns false — leaving the
  /// block untouched on the GPU — when the CPU cannot absorb it (frames
  /// exhausted) or the injected migration batch aborts after retries.
  [[nodiscard]] bool block_to_cpu(os::Vma& vma, std::uint64_t block_base,
                                  bool is_eviction);

  /// Migrates/maps one block onto the GPU: maps the GPU block first, then
  /// unmaps its CPU-resident system pages, charging fault batches and copy
  /// time. Returns false — leaving residency unchanged — when GPU frames
  /// are denied/exhausted or the injected migration batch aborts.
  [[nodiscard]] bool block_to_gpu(os::Vma& vma, std::uint64_t block_base,
                                  bool via_fault);

  void register_block(os::Vma& vma, std::uint64_t block_base);
  void forget_block(std::uint64_t block_base);

  /// Builds a GPU read replica of a (CPU-resident) read-mostly block.
  /// Returns false when GPU room cannot be made.
  bool make_replica(os::Vma& vma, std::uint64_t block_base);

  core::Machine* m_;
  MigrationEngine* mig_;
  os::PageFaultHandler* pf_;
  Prefetcher prefetcher_;

  std::list<std::uint64_t> lru_;  ///< GPU-resident managed block bases; front = MRU
  std::unordered_map<std::uint64_t, BlockInfo> blocks_;
  std::unordered_map<std::uint64_t, VmaState> vma_state_;  ///< keyed by vma.base
  /// Blocks brought in by the prefetch call currently executing; they must
  /// not be evicted to make room for later blocks of the same call.
  std::set<std::uint64_t> prefetch_protected_;
  /// GPU read replicas of read-mostly blocks (the system page table keeps
  /// the authoritative CPU copy while these exist).
  std::set<std::uint64_t> replicas_;

  std::uint64_t evictions_ = 0;
  std::uint64_t gpu_faults_ = 0;
  std::uint64_t cpu_faults_ = 0;

  friend class ghum::chk::Snapshotter;
};

}  // namespace ghum::driver
