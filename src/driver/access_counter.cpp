#include "driver/access_counter.hpp"

namespace ghum::driver {

void AccessCounterEngine::note_gpu_access(os::Vma& vma, std::uint64_t va,
                                          std::uint64_t events,
                                          std::uint64_t kernel_id) {
  note(vma, va, events, mem::Node::kGpu, kernel_id);
}

void AccessCounterEngine::note_cpu_access(os::Vma& vma, std::uint64_t va,
                                          std::uint64_t events) {
  note(vma, va, events, mem::Node::kCpu, ~0ull);
}

void AccessCounterEngine::note(os::Vma& vma, std::uint64_t va,
                               std::uint64_t events, mem::Node to,
                               std::uint64_t kernel_id) {
  const auto& cfg = m_->config();
  if (!cfg.access_counter_migration) return;
  // An explicit preferred location pins the range: the driver does not
  // counter-migrate advised memory away from it.
  if (vma.preferred_location.has_value() && *vma.preferred_location != to) return;

  auto& counts = to == mem::Node::kGpu ? gpu_counts_ : cpu_counts_;
  const std::uint64_t region = va / cfg.counter_region_bytes;
  std::uint64_t& count = counts[region];
  count += events;
  if (count < cfg.access_counter_threshold) return;
  if (m_->clock().now() < next_notification_allowed_) return;
  // The driver drains its notification queue at a bounded batch rate: at
  // most counter_migrations_per_kernel migrations are serviced while one
  // kernel is in flight.
  if (kernel_id != ~0ull) {
    if (kernel_id != current_kernel_) {
      current_kernel_ = kernel_id;
      fired_this_kernel_ = 0;
    }
    if (fired_this_kernel_ >= cfg.counter_migrations_per_kernel) return;
    ++fired_this_kernel_;
  }

  // Notification interrupt: handled by the driver on a CPU core. Accesses
  // to the region stall while its pages are unmapped and moved — the
  // "temporary latency increase when the computation accesses pages that
  // are being migrated" of paper Section 5.2. The notification is a causal
  // root: the region migration below inherits its span.
  sim::SpanScope span{m_->events()};
  ++notifications_;
  m_->metrics().counter_notifications->inc();
  count = 0;
  next_notification_allowed_ = m_->clock().now() + cfg.counter_min_interval;
  m_->clock().advance(cfg.costs.counter_notification +
                      cfg.costs.inflight_migration_stall);
  m_->stats().add("driver.counter.notifications");
  if (m_->events().enabled()) {
    m_->events().record(sim::Event{.time = m_->clock().now(),
                                   .type = sim::EventType::kCounterNotification,
                                   .va = region * cfg.counter_region_bytes,
                                   .bytes = cfg.counter_region_bytes,
                                   .aux = 0});
  }

  // The driver migrates the whole region's resident pages (Section 2.2.1).
  const std::uint64_t region_base = region * cfg.counter_region_bytes;
  std::uint64_t moved;
  if (to == mem::Node::kGpu) {
    moved = mig_->migrate_system_range_to_gpu(vma, region_base,
                                              cfg.counter_region_bytes, ~0ull);
    h2d_ += moved;
  } else {
    moved = mig_->migrate_system_range_to_cpu(vma, region_base,
                                              cfg.counter_region_bytes, ~0ull);
    d2h_ += moved;
  }
}

void AccessCounterEngine::reset() {
  gpu_counts_.clear();
  cpu_counts_.clear();
}

}  // namespace ghum::driver
