#include "driver/migration_engine.hpp"

#include <algorithm>

#include "fault/fault_injector.hpp"

namespace ghum::driver {

bool MigrationEngine::batch_with_retry(std::uint64_t va) {
  fault::FaultInjector* fi = m_->fault_injector();
  if (fi == nullptr) return true;
  const auto& fcfg = m_->config().faults;
  sim::Picos backoff = fcfg.migration_retry_backoff;
  for (std::uint32_t attempt = 0; attempt <= fcfg.migration_max_retries; ++attempt) {
    if (!fi->fail_migration_batch()) {
      // Depth 0 (clean first try) is not observed: the histogram answers
      // "when the batch path degraded, how deep did backoff go".
      if (attempt > 0) m_->metrics().migration_retry_depth->observe(attempt);
      return true;
    }
    if (attempt == fcfg.migration_max_retries) break;
    m_->clock().advance(backoff);
    backoff *= 2;
    m_->stats().add("fault.migration_retries", 1);
    m_->metrics().migration_retries->inc();
    auto& events = m_->events();
    if (events.enabled()) {
      events.record(sim::Event{.time = m_->clock().now(),
                               .type = sim::EventType::kFaultMigrationRetry,
                               .va = va,
                               .bytes = 0,
                               .aux = attempt + 1});
    }
  }
  m_->stats().add("fault.migration_aborts", 1);
  m_->metrics().migration_aborts->inc();
  m_->metrics().migration_retry_depth->observe(
      static_cast<std::uint64_t>(fcfg.migration_max_retries) + 1);
  auto& events = m_->events();
  if (events.enabled()) {
    events.record(sim::Event{.time = m_->clock().now(),
                             .type = sim::EventType::kFaultMigrationAbort,
                             .va = va,
                             .bytes = 0,
                             .aux = fcfg.migration_max_retries});
  }
  return false;
}

sim::Picos MigrationEngine::copy_time(interconnect::Direction dir,
                                      std::uint64_t bytes) {
  const sim::Picos raw = m_->c2c().transfer(dir, bytes);
  const double eff = m_->config().costs.migration_efficiency;
  return static_cast<sim::Picos>(static_cast<double>(raw) / eff);
}

sim::Picos MigrationEngine::bulk_copy_time(interconnect::Direction dir,
                                           std::uint64_t bytes) {
  return m_->c2c().transfer(dir, bytes);
}

std::uint64_t MigrationEngine::migrate_system_range_to_gpu(os::Vma& vma,
                                                           std::uint64_t base,
                                                           std::uint64_t len,
                                                           std::uint64_t max_bytes) {
  return migrate_system_range(vma, base, len, max_bytes, mem::Node::kGpu);
}

std::uint64_t MigrationEngine::migrate_system_range_to_cpu(os::Vma& vma,
                                                           std::uint64_t base,
                                                           std::uint64_t len,
                                                           std::uint64_t max_bytes) {
  return migrate_system_range(vma, base, len, max_bytes, mem::Node::kCpu);
}

std::uint64_t MigrationEngine::migrate_system_range(os::Vma& vma, std::uint64_t base,
                                                    std::uint64_t len,
                                                    std::uint64_t max_bytes,
                                                    mem::Node to) {
  if (!batch_with_retry(base)) return 0;
  const auto& costs = m_->config().costs;
  const std::uint64_t page = m_->system_pt().page_size();
  const std::uint64_t start = m_->system_pt().page_base(std::max(base, vma.base));
  const std::uint64_t stop = std::min(base + len, vma.end());

  if (start >= stop) return 0;
  const std::uint64_t span_pages = (stop - start + page - 1) / page;
  // The byte budget was checked before each page, so it admits whole pages
  // up to its ceiling.
  const std::uint64_t budget =
      max_bytes / page + (max_bytes % page != 0 ? 1 : 0);
  const auto r = m_->move_system_range(vma, start, span_pages, to, budget);
  const std::uint64_t pages = r.moved;
  const std::uint64_t moved = pages * page;
  if (moved == 0) return 0;

  const auto dir = to == mem::Node::kGpu ? interconnect::Direction::kCpuToGpu
                                         : interconnect::Direction::kGpuToCpu;
  const sim::Picos dt =
      copy_time(dir, moved) + costs.migrate_per_page * static_cast<sim::Picos>(pages);
  m_->clock().advance(dt);
  (to == mem::Node::kGpu ? h2d_bytes_ : d2h_bytes_) += moved;
  m_->attribution().note_migration(vma.tenant, to == mem::Node::kGpu, moved);
  auto& met = m_->metrics();
  if (to == mem::Node::kGpu) {
    met.migrations_h2d->inc();
    met.migrated_bytes_h2d->inc(moved);
    met.migration_batch_bytes_h2d->observe(moved);
    met.migration_latency_h2d->observe(static_cast<std::uint64_t>(dt));
  } else {
    met.migrations_d2h->inc();
    met.migrated_bytes_d2h->inc(moved);
    met.migration_batch_bytes_d2h->observe(moved);
    met.migration_latency_d2h->observe(static_cast<std::uint64_t>(dt));
  }

  auto& events = m_->events();
  if (events.enabled()) {
    events.record(sim::Event{.time = m_->clock().now(),
                             .type = to == mem::Node::kGpu
                                         ? sim::EventType::kMigrationH2D
                                         : sim::EventType::kMigrationD2H,
                             .va = start,
                             .bytes = moved,
                             .aux = 0});
  }
  m_->stats().add(to == mem::Node::kGpu ? "driver.migrate.h2d_bytes"
                                        : "driver.migrate.d2h_bytes",
                  moved);
  return moved;
}

}  // namespace ghum::driver
