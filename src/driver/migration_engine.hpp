#pragma once

#include "core/machine.hpp"

/// \file migration_engine.hpp
/// Costed page-copy mechanics shared by every migration path: the
/// access-counter migrations of system memory (Section 2.2.1), the
/// on-demand migrations and evictions of managed memory (Section 2.3.1),
/// and explicit prefetches (Section 2.3.2). Data movement itself is
/// bookkeeping (application bytes live in one host buffer); what this
/// engine produces is simulated time and C2C traffic.

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::driver {

class MigrationEngine {
 public:
  explicit MigrationEngine(core::Machine& m) : m_(&m) {}

  /// Time to copy \p bytes across the link in \p dir at migration
  /// efficiency (also records the traffic on the link).
  [[nodiscard]] sim::Picos copy_time(interconnect::Direction dir, std::uint64_t bytes);

  /// Same, at full link bandwidth (explicit memcpy / prefetch quality).
  [[nodiscard]] sim::Picos bulk_copy_time(interconnect::Direction dir,
                                          std::uint64_t bytes);

  /// Moves CPU-resident *system* pages inside [base, base+len) to the GPU,
  /// up to \p max_bytes, stopping early when GPU frames run out. Charges
  /// copy time plus per-page driver overhead. Returns bytes moved.
  std::uint64_t migrate_system_range_to_gpu(os::Vma& vma, std::uint64_t base,
                                            std::uint64_t len, std::uint64_t max_bytes);

  /// Symmetric GPU->CPU path (used by tests and the NUMA-balance ablation;
  /// the paper observes no GPU->CPU counter migrations in practice).
  std::uint64_t migrate_system_range_to_cpu(os::Vma& vma, std::uint64_t base,
                                            std::uint64_t len, std::uint64_t max_bytes);

  [[nodiscard]] std::uint64_t bytes_migrated_h2d() const noexcept { return h2d_bytes_; }
  [[nodiscard]] std::uint64_t bytes_migrated_d2h() const noexcept { return d2h_bytes_; }

  /// Fault-injection gate for one migration batch. Without an injector this
  /// is free and always succeeds. With one, each attempt may be failed by
  /// the injector (copy-engine/channel error); failed attempts charge an
  /// exponentially growing simulated backoff and retry, up to
  /// faults.migration_max_retries. Returns false when the batch is aborted
  /// (caller degrades: page stays put, access served remotely).
  [[nodiscard]] bool batch_with_retry(std::uint64_t va = 0);

 private:
  std::uint64_t migrate_system_range(os::Vma& vma, std::uint64_t base,
                                     std::uint64_t len, std::uint64_t max_bytes,
                                     mem::Node to);

  core::Machine* m_;
  std::uint64_t h2d_bytes_ = 0;
  std::uint64_t d2h_bytes_ = 0;

  friend class ghum::chk::Snapshotter;
};

}  // namespace ghum::driver
