#include "driver/managed_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "fault/fault_injector.hpp"
#include "fault/status.hpp"

namespace ghum::driver {

namespace {
constexpr std::uint64_t kBlock = pagetable::kGpuPageSize;
}

os::Vma& ManagedEngine::allocate(std::uint64_t bytes, std::string label) {
  const auto& costs = m_->config().costs;
  os::Vma& vma = m_->address_space().create(bytes, os::AllocKind::kManaged, kBlock,
                                            std::move(label));
  // VA-range bookkeeping happens at system-page granularity (the managed
  // range is registered with the OS too), which is where managed memory's
  // small but measurable 4 KiB allocation overhead comes from (Figure 8's
  // decaying managed speedup).
  const std::uint64_t page = m_->system_pt().page_size();
  const std::uint64_t pages = (bytes + page - 1) / page;
  m_->clock().advance(costs.managed_alloc_base +
                      costs.alloc_per_page * static_cast<sim::Picos>(pages));
  if (m_->events().enabled()) {
    m_->events().record(sim::Event{.time = m_->clock().now(),
                                   .type = sim::EventType::kAllocation,
                                   .va = vma.base,
                                   .bytes = bytes,
                                   .aux = static_cast<std::uint32_t>(vma.kind)});
  }
  return vma;
}

void ManagedEngine::release_gpu_blocks(os::Vma& vma) {
  const auto& costs = m_->config().costs;
  std::uint64_t released = 0;
  for (std::uint64_t block = m_->gpu_pt().page_base(vma.base); block < vma.end();
       block += kBlock) {
    if (m_->gpu_pt().lookup(block) == nullptr) continue;
    m_->unmap_gpu_block(vma, block);
    forget_block(block);
    ++released;
  }
  m_->clock().advance(costs.unmap_per_page * static_cast<sim::Picos>(released));
  vma_state_.erase(vma.base);
}

ManagedResolution ManagedEngine::gpu_fault(os::Vma& vma, std::uint64_t va,
                                           std::uint64_t kernel_id) {
  // The replayable fault is a causal root: migrations, evictions and
  // retries triggered while servicing it inherit its span.
  sim::SpanScope span{m_->events()};
  ++gpu_faults_;
  m_->metrics().gpu_fault_requests->inc();
  // Observe the full service latency on every exit path.
  struct LatencyProbe {
    core::Machine* m;
    obs::Histogram* h;
    sim::Picos start;
    ~LatencyProbe() {
      h->observe(static_cast<std::uint64_t>(m->clock().now() - start));
    }
  } probe{m_, m_->metrics().fault_latency_gpu_managed, m_->clock().now()};
  m_->stats().add("driver.managed.gpu_faults");
  m_->attribution().note_fault(vma.tenant, /*gpu_origin=*/true);
  const std::uint64_t block_base = m_->gpu_pt().page_base(va);
  VmaState& vs = vma_state_[vma.base];

  auto remote_resolve = [&]() -> ManagedResolution {
    // Thrash guard: map the data remotely instead of migrating. Pages that
    // were never touched still need CPU frames the first time. This is the
    // last-resort placement, so injection is suppressed here — only a
    // genuinely full CPU makes it fail.
    if (m_->system_pt().lookup(va) == nullptr) {
      fault::FaultInjector::ScopedSuppress guard{m_->fault_injector()};
      if (!m_->map_system_page(vma, va, mem::Node::kCpu)) {
        m_->stats().add("os.fault.oom");
        m_->metrics().oom_events->inc();
        if (m_->events().enabled()) {
          m_->events().record(sim::Event{.time = m_->clock().now(),
                                         .type = sim::EventType::kOutOfMemory,
                                         .va = va,
                                         .bytes = m_->system_page_bytes(),
                                         .aux = 0});
        }
        throw StatusError{Status::kErrorOutOfMemory,
                          "managed remote map: CPU memory exhausted"};
      }
      m_->clock().advance(m_->config().costs.cpu_minor_fault);
    }
    return ManagedResolution{.node = mem::Node::kCpu, .remote_mapped = true};
  };

  if (vs.remote_mode) return remote_resolve();

  // cudaMemAdvise interactions.
  if (vma.read_mostly) {
    if (make_replica(vma, block_base)) {
      touch_gpu_block(block_base, kernel_id);
      return ManagedResolution{.node = mem::Node::kGpu, .remote_mapped = false};
    }
    return remote_resolve();
  }
  if (vma.preferred_location == mem::Node::kCpu) {
    // The range is pinned to CPU memory: the driver maps it remotely
    // instead of migrating (coherent access over C2C).
    return remote_resolve();
  }

  const std::uint64_t need = m_->gpu_block_bytes(vma, block_base);
  if (m_->frames(mem::Node::kGpu).free_bytes() < need) {
    if (!ensure_gpu_room(need, block_base)) {
      enter_remote_mode(vma);
      return remote_resolve();
    }
    // Heavy eviction churn on this allocation flips it to remote mapping
    // (UVM's thrashing mitigation), reproducing the paper's oversubscribed
    // steady state (Section 7).
    if (vma_state_[vma.base].evicted_bytes >= vma.size) {
      enter_remote_mode(vma);
      return remote_resolve();
    }
  }

  if (!block_to_gpu(vma, block_base, /*via_fault=*/true)) {
    // Migration denied (injected frame denial or batch abort): serve the
    // access remotely this time instead of failing the kernel.
    return remote_resolve();
  }
  touch_gpu_block(block_base, kernel_id);
  return ManagedResolution{.node = mem::Node::kGpu, .remote_mapped = false};
}

mem::Node ManagedEngine::cpu_fault(os::Vma& vma, std::uint64_t va) {
  sim::SpanScope span{m_->events()};
  ++cpu_faults_;
  m_->metrics().cpu_fault_requests->inc();
  m_->attribution().note_fault(vma.tenant, /*gpu_origin=*/false);
  const std::uint64_t block_base = m_->gpu_pt().page_base(va);
  if (m_->gpu_pt().lookup(block_base) != nullptr) {
    if (vma.preferred_location == mem::Node::kGpu) {
      // Pinned to the GPU: the CPU reads it remotely over C2C instead of
      // pulling the block back.
      m_->clock().advance(m_->config().costs.cpu_minor_fault);
      return mem::Node::kGpu;
    }
    if (!block_to_cpu(vma, block_base, /*is_eviction=*/false)) {
      // CPU cannot absorb the block (or the batch aborted): the data stays
      // GPU-resident and this access is served coherently over C2C.
      m_->clock().advance(m_->config().costs.cpu_minor_fault);
      return mem::Node::kGpu;
    }
    return mem::Node::kCpu;
  }
  if (vma.preferred_location == mem::Node::kGpu) {
    // First touch of a GPU-preferred range from the CPU: populate at the
    // preferred location and access it remotely.
    const std::uint64_t need = m_->gpu_block_bytes(vma, block_base);
    if ((m_->frames(mem::Node::kGpu).free_bytes() >= need ||
         ensure_gpu_room(need, block_base)) &&
        block_to_gpu(vma, block_base, /*via_fault=*/true)) {
      touch_gpu_block(block_base, 0);
      return mem::Node::kGpu;
    }
    // No room at the preferred location: fall back to CPU placement.
  }
  // Plain CPU first-touch: managed pages on the CPU live in the system
  // page table like malloc'd pages.
  pf_->first_touch(vma, va, mem::Node::kCpu);
  return mem::Node::kCpu;
}

bool ManagedEngine::make_replica(os::Vma& vma, std::uint64_t block_base) {
  const auto& costs = m_->config().costs;
  const std::uint64_t need = m_->gpu_block_bytes(vma, block_base);
  if (m_->frames(mem::Node::kGpu).free_bytes() < need &&
      !ensure_gpu_room(need, block_base)) {
    return false;
  }
  // The CPU copy stays authoritative; untouched pages materialize on the
  // CPU first (zero-fill semantics), then the block is duplicated.
  const std::uint64_t page = m_->system_pt().page_size();
  const std::uint64_t stop = std::min(block_base + kBlock, vma.end());
  for (std::uint64_t va = block_base; va < stop; va += page) {
    if (m_->system_pt().lookup(va) == nullptr) {
      (void)pf_->first_touch(vma, va, mem::Node::kCpu);
    }
  }
  if (!m_->map_gpu_block(vma, block_base)) {
    // Frames denied (injection) or raced away: no replica this time — the
    // caller serves the access from the authoritative CPU copy.
    return false;
  }
  const std::uint64_t bytes = m_->gpu_block_bytes(vma, block_base);
  const sim::Picos dt =
      costs.managed_fault_batch +
      mig_->bulk_copy_time(interconnect::Direction::kCpuToGpu, bytes);
  m_->clock().advance(dt);
  register_block(vma, block_base);
  replicas_.insert(block_base);
  m_->stats().add("driver.managed.replicas_created");
  auto& met = m_->metrics();
  met.migrations_h2d->inc();
  met.migrated_bytes_h2d->inc(bytes);
  met.migration_batch_bytes_h2d->observe(bytes);
  met.migration_latency_h2d->observe(static_cast<std::uint64_t>(dt));
  if (m_->events().enabled()) {
    m_->events().record(sim::Event{.time = m_->clock().now(),
                                   .type = sim::EventType::kMigrationH2D,
                                   .va = block_base,
                                   .bytes = bytes,
                                   .aux = 1 /* read-duplication */});
  }
  return true;
}

void ManagedEngine::collapse_replica(os::Vma& vma, std::uint64_t block_base) {
  if (!replicas_.contains(block_base)) return;
  m_->unmap_gpu_block(vma, block_base);
  forget_block(block_base);
  m_->clock().advance(m_->config().costs.unmap_per_page);
  m_->stats().add("driver.managed.replicas_collapsed");
}

void ManagedEngine::collapse_all_replicas(os::Vma& vma) {
  for (std::uint64_t block = m_->gpu_pt().page_base(vma.base); block < vma.end();
       block += kBlock) {
    if (replicas_.contains(block)) collapse_replica(vma, block);
  }
}

void ManagedEngine::touch_gpu_block(std::uint64_t block_base, std::uint64_t kernel_id) {
  auto it = blocks_.find(block_base);
  if (it == blocks_.end()) return;
  if (it->second.last_kernel == kernel_id && it->second.lru_it == lru_.begin()) return;
  it->second.last_kernel = kernel_id;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
}

void ManagedEngine::prefetch(os::Vma& vma, std::uint64_t base, std::uint64_t len,
                             mem::Node dst) {
  // The explicit hint is a causal root for the migrations it issues.
  sim::SpanScope span{m_->events()};
  const auto& costs = m_->config().costs;
  m_->clock().advance(costs.memcpy_base);
  const std::uint64_t start = m_->gpu_pt().page_base(std::max(base, vma.base));
  const std::uint64_t stop = std::min(base + len, vma.end());
  std::uint64_t moved = 0;
  bool fully_resident = true;
  for (std::uint64_t block = start; block < stop; block += kBlock) {
    const bool on_gpu = m_->gpu_pt().lookup(block) != nullptr;
    if (dst == mem::Node::kGpu) {
      if (on_gpu) {
        // Prefetching a range never evicts already-resident parts of that
        // same range to make room for its tail.
        prefetch_protected_.insert(block);
        continue;
      }
      if (vma.read_mostly) {
        // Prefetch of a read-mostly range creates replicas (CUDA
        // semantics: the CPU copy stays valid).
        if (!make_replica(vma, block)) {
          fully_resident = false;
          break;
        }
        prefetch_protected_.insert(block);
        moved += m_->gpu_block_bytes(vma, block);
        continue;
      }
      const std::uint64_t need = m_->gpu_block_bytes(vma, block);
      if (m_->frames(mem::Node::kGpu).free_bytes() < need &&
          !ensure_gpu_room(need, block)) {
        // GPU exhausted (everything evictable is protected by this very
        // call): prefetch what fits and leave the rest CPU-resident.
        fully_resident = false;
        break;
      }
      if (!block_to_gpu(vma, block, /*via_fault=*/false)) {
        fully_resident = false;
        break;
      }
      touch_gpu_block(block, 0);
      prefetch_protected_.insert(block);
      moved += need;
    } else {
      if (!on_gpu) continue;
      if (!block_to_cpu(vma, block, /*is_eviction=*/false)) continue;
      moved += m_->gpu_block_bytes(vma, block);
    }
  }
  prefetch_protected_.clear();
  if (dst == mem::Node::kGpu && fully_resident) {
    // A fully satisfied hint re-arms migration for this allocation; a
    // partial prefetch keeps the thrash guard engaged so the non-resident
    // remainder stays remote-mapped instead of churning evictions.
    VmaState& vs = vma_state_[vma.base];
    vs.remote_mode = false;
    vs.evicted_bytes = 0;
  }
  m_->metrics().prefetches->inc();
  m_->metrics().prefetched_bytes->inc(moved);
  if (m_->events().enabled()) {
    m_->events().record(sim::Event{.time = m_->clock().now(),
                                   .type = sim::EventType::kExplicitPrefetch,
                                   .va = start,
                                   .bytes = moved,
                                   .aux = dst == mem::Node::kGpu ? 1u : 0u});
  }
  m_->stats().add("driver.managed.prefetch_bytes", moved);
}

bool ManagedEngine::remote_mode(const os::Vma& vma) const {
  auto it = vma_state_.find(vma.base);
  return it != vma_state_.end() && it->second.remote_mode;
}

bool ManagedEngine::ensure_gpu_room(std::uint64_t bytes, std::uint64_t keep_block) {
  std::size_t skipped = 0;
  while (m_->frames(mem::Node::kGpu).free_bytes() < bytes) {
    if (lru_.size() <= skipped) return false;
    std::uint64_t victim = lru_.back();
    if (victim == keep_block || prefetch_protected_.contains(victim)) {
      // Never evict the block being serviced or a block the in-flight
      // prefetch just brought in.
      ++skipped;
      lru_.splice(lru_.begin(), lru_, std::prev(lru_.end()));
      continue;
    }
    os::Vma* vma = m_->address_space().find(victim);
    if (vma == nullptr) throw std::logic_error{"ManagedEngine: stale LRU block"};
    if (replicas_.contains(victim)) {
      // Read replicas are dropped for free (the CPU copy is authoritative)
      // and do not count toward the thrash guard.
      collapse_replica(*vma, victim);
      continue;
    }
    const std::uint64_t block_bytes = m_->gpu_block_bytes(*vma, victim);
    if (!block_to_cpu(*vma, victim, /*is_eviction=*/true)) {
      // The victim cannot be written back right now (CPU exhausted or the
      // injected batch aborted): rotate it out of eviction's way and try
      // the next-least-recently-used block.
      ++skipped;
      lru_.splice(lru_.begin(), lru_, std::prev(lru_.end()));
      m_->stats().add("driver.managed.eviction_blocked");
      m_->metrics().evictions_blocked->inc();
      continue;
    }
    vma_state_[vma->base].evicted_bytes += block_bytes;
  }
  return true;
}

void ManagedEngine::enter_remote_mode(os::Vma& vma) {
  VmaState& vs = vma_state_[vma.base];
  if (vs.remote_mode) return;
  vs.remote_mode = true;
  m_->stats().add("driver.managed.remote_mode_entered");
  // Pin-to-sysmem: write back whatever is still GPU-resident so the whole
  // range is served over NVLink-C2C from now on. Replicas just drop (the
  // CPU copy is authoritative).
  for (std::uint64_t block = m_->gpu_pt().page_base(vma.base); block < vma.end();
       block += kBlock) {
    if (m_->gpu_pt().lookup(block) == nullptr) continue;
    if (replicas_.contains(block)) {
      collapse_replica(vma, block);
    } else if (!block_to_cpu(vma, block, /*is_eviction=*/true)) {
      // Writeback blocked: the block stays GPU-resident (still correct —
      // GPU accesses hit it locally, CPU accesses retry the writeback).
      continue;
    }
  }
}

bool ManagedEngine::block_to_cpu(os::Vma& vma, std::uint64_t block_base,
                                 bool is_eviction) {
  const auto& costs = m_->config().costs;
  const std::uint64_t page = m_->system_pt().page_size();
  const std::uint64_t stop = std::min(block_base + kBlock, vma.end());
  const std::uint64_t n_pages = (stop - block_base + page - 1) / page;

  // Check both failure sources *before* touching any state, so a refused
  // writeback leaves the block intact on the GPU.
  if (m_->frames(mem::Node::kCpu).free_bytes() < n_pages * page) return false;
  if (!mig_->batch_with_retry(block_base)) return false;

  const std::uint64_t bytes = m_->gpu_block_bytes(vma, block_base);
  m_->unmap_gpu_block(vma, block_base);
  forget_block(block_base);

  std::uint64_t pages = 0;
  {
    // The room was verified above; injection must not re-fail the cure
    // mid-way (that would strand a half-written-back block). Suppression
    // also makes the bulk splice RNG-equivalent to the per-page loop.
    fault::FaultInjector::ScopedSuppress guard{m_->fault_injector()};
    const auto r = m_->map_system_range(vma, block_base, n_pages, mem::Node::kCpu);
    if (!r.complete) {
      throw StatusError{Status::kErrorOutOfMemory,
                        "managed writeback: CPU frames vanished mid-transfer"};
    }
    pages = r.mapped;
  }

  const sim::Picos dt =
      mig_->copy_time(interconnect::Direction::kGpuToCpu, bytes) +
      costs.migrate_per_page * static_cast<sim::Picos>(pages) +
      (is_eviction ? costs.evict_per_block : costs.managed_fault_batch);
  m_->clock().advance(dt);
  auto& met = m_->metrics();
  if (is_eviction) {
    ++evictions_;
    m_->stats().add("driver.managed.evictions");
    met.evictions->inc();
    met.evicted_bytes->inc(bytes);
    met.eviction_batch_bytes->observe(bytes);
    if (m_->current_tenant() != vma.tenant) met.cross_tenant_evictions->inc();
    // Who-evicted-whom: the tenant whose demand needed the room is the one
    // whose quantum is executing; the victim is the block's owner.
    m_->attribution().note_eviction(m_->current_tenant(), vma.tenant, bytes);
  } else {
    met.migrations_d2h->inc();
    met.migrated_bytes_d2h->inc(bytes);
    met.migration_batch_bytes_d2h->observe(bytes);
    met.migration_latency_d2h->observe(static_cast<std::uint64_t>(dt));
    m_->attribution().note_migration(vma.tenant, /*h2d=*/false, bytes);
  }
  if (m_->events().enabled()) {
    m_->events().record(sim::Event{.time = m_->clock().now(),
                                   .type = is_eviction ? sim::EventType::kEviction
                                                       : sim::EventType::kMigrationD2H,
                                   .va = block_base,
                                   .bytes = bytes,
                                   .aux = is_eviction ? vma.tenant : 0});
  }
  return true;
}

bool ManagedEngine::block_to_gpu(os::Vma& vma, std::uint64_t block_base,
                                 bool via_fault) {
  const auto& costs = m_->config().costs;
  const std::uint64_t page = m_->system_pt().page_size();
  const std::uint64_t stop = std::min(block_base + kBlock, vma.end());

  // Count what would move so the migration-batch gate only fires on actual
  // copies (a pure GPU first touch moves nothing). One extent range query,
  // not a per-page scan.
  const std::uint64_t span_pages = (stop - block_base + page - 1) / page;
  const std::uint64_t present =
      m_->system_pt().resident_pages_in_range(block_base, span_pages);
  if (present > 0 && !mig_->batch_with_retry(block_base)) return false;

  // Claim the GPU block *before* unmapping the CPU side: if frames are
  // denied or exhausted, residency is completely unchanged.
  if (!m_->map_gpu_block(vma, block_base)) return false;

  const std::uint64_t pages =
      m_->unmap_system_range(vma, block_base, span_pages).total();
  const std::uint64_t moved_bytes = pages * page;
  const std::uint64_t block_bytes = m_->gpu_block_bytes(vma, block_base);

  sim::Picos t = 0;
  if (via_fault) {
    std::uint64_t batches;
    if (moved_bytes == 0) {
      // Pure GPU first touch: nothing to migrate, the driver maps the whole
      // block off a single fault batch. This is why managed memory
      // initializes fast for GPU-initialized apps (Section 5.1.2).
      batches = 1;
    } else if (prefetcher_.enabled() && vma_state_[vma.base].migrated_blocks > 0) {
      // Warmed-up tree prefetcher: steady-state migration costs ~2 fault
      // batches per block instead of the full 64K->2M doubling ramp.
      batches = 2;
    } else {
      batches = prefetcher_.fault_batches(block_bytes);
    }
    t += costs.managed_fault_batch * static_cast<sim::Picos>(batches);
  }
  if (moved_bytes > 0) {
    t += via_fault ? mig_->copy_time(interconnect::Direction::kCpuToGpu, moved_bytes)
                   : mig_->bulk_copy_time(interconnect::Direction::kCpuToGpu, moved_bytes);
    t += costs.migrate_per_page * static_cast<sim::Picos>(pages);
    ++vma_state_[vma.base].migrated_blocks;
  }
  if (block_bytes > moved_bytes) {
    // First-touch part of the block is cleared in HBM at device bandwidth.
    t += m_->hbm().write_time(block_bytes - moved_bytes);
  }
  m_->clock().advance(t);

  register_block(vma, block_base);
  auto& met = m_->metrics();
  if (via_fault) met.faults_gpu_managed->inc();
  if (moved_bytes > 0) {
    met.migrations_h2d->inc();
    met.migrated_bytes_h2d->inc(moved_bytes);
    met.migration_batch_bytes_h2d->observe(moved_bytes);
    met.migration_latency_h2d->observe(static_cast<std::uint64_t>(t));
  }
  if (m_->events().enabled()) {
    if (via_fault) {
      m_->events().record(sim::Event{.time = m_->clock().now(),
                                     .type = sim::EventType::kGpuManagedFault,
                                     .va = block_base,
                                     .bytes = block_bytes,
                                     .aux = 0});
    }
    if (moved_bytes > 0) {
      m_->events().record(sim::Event{.time = m_->clock().now(),
                                     .type = sim::EventType::kMigrationH2D,
                                     .va = block_base,
                                     .bytes = moved_bytes,
                                     .aux = 0});
    }
  }
  m_->stats().add("driver.managed.h2d_bytes", moved_bytes);
  if (moved_bytes > 0) {
    m_->attribution().note_migration(vma.tenant, /*h2d=*/true, moved_bytes);
  }
  return true;
}

void ManagedEngine::register_block(os::Vma& vma, std::uint64_t block_base) {
  lru_.push_front(block_base);
  blocks_[block_base] = BlockInfo{.lru_it = lru_.begin(), .vma_base = vma.base,
                                  .last_kernel = 0};
}

void ManagedEngine::forget_block(std::uint64_t block_base) {
  replicas_.erase(block_base);
  auto it = blocks_.find(block_base);
  if (it == blocks_.end()) return;
  lru_.erase(it->second.lru_it);
  blocks_.erase(it);
}

}  // namespace ghum::driver
