#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "sim/time.hpp"

/// \file memory_profiler.hpp
/// Reproduction of the paper's memory utilization profiler (Section 3.2):
/// it periodically samples (a) the process resident set size, as
/// /proc/<pid>/smaps_rollup reports it, and (b) the GPU used memory as
/// nvidia-smi reports it (which includes cudaMalloc, cudaMallocManaged and
/// GPU-resident system allocations, plus the driver baseline). The paper
/// samples every 100 ms of wall time; we sample on a configurable period of
/// *simulated* time, attached as a clock observer so samples land inside
/// long-running phases too (that is where Figures 4 and 5 get their ramps).

namespace ghum::profile {

struct MemorySample {
  sim::Picos time = 0;
  std::uint64_t cpu_rss_bytes = 0;
  std::uint64_t gpu_used_bytes = 0;
};

class MemoryProfiler {
 public:
  MemoryProfiler(core::Machine& m, sim::Picos period) : m_(&m), period_(period) {}

  /// Attaches to the machine clock and starts sampling.
  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Takes one sample immediately (also used for phase boundary marks).
  void mark();

  [[nodiscard]] const std::vector<MemorySample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::uint64_t peak_gpu_used() const noexcept { return peak_gpu_; }
  [[nodiscard]] std::uint64_t peak_cpu_rss() const noexcept { return peak_rss_; }

  void clear();

  /// Writes a plot-ready TSV (time_ms, cpu_rss_mib, gpu_used_mib).
  [[nodiscard]] std::string to_tsv() const;

 private:
  void on_advance(sim::Picos before, sim::Picos after);
  void sample_at(sim::Picos t);

  core::Machine* m_;
  sim::Picos period_;
  sim::Picos next_sample_ = 0;
  bool running_ = false;
  std::size_t observer_id_ = 0;
  std::vector<MemorySample> samples_;
  std::uint64_t peak_gpu_ = 0;
  std::uint64_t peak_rss_ = 0;
};

}  // namespace ghum::profile
