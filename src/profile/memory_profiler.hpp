#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "sim/time.hpp"

/// \file memory_profiler.hpp
/// Reproduction of the paper's memory utilization profiler (Section 3.2):
/// it periodically samples (a) the process resident set size, as
/// /proc/<pid>/smaps_rollup reports it, and (b) the GPU used memory as
/// nvidia-smi reports it (which includes cudaMalloc, cudaMallocManaged and
/// GPU-resident system allocations, plus the driver baseline). The paper
/// samples every 100 ms of wall time; we sample on a configurable period of
/// *simulated* time, attached as a clock observer so samples land inside
/// long-running phases too (that is where Figures 4 and 5 get their ramps).

namespace ghum::profile {

struct MemorySample {
  sim::Picos time = 0;
  std::uint64_t cpu_rss_bytes = 0;
  std::uint64_t gpu_used_bytes = 0;
};

class MemoryProfiler {
 public:
  MemoryProfiler(core::Machine& m, sim::Picos period) : m_(&m), period_(period) {}

  /// Attaches to the machine clock and starts sampling: one sample at the
  /// current time, then one per period during clock advances.
  void start();
  /// Detaches from the clock. Always emits a final sample at the current
  /// time first, so runs shorter than one period still record their end
  /// state (a run shorter than the period would otherwise leave only the
  /// t0 sample).
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Takes one sample immediately (also used for phase boundary marks).
  void mark();

  [[nodiscard]] const std::vector<MemorySample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::uint64_t peak_gpu_used() const noexcept { return peak_gpu_; }
  [[nodiscard]] std::uint64_t peak_cpu_rss() const noexcept { return peak_rss_; }

  void clear();

  /// Writes a plot-ready TSV. Columns and units:
  ///   time_ms      — sample timestamp, milliseconds of *simulated* time;
  ///   cpu_rss_mib  — process resident set size, MiB (2^20 bytes);
  ///   gpu_used_mib — GPU used memory as nvidia-smi reports it, MiB,
  ///                  including the driver baseline.
  [[nodiscard]] std::string to_tsv() const;

 private:
  void on_advance(sim::Picos before, sim::Picos after);
  void sample_at(sim::Picos t);

  core::Machine* m_;
  sim::Picos period_;
  sim::Picos next_sample_ = 0;
  bool running_ = false;
  std::size_t observer_id_ = 0;
  std::vector<MemorySample> samples_;
  std::uint64_t peak_gpu_ = 0;
  std::uint64_t peak_rss_ = 0;
};

}  // namespace ghum::profile
