#include "profile/tracer.hpp"

#include <limits>
#include <sstream>

namespace ghum::profile {

namespace {

void accumulate(TraceSummary& s, const sim::Event& e) {
  switch (e.type) {
    case sim::EventType::kCpuFirstTouchFault: ++s.cpu_first_touch_faults; break;
    case sim::EventType::kGpuFirstTouchFault: ++s.gpu_first_touch_faults; break;
    case sim::EventType::kGpuManagedFault: ++s.managed_gpu_faults; break;
    case sim::EventType::kMigrationH2D:
      ++s.migrations_h2d;
      s.migrated_h2d_bytes += e.bytes;
      break;
    case sim::EventType::kMigrationD2H:
      ++s.migrations_d2h;
      s.migrated_d2h_bytes += e.bytes;
      break;
    case sim::EventType::kEviction:
      ++s.evictions;
      s.evicted_bytes += e.bytes;
      // On kEviction, aux carries the victim block's tenant and the stamp
      // carries the perpetrator; a mismatch is cross-tenant pressure.
      if (e.aux != e.tenant) {
        ++s.cross_tenant_evictions;
        s.cross_tenant_evicted_bytes += e.bytes;
      }
      break;
    case sim::EventType::kCounterNotification: ++s.counter_notifications; break;
    case sim::EventType::kExplicitPrefetch: ++s.explicit_prefetches; break;
    case sim::EventType::kFaultAllocDenial: ++s.alloc_denials; break;
    case sim::EventType::kFaultMigrationRetry: ++s.migration_retries; break;
    case sim::EventType::kFaultMigrationAbort: ++s.migration_aborts; break;
    case sim::EventType::kEccRetirement:
      ++s.ecc_retirements;
      s.ecc_retired_bytes += e.bytes;
      break;
    case sim::EventType::kFallbackPlacement: ++s.fallback_placements; break;
    case sim::EventType::kOutOfMemory: ++s.oom_events; break;
    case sim::EventType::kGpuReset:
      ++s.gpu_resets;
      s.poisoned_bytes += e.bytes;
      break;
    case sim::EventType::kJobRestart:
      ++s.job_restarts;
      s.scrubbed_bytes += e.bytes;
      break;
    default: break;
  }
}

}  // namespace

TraceSummary Tracer::summarize() const {
  return summarize(0, std::numeric_limits<sim::Picos>::max());
}

TraceSummary Tracer::summarize_tenant(std::uint32_t tenant) const {
  TraceSummary s;
  for (const auto& e : log_->events()) {
    if (e.tenant == tenant) accumulate(s, e);
  }
  return s;
}

TraceSummary Tracer::summarize(sim::Picos t0, sim::Picos t1) const {
  TraceSummary s;
  for (const auto& e : log_->events()) {
    if (e.time < t0 || e.time >= t1) continue;
    accumulate(s, e);
  }
  // Link-degradation windows are intervals, not instants: a window counts
  // when [begin, end) overlaps [t0, t1), so one whose Begin fell before t0
  // but that was still degrading inside the summary window is visible.
  // Begin/End events are paired over the full (chronological) stream; a
  // window still open at the end of the log counts when it started before
  // t1.
  sim::Picos open_begin = 0;
  bool open = false;
  for (const auto& e : log_->events()) {
    if (e.type == sim::EventType::kLinkDegradeBegin) {
      open = true;
      open_begin = e.time;
    } else if (e.type == sim::EventType::kLinkDegradeEnd && open) {
      open = false;
      if (open_begin < t1 && e.time > t0) ++s.link_degrade_windows;
    }
  }
  if (open && open_begin < t1) ++s.link_degrade_windows;
  return s;
}

std::string Tracer::to_text(std::size_t max_events) const {
  std::ostringstream out;
  std::size_t n = 0;
  for (const auto& e : log_->events()) {
    if (n++ >= max_events) {
      out << "... (" << log_->events().size() - max_events << " more)\n";
      break;
    }
    out << sim::to_microseconds(e.time) << " us  " << sim::to_string(e.type)
        << "  va=0x" << std::hex << e.va << std::dec << "  bytes=" << e.bytes
        << '\n';
  }
  return out.str();
}

}  // namespace ghum::profile
