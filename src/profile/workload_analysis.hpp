#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "cache/kernel_traffic.hpp"

/// \file workload_analysis.hpp
/// Collection of per-kernel traffic records — the simulator's analogue of
/// Nsight Compute's Memory Workload Analysis (paper Section 3.2). Benches
/// for Figures 10 and 12 read their per-iteration GPU-memory and
/// NVLink-C2C volumes from here.

namespace ghum::profile {

class WorkloadAnalysis {
 public:
  void add(cache::KernelRecord record) { records_.push_back(std::move(record)); }

  [[nodiscard]] const std::vector<cache::KernelRecord>& records() const noexcept {
    return records_;
  }

  /// All records whose kernel name contains \p needle, in launch order.
  [[nodiscard]] std::vector<const cache::KernelRecord*> matching(
      std::string_view needle) const;

  /// Aggregate traffic across all records matching \p needle.
  [[nodiscard]] cache::KernelTraffic total(std::string_view needle) const;

  /// All records launched during \p tenant's quanta, in launch order
  /// (per-tenant Memory Workload Analysis under co-scheduling).
  [[nodiscard]] std::vector<const cache::KernelRecord*> for_tenant(
      std::uint32_t tenant) const;

  /// Aggregate traffic across one tenant's launches.
  [[nodiscard]] cache::KernelTraffic tenant_total(std::uint32_t tenant) const;

  void clear() { records_.clear(); }

  /// Pretty table (name, duration, HBM/C2C/L1L2 volumes) for reports.
  [[nodiscard]] std::string to_table() const;

 private:
  std::vector<cache::KernelRecord> records_;
};

}  // namespace ghum::profile
