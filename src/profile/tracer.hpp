#pragma once

#include <string>

#include "sim/event_log.hpp"

/// \file tracer.hpp
/// Nsight-Systems-style view over the event log (paper Section 3.2). The
/// paper notes that Nsight only reliably reports page faults and
/// migrations for *managed* memory — system-memory faults are invisible to
/// it on real hardware. The simulator has no such blind spot, which the
/// tests exploit; the summary below still groups events the way the
/// paper's methodology discusses them.

namespace ghum::profile {

struct TraceSummary {
  std::size_t cpu_first_touch_faults = 0;
  std::size_t gpu_first_touch_faults = 0;
  std::size_t managed_gpu_faults = 0;
  std::size_t migrations_h2d = 0;
  std::size_t migrations_d2h = 0;
  std::size_t evictions = 0;
  std::size_t counter_notifications = 0;
  std::size_t explicit_prefetches = 0;
  std::uint64_t migrated_h2d_bytes = 0;
  std::uint64_t migrated_d2h_bytes = 0;
  std::uint64_t evicted_bytes = 0;

  // Fault-injection & resilience events (DESIGN.md "Fault model & resilience").
  std::size_t alloc_denials = 0;
  std::size_t migration_retries = 0;
  std::size_t migration_aborts = 0;
  std::size_t link_degrade_windows = 0;
  std::size_t ecc_retirements = 0;
  std::uint64_t ecc_retired_bytes = 0;
  std::size_t fallback_placements = 0;
  std::size_t oom_events = 0;

  // Crash ladder (DESIGN.md Section 10): channel resets with the bytes
  // they poisoned, and recovery restarts with the bytes they scrubbed.
  std::size_t gpu_resets = 0;
  std::uint64_t poisoned_bytes = 0;
  std::size_t job_restarts = 0;
  std::uint64_t scrubbed_bytes = 0;

  /// Evictions whose perpetrator (Event::tenant) differs from the victim
  /// block's owner (Event::aux on kEviction) — the multi-tenant
  /// interference signal (DESIGN.md Section 8).
  std::size_t cross_tenant_evictions = 0;
  std::uint64_t cross_tenant_evicted_bytes = 0;
};

class Tracer {
 public:
  explicit Tracer(const sim::EventLog& log) : log_(&log) {}

  [[nodiscard]] TraceSummary summarize() const;

  /// Summary over events in the half-open simulated-time window [t0, t1).
  [[nodiscard]] TraceSummary summarize(sim::Picos t0, sim::Picos t1) const;

  /// Summary restricted to events stamped with \p tenant: what the memory
  /// system did *during this tenant's quanta* (evictions listed here are the
  /// ones this tenant perpetrated; whom they hit is in Event::aux).
  [[nodiscard]] TraceSummary summarize_tenant(std::uint32_t tenant) const;

  /// Human-readable event listing (one line per event).
  [[nodiscard]] std::string to_text(std::size_t max_events = 200) const;

 private:
  const sim::EventLog* log_;
};

}  // namespace ghum::profile
