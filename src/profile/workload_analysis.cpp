#include "profile/workload_analysis.hpp"

#include <iomanip>
#include <sstream>

namespace ghum::profile {

std::vector<const cache::KernelRecord*> WorkloadAnalysis::matching(
    std::string_view needle) const {
  std::vector<const cache::KernelRecord*> out;
  for (const auto& r : records_) {
    if (r.name.find(needle) != std::string::npos) out.push_back(&r);
  }
  return out;
}

cache::KernelTraffic WorkloadAnalysis::total(std::string_view needle) const {
  cache::KernelTraffic t;
  for (const auto* r : matching(needle)) t += r->traffic;
  return t;
}

std::vector<const cache::KernelRecord*> WorkloadAnalysis::for_tenant(
    std::uint32_t tenant) const {
  std::vector<const cache::KernelRecord*> out;
  for (const auto& r : records_) {
    if (r.tenant == tenant) out.push_back(&r);
  }
  return out;
}

cache::KernelTraffic WorkloadAnalysis::tenant_total(std::uint32_t tenant) const {
  cache::KernelTraffic t;
  for (const auto* r : for_tenant(tenant)) t += r->traffic;
  return t;
}

std::string WorkloadAnalysis::to_table() const {
  std::ostringstream out;
  out << std::left << std::setw(28) << "kernel" << std::right << std::setw(12)
      << "time_us" << std::setw(12) << "hbm_mib" << std::setw(12) << "c2c_mib"
      << std::setw(12) << "l1l2_mib" << std::setw(10) << "faults" << '\n';
  for (const auto& r : records_) {
    out << std::left << std::setw(28) << r.name << std::right << std::setw(12)
        << std::fixed << std::setprecision(1) << sim::to_microseconds(r.duration)
        << std::setw(12) << std::setprecision(2)
        << static_cast<double>(r.traffic.gpu_local_bytes()) / (1 << 20)
        << std::setw(12)
        << static_cast<double>(r.traffic.gpu_remote_bytes()) / (1 << 20)
        << std::setw(12) << static_cast<double>(r.traffic.l1l2_bytes) / (1 << 20)
        << std::setw(10)
        << r.traffic.gpu_first_touch_faults + r.traffic.managed_faults << '\n';
  }
  return out.str();
}

}  // namespace ghum::profile
