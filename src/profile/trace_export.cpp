#include "profile/trace_export.hpp"

#include <sstream>

namespace ghum::profile {

namespace {

double us(sim::Picos t) { return sim::to_microseconds(t); }

void append_event(std::ostringstream& out, bool& first, const sim::Event& e) {
  switch (e.type) {
    case sim::EventType::kKernelBegin:
    case sim::EventType::kKernelEnd:
      return;  // kernels are exported as duration events from the records
    default:
      break;
  }
  if (!first) out << ",\n";
  first = false;
  out << R"({"name":")" << sim::to_string(e.type)
      << R"(","ph":"i","s":"g","pid":1,"tid":2,"ts":)" << us(e.time)
      << R"(,"args":{"va":")" << std::hex << "0x" << e.va << std::dec
      << R"(","bytes":)" << e.bytes << "}}";
}

void append_kernel(std::ostringstream& out, bool& first,
                   const cache::KernelRecord& r) {
  if (!first) out << ",\n";
  first = false;
  out << R"({"name":")" << r.name << R"(","ph":"X","pid":1,"tid":1,"ts":)"
      << us(r.start) << R"(,"dur":)" << us(r.duration) << R"(,"args":{)"
      << R"("hbm_bytes":)" << r.traffic.gpu_local_bytes() << R"(,"c2c_bytes":)"
      << r.traffic.gpu_remote_bytes() << R"(,"l1l2_bytes":)"
      << r.traffic.l1l2_bytes << R"(,"managed_faults":)"
      << r.traffic.managed_faults << R"(,"first_touch_faults":)"
      << r.traffic.gpu_first_touch_faults << "}}";
}

}  // namespace

std::string to_chrome_trace(const sim::EventLog& log,
                            const WorkloadAnalysis& workload) {
  std::ostringstream out;
  out << R"({"displayTimeUnit":"ms","traceEvents":[)" << "\n";
  bool first = true;
  out << R"({"name":"process_name","ph":"M","pid":1,"args":{"name":"ghum"}})";
  out << ",\n"
      << R"({"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"GPU kernels"}})";
  out << ",\n"
      << R"({"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"MemSys events"}})";
  first = false;
  for (const auto& r : workload.records()) append_kernel(out, first, r);
  for (const auto& e : log.events()) append_event(out, first, e);
  out << "\n]}\n";
  return out.str();
}

}  // namespace ghum::profile
