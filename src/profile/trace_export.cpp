#include "profile/trace_export.hpp"

#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace ghum::profile {

namespace {

/// Microsecond timestamp with fixed 3-decimal (nanosecond) precision.
/// ostream default formatting would switch to scientific notation for
/// large traces, which some JSON consumers reject inside Chrome's ts.
std::string us(sim::Picos t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", sim::to_microseconds(t));
  return buf;
}

/// JSON string escaping (RFC 8259): quote, backslash and control
/// characters. Kernel/app names are caller-supplied, so this is load-
/// bearing — a name like `step "k"` must not break the document.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class TraceWriter {
 public:
  explicit TraceWriter(std::ostringstream& out) : out_(&out) {}

  /// Starts the next event object (comma/newline separation).
  std::ostringstream& next() {
    if (!first_) *out_ << ",\n";
    first_ = false;
    return *out_;
  }

 private:
  std::ostringstream* out_;
  bool first_ = true;
};

void append_metadata(TraceWriter& w, const std::set<std::uint32_t>& tenants) {
  w.next() << R"({"name":"process_name","ph":"M","pid":1,"args":{"name":"ghum"}})";
  w.next() << R"({"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"GPU kernels"}})";
  w.next() << R"({"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"MemSys events"}})";
  w.next() << R"({"name":"thread_name","ph":"M","pid":1,"tid":3,"args":{"name":"Link state"}})";
  for (const std::uint32_t t : tenants) {
    w.next() << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << (100 + t)
             << R"(,"args":{"name":"Tenant )" << t << R"( MemSys"}})";
  }
}

void append_kernel(TraceWriter& w, const cache::KernelRecord& r) {
  w.next() << R"({"name":")" << json_escape(r.name)
           << R"(","ph":"X","pid":1,"tid":1,"ts":)" << us(r.start)
           << R"(,"dur":)" << us(r.duration) << R"(,"args":{)"
           << R"("tenant":)" << r.tenant << R"(,"hbm_bytes":)"
           << r.traffic.gpu_local_bytes() << R"(,"c2c_bytes":)"
           << r.traffic.gpu_remote_bytes() << R"(,"l1l2_bytes":)"
           << r.traffic.l1l2_bytes << R"(,"managed_faults":)"
           << r.traffic.managed_faults << R"(,"first_touch_faults":)"
           << r.traffic.gpu_first_touch_faults << "}}";
}

/// Lane for one memsys instant event: shared MemSys (tid 2), or the
/// event's tenant lane in co-scheduled runs.
int event_tid(const sim::Event& e, const TraceOptions& opts) {
  if (opts.tenant_lanes && e.tenant != 0) return 100 + static_cast<int>(e.tenant);
  return 2;
}

void append_event(TraceWriter& w, const sim::Event& e, const TraceOptions& opts) {
  w.next() << R"({"name":")" << sim::to_string(e.type)
           << R"(","ph":"i","s":"g","pid":1,"tid":)" << event_tid(e, opts)
           << R"(,"ts":)" << us(e.time) << R"(,"args":{"va":")" << std::hex
           << "0x" << e.va << std::dec << R"(","bytes":)" << e.bytes
           << R"(,"span":)" << e.span << R"(,"tenant":)" << e.tenant << "}}";
}

/// Link-degradation windows: kLinkDegradeBegin/End pairs become duration
/// events on the "Link state" lane; a window still open at the end of the
/// trace is closed at the last event's timestamp.
void append_degrade_windows(TraceWriter& w, const std::vector<sim::Event>& events) {
  sim::Picos open_at = -1;
  sim::Picos last = 0;
  for (const auto& e : events) last = e.time;
  auto emit = [&](sim::Picos t0, sim::Picos t1, bool open_ended) {
    w.next() << R"({"name":"link degraded","ph":"X","pid":1,"tid":3,"ts":)"
             << us(t0) << R"(,"dur":)" << us(t1 - t0)
             << R"(,"args":{"open_ended":)" << (open_ended ? "true" : "false")
             << "}}";
  };
  for (const auto& e : events) {
    if (e.type == sim::EventType::kLinkDegradeBegin) {
      open_at = e.time;
    } else if (e.type == sim::EventType::kLinkDegradeEnd && open_at >= 0) {
      emit(open_at, e.time, false);
      open_at = -1;
    }
  }
  if (open_at >= 0) emit(open_at, last, true);
}

/// Causal flow arrows: each span with at least two events becomes a chain
/// of s/t/f flow events anchored at the member events' timestamps/lanes.
void append_flows(TraceWriter& w, const std::vector<sim::Event>& events,
                  const TraceOptions& opts) {
  std::map<std::uint32_t, std::vector<const sim::Event*>> spans;
  for (const auto& e : events) {
    if (e.span != 0) spans[e.span].push_back(&e);
  }
  for (const auto& [span, members] : spans) {
    if (members.size() < 2) continue;
    for (std::size_t i = 0; i < members.size(); ++i) {
      const sim::Event& e = *members[i];
      const bool last = i + 1 == members.size();
      const char* ph = i == 0 ? "s" : (last ? "f" : "t");
      w.next() << R"({"name":"span","cat":"causal","ph":")" << ph
               << R"(","id":)" << span << R"(,"pid":1,"tid":)"
               << event_tid(e, opts) << R"(,"ts":)" << us(e.time)
               << (last ? R"(,"bp":"e"})" : "}");
    }
  }
}

void append_link_counters(TraceWriter& w, const std::vector<obs::LinkSample>& samples) {
  for (const auto& s : samples) {
    w.next() << R"x({"name":"C2C util (permille)","ph":"C","pid":1,"ts":)x"
             << us(s.t0) << R"(,"args":{"h2d":)" << s.h2d_util_permille
             << R"(,"d2h":)" << s.d2h_util_permille << "}}";
  }
}

}  // namespace

std::string to_chrome_trace(const sim::EventLog& log,
                            const WorkloadAnalysis& workload) {
  return to_chrome_trace(log, workload, TraceOptions{});
}

std::string to_chrome_trace(const sim::EventLog& log,
                            const WorkloadAnalysis& workload,
                            const TraceOptions& opts) {
  std::ostringstream out;
  out << R"({"displayTimeUnit":"ms","traceEvents":[)" << "\n";
  TraceWriter w{out};

  std::set<std::uint32_t> tenants;
  if (opts.tenant_lanes) {
    for (const auto& e : log.events()) {
      if (e.tenant != 0) tenants.insert(e.tenant);
    }
  }
  append_metadata(w, tenants);

  for (const auto& r : workload.records()) append_kernel(w, r);
  for (const auto& e : log.events()) {
    switch (e.type) {
      case sim::EventType::kKernelBegin:
      case sim::EventType::kKernelEnd:
        continue;  // kernels are exported as duration events from the records
      case sim::EventType::kLinkDegradeBegin:
      case sim::EventType::kLinkDegradeEnd:
        continue;  // rendered as durations on the Link state lane
      default:
        append_event(w, e, opts);
    }
  }
  append_degrade_windows(w, log.events());
  if (opts.flow_events) append_flows(w, log.events(), opts);
  if (opts.link_samples != nullptr) append_link_counters(w, *opts.link_samples);

  out << "\n]}\n";
  return out.str();
}

}  // namespace ghum::profile
