#include "profile/memory_profiler.hpp"

#include <sstream>

namespace ghum::profile {

void MemoryProfiler::start() {
  if (running_) return;
  running_ = true;
  observer_id_ = m_->clock().add_observer(
      [this](sim::Picos before, sim::Picos after) { on_advance(before, after); });
  // t0 is covered by the mark() below; the periodic schedule starts one
  // period later (scheduling it at now would duplicate the t0 sample on
  // the first advance).
  mark();
  next_sample_ = m_->clock().now() + period_;
}

void MemoryProfiler::stop() {
  if (!running_) return;
  mark();
  m_->clock().remove_observer(observer_id_);
  running_ = false;
}

void MemoryProfiler::mark() { sample_at(m_->clock().now()); }

void MemoryProfiler::clear() {
  samples_.clear();
  peak_gpu_ = 0;
  peak_rss_ = 0;
}

void MemoryProfiler::on_advance(sim::Picos /*before*/, sim::Picos after) {
  while (next_sample_ <= after) {
    sample_at(next_sample_);
    next_sample_ += period_;
  }
}

void MemoryProfiler::sample_at(sim::Picos t) {
  MemorySample s{.time = t,
                 .cpu_rss_bytes = m_->cpu_rss_bytes(),
                 .gpu_used_bytes = m_->gpu_used_bytes()};
  if (s.gpu_used_bytes > peak_gpu_) peak_gpu_ = s.gpu_used_bytes;
  if (s.cpu_rss_bytes > peak_rss_) peak_rss_ = s.cpu_rss_bytes;
  // A mark() landing exactly on a periodic timestamp (stop() at a period
  // boundary, explicit marks) replaces the earlier sample instead of
  // duplicating the time point; the newer values win.
  if (!samples_.empty() && samples_.back().time == t) {
    samples_.back() = s;
    return;
  }
  samples_.push_back(s);
}

std::string MemoryProfiler::to_tsv() const {
  std::ostringstream out;
  out << "time_ms\tcpu_rss_mib\tgpu_used_mib\n";
  for (const auto& s : samples_) {
    out << sim::to_milliseconds(s.time) << '\t'
        << static_cast<double>(s.cpu_rss_bytes) / (1 << 20) << '\t'
        << static_cast<double>(s.gpu_used_bytes) / (1 << 20) << '\n';
  }
  return out.str();
}

}  // namespace ghum::profile
