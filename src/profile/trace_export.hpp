#pragma once

#include <string>

#include "profile/workload_analysis.hpp"
#include "sim/event_log.hpp"

/// \file trace_export.hpp
/// Export of the simulator's event log and kernel records to the Chrome
/// trace-event JSON format (chrome://tracing, Perfetto, Speedscope). This
/// is the ghum counterpart of exporting an Nsight Systems timeline: kernel
/// launches become duration events on a "GPU" track; faults, migrations
/// and evictions become instant events on a "MemSys" track; simulated
/// picoseconds map to trace microseconds.

namespace ghum::profile {

/// Renders \p log and \p workload as a complete Chrome trace JSON document.
[[nodiscard]] std::string to_chrome_trace(const sim::EventLog& log,
                                          const WorkloadAnalysis& workload);

}  // namespace ghum::profile
