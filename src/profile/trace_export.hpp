#pragma once

#include <string>
#include <vector>

#include "obs/link_monitor.hpp"
#include "profile/workload_analysis.hpp"
#include "sim/event_log.hpp"

/// \file trace_export.hpp
/// Export of the simulator's event log and kernel records to the Chrome
/// trace-event JSON format (chrome://tracing, Perfetto, Speedscope). This
/// is the ghum counterpart of exporting an Nsight Systems timeline:
///  - kernel launches are duration events on the "GPU kernels" track;
///  - faults, migrations and evictions are instant events on a "MemSys"
///    track — one lane per tenant in co-scheduled runs;
///  - NVLink-C2C degradation windows are duration events on a "Link state"
///    track, and obs::LinkMonitor samples become a utilization counter
///    track;
///  - causal spans (sim::SpanScope) are rendered as Chrome flow arrows
///    connecting a root cause to everything it transitively triggered.
/// Simulated picoseconds map to trace microseconds (3 decimal places, i.e.
/// nanosecond resolution).

namespace ghum::profile {

/// Optional enrichments for to_chrome_trace.
struct TraceOptions {
  /// Closed windows from obs::LinkMonitor; rendered as a "C2C util
  /// (permille)" counter track when non-null.
  const std::vector<obs::LinkSample>* link_samples = nullptr;
  /// Route events stamped with tenant != 0 to one lane per tenant
  /// (tid 100 + tenant) instead of the shared MemSys lane.
  bool tenant_lanes = true;
  /// Emit flow (s/t/f) arrows for causal spans with at least two events.
  bool flow_events = true;
};

/// Renders \p log and \p workload as a complete Chrome trace JSON document.
[[nodiscard]] std::string to_chrome_trace(const sim::EventLog& log,
                                          const WorkloadAnalysis& workload);
[[nodiscard]] std::string to_chrome_trace(const sim::EventLog& log,
                                          const WorkloadAnalysis& workload,
                                          const TraceOptions& opts);

}  // namespace ghum::profile
