#pragma once

#include <cstdint>

/// \file tenant_id.hpp
/// The tenant identity threaded through the machine for multi-tenant
/// co-scheduling (DESIGN.md Section 8). A TenantId tags allocations,
/// residency changes, faults, migrations and evictions with the app
/// instance that caused them, so profiling can attribute shared-resource
/// pressure — in particular *who evicted whom* under HBM oversubscription.
/// This header is a leaf: low-level layers (os, core, driver) include it
/// without depending on the scheduler.

namespace ghum::tenant {

using TenantId = std::uint32_t;

/// Work outside any tenant quantum (single-app runs, driver housekeeping).
inline constexpr TenantId kNoTenant = 0;

}  // namespace ghum::tenant
