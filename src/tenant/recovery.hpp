#pragma once

#include <cstdint>

#include "chk/snapshot.hpp"
#include "core/system.hpp"
#include "fault/status.hpp"
#include "tenant/job.hpp"

/// \file recovery.hpp
/// Progress watchdog and bounded-restart recovery for co-scheduled jobs.
///
/// Crash faults (GPU channel reset, ECC storm) and watchdog trips (stalled
/// or retry-storming jobs) surface as failed quanta. The RecoveryManager
/// decides what happens next: restartable causes roll the victim back —
/// its leaked allocations are scrubbed, its coroutine is rebuilt from the
/// JobSpec factory — and the job replays from its beginning under a
/// bounded restart budget. Exhausting the budget (or a cause that is
/// unrecoverable by definition) fails the job with attribution intact.
///
/// Determinism contract: recovery adds no artificial time — the only
/// clock charges on the rollback path are the victim's own unmap/free
/// costs (scrubbing is real simulated work, attributed to the victim) —
/// and it never touches another tenant's state, so co-tenants of a
/// crashing job compute exactly the results they would next to a
/// crash-free victim (bench_recovery asserts sibling output checksums).
/// Scrubbing runs under fault-injection suppression so the cleanup path
/// cannot itself crash.
///
/// Periodic checkpoints: every checkpoint_period_quanta scheduler quanta,
/// the whole simulated machine is serialized via chk::Snapshotter; with
/// verify_checkpoints set, each blob is immediately restored into a fresh
/// System and re-snapshotted to prove the round trip is lossless. These
/// checkpoints are observability artifacts (restart provenance, blob-size
/// telemetry) — taking one is side-effect-free for the simulation.
namespace ghum::tenant {

struct RecoveryConfig {
  bool enabled = false;
  /// Restarts allowed per job before it fails with kErrorUnrecoverable.
  std::uint32_t max_restarts = 2;
  /// Watchdog: consecutive quanta with zero simulated progress before the
  /// job is declared stalled (kErrorTimeout). 0 disables the stall check.
  std::uint64_t stall_quanta = 0;
  /// Watchdog: migration retries within one quantum at or above this
  /// count trip a retry-storm timeout. 0 disables the check.
  std::uint64_t retry_storm_threshold = 0;
  /// Take a machine checkpoint every this many scheduler quanta. 0
  /// disables periodic checkpoints.
  std::uint64_t checkpoint_period_quanta = 0;
  /// Restore + re-snapshot every periodic checkpoint and require digest
  /// equality (catches any state the serializer would silently drop).
  bool verify_checkpoints = false;
};

class RecoveryManager {
 public:
  RecoveryManager(core::System& sys, RecoveryConfig cfg);

  /// Called with the tenant stamped, before the quantum's first step.
  void quantum_begin(Job& j);

  /// Watchdog pass after a successful quantum. Returns kSuccess, or
  /// kErrorTimeout when the job stalled / retry-stormed past its budget.
  [[nodiscard]] Status quantum_end(Job& j, sim::Picos now_before);

  /// Handles a failed quantum (crash fault or watchdog verdict in
  /// \p cause). Returns true when the job was rolled back and stays
  /// kRunning (replay); false when the failure is terminal — the caller
  /// marks the job kFailed. On budget exhaustion of a restartable cause,
  /// j.status is escalated to kErrorUnrecoverable.
  bool on_failure(Job& j, Status cause);

  /// Takes (and optionally verifies) a periodic machine checkpoint when
  /// \p total_quanta crosses the configured period.
  void maybe_checkpoint(std::uint64_t total_quanta);

  /// Follows the owning Scheduler onto a restored System (node
  /// evacuation): instrument pointers are re-resolved against the restored
  /// machine's registry — the snapshot carried the counters' values, but
  /// their addresses belong to the dead machine.
  void rebind(core::System& sys);

  [[nodiscard]] const RecoveryConfig& config() const noexcept { return cfg_; }
  /// The most recent periodic checkpoint blob (empty before the first).
  [[nodiscard]] const chk::Blob& last_checkpoint() const noexcept {
    return last_checkpoint_;
  }

  /// True when \p s is a cause recovery may restart from.
  [[nodiscard]] static bool restartable(Status s) noexcept {
    return s == Status::kErrorGpuReset || s == Status::kErrorEccUncorrectable ||
           s == Status::kErrorTimeout;
  }

 private:
  obs::Counter* restarts_for(Status cause);

  core::System* sys_;
  RecoveryConfig cfg_;
  chk::Blob last_checkpoint_;

  // Instruments (registered at construction; zero until events occur).
  obs::Counter* watchdog_trips_;
  obs::Counter* replayed_picos_;
  obs::Counter* failed_jobs_;
  obs::Counter* scrubbed_bytes_;
  obs::Counter* checkpoints_;
  obs::Histogram* snapshot_bytes_;
};

}  // namespace ghum::tenant
