#include "tenant/attribution.hpp"

#include <algorithm>
#include <sstream>

namespace ghum::tenant {

TenantUsage& AttributionTable::grow(TenantId t) {
  if (usage_.size() <= t) usage_.resize(static_cast<std::size_t>(t) + 1);
  return usage_[t];
}

void AttributionTable::note_resident_delta(TenantId t, std::int64_t cpu_delta,
                                           std::int64_t gpu_delta) {
  TenantUsage& u = grow(t);
  u.resident_cpu_bytes += cpu_delta;
  u.resident_gpu_bytes += gpu_delta;
  u.peak_gpu_bytes = std::max<std::uint64_t>(
      u.peak_gpu_bytes,
      u.resident_gpu_bytes > 0 ? static_cast<std::uint64_t>(u.resident_gpu_bytes) : 0);
}

void AttributionTable::note_c2c(TenantId t, bool h2d, std::uint64_t bytes) {
  TenantUsage& u = grow(t);
  (h2d ? u.c2c_h2d_bytes : u.c2c_d2h_bytes) += bytes;
}

void AttributionTable::note_fault(TenantId t, bool gpu_origin) {
  TenantUsage& u = grow(t);
  ++(gpu_origin ? u.gpu_faults : u.cpu_faults);
}

void AttributionTable::note_migration(TenantId t, bool h2d, std::uint64_t bytes) {
  TenantUsage& u = grow(t);
  (h2d ? u.migrated_h2d_bytes : u.migrated_d2h_bytes) += bytes;
}

void AttributionTable::note_eviction(TenantId perpetrator, TenantId victim,
                                     std::uint64_t bytes) {
  TenantUsage& v = grow(victim);
  ++v.evictions_suffered;
  v.evicted_bytes_suffered += bytes;
  ++grow(perpetrator).evictions_caused;
  EvictionCell& cell = matrix_[{perpetrator, victim}];
  ++cell.count;
  cell.bytes += bytes;
  if (perpetrator != victim) {
    ++cross_tenant_evictions_;
    cross_tenant_evicted_bytes_ += bytes;
  }
}

const TenantUsage& AttributionTable::usage(TenantId t) const {
  static const TenantUsage kZero{};
  return t < usage_.size() ? usage_[t] : kZero;
}

EvictionCell AttributionTable::evictions(TenantId perpetrator, TenantId victim) const {
  const auto it = matrix_.find({perpetrator, victim});
  return it != matrix_.end() ? it->second : EvictionCell{};
}

std::string AttributionTable::to_table() const {
  std::ostringstream out;
  out << "tenant  res_cpu_B  res_gpu_B  peak_gpu_B  c2c_h2d_B  c2c_d2h_B  "
         "faults(cpu/gpu)  mig_h2d_B  mig_d2h_B  evict(suffered/caused)\n";
  for (std::size_t t = 0; t < usage_.size(); ++t) {
    const TenantUsage& u = usage_[t];
    out << t << "  " << u.resident_cpu_bytes << "  " << u.resident_gpu_bytes
        << "  " << u.peak_gpu_bytes << "  " << u.c2c_h2d_bytes << "  "
        << u.c2c_d2h_bytes << "  " << u.cpu_faults << "/" << u.gpu_faults << "  "
        << u.migrated_h2d_bytes << "  " << u.migrated_d2h_bytes << "  "
        << u.evictions_suffered << "/" << u.evictions_caused << "\n";
  }
  if (!matrix_.empty()) {
    out << "evictions (perpetrator -> victim): count bytes\n";
    for (const auto& [key, cell] : matrix_) {
      out << "  " << key.first << " -> " << key.second << ": " << cell.count
          << " " << cell.bytes << "\n";
    }
  }
  return out.str();
}

}  // namespace ghum::tenant
