#pragma once

#include <deque>
#include <string_view>

#include <memory>

#include "core/system.hpp"
#include "tenant/job.hpp"
#include "tenant/recovery.hpp"

/// \file scheduler.hpp
/// Deterministic multi-tenant co-scheduler over one simulated superchip.
///
/// Real Grace Hopper nodes are shared: MIG slices, MPS, or plain batch
/// co-location put several applications on one GPU + CPU memory system,
/// and the paper's single-app measurements leave open how its memory-mode
/// tradeoffs behave under co-located pressure. The Scheduler closes that
/// gap in simulation: each tenant is an app instance restructured as a
/// resumable coroutine (apps::*_steps); the scheduler interleaves their
/// quanta on the shared core::System, so tenants contend for the same
/// HBM frames, C2C link, and eviction machinery, and every simulated
/// event is attributed to the tenant that caused it.
///
/// Determinism: scheduling decisions depend only on simulated state
/// (local clocks, submission order, priorities) — never on host time or
/// iteration order of unordered containers — so two identical runs are
/// bit-for-bit identical (same end times, same EventLog::digest()). A
/// single tenant driven through the scheduler executes exactly the same
/// simulated work as the direct app harness: the scheduler itself never
/// advances the clock.
namespace ghum::tenant {

/// Which runnable job gets the next quantum.
enum class Policy : std::uint8_t {
  /// Resume the job with the earliest local simulated clock (the tenant
  /// that is furthest behind) — the fair-share default. Generalizes the
  /// min-timeline rule runtime::Stream uses for copy/compute overlap.
  kMinLocalTime,
  /// Run jobs to completion in submission order.
  kFifo,
  /// Cycle through runnable jobs, one quantum each (fewest quanta first).
  kRoundRobin,
  /// Highest JobSpec::priority runs to completion first.
  kPriority,
};

[[nodiscard]] constexpr std::string_view to_string(Policy p) noexcept {
  switch (p) {
    case Policy::kMinLocalTime: return "min-local-time";
    case Policy::kFifo: return "fifo";
    case Policy::kRoundRobin: return "round-robin";
    case Policy::kPriority: return "priority";
  }
  return "?";
}

struct SchedulerConfig {
  Policy policy = Policy::kMinLocalTime;
  /// Aggregate footprint budget for admitted jobs, bytes. 0 means the
  /// machine's physical capacity (HBM + DDR): the node can technically
  /// oversubscribe HBM but not total memory.
  std::uint64_t footprint_budget = 0;
  /// Coroutine steps (co_yield-delimited work units) per quantum.
  std::uint32_t quantum_steps = 1;
  /// Over-budget jobs wait in a FIFO queue for capacity instead of being
  /// rejected (jobs larger than the whole budget are still rejected).
  bool queue_over_budget = false;
  /// Crash recovery, watchdog, and periodic checkpoints. Disabled by
  /// default: a failing quantum then fails the job exactly as before.
  RecoveryConfig recovery;
};

class Scheduler {
 public:
  explicit Scheduler(core::System& sys, SchedulerConfig cfg = {});

  /// Submits a job. Returns kSuccess when admitted (or queued, with
  /// queue_over_budget set); Status::kErrorOutOfMemory when the declared
  /// footprint cannot be granted. The returned id is the job's TenantId
  /// (also written to *out_id when non-null); rejected jobs keep their id
  /// so the caller can inspect Job::status.
  Status submit(JobSpec spec, TenantId* out_id = nullptr);

  /// Runs one quantum of the next runnable job per policy. Returns false
  /// when no job is runnable (all terminal, or only queued jobs that
  /// still do not fit — which cannot happen once running jobs drain).
  bool step();

  /// Drives every admitted and queued job to a terminal state.
  void run_all();

  /// Cancels a queued or running job — the fleet controller's drain,
  /// deadline-enforcement and load-shedding entry point. A running job's
  /// coroutine is destroyed and everything its incarnation allocated is
  /// scrubbed (real simulated unmap/free work, attributed to the victim,
  /// under fault-injection suppression so cleanup cannot itself crash); a
  /// queued job simply leaves the wait queue. The job ends kFailed with
  /// \p reason as its status. Returns kErrorInvalidValue for an unknown or
  /// already-terminal job, kSuccess otherwise.
  Status cancel(TenantId id, Status reason);

  /// Re-points the scheduler — and every job's per-tenant Runtime — at a
  /// different System: the node-evacuation hand-off. After
  /// chk::Snapshotter::restore() rebuilds the machine (donor adoption keeps
  /// app-held host pointers alive), this swap lets every suspended job
  /// coroutine continue mid-flight on the restored system.
  void rebind(core::System& sys);

  [[nodiscard]] const Job& job(TenantId id) const;
  [[nodiscard]] const std::deque<Job>& jobs() const noexcept { return jobs_; }
  [[nodiscard]] std::uint64_t budget() const noexcept { return budget_; }
  [[nodiscard]] std::uint64_t admitted_bytes() const noexcept {
    return admitted_bytes_;
  }
  [[nodiscard]] std::size_t waiting_count() const noexcept {
    return waiting_.size();
  }
  /// Node-local backlog: admitted-but-unfinished jobs plus the over-budget
  /// wait queue. What the fleet flight recorder samples as queue depth.
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    std::size_t n = waiting_.size();
    for (const Job& j : jobs_) {
      if (j.state == JobState::kRunning) ++n;
    }
    return n;
  }
  /// Non-null when SchedulerConfig::recovery.enabled was set.
  [[nodiscard]] const RecoveryManager* recovery() const noexcept {
    return rm_.get();
  }

 private:
  void admit(Job& j);
  void admit_waiting();
  Job* pick_next();
  void retire(Job& j);

  core::System* sys_;
  SchedulerConfig cfg_;
  std::uint64_t budget_ = 0;
  std::uint64_t admitted_bytes_ = 0;
  TenantId next_id_ = 1;  ///< 0 is kNoTenant
  std::uint64_t total_quanta_ = 0;  ///< checkpoint-period clock
  std::deque<Job> jobs_;        ///< all jobs, indexed by id - 1
  std::deque<TenantId> waiting_;  ///< over-budget FIFO (queue_over_budget)
  std::unique_ptr<RecoveryManager> rm_;  ///< present when recovery.enabled
};

}  // namespace ghum::tenant
