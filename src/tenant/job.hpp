#pragma once

#include <functional>
#include <memory>
#include <string>

#include "apps/app_common.hpp"
#include "fault/status.hpp"
#include "runtime/runtime.hpp"
#include "tenant/tenant_id.hpp"

/// \file job.hpp
/// A tenant job: one application instance (app x memory mode) packaged as
/// a resumable sequence of work units. The factory produces the app's
/// step-yielding coroutine (apps::*_steps) over the runtime the scheduler
/// hands it; every co_yield inside the app is a preemption point where the
/// tenant::Scheduler may switch to another tenant.

namespace ghum::tenant {

/// What a tenant wants to run. The \p make factory is invoked once, at
/// admission, with a Runtime bound to the shared simulated superchip; it
/// must return the app's step coroutine (e.g. hotspot_steps). The factory
/// itself must not issue simulated work — the coroutine body starts
/// executing only when the scheduler grants the first quantum.
struct JobSpec {
  std::string name;                       ///< display name ("qvsim/managed")
  apps::MemMode mode = apps::MemMode::kManaged;  ///< informational
  std::function<apps::AppCoro(runtime::Runtime&)> make;
  /// Peak memory footprint the job declares at submission; the admission
  /// controller checks the aggregate of admitted footprints against the
  /// scheduler budget (like a batch system's memory request).
  std::uint64_t footprint_bytes = 0;
  int priority = 0;                       ///< larger = more urgent (kPriority)
};

enum class JobState : std::uint8_t {
  kQueued,    ///< submitted, waiting for budget (queue_over_budget)
  kRunning,   ///< admitted; coroutine exists and is resumable
  kFinished,  ///< ran to completion; report is valid
  kFailed,    ///< quantum threw (StatusError / bad_alloc); status records why
  kRejected,  ///< admission denied (footprint over budget)
};

[[nodiscard]] constexpr std::string_view to_string(JobState s) noexcept {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kFinished: return "finished";
    case JobState::kFailed: return "failed";
    case JobState::kRejected: return "rejected";
  }
  return "?";
}

/// One submitted job and its full lifecycle. Owned by the Scheduler;
/// addresses are stable (deque) so the coroutine's Runtime reference —
/// captured at admission — stays valid across scheduling.
struct Job {
  TenantId id = kNoTenant;  ///< tenant id; also the attribution key
  JobSpec spec;
  JobState state = JobState::kQueued;

  sim::Picos submitted_at = 0;
  sim::Picos started_at = 0;   ///< first quantum's start
  sim::Picos finished_at = 0;  ///< completion / failure time
  /// The tenant's local simulated clock: the global clock value observed
  /// at the end of its last quantum. The kMinLocalTime policy resumes the
  /// job whose local clock lags furthest behind.
  sim::Picos local_now = 0;
  std::uint64_t quanta = 0;  ///< quanta consumed so far

  Status status = Status::kSuccess;  ///< failure/rejection cause
  apps::AppReport report;            ///< valid when kFinished

  // Recovery bookkeeping (tenant::RecoveryManager).
  std::uint32_t restarts = 0;  ///< times rolled back and replayed
  std::uint64_t stall_run = 0;  ///< consecutive zero-progress quanta
  std::uint64_t retries_at_qstart = 0;  ///< migration-retry stat at quantum start
  sim::Picos replayed = 0;  ///< simulated time discarded by rollbacks

  std::unique_ptr<runtime::Runtime> rt;  ///< per-tenant CUDA-like context
  apps::AppCoro coro;                    ///< resumable app instance

  [[nodiscard]] bool runnable() const noexcept {
    return state == JobState::kRunning;
  }
  [[nodiscard]] bool terminal() const noexcept {
    return state == JobState::kFinished || state == JobState::kFailed ||
           state == JobState::kRejected;
  }
};

}  // namespace ghum::tenant
