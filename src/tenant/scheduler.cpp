#include "tenant/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <new>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "fault/fault_injector.hpp"

namespace ghum::tenant {

Scheduler::Scheduler(core::System& sys, SchedulerConfig cfg)
    : sys_(&sys), cfg_(cfg) {
  const core::SystemConfig& mc = sys.machine().config();
  budget_ = cfg_.footprint_budget != 0 ? cfg_.footprint_budget
                                       : mc.hbm_capacity + mc.ddr_capacity;
  if (cfg_.quantum_steps == 0) cfg_.quantum_steps = 1;
  if (cfg_.recovery.enabled) {
    rm_ = std::make_unique<RecoveryManager>(sys, cfg_.recovery);
  }
}

Status Scheduler::submit(JobSpec spec, TenantId* out_id) {
  Job j;
  j.id = next_id_++;
  j.spec = std::move(spec);
  j.submitted_at = sys_->now();
  if (out_id != nullptr) *out_id = j.id;

  if (j.spec.footprint_bytes > budget_ ||
      (!cfg_.queue_over_budget &&
       admitted_bytes_ + j.spec.footprint_bytes > budget_)) {
    j.state = JobState::kRejected;
    j.status = Status::kErrorOutOfMemory;
    j.finished_at = j.submitted_at;
    jobs_.push_back(std::move(j));
    return Status::kErrorOutOfMemory;
  }
  if (admitted_bytes_ + j.spec.footprint_bytes > budget_) {
    // Over budget right now, but fits the machine: wait for capacity.
    j.state = JobState::kQueued;
    waiting_.push_back(j.id);
    jobs_.push_back(std::move(j));
    return Status::kSuccess;
  }
  jobs_.push_back(std::move(j));
  admit(jobs_.back());
  return Status::kSuccess;
}

void Scheduler::admit(Job& j) {
  admitted_bytes_ += j.spec.footprint_bytes;
  j.rt = std::make_unique<runtime::Runtime>(*sys_);
  // Stamp the tenant before invoking the factory: a coroutine's frame is
  // allocated here, but its body (and thus any VMA creation) only runs
  // inside granted quanta, which re-stamp anyway. Belt and braces.
  sys_->set_current_tenant(j.id);
  j.coro = j.spec.make(*j.rt);
  sys_->set_current_tenant(kNoTenant);
  j.state = JobState::kRunning;
}

void Scheduler::admit_waiting() {
  // Strict FIFO: stop at the first queued job that still does not fit, so
  // a large job cannot be starved by smaller late arrivals.
  while (!waiting_.empty()) {
    Job& j = jobs_[waiting_.front() - 1];
    if (admitted_bytes_ + j.spec.footprint_bytes > budget_) break;
    waiting_.pop_front();
    admit(j);
  }
}

Job* Scheduler::pick_next() {
  // Scan-and-min over runnable jobs: tenant counts are small and a linear
  // scan with a total-order key is trivially deterministic.
  Job* best = nullptr;
  std::tuple<std::int64_t, std::uint64_t, std::uint64_t> best_key{};
  for (Job& j : jobs_) {
    if (!j.runnable()) continue;
    std::tuple<std::int64_t, std::uint64_t, std::uint64_t> key{};
    switch (cfg_.policy) {
      case Policy::kMinLocalTime:
        key = {0, static_cast<std::uint64_t>(j.local_now), j.id};
        break;
      case Policy::kFifo:
        key = {0, j.id, 0};
        break;
      case Policy::kRoundRobin:
        key = {0, j.quanta, j.id};
        break;
      case Policy::kPriority:
        // Larger priority first; submission order breaks ties.
        key = {-static_cast<std::int64_t>(j.spec.priority), j.id, 0};
        break;
    }
    if (best == nullptr || key < best_key) {
      best = &j;
      best_key = key;
    }
  }
  return best;
}

void Scheduler::retire(Job& j) {
  j.finished_at = sys_->now();
  j.coro = apps::AppCoro{};  // release the frame (buffers already freed)
  admitted_bytes_ -= j.spec.footprint_bytes;
  admit_waiting();
}

bool Scheduler::step() {
  Job* j = pick_next();
  if (j == nullptr) {
    // Nothing runnable; queued jobs can only be waiting on budget that no
    // running job will ever release — admit what fits, if anything.
    admit_waiting();
    j = pick_next();
    if (j == nullptr) return false;
  }

  if (j->quanta == 0) j->started_at = sys_->now();

  interconnect::NvlinkC2C& c2c = sys_->machine().c2c();
  const std::uint64_t h2d0 = c2c.bytes_moved(interconnect::Direction::kCpuToGpu);
  const std::uint64_t d2h0 = c2c.bytes_moved(interconnect::Direction::kGpuToCpu);

  const sim::Picos now_before = sys_->now();
  sys_->set_current_tenant(j->id);
  if (rm_ != nullptr) rm_->quantum_begin(*j);
  bool alive = true;
  Status failure = Status::kSuccess;
  try {
    for (std::uint32_t s = 0; s < cfg_.quantum_steps && alive; ++s) {
      alive = j->coro.step();
    }
  } catch (const StatusError& e) {
    failure = e.status();
  } catch (const std::bad_alloc&) {
    failure = Status::kErrorOutOfMemory;
  }
  sys_->set_current_tenant(kNoTenant);

  // Everything the quantum moved over the C2C link belongs to this tenant
  // (the simulator is single-threaded per quantum, so the delta is exact).
  tenant::AttributionTable& at = sys_->attribution();
  at.note_c2c(j->id, /*h2d=*/true,
              c2c.bytes_moved(interconnect::Direction::kCpuToGpu) - h2d0);
  at.note_c2c(j->id, /*h2d=*/false,
              c2c.bytes_moved(interconnect::Direction::kGpuToCpu) - d2h0);

  j->local_now = sys_->now();
  ++j->quanta;
  ++total_quanta_;

  if (failure == Status::kSuccess && alive && rm_ != nullptr) {
    failure = rm_->quantum_end(*j, now_before);
  }

  if (failure != Status::kSuccess) {
    // A throw mid-kernel leaves the machine's phase bookkeeping open;
    // clear it before anything else runs (no simulated cost — the
    // crashed kernel's charges already landed).
    sys_->abort_phase();
    j->status = failure;
    if (rm_ != nullptr && rm_->on_failure(*j, failure)) {
      // Rolled back; the job stays kRunning and replays from the top.
    } else {
      j->state = JobState::kFailed;
      retire(*j);
    }
  } else if (!alive) {
    j->report = std::move(j->coro.report());
    j->state = JobState::kFinished;
    retire(*j);
  }
  if (rm_ != nullptr) rm_->maybe_checkpoint(total_quanta_);
  return true;
}

void Scheduler::run_all() {
  while (step()) {
  }
}

Status Scheduler::cancel(TenantId id, Status reason) {
  if (id == kNoTenant || id >= next_id_) return Status::kErrorInvalidValue;
  Job& j = jobs_[id - 1];
  if (j.terminal()) return Status::kErrorInvalidValue;

  if (j.state == JobState::kQueued) {
    const auto it = std::find(waiting_.begin(), waiting_.end(), id);
    if (it != waiting_.end()) waiting_.erase(it);
    j.state = JobState::kFailed;
    j.status = reason;
    j.finished_at = sys_->now();
    return Status::kSuccess;
  }

  // Running: drop the suspended coroutine frame first (its destructors do
  // no simulated work), then scrub what the incarnation allocated — the
  // teardown its exit path would have performed, charged to the victim and
  // immune to injected faults, exactly like the crash-recovery rollback.
  j.coro = apps::AppCoro{};
  {
    fault::FaultInjector::ScopedSuppress guard{&sys_->fault_injector()};
    sys_->set_current_tenant(j.id);
    (void)sys_->scrub_tenant(j.id);
    sys_->set_current_tenant(kNoTenant);
  }
  j.state = JobState::kFailed;
  j.status = reason;
  retire(j);
  return Status::kSuccess;
}

void Scheduler::rebind(core::System& sys) {
  sys_ = &sys;
  for (Job& j : jobs_) {
    if (j.rt != nullptr) j.rt->rebind(sys);
  }
  if (rm_ != nullptr) rm_->rebind(sys);
}

const Job& Scheduler::job(TenantId id) const {
  if (id == kNoTenant || id >= next_id_) {
    throw std::out_of_range{"tenant::Scheduler::job: unknown tenant id"};
  }
  return jobs_[id - 1];
}

}  // namespace ghum::tenant
