#include "tenant/recovery.hpp"

#include <memory>
#include <utility>

#include "fault/fault_injector.hpp"
#include "sim/event_log.hpp"

namespace ghum::tenant {

namespace {

/// Short cause slug for the restart counter's label (stable metric keys;
/// ghum::to_string(Status) is prose for humans).
[[nodiscard]] const char* cause_slug(Status s) noexcept {
  switch (s) {
    case Status::kErrorGpuReset: return "gpu_reset";
    case Status::kErrorEccUncorrectable: return "ecc_uncorrectable";
    case Status::kErrorTimeout: return "timeout";
    default: return "other";
  }
}

}  // namespace

RecoveryManager::RecoveryManager(core::System& sys, RecoveryConfig cfg)
    : sys_(&sys), cfg_(cfg) {
  rebind(sys);
}

void RecoveryManager::rebind(core::System& sys) {
  sys_ = &sys;
  obs::MetricsRegistry& reg = sys.machine().obs();
  watchdog_trips_ = &reg.counter("ghum_recovery_watchdog_trips_total");
  replayed_picos_ = &reg.counter("ghum_recovery_replayed_picos_total");
  failed_jobs_ = &reg.counter("ghum_recovery_failed_jobs_total");
  scrubbed_bytes_ = &reg.counter("ghum_recovery_scrubbed_bytes_total");
  checkpoints_ = &reg.counter("ghum_chk_checkpoints_total");
  snapshot_bytes_ = &reg.histogram("ghum_chk_snapshot_bytes");
  // Pre-register the per-cause restart counters so the exposition carries
  // all three families (at zero) from the first scrape.
  (void)restarts_for(Status::kErrorGpuReset);
  (void)restarts_for(Status::kErrorEccUncorrectable);
  (void)restarts_for(Status::kErrorTimeout);
}

obs::Counter* RecoveryManager::restarts_for(Status cause) {
  return &sys_->machine().obs().counter("ghum_recovery_restarts_total",
                                        {{"cause", cause_slug(cause)}});
}

void RecoveryManager::quantum_begin(Job& j) {
  j.retries_at_qstart = sys_->stats().get("fault.migration_retries");
}

Status RecoveryManager::quantum_end(Job& j, sim::Picos now_before) {
  if (cfg_.stall_quanta != 0) {
    if (j.local_now == now_before) {
      if (++j.stall_run >= cfg_.stall_quanta) {
        watchdog_trips_->inc();
        sys_->stats().add("recovery.watchdog_trips");
        return Status::kErrorTimeout;
      }
    } else {
      j.stall_run = 0;
    }
  }
  if (cfg_.retry_storm_threshold != 0) {
    const std::uint64_t retries =
        sys_->stats().get("fault.migration_retries") - j.retries_at_qstart;
    if (retries >= cfg_.retry_storm_threshold) {
      watchdog_trips_->inc();
      sys_->stats().add("recovery.watchdog_trips");
      return Status::kErrorTimeout;
    }
  }
  return Status::kSuccess;
}

bool RecoveryManager::on_failure(Job& j, Status cause) {
  if (!restartable(cause) || j.restarts >= cfg_.max_restarts) {
    // Budget exhausted on a cause that would otherwise restart: escalate,
    // so callers can tell "crashed too often" from "crashed once, fatal".
    if (restartable(cause) && j.restarts >= cfg_.max_restarts) {
      j.status = Status::kErrorUnrecoverable;
    }
    failed_jobs_->inc();
    sys_->stats().add("recovery.failed_jobs");
    return false;
  }

  // Roll back: scrub everything the dead incarnation leaked, then rebuild
  // the coroutine from the spec factory. The scrub runs as the victim
  // tenant (its unmap/free costs are attributed to it) and under fault
  // suppression (cleanup must not itself crash).
  fault::FaultInjector::ScopedSuppress guard{&sys_->fault_injector()};
  sys_->set_current_tenant(j.id);
  const std::uint64_t scrubbed = sys_->scrub_tenant(j.id);

  const sim::Picos lost = j.local_now - j.started_at;
  j.replayed += lost;
  replayed_picos_->inc(static_cast<std::uint64_t>(lost));
  scrubbed_bytes_->inc(scrubbed);
  restarts_for(cause)->inc();
  sys_->stats().add("recovery.restarts");
  sys_->events().record(
      {.time = sys_->now(),
       .type = sim::EventType::kJobRestart,
       .va = 0,
       .bytes = scrubbed,
       .aux = (j.restarts << 8) | static_cast<std::uint32_t>(cause)});

  j.coro = j.spec.make(*j.rt);
  ++j.restarts;
  j.status = Status::kSuccess;
  j.stall_run = 0;
  sys_->set_current_tenant(kNoTenant);
  return true;
}

void RecoveryManager::maybe_checkpoint(std::uint64_t total_quanta) {
  if (cfg_.checkpoint_period_quanta == 0) return;
  if (total_quanta % cfg_.checkpoint_period_quanta != 0) return;

  last_checkpoint_ = chk::Snapshotter::snapshot(*sys_);
  checkpoints_->inc();
  snapshot_bytes_->observe(last_checkpoint_.size());
  sys_->stats().add("recovery.checkpoints");

  if (cfg_.verify_checkpoints) {
    // Restore into a scratch System and re-snapshot: byte-for-byte payload
    // equality proves the serializer is lossless for the live state.
    std::unique_ptr<core::System> twin =
        chk::Snapshotter::restore(last_checkpoint_);
    const chk::Blob again = chk::Snapshotter::snapshot(*twin);
    if (chk::Snapshotter::blob_digest(again) !=
        chk::Snapshotter::blob_digest(last_checkpoint_)) {
      throw StatusError{Status::kErrorInvalidValue,
                        "checkpoint verification: restore round trip diverged"};
    }
  }
}

}  // namespace ghum::tenant
