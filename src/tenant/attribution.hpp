#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tenant/tenant_id.hpp"

/// \file attribution.hpp
/// Per-tenant resource accounting, maintained by the Machine's residency
/// transition helpers and the driver/OS policy layers. Single-app runs pay
/// nothing but a few counter increments on tenant 0; multi-tenant runs get
/// the paper-style shared-resource story the single-app code can never
/// exhibit: whose pages occupy each tier, who faulted, who migrated what,
/// and — the headline — who evicted whom under HBM pressure.

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::tenant {

/// Running usage of one tenant. Resident counters are signed deltas (they
/// go down when pages unmap); traffic counters only grow.
struct TenantUsage {
  std::int64_t resident_cpu_bytes = 0;
  std::int64_t resident_gpu_bytes = 0;
  std::uint64_t peak_gpu_bytes = 0;
  std::uint64_t c2c_h2d_bytes = 0;
  std::uint64_t c2c_d2h_bytes = 0;
  std::uint64_t cpu_faults = 0;        ///< CPU-origin first-touch/minor faults
  std::uint64_t gpu_faults = 0;        ///< GPU-origin replayable + managed faults
  std::uint64_t migrated_h2d_bytes = 0;
  std::uint64_t migrated_d2h_bytes = 0;
  std::uint64_t evictions_suffered = 0;       ///< this tenant's blocks evicted
  std::uint64_t evicted_bytes_suffered = 0;
  std::uint64_t evictions_caused = 0;         ///< evictions this tenant's demand forced
};

/// Who-evicted-whom: one cell of the cross-tenant eviction matrix.
struct EvictionCell {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

class AttributionTable {
 public:
  void note_resident_delta(TenantId t, std::int64_t cpu_delta,
                           std::int64_t gpu_delta);
  void note_c2c(TenantId t, bool h2d, std::uint64_t bytes);
  void note_fault(TenantId t, bool gpu_origin);
  void note_migration(TenantId t, bool h2d, std::uint64_t bytes);
  /// One evicted block: \p perpetrator is the tenant whose demand needed the
  /// room, \p victim the tenant owning the evicted block (they coincide when
  /// a tenant thrashes against itself).
  void note_eviction(TenantId perpetrator, TenantId victim, std::uint64_t bytes);

  /// Usage of \p t (a zero record when the tenant never touched anything).
  [[nodiscard]] const TenantUsage& usage(TenantId t) const;

  /// Eviction-matrix cell perpetrator -> victim.
  [[nodiscard]] EvictionCell evictions(TenantId perpetrator, TenantId victim) const;

  /// Evictions where the perpetrator and victim differ — the cross-tenant
  /// interference signal.
  [[nodiscard]] std::uint64_t cross_tenant_evictions() const noexcept {
    return cross_tenant_evictions_;
  }
  [[nodiscard]] std::uint64_t cross_tenant_evicted_bytes() const noexcept {
    return cross_tenant_evicted_bytes_;
  }

  /// Largest tenant id seen (0 when attribution never fired).
  [[nodiscard]] TenantId max_tenant() const noexcept {
    return usage_.empty() ? 0 : static_cast<TenantId>(usage_.size() - 1);
  }

  /// Human-readable per-tenant usage plus the who-evicted-whom matrix.
  [[nodiscard]] std::string to_table() const;

 private:
  TenantUsage& grow(TenantId t);

  std::vector<TenantUsage> usage_;  // index = tenant id
  std::map<std::pair<TenantId, TenantId>, EvictionCell> matrix_;  // (perp, victim)
  std::uint64_t cross_tenant_evictions_ = 0;
  std::uint64_t cross_tenant_evicted_bytes_ = 0;

  friend class ghum::chk::Snapshotter;
};

}  // namespace ghum::tenant
