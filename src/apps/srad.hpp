#pragma once

#include "apps/app_common.hpp"

/// \file srad.hpp
/// SRAD (Rodinia): Speckle Reducing Anisotropic Diffusion, an iterative
/// PDE-based denoising algorithm — the paper's *irregular* representative
/// (Table 2; paper input 20k x 20k, scaled per DESIGN.md Section 4).
///
/// Port details matching the paper's methodology:
///  - the image J is CPU-initialized (random matrix, as in Rodinia);
///  - the diffusion-coefficient field c is only ever touched by GPU
///    kernels, so under the unified port it is *GPU-first-touched* in
///    iteration 1 (the Section 5.1.2 effect; its pre-registration via
///    cudaHostRegister is the optimization measured at ~300 ms at paper
///    scale);
///  - the computation iterates over the same working set, which is what
///    makes SRAD the showcase for access-counter migration (Figure 10).

namespace ghum::apps {

struct SradConfig {
  std::uint32_t rows = 896;
  std::uint32_t cols = 896;
  std::uint32_t iterations = 12;  ///< Figure 10 runs 12
  float lambda = 0.5f;
  std::uint64_t seed = 46;
  /// Apply the Section 5.1.2 optimization: cudaHostRegister the
  /// GPU-first-touched buffer before the compute phase (system mode only).
  bool host_register_opt = false;
};

AppReport run_srad(runtime::Runtime& rt, MemMode mode, const SradConfig& cfg);

/// Step-yielding form of run_srad (suspends per phase and diffusion iteration).
[[nodiscard]] AppCoro srad_steps(runtime::Runtime& rt, MemMode mode, SradConfig cfg);

[[nodiscard]] std::uint64_t srad_reference_checksum(const SradConfig& cfg);

}  // namespace ghum::apps
