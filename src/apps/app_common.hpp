#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cache/kernel_traffic.hpp"
#include "runtime/runtime.hpp"
#include "sim/rng.hpp"

/// \file app_common.hpp
/// Shared scaffolding for the six applications of paper Table 2. Every app
/// is implemented in three memory versions produced by exactly the code
/// transformation of paper Figure 2:
///  - kExplicit: host staging buffer + cudaMalloc device buffer + cudaMemcpy
///  - kManaged:  one cudaMallocManaged buffer
///  - kSystem:   one malloc() buffer
/// and reports per-phase timings with the paper's phase breakdown
/// (Section 3: context init & argument parsing, allocation, CPU-side
/// initialization, computation, de-allocation; CPU-side initialization is
/// excluded from reported totals).

namespace ghum::apps {

enum class MemMode : std::uint8_t { kExplicit = 0, kManaged = 1, kSystem = 2 };

[[nodiscard]] std::string_view to_string(MemMode m) noexcept;

struct PhaseTimes {
  double context_s = 0;   ///< GPU context initialization — its own phase in
                          ///< the paper's breakdown (Section 3.1), excluded
                          ///< from the reported total like CPU-side init
  double alloc_s = 0;
  double cpu_init_s = 0;  ///< excluded from reported total (paper Section 3.1)
  double gpu_init_s = 0;  ///< GPU-side initialization (srad, qvsim)
  double compute_s = 0;
  double dealloc_s = 0;

  [[nodiscard]] double reported_total_s() const noexcept {
    return alloc_s + gpu_init_s + compute_s + dealloc_s;
  }
  [[nodiscard]] double end_to_end_s() const noexcept {
    return reported_total_s() + cpu_init_s + context_s;
  }
};

struct AppReport {
  std::string app;
  MemMode mode = MemMode::kExplicit;
  PhaseTimes times;
  /// Deterministic digest of the computed output; equal across the three
  /// memory versions of the same app/problem (asserted by tests).
  std::uint64_t checksum = 0;
  /// Aggregate traffic of the compute phase.
  cache::KernelTraffic compute_traffic;
  /// Per-iteration durations/traffic for iterative apps (srad: Figure 10).
  std::vector<double> iteration_s;
  std::vector<cache::KernelTraffic> iteration_traffic;

  /// App-specific scalar result (qvsim: heavy-output probability when
  /// QvConfig::measure_hop is set). -1 when unused.
  double aux_metric = -1.0;
};

/// A resumable application run: each app's `*_steps` coroutine yields at
/// its natural work-unit boundaries (phase transitions, kernel-loop
/// iterations) and co_returns the finished AppReport. This is the quantum
/// substrate of multi-tenant co-scheduling (tenant::Scheduler resumes one
/// suspended app at a time); driven to completion in one loop it behaves
/// bit-for-bit like the original monolithic run functions, which the
/// `run_*` wrappers still expose.
class AppCoro {
 public:
  struct promise_type {
    AppReport report;
    std::exception_ptr error;

    AppCoro get_return_object() {
      return AppCoro{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    std::suspend_always yield_value(int) noexcept { return {}; }
    void return_value(AppReport r) noexcept { report = std::move(r); }
    void unhandled_exception() noexcept { error = std::current_exception(); }
  };

  AppCoro() = default;
  AppCoro(AppCoro&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  AppCoro& operator=(AppCoro&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  ~AppCoro() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(h_); }
  [[nodiscard]] bool done() const noexcept { return !h_ || h_.done(); }

  /// Runs one work unit (up to the next co_yield). Returns true while more
  /// remain. On completion, rethrows whatever the app body threw (OOM
  /// StatusError and friends surface to the resumer, exactly as they
  /// escaped the monolithic run functions).
  bool step() {
    if (done()) return false;
    h_.resume();
    if (h_.done()) {
      if (h_.promise().error) std::rethrow_exception(h_.promise().error);
      return false;
    }
    return true;
  }

  /// The finished report (valid once step() has returned false).
  [[nodiscard]] AppReport& report() { return h_.promise().report; }

 private:
  explicit AppCoro(std::coroutine_handle<promise_type> h) noexcept : h_(h) {}
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  std::coroutine_handle<promise_type> h_;
};

/// Drives a step-yielding app to completion inline — the single-app path
/// every `run_*` wrapper uses.
[[nodiscard]] AppReport drive(AppCoro coro);

/// Phase stopwatch over the simulated clock. GPU-context-initialization
/// time charged during a lap is subtracted from that lap and accumulated
/// separately (PhaseTimes.context_s), mirroring the paper's phase model
/// where context init is its own phase regardless of where it fires.
///
/// Holds the Runtime, not the System: app coroutines keep a PhaseTimer
/// alive across co_yields, and checkpoint restore swaps the Runtime onto a
/// fresh System (runtime::Runtime::rebind) — resolving the clock through
/// the Runtime at every lap keeps the stopwatch valid across that swap.
class PhaseTimer {
 public:
  explicit PhaseTimer(runtime::Runtime& rt)
      : rt_(&rt),
        t0_(rt.system().now()),
        ctx_seen_(rt.system().context_init_charged()) {}

  /// Seconds since construction or the last lap() call, context-init
  /// charges excluded.
  double lap() {
    core::System& sys = rt_->system();
    const sim::Picos now = sys.now();
    const sim::Picos ctx = sys.context_init_charged();
    const sim::Picos ctx_delta = ctx - ctx_seen_;
    ctx_seen_ = ctx;
    ctx_total_ += ctx_delta;
    const double s = sim::to_seconds(now - t0_ - ctx_delta);
    t0_ = now;
    return s;
  }

  /// Context-initialization time observed so far, in seconds.
  [[nodiscard]] double context_s() const { return sim::to_seconds(ctx_total_); }

 private:
  runtime::Runtime* rt_;
  sim::Picos t0_;
  sim::Picos ctx_seen_;
  sim::Picos ctx_total_ = 0;
};

/// One logical application buffer under the Figure 2 transformation.
/// In explicit mode it is a (host staging, device) pair bridged by
/// cudaMemcpy; in the unified modes it is a single buffer.
class UnifiedBuffer {
 public:
  UnifiedBuffer() = default;

  static UnifiedBuffer create(runtime::Runtime& rt, MemMode mode,
                              std::uint64_t bytes, std::string label);

  /// Explicit mode: copy host -> device. Unified modes: no-op (the paper's
  /// ports delete the copies and rely on unified access).
  void h2d(runtime::Runtime& rt);
  void d2h(runtime::Runtime& rt);
  void h2d(runtime::Runtime& rt, std::uint64_t bytes);
  void d2h(runtime::Runtime& rt, std::uint64_t bytes);

  /// Buffer kernels should access.
  [[nodiscard]] const core::Buffer& device() const noexcept {
    return unified_ ? buf_ : dev_;
  }
  /// Buffer host code should access.
  [[nodiscard]] const core::Buffer& host() const noexcept {
    return unified_ ? buf_ : host_;
  }

  [[nodiscard]] bool unified() const noexcept { return unified_; }

  void free(runtime::Runtime& rt);

 private:
  bool unified_ = true;
  core::Buffer buf_;   // unified modes
  core::Buffer host_;  // explicit mode
  core::Buffer dev_;   // explicit mode
};

/// FNV-1a over a little-endian byte view; used for cross-mode checksums.
class Digest {
 public:
  void add_bytes(const void* p, std::size_t n) noexcept;
  void add_u64(std::uint64_t v) noexcept { add_bytes(&v, sizeof(v)); }
  void add_double(double d) noexcept { add_bytes(&d, sizeof(d)); }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// Quantize a float so checksums tolerate benign non-associativity
/// (we keep kernel loops identical across modes, so exact equality holds;
/// quantization guards reference comparisons).
[[nodiscard]] inline std::int64_t quantize(double v, double scale = 1e6) {
  return static_cast<std::int64_t>(v * scale);
}

}  // namespace ghum::apps
