#include "apps/pathfinder.hpp"

#include <algorithm>
#include <vector>

namespace ghum::apps {

namespace {
int cell_cost(sim::Rng& rng) { return static_cast<int>(rng.next_below(10)); }
}  // namespace

AppReport run_pathfinder(runtime::Runtime& rt, MemMode mode,
                         const PathfinderConfig& cfg) {
  return drive(pathfinder_steps(rt, mode, cfg));
}

AppCoro pathfinder_steps(runtime::Runtime& rt, MemMode mode, PathfinderConfig cfg) {
  const std::uint64_t n = std::uint64_t{cfg.rows} * cfg.cols;

  AppReport report;
  report.app = "pathfinder";
  report.mode = mode;
  PhaseTimer timer{rt};

  UnifiedBuffer wall = UnifiedBuffer::create(rt, mode, n * sizeof(int), "pf.wall");
  UnifiedBuffer result =
      UnifiedBuffer::create(rt, mode, cfg.cols * sizeof(int), "pf.result");
  // Ping-pong row buffer: a pure GPU intermediary, so it stays cudaMalloc
  // in every mode (paper Section 3.1: GPU-only buffers keep cudaMalloc).
  core::Buffer scratch = rt.malloc_device(cfg.cols * sizeof(int), "pf.scratch");
  report.times.alloc_s = timer.lap();
  co_yield 0;

  rt.host_phase("pf.cpu_init", static_cast<double>(n), [&] {
    sim::Rng rng{cfg.seed};
    auto w = rt.host_span<int>(wall.host());
    int* wv = w.store_run(0, n);
    for (std::uint64_t i = 0; i < n; ++i) wv[i] = cell_cost(rng);
  });
  report.times.cpu_init_s = timer.lap();
  co_yield 0;

  wall.h2d(rt);
  // DP state starts as row 0 of the wall; alternates result <-> scratch.
  const core::Buffer* src = &wall.device();  // row 0 read in first step
  const core::Buffer* dst = &result.device();
  bool first = true;
  for (std::uint32_t r = 1; r < cfg.rows; ++r) {
    auto record = rt.launch("pf.row", static_cast<double>(cfg.cols) * 4, [&] {
      auto s = rt.device_span<int>(*src);
      auto w = rt.device_span<int>(wall.device());
      auto d = rt.device_span<int>(*dst);
      const std::uint64_t row_off = std::uint64_t{r} * cfg.cols;
      // Sliding 3-neighbour window over the previous DP row.
      int left = s.load(0);
      int center = s.load(0);
      int right = cfg.cols > 1 ? s.load(1) : center;
      for (std::uint32_t c = 0; c < cfg.cols; ++c) {
        const int best = std::min(std::min(left, center), right);
        d.store(c, w.load(row_off + c) + best);
        left = center;
        center = right;
        right = c + 2 < cfg.cols ? s.load(c + 2) : center;
      }
    });
    report.compute_traffic += record.traffic;
    if (first) {
      // After the first row the source is always a DP row buffer.
      first = false;
      src = &result.device();
      dst = &scratch;
    } else {
      std::swap(src, dst);
    }
    co_yield 0;
  }
  rt.device_synchronize();
  // Copy the final DP row into `result` if it currently sits in scratch.
  const bool in_scratch = src == &scratch;
  if (in_scratch) {
    // Device-to-device move of the final row (explicit copy in all modes;
    // this is a GPU-local operation).
    auto rec = rt.launch("pf.gather", static_cast<double>(cfg.cols), [&] {
      auto s = rt.device_span<int>(scratch);
      auto d = rt.device_span<int>(result.device());
      const int* sv = s.load_run(0, cfg.cols);
      int* dv = d.store_run(0, cfg.cols);
      std::copy_n(sv, cfg.cols, dv);
    });
    report.compute_traffic += rec.traffic;
  }
  result.d2h(rt);
  report.times.compute_s = timer.lap();
  co_yield 0;

  {
    Digest d;
    const auto* data = reinterpret_cast<const int*>(result.host().host);
    for (std::uint32_t c = 0; c < cfg.cols; ++c) d.add_u64(static_cast<std::uint64_t>(data[c]));
    report.checksum = d.value();
  }

  timer.lap();
  wall.free(rt);
  result.free(rt);
  rt.free(scratch);
  report.times.dealloc_s = timer.lap();
  report.times.context_s = timer.context_s();
  co_return report;
}

std::uint64_t pathfinder_reference_checksum(const PathfinderConfig& cfg) {
  const std::uint64_t n = std::uint64_t{cfg.rows} * cfg.cols;
  std::vector<int> wall(n);
  sim::Rng rng{cfg.seed};
  for (std::uint64_t i = 0; i < n; ++i) wall[i] = cell_cost(rng);

  std::vector<int> a(wall.begin(), wall.begin() + cfg.cols);
  std::vector<int> b(cfg.cols);
  std::vector<int>* src = &a;
  std::vector<int>* dst = &b;
  for (std::uint32_t r = 1; r < cfg.rows; ++r) {
    for (std::uint32_t c = 0; c < cfg.cols; ++c) {
      const int left = (*src)[c == 0 ? 0 : c - 1];
      const int center = (*src)[c];
      const int right = (*src)[c + 1 >= cfg.cols ? cfg.cols - 1 : c + 1];
      (*dst)[c] = wall[std::uint64_t{r} * cfg.cols + c] +
                  std::min(std::min(left, center), right);
    }
    std::swap(src, dst);
  }
  Digest d;
  for (std::uint32_t c = 0; c < cfg.cols; ++c) {
    d.add_u64(static_cast<std::uint64_t>((*src)[c]));
  }
  return d.value();
}

}  // namespace ghum::apps
