#pragma once

#include "apps/app_common.hpp"

/// \file bfs.hpp
/// Breadth-first search (Rodinia "bfs"): level-synchronous frontier BFS
/// over a random sparse graph in CSR form — the paper's *mixed* pattern
/// representative with CPU-side initialization (Table 2; paper input
/// 16M nodes, scaled per DESIGN.md Section 4). The frontier masks are
/// scanned densely (regular) while neighbour updates scatter (irregular),
/// which is exactly the mix the paper's taxonomy describes.

namespace ghum::apps {

/// Input graph family. Small-world (ring + random shortcuts) gives the
/// uniform-degree instance classic BFS benchmarks use; R-MAT (Chakrabarti
/// et al.) gives the skewed power-law degrees of real graph workloads —
/// heavier scatter irregularity for the same edge count.
enum class GraphKind : std::uint8_t { kSmallWorld, kRmat };

struct BfsConfig {
  std::uint32_t nodes = 262144;
  std::uint32_t avg_degree = 6;
  std::uint64_t seed = 45;
  GraphKind graph = GraphKind::kSmallWorld;
};

AppReport run_bfs(runtime::Runtime& rt, MemMode mode, const BfsConfig& cfg);

/// Step-yielding form of run_bfs (suspends per phase and frontier level).
[[nodiscard]] AppCoro bfs_steps(runtime::Runtime& rt, MemMode mode, BfsConfig cfg);

[[nodiscard]] std::uint64_t bfs_reference_checksum(const BfsConfig& cfg);

}  // namespace ghum::apps
