#include "apps/hotspot.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ghum::apps {

namespace {

// HotSpot thermal constants (Rodinia defaults, folded).
constexpr float kCap = 0.5f;
constexpr float kRxInv = 0.1f;
constexpr float kRyInv = 0.1f;
constexpr float kRzInv = 0.0333f;
constexpr float kAmb = 80.0f;

float init_temp(sim::Rng& rng) {
  return 323.0f + static_cast<float>(rng.next_double()) * 10.0f;
}
float init_power(sim::Rng& rng) {
  return static_cast<float>(rng.next_double()) * 0.5f;
}

inline float step_cell(float c, float n, float s, float w, float e, float p) {
  const float delta = kCap * (p + (n + s - 2.0f * c) * kRyInv +
                              (w + e - 2.0f * c) * kRxInv + (kAmb - c) * kRzInv);
  return c + delta;
}

}  // namespace

AppReport run_hotspot(runtime::Runtime& rt, MemMode mode, const HotspotConfig& cfg) {
  return drive(hotspot_steps(rt, mode, cfg));
}

AppCoro hotspot_steps(runtime::Runtime& rt, MemMode mode, HotspotConfig cfg) {
  const std::uint64_t n = std::uint64_t{cfg.rows} * cfg.cols;
  const std::uint64_t bytes = n * sizeof(float);

  AppReport report;
  report.app = "hotspot";
  report.mode = mode;
  PhaseTimer timer{rt};

  // --- allocation -----------------------------------------------------------
  // Paper porting rule (Section 3.1): only buffers involved in explicit
  // H2D/D2H copies become unified; the ping-pong intermediate stays
  // cudaMalloc in every mode (Rodinia copies data into MatrixTemp[0] only).
  UnifiedBuffer temp_a = UnifiedBuffer::create(rt, mode, bytes, "hotspot.temp_a");
  core::Buffer temp_b = rt.malloc_device(bytes, "hotspot.temp_b");
  UnifiedBuffer power = UnifiedBuffer::create(rt, mode, bytes, "hotspot.power");
  report.times.alloc_s = timer.lap();
  co_yield 0;

  // --- CPU-side initialization ------------------------------------------------
  rt.host_phase("hotspot.cpu_init", static_cast<double>(n) * 4, [&] {
    sim::Rng rng{cfg.seed};
    auto t = rt.host_span<float>(temp_a.host());
    auto p = rt.host_span<float>(power.host());
    // Dense sweeps go through the bulk accessors; the rng draw order stays
    // element-interleaved so the reference checksum is unchanged.
    float* tv = t.store_run(0, n);
    float* pv = p.store_run(0, n);
    for (std::uint64_t i = 0; i < n; ++i) {
      tv[i] = init_temp(rng);
      pv[i] = init_power(rng);
    }
  });
  report.times.cpu_init_s = timer.lap();
  co_yield 0;

  // --- compute -----------------------------------------------------------------
  const core::Buffer* in = &temp_a.device();
  const core::Buffer* out = &temp_b;
  for (std::uint32_t it = 0; it < cfg.iterations; ++it) {
    if (it == 0) {
      temp_a.h2d(rt);
      power.h2d(rt);
    }
    auto record = rt.launch("hotspot.step", static_cast<double>(n) * 12, [&] {
      auto center = rt.device_span<float>(*in);
      auto north = rt.device_span<float>(*in);
      auto south = rt.device_span<float>(*in);
      auto pw = rt.device_span<float>(power.device());
      auto dst = rt.device_span<float>(*out);
      for (std::uint32_t r = 0; r < cfg.rows; ++r) {
        const std::uint64_t rn = std::uint64_t{r == 0 ? 0u : r - 1} * cfg.cols;
        const std::uint64_t rs =
            std::uint64_t{r == cfg.rows - 1 ? r : r + 1} * cfg.cols;
        const std::uint64_t rc = std::uint64_t{r} * cfg.cols;
        float west = center.load(rc);  // clamped west of column 0
        for (std::uint32_t c = 0; c < cfg.cols; ++c) {
          const float cur = center.load(rc + c);
          const float e =
              c == cfg.cols - 1 ? cur : center.load(rc + c + 1);
          const float v = step_cell(cur, north.load(rn + c), south.load(rs + c),
                                    west, e, pw.load(rc + c));
          dst.store(rc + c, v);
          west = cur;
        }
      }
    });
    report.iteration_s.push_back(sim::to_seconds(record.duration));
    report.iteration_traffic.push_back(record.traffic);
    report.compute_traffic += record.traffic;
    std::swap(in, out);
    co_yield 0;
  }
  rt.device_synchronize();
  // Result lives in *in after the final swap. If it sits in the GPU-only
  // ping-pong buffer (odd iteration count), move it back to the unified
  // buffer first, as Rodinia's final D2H copy does.
  if (in == &temp_b) {
    auto rec = rt.launch("hotspot.gather", static_cast<double>(n), [&] {
      auto s = rt.device_span<float>(temp_b);
      auto d = rt.device_span<float>(temp_a.device());
      const float* sv = s.load_run(0, n);
      float* dv = d.store_run(0, n);
      std::copy_n(sv, n, dv);
    });
    report.compute_traffic += rec.traffic;
  }
  temp_a.d2h(rt);
  report.times.compute_s = timer.lap();
  co_yield 0;

  // --- checksum (meta-level, not simulated work) --------------------------------
  {
    Digest d;
    const auto* data = reinterpret_cast<const float*>(temp_a.host().host);
    for (std::uint64_t i = 0; i < n; i += 97) d.add_u64(static_cast<std::uint64_t>(
        quantize(data[i], 1e3)));
    report.checksum = d.value();
  }

  // --- deallocation ---------------------------------------------------------------
  timer.lap();
  temp_a.free(rt);
  rt.free(temp_b);
  power.free(rt);
  report.times.dealloc_s = timer.lap();
  report.times.context_s = timer.context_s();
  co_return report;
}

std::uint64_t hotspot_reference_checksum(const HotspotConfig& cfg) {
  const std::uint64_t n = std::uint64_t{cfg.rows} * cfg.cols;
  std::vector<float> t(n), p(n), t2(n);
  sim::Rng rng{cfg.seed};
  for (std::uint64_t i = 0; i < n; ++i) {
    t[i] = init_temp(rng);
    p[i] = init_power(rng);
  }
  std::vector<float>* in = &t;
  std::vector<float>* out = &t2;
  for (std::uint32_t it = 0; it < cfg.iterations; ++it) {
    for (std::uint32_t r = 0; r < cfg.rows; ++r) {
      const std::uint64_t rn = std::uint64_t{r == 0 ? 0u : r - 1} * cfg.cols;
      const std::uint64_t rs = std::uint64_t{r == cfg.rows - 1 ? r : r + 1} * cfg.cols;
      const std::uint64_t rc = std::uint64_t{r} * cfg.cols;
      float west = (*in)[rc];
      for (std::uint32_t c = 0; c < cfg.cols; ++c) {
        const float cur = (*in)[rc + c];
        const float e = c == cfg.cols - 1 ? cur : (*in)[rc + c + 1];
        (*out)[rc + c] = step_cell(cur, (*in)[rn + c], (*in)[rs + c], west, e,
                                   p[rc + c]);
        west = cur;
      }
    }
    std::swap(in, out);
  }
  Digest d;
  for (std::uint64_t i = 0; i < n; i += 97) {
    d.add_u64(static_cast<std::uint64_t>(quantize((*in)[i], 1e3)));
  }
  return d.value();
}

}  // namespace ghum::apps
