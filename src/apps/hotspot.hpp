#pragma once

#include "apps/app_common.hpp"

/// \file hotspot.hpp
/// HotSpot (Rodinia): iterative 2-D thermal simulation solving a
/// differential equation with a 5-point stencil — the paper's *regular*
/// access pattern representative with CPU-side initialization (Table 2;
/// paper input 16k x 16k, scaled per DESIGN.md Section 4).

namespace ghum::apps {

struct HotspotConfig {
  std::uint32_t rows = 1024;
  std::uint32_t cols = 1024;
  std::uint32_t iterations = 6;
  std::uint64_t seed = 42;
};

AppReport run_hotspot(runtime::Runtime& rt, MemMode mode, const HotspotConfig& cfg);

/// Step-yielding form of run_hotspot: suspends after the allocation and
/// init phases and after every stencil iteration, so a tenant::Scheduler
/// can interleave instances. Driving it straight to completion is exactly
/// run_hotspot.
[[nodiscard]] AppCoro hotspot_steps(runtime::Runtime& rt, MemMode mode,
                                    HotspotConfig cfg);

/// Pure-host reference digest (no simulation) for correctness tests.
[[nodiscard]] std::uint64_t hotspot_reference_checksum(const HotspotConfig& cfg);

}  // namespace ghum::apps
