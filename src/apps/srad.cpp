#include "apps/srad.hpp"

#include <cmath>
#include <vector>

namespace ghum::apps {

namespace {

float init_pixel(sim::Rng& rng) {
  // Rodinia generates a random image and takes J = exp(I); values stay in
  // a well-conditioned positive range.
  return std::exp(static_cast<float>(rng.next_double()));
}

/// One SRAD iteration on plain arrays (reference path). Mirrors the
/// Rodinia srad_v2 kernel pair: srad1 stores the four directional
/// derivatives and the diffusion coefficient; srad2 updates J in place.
void srad_iteration_ref(std::vector<float>& J, std::vector<float>& c,
                        std::vector<float>& dN, std::vector<float>& dS,
                        std::vector<float>& dW, std::vector<float>& dE,
                        std::uint32_t rows, std::uint32_t cols, float lambda) {
  const std::uint64_t n = std::uint64_t{rows} * cols;
  double sum = 0, sum2 = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += J[i];
    sum2 += static_cast<double>(J[i]) * J[i];
  }
  const double mean = sum / static_cast<double>(n);
  const double var = sum2 / static_cast<double>(n) - mean * mean;
  const auto q0sqr = static_cast<float>(var / (mean * mean));

  auto at = [&](std::uint32_t r, std::uint32_t c2) {
    return J[std::uint64_t{r} * cols + c2];
  };
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::uint32_t rn = r == 0 ? 0 : r - 1;
    const std::uint32_t rs = r == rows - 1 ? r : r + 1;
    for (std::uint32_t cc = 0; cc < cols; ++cc) {
      const std::uint32_t cw = cc == 0 ? 0 : cc - 1;
      const std::uint32_t ce = cc == cols - 1 ? cc : cc + 1;
      const std::uint64_t idx = std::uint64_t{r} * cols + cc;
      const float jc = J[idx];
      dN[idx] = at(rn, cc) - jc;
      dS[idx] = at(rs, cc) - jc;
      dW[idx] = at(r, cw) - jc;
      dE[idx] = at(r, ce) - jc;
      const float g2 =
          (dN[idx] * dN[idx] + dS[idx] * dS[idx] + dW[idx] * dW[idx] +
           dE[idx] * dE[idx]) /
          (jc * jc);
      const float l = (dN[idx] + dS[idx] + dW[idx] + dE[idx]) / jc;
      const float num = 0.5f * g2 - (1.0f / 16.0f) * l * l;
      const float den = 1.0f + 0.25f * l;
      const float qsqr = num / (den * den);
      float cv = 1.0f / (1.0f + (qsqr - q0sqr) / (q0sqr * (1.0f + q0sqr)));
      c[idx] = cv < 0.0f ? 0.0f : (cv > 1.0f ? 1.0f : cv);
    }
  }
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::uint32_t rs = r == rows - 1 ? r : r + 1;
    for (std::uint32_t cc = 0; cc < cols; ++cc) {
      const std::uint32_t ce = cc == cols - 1 ? cc : cc + 1;
      const std::uint64_t idx = std::uint64_t{r} * cols + cc;
      const float c_here = c[idx];
      const float c_south = c[std::uint64_t{rs} * cols + cc];
      const float c_east = c[std::uint64_t{r} * cols + ce];
      const float div = c_south * dS[idx] + c_here * dN[idx] + c_east * dE[idx] +
                        c_here * dW[idx];
      J[idx] += 0.25f * lambda * div;
    }
  }
}

}  // namespace

AppReport run_srad(runtime::Runtime& rt, MemMode mode, const SradConfig& cfg) {
  return drive(srad_steps(rt, mode, cfg));
}

AppCoro srad_steps(runtime::Runtime& rt, MemMode mode, SradConfig cfg) {
  const std::uint64_t n = std::uint64_t{cfg.rows} * cfg.cols;
  const std::uint64_t bytes = n * sizeof(float);

  AppReport report;
  report.app = "srad";
  report.mode = mode;
  PhaseTimer timer{rt};

  // J is the image: CPU-initialized, GPU-updated in place — the buffer
  // whose gradual access-counter migration Figure 10 charts. The
  // derivative fields and the coefficient field are only ever touched by
  // GPU kernels, so the unified port GPU-first-touches them in iteration 1
  // (the Section 5.1.2 cost that host_register_opt removes).
  UnifiedBuffer img = UnifiedBuffer::create(rt, mode, bytes, "srad.J");
  UnifiedBuffer coeff = UnifiedBuffer::create(rt, mode, bytes, "srad.c");
  UnifiedBuffer dn = UnifiedBuffer::create(rt, mode, bytes, "srad.dN");
  UnifiedBuffer ds = UnifiedBuffer::create(rt, mode, bytes, "srad.dS");
  UnifiedBuffer dw = UnifiedBuffer::create(rt, mode, bytes, "srad.dW");
  UnifiedBuffer de = UnifiedBuffer::create(rt, mode, bytes, "srad.dE");
  // Reduction result read by the host every iteration: pinned zero-copy.
  core::Buffer sums = rt.malloc_host(2 * sizeof(double), "srad.sums");
  report.times.alloc_s = timer.lap();
  co_yield 0;

  rt.host_phase("srad.cpu_init", static_cast<double>(n) * 4, [&] {
    sim::Rng rng{cfg.seed};
    auto j = rt.host_span<float>(img.host());
    float* jv = j.store_run(0, n);
    for (std::uint64_t i = 0; i < n; ++i) jv[i] = init_pixel(rng);
  });
  report.times.cpu_init_s = timer.lap();
  co_yield 0;

  if (cfg.host_register_opt && mode == MemMode::kSystem) {
    // Section 5.1.2: pre-populate the GPU-first-touched buffers' PTEs on
    // the CPU so the compute kernels do not pay replayable faults.
    for (UnifiedBuffer* b : {&coeff, &dn, &ds, &dw, &de}) {
      rt.host_register(b->host());
    }
    report.times.gpu_init_s = timer.lap();
  }

  img.h2d(rt);
  for (std::uint32_t it = 0; it < cfg.iterations; ++it) {
    const sim::Picos iter_start = rt.system().now();
    const sim::Picos ctx_before = rt.system().context_init_charged();
    cache::KernelTraffic iter_traffic;

    auto rec0 = rt.launch("srad.reduce", static_cast<double>(n) * 3, [&] {
      auto j = rt.device_span<float>(img.device());
      auto out = rt.device_span<double>(sums);
      double sum = 0, sum2 = 0;
      const float* jv = j.load_run(0, n);
      for (std::uint64_t i = 0; i < n; ++i) {
        const float v = jv[i];
        sum += v;
        sum2 += static_cast<double>(v) * v;
      }
      out.store(0, sum);
      out.store(1, sum2);
    });
    iter_traffic += rec0.traffic;

    float q0sqr;
    {
      auto s = rt.host_span<double>(sums);
      const double sum = s.load(0);
      const double sum2 = s.load(1);
      const double mean = sum / static_cast<double>(n);
      const double var = sum2 / static_cast<double>(n) - mean * mean;
      q0sqr = static_cast<float>(var / (mean * mean));
    }

    auto rec1 = rt.launch("srad.srad1", static_cast<double>(n) * 20, [&] {
      auto jc_s = rt.device_span<float>(img.device());
      auto jn_s = rt.device_span<float>(img.device());
      auto js_s = rt.device_span<float>(img.device());
      auto dn_w = rt.device_span<float>(dn.device());
      auto ds_w = rt.device_span<float>(ds.device());
      auto dw_w = rt.device_span<float>(dw.device());
      auto de_w = rt.device_span<float>(de.device());
      auto c_w = rt.device_span<float>(coeff.device());
      for (std::uint32_t r = 0; r < cfg.rows; ++r) {
        const std::uint64_t rn = std::uint64_t{r == 0 ? 0u : r - 1} * cfg.cols;
        const std::uint64_t rs =
            std::uint64_t{r == cfg.rows - 1 ? r : r + 1} * cfg.cols;
        const std::uint64_t rc = std::uint64_t{r} * cfg.cols;
        float west = jc_s.load(rc);
        for (std::uint32_t cc = 0; cc < cfg.cols; ++cc) {
          const std::uint64_t idx = rc + cc;
          const float jc = jc_s.load(idx);
          const float e = cc == cfg.cols - 1 ? jc : jc_s.load(idx + 1);
          const float vdn = jn_s.load(rn + cc) - jc;
          const float vds = js_s.load(rs + cc) - jc;
          const float vdw = west - jc;
          const float vde = e - jc;
          dn_w.store(idx, vdn);
          ds_w.store(idx, vds);
          dw_w.store(idx, vdw);
          de_w.store(idx, vde);
          const float g2 =
              (vdn * vdn + vds * vds + vdw * vdw + vde * vde) / (jc * jc);
          const float l = (vdn + vds + vdw + vde) / jc;
          const float num = 0.5f * g2 - (1.0f / 16.0f) * l * l;
          const float den = 1.0f + 0.25f * l;
          const float qsqr = num / (den * den);
          float cv = 1.0f / (1.0f + (qsqr - q0sqr) / (q0sqr * (1.0f + q0sqr)));
          cv = cv < 0.0f ? 0.0f : (cv > 1.0f ? 1.0f : cv);
          c_w.store(idx, cv);
          west = jc;
        }
      }
    });
    iter_traffic += rec1.traffic;

    auto rec2 = rt.launch("srad.srad2", static_cast<double>(n) * 10, [&] {
      auto j_s = rt.device_span<float>(img.device());
      auto dn_r = rt.device_span<float>(dn.device());
      auto ds_r = rt.device_span<float>(ds.device());
      auto dw_r = rt.device_span<float>(dw.device());
      auto de_r = rt.device_span<float>(de.device());
      auto cc_s = rt.device_span<float>(coeff.device());
      auto cs_s = rt.device_span<float>(coeff.device());
      for (std::uint32_t r = 0; r < cfg.rows; ++r) {
        const std::uint64_t rs =
            std::uint64_t{r == cfg.rows - 1 ? r : r + 1} * cfg.cols;
        const std::uint64_t rc = std::uint64_t{r} * cfg.cols;
        for (std::uint32_t cc = 0; cc < cfg.cols; ++cc) {
          const std::uint64_t idx = rc + cc;
          const float c_here = cc_s.load(idx);
          const float c_south = cs_s.load(rs + cc);
          const float c_east =
              cc == cfg.cols - 1 ? c_here : cc_s.load(idx + 1);
          const float div = c_south * ds_r.load(idx) + c_here * dn_r.load(idx) +
                            c_east * de_r.load(idx) + c_here * dw_r.load(idx);
          j_s.store(idx, j_s.load(idx) + 0.25f * cfg.lambda * div);
        }
      }
    });
    iter_traffic += rec2.traffic;

    rt.device_synchronize();
    // Context init fires inside iteration 1's first kernel in the system
    // version; report per-iteration times net of it (paper Figure 10
    // compares steady-state iteration behaviour).
    const sim::Picos ctx_delta = rt.system().context_init_charged() - ctx_before;
    report.iteration_s.push_back(
        sim::to_seconds(rt.system().now() - iter_start - ctx_delta));
    report.iteration_traffic.push_back(iter_traffic);
    report.compute_traffic += iter_traffic;
    co_yield 0;
  }
  img.d2h(rt);
  report.times.compute_s = timer.lap();
  co_yield 0;

  {
    Digest d;
    const auto* data = reinterpret_cast<const float*>(img.host().host);
    for (std::uint64_t i = 0; i < n; i += 101) {
      d.add_u64(static_cast<std::uint64_t>(quantize(data[i], 1e4)));
    }
    report.checksum = d.value();
  }

  timer.lap();
  img.free(rt);
  coeff.free(rt);
  dn.free(rt);
  ds.free(rt);
  dw.free(rt);
  de.free(rt);
  rt.free(sums);
  report.times.dealloc_s = timer.lap();
  report.times.context_s = timer.context_s();
  co_return report;
}

std::uint64_t srad_reference_checksum(const SradConfig& cfg) {
  const std::uint64_t n = std::uint64_t{cfg.rows} * cfg.cols;
  std::vector<float> J(n), c(n), dN(n), dS(n), dW(n), dE(n);
  sim::Rng rng{cfg.seed};
  for (std::uint64_t i = 0; i < n; ++i) J[i] = init_pixel(rng);
  for (std::uint32_t it = 0; it < cfg.iterations; ++it) {
    srad_iteration_ref(J, c, dN, dS, dW, dE, cfg.rows, cfg.cols, cfg.lambda);
  }
  Digest d;
  for (std::uint64_t i = 0; i < n; i += 101) {
    d.add_u64(static_cast<std::uint64_t>(quantize(J[i], 1e4)));
  }
  return d.value();
}

}  // namespace ghum::apps
