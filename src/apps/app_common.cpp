#include "apps/app_common.hpp"

namespace ghum::apps {

std::string_view to_string(MemMode m) noexcept {
  switch (m) {
    case MemMode::kExplicit: return "explicit";
    case MemMode::kManaged: return "managed";
    case MemMode::kSystem: return "system";
  }
  return "unknown";
}

AppReport drive(AppCoro coro) {
  while (coro.step()) {
  }
  return std::move(coro.report());
}

UnifiedBuffer UnifiedBuffer::create(runtime::Runtime& rt, MemMode mode,
                                    std::uint64_t bytes, std::string label) {
  UnifiedBuffer ub;
  switch (mode) {
    case MemMode::kExplicit:
      ub.unified_ = false;
      ub.host_ = rt.malloc_system(bytes, label + ".host");
      ub.dev_ = rt.malloc_device(bytes, label + ".dev");
      break;
    case MemMode::kManaged:
      ub.unified_ = true;
      ub.buf_ = rt.malloc_managed(bytes, label);
      break;
    case MemMode::kSystem:
      ub.unified_ = true;
      ub.buf_ = rt.malloc_system(bytes, label);
      break;
  }
  return ub;
}

void UnifiedBuffer::h2d(runtime::Runtime& rt) { h2d(rt, host().bytes); }
void UnifiedBuffer::d2h(runtime::Runtime& rt) { d2h(rt, host().bytes); }

void UnifiedBuffer::h2d(runtime::Runtime& rt, std::uint64_t bytes) {
  if (unified_) return;
  rt.memcpy(dev_, host_, bytes, runtime::CopyKind::kHostToDevice);
}

void UnifiedBuffer::d2h(runtime::Runtime& rt, std::uint64_t bytes) {
  if (unified_) return;
  rt.memcpy(host_, dev_, bytes, runtime::CopyKind::kDeviceToHost);
}

void UnifiedBuffer::free(runtime::Runtime& rt) {
  if (unified_) {
    if (buf_.valid()) rt.free(buf_);
  } else {
    if (host_.valid()) rt.free(host_);
    if (dev_.valid()) rt.free(dev_);
  }
}

void Digest::add_bytes(const void* p, std::size_t n) noexcept {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h_ ^= b[i];
    h_ *= 0x100000001b3ULL;
  }
}

}  // namespace ghum::apps
