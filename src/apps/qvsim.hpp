#pragma once

#include <array>
#include <complex>
#include <vector>

#include "apps/app_common.hpp"

/// \file qvsim.hpp
/// Quantum Volume statevector simulator — the paper's sixth application
/// (Table 2): a Qiskit-Aer-style statevector simulation of Quantum Volume
/// circuits. The statevector needs 8 * 2^Nqubits bytes (16 * 2^N here: we
/// keep complex<double> amplitudes like Aer's double-precision backend);
/// at the paper's scale 33 qubits fit GPU memory and 34 oversubscribe it
/// by ~130 %. At the reproduction's scaled HBM (24 MiB for the QV benches)
/// the same boundary sits at 20/21 qubits (DESIGN.md Section 4).
///
/// The circuit alternates layers of random two-qubit unitaries over a
/// random qubit pairing (depth is configurable; real QV uses depth =
/// Nqubits — the memory behaviour per layer is identical, so the scaled
/// default keeps runs short).
///
/// The statevector is initialized *on the GPU* (|0...0> write pass), which
/// is the paper's GPU-side first-touch scenario (Section 5.1.2, Figure 9).

namespace ghum::apps {

using amp_t = std::complex<double>;

struct GateSpec {
  std::uint32_t p = 0;  ///< low qubit
  std::uint32_t q = 1;  ///< high qubit (p < q)
  std::array<amp_t, 16> u{};  ///< row-major 4x4 unitary
};

struct QvConfig {
  std::uint32_t qubits = 16;
  std::uint32_t depth = 3;
  std::uint64_t seed = 47;
  /// Managed-memory prefetch optimization of Section 7 / Figure 12:
  /// cudaMemPrefetchAsync the statevector before every gate kernel.
  bool prefetch_opt = false;
  /// Double-buffer the explicit chunk-exchange pipeline with async copies
  /// on streams (copy/compute overlap, as the real Aer backend does).
  /// bench_ablation_pipeline quantifies the difference.
  bool pipelined = true;
  /// Evaluate the QV protocol's heavy-output probability after the circuit
  /// (readout pass over the statevector; reported in
  /// AppReport::aux_metric).
  bool measure_hop = false;
};

/// Deterministic circuit shared by the simulated run and the reference.
[[nodiscard]] std::vector<GateSpec> qv_circuit(const QvConfig& cfg);

AppReport run_qvsim(runtime::Runtime& rt, MemMode mode, const QvConfig& cfg);

/// Step-yielding form of run_qvsim (suspends per phase and gate; the
/// chunk-exchange path additionally suspends per chunk-group sweep).
[[nodiscard]] AppCoro qvsim_steps(runtime::Runtime& rt, MemMode mode, QvConfig cfg);

/// The Quantum Volume protocol's success metric: the probability mass of
/// the *heavy outputs* — bitstrings whose ideal probability exceeds the
/// median (Cross et al.). Runs the circuit under \p mode, computes the
/// per-output probabilities with a GPU measurement kernel, and evaluates
/// the heavy-output probability on the host. Random circuits converge to
/// ~0.85 asymptotically; a passing QV run needs > 2/3.
[[nodiscard]] double qv_heavy_output_probability(runtime::Runtime& rt, MemMode mode,
                                                 const QvConfig& cfg);

[[nodiscard]] std::uint64_t qvsim_reference_checksum(const QvConfig& cfg);

}  // namespace ghum::apps
