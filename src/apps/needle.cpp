#include "apps/needle.hpp"

#include <algorithm>
#include <vector>

namespace ghum::apps {

namespace {

constexpr std::uint32_t kTile = 16;

/// Rodinia uses the BLOSUM62 matrix over random sequences; a deterministic
/// per-cell hash preserves the data-dependent access behaviour without
/// carrying the table around.
int similarity(std::uint32_t i, std::uint32_t j, std::uint64_t seed) {
  std::uint64_t x = (std::uint64_t{i} << 32) ^ j ^ seed;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<int>(x % 21) - 10;  // BLOSUM-like range [-10, 10]
}

}  // namespace

AppReport run_needle(runtime::Runtime& rt, MemMode mode, const NeedleConfig& cfg) {
  return drive(needle_steps(rt, mode, cfg));
}

AppCoro needle_steps(runtime::Runtime& rt, MemMode mode, NeedleConfig cfg) {
  if (cfg.n == 0 || cfg.n % kTile != 0) {
    throw std::invalid_argument{"needle: n must be a positive multiple of 16"};
  }
  const std::uint32_t dim = cfg.n + 1;
  const std::uint64_t cells = std::uint64_t{dim} * dim;

  AppReport report;
  report.app = "needle";
  report.mode = mode;
  PhaseTimer timer{rt};

  UnifiedBuffer score =
      UnifiedBuffer::create(rt, mode, cells * sizeof(int), "needle.score");
  UnifiedBuffer ref =
      UnifiedBuffer::create(rt, mode, cells * sizeof(int), "needle.ref");
  report.times.alloc_s = timer.lap();
  co_yield 0;

  rt.host_phase("needle.cpu_init", static_cast<double>(cells) * 3, [&] {
    auto s = rt.host_span<int>(score.host());
    auto r = rt.host_span<int>(ref.host());
    // Rodinia zeroes the whole score matrix on the CPU before setting the
    // boundary conditions, then fills the reference matrix — so every page
    // of both buffers is CPU-first-touched.
    for (std::uint32_t i = 0; i < dim; ++i) {
      const std::uint64_t row = std::uint64_t{i} * dim;
      int* srow = s.store_run(row, dim);
      int* rrow = r.store_run(row, dim);
      std::fill_n(srow, dim, 0);
      for (std::uint32_t j = 0; j < dim; ++j) {
        rrow[j] = i == 0 || j == 0 ? 0 : similarity(i, j, cfg.seed);
      }
      s.store(row, -static_cast<int>(i) * cfg.penalty);
    }
    for (std::uint32_t j = 0; j < dim; ++j) {
      s.store(j, -static_cast<int>(j) * cfg.penalty);
    }
  });
  report.times.cpu_init_s = timer.lap();
  co_yield 0;

  score.h2d(rt);
  ref.h2d(rt);
  const std::uint32_t tiles = cfg.n / kTile;
  // Wavefront over tile anti-diagonals: forward sweep covers the full
  // matrix (Rodinia splits the same traversal into two kernel families).
  for (std::uint32_t d = 0; d < 2 * tiles - 1; ++d) {
    const std::uint32_t tlo = d < tiles ? 0 : d - tiles + 1;
    const std::uint32_t thi = std::min(d, tiles - 1);
    const double work = static_cast<double>(thi - tlo + 1) * kTile * kTile * 6;
    auto record = rt.launch("needle.diag", work, [&] {
      auto north = rt.device_span<int>(score.device());
      auto out = rt.device_span<int>(score.device());
      auto edge = rt.device_span<int>(score.device());
      auto sim_m = rt.device_span<int>(ref.device());
      for (std::uint32_t ti = tlo; ti <= thi; ++ti) {
        const std::uint32_t tj = d - ti;
        // Tile spans rows [1 + ti*kTile, ...), cols [1 + tj*kTile, ...).
        for (std::uint32_t r = 1 + ti * kTile; r < 1 + (ti + 1) * kTile; ++r) {
          const std::uint64_t row = std::uint64_t{r} * dim;
          const std::uint64_t prow = row - dim;
          const std::uint32_t c0 = 1 + tj * kTile;
          // Boundary loads for the sliding window.
          int nw = north.load(prow + c0 - 1);
          int west = edge.load(row + c0 - 1);
          for (std::uint32_t c = c0; c < c0 + kTile; ++c) {
            const int up = north.load(prow + c);
            const int v = std::max(std::max(up - cfg.penalty, west - cfg.penalty),
                                   nw + sim_m.load(row + c));
            out.store(row + c, v);
            nw = up;
            west = v;
          }
        }
      }
    });
    report.compute_traffic += record.traffic;
    co_yield 0;
  }
  rt.device_synchronize();
  score.d2h(rt);
  report.times.compute_s = timer.lap();
  co_yield 0;

  {
    Digest dg;
    const auto* data = reinterpret_cast<const int*>(score.host().host);
    // Alignment score plus a sparse sample of the DP matrix.
    dg.add_u64(static_cast<std::uint64_t>(data[cells - 1]));
    for (std::uint64_t i = 0; i < cells; i += 4099) {
      dg.add_u64(static_cast<std::uint64_t>(data[i]));
    }
    report.checksum = dg.value();
  }

  timer.lap();
  score.free(rt);
  ref.free(rt);
  report.times.dealloc_s = timer.lap();
  report.times.context_s = timer.context_s();
  co_return report;
}

std::uint64_t needle_reference_checksum(const NeedleConfig& cfg) {
  const std::uint32_t dim = cfg.n + 1;
  const std::uint64_t cells = std::uint64_t{dim} * dim;
  std::vector<int> s(cells), r(cells);
  for (std::uint32_t i = 0; i < dim; ++i) {
    const std::uint64_t row = std::uint64_t{i} * dim;
    for (std::uint32_t j = 0; j < dim; ++j) {
      r[row + j] = i == 0 || j == 0 ? 0 : similarity(i, j, cfg.seed);
    }
    s[row] = -static_cast<int>(i) * cfg.penalty;
  }
  for (std::uint32_t j = 0; j < dim; ++j) s[j] = -static_cast<int>(j) * cfg.penalty;

  for (std::uint32_t i = 1; i < dim; ++i) {
    const std::uint64_t row = std::uint64_t{i} * dim;
    for (std::uint32_t j = 1; j < dim; ++j) {
      s[row + j] = std::max(std::max(s[row - dim + j] - cfg.penalty,
                                     s[row + j - 1] - cfg.penalty),
                            s[row - dim + j - 1] + r[row + j]);
    }
  }
  Digest dg;
  dg.add_u64(static_cast<std::uint64_t>(s[cells - 1]));
  for (std::uint64_t i = 0; i < cells; i += 4099) {
    dg.add_u64(static_cast<std::uint64_t>(s[i]));
  }
  return dg.value();
}

}  // namespace ghum::apps
