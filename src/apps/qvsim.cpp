#include "apps/qvsim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace ghum::apps {

namespace {

/// Random 4x4 unitary: Gram-Schmidt orthonormalization of a random complex
/// matrix (Haar-ish; exact distribution is irrelevant, unitarity is not).
std::array<amp_t, 16> random_unitary(sim::Rng& rng) {
  std::array<amp_t, 16> m;
  for (auto& v : m) {
    v = amp_t{rng.next_double(-1.0, 1.0), rng.next_double(-1.0, 1.0)};
  }
  // Orthonormalize rows.
  for (int r = 0; r < 4; ++r) {
    for (int prev = 0; prev < r; ++prev) {
      amp_t dot{};
      for (int c = 0; c < 4; ++c) dot += m[r * 4 + c] * std::conj(m[prev * 4 + c]);
      for (int c = 0; c < 4; ++c) m[r * 4 + c] -= dot * m[prev * 4 + c];
    }
    double norm = 0;
    for (int c = 0; c < 4; ++c) norm += std::norm(m[r * 4 + c]);
    norm = std::sqrt(norm);
    for (int c = 0; c < 4; ++c) m[r * 4 + c] /= norm;
  }
  return m;
}

/// Scatters the group index \p g into a statevector index with zero bits
/// at qubit positions p and q (p < q).
inline std::uint64_t spread_index(std::uint64_t g, std::uint32_t p, std::uint32_t q) {
  const std::uint64_t low = g & ((1ull << p) - 1);
  const std::uint64_t mid = (g >> p) & ((1ull << (q - 1 - p)) - 1);
  const std::uint64_t high = g >> (q - 1);
  return low | (mid << (p + 1)) | (high << (q + 1));
}

inline void apply_u(const std::array<amp_t, 16>& u, amp_t& a0, amp_t& a1, amp_t& a2,
                    amp_t& a3) {
  const amp_t b0 = u[0] * a0 + u[1] * a1 + u[2] * a2 + u[3] * a3;
  const amp_t b1 = u[4] * a0 + u[5] * a1 + u[6] * a2 + u[7] * a3;
  const amp_t b2 = u[8] * a0 + u[9] * a1 + u[10] * a2 + u[11] * a3;
  const amp_t b3 = u[12] * a0 + u[13] * a1 + u[14] * a2 + u[15] * a3;
  a0 = b0;
  a1 = b1;
  a2 = b2;
  a3 = b3;
}

/// Heavy-output probability from a host-readable statevector buffer: the
/// readout pass is accounted (host span), the order statistics are meta.
double measure_hop(runtime::Runtime& rt, const core::Buffer& host_buf,
                   std::uint64_t n) {
  std::vector<double> probs(n);
  (void)rt.host_phase("qv.measure", static_cast<double>(n) * 3, [&] {
    runtime::Span<amp_t> s{rt.system(), host_buf, mem::Node::kCpu};
    const amp_t* sv = s.load_run(0, n);
    for (std::uint64_t i = 0; i < n; ++i) probs[i] = std::norm(sv[i]);
  });
  std::vector<double> sorted = probs;
  const auto mid = sorted.begin() + static_cast<std::ptrdiff_t>(n / 2);
  std::nth_element(sorted.begin(), mid, sorted.end());
  const double median = *mid;
  double heavy = 0;
  for (const double p : probs) {
    if (p > median) heavy += p;
  }
  return heavy;
}

std::uint64_t digest_statevector(const amp_t* sv, std::uint64_t n) {
  Digest d;
  double norm = 0;
  for (std::uint64_t i = 0; i < n; ++i) norm += std::norm(sv[i]);
  d.add_u64(static_cast<std::uint64_t>(quantize(norm, 1e9)));
  for (std::uint64_t i = 0; i < n; i += (n / 64) + 1) {
    d.add_u64(static_cast<std::uint64_t>(quantize(sv[i].real(), 1e7)));
    d.add_u64(static_cast<std::uint64_t>(quantize(sv[i].imag(), 1e7)));
  }
  return d.value();
}

}  // namespace

std::vector<GateSpec> qv_circuit(const QvConfig& cfg) {
  if (cfg.qubits < 2) throw std::invalid_argument{"qvsim: need at least 2 qubits"};
  sim::Rng rng{cfg.seed};
  std::vector<GateSpec> gates;
  std::vector<std::uint32_t> perm(cfg.qubits);
  for (std::uint32_t layer = 0; layer < cfg.depth; ++layer) {
    for (std::uint32_t i = 0; i < cfg.qubits; ++i) perm[i] = i;
    for (std::uint32_t i = cfg.qubits - 1; i > 0; --i) {
      const auto j = static_cast<std::uint32_t>(rng.next_below(i + 1));
      std::swap(perm[i], perm[j]);
    }
    for (std::uint32_t k = 0; k + 1 < cfg.qubits; k += 2) {
      GateSpec g;
      g.p = std::min(perm[k], perm[k + 1]);
      g.q = std::max(perm[k], perm[k + 1]);
      g.u = random_unitary(rng);
      gates.push_back(g);
    }
  }
  return gates;
}

namespace {

/// Chunk-exchange pipeline for the explicit version when the statevector
/// exceeds GPU memory — Qiskit-Aer's behaviour that the paper describes in
/// Section 3.1 ("an explicit exchange of chunks between CPU and GPU in
/// case the circuit's memory requirement exceeds the available memory on
/// the GPU"). The statevector lives in host memory; for each gate the
/// pipeline stages the chunk groups the gate couples (1, 2 or 4 chunks,
/// depending on how many gate qubits exceed the chunk width) through
/// device buffers.
AppCoro qvsim_explicit_chunked_steps(runtime::Runtime& rt, QvConfig cfg,
                                     AppReport report, PhaseTimer& timer,
                                     core::Buffer host_sv) {
  const std::uint32_t nq = cfg.qubits;
  const std::uint64_t n = 1ull << nq;

  // Largest chunk width such that every staged chunk buffer fits in free
  // HBM (two slot sets when double-buffering; at least chunk width 2 so
  // two-qubit gates always fit inside one chunk group).
  const std::uint32_t sets = cfg.pipelined ? 2 : 1;
  std::uint32_t c = nq - 2;
  while (c > 2 &&
         sets * 4 * (sizeof(amp_t) << c) > rt.system().gpu_free_bytes() * 9 / 10) {
    --c;
  }
  const std::uint64_t chunk_amps = 1ull << c;
  const std::uint64_t chunk_bytes = chunk_amps * sizeof(amp_t);

  core::Buffer slots[2][4];
  for (std::uint32_t s = 0; s < sets; ++s) {
    for (int m = 0; m < 4; ++m) {
      slots[s][m] = rt.malloc_device(
          chunk_bytes, "qv.chunk" + std::to_string(s) + "." + std::to_string(m));
    }
  }
  runtime::Stream h2d_stream[2];
  runtime::Stream d2h_stream[2];
  report.times.alloc_s += timer.lap();
  co_yield 0;

  // |0...0> initialized on the host (the chunked backend's statevector is
  // host-resident between stages).
  rt.host_phase("qv.init.host", static_cast<double>(n), [&] {
    auto a = rt.host_span<amp_t>(host_sv);
    a.store(0, amp_t{1.0, 0.0});
    amp_t* av = a.store_run(1, n - 1);
    std::fill_n(av, n - 1, amp_t{});
  });
  report.times.gpu_init_s = timer.lap();
  co_yield 0;

  const std::vector<GateSpec> gates = qv_circuit(cfg);
  for (const GateSpec& g : gates) {
    const sim::Picos gate_start = rt.system().now();
    // Gate qubits above the chunk width couple distinct chunks.
    std::uint32_t hb[2];
    std::uint32_t k = 0;
    if (g.p >= c) hb[k++] = g.p - c;
    if (g.q >= c) hb[k++] = g.q - c;
    const std::uint32_t free_low = c - (2 - k);
    const std::uint64_t kernel_groups = 1ull << free_low;
    const std::uint64_t group_count = 1ull << (nq - c - k);
    cache::KernelTraffic gate_traffic;

    const std::uint32_t members = 1u << k;
    // Member chunk ids of the group with high index \p ghigh.
    auto compute_members = [&](std::uint64_t ghigh, std::uint64_t out[4]) {
      // Chunk-index with zeros at the coupled bit positions.
      std::uint64_t base_chunk = ghigh;
      for (std::uint32_t b = 0; b < k; ++b) {
        const std::uint64_t low = base_chunk & ((1ull << hb[b]) - 1);
        base_chunk = ((base_chunk >> hb[b]) << (hb[b] + 1)) | low;
      }
      for (std::uint32_t m = 0; m < members; ++m) {
        std::uint64_t idx = base_chunk;
        if (k >= 1 && (m & 1u)) idx |= 1ull << hb[0];
        if (k >= 2 && (m & 2u)) idx |= 1ull << hb[1];
        out[m] = idx;
      }
    };
    auto stage_h2d = [&](std::uint64_t ghigh, std::uint32_t set) {
      std::uint64_t chunks[4];
      compute_members(ghigh, chunks);
      for (std::uint32_t m = 0; m < members; ++m) {
        rt.memcpy_async(slots[set][m], host_sv, chunk_bytes,
                        runtime::CopyKind::kHostToDevice, h2d_stream[set], 0,
                        chunks[m] * chunk_bytes);
      }
    };

    for (std::uint64_t ghigh = 0; ghigh < group_count; ++ghigh) {
      const std::uint32_t set = static_cast<std::uint32_t>(ghigh % sets);
      if (!cfg.pipelined) {
        // Serial staging: wait for the previous writeback, then load.
        rt.stream_synchronize(d2h_stream[set]);
        stage_h2d(ghigh, set);
      } else if (ghigh == 0) {
        stage_h2d(0, 0);  // pipeline prologue
      }
      rt.stream_synchronize(h2d_stream[set]);

      std::uint64_t member_chunk[4];
      compute_members(ghigh, member_chunk);
      auto record = rt.launch(
          "qv.gate.chunked", static_cast<double>(kernel_groups * members) * 120,
          [&] {
            runtime::Span<amp_t> spans[4] = {
                {rt.system(), slots[set][0], mem::Node::kGpu},
                {rt.system(), slots[set][1], mem::Node::kGpu},
                {rt.system(), slots[set][2], mem::Node::kGpu},
                {rt.system(), slots[set][3], mem::Node::kGpu},
            };
            auto slot_of = [&](std::uint64_t chunk) -> runtime::Span<amp_t>& {
              for (std::uint32_t m = 0; m < members; ++m) {
                if (member_chunk[m] == chunk) return spans[m];
              }
              throw std::logic_error{"qv chunked: index outside staged chunks"};
            };
            for (std::uint64_t low = 0; low < kernel_groups; ++low) {
              const std::uint64_t grp = low | (ghigh << free_low);
              const std::uint64_t i00 = spread_index(grp, g.p, g.q);
              const std::uint64_t idx[4] = {i00, i00 | (1ull << g.p),
                                            i00 | (1ull << g.q),
                                            i00 | (1ull << g.p) | (1ull << g.q)};
              amp_t a[4];
              runtime::Span<amp_t>* sp[4];
              for (int j = 0; j < 4; ++j) {
                sp[j] = &slot_of(idx[j] >> c);
                a[j] = sp[j]->load(idx[j] & (chunk_amps - 1));
              }
              apply_u(g.u, a[0], a[1], a[2], a[3]);
              for (int j = 0; j < 4; ++j) {
                sp[j]->store(idx[j] & (chunk_amps - 1), a[j]);
              }
            }
          });
      gate_traffic += record.traffic;
      for (std::uint32_t m = 0; m < members; ++m) {
        rt.memcpy_async(host_sv, slots[set][m], chunk_bytes,
                        runtime::CopyKind::kDeviceToHost, d2h_stream[set],
                        member_chunk[m] * chunk_bytes, 0);
      }
      if (cfg.pipelined && ghigh + 1 < group_count) {
        // Prefetch the next group into the other slot set while this
        // group's writeback drains (double buffering).
        const auto nset = static_cast<std::uint32_t>((ghigh + 1) % sets);
        rt.stream_synchronize(d2h_stream[nset]);  // slot reuse hazard
        stage_h2d(ghigh + 1, nset);
      }
    }
    // Gates touch overlapping chunks: all writebacks must land before the
    // next gate stages its inputs.
    for (std::uint32_t s = 0; s < sets; ++s) rt.stream_synchronize(d2h_stream[s]);
    report.iteration_s.push_back(sim::to_seconds(rt.system().now() - gate_start));
    report.iteration_traffic.push_back(gate_traffic);
    report.compute_traffic += gate_traffic;
    co_yield 0;
  }
  rt.device_synchronize();
  report.times.compute_s = timer.lap();
  co_yield 0;

  report.checksum =
      digest_statevector(reinterpret_cast<const amp_t*>(host_sv.host), n);
  if (cfg.measure_hop) report.aux_metric = measure_hop(rt, host_sv, n);

  timer.lap();
  for (std::uint32_t s = 0; s < sets; ++s) {
    for (auto& slot : slots[s]) rt.free(slot);
  }
  rt.free(host_sv);
  report.times.dealloc_s = timer.lap();
  report.times.context_s = timer.context_s();
  co_return report;
}

}  // namespace

AppReport run_qvsim(runtime::Runtime& rt, MemMode mode, const QvConfig& cfg) {
  return drive(qvsim_steps(rt, mode, cfg));
}

AppCoro qvsim_steps(runtime::Runtime& rt, MemMode mode, QvConfig cfg) {
  const std::uint64_t n = 1ull << cfg.qubits;
  const std::uint64_t bytes = n * sizeof(amp_t);

  AppReport report;
  report.app = "qvsim";
  report.mode = mode;
  PhaseTimer timer{rt};

  if (mode == MemMode::kExplicit && bytes + (4u << 20) > rt.system().gpu_free_bytes()) {
    // The statevector does not fit: Aer's chunk-exchange pipeline. The
    // host statevector is pinned so the chunk staging runs at full
    // NVLink-C2C bandwidth — this is the "sophisticated data movement
    // pipeline" whose performance the paper calls ideal (Section 4).
    core::Buffer host_sv = rt.malloc_host(bytes, "qv.statevector.host");
    report.times.alloc_s = timer.lap();
    // Pump the chunk-exchange pipeline as a nested coroutine so its
    // per-gate suspension points surface through this one.
    AppCoro inner = qvsim_explicit_chunked_steps(rt, cfg, std::move(report),
                                                 timer, host_sv);
    while (inner.step()) co_yield 0;
    co_return std::move(inner.report());
  }

  const std::vector<GateSpec> gates = qv_circuit(cfg);

  // Qiskit-Aer keeps the statevector on the device; the in-memory explicit
  // version is cudaMalloc-only (no host mirror needed until readout). We
  // use UnifiedBuffer so the readout path is uniform across modes.
  UnifiedBuffer sv = UnifiedBuffer::create(rt, mode, bytes, "qv.statevector");
  report.times.alloc_s = timer.lap();
  co_yield 0;

  // --- GPU-side initialization: |0...0> ---------------------------------------
  auto rec_init = rt.launch("qv.init", static_cast<double>(n), [&] {
    auto a = rt.device_span<amp_t>(sv.device());
    a.store(0, amp_t{1.0, 0.0});
    amp_t* av = a.store_run(1, n - 1);
    std::fill_n(av, n - 1, amp_t{});
  });
  report.times.gpu_init_s = timer.lap();
  (void)rec_init;
  co_yield 0;

  // --- compute: the QV circuit --------------------------------------------------
  const std::uint64_t groups = n / 4;
  for (std::size_t gi = 0; gi < gates.size(); ++gi) {
    const GateSpec& g = gates[gi];
    if (cfg.prefetch_opt && mode != MemMode::kExplicit) {
      rt.mem_prefetch(sv.device(), 0, bytes, mem::Node::kGpu);
    }
    const std::uint64_t off01 = 1ull << g.p;
    const std::uint64_t off10 = 1ull << g.q;
    auto record =
        rt.launch("qv.gate", static_cast<double>(groups) * 120, [&] {
          auto s00 = rt.device_span<amp_t>(sv.device());
          auto s01 = rt.device_span<amp_t>(sv.device(), off01);
          auto s10 = rt.device_span<amp_t>(sv.device(), off10);
          auto s11 = rt.device_span<amp_t>(sv.device(), off01 + off10);
          for (std::uint64_t grp = 0; grp < groups; ++grp) {
            const std::uint64_t i00 = spread_index(grp, g.p, g.q);
            amp_t a0 = s00.load(i00);
            amp_t a1 = s01.load(i00);
            amp_t a2 = s10.load(i00);
            amp_t a3 = s11.load(i00);
            apply_u(g.u, a0, a1, a2, a3);
            s00.store(i00, a0);
            s01.store(i00, a1);
            s10.store(i00, a2);
            s11.store(i00, a3);
          }
        });
    report.iteration_s.push_back(sim::to_seconds(record.duration));
    report.iteration_traffic.push_back(record.traffic);
    report.compute_traffic += record.traffic;
    co_yield 0;
  }
  rt.device_synchronize();
  sv.d2h(rt);
  report.times.compute_s = timer.lap();
  co_yield 0;

  report.checksum =
      digest_statevector(reinterpret_cast<const amp_t*>(sv.host().host), n);
  if (cfg.measure_hop) report.aux_metric = measure_hop(rt, sv.host(), n);

  timer.lap();
  sv.free(rt);
  report.times.dealloc_s = timer.lap();
  report.times.context_s = timer.context_s();
  co_return report;
}

double qv_heavy_output_probability(runtime::Runtime& rt, MemMode mode,
                                   const QvConfig& cfg) {
  QvConfig with_measure = cfg;
  with_measure.measure_hop = true;
  return run_qvsim(rt, mode, with_measure).aux_metric;
}

std::uint64_t qvsim_reference_checksum(const QvConfig& cfg) {
  const std::uint64_t n = 1ull << cfg.qubits;
  std::vector<amp_t> sv(n);
  sv[0] = amp_t{1.0, 0.0};
  for (const GateSpec& g : qv_circuit(cfg)) {
    const std::uint64_t off01 = 1ull << g.p;
    const std::uint64_t off10 = 1ull << g.q;
    for (std::uint64_t grp = 0; grp < n / 4; ++grp) {
      const std::uint64_t i00 = spread_index(grp, g.p, g.q);
      apply_u(g.u, sv[i00], sv[i00 + off01], sv[i00 + off10],
              sv[i00 + off01 + off10]);
    }
  }
  return digest_statevector(sv.data(), n);
}

}  // namespace ghum::apps
