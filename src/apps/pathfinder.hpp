#pragma once

#include "apps/app_common.hpp"

/// \file pathfinder.hpp
/// PathFinder (Rodinia): dynamic-programming search for the cheapest path
/// through a 2-D grid, processed row by row — the paper's second *regular*
/// pattern representative with CPU-side initialization (Table 2; paper
/// input 100k x 20k, scaled per DESIGN.md Section 4).

namespace ghum::apps {

struct PathfinderConfig {
  std::uint32_t cols = 8192;
  std::uint32_t rows = 1024;
  std::uint64_t seed = 43;
};

AppReport run_pathfinder(runtime::Runtime& rt, MemMode mode,
                         const PathfinderConfig& cfg);

/// Step-yielding form of run_pathfinder (suspends per phase and DP row).
[[nodiscard]] AppCoro pathfinder_steps(runtime::Runtime& rt, MemMode mode,
                                       PathfinderConfig cfg);

[[nodiscard]] std::uint64_t pathfinder_reference_checksum(const PathfinderConfig& cfg);

}  // namespace ghum::apps
