#pragma once

#include "apps/app_common.hpp"

/// \file needle.hpp
/// Needleman-Wunsch (Rodinia "needle"): global sequence alignment via a
/// 2-D dynamic-programming wavefront — the paper's *irregular* pattern
/// representative with CPU-side initialization (Table 2; paper input
/// 32k x 32k, scaled per DESIGN.md Section 4). Kernels sweep anti-diagonals
/// of 16x16 tiles, like the Rodinia CUDA implementation.

namespace ghum::apps {

struct NeedleConfig {
  std::uint32_t n = 2048;      ///< sequence length (matrix is (n+1)^2)
  int penalty = 10;
  std::uint64_t seed = 44;
};

AppReport run_needle(runtime::Runtime& rt, MemMode mode, const NeedleConfig& cfg);

/// Step-yielding form of run_needle (suspends per phase and tile anti-diagonal).
[[nodiscard]] AppCoro needle_steps(runtime::Runtime& rt, MemMode mode,
                                   NeedleConfig cfg);

[[nodiscard]] std::uint64_t needle_reference_checksum(const NeedleConfig& cfg);

}  // namespace ghum::apps
