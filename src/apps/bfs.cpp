#include "apps/bfs.hpp"

#include <algorithm>
#include <vector>

namespace ghum::apps {

namespace {

struct Csr {
  std::vector<int> row_offsets;  // nodes + 1
  std::vector<int> col_idx;
};

/// Ring backbone plus random shortcut edges: connected, small diameter,
/// degree ~ avg_degree — a classic small-world-ish instance that produces
/// the multi-level frontier expansion BFS benchmarks rely on.
Csr generate_small_world(const BfsConfig& cfg) {
  sim::Rng rng{cfg.seed};
  Csr g;
  g.row_offsets.resize(cfg.nodes + 1);
  g.col_idx.reserve(std::uint64_t{cfg.nodes} * cfg.avg_degree);
  for (std::uint32_t v = 0; v < cfg.nodes; ++v) {
    g.row_offsets[v] = static_cast<int>(g.col_idx.size());
    g.col_idx.push_back(static_cast<int>((v + 1) % cfg.nodes));
    for (std::uint32_t e = 1; e < cfg.avg_degree; ++e) {
      g.col_idx.push_back(static_cast<int>(rng.next_below(cfg.nodes)));
    }
  }
  g.row_offsets[cfg.nodes] = static_cast<int>(g.col_idx.size());
  return g;
}

/// R-MAT recursive-quadrant edge sampler (a=0.57, b=0.19, c=0.19, d=0.05):
/// power-law degrees, hub-dominated scatters. A ring backbone is added so
/// every node is reachable and the level structure stays comparable.
Csr generate_rmat(const BfsConfig& cfg) {
  sim::Rng rng{cfg.seed};
  std::uint32_t scale = 0;
  while ((1u << scale) < cfg.nodes) ++scale;
  const std::uint64_t edges = std::uint64_t{cfg.nodes} * (cfg.avg_degree - 1);
  std::vector<std::vector<int>> adj(cfg.nodes);
  for (std::uint32_t v = 0; v < cfg.nodes; ++v) {
    adj[v].push_back(static_cast<int>((v + 1) % cfg.nodes));  // backbone
  }
  for (std::uint64_t e = 0; e < edges; ++e) {
    std::uint64_t src = 0, dst = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.next_double();
      // Quadrant probabilities (0.57, 0.19, 0.19, 0.05).
      const int quad = r < 0.57 ? 0 : (r < 0.76 ? 1 : (r < 0.95 ? 2 : 3));
      src = (src << 1) | static_cast<std::uint64_t>(quad >> 1);
      dst = (dst << 1) | static_cast<std::uint64_t>(quad & 1);
    }
    if (src >= cfg.nodes || dst >= cfg.nodes) continue;  // clip to node count
    adj[src].push_back(static_cast<int>(dst));
  }
  Csr g;
  g.row_offsets.resize(cfg.nodes + 1);
  for (std::uint32_t v = 0; v < cfg.nodes; ++v) {
    g.row_offsets[v] = static_cast<int>(g.col_idx.size());
    g.col_idx.insert(g.col_idx.end(), adj[v].begin(), adj[v].end());
  }
  g.row_offsets[cfg.nodes] = static_cast<int>(g.col_idx.size());
  return g;
}

Csr generate_graph(const BfsConfig& cfg) {
  return cfg.graph == GraphKind::kRmat ? generate_rmat(cfg)
                                       : generate_small_world(cfg);
}

}  // namespace

AppReport run_bfs(runtime::Runtime& rt, MemMode mode, const BfsConfig& cfg) {
  return drive(bfs_steps(rt, mode, cfg));
}

AppCoro bfs_steps(runtime::Runtime& rt, MemMode mode, BfsConfig cfg) {
  const Csr graph = generate_graph(cfg);
  const std::uint64_t n = cfg.nodes;
  const std::uint64_t m = graph.col_idx.size();

  AppReport report;
  report.app = "bfs";
  report.mode = mode;
  PhaseTimer timer{rt};

  UnifiedBuffer row_off =
      UnifiedBuffer::create(rt, mode, (n + 1) * sizeof(int), "bfs.row_off");
  UnifiedBuffer col_idx = UnifiedBuffer::create(rt, mode, m * sizeof(int), "bfs.col");
  UnifiedBuffer cost = UnifiedBuffer::create(rt, mode, n * sizeof(int), "bfs.cost");
  UnifiedBuffer frontier =
      UnifiedBuffer::create(rt, mode, n * sizeof(unsigned char), "bfs.frontier");
  UnifiedBuffer updating =
      UnifiedBuffer::create(rt, mode, n * sizeof(unsigned char), "bfs.updating");
  UnifiedBuffer visited =
      UnifiedBuffer::create(rt, mode, n * sizeof(unsigned char), "bfs.visited");
  // One-int stop flag: pinned zero-copy memory in every mode (as the
  // Rodinia port ends up doing with cudaMallocHost).
  core::Buffer stop_flag = rt.malloc_host(sizeof(int), "bfs.stop");
  report.times.alloc_s = timer.lap();
  co_yield 0;

  rt.host_phase("bfs.cpu_init", static_cast<double>(n + m), [&] {
    auto ro = rt.host_span<int>(row_off.host());
    auto ci = rt.host_span<int>(col_idx.host());
    auto co = rt.host_span<int>(cost.host());
    auto fr = rt.host_span<unsigned char>(frontier.host());
    auto up = rt.host_span<unsigned char>(updating.host());
    auto vi = rt.host_span<unsigned char>(visited.host());
    std::copy_n(graph.row_offsets.data(), n + 1, ro.store_run(0, n + 1));
    std::copy_n(graph.col_idx.data(), m, ci.store_run(0, m));
    int* cov = co.store_run(0, n);
    unsigned char* frv = fr.store_run(0, n);
    unsigned char* upv = up.store_run(0, n);
    unsigned char* viv = vi.store_run(0, n);
    for (std::uint64_t i = 0; i < n; ++i) {
      cov[i] = i == 0 ? 0 : -1;
      frv[i] = i == 0 ? 1 : 0;
      upv[i] = 0;
      viv[i] = i == 0 ? 1 : 0;
    }
  });
  report.times.cpu_init_s = timer.lap();
  co_yield 0;

  row_off.h2d(rt);
  col_idx.h2d(rt);
  cost.h2d(rt);
  frontier.h2d(rt);
  updating.h2d(rt);
  visited.h2d(rt);

  for (std::uint32_t level = 0; level < 1000; ++level) {
    auto rec1 = rt.launch("bfs.expand", static_cast<double>(n + m), [&] {
      auto fr = rt.device_span<unsigned char>(frontier.device());
      auto ro = rt.device_span<int>(row_off.device());
      auto ci = rt.device_span<int>(col_idx.device());
      auto vi = rt.device_span<unsigned char>(visited.device());
      auto co_r = rt.device_span<int>(cost.device());
      auto co_w = rt.device_span<int>(cost.device());
      auto up = rt.device_span<unsigned char>(updating.device());
      for (std::uint64_t v = 0; v < n; ++v) {
        if (fr.load(v) == 0) continue;
        fr.store(v, 0);
        const int base = ro.load(v);
        const int end = ro.load(v + 1);
        const int cv = co_r.load(v);
        for (int e = base; e < end; ++e) {
          const auto t = static_cast<std::uint64_t>(ci.load(e));
          if (vi.load(t) == 0) {
            co_w.store(t, cv + 1);  // scatter: the irregular half of "mixed"
            up.store(t, 1);
          }
        }
      }
    });
    int stop;
    auto rec2 = rt.launch("bfs.update", static_cast<double>(n), [&] {
      auto up = rt.device_span<unsigned char>(updating.device());
      auto fr = rt.device_span<unsigned char>(frontier.device());
      auto vi = rt.device_span<unsigned char>(visited.device());
      auto st = rt.device_span<int>(stop_flag);
      st.store(0, 1);
      for (std::uint64_t v = 0; v < n; ++v) {
        if (up.load(v) == 0) continue;
        fr.store(v, 1);
        vi.store(v, 1);
        up.store(v, 0);
        st.store(0, 0);
      }
    });
    report.compute_traffic += rec1.traffic;
    report.compute_traffic += rec2.traffic;
    rt.device_synchronize();
    {
      auto st = rt.host_span<int>(stop_flag);
      stop = st.load(0);
    }
    co_yield 0;
    if (stop != 0) break;
  }
  cost.d2h(rt);
  report.times.compute_s = timer.lap();
  co_yield 0;

  {
    Digest d;
    const auto* lv = reinterpret_cast<const int*>(cost.host().host);
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < n; ++i) sum += static_cast<std::uint64_t>(lv[i] + 1);
    d.add_u64(sum);
    for (std::uint64_t i = 0; i < n; i += 1031) d.add_u64(static_cast<std::uint64_t>(lv[i]));
    report.checksum = d.value();
  }

  timer.lap();
  row_off.free(rt);
  col_idx.free(rt);
  cost.free(rt);
  frontier.free(rt);
  updating.free(rt);
  visited.free(rt);
  rt.free(stop_flag);
  report.times.dealloc_s = timer.lap();
  report.times.context_s = timer.context_s();
  co_return report;
}

std::uint64_t bfs_reference_checksum(const BfsConfig& cfg) {
  const Csr graph = generate_graph(cfg);
  const std::uint64_t n = cfg.nodes;
  std::vector<int> cost(n, -1);
  std::vector<unsigned char> frontier(n, 0), updating(n, 0), visited(n, 0);
  cost[0] = 0;
  frontier[0] = 1;
  visited[0] = 1;
  bool again = true;
  while (again) {
    for (std::uint64_t v = 0; v < n; ++v) {
      if (!frontier[v]) continue;
      frontier[v] = 0;
      for (int e = graph.row_offsets[v]; e < graph.row_offsets[v + 1]; ++e) {
        const auto t = static_cast<std::uint64_t>(graph.col_idx[e]);
        if (!visited[t]) {
          cost[t] = cost[v] + 1;
          updating[t] = 1;
        }
      }
    }
    again = false;
    for (std::uint64_t v = 0; v < n; ++v) {
      if (!updating[v]) continue;
      frontier[v] = 1;
      visited[v] = 1;
      updating[v] = 0;
      again = true;
    }
  }
  Digest d;
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < n; ++i) sum += static_cast<std::uint64_t>(cost[i] + 1);
  d.add_u64(sum);
  for (std::uint64_t i = 0; i < n; i += 1031) d.add_u64(static_cast<std::uint64_t>(cost[i]));
  return d.value();
}

}  // namespace ghum::apps
