#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "core/system.hpp"

/// \file span.hpp
/// Instrumented typed accessor: application kernels read and write real
/// data through Span<T> while every access is charged to the simulated
/// memory system. A per-span *page cursor* caches the System::resolve()
/// result for the page currently being traversed, so the per-access fast
/// path is a few compares plus a bitmap bit-set; page transitions (and any
/// migration, detected via the machine epoch) re-resolve and flush the
/// aggregated counts through System::commit().
///
/// The line bitmap counts *unique* cachelines touched per page visit,
/// modeling L1/L2 coalescing: dense sweeps are charged their raw byte
/// volume, while sparse/irregular patterns are charged whole cachelines —
/// the read-amplification effect the paper attributes to irregular access
/// patterns.
///
/// Spans must not outlive the kernel/phase they are used in: create them
/// inside the launch body (they flush on destruction).

namespace ghum::runtime {

template <typename T>
class Span {
 public:
  Span(core::System& sys, const core::Buffer& buf, mem::Node origin,
       std::uint64_t elem_offset = 0, std::uint64_t count = ~0ull)
      : sys_(&sys),
        origin_(origin),
        va_(buf.va + elem_offset * sizeof(T)),
        ptr_(reinterpret_cast<T*>(buf.host) + elem_offset),
        batched_(sys.config().batched_access) {
    const std::uint64_t avail = (buf.bytes / sizeof(T)) - elem_offset;
    n_ = count == ~0ull ? avail : count;
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& o) = delete;
  Span& operator=(Span&&) = delete;

  ~Span() { flush(); }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Accounted read.
  [[nodiscard]] T load(std::size_t i) {
    touch(i, /*write=*/false);
    return ptr_[i];
  }

  /// Accounted *dependent* read (pointer chase): the next instruction
  /// needs this value, so the access serializes on the full tier latency
  /// instead of pipelining with its neighbours. Use for linked-list /
  /// index-chain traversals.
  [[nodiscard]] T load_chased(std::size_t i) {
    touch(i, /*write=*/false);
    sys_->charge_dependent_access(view_);
    return ptr_[i];
  }

  /// Accounted write.
  void store(std::size_t i, T v) {
    touch(i, /*write=*/true);
    ptr_[i] = v;
  }

  /// Accounted contiguous read of \p count elements starting at \p i:
  /// charged exactly like count individual load() calls (same bytes, lines
  /// and commit boundaries), but accounted page-at-a-time with bulk
  /// bitmap arithmetic. Returns the raw elements for the caller to read.
  /// Only monotone single-pass loops should use this — the per-element
  /// accessors remain the general path.
  [[nodiscard]] const T* load_run(std::size_t i, std::size_t count) {
    account_run(i, count, /*write=*/false);
    return ptr_ + i;
  }

  /// Accounted contiguous write of \p count elements starting at \p i
  /// (bulk analogue of store(); see load_run()). Returns the destination
  /// elements for the caller to fill.
  [[nodiscard]] T* store_run(std::size_t i, std::size_t count) {
    account_run(i, count, /*write=*/true);
    return ptr_ + i;
  }

  /// Accounted read-modify-write access.
  [[nodiscard]] T& mutate(std::size_t i) {
    touch(i, false);
    touch(i, true);
    return ptr_[i];
  }

  /// Remote-capable atomic op on element \p i (cost of a C2C atomic when
  /// the data is on the other side of the link).
  T atomic_exchange(std::size_t i, T v) {
    touch(i, true);
    if (view_.node != origin_) {
      flush();
      sys_->clock().advance(sys_->machine().c2c().atomic_op());
    }
    T old = ptr_[i];
    ptr_[i] = v;
    return old;
  }

  /// Unaccounted escape hatch (reference checking in tests only).
  [[nodiscard]] const T* raw() const noexcept { return ptr_; }

  /// Pushes pending aggregated accesses into the memory model.
  void flush() {
    if (pend_acc_ != 0) {
      sys_->commit(view_, pend_r_, pend_w_, pend_lines_, pend_acc_);
      pend_r_ = pend_w_ = pend_lines_ = pend_acc_ = 0;
    }
    // Invalidate so the next access re-resolves.
    view_.page_base = 1;
    view_.page_end = 0;
    view_.run_end = 0;
  }

 private:
  void touch(std::size_t i, bool write) {
    const std::uint64_t addr = va_ + i * sizeof(T);
    if (addr < view_.page_base || addr >= view_.page_end ||
        sys_->epoch() != view_.epoch) {
      reenter(addr);
    }
    const std::uint64_t line = (addr - view_.page_base) >> line_shift_;
    std::uint64_t& word = bitmap_[line >> 6];
    const std::uint64_t bit = 1ull << (line & 63);
    if ((word & bit) == 0) {
      word |= bit;
      ++pend_lines_;
    }
    (write ? pend_w_ : pend_r_) += sizeof(T);
    ++pend_acc_;
  }

  void reenter(std::uint64_t addr) {
    if (pend_acc_ != 0) {
      sys_->commit(view_, pend_r_, pend_w_, pend_lines_, pend_acc_);
      pend_r_ = pend_w_ = pend_lines_ = pend_acc_ = 0;
    }
    if (!batched_ || !sys_->advance_view(view_, addr)) {
      view_ = sys_->resolve(addr, origin_);
    }
    line_shift_ = static_cast<unsigned>(std::countr_zero(
        static_cast<std::uint64_t>(view_.line_size)));
    const std::uint64_t lines =
        ((view_.page_end - view_.page_base) + view_.line_size - 1) / view_.line_size;
    bitmap_.assign((lines + 63) / 64, 0);
  }

  /// Accounts \p count accesses starting at element \p i exactly like a
  /// per-element touch() loop: same page visits (=> same commit
  /// boundaries, faults and translation charges at the same simulated
  /// times), same unique-line counts, same raw bytes. With batching off —
  /// or elements wider than a cacheline, where bulk start-address line
  /// marking would diverge — it *is* that loop.
  void account_run(std::size_t i, std::size_t count, bool write) {
    if (!batched_) {
      for (std::size_t k = 0; k < count; ++k) touch(i + k, write);
      return;
    }
    const std::size_t end = i + count;
    std::size_t k = i;
    while (k < end) {
      const std::uint64_t addr = va_ + k * sizeof(T);
      if (addr < view_.page_base || addr >= view_.page_end ||
          sys_->epoch() != view_.epoch) {
        reenter(addr);
      }
      // Elements are attributed to the page containing their *start*
      // address (touch() semantics), so one straddling the page boundary
      // still belongs to this chunk.
      const std::uint64_t room = view_.page_end - addr;
      std::size_t fit = static_cast<std::size_t>((room + sizeof(T) - 1) / sizeof(T));
      if (fit > end - k) fit = end - k;
      if (sizeof(T) > view_.line_size) {
        // Wide elements can skip lines between consecutive starts; the
        // scalar path marks exactly the start lines.
        for (std::size_t e = 0; e < fit; ++e) touch(k + e, write);
        k += fit;
        continue;
      }
      // Element stride <= line size: the start addresses hit every line in
      // [first, last], so marking that range word-wise counts exactly the
      // lines a touch() loop would.
      const std::uint64_t first = (addr - view_.page_base) >> line_shift_;
      const std::uint64_t last =
          (addr + (fit - 1) * sizeof(T) - view_.page_base) >> line_shift_;
      for (std::uint64_t w = first >> 6; w <= (last >> 6); ++w) {
        const std::uint64_t lo = w << 6;
        std::uint64_t mask = ~0ull;
        if (first > lo) mask &= ~0ull << (first - lo);
        if (last < lo + 63) mask &= ~0ull >> (63 - (last - lo));
        std::uint64_t& word = bitmap_[w];
        pend_lines_ += static_cast<std::uint64_t>(std::popcount(mask & ~word));
        word |= mask;
      }
      (write ? pend_w_ : pend_r_) += fit * sizeof(T);
      pend_acc_ += fit;
      k += fit;
    }
  }

  core::System* sys_;
  mem::Node origin_;
  std::uint64_t va_;
  T* ptr_;
  bool batched_;
  std::size_t n_ = 0;

  core::PageView view_{};  // starts invalid (page_base=1 > page_end=0)
  unsigned line_shift_ = 6;
  std::vector<std::uint64_t> bitmap_;
  std::uint64_t pend_r_ = 0;
  std::uint64_t pend_w_ = 0;
  std::uint64_t pend_lines_ = 0;
  std::uint64_t pend_acc_ = 0;
};

}  // namespace ghum::runtime
