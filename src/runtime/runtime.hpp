#pragma once

#include <new>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "core/system.hpp"
#include "runtime/span.hpp"

/// \file runtime.hpp
/// CUDA-look-alike runtime API over one simulated Grace Hopper node. The
/// names mirror the calls of paper Table 1 and Figure 2 so the application
/// ports in src/apps follow exactly the code transformation the paper
/// applies (replace cudaMalloc+cudaMemcpy pairs with one unified buffer
/// from malloc()/cudaMallocManaged(), then add device synchronization).

namespace ghum::runtime {

enum class CopyKind { kHostToDevice, kDeviceToHost, kDeviceToDevice, kHostToHost };

class Runtime {
 public:
  explicit Runtime(core::System& sys) : sys_(&sys) {}

  [[nodiscard]] core::System& system() noexcept { return *sys_; }

  /// Re-points this runtime at a different System — the checkpoint/restore
  /// hand-off (chk::Snapshotter::restore builds a fresh System; live
  /// application coroutines hold Runtime&, so swapping the target here is
  /// all it takes to continue them on the restored machine). The sticky
  /// last error is preserved: restore does not consume pending errors.
  void rebind(core::System& sys) noexcept { sys_ = &sys; }

  // --- error surface (cudaGetLastError semantics) ---------------------------
  /// Returns the last error recorded by an API call and clears it
  /// (cudaGetLastError). kSuccess when nothing failed since the last call.
  [[nodiscard]] Status get_last_error() noexcept {
    return std::exchange(last_error_, Status::kSuccess);
  }
  /// Returns the sticky last error without clearing it (cudaPeekAtLastError).
  [[nodiscard]] Status peek_last_error() const noexcept { return last_error_; }

  // --- allocation (Table 1) -------------------------------------------------
  /// malloc(): system-allocated memory.
  [[nodiscard]] core::Buffer malloc_system(std::uint64_t bytes,
                                           std::string label = "sys") {
    return guarded([&] { return sys_->sys_malloc(bytes, std::move(label)); });
  }
  /// cudaMallocManaged().
  [[nodiscard]] core::Buffer malloc_managed(std::uint64_t bytes,
                                            std::string label = "managed") {
    return guarded(
        [&] { return sys_->managed_malloc(bytes, std::move(label)); });
  }
  /// cudaMalloc(). Non-throwing form: fills \p out on success; on
  /// exhaustion returns (and records) kErrorMemoryAllocation like
  /// cudaMalloc, leaving \p out untouched.
  Status malloc_device(std::uint64_t bytes, core::Buffer& out,
                       std::string label = "gpu") {
    return record(sys_->gpu_malloc_status(bytes, out, std::move(label)));
  }
  /// cudaMalloc(), throwing form: throws ghum::StatusError carrying
  /// kErrorMemoryAllocation when HBM is exhausted.
  [[nodiscard]] core::Buffer malloc_device(std::uint64_t bytes,
                                           std::string label = "gpu") {
    core::Buffer out;
    const Status s = malloc_device(bytes, out, std::move(label));
    if (s != Status::kSuccess) throw StatusError{s, "malloc_device"};
    return out;
  }
  /// cudaMallocHost()/cudaHostAlloc(), non-throwing form.
  Status malloc_host(std::uint64_t bytes, core::Buffer& out,
                     std::string label = "pinned");
  /// cudaMallocHost(), throwing form (StatusError on CPU exhaustion).
  [[nodiscard]] core::Buffer malloc_host(std::uint64_t bytes,
                                         std::string label = "pinned") {
    core::Buffer out;
    const Status s = malloc_host(bytes, out, std::move(label));
    if (s != Status::kSuccess) throw StatusError{s, "malloc_host"};
    return out;
  }
  /// cudaFree: never throws; double frees and garbage pointers come back
  /// as distinct Status codes (also retrievable via get_last_error()).
  Status free(core::Buffer& buf) { return record(sys_->free_buffer(buf)); }

  // --- copies & hints ---------------------------------------------------------
  /// cudaMemcpy (direction validated against the buffer kinds).
  void memcpy(const core::Buffer& dst, const core::Buffer& src, std::uint64_t bytes,
              CopyKind kind, std::uint64_t dst_off = 0, std::uint64_t src_off = 0);

  /// cudaMemcpyAsync: time lands on the stream; synchronous work before
  /// the matching stream_synchronize overlaps with the transfer.
  void memcpy_async(const core::Buffer& dst, const core::Buffer& src,
                    std::uint64_t bytes, CopyKind kind, Stream& stream,
                    std::uint64_t dst_off = 0, std::uint64_t src_off = 0);

  /// cudaStreamSynchronize.
  void stream_synchronize(Stream& stream) { sys_->stream_synchronize(stream); }

  /// cudaMemPrefetchAsync.
  void mem_prefetch(const core::Buffer& buf, std::uint64_t offset,
                    std::uint64_t bytes, mem::Node dst) {
    guarded([&] { sys_->prefetch(buf, offset, bytes, dst); });
  }

  /// cudaHostRegister. kErrorMemoryAllocation when CPU frames ran out
  /// part-way (the populated prefix stays; the rest faults on demand).
  Status host_register(const core::Buffer& buf) {
    return record(sys_->host_register(buf));
  }

  /// cudaMemAdvise.
  void mem_advise(const core::Buffer& buf, core::System::MemAdvice advice) {
    guarded([&] { sys_->mem_advise(buf, advice); });
  }

  /// cudaDeviceSynchronize.
  void device_synchronize() { sys_->device_synchronize(); }

  // --- kernels -----------------------------------------------------------------
  /// Launches \p body as a GPU kernel named \p name. \p flop_work is the
  /// arithmetic work in floating-point operations; the kernel's simulated
  /// duration is max(memory time, flop_work / gpu_flops) + launch cost.
  template <typename F>
  cache::KernelRecord launch(std::string name, double flop_work, F&& body) {
    return guarded([&]() -> cache::KernelRecord {
      sys_->kernel_begin(std::move(name));
      std::forward<F>(body)();
      return sys_->kernel_end(flop_work);
    });
  }

  /// Runs \p body as a named host phase (CPU-side initialization etc.).
  template <typename F>
  cache::KernelRecord host_phase(std::string name, double flop_work, F&& body) {
    return guarded([&]() -> cache::KernelRecord {
      sys_->host_phase_begin(std::move(name));
      std::forward<F>(body)();
      return sys_->host_phase_end(flop_work);
    });
  }

  // --- spans -------------------------------------------------------------------
  /// Accessor for GPU-side (kernel) code.
  template <typename T>
  [[nodiscard]] Span<T> device_span(const core::Buffer& buf,
                                    std::uint64_t elem_offset = 0,
                                    std::uint64_t count = ~0ull) {
    return Span<T>{*sys_, buf, mem::Node::kGpu, elem_offset, count};
  }
  /// Accessor for host-side code.
  template <typename T>
  [[nodiscard]] Span<T> host_span(const core::Buffer& buf,
                                  std::uint64_t elem_offset = 0,
                                  std::uint64_t count = ~0ull) {
    return Span<T>{*sys_, buf, mem::Node::kCpu, elem_offset, count};
  }

 private:
  /// Records a non-success status (cudaGetLastError semantics) and passes
  /// it through.
  Status record(Status s) noexcept {
    if (s != Status::kSuccess) last_error_ = s;
    return s;
  }

  /// Runs \p f recording any failure for get_last_error() before letting
  /// the original exception continue — every public API that can fail sets
  /// the sticky error, whether it reports by Status return or by throw.
  /// Exception types are preserved: callers relying on std::bad_alloc from
  /// cudaMalloc-style exhaustion or StatusError from crash faults see them
  /// unchanged.
  template <typename F>
  std::invoke_result_t<F> guarded(F&& f) {
    try {
      return std::forward<F>(f)();
    } catch (const StatusError& e) {
      record(e.status());
      throw;
    } catch (const std::bad_alloc&) {
      record(Status::kErrorMemoryAllocation);
      throw;
    } catch (const std::invalid_argument&) {
      record(Status::kErrorInvalidValue);
      throw;
    } catch (const std::out_of_range&) {
      record(Status::kErrorInvalidValue);
      throw;
    }
  }

  core::System* sys_;
  Status last_error_ = Status::kSuccess;
};

/// Device properties, as cudaGetDeviceProperties would report them.
struct DeviceProperties {
  std::string name;
  std::uint64_t total_global_mem = 0;
  std::uint64_t free_global_mem = 0;
  std::uint64_t system_page_size = 0;
  bool concurrent_managed_access = true;  ///< true on Grace Hopper
  bool pageable_memory_access = true;     ///< ATS: full malloc access
};

[[nodiscard]] DeviceProperties get_device_properties(core::System& sys);

}  // namespace ghum::runtime
