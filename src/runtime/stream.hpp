#pragma once

#include <cstdint>

#include "sim/time.hpp"

/// \file stream.hpp
/// CUDA-stream analogue for asynchronous copies. The simulator executes
/// synchronously, so a stream is modeled as its own timeline: an async
/// operation completes at `ready_at = max(now, ready_at) + duration`
/// without advancing the global clock; synchronizing advances the clock to
/// the stream's completion point. Work done on the default (synchronous)
/// path between issue and synchronize therefore *overlaps* with the
/// stream's transfers — exactly the double-buffered copy/compute overlap
/// that pipelines like Qiskit-Aer's chunk exchange rely on.
///
/// Only data transfers are stream-able in the model (kernels execute
/// inline because their memory charges drive the global clock); that is
/// sufficient for copy/compute overlap, the dominant use.

namespace ghum::runtime {

class Stream {
 public:
  /// Simulated time at which all work issued to this stream has finished.
  [[nodiscard]] sim::Picos ready_at() const noexcept { return ready_at_; }

  /// Enqueues an operation of \p duration starting no earlier than \p now;
  /// returns the new completion time.
  sim::Picos enqueue(sim::Picos now, sim::Picos duration) {
    if (ready_at_ < now) ready_at_ = now;
    ready_at_ += duration;
    return ready_at_;
  }

  /// True when everything issued has completed by \p now.
  [[nodiscard]] bool idle_at(sim::Picos now) const noexcept {
    return ready_at_ <= now;
  }

 private:
  sim::Picos ready_at_ = 0;
};

}  // namespace ghum::runtime
