#include "runtime/runtime.hpp"

#include <stdexcept>

namespace ghum::runtime {

namespace {
bool is_device(const core::Buffer& b) { return b.kind == os::AllocKind::kGpuOnly; }
}  // namespace

namespace {
void validate_direction(const core::Buffer& dst, const core::Buffer& src,
                        CopyKind kind) {
  const bool dst_dev = is_device(dst);
  const bool src_dev = is_device(src);
  const bool ok = (kind == CopyKind::kHostToDevice && dst_dev && !src_dev) ||
                  (kind == CopyKind::kDeviceToHost && !dst_dev && src_dev) ||
                  (kind == CopyKind::kDeviceToDevice && dst_dev && src_dev) ||
                  (kind == CopyKind::kHostToHost && !dst_dev && !src_dev);
  if (!ok) throw std::invalid_argument{"memcpy: direction does not match buffers"};
}
}  // namespace

Status Runtime::malloc_host(std::uint64_t bytes, core::Buffer& out,
                            std::string label) {
  try {
    out = sys_->pinned_malloc(bytes, std::move(label));
    return Status::kSuccess;
  } catch (const StatusError& e) {
    return record(e.status());
  }
}

void Runtime::memcpy(const core::Buffer& dst, const core::Buffer& src,
                     std::uint64_t bytes, CopyKind kind, std::uint64_t dst_off,
                     std::uint64_t src_off) {
  guarded([&] {
    validate_direction(dst, src, kind);
    sys_->memcpy_buffers(dst, dst_off, src, src_off, bytes);
  });
}

void Runtime::memcpy_async(const core::Buffer& dst, const core::Buffer& src,
                           std::uint64_t bytes, CopyKind kind, Stream& stream,
                           std::uint64_t dst_off, std::uint64_t src_off) {
  guarded([&] {
    validate_direction(dst, src, kind);
    sys_->memcpy_buffers_async(dst, dst_off, src, src_off, bytes, stream);
  });
}

DeviceProperties get_device_properties(core::System& sys) {
  return DeviceProperties{
      .name = "Simulated GH200 (Hopper H100 + Grace)",
      .total_global_mem = sys.config().hbm_capacity,
      .free_global_mem = sys.gpu_free_bytes(),
      .system_page_size = sys.config().system_page_size,
      .concurrent_managed_access = true,
      .pageable_memory_access = true,
  };
}

}  // namespace ghum::runtime
