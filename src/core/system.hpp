#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>

#include "cache/kernel_traffic.hpp"
#include "core/machine.hpp"
#include "driver/access_counter.hpp"
#include "driver/managed_engine.hpp"
#include "driver/migration_engine.hpp"
#include "fault/fault_injector.hpp"
#include "fault/status.hpp"
#include "obs/link_monitor.hpp"
#include "os/page_fault.hpp"
#include "os/system_allocator.hpp"
#include "profile/memory_profiler.hpp"
#include "profile/workload_analysis.hpp"
#include "runtime/stream.hpp"

/// \file system.hpp
/// ghum::core::System — one simulated Grace Hopper node, fully wired:
/// hardware (Machine), OS policies, GPU driver engines, and profiling.
/// The runtime layer (runtime/runtime.hpp) exposes a CUDA-look-alike API
/// on top; applications normally go through that. System itself is the
/// library's mid-level API: allocation, explicit copies, kernel phases,
/// and the page-granular access path used by runtime::Span.

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::core {

/// A virtual allocation handle. Copyable value type; the backing VMA is
/// owned by the System's address space.
struct Buffer {
  std::uint64_t va = 0;
  std::uint64_t bytes = 0;
  std::byte* host = nullptr;
  os::AllocKind kind = os::AllocKind::kSystem;

  [[nodiscard]] bool valid() const noexcept { return host != nullptr; }
};

/// Cached resolution of one page (or GPU block): everything a Span needs
/// to account accesses locally until it leaves the page.
struct PageView {
  std::uint64_t page_base = 1;  ///< empty interval => always re-resolve
  std::uint64_t page_end = 0;
  /// End (exclusive) of the contiguous residency run this page belongs to:
  /// every page in [page_base, run_end) is mapped on the same node with
  /// the same access semantics, so crossing into the next page inside the
  /// run can skip the VMA lookup (System::advance_view). Equal to
  /// page_end when no run information is available (legacy path).
  std::uint64_t run_end = 0;
  mem::Node node = mem::Node::kCpu;     ///< where the data lives
  mem::Node origin = mem::Node::kCpu;   ///< who is accessing
  os::AllocKind kind = os::AllocKind::kSystem;
  os::Vma* vma = nullptr;
  bool remote_managed = false;  ///< thrash-guard remote mapping (reduced bw)
  std::uint32_t line_size = 64; ///< coalescing granularity for this origin
  std::uint64_t epoch = 0;      ///< machine epoch this view was resolved at
};

class System {
 public:
  explicit System(SystemConfig cfg);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // --- component access ----------------------------------------------------
  [[nodiscard]] Machine& machine() noexcept { return m_; }
  [[nodiscard]] const SystemConfig& config() const noexcept { return m_.config(); }
  [[nodiscard]] sim::Clock& clock() noexcept { return m_.clock(); }
  [[nodiscard]] sim::StatsRegistry& stats() noexcept { return m_.stats(); }
  [[nodiscard]] sim::EventLog& events() noexcept { return m_.events(); }
  [[nodiscard]] profile::WorkloadAnalysis& workload() noexcept { return workload_; }
  [[nodiscard]] profile::MemoryProfiler& profiler() noexcept { return profiler_; }
  [[nodiscard]] obs::LinkMonitor& link_monitor() noexcept { return link_mon_; }
  [[nodiscard]] driver::ManagedEngine& managed_engine() noexcept { return managed_; }
  [[nodiscard]] driver::AccessCounterEngine& access_counters() noexcept { return ac_; }
  [[nodiscard]] driver::MigrationEngine& migration_engine() noexcept { return mig_; }
  [[nodiscard]] os::PageFaultHandler& fault_handler() noexcept { return pf_; }

  [[nodiscard]] sim::Picos now() const noexcept { return m_.clock().now(); }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return m_.epoch(); }

  // --- multi-tenant attribution (DESIGN.md Section 8) ------------------------
  /// Tenant whose quantum is executing; tenant::Scheduler brackets every
  /// resume with this. Allocations, logged events, kernel records and
  /// eviction blame are stamped with it.
  void set_current_tenant(tenant::TenantId t) noexcept { m_.set_current_tenant(t); }
  [[nodiscard]] tenant::TenantId current_tenant() const noexcept {
    return m_.current_tenant();
  }
  [[nodiscard]] tenant::AttributionTable& attribution() noexcept {
    return m_.attribution();
  }

  // --- allocation ------------------------------------------------------------
  /// malloc(): system-allocated memory (lazy, first-touch).
  Buffer sys_malloc(std::uint64_t bytes, std::string label = "sys");
  /// cudaMallocManaged().
  Buffer managed_malloc(std::uint64_t bytes, std::string label = "managed");
  /// cudaMalloc(): eagerly mapped in GPU memory; throws std::bad_alloc
  /// when HBM is exhausted (as cudaMalloc fails on the real machine).
  Buffer gpu_malloc(std::uint64_t bytes, std::string label = "gpu");
  /// Non-throwing cudaMalloc core: fills \p out on success, returns
  /// kErrorMemoryAllocation (leaving \p out untouched) when HBM is
  /// exhausted. Transient injected frame denials are retried a few times
  /// before being reported as OOM.
  Status gpu_malloc_status(std::uint64_t bytes, Buffer& out,
                           std::string label = "gpu");
  /// cudaMallocHost(): pinned, eagerly populated CPU memory.
  Buffer pinned_malloc(std::uint64_t bytes, std::string label = "pinned");
  /// free()/cudaFree()/cudaFreeHost() according to the buffer kind.
  /// Mirrors cudaFree's error surface instead of throwing: an invalid
  /// handle is a no-op success (cudaFree(nullptr)), freeing an already
  /// freed buffer returns kErrorDoubleFree, and a VA that was never an
  /// allocation base returns kErrorInvalidValue. The address space
  /// bump-allocates VAs (never reuses them), so double frees are
  /// distinguishable from garbage for the whole run.
  Status free_buffer(Buffer& buf);

  /// cudaHostRegister-style pre-population (Section 5.1.2 optimization).
  /// Returns kErrorInvalidValue for an unknown buffer and
  /// kErrorMemoryAllocation when CPU frames ran out part-way (the populated
  /// prefix stays mapped; the rest faults on demand).
  Status host_register(const Buffer& buf);

  /// Processes due time-scheduled faults (GPU channel resets first, then
  /// ECC retirements). Called at API entry points — not from the clock
  /// observer, because retirement can evict managed blocks and advance the
  /// clock. Cheap no-op when nothing is pending. A due GPU reset (and an
  /// ECC event past the retirement budget) throws StatusError after
  /// applying its damage.
  void service_faults();

  [[nodiscard]] fault::FaultInjector& fault_injector() noexcept { return fi_; }

  /// cudaMemAdvise hints (whole-allocation granularity).
  enum class MemAdvice {
    kPreferredLocationCpu,   ///< pin placement to CPU memory
    kPreferredLocationGpu,   ///< pin placement to GPU memory
    kUnsetPreferredLocation,
    kReadMostly,             ///< enable read duplication (managed ranges)
    kUnsetReadMostly,        ///< drop replicas, disable duplication
  };
  void mem_advise(const Buffer& buf, MemAdvice advice);

  /// cudaMemPrefetchAsync: explicit migration of a sub-range.
  void prefetch(const Buffer& buf, std::uint64_t offset, std::uint64_t len,
                mem::Node dst);

  /// cudaMemcpy with direction inferred from the buffer kinds. Copies the
  /// real bytes and charges transfer time.
  void memcpy_buffers(const Buffer& dst, std::uint64_t dst_off, const Buffer& src,
                      std::uint64_t src_off, std::uint64_t bytes);

  /// cudaMemcpyAsync: the transfer's duration lands on \p stream's timeline
  /// instead of the global clock, so synchronous work issued before the
  /// matching stream_synchronize() overlaps with it. (Data moves at issue —
  /// the simulator stays sequentially consistent; only time is deferred.)
  void memcpy_buffers_async(const Buffer& dst, std::uint64_t dst_off,
                            const Buffer& src, std::uint64_t src_off,
                            std::uint64_t bytes, runtime::Stream& stream);

  /// cudaStreamSynchronize: advances the clock to the stream's completion.
  void stream_synchronize(runtime::Stream& stream);

  /// Free HBM bytes (what the oversubscription rig measures, Section 3.2).
  [[nodiscard]] std::uint64_t gpu_free_bytes() const noexcept {
    return m_.config().hbm_capacity - m_.gpu_used_bytes();
  }

  // --- GPU context & kernel phases -------------------------------------------
  /// Charged once at the first CUDA-style call (paper Section 4 observes
  /// the system-memory version paying it inside the first kernel).
  void ensure_gpu_context();
  [[nodiscard]] bool gpu_context_initialized() const noexcept { return ctx_init_; }

  /// Total simulated time ever charged for GPU context initialization
  /// (0 before it fires). The paper treats "GPU context initialization and
  /// argument parsing" as its own phase; apps use deltas of this to move
  /// the charge out of whichever phase it fired in (see
  /// apps::PhaseTimer) while kernel records keep it — preserving the
  /// Section 4 observation that the system version pays it inside the
  /// first kernel.
  [[nodiscard]] sim::Picos context_init_charged() const noexcept {
    return ctx_charged_;
  }

  /// Begins a GPU kernel: charges launch overhead, starts a traffic record.
  void kernel_begin(std::string name);
  /// Ends the kernel; \p flop_work adds a compute-time floor
  /// (duration >= flop_work / gpu_flops). Returns the finished record.
  const cache::KernelRecord& kernel_end(double flop_work = 0.0);

  /// Named host phase with the same record-keeping (no launch cost; the
  /// compute floor uses the CPU rate).
  void host_phase_begin(std::string name);
  const cache::KernelRecord& host_phase_end(double flop_work = 0.0);

  [[nodiscard]] bool in_gpu_kernel() const noexcept { return in_kernel_; }
  [[nodiscard]] std::uint64_t kernel_id() const noexcept { return kernel_seq_; }

  /// Recovery-path cleanup after a crash Status unwound out of a kernel or
  /// host phase: clears the open-phase state (a mid-kernel GPU reset leaves
  /// in_kernel_/in_phase_ set) so the next phase can begin. No cost, no
  /// record — the aborted phase never produced a kernel record, exactly as
  /// a killed channel produces none. No-op outside a phase.
  void abort_phase() noexcept;

  /// Frees every allocation owned by tenant \p t (in base-address order),
  /// poisoned or not — the teardown a crashed/retired job's exit would have
  /// performed had its coroutine been allowed to finish. Charges the real
  /// deallocation costs. Returns the virtual bytes scrubbed.
  std::uint64_t scrub_tenant(tenant::TenantId t);

  /// cudaDeviceSynchronize(): execution is synchronous in the simulator,
  /// so this only models the call overhead.
  void device_synchronize();

  /// Directly advance simulated time (I/O waits, argument parsing...).
  void advance(sim::Picos t) { m_.clock().advance(t); }

  // --- access path (used by runtime::Span) ------------------------------------
  /// Resolves the page containing \p va for an access from \p origin,
  /// handling faults/migrations as side effects.
  PageView resolve(std::uint64_t va, mem::Node origin);

  /// Fast page transition inside a known residency run: advances \p view
  /// to the page containing \p va without repeating the VMA lookup, iff
  /// \p va lies in [view.page_end, view.run_end) and the machine epoch is
  /// unchanged (no PTE changed since resolve, so presence and node still
  /// hold). Charges exactly the translation costs resolve() would have
  /// charged — TLB state evolves identically. Returns false when the
  /// caller must fall back to a full resolve().
  [[nodiscard]] bool advance_view(PageView& view, std::uint64_t va);

  /// Charges an aggregated batch of accesses within one resolved page.
  /// \p lines = unique cachelines touched; read/write bytes are raw.
  void commit(const PageView& view, std::uint64_t read_bytes,
              std::uint64_t write_bytes, std::uint64_t lines,
              std::uint64_t accesses);

  /// Charges one *dependent* access (pointer chase): unlike throughput
  /// accesses, each one serializes on the full tier latency — DDR/HBM
  /// first-word latency locally, the NVLink-C2C round trip remotely.
  void charge_dependent_access(const PageView& view);

  /// Formatted dump of the machine's cumulative counters (allocations,
  /// faults, migrations, traffic) for reports and examples.
  [[nodiscard]] std::string summary() const;

  // --- observability exposition (DESIGN.md Section 9) ------------------------
  /// Prometheus text exposition of the metrics registry. Syncs the sampled
  /// gauges (occupancy, link bytes, per-tenant families) first.
  [[nodiscard]] std::string metrics_prometheus();
  /// JSON snapshot of the same registry (machine-readable twin).
  [[nodiscard]] std::string metrics_json();

 private:
  /// Retires GPU frames for one uncorrectable-ECC event: free frames are
  /// retired directly; in-use frames are vacated by evicting managed
  /// blocks first (remap instead of abort).
  void handle_ecc(const fault::EccEvent& e);

  /// Applies one GPU channel reset: drops the current tenant's
  /// device-resident managed blocks without writeback, poisons the damaged
  /// allocations, flushes the GMMU TLBs, charges the recovery latency and
  /// throws StatusError{kErrorGpuReset}.
  [[noreturn]] void handle_gpu_reset(const fault::GpuResetEvent& e);

  void begin_phase(std::string name, bool gpu);
  const cache::KernelRecord& end_phase(double flop_work);

  /// Copies the bytes, counts link traffic and charges host-side staging
  /// faults; returns the transfer duration for the caller to spend
  /// (synchronously or on a stream).
  sim::Picos memcpy_cost_and_copy(const Buffer& dst, std::uint64_t dst_off,
                                  const Buffer& src, std::uint64_t src_off,
                                  std::uint64_t bytes);

  /// AutoNUMA: the balancing scanner periodically unmaps system pages so
  /// the next access takes a NUMA hint fault (cost only; the migration
  /// decision itself is not modeled). GPU-origin hint faults go through
  /// the replayable-fault path — the reason the paper's testbed disables
  /// AutoNUMA (Section 3).
  void maybe_numa_hint_fault(std::uint64_t page_va, mem::Node origin);

  /// Shared core of resolve()/advance_view(): translates \p va for the
  /// allocation described by view.kind/vma/origin, charges the translation
  /// and fault costs, and fills node/bounds/remote_managed.
  void resolve_page(PageView& view, std::uint64_t va);

  /// Publishes how far the residency run containing view.page_base extends
  /// (PageView::run_end). Only scans when SystemConfig::batched_access is
  /// on; otherwise run_end = page_end (legacy behaviour).
  void fill_run_end(PageView& view);

  Machine m_;
  fault::FaultInjector fi_;
  os::PageFaultHandler pf_;
  os::SystemAllocator sysalloc_;
  driver::MigrationEngine mig_;
  driver::AccessCounterEngine ac_;
  driver::ManagedEngine managed_;
  profile::WorkloadAnalysis workload_;
  profile::MemoryProfiler profiler_;
  obs::LinkMonitor link_mon_;

  bool ctx_init_ = false;
  sim::Picos ctx_charged_ = 0;
  bool in_kernel_ = false;
  bool in_phase_ = false;
  std::uint64_t kernel_seq_ = 0;
  std::string phase_name_;
  sim::Picos phase_start_ = 0;
  cache::KernelTraffic traffic_;
  std::uint64_t c2c_h2d_at_start_ = 0;
  std::uint64_t c2c_d2h_at_start_ = 0;
  cache::KernelRecord last_record_;
  /// Base VAs of successfully freed buffers; VAs are never reused, so
  /// membership identifies a double free (vs. a never-valid pointer).
  std::unordered_set<std::uint64_t> freed_bases_;

  friend class ghum::chk::Snapshotter;
};

}  // namespace ghum::core
