#pragma once

#include <cstdint>
#include <string>

#include "core/cost_model.hpp"
#include "fault/fault_config.hpp"
#include "pagetable/page_table.hpp"

/// \file system_config.hpp
/// Configuration of one simulated Grace Hopper node. Defaults follow the
/// paper's testbed (Section 3) with capacities scaled per DESIGN.md §4:
/// the real machine pairs 480 GB LPDDR5X with 96 GB HBM3 (5:1); we default
/// to 960 MiB : 192 MiB so scaled workloads hit the same fits/oversubscribed
/// boundaries while staying runnable on a laptop-class host.

namespace ghum::core {

struct SystemConfig {
  /// System page size: 4 KiB or 64 KiB on Grace (Section 2.1.3).
  std::uint64_t system_page_size = pagetable::kSystemPage64K;

  /// Scaled physical capacities (5:1 like the real 480 GB / 96 GB).
  std::uint64_t hbm_capacity = 192ull << 20;
  std::uint64_t ddr_capacity = 960ull << 20;

  /// GPU-resident driver baseline observed by nvidia-smi (~600 MB on the
  /// real 96 GB machine, i.e. ~0.6 %; same fraction of the scaled HBM).
  std::uint64_t gpu_driver_baseline = 1ull << 20;

  /// Access-counter-based migration for system-allocated memory
  /// (Section 2.2.1). The paper's overview experiments (Figure 3) run with
  /// it disabled and enable it for the migration study (Section 6).
  bool access_counter_migration = false;
  /// Notification threshold (driver default 256, Section 3).
  std::uint32_t access_counter_threshold = 256;
  /// Virtual-range granularity at which the hardware counters aggregate
  /// GPU accesses and at which the driver migrates ("the pages belonging
  /// to the associated virtual memory region", Section 2.2.1). Configurable
  /// on real hardware from 64 KiB to 16 MiB.
  std::uint64_t counter_region_bytes = 2ull << 20;
  /// Global rate limit of the driver's migration work queue: at most one
  /// notification is serviced per interval.
  sim::Picos counter_min_interval = sim::microseconds(150);
  /// The queue is additionally drained at a bounded batch rate per kernel
  /// launch. Together with the interval this spreads working-set migration
  /// across several iterations in iterative workloads — the SRAD
  /// iteration 1-4 ramp of paper Figure 10.
  std::uint32_t counter_migrations_per_kernel = 2;

  /// Speculative prefetching in the managed-memory driver (Section 2.3.2).
  bool managed_prefetch = true;

  /// Linux Automatic NUMA Scheduling and Balancing. The paper's testbed
  /// disables it "because the additional page-faults introduced by
  /// AutoNUMA can significantly hurt GPU-heavy application performance"
  /// (Section 3); bench_ablation_autonuma quantifies exactly that. When
  /// enabled, the kernel's scanner periodically unmaps system pages so
  /// the next access takes a NUMA hint fault.
  bool autonuma_balancing = false;
  sim::Picos autonuma_scan_period = sim::milliseconds(1);

  /// TLB capacities (entries).
  std::size_t cpu_tlb_entries = 1536;
  std::size_t ats_tlb_entries = 4096;
  std::size_t gpu_utlb_entries = 4096;

  /// Batched hot access path: Span may account a contiguous run of
  /// accesses inside one residency interval with bulk arithmetic, and
  /// resolve() publishes how far the current residency run extends
  /// (PageView::run_end) so page transitions inside the run skip the VMA
  /// lookup. Simulated time, traffic counters and the event stream are
  /// bit-for-bit identical to the legacy per-access path (bench_selfperf
  /// asserts this); the flag exists for that differential check.
  bool batched_access = true;

  /// Record per-event traces (tests and profile-type benches turn this on;
  /// large runs leave it off).
  bool event_log = false;

  /// Allocate real host backing for every VMA (Span<T> reads/writes live
  /// data through it). Full-scale runs (96 GB / 480 GB presets) turn this
  /// off: residency, faults and migrations are simulated page-granularly
  /// without touching data bytes, so the simulator's RSS stays sub-linear
  /// in the simulated footprint. With it off, Span/memcpy-style data paths
  /// must not be used (Vma::data stays null).
  bool materialize_backing = true;

  /// Memory-profiler sampling period in simulated time. The paper samples
  /// every 100 ms of wall time on runs lasting tens of seconds; scaled runs
  /// last milliseconds, so we default to 50 us of simulated time.
  sim::Picos profiler_period = sim::microseconds(50);
  bool profiler_enabled = false;

  /// NVLink-C2C utilization monitor (obs::LinkMonitor): windowed byte
  /// volume and utilization-vs-sustained-peak per direction, sampled on
  /// the same simulated-time basis as the memory profiler.
  bool link_monitor = false;
  sim::Picos link_monitor_window = sim::microseconds(50);

  CostModel costs{};

  /// Deterministic fault injection (DESIGN.md "Fault model & resilience").
  /// Disabled by default; the chaos bench and the fault tests enable it.
  fault::FaultConfig faults{};

  /// Human-readable tag used in reports.
  std::string name = "grace-hopper-sim";
};

}  // namespace ghum::core
