#pragma once

#include <cstdint>

#include "core/system_config.hpp"
#include "interconnect/nvlink_c2c.hpp"
#include "mem/frame_allocator.hpp"
#include "mem/memory_device.hpp"
#include "obs/metrics.hpp"
#include "os/address_space.hpp"
#include "pagetable/gmmu.hpp"
#include "pagetable/page_table.hpp"
#include "pagetable/smmu.hpp"
#include "sim/clock.hpp"
#include "sim/event_log.hpp"
#include "sim/stats.hpp"
#include "tenant/attribution.hpp"

/// \file machine.hpp
/// Aggregation of all hardware models of one simulated Grace Hopper node,
/// plus the *residency transition* helpers that keep the page tables, frame
/// allocators, VMA residency counters and TLBs mutually consistent. All
/// policy code (OS fault handling, driver migration/eviction) mutates page
/// residency exclusively through these helpers, so invariants such as
/// "resident bytes == frames used" hold globally (and are checked by
/// property tests).
///
/// Transitions are cost-free: callers (the policy layers) charge the clock
/// according to *why* the transition happened (fault, migration, eviction).

namespace ghum::fault {
class FaultInjector;
}  // namespace ghum::fault

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::core {

class Machine {
 public:
  explicit Machine(const SystemConfig& cfg)
      : cfg_(cfg),
        hbm_(mem::hbm3_spec(cfg.hbm_capacity)),
        ddr_(mem::lpddr5x_spec(cfg.ddr_capacity)),
        gpu_fa_(mem::Node::kGpu, cfg.hbm_capacity),
        cpu_fa_(mem::Node::kCpu, cfg.ddr_capacity),
        system_pt_(cfg.system_page_size),
        gpu_pt_(pagetable::kGpuPageSize),
        smmu_(system_pt_, pagetable::SmmuCosts{}, cfg.cpu_tlb_entries,
              cfg.ats_tlb_entries),
        gmmu_(gpu_pt_, smmu_, pagetable::GmmuCosts{}, cfg.gpu_utlb_entries,
              cfg.gpu_utlb_entries) {
    events_.set_enabled(cfg.event_log);
    as_.set_materialize(cfg.materialize_backing);
    gpu_fa_.reserve_baseline(cfg.gpu_driver_baseline);
    met_ = obs::bind_memsys_metrics(obs_);
    smmu_.cpu_tlb().bind_metrics(
        &obs_.counter("ghum_tlb_hits_total", {{"mmu", "smmu_cpu"}}),
        &obs_.counter("ghum_tlb_misses_total", {{"mmu", "smmu_cpu"}}));
    smmu_.ats_tlb().bind_metrics(
        &obs_.counter("ghum_tlb_hits_total", {{"mmu", "smmu_ats"}}),
        &obs_.counter("ghum_tlb_misses_total", {{"mmu", "smmu_ats"}}));
    gmmu_.utlb_gpu().bind_metrics(
        &obs_.counter("ghum_tlb_hits_total", {{"mmu", "gmmu_gpu"}}),
        &obs_.counter("ghum_tlb_misses_total", {{"mmu", "gmmu_gpu"}}));
    gmmu_.utlb_sys().bind_metrics(
        &obs_.counter("ghum_tlb_hits_total", {{"mmu", "gmmu_ats"}}),
        &obs_.counter("ghum_tlb_misses_total", {{"mmu", "gmmu_ats"}}));
  }

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // --- component access ---------------------------------------------------
  [[nodiscard]] const SystemConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] sim::Clock& clock() noexcept { return clock_; }
  [[nodiscard]] const sim::Clock& clock() const noexcept { return clock_; }
  [[nodiscard]] sim::StatsRegistry& stats() noexcept { return stats_; }
  [[nodiscard]] sim::EventLog& events() noexcept { return events_; }
  [[nodiscard]] mem::MemoryDevice& hbm() noexcept { return hbm_; }
  [[nodiscard]] mem::MemoryDevice& ddr() noexcept { return ddr_; }
  [[nodiscard]] mem::MemoryDevice& device(mem::Node n) noexcept {
    return n == mem::Node::kGpu ? hbm_ : ddr_;
  }
  [[nodiscard]] mem::FrameAllocator& frames(mem::Node n) noexcept {
    return n == mem::Node::kGpu ? gpu_fa_ : cpu_fa_;
  }
  [[nodiscard]] interconnect::NvlinkC2C& c2c() noexcept { return c2c_; }
  [[nodiscard]] const interconnect::NvlinkC2C& c2c() const noexcept { return c2c_; }
  [[nodiscard]] const sim::StatsRegistry& stats() const noexcept { return stats_; }
  [[nodiscard]] pagetable::PageTable& system_pt() noexcept { return system_pt_; }
  [[nodiscard]] pagetable::PageTable& gpu_pt() noexcept { return gpu_pt_; }
  [[nodiscard]] pagetable::Smmu& smmu() noexcept { return smmu_; }
  [[nodiscard]] pagetable::Gmmu& gmmu() noexcept { return gmmu_; }
  [[nodiscard]] os::AddressSpace& address_space() noexcept { return as_; }

  // --- observability (DESIGN.md Section 9) ---------------------------------
  /// The deterministic metrics registry. Always on: instruments are plain
  /// integer increments, cheap enough for production-style runs.
  [[nodiscard]] obs::MetricsRegistry& obs() noexcept { return obs_; }
  [[nodiscard]] const obs::MetricsRegistry& obs() const noexcept { return obs_; }
  /// Cached hot-path instrument handles (bound once at construction).
  [[nodiscard]] obs::MemSysMetrics& metrics() noexcept { return met_; }

  /// Refreshes the registry's sampled gauges (frame occupancy, RSS/VRAM,
  /// link byte totals, per-tenant attribution families) from the live
  /// machine state. Called before exposition (System::metrics_json /
  /// metrics_prometheus), not on hot paths.
  void sync_obs_gauges();

  /// Installed by core::System when cfg.faults.enabled. The injector gets a
  /// veto on every frame allocation (transient ENOMEM / allocation-retry
  /// paths in the real driver); nullptr means no injection.
  void set_fault_injector(fault::FaultInjector* fi) noexcept { fi_ = fi; }
  [[nodiscard]] fault::FaultInjector* fault_injector() const noexcept { return fi_; }

  /// Bumped on every residency change; spans use it to invalidate their
  /// cached page resolutions when a migration lands mid-kernel.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  // --- multi-tenant attribution (DESIGN.md Section 8) ----------------------
  /// Tenant whose quantum is executing. Set by tenant::Scheduler (through
  /// core::System) around each resume; kNoTenant for single-app runs. New
  /// VMAs and logged events are stamped with it, and eviction attribution
  /// treats it as the perpetrator.
  void set_current_tenant(tenant::TenantId t) noexcept {
    tenant_ = t;
    events_.set_current_tenant(t);
    as_.set_current_tenant(t);
  }
  [[nodiscard]] tenant::TenantId current_tenant() const noexcept { return tenant_; }

  /// Per-tenant resource ledger (frames, faults, migrations, evictions),
  /// fed by the transition helpers below and the policy layers.
  [[nodiscard]] tenant::AttributionTable& attribution() noexcept {
    return attribution_;
  }
  [[nodiscard]] const tenant::AttributionTable& attribution() const noexcept {
    return attribution_;
  }

  /// GPU used memory as nvidia-smi reports it: all GPU frames in use,
  /// including the driver baseline (paper Section 3.2).
  [[nodiscard]] std::uint64_t gpu_used_bytes() const noexcept { return gpu_fa_.used(); }
  /// Process RSS as /proc/<pid>/smaps_rollup reports it.
  [[nodiscard]] std::uint64_t cpu_rss_bytes() const noexcept { return as_.rss_bytes(); }

  // --- system-page transitions ---------------------------------------------
  /// Bytes of physical frame charged for the system page at \p page_va
  /// (full page even when the VMA tail only covers part of it).
  [[nodiscard]] std::uint64_t system_page_bytes() const noexcept {
    return system_pt_.page_size();
  }

  /// Maps the system page containing \p va on \p node. Returns false when
  /// the node's frames are exhausted (caller decides the fallback policy).
  [[nodiscard]] bool map_system_page(os::Vma& vma, std::uint64_t va, mem::Node node);

  /// Unmaps a present system page, releasing its frame.
  void unmap_system_page(os::Vma& vma, std::uint64_t va);

  /// Moves a present system page to \p to. Returns false when frames on
  /// \p to are exhausted (page stays put).
  [[nodiscard]] bool move_system_page(os::Vma& vma, std::uint64_t va, mem::Node to);

  // --- bulk system-page transitions -----------------------------------------
  // Range helpers splice whole extents: one page-table operation, one frame
  // accounting update and one TLB range shootdown per contiguous segment
  // instead of per page. Their observable behaviour (pages mapped/moved,
  // allocator state, TLB entries dropped) is bit-identical to the per-page
  // loops they replace; when a fault injector is active and not suppressed
  // they *fall back* to the per-page helpers so the injector's RNG stream
  // is consumed identically.

  /// Per-node page counts from a bulk operation.
  struct RangePages {
    std::uint64_t cpu = 0;
    std::uint64_t gpu = 0;
    [[nodiscard]] std::uint64_t total() const noexcept { return cpu + gpu; }
  };
  /// Outcome of a bulk map: pages newly mapped, and whether every hole in
  /// the range was populated (false: frames ran out part-way, prefix
  /// semantics — nothing after the failure point was touched).
  struct BulkMapResult {
    std::uint64_t mapped = 0;
    bool complete = true;
  };
  /// Outcome of a bulk move: pages moved, and whether the destination ran
  /// out of frames before the budget/range was exhausted.
  struct BulkMoveResult {
    std::uint64_t moved = 0;
    bool dst_exhausted = false;
  };

  /// Maps every *unmapped* page in [page_base(va), +pages) on \p node,
  /// stopping at the first page the frame allocator cannot satisfy
  /// (already-present pages are skipped, like the per-page loops did).
  BulkMapResult map_system_range(os::Vma& vma, std::uint64_t va,
                                 std::uint64_t pages, mem::Node node);

  /// Unmaps every *mapped* page in the range, releasing frames per node.
  RangePages unmap_system_range(os::Vma& vma, std::uint64_t va,
                                std::uint64_t pages);

  /// Moves up to \p max_pages mapped pages in the range to \p to (pages
  /// already there are skipped and do not consume budget), stopping when
  /// \p to runs out of frames.
  BulkMoveResult move_system_range(os::Vma& vma, std::uint64_t va,
                                   std::uint64_t pages, mem::Node to,
                                   std::uint64_t max_pages);

  // --- GPU-page-table block transitions -------------------------------------
  /// Size charged for the 2 MiB block containing \p va within \p vma
  /// (clipped to the VMA end so short managed tails don't over-charge HBM).
  [[nodiscard]] std::uint64_t gpu_block_bytes(const os::Vma& vma,
                                              std::uint64_t block_va) const;

  /// Maps a 2 MiB GPU-page-table block (managed or cudaMalloc ranges).
  [[nodiscard]] bool map_gpu_block(os::Vma& vma, std::uint64_t block_va);

  /// Unmaps a present GPU block, releasing its frames.
  void unmap_gpu_block(os::Vma& vma, std::uint64_t block_va);

 private:
  SystemConfig cfg_;
  sim::Clock clock_;
  sim::StatsRegistry stats_;
  sim::EventLog events_;
  mem::MemoryDevice hbm_;
  mem::MemoryDevice ddr_;
  mem::FrameAllocator gpu_fa_;
  mem::FrameAllocator cpu_fa_;
  interconnect::NvlinkC2C c2c_;
  pagetable::PageTable system_pt_;
  pagetable::PageTable gpu_pt_;
  pagetable::Smmu smmu_;
  pagetable::Gmmu gmmu_;
  os::AddressSpace as_;
  obs::MetricsRegistry obs_;
  obs::MemSysMetrics met_;
  fault::FaultInjector* fi_ = nullptr;
  std::uint64_t epoch_ = 0;
  tenant::TenantId tenant_ = tenant::kNoTenant;
  tenant::AttributionTable attribution_;

  friend class ghum::chk::Snapshotter;
};

}  // namespace ghum::core
