#include "core/machine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "fault/fault_injector.hpp"

namespace ghum::core {

void Machine::sync_obs_gauges() {
  const auto i64 = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };
  obs_.gauge("ghum_gpu_used_bytes").set(i64(gpu_used_bytes()));
  obs_.gauge("ghum_cpu_rss_bytes").set(i64(cpu_rss_bytes()));
  obs_.gauge("ghum_frames_free_bytes", {{"node", "gpu"}})
      .set(i64(gpu_fa_.free_bytes()));
  obs_.gauge("ghum_frames_free_bytes", {{"node", "cpu"}})
      .set(i64(cpu_fa_.free_bytes()));
  obs_.gauge("ghum_c2c_bytes", {{"dir", "h2d"}})
      .set(i64(c2c_.bytes_moved(interconnect::Direction::kCpuToGpu)));
  obs_.gauge("ghum_c2c_bytes", {{"dir", "d2h"}})
      .set(i64(c2c_.bytes_moved(interconnect::Direction::kGpuToCpu)));
  obs_.gauge("ghum_c2c_atomics_count").set(i64(c2c_.atomics_issued()));
  // O(1) reads of the extent maps' cached counters — sampling the gauges
  // must never scan residency state (see PageTable::scan_steps).
  obs_.gauge("ghum_pt_runs", {{"pt", "system"}}).set(i64(system_pt_.run_count()));
  obs_.gauge("ghum_pt_runs", {{"pt", "gpu"}}).set(i64(gpu_pt_.run_count()));
  obs_.gauge("ghum_pt_resident_bytes", {{"pt", "system"}, {"node", "cpu"}})
      .set(i64(system_pt_.resident_bytes(mem::Node::kCpu)));
  obs_.gauge("ghum_pt_resident_bytes", {{"pt", "system"}, {"node", "gpu"}})
      .set(i64(system_pt_.resident_bytes(mem::Node::kGpu)));

  // Per-tenant families from the attribution table. Tenant 0 is the
  // single-app / outside-any-quantum bucket.
  for (tenant::TenantId t = 0; t <= attribution_.max_tenant(); ++t) {
    const tenant::TenantUsage& u = attribution_.usage(t);
    const std::vector<obs::Label> lt{{"tenant", std::to_string(t)}};
    auto with = [&](const char* key, const char* value) {
      return std::vector<obs::Label>{{"tenant", std::to_string(t)},
                                     {key, value}};
    };
    obs_.gauge("ghum_tenant_resident_bytes", with("node", "cpu"))
        .set(u.resident_cpu_bytes);
    obs_.gauge("ghum_tenant_resident_bytes", with("node", "gpu"))
        .set(u.resident_gpu_bytes);
    obs_.gauge("ghum_tenant_peak_gpu_bytes", lt).set(i64(u.peak_gpu_bytes));
    obs_.gauge("ghum_tenant_faults_count", with("origin", "cpu")).set(i64(u.cpu_faults));
    obs_.gauge("ghum_tenant_faults_count", with("origin", "gpu")).set(i64(u.gpu_faults));
    obs_.gauge("ghum_tenant_migrated_bytes", with("dir", "h2d"))
        .set(i64(u.migrated_h2d_bytes));
    obs_.gauge("ghum_tenant_migrated_bytes", with("dir", "d2h"))
        .set(i64(u.migrated_d2h_bytes));
    obs_.gauge("ghum_tenant_c2c_bytes", with("dir", "h2d"))
        .set(i64(u.c2c_h2d_bytes));
    obs_.gauge("ghum_tenant_c2c_bytes", with("dir", "d2h"))
        .set(i64(u.c2c_d2h_bytes));
    obs_.gauge("ghum_tenant_evictions_count", with("role", "suffered"))
        .set(i64(u.evictions_suffered));
    obs_.gauge("ghum_tenant_evictions_count", with("role", "caused"))
        .set(i64(u.evictions_caused));
  }
}

bool Machine::map_system_page(os::Vma& vma, std::uint64_t va, mem::Node node) {
  const std::uint64_t page_va = system_pt_.page_base(va);
  if (system_pt_.lookup(page_va) != nullptr) {
    throw std::logic_error{"map_system_page: page already mapped"};
  }
  const std::uint64_t bytes = system_page_bytes();
  if (fi_ != nullptr && fi_->deny_frame_alloc(node)) return false;
  if (!frames(node).allocate(bytes)) return false;
  system_pt_.map(page_va, pagetable::Pte{.node = node, .writable = true});
  const auto delta = static_cast<std::int64_t>(bytes);
  as_.note_resident_delta(vma, node == mem::Node::kCpu ? delta : 0,
                          node == mem::Node::kGpu ? delta : 0);
  attribution_.note_resident_delta(vma.tenant, node == mem::Node::kCpu ? delta : 0,
                                   node == mem::Node::kGpu ? delta : 0);
  ++epoch_;
  return true;
}

void Machine::unmap_system_page(os::Vma& vma, std::uint64_t va) {
  const std::uint64_t page_va = system_pt_.page_base(va);
  const pagetable::Pte* pte = system_pt_.lookup(page_va);
  if (pte == nullptr) throw std::logic_error{"unmap_system_page: not mapped"};
  const mem::Node node = pte->node;
  const std::uint64_t bytes = system_page_bytes();
  system_pt_.unmap(page_va);
  frames(node).release(bytes);
  const auto delta = -static_cast<std::int64_t>(bytes);
  as_.note_resident_delta(vma, node == mem::Node::kCpu ? delta : 0,
                          node == mem::Node::kGpu ? delta : 0);
  attribution_.note_resident_delta(vma.tenant, node == mem::Node::kCpu ? delta : 0,
                                   node == mem::Node::kGpu ? delta : 0);
  smmu_.invalidate(page_va);
  gmmu_.invalidate_system(page_va);
  ++epoch_;
}

bool Machine::move_system_page(os::Vma& vma, std::uint64_t va, mem::Node to) {
  const std::uint64_t page_va = system_pt_.page_base(va);
  const pagetable::Pte* pte = system_pt_.lookup(page_va);
  if (pte == nullptr) throw std::logic_error{"move_system_page: not mapped"};
  const mem::Node from = pte->node;
  if (from == to) return true;
  const std::uint64_t bytes = system_page_bytes();
  if (fi_ != nullptr && fi_->deny_frame_alloc(to)) return false;
  if (!frames(to).allocate(bytes)) return false;
  frames(from).release(bytes);
  system_pt_.set_node(page_va, to);
  const auto delta = static_cast<std::int64_t>(bytes);
  as_.note_resident_delta(vma, to == mem::Node::kCpu ? delta : -delta,
                          to == mem::Node::kGpu ? delta : -delta);
  attribution_.note_resident_delta(vma.tenant,
                                   to == mem::Node::kCpu ? delta : -delta,
                                   to == mem::Node::kGpu ? delta : -delta);
  smmu_.invalidate(page_va);
  gmmu_.invalidate_system(page_va);
  ++epoch_;
  return true;
}

Machine::BulkMapResult Machine::map_system_range(os::Vma& vma, std::uint64_t va,
                                                 std::uint64_t pages,
                                                 mem::Node node) {
  const std::uint64_t page = system_page_bytes();
  const std::uint64_t start = system_pt_.page_base(va);
  BulkMapResult r;
  if (pages == 0) return r;
  if (fi_ != nullptr && !fi_->suppressed()) {
    // The injector draws from its RNG on every allocation attempt, so the
    // bulk splice would change the random stream; keep the per-page loop.
    for (std::uint64_t p = 0; p < pages; ++p) {
      const std::uint64_t page_va = start + p * page;
      if (system_pt_.lookup(page_va) != nullptr) continue;
      if (!map_system_page(vma, page_va, node)) {
        r.complete = false;
        break;
      }
      ++r.mapped;
    }
    return r;
  }
  // Collect the holes between mapped runs, then fill each with one splice.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> holes;  // {vpn, pages}
  std::uint64_t cursor = system_pt_.vpn(start);
  const std::uint64_t vpn_end = cursor + pages;
  system_pt_.for_each_run_in_range(
      start, pages,
      [&](std::uint64_t first_vpn, std::uint64_t run_pages, const pagetable::Pte&) {
        if (first_vpn > cursor) holes.emplace_back(cursor, first_vpn - cursor);
        cursor = first_vpn + run_pages;
      });
  if (cursor < vpn_end) holes.emplace_back(cursor, vpn_end - cursor);
  for (const auto& [hole_vpn, hole_pages] : holes) {
    const std::uint64_t avail = frames(node).free_bytes() / page;
    const std::uint64_t take = std::min(hole_pages, avail);
    if (take > 0) {
      if (!frames(node).allocate(take * page)) {
        throw std::logic_error{"map_system_range: frame accounting diverged"};
      }
      system_pt_.map_range(hole_vpn * page, take,
                           pagetable::Pte{.node = node, .writable = true});
      const auto delta = static_cast<std::int64_t>(take * page);
      as_.note_resident_delta(vma, node == mem::Node::kCpu ? delta : 0,
                              node == mem::Node::kGpu ? delta : 0);
      attribution_.note_resident_delta(vma.tenant,
                                       node == mem::Node::kCpu ? delta : 0,
                                       node == mem::Node::kGpu ? delta : 0);
      r.mapped += take;
    }
    if (take < hole_pages) {
      r.complete = false;
      break;
    }
  }
  if (r.mapped > 0) ++epoch_;
  return r;
}

Machine::RangePages Machine::unmap_system_range(os::Vma& vma, std::uint64_t va,
                                                std::uint64_t pages) {
  // Unmap never consults the fault injector, so the splice is always safe.
  const std::uint64_t page = system_page_bytes();
  const std::uint64_t start = system_pt_.page_base(va);
  RangePages out;
  if (pages == 0) return out;
  struct Seg {
    std::uint64_t va;
    std::uint64_t bytes;
  };
  std::vector<Seg> segs;
  system_pt_.for_each_run_in_range(
      start, pages,
      [&](std::uint64_t first_vpn, std::uint64_t run_pages,
          const pagetable::Pte& pte) {
        (pte.node == mem::Node::kCpu ? out.cpu : out.gpu) += run_pages;
        segs.push_back(Seg{first_vpn * page, run_pages * page});
      });
  if (out.total() == 0) return out;
  (void)system_pt_.unmap_range(start, pages);
  if (out.cpu > 0) cpu_fa_.release(out.cpu * page);
  if (out.gpu > 0) gpu_fa_.release(out.gpu * page);
  const auto cpu_delta = -static_cast<std::int64_t>(out.cpu * page);
  const auto gpu_delta = -static_cast<std::int64_t>(out.gpu * page);
  as_.note_resident_delta(vma, cpu_delta, gpu_delta);
  attribution_.note_resident_delta(vma.tenant, cpu_delta, gpu_delta);
  // Only previously-mapped pages can hold TLB entries, so shooting down
  // exactly the mapped segments drops the same entries the per-page loop
  // would have.
  for (const Seg& s : segs) {
    smmu_.invalidate_range(s.va, s.bytes);
    gmmu_.invalidate_system_range(s.va, s.bytes);
  }
  ++epoch_;
  return out;
}

Machine::BulkMoveResult Machine::move_system_range(os::Vma& vma, std::uint64_t va,
                                                   std::uint64_t pages,
                                                   mem::Node to,
                                                   std::uint64_t max_pages) {
  const std::uint64_t page = system_page_bytes();
  const std::uint64_t start = system_pt_.page_base(va);
  BulkMoveResult r;
  if (pages == 0 || max_pages == 0) return r;
  if (fi_ != nullptr && !fi_->suppressed()) {
    for (std::uint64_t p = 0; p < pages && r.moved < max_pages; ++p) {
      const std::uint64_t page_va = start + p * page;
      const pagetable::Pte* pte = system_pt_.lookup(page_va);
      if (pte == nullptr || pte->node == to) continue;
      if (!move_system_page(vma, page_va, to)) {
        r.dst_exhausted = true;
        break;
      }
      ++r.moved;
    }
    return r;
  }
  // Collect segments on the wrong node first: mutating the extent map
  // while iterating it would invalidate the walk.
  struct Seg {
    std::uint64_t vpn;
    std::uint64_t pages;
    mem::Node from;
  };
  std::vector<Seg> segs;
  std::uint64_t want_total = 0;
  system_pt_.for_each_run_in_range(
      start, pages,
      [&](std::uint64_t first_vpn, std::uint64_t run_pages,
          const pagetable::Pte& pte) {
        if (pte.node == to || want_total >= max_pages) return;
        const std::uint64_t take = std::min(run_pages, max_pages - want_total);
        segs.push_back(Seg{first_vpn, take, pte.node});
        want_total += take;
      });
  for (const Seg& s : segs) {
    const std::uint64_t avail = frames(to).free_bytes() / page;
    const std::uint64_t take = std::min(s.pages, avail);
    if (take > 0) {
      if (!frames(to).allocate(take * page)) {
        throw std::logic_error{"move_system_range: frame accounting diverged"};
      }
      frames(s.from).release(take * page);
      const std::uint64_t seg_va = s.vpn * page;
      (void)system_pt_.set_node_range(seg_va, take, to);
      const auto delta = static_cast<std::int64_t>(take * page);
      as_.note_resident_delta(vma, to == mem::Node::kCpu ? delta : -delta,
                              to == mem::Node::kGpu ? delta : -delta);
      attribution_.note_resident_delta(vma.tenant,
                                       to == mem::Node::kCpu ? delta : -delta,
                                       to == mem::Node::kGpu ? delta : -delta);
      smmu_.invalidate_range(seg_va, take * page);
      gmmu_.invalidate_system_range(seg_va, take * page);
      r.moved += take;
    }
    if (take < s.pages) {
      r.dst_exhausted = true;
      break;
    }
  }
  if (r.moved > 0) ++epoch_;
  return r;
}

std::uint64_t Machine::gpu_block_bytes(const os::Vma& vma,
                                       std::uint64_t block_va) const {
  const std::uint64_t block_base = gpu_pt_.page_base(block_va);
  return std::min<std::uint64_t>(pagetable::kGpuPageSize, vma.end() - block_base);
}

bool Machine::map_gpu_block(os::Vma& vma, std::uint64_t block_va) {
  const std::uint64_t block_base = gpu_pt_.page_base(block_va);
  if (gpu_pt_.lookup(block_base) != nullptr) {
    throw std::logic_error{"map_gpu_block: block already mapped"};
  }
  const std::uint64_t bytes = gpu_block_bytes(vma, block_base);
  if (fi_ != nullptr && fi_->deny_frame_alloc(mem::Node::kGpu)) return false;
  if (!gpu_fa_.allocate(bytes)) return false;
  gpu_pt_.map(block_base, pagetable::Pte{.node = mem::Node::kGpu, .writable = true});
  as_.note_resident_delta(vma, 0, static_cast<std::int64_t>(bytes));
  attribution_.note_resident_delta(vma.tenant, 0, static_cast<std::int64_t>(bytes));
  ++epoch_;
  return true;
}

void Machine::unmap_gpu_block(os::Vma& vma, std::uint64_t block_va) {
  const std::uint64_t block_base = gpu_pt_.page_base(block_va);
  if (gpu_pt_.lookup(block_base) == nullptr) {
    throw std::logic_error{"unmap_gpu_block: not mapped"};
  }
  const std::uint64_t bytes = gpu_block_bytes(vma, block_base);
  gpu_pt_.unmap(block_base);
  gpu_fa_.release(bytes);
  as_.note_resident_delta(vma, 0, -static_cast<std::int64_t>(bytes));
  attribution_.note_resident_delta(vma.tenant, 0, -static_cast<std::int64_t>(bytes));
  gmmu_.invalidate_gpu_table(block_base);
  ++epoch_;
}

}  // namespace ghum::core
