#include "core/machine.hpp"

#include <algorithm>
#include <stdexcept>

#include "fault/fault_injector.hpp"

namespace ghum::core {

void Machine::sync_obs_gauges() {
  const auto i64 = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };
  obs_.gauge("ghum_gpu_used_bytes").set(i64(gpu_used_bytes()));
  obs_.gauge("ghum_cpu_rss_bytes").set(i64(cpu_rss_bytes()));
  obs_.gauge("ghum_frames_free_bytes", {{"node", "gpu"}})
      .set(i64(gpu_fa_.free_bytes()));
  obs_.gauge("ghum_frames_free_bytes", {{"node", "cpu"}})
      .set(i64(cpu_fa_.free_bytes()));
  obs_.gauge("ghum_c2c_bytes", {{"dir", "h2d"}})
      .set(i64(c2c_.bytes_moved(interconnect::Direction::kCpuToGpu)));
  obs_.gauge("ghum_c2c_bytes", {{"dir", "d2h"}})
      .set(i64(c2c_.bytes_moved(interconnect::Direction::kGpuToCpu)));
  obs_.gauge("ghum_c2c_atomics").set(i64(c2c_.atomics_issued()));

  // Per-tenant families from the attribution table. Tenant 0 is the
  // single-app / outside-any-quantum bucket.
  for (tenant::TenantId t = 0; t <= attribution_.max_tenant(); ++t) {
    const tenant::TenantUsage& u = attribution_.usage(t);
    const std::vector<obs::Label> lt{{"tenant", std::to_string(t)}};
    auto with = [&](const char* key, const char* value) {
      return std::vector<obs::Label>{{"tenant", std::to_string(t)},
                                     {key, value}};
    };
    obs_.gauge("ghum_tenant_resident_bytes", with("node", "cpu"))
        .set(u.resident_cpu_bytes);
    obs_.gauge("ghum_tenant_resident_bytes", with("node", "gpu"))
        .set(u.resident_gpu_bytes);
    obs_.gauge("ghum_tenant_peak_gpu_bytes", lt).set(i64(u.peak_gpu_bytes));
    obs_.gauge("ghum_tenant_faults", with("origin", "cpu")).set(i64(u.cpu_faults));
    obs_.gauge("ghum_tenant_faults", with("origin", "gpu")).set(i64(u.gpu_faults));
    obs_.gauge("ghum_tenant_migrated_bytes", with("dir", "h2d"))
        .set(i64(u.migrated_h2d_bytes));
    obs_.gauge("ghum_tenant_migrated_bytes", with("dir", "d2h"))
        .set(i64(u.migrated_d2h_bytes));
    obs_.gauge("ghum_tenant_c2c_bytes", with("dir", "h2d"))
        .set(i64(u.c2c_h2d_bytes));
    obs_.gauge("ghum_tenant_c2c_bytes", with("dir", "d2h"))
        .set(i64(u.c2c_d2h_bytes));
    obs_.gauge("ghum_tenant_evictions", with("role", "suffered"))
        .set(i64(u.evictions_suffered));
    obs_.gauge("ghum_tenant_evictions", with("role", "caused"))
        .set(i64(u.evictions_caused));
  }
}

bool Machine::map_system_page(os::Vma& vma, std::uint64_t va, mem::Node node) {
  const std::uint64_t page_va = system_pt_.page_base(va);
  if (system_pt_.lookup(page_va) != nullptr) {
    throw std::logic_error{"map_system_page: page already mapped"};
  }
  const std::uint64_t bytes = system_page_bytes();
  if (fi_ != nullptr && fi_->deny_frame_alloc(node)) return false;
  if (!frames(node).allocate(bytes)) return false;
  system_pt_.map(page_va, pagetable::Pte{.node = node, .writable = true});
  const auto delta = static_cast<std::int64_t>(bytes);
  as_.note_resident_delta(vma, node == mem::Node::kCpu ? delta : 0,
                          node == mem::Node::kGpu ? delta : 0);
  attribution_.note_resident_delta(vma.tenant, node == mem::Node::kCpu ? delta : 0,
                                   node == mem::Node::kGpu ? delta : 0);
  ++epoch_;
  return true;
}

void Machine::unmap_system_page(os::Vma& vma, std::uint64_t va) {
  const std::uint64_t page_va = system_pt_.page_base(va);
  const pagetable::Pte* pte = system_pt_.lookup(page_va);
  if (pte == nullptr) throw std::logic_error{"unmap_system_page: not mapped"};
  const mem::Node node = pte->node;
  const std::uint64_t bytes = system_page_bytes();
  system_pt_.unmap(page_va);
  frames(node).release(bytes);
  const auto delta = -static_cast<std::int64_t>(bytes);
  as_.note_resident_delta(vma, node == mem::Node::kCpu ? delta : 0,
                          node == mem::Node::kGpu ? delta : 0);
  attribution_.note_resident_delta(vma.tenant, node == mem::Node::kCpu ? delta : 0,
                                   node == mem::Node::kGpu ? delta : 0);
  smmu_.invalidate(page_va);
  gmmu_.invalidate_system(page_va);
  ++epoch_;
}

bool Machine::move_system_page(os::Vma& vma, std::uint64_t va, mem::Node to) {
  const std::uint64_t page_va = system_pt_.page_base(va);
  const pagetable::Pte* pte = system_pt_.lookup(page_va);
  if (pte == nullptr) throw std::logic_error{"move_system_page: not mapped"};
  const mem::Node from = pte->node;
  if (from == to) return true;
  const std::uint64_t bytes = system_page_bytes();
  if (fi_ != nullptr && fi_->deny_frame_alloc(to)) return false;
  if (!frames(to).allocate(bytes)) return false;
  frames(from).release(bytes);
  system_pt_.set_node(page_va, to);
  const auto delta = static_cast<std::int64_t>(bytes);
  as_.note_resident_delta(vma, to == mem::Node::kCpu ? delta : -delta,
                          to == mem::Node::kGpu ? delta : -delta);
  attribution_.note_resident_delta(vma.tenant,
                                   to == mem::Node::kCpu ? delta : -delta,
                                   to == mem::Node::kGpu ? delta : -delta);
  smmu_.invalidate(page_va);
  gmmu_.invalidate_system(page_va);
  ++epoch_;
  return true;
}

std::uint64_t Machine::gpu_block_bytes(const os::Vma& vma,
                                       std::uint64_t block_va) const {
  const std::uint64_t block_base = gpu_pt_.page_base(block_va);
  return std::min<std::uint64_t>(pagetable::kGpuPageSize, vma.end() - block_base);
}

bool Machine::map_gpu_block(os::Vma& vma, std::uint64_t block_va) {
  const std::uint64_t block_base = gpu_pt_.page_base(block_va);
  if (gpu_pt_.lookup(block_base) != nullptr) {
    throw std::logic_error{"map_gpu_block: block already mapped"};
  }
  const std::uint64_t bytes = gpu_block_bytes(vma, block_base);
  if (fi_ != nullptr && fi_->deny_frame_alloc(mem::Node::kGpu)) return false;
  if (!gpu_fa_.allocate(bytes)) return false;
  gpu_pt_.map(block_base, pagetable::Pte{.node = mem::Node::kGpu, .writable = true});
  as_.note_resident_delta(vma, 0, static_cast<std::int64_t>(bytes));
  attribution_.note_resident_delta(vma.tenant, 0, static_cast<std::int64_t>(bytes));
  ++epoch_;
  return true;
}

void Machine::unmap_gpu_block(os::Vma& vma, std::uint64_t block_va) {
  const std::uint64_t block_base = gpu_pt_.page_base(block_va);
  if (gpu_pt_.lookup(block_base) == nullptr) {
    throw std::logic_error{"unmap_gpu_block: not mapped"};
  }
  const std::uint64_t bytes = gpu_block_bytes(vma, block_base);
  gpu_pt_.unmap(block_base);
  gpu_fa_.release(bytes);
  as_.note_resident_delta(vma, 0, -static_cast<std::int64_t>(bytes));
  attribution_.note_resident_delta(vma.tenant, 0, -static_cast<std::int64_t>(bytes));
  gmmu_.invalidate_gpu_table(block_base);
  ++epoch_;
}

}  // namespace ghum::core
