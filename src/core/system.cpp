#include "core/system.hpp"

#include <algorithm>
#include <cstring>
#include <new>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ghum::core {

namespace {
Buffer make_buffer(os::Vma& vma) {
  return Buffer{.va = vma.base, .bytes = vma.size, .host = vma.data.get(),
                .kind = vma.kind};
}
}  // namespace

System::System(SystemConfig cfg)
    : m_(cfg),
      fi_(m_),
      pf_(m_),
      sysalloc_(m_),
      mig_(m_),
      ac_(m_, mig_),
      managed_(m_, mig_, pf_),
      profiler_(m_, cfg.profiler_period),
      link_mon_(m_, cfg.link_monitor_window) {
  if (cfg.system_page_size != pagetable::kSystemPage4K &&
      cfg.system_page_size != pagetable::kSystemPage64K) {
    throw std::invalid_argument{"SystemConfig: Grace supports 4 KiB or 64 KiB pages"};
  }
  if (cfg.profiler_enabled) profiler_.start();
  if (cfg.link_monitor) link_mon_.start();
  if (cfg.faults.enabled) {
    m_.set_fault_injector(&fi_);
    if (fi_.has_link_windows()) {
      // The observer only flips link-degradation state (no clock advance,
      // no eviction), so it is safe to run inside Clock::advance.
      m_.clock().add_observer(
          [this](sim::Picos /*before*/, sim::Picos after) { fi_.on_time_advance(after); });
      fi_.on_time_advance(m_.clock().now());
    }
  }
}

// --- allocation ---------------------------------------------------------------

Buffer System::sys_malloc(std::uint64_t bytes, std::string label) {
  service_faults();
  return make_buffer(sysalloc_.allocate(bytes, std::move(label)));
}

Buffer System::managed_malloc(std::uint64_t bytes, std::string label) {
  ensure_gpu_context();
  service_faults();
  return make_buffer(managed_.allocate(bytes, std::move(label)));
}

Buffer System::gpu_malloc(std::uint64_t bytes, std::string label) {
  Buffer out;
  if (gpu_malloc_status(bytes, out, std::move(label)) != Status::kSuccess) {
    throw std::bad_alloc{};
  }
  return out;
}

Status System::gpu_malloc_status(std::uint64_t bytes, Buffer& out,
                                 std::string label) {
  ensure_gpu_context();
  service_faults();
  const auto& costs = m_.config().costs;
  os::Vma& vma = m_.address_space().create(bytes, os::AllocKind::kGpuOnly,
                                           pagetable::kGpuPageSize, std::move(label));
  const std::uint64_t blocks =
      (bytes + pagetable::kGpuPageSize - 1) / pagetable::kGpuPageSize;
  m_.clock().advance(costs.gpu_alloc_base +
                     costs.alloc_per_page * static_cast<sim::Picos>(blocks));
  for (std::uint64_t block = vma.base; block < vma.end();
       block += pagetable::kGpuPageSize) {
    bool mapped = false;
    for (int attempt = 0; attempt < 4 && !mapped; ++attempt) {
      mapped = m_.map_gpu_block(vma, block);
      if (mapped) break;
      // Genuinely out of HBM frames: no amount of retrying helps.
      if (m_.frames(mem::Node::kGpu).free_bytes() < m_.gpu_block_bytes(vma, block)) {
        break;
      }
      // Transient injected denial: the driver's allocator retries.
      m_.clock().advance(sim::microseconds(5));
    }
    if (!mapped) {
      // cudaMalloc fails: roll the partial mapping back and report OOM.
      for (std::uint64_t b = vma.base; b < block; b += pagetable::kGpuPageSize) {
        m_.unmap_gpu_block(vma, b);
      }
      m_.address_space().destroy(vma.base);
      m_.stats().add("runtime.oom.gpu_malloc");
      m_.metrics().oom_events->inc();
      if (m_.events().enabled()) {
        m_.events().record(sim::Event{.time = m_.clock().now(),
                                      .type = sim::EventType::kOutOfMemory,
                                      .va = block,
                                      .bytes = bytes,
                                      .aux = 1});
      }
      return Status::kErrorMemoryAllocation;
    }
  }
  if (m_.events().enabled()) {
    m_.events().record(sim::Event{.time = m_.clock().now(),
                                  .type = sim::EventType::kAllocation,
                                  .va = vma.base,
                                  .bytes = bytes,
                                  .aux = static_cast<std::uint32_t>(vma.kind)});
  }
  out = make_buffer(vma);
  return Status::kSuccess;
}

Buffer System::pinned_malloc(std::uint64_t bytes, std::string label) {
  ensure_gpu_context();
  return make_buffer(sysalloc_.allocate_pinned(bytes, std::move(label)));
}

Status System::free_buffer(Buffer& buf) {
  if (!buf.valid()) return Status::kSuccess;  // cudaFree(nullptr) semantics
  os::Vma* vma = m_.address_space().find_exact(buf.va);
  if (vma == nullptr) {
    return freed_bases_.contains(buf.va) ? Status::kErrorDoubleFree
                                         : Status::kErrorInvalidValue;
  }
  const auto& costs = m_.config().costs;
  switch (vma->kind) {
    case os::AllocKind::kSystem:
    case os::AllocKind::kPinnedHost:
      sysalloc_.deallocate(*vma);
      break;
    case os::AllocKind::kManaged:
      managed_.release_gpu_blocks(*vma);
      sysalloc_.deallocate(*vma);
      break;
    case os::AllocKind::kGpuOnly: {
      for (std::uint64_t block = vma->base; block < vma->end();
           block += pagetable::kGpuPageSize) {
        m_.unmap_gpu_block(*vma, block);
      }
      m_.clock().advance(costs.gpu_free_base);
      m_.address_space().destroy(vma->base);
      break;
    }
  }
  freed_bases_.insert(buf.va);
  buf = Buffer{};
  return Status::kSuccess;
}

Status System::host_register(const Buffer& buf) {
  os::Vma* vma = m_.address_space().find_exact(buf.va);
  if (vma == nullptr) return Status::kErrorInvalidValue;
  return pf_.host_register(*vma) ? Status::kSuccess
                                 : Status::kErrorMemoryAllocation;
}

void System::service_faults() {
  // Suppression covers the scheduled crash class too: the recovery scrub
  // must not be killed by the next due reset — it fires at the first
  // unsuppressed service point instead.
  if (!fi_.enabled() || fi_.suppressed()) return;
  // Crash class first: a due channel reset pre-empts pending retirements
  // (handle_gpu_reset throws, so anything ECC-due is serviced on the next
  // API call — matching a real driver, which handles the Xid before
  // resuming deferred work).
  if (const fault::GpuResetEvent* r = fi_.take_due_reset(m_.clock().now())) {
    handle_gpu_reset(*r);
  }
  while (const fault::EccEvent* e = fi_.take_due_ecc(m_.clock().now())) {
    handle_ecc(*e);
  }
}

void System::handle_gpu_reset(const fault::GpuResetEvent& /*e*/) {
  sim::SpanScope span{m_.events()};
  const tenant::TenantId victim = m_.current_tenant();
  std::uint64_t poisoned_bytes = 0;
  {
    // Dropping device state is context teardown, not a migration: the
    // injector must not re-fail the crash's own cleanup.
    fault::FaultInjector::ScopedSuppress guard{&fi_};
    for (auto& [base, vma] : m_.address_space()) {
      if (vma.tenant != victim || vma.poisoned) continue;
      if (vma.kind == os::AllocKind::kGpuOnly) {
        // The content lived in the dead context; mappings (and frames) are
        // held until cudaFree, but every access now fails.
        vma.poisoned = true;
        poisoned_bytes += vma.size;
      } else if (vma.kind == os::AllocKind::kManaged &&
                 vma.resident_gpu_bytes > 0) {
        // Device-resident managed blocks die with the channel: dropped
        // without writeback (their content is lost, not flushed back).
        managed_.release_gpu_blocks(vma);
        vma.poisoned = true;
        poisoned_bytes += vma.size;
      }
    }
  }
  // The reset invalidates all GMMU translation state (both the GPU-table
  // and the ATS-side uTLBs).
  m_.gmmu().flush_tlbs();
  m_.clock().advance(m_.config().costs.gpu_reset);
  m_.stats().add("fault.gpu_resets");
  m_.metrics().gpu_resets->inc();
  if (m_.events().enabled()) {
    m_.events().record(sim::Event{.time = m_.clock().now(),
                                  .type = sim::EventType::kGpuReset,
                                  .va = 0,
                                  .bytes = poisoned_bytes,
                                  .aux = victim});
  }
  throw StatusError{Status::kErrorGpuReset, "GPU channel reset"};
}

void System::handle_ecc(const fault::EccEvent& e) {
  // The retirement is a root cause: any evictions it forces below belong
  // to its causal span.
  sim::SpanScope span{m_.events()};
  auto& gpu_fa = m_.frames(mem::Node::kGpu);
  const std::uint64_t want = e.bytes;
  std::uint64_t retired = gpu_fa.retire(want);
  if (retired < want) {
    // The bad frames are (conservatively) in use: vacate by evicting
    // managed blocks, then retire the freed frames. The vacating writeback
    // is the resilience response, so injection is suppressed for it.
    fault::FaultInjector::ScopedSuppress guard{&fi_};
    if (managed_.make_room(want - retired)) {
      retired += gpu_fa.retire(want - retired);
    }
  }
  m_.clock().advance(m_.config().costs.ecc_retire);
  m_.stats().add("fault.ecc_events");
  m_.stats().add("fault.ecc_retired_bytes", retired);
  m_.metrics().ecc_retirements->inc();
  m_.metrics().ecc_retired_bytes->inc(retired);
  if (retired < want) {
    // Everything left is pinned GPU-only data; the remainder of the page
    // retirement is deferred (real driver: pending retirement).
    m_.stats().add("fault.ecc_unretired_bytes", want - retired);
  }
  if (m_.events().enabled()) {
    m_.events().record(sim::Event{.time = m_.clock().now(),
                                  .type = sim::EventType::kEccRetirement,
                                  .va = 0,
                                  .bytes = retired,
                                  .aux = retired < want ? 1u : 0u});
  }
  // ECC storm: retirement past the configured budget means the device is
  // losing frames faster than retirement can absorb — beyond what any
  // restart can cure, so the escalation is terminal.
  const std::uint64_t budget = m_.config().faults.ecc_retirement_budget;
  if (budget != 0 && gpu_fa.retired_bytes() > budget) {
    m_.stats().add("fault.ecc_storms");
    throw StatusError{Status::kErrorUnrecoverable,
                      "ECC storm: frame-retirement budget exceeded"};
  }
}

void System::mem_advise(const Buffer& buf, MemAdvice advice) {
  os::Vma* vma = m_.address_space().find_exact(buf.va);
  if (vma == nullptr) throw std::invalid_argument{"mem_advise: unknown buffer"};
  if (vma->kind == os::AllocKind::kGpuOnly || vma->kind == os::AllocKind::kPinnedHost) {
    throw std::invalid_argument{"mem_advise: only system/managed memory takes advice"};
  }
  m_.clock().advance(sim::microseconds(2));  // driver ioctl
  switch (advice) {
    case MemAdvice::kPreferredLocationCpu:
      vma->preferred_location = mem::Node::kCpu;
      break;
    case MemAdvice::kPreferredLocationGpu:
      vma->preferred_location = mem::Node::kGpu;
      break;
    case MemAdvice::kUnsetPreferredLocation:
      vma->preferred_location.reset();
      break;
    case MemAdvice::kReadMostly:
      if (vma->kind != os::AllocKind::kManaged) {
        throw std::invalid_argument{"mem_advise: read-mostly needs managed memory"};
      }
      vma->read_mostly = true;
      break;
    case MemAdvice::kUnsetReadMostly:
      vma->read_mostly = false;
      managed_.collapse_all_replicas(*vma);
      break;
  }
  m_.stats().add("runtime.mem_advise");
}

void System::prefetch(const Buffer& buf, std::uint64_t offset, std::uint64_t len,
                      mem::Node dst) {
  ensure_gpu_context();
  os::Vma* vma = m_.address_space().find_exact(buf.va);
  if (vma == nullptr) throw std::invalid_argument{"prefetch: unknown buffer"};
  if (vma->poisoned) {
    throw StatusError{Status::kErrorGpuReset,
                      "prefetch on allocation poisoned by GPU reset"};
  }
  if (vma->kind == os::AllocKind::kManaged) {
    managed_.prefetch(*vma, buf.va + offset, len, dst);
    return;
  }
  if (vma->kind == os::AllocKind::kSystem) {
    // On Grace Hopper cudaMemPrefetchAsync also works on system memory:
    // the driver migrates the system pages.
    if (dst == mem::Node::kGpu) {
      mig_.migrate_system_range_to_gpu(*vma, buf.va + offset, len, ~0ull);
    } else {
      mig_.migrate_system_range_to_cpu(*vma, buf.va + offset, len, ~0ull);
    }
    return;
  }
  throw std::invalid_argument{"prefetch: buffer kind cannot be prefetched"};
}

void System::memcpy_buffers(const Buffer& dst, std::uint64_t dst_off,
                            const Buffer& src, std::uint64_t src_off,
                            std::uint64_t bytes) {
  m_.clock().advance(memcpy_cost_and_copy(dst, dst_off, src, src_off, bytes));
}

void System::memcpy_buffers_async(const Buffer& dst, std::uint64_t dst_off,
                                  const Buffer& src, std::uint64_t src_off,
                                  std::uint64_t bytes, runtime::Stream& stream) {
  const sim::Picos t = memcpy_cost_and_copy(dst, dst_off, src, src_off, bytes);
  stream.enqueue(m_.clock().now(), t);
  m_.stats().add("runtime.memcpy_async");
}

void System::stream_synchronize(runtime::Stream& stream) {
  const sim::Picos now = m_.clock().now();
  if (stream.ready_at() > now) m_.clock().advance(stream.ready_at() - now);
}

sim::Picos System::memcpy_cost_and_copy(const Buffer& dst, std::uint64_t dst_off,
                                        const Buffer& src, std::uint64_t src_off,
                                        std::uint64_t bytes) {
  ensure_gpu_context();
  if (dst_off + bytes > dst.bytes || src_off + bytes > src.bytes) {
    throw std::out_of_range{"memcpy_buffers: range outside buffer"};
  }
  {
    const os::Vma* sv = m_.address_space().find_exact(src.va);
    const os::Vma* dv = m_.address_space().find_exact(dst.va);
    if ((sv != nullptr && sv->poisoned) || (dv != nullptr && dv->poisoned)) {
      throw StatusError{Status::kErrorGpuReset,
                        "memcpy on allocation poisoned by GPU reset"};
    }
  }
  const auto& costs = m_.config().costs;
  std::memcpy(dst.host + dst_off, src.host + src_off, bytes);

  const bool src_gpu = src.kind == os::AllocKind::kGpuOnly;
  const bool dst_gpu = dst.kind == os::AllocKind::kGpuOnly;
  sim::Picos t = costs.memcpy_base;
  if (src_gpu && dst_gpu) {
    t += m_.hbm().read_time(bytes) + m_.hbm().write_time(bytes);
  } else if (!src_gpu && !dst_gpu) {
    t += m_.ddr().read_time(bytes) + m_.ddr().write_time(bytes);
  } else {
    const auto dir = dst_gpu ? interconnect::Direction::kCpuToGpu
                             : interconnect::Direction::kGpuToCpu;
    sim::Picos link = m_.c2c().transfer(dir, bytes);
    const bool pageable =
        (dst_gpu ? src.kind : dst.kind) == os::AllocKind::kSystem ||
        (dst_gpu ? src.kind : dst.kind) == os::AllocKind::kManaged;
    if (pageable) {
      link = static_cast<sim::Picos>(static_cast<double>(link) /
                                     costs.memcpy_pageable_efficiency);
      // Host-side staging touches the pageable pages: fault them in if the
      // buffer was never touched (ensures RSS accounting stays honest).
      os::Vma* vma = m_.address_space().find_exact(dst_gpu ? src.va : dst.va);
      if (vma != nullptr && vma->kind != os::AllocKind::kManaged) {
        const std::uint64_t page = m_.system_pt().page_size();
        const std::uint64_t lo = (dst_gpu ? src.va + src_off : dst.va + dst_off);
        for (std::uint64_t va = m_.system_pt().page_base(lo); va < lo + bytes;
             va += page) {
          if (m_.system_pt().lookup(va) == nullptr) {
            pf_.first_touch(*vma, va, mem::Node::kCpu);
          }
        }
      }
    }
    t += link;
  }
  m_.stats().add("runtime.memcpy_bytes", bytes);
  return t;
}

// --- GPU context & phases --------------------------------------------------

void System::ensure_gpu_context() {
  if (ctx_init_) return;
  ctx_init_ = true;
  ctx_charged_ = m_.config().costs.context_init;
  m_.clock().advance(m_.config().costs.context_init);
  if (m_.events().enabled()) {
    m_.events().record(sim::Event{.time = m_.clock().now(),
                                  .type = sim::EventType::kContextInit,
                                  .va = 0,
                                  .bytes = 0,
                                  .aux = 0});
  }
  m_.stats().add("runtime.context_init");
}

void System::kernel_begin(std::string name) {
  service_faults();
  begin_phase(std::move(name), /*gpu=*/true);
  // Context initialization triggered by a kernel launch lands *inside* the
  // kernel's measured duration — the paper's Section 4 observation about
  // the system-memory version.
  ensure_gpu_context();
  m_.clock().advance(m_.config().costs.kernel_launch);
  if (m_.events().enabled()) {
    m_.events().record(sim::Event{.time = m_.clock().now(),
                                  .type = sim::EventType::kKernelBegin,
                                  .va = 0,
                                  .bytes = 0,
                                  .aux = static_cast<std::uint32_t>(kernel_seq_)});
  }
}

const cache::KernelRecord& System::kernel_end(double flop_work) {
  if (!in_kernel_) throw std::logic_error{"kernel_end: no kernel in flight"};
  const double elapsed = sim::to_seconds(m_.clock().now() - phase_start_);
  const double floor_s = flop_work / m_.config().costs.gpu_flops;
  if (floor_s > elapsed) m_.clock().advance(sim::seconds(floor_s - elapsed));
  if (m_.events().enabled()) {
    m_.events().record(sim::Event{.time = m_.clock().now(),
                                  .type = sim::EventType::kKernelEnd,
                                  .va = 0,
                                  .bytes = 0,
                                  .aux = static_cast<std::uint32_t>(kernel_seq_)});
  }
  return end_phase(0.0);
}

void System::host_phase_begin(std::string name) {
  begin_phase(std::move(name), /*gpu=*/false);
}

const cache::KernelRecord& System::host_phase_end(double flop_work) {
  if (in_kernel_ || !in_phase_) {
    throw std::logic_error{"host_phase_end: no host phase in flight"};
  }
  const double elapsed = sim::to_seconds(m_.clock().now() - phase_start_);
  const double floor_s = flop_work / m_.config().costs.cpu_flops;
  if (floor_s > elapsed) m_.clock().advance(sim::seconds(floor_s - elapsed));
  return end_phase(0.0);
}

void System::device_synchronize() {
  // Synchronous simulator: only the call overhead remains.
  m_.clock().advance(sim::microseconds(1));
}

void System::abort_phase() noexcept {
  in_phase_ = false;
  in_kernel_ = false;
}

std::uint64_t System::scrub_tenant(tenant::TenantId t) {
  // Collect first (free_buffer erases VMAs), in base order so the scrub's
  // simulated-time charges are deterministic.
  std::vector<std::uint64_t> bases;
  for (const auto& [base, vma] : std::as_const(m_.address_space())) {
    if (vma.tenant == t) bases.push_back(base);
  }
  std::uint64_t scrubbed = 0;
  for (std::uint64_t base : bases) {
    os::Vma* vma = m_.address_space().find_exact(base);
    if (vma == nullptr) continue;
    scrubbed += vma->size;
    Buffer b = make_buffer(*vma);
    (void)free_buffer(b);
  }
  if (scrubbed > 0) m_.stats().add("recovery.scrubbed_bytes", scrubbed);
  return scrubbed;
}

void System::begin_phase(std::string name, bool gpu) {
  if (in_phase_) throw std::logic_error{"begin_phase: phases cannot nest"};
  in_phase_ = true;
  in_kernel_ = gpu;
  if (gpu) ++kernel_seq_;
  phase_name_ = std::move(name);
  phase_start_ = m_.clock().now();
  traffic_ = cache::KernelTraffic{};
  c2c_h2d_at_start_ = m_.c2c().bytes_moved(interconnect::Direction::kCpuToGpu);
  c2c_d2h_at_start_ = m_.c2c().bytes_moved(interconnect::Direction::kGpuToCpu);
}

const cache::KernelRecord& System::end_phase(double /*flop_work*/) {
  const std::uint64_t h2d =
      m_.c2c().bytes_moved(interconnect::Direction::kCpuToGpu) - c2c_h2d_at_start_;
  const std::uint64_t d2h =
      m_.c2c().bytes_moved(interconnect::Direction::kGpuToCpu) - c2c_d2h_at_start_;
  // Link traffic not attributed to direct accesses was moved by the driver
  // (migrations, evictions, prefetches) while this phase ran.
  const std::uint64_t direct_h2d = traffic_.c2c_read_bytes + traffic_.cpu_remote_write_bytes;
  const std::uint64_t direct_d2h = traffic_.c2c_write_bytes + traffic_.cpu_remote_read_bytes;
  traffic_.migration_h2d_bytes = h2d > direct_h2d ? h2d - direct_h2d : 0;
  traffic_.migration_d2h_bytes = d2h > direct_d2h ? d2h - direct_d2h : 0;

  last_record_ = cache::KernelRecord{.name = phase_name_,
                                     .kernel_id = kernel_seq_,
                                     .tenant = m_.current_tenant(),
                                     .start = phase_start_,
                                     .duration = m_.clock().now() - phase_start_,
                                     .traffic = traffic_};
  workload_.add(last_record_);
  in_phase_ = false;
  in_kernel_ = false;
  return last_record_;
}

// --- access path -------------------------------------------------------------

void System::charge_dependent_access(const PageView& view) {
  // Local chase pays the tier's first-word latency; a remote chase adds
  // the NVLink-C2C round trip on top of the far tier's DRAM latency.
  const sim::Picos t =
      view.node == view.origin
          ? m_.device(view.node).latency()
          : 2 * m_.c2c().latency() + m_.device(view.node).latency();
  m_.clock().advance(t);
  m_.stats().add("mem.dependent_accesses");
}

std::string System::summary() const {
  std::ostringstream out;
  out << "=== ghum system summary (" << m_.config().name << ") ===\n";
  out << "simulated time: " << sim::to_milliseconds(m_.clock().now()) << " ms\n";
  out << "cpu rss: " << static_cast<double>(m_.cpu_rss_bytes()) / (1 << 20)
      << " MiB, gpu used: " << static_cast<double>(m_.gpu_used_bytes()) / (1 << 20)
      << " MiB\n";
  out << "c2c h2d: "
      << static_cast<double>(
             m_.c2c().bytes_moved(interconnect::Direction::kCpuToGpu)) /
             (1 << 20)
      << " MiB, d2h: "
      << static_cast<double>(
             m_.c2c().bytes_moved(interconnect::Direction::kGpuToCpu)) /
             (1 << 20)
      << " MiB\n";
  for (const auto& [name, value] : m_.stats().snapshot()) {
    out << "  " << name << ": " << value << '\n';
  }
  return out.str();
}

std::string System::metrics_prometheus() {
  m_.sync_obs_gauges();
  return m_.obs().to_prometheus();
}

std::string System::metrics_json() {
  m_.sync_obs_gauges();
  return m_.obs().to_json();
}

void System::maybe_numa_hint_fault(std::uint64_t page_va, mem::Node origin) {
  const auto& cfg = m_.config();
  if (!cfg.autonuma_balancing) return;
  const pagetable::Pte* pte = m_.system_pt().lookup(page_va);
  if (pte == nullptr) return;
  const auto gen =
      static_cast<std::uint32_t>(m_.clock().now() / cfg.autonuma_scan_period + 1);
  if (pte->numa_generation == gen) return;
  // Splits the page out of its extent; once neighbouring pages reach the
  // same generation the runs re-coalesce, so a full scan sweep leaves the
  // map as compact as before it started.
  m_.system_pt().set_numa_generation(page_va, gen);
  const auto& costs = cfg.costs;
  m_.clock().advance(origin == mem::Node::kCpu ? costs.cpu_minor_fault
                                               : costs.gpu_replayable_fault);
  m_.stats().add("os.numa_hint_faults");
  if (m_.events().enabled()) {
    m_.events().record(sim::Event{.time = m_.clock().now(),
                                  .type = sim::EventType::kNumaHintFault,
                                  .va = page_va,
                                  .bytes = m_.system_pt().page_size(),
                                  .aux = static_cast<std::uint32_t>(origin)});
  }
}

PageView System::resolve(std::uint64_t va, mem::Node origin) {
  service_faults();
  os::Vma* vma = m_.address_space().find(va);
  if (vma == nullptr) {
    throw std::out_of_range{"resolve: access outside any allocation (SIGSEGV)"};
  }
  if (vma->poisoned) {
    throw StatusError{Status::kErrorGpuReset,
                      "access to allocation poisoned by GPU reset"};
  }
  PageView view;
  view.origin = origin;
  view.kind = vma->kind;
  view.vma = vma;
  view.line_size = origin == mem::Node::kGpu ? m_.c2c().spec().cacheline_gpu
                                             : m_.c2c().spec().cacheline_cpu;
  resolve_page(view, va);
  view.epoch = m_.epoch();
  fill_run_end(view);
  return view;
}

bool System::advance_view(PageView& view, std::uint64_t va) {
  // Only a transition into a later page of the same residency run
  // qualifies; anything else (first access, epoch bump, run exhausted)
  // goes through the full resolve(). All checks precede any charge, so a
  // false return leaves the simulated timeline untouched.
  if (va < view.page_end || va >= view.run_end) return false;
  if (view.epoch != m_.epoch()) return false;
  service_faults();
  if (view.epoch != m_.epoch()) return false;  // ECC retirement moved pages
  // Epoch unchanged since resolve() => no PTE was created, destroyed or
  // moved, so the pages scanned into run_end are still resident where they
  // were and view.vma is still alive. The translation below is charged via
  // the same MMU entry points as resolve(), so TLB state and cost evolve
  // identically.
  PageView next;
  next.origin = view.origin;
  next.kind = view.kind;
  next.vma = view.vma;
  next.line_size = view.line_size;
  resolve_page(next, va);
  next.epoch = m_.epoch();
  next.run_end = view.run_end;
  if (next.run_end < next.page_end) next.run_end = next.page_end;
  view = next;
  return true;
}

void System::fill_run_end(PageView& view) {
  view.run_end = view.page_end;
  if (!m_.config().batched_access) return;
  // The extent map answers "where does this run end" in one O(log n)
  // lookup, so no per-page scan cap is needed: a dense full-scale
  // allocation (millions of pages) publishes its whole run at once.
  constexpr std::size_t kMaxRunPages = ~std::size_t{0};
  const std::uint64_t limit = view.vma->end();
  switch (view.kind) {
    case os::AllocKind::kGpuOnly:
      view.run_end = m_.gpu_pt().resident_run_end(view.page_base, mem::Node::kGpu,
                                                  limit, kMaxRunPages);
      break;
    case os::AllocKind::kPinnedHost:
      view.run_end = m_.system_pt().resident_run_end(view.page_base, mem::Node::kCpu,
                                                     limit, kMaxRunPages);
      break;
    case os::AllocKind::kSystem:
      view.run_end = m_.system_pt().resident_run_end(view.page_base, view.node,
                                                     limit, kMaxRunPages);
      break;
    case os::AllocKind::kManaged:
      // Only table-backed residency states have a cheap run scan; the
      // fault/remote paths must re-resolve every page (driver decisions
      // such as thrash-guard remote mapping are per-fault).
      if (view.origin == mem::Node::kGpu && view.node == mem::Node::kGpu &&
          !view.remote_managed) {
        view.run_end = m_.gpu_pt().resident_run_end(view.page_base, mem::Node::kGpu,
                                                    limit, kMaxRunPages);
      } else if (view.origin == mem::Node::kCpu && view.node == mem::Node::kCpu) {
        view.run_end = m_.system_pt().resident_run_end(view.page_base, mem::Node::kCpu,
                                                       limit, kMaxRunPages);
      }
      break;
  }
  if (view.run_end < view.page_end) view.run_end = view.page_end;
}

void System::resolve_page(PageView& view, std::uint64_t va) {
  os::Vma* vma = view.vma;
  const mem::Node origin = view.origin;

  auto system_page_bounds = [&](std::uint64_t a) {
    view.page_base = m_.system_pt().page_base(a);
    view.page_end = std::min(view.page_base + m_.system_pt().page_size(), vma->end());
  };
  auto gpu_block_bounds = [&](std::uint64_t a) {
    view.page_base = m_.gpu_pt().page_base(a);
    view.page_end = std::min(view.page_base + pagetable::kGpuPageSize, vma->end());
  };

  switch (vma->kind) {
    case os::AllocKind::kGpuOnly: {
      if (origin == mem::Node::kCpu) {
        throw std::logic_error{"CPU access to cudaMalloc memory (not coherent)"};
      }
      const auto t = m_.gmmu().translate_gpu_table(va);
      m_.clock().advance(t.cost);
      if (t.outcome != pagetable::GpuXlatOutcome::kResident) {
        throw std::logic_error{"GPU-only allocation unexpectedly unmapped"};
      }
      view.node = mem::Node::kGpu;
      gpu_block_bounds(va);
      break;
    }
    case os::AllocKind::kPinnedHost: {
      if (origin == mem::Node::kCpu) {
        const auto t = m_.smmu().translate_cpu(va);
        m_.clock().advance(t.cost);
      } else {
        const auto t = m_.gmmu().translate_system(va);
        m_.clock().advance(t.cost);
      }
      view.node = mem::Node::kCpu;  // pinned memory never migrates
      system_page_bounds(va);
      break;
    }
    case os::AllocKind::kSystem: {
      if (origin == mem::Node::kCpu) {
        const auto t = m_.smmu().translate_cpu(va);
        m_.clock().advance(t.cost);
        view.node = t.present ? t.node : pf_.first_touch(*vma, va, origin);
      } else {
        const auto t = m_.gmmu().translate_system(va);
        m_.clock().advance(t.cost);
        if (t.outcome == pagetable::GpuXlatOutcome::kResident) {
          view.node = t.node;
        } else {
          view.node = pf_.first_touch(*vma, va, origin);
          ++traffic_.gpu_first_touch_faults;
        }
      }
      system_page_bounds(va);
      maybe_numa_hint_fault(view.page_base, origin);
      break;
    }
    case os::AllocKind::kManaged: {
      if (origin == mem::Node::kGpu) {
        const auto t = m_.gmmu().translate_gpu_table(va);
        m_.clock().advance(t.cost);
        if (t.outcome == pagetable::GpuXlatOutcome::kResident) {
          view.node = mem::Node::kGpu;
          gpu_block_bounds(va);
        } else {
          const auto r = managed_.gpu_fault(*vma, va, kernel_seq_);
          ++traffic_.managed_faults;
          view.node = r.node;
          view.remote_managed = r.remote_mapped;
          if (r.node == mem::Node::kGpu) {
            gpu_block_bounds(va);
          } else {
            system_page_bounds(va);
          }
        }
      } else {
        const auto t = m_.smmu().translate_cpu(va);
        m_.clock().advance(t.cost);
        view.node = t.present ? t.node : managed_.cpu_fault(*vma, va);
        if (view.node == mem::Node::kGpu) {
          // GPU-preferred range read remotely by the CPU (no migration).
          gpu_block_bounds(va);
        } else {
          system_page_bounds(va);
        }
      }
      break;
    }
  }
}

void System::commit(const PageView& view, std::uint64_t read_bytes,
                    std::uint64_t write_bytes, std::uint64_t lines,
                    std::uint64_t accesses) {
  if (accesses == 0) return;
  const std::uint64_t raw = read_bytes + write_bytes;
  if (raw == 0) return;
  const auto& costs = m_.config().costs;
  const std::uint64_t line_bytes = lines * view.line_size;
  // Unique-line volume split proportionally between reads and writes.
  const std::uint64_t lr = static_cast<std::uint64_t>(
      static_cast<double>(line_bytes) * static_cast<double>(read_bytes) /
      static_cast<double>(raw));
  const std::uint64_t lw = line_bytes - lr;

  sim::Picos t = 0;
  if (view.origin == mem::Node::kGpu) {
    traffic_.gpu_accesses += accesses;
    traffic_.l1l2_bytes += line_bytes;
    if (view.node == mem::Node::kGpu) {
      // Local HBM: DRAM moves 32-byte sectors, so sparse lines cost at
      // least a quarter of the 128-byte line volume.
      const std::uint64_t cr = std::max(read_bytes, lr / 4);
      const std::uint64_t cw = std::max(write_bytes, lw / 4);
      t += m_.hbm().read_time(cr) + m_.hbm().write_time(cw);
      traffic_.hbm_read_bytes += cr;
      traffic_.hbm_write_bytes += cw;
    } else {
      // Remote access over NVLink-C2C at GPU cacheline (128 B) granularity.
      sim::Picos link = m_.c2c().transfer(interconnect::Direction::kCpuToGpu, lr) +
                        m_.c2c().transfer(interconnect::Direction::kGpuToCpu, lw);
      if (view.remote_managed) {
        link = static_cast<sim::Picos>(static_cast<double>(link) /
                                       costs.managed_remote_efficiency);
      }
      t += link;
      traffic_.c2c_read_bytes += lr;
      traffic_.c2c_write_bytes += lw;
      if (view.kind == os::AllocKind::kSystem) {
        ac_.note_gpu_access(*view.vma, view.page_base, lines, kernel_seq_);
      }
    }
    if (view.kind == os::AllocKind::kManaged && view.node == mem::Node::kGpu) {
      managed_.touch_gpu_block(view.page_base, kernel_seq_);
      // A write to a read-duplicated block collapses the GPU replica (the
      // next access re-resolves via the epoch bump).
      if (write_bytes > 0 && managed_.is_replica(view.page_base)) {
        managed_.collapse_replica(*view.vma, view.page_base);
      }
    }
  } else {
    if (view.node == mem::Node::kCpu) {
      t += m_.ddr().read_time(lr) + m_.ddr().write_time(lw);
      traffic_.ddr_read_bytes += lr;
      traffic_.ddr_write_bytes += lw;
      if (view.kind == os::AllocKind::kManaged && write_bytes > 0) {
        // A CPU write invalidates any GPU read replica of this block.
        const std::uint64_t block = m_.gpu_pt().page_base(view.page_base);
        if (managed_.is_replica(block)) {
          managed_.collapse_replica(*view.vma, block);
        }
      }
    } else {
      // CPU touching GPU-resident data: coherent remote access over C2C.
      t += m_.c2c().transfer(interconnect::Direction::kGpuToCpu, lr) +
           m_.c2c().transfer(interconnect::Direction::kCpuToGpu, lw);
      traffic_.cpu_remote_read_bytes += lr;
      traffic_.cpu_remote_write_bytes += lw;
      if (view.kind == os::AllocKind::kSystem) {
        ac_.note_cpu_access(*view.vma, view.page_base, lines);
      }
    }
  }
  m_.clock().advance(t);
}

}  // namespace ghum::core
