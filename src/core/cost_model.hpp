#pragma once

#include <cstdint>

#include "sim/time.hpp"

/// \file cost_model.hpp
/// Every modeled software/firmware cost in one place. Bandwidths of the
/// memory devices and the NVLink-C2C link live in their own specs
/// (mem/memory_device.hpp, interconnect/nvlink_c2c.hpp) since the paper
/// measures them directly; this struct holds the *management* costs (fault
/// handling, PTE bookkeeping, migration overheads) that the paper observes
/// only through end-to-end effects. Defaults are calibrated so that the
/// relative shapes of the paper's figures are reproduced (EXPERIMENTS.md
/// records paper-vs-measured for each); ablation benches perturb them.

namespace ghum::core {

struct CostModel {
  // --- GPU context -------------------------------------------------------
  /// One-time GPU context initialization. Charged at the first CUDA-style
  /// API call. In the system-memory version no CUDA allocation/copy happens
  /// before the first kernel, so this cost lands *inside* the first kernel
  /// launch (paper Section 4). The real cost is hundreds of milliseconds;
  /// it is scaled with the problem sizes (DESIGN.md Section 4) so its
  /// share of end-to-end time matches the paper's regime.
  sim::Picos context_init = sim::milliseconds(8);

  /// Fixed overhead of launching a kernel.
  sim::Picos kernel_launch = sim::microseconds(4);

  // --- Allocation --------------------------------------------------------
  sim::Picos malloc_base = sim::microseconds(2);          ///< mmap-style VMA creation
  sim::Picos managed_alloc_base = sim::microseconds(12);  ///< cudaMallocManaged
  sim::Picos gpu_alloc_base = sim::microseconds(10);      ///< cudaMalloc
  /// Per-page VA-range bookkeeping at allocation (entries stay invalid:
  /// physical memory is only assigned at first touch, Section 2.2).
  sim::Picos alloc_per_page = sim::nanoseconds(12);

  // --- Deallocation ------------------------------------------------------
  /// Tearing down one *present* PTE at free() (zap + frame return). This is
  /// why 4 KiB deallocation is 4.6x-38x slower than 64 KiB (Figure 6).
  sim::Picos unmap_per_page = sim::nanoseconds(180);
  /// Per-VMA TLB shootdown / unmap syscall overhead.
  sim::Picos unmap_base = sim::microseconds(3);

  // --- First touch (system page table) -----------------------------------
  /// CPU-origin minor fault: trap, find free frame, update PTE, return.
  sim::Picos cpu_minor_fault = sim::microseconds(0.6);
  /// GPU-origin replayable fault on system memory: SMMU raises the fault,
  /// the OS handles it on a CPU core, the access is replayed over ATS.
  /// Much heavier than a CPU minor fault (paper Section 5.1.2).
  sim::Picos gpu_replayable_fault = sim::microseconds(1.5);
  /// Kernel zeroing of anonymous pages at first touch, bytes/second.
  /// (CONFIG_INIT_ON_ALLOC is off per the paper's system configuration;
  /// this is the unavoidable anonymous-page clearing.)
  double fault_zero_bandwidth_Bps = 20e9;

  // --- Managed memory (GMMU faults, driver migrations) -------------------
  /// Handling one GMMU fault batch: fault reporting, driver processing,
  /// unmap/remap. Covers up to one 2 MiB block thanks to fault batching
  /// and the driver prefetcher.
  sim::Picos managed_fault_batch = sim::microseconds(35);
  /// Driver-side fixed overhead per migrated system page (H2D or D2H).
  sim::Picos migrate_per_page = sim::nanoseconds(30);
  /// Migration copies achieve this fraction of the raw link bandwidth
  /// (pipelining losses, dual page-table updates).
  double migration_efficiency = 0.7;
  /// Evicting one managed block under memory pressure (pick victim,
  /// writeback, remap on CPU), excluding the copy itself.
  sim::Picos evict_per_block = sim::microseconds(15);
  /// Effective fraction of C2C bandwidth achieved by GPU accesses to
  /// *managed* CPU-resident pages mapped remotely (the thrash-guard
  /// fallback). The paper observes that the oversubscribed 34-qubit
  /// managed run accesses everything over NVLink-C2C "at a low bandwidth"
  /// (Section 7) — remote managed mappings go through 4 KiB ATS entries
  /// and lack the coalescing of native system-memory accesses.
  double managed_remote_efficiency = 0.25;

  // --- Access-counter migrations (system memory, Section 2.2.1) ----------
  /// Handling one access-counter notification interrupt on the CPU
  /// (notifications are pulled from the buffer in coalesced batches, so
  /// the per-notification cost is modest).
  sim::Picos counter_notification = sim::microseconds(3);
  /// Extra latency suffered by an access that touches a region while the
  /// driver is migrating it (Section 5.2: "temporary latency increase when
  /// the computation accesses pages that are being migrated").
  sim::Picos inflight_migration_stall = sim::microseconds(2);

  // --- Host registration (Section 5.1.2 optimization) ---------------------
  /// Fixed cost of cudaHostRegister-style registration, excluding the
  /// per-page population (the paper measures ~300 ms on srad at full scale;
  /// the bulk of that is per-page PTE population, modeled separately).
  sim::Picos host_register_base = sim::microseconds(400);
  /// Per-page PTE population during registration / pre-touch loops.
  sim::Picos host_register_per_page = sim::nanoseconds(400);

  // --- Explicit copies ----------------------------------------------------
  /// cudaMemcpy fixed overhead per call.
  sim::Picos memcpy_base = sim::microseconds(8);
  /// cudaMemcpy from/to pageable host memory stages through a pinned
  /// bounce buffer and achieves only this fraction of link bandwidth.
  double memcpy_pageable_efficiency = 0.65;
  /// cudaFree-style teardown of a GPU-only allocation (driver VA release,
  /// context synchronization) — notoriously more expensive than free().
  /// This is a major contributor to the paper's observation that the
  /// system-memory version of needle/pathfinder beats even the explicit
  /// version ("significant difference in the allocation and de-allocation
  /// time depending on the type of memory management", Section 4).
  sim::Picos gpu_free_base = sim::microseconds(180);

  // --- Fault handling (fault-injection subsystem) --------------------------
  /// Driver-side handling of one uncorrectable-ECC retirement: parse the
  /// error record, offline the affected frames, update the retirement map.
  /// (Real driver: dynamic page retirement / row remapping on recoverable
  /// paths; we only model the bookkeeping latency, not a process kill.)
  sim::Picos ecc_retire = sim::microseconds(50);
  /// Driver-side handling of a GPU channel reset: tear down the faulted
  /// channel, invalidate GMMU/TLB state, poison the victim's
  /// device-resident pages. (Real driver: robust-channel recovery; the
  /// hundreds-of-microseconds scale matches observed Xid-handling
  /// latencies, not a full device reinit.)
  sim::Picos gpu_reset = sim::microseconds(500);

  // --- GPU compute throughput ---------------------------------------------
  /// Used to convert kernels' arithmetic-work hints into a compute-time
  /// floor: simulated kernel time is at least work_flops / this.
  double gpu_flops = 30e12;   ///< sustained FP64-ish rate for these kernels
  double cpu_flops = 0.4e12;  ///< host-side loop throughput (72-core Grace, scalar-ish)
};

}  // namespace ghum::core
