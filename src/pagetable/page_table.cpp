#include "pagetable/page_table.hpp"

#include <bit>
#include <stdexcept>

namespace ghum::pagetable {

PageTable::PageTable(std::uint64_t page_size) : page_size_(page_size) {
  if (page_size == 0 || !std::has_single_bit(page_size)) {
    throw std::invalid_argument{"PageTable: page size must be a power of two"};
  }
  page_shift_ = static_cast<unsigned>(std::countr_zero(page_size));
}

const Pte* PageTable::lookup(std::uint64_t va) const {
  auto it = entries_.find(vpn(va));
  return it == entries_.end() ? nullptr : &it->second;
}

Pte* PageTable::lookup_mut(std::uint64_t va) {
  auto it = entries_.find(vpn(va));
  return it == entries_.end() ? nullptr : &it->second;
}

void PageTable::map(std::uint64_t va, Pte pte) { entries_[vpn(va)] = pte; }

bool PageTable::unmap(std::uint64_t va) { return entries_.erase(vpn(va)) > 0; }

void PageTable::set_node(std::uint64_t va, mem::Node node) {
  auto it = entries_.find(vpn(va));
  if (it == entries_.end()) {
    throw std::logic_error{"PageTable::set_node: page not mapped"};
  }
  it->second.node = node;
}

std::uint64_t PageTable::resident_run_end(std::uint64_t va, mem::Node node,
                                          std::uint64_t limit,
                                          std::size_t max_pages) const {
  std::uint64_t end = page_base(va) + page_size_;
  for (std::size_t n = 1; n < max_pages && end < limit; ++n) {
    auto it = entries_.find(vpn(end));
    if (it == entries_.end() || it->second.node != node) break;
    end += page_size_;
  }
  return end < limit ? end : limit;
}

std::size_t PageTable::resident_pages(mem::Node node) const {
  std::size_t n = 0;
  for (const auto& [vpn, pte] : entries_) {
    (void)vpn;
    if (pte.node == node) ++n;
  }
  return n;
}

}  // namespace ghum::pagetable
