#include "pagetable/page_table.hpp"

#include <bit>
#include <stdexcept>

namespace ghum::pagetable {

PageTable::PageTable(std::uint64_t page_size) : page_size_(page_size) {
  if (page_size == 0 || !std::has_single_bit(page_size)) {
    throw std::invalid_argument{"PageTable: page size must be a power of two"};
  }
  page_shift_ = static_cast<unsigned>(std::countr_zero(page_size));
}

PageTable::RunMap::const_iterator PageTable::find_run(std::uint64_t vpn) const {
  auto it = runs_.upper_bound(vpn);
  if (it == runs_.begin()) return runs_.end();
  --it;
  return vpn < it->first + it->second.pages ? it : runs_.end();
}

PageTable::RunMap::iterator PageTable::find_run_mut(std::uint64_t vpn) {
  auto it = runs_.upper_bound(vpn);
  if (it == runs_.begin()) return runs_.end();
  --it;
  return vpn < it->first + it->second.pages ? it : runs_.end();
}

void PageTable::account(std::uint64_t pages, mem::Node node, bool add) noexcept {
  auto& per_node = node_pages_[static_cast<std::size_t>(node)];
  if (add) {
    total_pages_ += pages;
    per_node += pages;
  } else {
    total_pages_ -= pages;
    per_node -= pages;
  }
}

void PageTable::split_before(std::uint64_t vpn) {
  auto it = find_run_mut(vpn);
  if (it == runs_.end() || it->first == vpn) return;
  const std::uint64_t head = vpn - it->first;
  const Run tail{it->second.pages - head, it->second.pte};
  it->second.pages = head;
  runs_.emplace_hint(std::next(it), vpn, tail);
}

PageTable::RunMap::iterator PageTable::merge_left(RunMap::iterator it) {
  if (it == runs_.begin()) return it;
  auto prev = std::prev(it);
  if (prev->first + prev->second.pages != it->first ||
      !(prev->second.pte == it->second.pte)) {
    return it;
  }
  prev->second.pages += it->second.pages;
  runs_.erase(it);
  return prev;
}

void PageTable::insert_run(std::uint64_t first_vpn, std::uint64_t pages, Pte pte) {
  if (pages == 0) return;
  auto [it, inserted] = runs_.emplace(first_vpn, Run{pages, pte});
  if (!inserted) throw std::logic_error{"PageTable: overlapping run insert"};
  account(pages, pte.node, /*add=*/true);
  it = merge_left(it);
  auto next = std::next(it);
  if (next != runs_.end()) merge_left(next);
}

const Pte* PageTable::lookup(std::uint64_t va) const {
  auto it = find_run(vpn(va));
  return it == runs_.end() ? nullptr : &it->second.pte;
}

void PageTable::map(std::uint64_t va, Pte pte) { map_range(va, 1, pte); }

bool PageTable::unmap(std::uint64_t va) { return unmap_range(va, 1) > 0; }

void PageTable::set_node(std::uint64_t va, mem::Node node) {
  if (lookup(va) == nullptr) {
    throw std::logic_error{"PageTable::set_node: page not mapped"};
  }
  (void)set_node_range(va, 1, node);
}

void PageTable::set_numa_generation(std::uint64_t va, std::uint32_t generation) {
  const std::uint64_t v = vpn(va);
  if (find_run(v) == runs_.end()) {
    throw std::logic_error{"PageTable::set_numa_generation: page not mapped"};
  }
  split_before(v);
  split_before(v + 1);
  auto it = runs_.find(v);
  it->second.pte.numa_generation = generation;
  it = merge_left(it);
  auto next = std::next(it);
  if (next != runs_.end()) merge_left(next);
}

void PageTable::map_range(std::uint64_t va, std::uint64_t pages, Pte pte) {
  if (pages == 0) return;
  (void)unmap_range(va, pages);  // overwrite semantics
  insert_run(vpn(va), pages, pte);
}

std::uint64_t PageTable::unmap_range(std::uint64_t va, std::uint64_t pages) {
  if (pages == 0) return 0;
  const std::uint64_t lo = vpn(va);
  const std::uint64_t hi = lo + pages;
  split_before(lo);
  split_before(hi);
  auto it = runs_.lower_bound(lo);
  std::uint64_t removed = 0;
  while (it != runs_.end() && it->first < hi) {
    removed += it->second.pages;
    account(it->second.pages, it->second.pte.node, /*add=*/false);
    it = runs_.erase(it);
  }
  return removed;
}

std::uint64_t PageTable::set_node_range(std::uint64_t va, std::uint64_t pages,
                                        mem::Node node) {
  if (pages == 0) return 0;
  const std::uint64_t lo = vpn(va);
  const std::uint64_t hi = lo + pages;
  split_before(lo);
  split_before(hi);
  std::uint64_t changed = 0;
  auto it = runs_.lower_bound(lo);
  while (it != runs_.end() && it->first < hi) {
    if (it->second.pte.node != node) {
      account(it->second.pages, it->second.pte.node, /*add=*/false);
      it->second.pte.node = node;
      account(it->second.pages, node, /*add=*/true);
      changed += it->second.pages;
    }
    it = merge_left(it);
    ++it;
  }
  // Re-join the run starting exactly at hi with its (possibly rewritten)
  // left neighbour, undoing the split when attributes still match.
  if (it != runs_.end() && it->first == hi) (void)merge_left(it);
  return changed;
}

std::uint64_t PageTable::resident_pages_in_range(std::uint64_t va,
                                                 std::uint64_t pages) const {
  std::uint64_t n = 0;
  for_each_run_in_range(va, pages,
                        [&n](std::uint64_t, std::uint64_t run_pages, const Pte&) {
                          n += run_pages;
                        });
  return n;
}

std::uint64_t PageTable::resident_run_end(std::uint64_t va, mem::Node node,
                                          std::uint64_t limit,
                                          std::size_t max_pages) const {
  const std::uint64_t v = vpn(va);
  std::uint64_t end_vpn = v + 1;
  auto it = find_run(v);
  if (it != runs_.end() && it->second.pte.node == node) {
    end_vpn = it->first + it->second.pages;
  } else {
    // The anchor page was already resolved by the caller, so its own
    // state is irrelevant; extend across the next extent when contiguous.
    auto next = find_run(v + 1);
    if (next != runs_.end() && next->second.pte.node == node) {
      end_vpn = next->first + next->second.pages;
    }
  }
  if (end_vpn - v > max_pages) end_vpn = v + max_pages;
  std::uint64_t end = end_vpn << page_shift_;
  const std::uint64_t floor = page_base(va) + page_size_;
  if (end < floor) end = floor;
  return end < limit ? end : limit;
}

void PageTable::clear() {
  runs_.clear();
  total_pages_ = 0;
  node_pages_[0] = node_pages_[1] = 0;
}

}  // namespace ghum::pagetable
