#pragma once

#include <cstdint>

#include "pagetable/page_table.hpp"
#include "pagetable/tlb.hpp"
#include "sim/time.hpp"

/// \file smmu.hpp
/// The System Memory Management Unit (paper Section 2.1.2). The SMMU,
/// defined by Arm's SMMUv3 specification, performs virtual-to-physical
/// translation by walking the *system-wide page table*. Unlike a classic
/// MMU it additionally serves translation requests arriving from the GPU
/// over NVLink-C2C through the Address Translation Service (ATS): the GPU's
/// ATS-TBU sends a translation request, the SMMU walks the system page
/// table, and either returns a translation or raises a page fault that the
/// OS handles with its regular fault path.
///
/// This class is pure mechanism: it resolves translations and reports
/// faults with their modeled latency. Fault *handling* (first-touch
/// placement) is policy and lives in os/page_fault.hpp.

namespace ghum::pagetable {

/// Outcome of one translation attempt.
struct Translation {
  bool present = false;      ///< true when a valid PTE was found
  bool tlb_hit = false;      ///< translation served from a TLB
  mem::Node node = mem::Node::kCpu;  ///< resident tier when present
  sim::Picos cost = 0;       ///< modeled time spent translating
};

struct SmmuCosts {
  /// Effective (overlap-adjusted) cost of one system page-table walk. Raw
  /// walk latency is ~150 ns, but the SMMU pipelines many walks while the
  /// model charges them serially once per page visit, so a
  /// throughput-equivalent value is used. Page *faults* — the expensive
  /// path the paper studies — are charged separately by the OS layer.
  sim::Picos walk = sim::nanoseconds(2);
  /// GPU -> SMMU translation request over NVLink-C2C
  /// (throughput-equivalent; see walk).
  sim::Picos ats_round_trip = sim::nanoseconds(3);
};

class Smmu {
 public:
  Smmu(PageTable& system_pt, SmmuCosts costs, std::size_t cpu_tlb_entries,
       std::size_t ats_tlb_entries)
      : system_pt_(&system_pt),
        costs_(costs),
        cpu_tlb_(cpu_tlb_entries),
        ats_tlb_(ats_tlb_entries) {}

  /// Translation for a CPU-core access.
  [[nodiscard]] Translation translate_cpu(std::uint64_t va);

  /// Translation for a GPU-originated ATS request (arrives over C2C).
  [[nodiscard]] Translation translate_ats(std::uint64_t va);

  /// Invalidate cached translations for the page containing \p va
  /// (called on migration/unmap; shootdown cost is charged by the caller).
  void invalidate(std::uint64_t va);

  /// Drops every cached translation for pages overlapping [va, va+bytes)
  /// from both TLBs (bulk shootdown for range unmap/migration).
  void invalidate_range(std::uint64_t va, std::uint64_t bytes);
  void flush_tlbs();

  /// VPN of \p va at system-page granularity (used by the GMMU to key its
  /// ATS-result cache the same way the SMMU keys the system page table).
  [[nodiscard]] std::uint64_t system_vpn(std::uint64_t va) const noexcept {
    return system_pt_->vpn(va);
  }

  [[nodiscard]] const Tlb& cpu_tlb() const noexcept { return cpu_tlb_; }
  [[nodiscard]] const Tlb& ats_tlb() const noexcept { return ats_tlb_; }
  /// Mutable access for observability wiring (Tlb::bind_metrics).
  [[nodiscard]] Tlb& cpu_tlb() noexcept { return cpu_tlb_; }
  [[nodiscard]] Tlb& ats_tlb() noexcept { return ats_tlb_; }
  [[nodiscard]] const SmmuCosts& costs() const noexcept { return costs_; }

 private:
  PageTable* system_pt_;
  SmmuCosts costs_;
  Tlb cpu_tlb_;
  Tlb ats_tlb_;
};

}  // namespace ghum::pagetable
