#pragma once

#include <cstdint>
#include <unordered_map>

#include "mem/node.hpp"

/// \file page_table.hpp
/// Page tables of the Grace Hopper system (paper Section 2.1.3). Two
/// instances exist:
///  - the *system-wide page table*, located in CPU memory, managed by the
///    OS, used by the SMMU to translate for both CPU and GPU (via ATS).
///    Its page size is the system page size: 4 KiB or 64 KiB on Grace.
///  - the *GPU-exclusive page table*, located in GPU memory, used by the
///    GMMU for cudaMalloc allocations and for managed allocations whose
///    physical location is GPU memory. Its page size is 2 MiB.

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::pagetable {

struct Pte {
  mem::Node node = mem::Node::kCpu;  ///< tier holding the physical frame
  bool writable = true;
  /// AutoNUMA scanner generation that last hint-faulted this page (only
  /// meaningful when SystemConfig::autonuma_balancing is on).
  std::uint32_t numa_generation = 0;
};

class PageTable {
 public:
  explicit PageTable(std::uint64_t page_size);

  [[nodiscard]] std::uint64_t page_size() const noexcept { return page_size_; }

  [[nodiscard]] std::uint64_t vpn(std::uint64_t va) const noexcept {
    return va >> page_shift_;
  }
  [[nodiscard]] std::uint64_t page_base(std::uint64_t va) const noexcept {
    return va & ~(page_size_ - 1);
  }

  /// nullptr when the page is not mapped (not present).
  [[nodiscard]] const Pte* lookup(std::uint64_t va) const;

  /// Mutable entry access (AutoNUMA generation bookkeeping).
  [[nodiscard]] Pte* lookup_mut(std::uint64_t va);

  /// Creates or overwrites the entry for the page containing \p va.
  void map(std::uint64_t va, Pte pte);

  /// Removes the entry; returns true if one existed.
  bool unmap(std::uint64_t va);

  /// Changes the resident node of an existing entry.
  void set_node(std::uint64_t va, mem::Node node);

  [[nodiscard]] std::size_t mapped_pages() const noexcept { return entries_.size(); }

  /// End (exclusive) of the residency run starting at \p va: scans forward
  /// while consecutive pages are present on \p node, so Span can learn
  /// "the next N pages are on the same node" in one call. The scan is
  /// clamped to \p limit (typically the VMA end) and to \p max_pages to
  /// bound the per-call cost. Returns at least the end of \p va's page.
  [[nodiscard]] std::uint64_t resident_run_end(std::uint64_t va, mem::Node node,
                                               std::uint64_t limit,
                                               std::size_t max_pages) const;

  /// Count of mapped pages resident on \p node (O(n); for tests/reports).
  [[nodiscard]] std::size_t resident_pages(mem::Node node) const;

 private:
  std::uint64_t page_size_;
  unsigned page_shift_;
  std::unordered_map<std::uint64_t, Pte> entries_;  // keyed by VPN

  friend class ghum::chk::Snapshotter;
};

/// GPU-exclusive page table page size (constant on Hopper).
inline constexpr std::uint64_t kGpuPageSize = 2ull << 20;

/// Valid Grace system page sizes.
inline constexpr std::uint64_t kSystemPage4K = 4ull << 10;
inline constexpr std::uint64_t kSystemPage64K = 64ull << 10;

}  // namespace ghum::pagetable
