#pragma once

#include <cstdint>
#include <map>

#include "mem/node.hpp"

/// \file page_table.hpp
/// Page tables of the Grace Hopper system (paper Section 2.1.3). Two
/// instances exist:
///  - the *system-wide page table*, located in CPU memory, managed by the
///    OS, used by the SMMU to translate for both CPU and GPU (via ATS).
///    Its page size is the system page size: 4 KiB or 64 KiB on Grace.
///  - the *GPU-exclusive page table*, located in GPU memory, used by the
///    GMMU for cudaMalloc allocations and for managed allocations whose
///    physical location is GPU memory. Its page size is 2 MiB.
///
/// Residency is stored as *extents* (maximal runs of pages with identical
/// attributes), not per-page entries: at the paper's real capacities
/// (96 GB HBM + 480 GB LPDDR5X, Section 3) a dense allocation is millions
/// of 64 KiB pages, and per-page hash entries made the simulator's own
/// wall clock the experiment bottleneck. Runs keep the map size
/// proportional to *fragmentation* (placement boundaries), which the
/// paper's workloads keep small, while per-page semantics are preserved
/// exactly: every query/mutation behaves as if each page had its own PTE.

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::pagetable {

struct Pte {
  mem::Node node = mem::Node::kCpu;  ///< tier holding the physical frame
  bool writable = true;
  /// AutoNUMA scanner generation that last hint-faulted this page (only
  /// meaningful when SystemConfig::autonuma_balancing is on).
  std::uint32_t numa_generation = 0;

  [[nodiscard]] friend bool operator==(const Pte&, const Pte&) = default;
};

class PageTable {
 public:
  explicit PageTable(std::uint64_t page_size);

  [[nodiscard]] std::uint64_t page_size() const noexcept { return page_size_; }

  [[nodiscard]] std::uint64_t vpn(std::uint64_t va) const noexcept {
    return va >> page_shift_;
  }
  [[nodiscard]] std::uint64_t page_base(std::uint64_t va) const noexcept {
    return va & ~(page_size_ - 1);
  }

  /// nullptr when the page is not mapped (not present). The pointer is
  /// only valid until the next mutation (runs split/merge under it).
  [[nodiscard]] const Pte* lookup(std::uint64_t va) const;

  /// Creates or overwrites the entry for the page containing \p va.
  void map(std::uint64_t va, Pte pte);

  /// Removes the entry; returns true if one existed.
  bool unmap(std::uint64_t va);

  /// Changes the resident node of an existing entry.
  void set_node(std::uint64_t va, mem::Node node);

  /// Bumps the AutoNUMA generation of an existing entry (splits its run;
  /// re-coalesces once neighbours catch up to the same generation).
  void set_numa_generation(std::uint64_t va, std::uint32_t generation);

  // --- Bulk splices (single O(log n + runs-touched) operations) ---------

  /// Maps \p pages pages starting at page_base(va) with \p pte in one
  /// splice, overwriting any prior entries in the range.
  void map_range(std::uint64_t va, std::uint64_t pages, Pte pte);

  /// Unmaps the range; returns how many pages were actually mapped.
  std::uint64_t unmap_range(std::uint64_t va, std::uint64_t pages);

  /// Moves every mapped page in the range to \p node; returns how many
  /// pages changed node (pages already there are untouched).
  std::uint64_t set_node_range(std::uint64_t va, std::uint64_t pages,
                               mem::Node node);

  // --- Queries ----------------------------------------------------------

  [[nodiscard]] std::size_t mapped_pages() const noexcept {
    return static_cast<std::size_t>(total_pages_);
  }

  /// Count of mapped pages resident on \p node. O(1): reads the cached
  /// per-node counter (profiler/report sampling must never scan the map).
  [[nodiscard]] std::size_t resident_pages(mem::Node node) const noexcept {
    return static_cast<std::size_t>(node_pages_[static_cast<std::size_t>(node)]);
  }
  [[nodiscard]] std::uint64_t resident_bytes(mem::Node node) const noexcept {
    return node_pages_[static_cast<std::size_t>(node)] * page_size_;
  }

  /// Mapped pages inside [page_base(va), +pages), any node. O(runs in range).
  [[nodiscard]] std::uint64_t resident_pages_in_range(std::uint64_t va,
                                                      std::uint64_t pages) const;

  /// Number of extents currently stored (fragmentation metric; a dense
  /// resident allocation is one run regardless of its page count).
  [[nodiscard]] std::size_t run_count() const noexcept { return runs_.size(); }

  /// Cumulative count of run-map elements visited by linear walks
  /// (for_each_run / range iteration). Point queries and the cached
  /// residency counters never advance it — tests assert sampling paths
  /// leave it untouched.
  [[nodiscard]] std::uint64_t scan_steps() const noexcept { return scan_steps_; }

  /// End (exclusive) of the residency run starting at \p va: the extent
  /// containing \p va answers "the next N pages are on the same node" in
  /// one O(log n) lookup (no per-page scan). The first page is never
  /// checked — the caller already resolved it — so from an unmapped or
  /// mismatched page the run may still extend across the *next* extent
  /// when it matches \p node. Attribute boundaries (writable, AutoNUMA
  /// generation) terminate the run because extents are attribute-maximal.
  /// Clamped to \p limit (typically the VMA end) and \p max_pages.
  /// Returns at least the end of \p va's page.
  [[nodiscard]] std::uint64_t resident_run_end(std::uint64_t va, mem::Node node,
                                               std::uint64_t limit,
                                               std::size_t max_pages) const;

  /// Ordered iteration over all extents: fn(first_vpn, pages, pte).
  template <typename F>
  void for_each_run(F&& fn) const {
    for (const auto& [first_vpn, run] : runs_) {
      ++scan_steps_;
      fn(first_vpn, run.pages, run.pte);
    }
  }

  /// Ordered iteration over the mapped sub-runs overlapping
  /// [vpn(va), +pages), clipped to the range: fn(first_vpn, pages, pte).
  template <typename F>
  void for_each_run_in_range(std::uint64_t va, std::uint64_t pages, F&& fn) const {
    const std::uint64_t lo = vpn(va);
    const std::uint64_t hi = lo + pages;
    auto it = runs_.upper_bound(lo);
    if (it != runs_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second.pages > lo) it = prev;
    }
    for (; it != runs_.end() && it->first < hi; ++it) {
      ++scan_steps_;
      const std::uint64_t a = it->first > lo ? it->first : lo;
      const std::uint64_t end = it->first + it->second.pages;
      const std::uint64_t b = end < hi ? end : hi;
      fn(a, b - a, it->second.pte);
    }
  }

  /// Drops every entry (checkpoint restore).
  void clear();

 private:
  struct Run {
    std::uint64_t pages = 0;
    Pte pte;
  };
  using RunMap = std::map<std::uint64_t, Run>;  // keyed by first VPN of run

  [[nodiscard]] RunMap::const_iterator find_run(std::uint64_t vpn) const;
  [[nodiscard]] RunMap::iterator find_run_mut(std::uint64_t vpn);
  /// Ensures no run straddles \p vpn (splits the containing run in two).
  void split_before(std::uint64_t vpn);
  /// Merges \p it into its predecessor when contiguous with equal
  /// attributes; returns the iterator holding the (possibly merged) run.
  RunMap::iterator merge_left(RunMap::iterator it);
  /// Inserts a run known not to overlap anything, then coalesces.
  void insert_run(std::uint64_t first_vpn, std::uint64_t pages, Pte pte);
  void account(std::uint64_t pages, mem::Node node, bool add) noexcept;

  std::uint64_t page_size_;
  unsigned page_shift_;
  RunMap runs_;
  std::uint64_t total_pages_ = 0;
  std::uint64_t node_pages_[2] = {0, 0};
  mutable std::uint64_t scan_steps_ = 0;

  friend class ghum::chk::Snapshotter;
};

/// GPU-exclusive page table page size (constant on Hopper).
inline constexpr std::uint64_t kGpuPageSize = 2ull << 20;

/// Valid Grace system page sizes.
inline constexpr std::uint64_t kSystemPage4K = 4ull << 10;
inline constexpr std::uint64_t kSystemPage64K = 64ull << 10;

}  // namespace ghum::pagetable
