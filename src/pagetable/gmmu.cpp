#include "pagetable/gmmu.hpp"

namespace ghum::pagetable {

GpuTranslation Gmmu::translate_gpu_table(std::uint64_t va) {
  const std::uint64_t vpn = gpu_pt_->vpn(va);
  if (auto node = utlb_gpu_.lookup(vpn)) {
    return GpuTranslation{.outcome = GpuXlatOutcome::kResident, .tlb_hit = true,
                          .node = *node, .cost = 0};
  }
  const Pte* pte = gpu_pt_->lookup(va);
  if (pte == nullptr) {
    return GpuTranslation{.outcome = GpuXlatOutcome::kManagedFault, .tlb_hit = false,
                          .node = mem::Node::kCpu, .cost = costs_.walk};
  }
  utlb_gpu_.insert(vpn, pte->node);
  return GpuTranslation{.outcome = GpuXlatOutcome::kResident, .tlb_hit = false,
                        .node = pte->node, .cost = costs_.walk};
}

GpuTranslation Gmmu::translate_system(std::uint64_t va) {
  // The uTLB caches earlier ATS answers at system-page granularity; a hit
  // means the ATS-TBU already holds the translation, so no C2C round trip.
  const std::uint64_t vpn = smmu_->system_vpn(va);
  if (auto node = utlb_sys_.lookup(vpn)) {
    return GpuTranslation{.outcome = GpuXlatOutcome::kResident, .tlb_hit = true,
                          .node = *node, .cost = 0};
  }
  const Translation t = smmu_->translate_ats(va);
  if (!t.present) {
    return GpuTranslation{.outcome = GpuXlatOutcome::kSystemFirstTouch,
                          .tlb_hit = false, .node = mem::Node::kCpu, .cost = t.cost};
  }
  utlb_sys_.insert(vpn, t.node);
  return GpuTranslation{.outcome = GpuXlatOutcome::kResident, .tlb_hit = false,
                        .node = t.node, .cost = t.cost};
}

void Gmmu::invalidate_gpu_table(std::uint64_t va) {
  utlb_gpu_.invalidate(gpu_pt_->vpn(va));
}

void Gmmu::invalidate_system(std::uint64_t va) {
  utlb_sys_.invalidate(smmu_->system_vpn(va));
}

void Gmmu::invalidate_system_range(std::uint64_t va, std::uint64_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t first = smmu_->system_vpn(va);
  const std::uint64_t last = smmu_->system_vpn(va + bytes - 1) + 1;
  utlb_sys_.invalidate_range(first, last);
}

void Gmmu::flush_tlbs() {
  utlb_gpu_.flush();
  utlb_sys_.flush();
}

}  // namespace ghum::pagetable
