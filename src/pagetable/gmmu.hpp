#pragma once

#include <cstdint>

#include "pagetable/page_table.hpp"
#include "pagetable/smmu.hpp"
#include "pagetable/tlb.hpp"

/// \file gmmu.hpp
/// The GPU Memory Management Unit. For a GPU access the GMMU first
/// consults the GPU uTLBs; on a miss it walks the *GPU-exclusive page
/// table* (2 MiB pages; cudaMalloc and GPU-resident managed allocations).
/// If the address is not there, behaviour depends on the allocation type
/// (paper Sections 2.2/2.3):
///  - system allocations: the ATS-TBU forwards a translation request to
///    the SMMU over NVLink-C2C; an unmapped page becomes an SMMU fault
///    that the OS resolves (GPU first-touch) — *not* a GPU page fault;
///  - managed allocations: a GMMU page fault is raised and the GPU driver
///    resolves it by migrating pages to GPU memory (pre-Grace-Hopper UVM
///    behaviour, retained for cudaMallocManaged).
/// The caller tells translate() which path the VMA uses.

namespace ghum::pagetable {

/// What a GPU-side translation attempt resolved to.
enum class GpuXlatOutcome : std::uint8_t {
  kResident,          ///< valid translation found (either page table)
  kSystemFirstTouch,  ///< SMMU fault: OS must populate the system PTE
  kManagedFault,      ///< GMMU fault: driver must migrate the page in
};

struct GpuTranslation {
  GpuXlatOutcome outcome = GpuXlatOutcome::kResident;
  bool tlb_hit = false;
  mem::Node node = mem::Node::kGpu;
  sim::Picos cost = 0;
};

struct GmmuCosts {
  /// Effective (overlap-adjusted) GPU page-table walk in HBM, charged once
  /// per page visit (see SmmuCosts::walk for the rationale).
  sim::Picos walk = sim::nanoseconds(2);
};

class Gmmu {
 public:
  Gmmu(PageTable& gpu_pt, Smmu& smmu, GmmuCosts costs,
       std::size_t utlb_gpu_entries, std::size_t utlb_sys_entries)
      : gpu_pt_(&gpu_pt),
        smmu_(&smmu),
        costs_(costs),
        utlb_gpu_(utlb_gpu_entries),
        utlb_sys_(utlb_sys_entries) {}

  /// Translation for an access to a *GPU-page-table* backed range
  /// (cudaMalloc, or managed memory that may be GPU-resident).
  /// Misses on managed ranges produce kManagedFault.
  [[nodiscard]] GpuTranslation translate_gpu_table(std::uint64_t va);

  /// Translation for a *system-allocated* range: uTLB, then ATS to SMMU.
  [[nodiscard]] GpuTranslation translate_system(std::uint64_t va);

  void invalidate_gpu_table(std::uint64_t va);
  void invalidate_system(std::uint64_t va);

  /// Drops cached ATS answers for system pages in [va, va+bytes) (bulk
  /// shootdown companion to Smmu::invalidate_range).
  void invalidate_system_range(std::uint64_t va, std::uint64_t bytes);
  void flush_tlbs();

  [[nodiscard]] const Tlb& utlb_gpu() const noexcept { return utlb_gpu_; }
  [[nodiscard]] const Tlb& utlb_sys() const noexcept { return utlb_sys_; }
  /// Mutable access for observability wiring (Tlb::bind_metrics).
  [[nodiscard]] Tlb& utlb_gpu() noexcept { return utlb_gpu_; }
  [[nodiscard]] Tlb& utlb_sys() noexcept { return utlb_sys_; }

 private:
  PageTable* gpu_pt_;
  Smmu* smmu_;
  GmmuCosts costs_;
  Tlb utlb_gpu_;  ///< caches GPU-exclusive page table entries (2 MiB pages)
  Tlb utlb_sys_;  ///< caches ATS results (system page granularity)
};

}  // namespace ghum::pagetable
