#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "mem/node.hpp"
#include "obs/metrics.hpp"

/// \file tlb.hpp
/// A fully-associative LRU translation lookaside buffer. Grace Hopper has
/// several translation caches (CPU core TLBs, SMMU TLBs/TBU, GPU uTLBs);
/// we model each as one capacity-bounded LRU cache keyed by virtual page
/// number. A TLB hit avoids the page-walk cost; migration and unmapping
/// invalidate entries (TLB shootdown costs are charged by the cost model).

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::pagetable {

class Tlb {
 public:
  explicit Tlb(std::size_t capacity) : capacity_(capacity) {}

  /// Looks up a VPN; refreshes LRU position on hit.
  [[nodiscard]] std::optional<mem::Node> lookup(std::uint64_t vpn);

  /// Inserts (or refreshes) a translation, evicting LRU when full.
  void insert(std::uint64_t vpn, mem::Node node);

  /// Invalidates one VPN (no-op if absent).
  void invalidate(std::uint64_t vpn);

  /// Invalidates every cached VPN in [first, last): one walk over the
  /// bounded LRU list instead of one hash erase per page, so bulk unmap /
  /// migration splices cost O(TLB entries), not O(pages).
  void invalidate_range(std::uint64_t first, std::uint64_t last);

  /// Invalidates everything (full shootdown).
  void flush();

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

  /// Mirrors hit/miss counts into registry counters (obs subsystem). Bound
  /// once by core::Machine; nullptr (the default) means unobserved.
  void bind_metrics(obs::Counter* hits, obs::Counter* misses) noexcept {
    hits_ctr_ = hits;
    misses_ctr_ = misses;
  }

 private:
  struct Entry {
    std::uint64_t vpn;
    mem::Node node;
  };
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  obs::Counter* hits_ctr_ = nullptr;
  obs::Counter* misses_ctr_ = nullptr;

  // Restore rebuilds lru_/map_ in recency order and reinstates hits_/misses_
  // without touching the bound registry counters (those are restored with
  // the registry itself, avoiding double counting).
  friend class ghum::chk::Snapshotter;
};

}  // namespace ghum::pagetable
