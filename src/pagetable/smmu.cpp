#include "pagetable/smmu.hpp"

namespace ghum::pagetable {

Translation Smmu::translate_cpu(std::uint64_t va) {
  const std::uint64_t vpn = system_pt_->vpn(va);
  if (auto node = cpu_tlb_.lookup(vpn)) {
    return Translation{.present = true, .tlb_hit = true, .node = *node, .cost = 0};
  }
  const Pte* pte = system_pt_->lookup(va);
  if (pte == nullptr) {
    return Translation{.present = false, .tlb_hit = false, .node = mem::Node::kCpu,
                       .cost = costs_.walk};
  }
  cpu_tlb_.insert(vpn, pte->node);
  return Translation{.present = true, .tlb_hit = false, .node = pte->node,
                     .cost = costs_.walk};
}

Translation Smmu::translate_ats(std::uint64_t va) {
  const std::uint64_t vpn = system_pt_->vpn(va);
  if (auto node = ats_tlb_.lookup(vpn)) {
    return Translation{.present = true, .tlb_hit = true, .node = *node, .cost = 0};
  }
  const Pte* pte = system_pt_->lookup(va);
  const sim::Picos cost = costs_.ats_round_trip + costs_.walk;
  if (pte == nullptr) {
    return Translation{.present = false, .tlb_hit = false, .node = mem::Node::kCpu,
                       .cost = cost};
  }
  ats_tlb_.insert(vpn, pte->node);
  return Translation{.present = true, .tlb_hit = false, .node = pte->node, .cost = cost};
}

void Smmu::invalidate(std::uint64_t va) {
  const std::uint64_t vpn = system_pt_->vpn(va);
  cpu_tlb_.invalidate(vpn);
  ats_tlb_.invalidate(vpn);
}

void Smmu::invalidate_range(std::uint64_t va, std::uint64_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t first = system_pt_->vpn(va);
  const std::uint64_t last = system_pt_->vpn(va + bytes - 1) + 1;
  cpu_tlb_.invalidate_range(first, last);
  ats_tlb_.invalidate_range(first, last);
}

void Smmu::flush_tlbs() {
  cpu_tlb_.flush();
  ats_tlb_.flush();
}

}  // namespace ghum::pagetable
