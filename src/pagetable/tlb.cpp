#include "pagetable/tlb.hpp"

namespace ghum::pagetable {

std::optional<mem::Node> Tlb::lookup(std::uint64_t vpn) {
  auto it = map_.find(vpn);
  if (it == map_.end()) {
    ++misses_;
    if (misses_ctr_ != nullptr) misses_ctr_->inc();
    return std::nullopt;
  }
  ++hits_;
  if (hits_ctr_ != nullptr) hits_ctr_->inc();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->node;
}

void Tlb::insert(std::uint64_t vpn, mem::Node node) {
  // A zero-capacity TLB caches nothing (no-TLB ablation): without this
  // guard the evict-then-insert below would still insert, making
  // capacity 0 behave as a size-1 cache and under-charging page walks.
  if (capacity_ == 0) return;
  auto it = map_.find(vpn);
  if (it != map_.end()) {
    it->second->node = node;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_ && !lru_.empty()) {
    map_.erase(lru_.back().vpn);
    lru_.pop_back();
  }
  lru_.push_front(Entry{vpn, node});
  map_[vpn] = lru_.begin();
}

void Tlb::invalidate(std::uint64_t vpn) {
  auto it = map_.find(vpn);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

void Tlb::invalidate_range(std::uint64_t first, std::uint64_t last) {
  if (first >= last || map_.empty()) return;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->vpn >= first && it->vpn < last) {
      map_.erase(it->vpn);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void Tlb::flush() {
  lru_.clear();
  map_.clear();
}

}  // namespace ghum::pagetable
