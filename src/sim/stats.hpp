#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

/// \file stats.hpp
/// Named monotonically increasing counters. Used for global accounting
/// (faults, migrations, traffic) that tests and benches assert against.
/// Hot-path per-kernel traffic accounting uses cache/kernel_traffic.hpp
/// instead; this registry is for low-frequency events and reporting.

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::sim {

class StatsRegistry {
 public:
  void add(std::string_view name, std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t get(std::string_view name) const;

  /// Full snapshot (sorted by name); useful for diffing around a phase.
  [[nodiscard]] std::map<std::string, std::uint64_t> snapshot() const {
    return {counters_.begin(), counters_.end()};
  }

  void reset() { counters_.clear(); }

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;

  friend class ghum::chk::Snapshotter;
};

}  // namespace ghum::sim
