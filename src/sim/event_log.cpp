#include "sim/event_log.hpp"

namespace ghum::sim {

std::string_view to_string(EventType t) noexcept {
  switch (t) {
    case EventType::kCpuFirstTouchFault: return "cpu_first_touch_fault";
    case EventType::kGpuFirstTouchFault: return "gpu_first_touch_fault";
    case EventType::kGpuManagedFault: return "gpu_managed_fault";
    case EventType::kMigrationH2D: return "migration_h2d";
    case EventType::kMigrationD2H: return "migration_d2h";
    case EventType::kEviction: return "eviction";
    case EventType::kCounterNotification: return "counter_notification";
    case EventType::kExplicitPrefetch: return "explicit_prefetch";
    case EventType::kHostRegister: return "host_register";
    case EventType::kAllocation: return "allocation";
    case EventType::kDeallocation: return "deallocation";
    case EventType::kKernelBegin: return "kernel_begin";
    case EventType::kKernelEnd: return "kernel_end";
    case EventType::kContextInit: return "context_init";
    case EventType::kNumaHintFault: return "numa_hint_fault";
    case EventType::kFaultAllocDenial: return "fault_alloc_denial";
    case EventType::kFaultMigrationRetry: return "fault_migration_retry";
    case EventType::kFaultMigrationAbort: return "fault_migration_abort";
    case EventType::kLinkDegradeBegin: return "link_degrade_begin";
    case EventType::kLinkDegradeEnd: return "link_degrade_end";
    case EventType::kEccRetirement: return "ecc_retirement";
    case EventType::kFallbackPlacement: return "fallback_placement";
    case EventType::kOutOfMemory: return "out_of_memory";
    case EventType::kGpuReset: return "gpu_reset";
    case EventType::kJobRestart: return "job_restart";
  }
  return "unknown";
}

}  // namespace ghum::sim
