#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

/// \file event_log.hpp
/// A structured log of memory-system events (faults, migrations, evictions,
/// access-counter notifications). This is the substrate of the Nsight-like
/// tracer in src/profile/tracer.hpp: the paper uses Nsight Systems to
/// identify GPU page faults and migrations for managed memory (Section 3.2);
/// our tests additionally rely on it for system-memory events, which real
/// Nsight cannot report.

namespace ghum::sim {

enum class EventType : std::uint8_t {
  kCpuFirstTouchFault,    ///< CPU-origin minor fault populating a system PTE
  kGpuFirstTouchFault,    ///< GPU-origin replayable fault via SMMU/ATS
  kGpuManagedFault,       ///< GMMU fault on managed memory (pre-GH style)
  kMigrationH2D,          ///< pages moved CPU -> GPU
  kMigrationD2H,          ///< pages moved GPU -> CPU
  kEviction,              ///< managed pages evicted GPU -> CPU under pressure
  kCounterNotification,   ///< access-counter threshold crossed (interrupt)
  kExplicitPrefetch,      ///< cudaMemPrefetchAsync-style bulk migration
  kHostRegister,          ///< cudaHostRegister-style PTE pre-population
  kAllocation,            ///< virtual allocation created
  kDeallocation,          ///< virtual allocation destroyed
  kKernelBegin,
  kKernelEnd,
  kContextInit,           ///< GPU context initialization
  kNumaHintFault,         ///< AutoNUMA scanner hint fault (when enabled)
  // --- fault-injection & resilience events (src/fault) ---------------------
  kFaultAllocDenial,      ///< injected transient frame-allocation denial
  kFaultMigrationRetry,   ///< migration batch failed; retry after backoff
  kFaultMigrationAbort,   ///< migration batch abandoned after max retries
  kLinkDegradeBegin,      ///< NVLink-C2C degradation window entered
  kLinkDegradeEnd,        ///< NVLink-C2C degradation window left
  kEccRetirement,         ///< uncorrectable ECC retired physical frames
  kFallbackPlacement,     ///< fault placed the page on the non-preferred node
  kOutOfMemory,           ///< both nodes exhausted (OOM-killer analogue)
};

[[nodiscard]] std::string_view to_string(EventType t) noexcept;

struct Event {
  Picos time = 0;
  EventType type{};
  std::uint64_t va = 0;     ///< virtual address (or 0 when not applicable)
  std::uint64_t bytes = 0;  ///< size touched/moved by the event
  std::uint32_t aux = 0;    ///< event-specific payload (e.g. kernel id)
};

class EventLog {
 public:
  /// Logging is disabled by default: large app runs would otherwise
  /// accumulate millions of fault events. Benches/tests enable it.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void record(Event e) {
    if (enabled_) events_.push_back(e);
  }

  [[nodiscard]] const std::vector<Event>& events() const noexcept { return events_; }
  [[nodiscard]] std::size_t count(EventType t) const;
  [[nodiscard]] std::uint64_t total_bytes(EventType t) const;

  void clear() { events_.clear(); }

 private:
  bool enabled_ = false;
  std::vector<Event> events_;
};

}  // namespace ghum::sim
