#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

/// \file event_log.hpp
/// A structured log of memory-system events (faults, migrations, evictions,
/// access-counter notifications). This is the substrate of the Nsight-like
/// tracer in src/profile/tracer.hpp: the paper uses Nsight Systems to
/// identify GPU page faults and migrations for managed memory (Section 3.2);
/// our tests additionally rely on it for system-memory events, which real
/// Nsight cannot report.

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::sim {

enum class EventType : std::uint8_t {
  kCpuFirstTouchFault,    ///< CPU-origin minor fault populating a system PTE
  kGpuFirstTouchFault,    ///< GPU-origin replayable fault via SMMU/ATS
  kGpuManagedFault,       ///< GMMU fault on managed memory (pre-GH style)
  kMigrationH2D,          ///< pages moved CPU -> GPU
  kMigrationD2H,          ///< pages moved GPU -> CPU
  kEviction,              ///< managed pages evicted GPU -> CPU under pressure
  kCounterNotification,   ///< access-counter threshold crossed (interrupt)
  kExplicitPrefetch,      ///< cudaMemPrefetchAsync-style bulk migration
  kHostRegister,          ///< cudaHostRegister-style PTE pre-population
  kAllocation,            ///< virtual allocation created
  kDeallocation,          ///< virtual allocation destroyed
  kKernelBegin,
  kKernelEnd,
  kContextInit,           ///< GPU context initialization
  kNumaHintFault,         ///< AutoNUMA scanner hint fault (when enabled)
  // --- fault-injection & resilience events (src/fault) ---------------------
  kFaultAllocDenial,      ///< injected transient frame-allocation denial
  kFaultMigrationRetry,   ///< migration batch failed; retry after backoff
  kFaultMigrationAbort,   ///< migration batch abandoned after max retries
  kLinkDegradeBegin,      ///< NVLink-C2C degradation window entered
  kLinkDegradeEnd,        ///< NVLink-C2C degradation window left
  kEccRetirement,         ///< uncorrectable ECC retired physical frames
  kFallbackPlacement,     ///< fault placed the page on the non-preferred node
  kOutOfMemory,           ///< both nodes exhausted (OOM-killer analogue)
  kGpuReset,              ///< GPU channel reset: context lost, device-resident
                          ///< managed state of the victim tenant poisoned
  kJobRestart,            ///< RecoveryManager rolled a job back to its
                          ///< checkpoint and replays it (aux = cause Status)
};

/// Number of EventType values (for per-type aggregation arrays).
inline constexpr std::size_t kEventTypeCount =
    static_cast<std::size_t>(EventType::kJobRestart) + 1;

[[nodiscard]] std::string_view to_string(EventType t) noexcept;

struct Event {
  Picos time = 0;
  EventType type{};
  std::uint64_t va = 0;     ///< virtual address (or 0 when not applicable)
  std::uint64_t bytes = 0;  ///< size touched/moved by the event
  std::uint32_t aux = 0;    ///< event-specific payload (e.g. kernel id; for
                            ///< kEviction: the victim block's tenant)
  std::uint32_t tenant = 0; ///< tenant active when the event fired (0 = none);
                            ///< stamped by EventLog::record, never by callers
  std::uint32_t span = 0;   ///< causal span id (0 = outside any span); stamped
                            ///< by EventLog::record from the open SpanScope
};

class EventLog {
 public:
  /// Logging is disabled by default: large app runs would otherwise
  /// accumulate millions of fault events. Benches/tests enable it.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Tenant stamped on every subsequent event (multi-tenant co-scheduling;
  /// 0 outside any tenant quantum). Set by core::Machine, not by callers.
  void set_current_tenant(std::uint32_t t) noexcept { tenant_ = t; }
  [[nodiscard]] std::uint32_t current_tenant() const noexcept { return tenant_; }

  // --- causal span tracing (DESIGN.md Section 9) ---------------------------
  /// Allocates a fresh span id (ids start at 1; 0 means "no span"). The
  /// sequence advances even while logging is disabled so enabling the log
  /// never changes simulator decisions.
  [[nodiscard]] std::uint32_t open_span() noexcept { return ++span_seq_; }
  /// Span stamped on every subsequent event. Use SpanScope instead of
  /// calling this directly: a root cause (GPU fault, prefetch, ECC event)
  /// opens a span and everything it transitively triggers inherits it.
  void set_current_span(std::uint32_t s) noexcept { span_ = s; }
  [[nodiscard]] std::uint32_t current_span() const noexcept { return span_; }

  void record(Event e) {
    if (!enabled_) return;
    e.tenant = tenant_;
    e.span = span_;
    events_.push_back(e);
    const auto t = static_cast<std::size_t>(e.type);
    ++counts_[t];
    bytes_[t] += e.bytes;
  }

  [[nodiscard]] const std::vector<Event>& events() const noexcept { return events_; }

  /// FNV-1a over the full event stream plus \p end_time (normally the final
  /// simulated time): two runs digest equal iff the simulator took the same
  /// decisions at the same simulated times. This is the canonical
  /// bit-for-bit reproducibility check used by the differential and chaos
  /// benches and by the tenancy repro column.
  [[nodiscard]] std::uint64_t digest(Picos end_time) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](std::uint64_t x) {
      for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
      }
    };
    for (const Event& e : events_) {
      mix(static_cast<std::uint64_t>(e.time));
      mix(static_cast<std::uint64_t>(e.type));
      mix(e.va);
      mix(e.bytes);
      mix(e.aux);
      mix(e.tenant);
      mix(e.span);
    }
    mix(static_cast<std::uint64_t>(end_time));
    return h;
  }

  /// Per-type totals, maintained as running counters at record() time so
  /// hot-path callers never rescan the event vector.
  [[nodiscard]] std::size_t count(EventType t) const noexcept {
    return counts_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] std::uint64_t total_bytes(EventType t) const noexcept {
    return bytes_[static_cast<std::size_t>(t)];
  }

  void clear() {
    events_.clear();
    counts_.fill(0);
    bytes_.fill(0);
  }

 private:
  bool enabled_ = false;
  std::uint32_t tenant_ = 0;
  std::uint32_t span_ = 0;
  std::uint32_t span_seq_ = 0;
  std::vector<Event> events_;
  std::array<std::size_t, kEventTypeCount> counts_{};
  std::array<std::uint64_t, kEventTypeCount> bytes_{};

  friend class ghum::chk::Snapshotter;
};

/// RAII causal span: opens a fresh span when none is active and restores
/// the previous one on exit. Nested scopes (an eviction inside a managed
/// fault, a retry inside a migration) therefore inherit the *root* cause's
/// span — the property the fault -> migration -> eviction chain tests walk.
class SpanScope {
 public:
  explicit SpanScope(EventLog& log) noexcept
      : log_(&log), prev_(log.current_span()) {
    if (prev_ == 0) log.set_current_span(log.open_span());
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() { log_->set_current_span(prev_); }

 private:
  EventLog* log_;
  std::uint32_t prev_;
};

}  // namespace ghum::sim
