#pragma once

#include <functional>
#include <vector>

#include "sim/time.hpp"

/// \file clock.hpp
/// The simulated clock. Every modeled cost in ghum (bandwidth, latency,
/// fault handling, migration, kernel compute) advances this clock; wall
/// clock time is never measured. Observers (e.g. the memory profiler) are
/// notified on every advance so they can take periodic samples against
/// simulated time, mirroring the paper's 100 ms sampling profiler.

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::sim {

class Clock {
 public:
  /// Called as (time_before, time_after) on every advance.
  using Observer = std::function<void(Picos, Picos)>;

  [[nodiscard]] Picos now() const noexcept { return now_; }

  /// Advances simulated time by \p delta (must be >= 0).
  void advance(Picos delta);

  /// Registers an observer; returns an id usable with remove_observer().
  std::size_t add_observer(Observer fn);
  void remove_observer(std::size_t id);

  /// Resets time to zero. Observers are kept.
  void reset() noexcept { now_ = 0; }

 private:
  Picos now_ = 0;
  std::vector<Observer> observers_;  // empty slots are disabled observers

  // Checkpoint restore sets now_ directly (no observer firing: the restored
  // subsystem state already reflects everything observers would have done).
  friend class ghum::chk::Snapshotter;
};

}  // namespace ghum::sim
