#include "sim/stats.hpp"

namespace ghum::sim {

void StatsRegistry::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string{name}, delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t StatsRegistry::get(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

}  // namespace ghum::sim
