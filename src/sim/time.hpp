#pragma once

#include <cstdint>

/// \file time.hpp
/// Simulated-time units. All simulated durations in ghum are integer
/// picoseconds so that accounting is exact and runs are bit-reproducible.
/// Picosecond resolution is needed because a single 64-byte cacheline at
/// HBM3 bandwidth (3.4 TB/s measured in the paper) takes ~19 ps.

namespace ghum::sim {

/// A point in simulated time, or a duration, in picoseconds.
using Picos = std::int64_t;

inline constexpr Picos kPicosPerNano = 1'000;
inline constexpr Picos kPicosPerMicro = 1'000'000;
inline constexpr Picos kPicosPerMilli = 1'000'000'000;
inline constexpr Picos kPicosPerSecond = 1'000'000'000'000;

constexpr Picos nanoseconds(double ns) {
  return static_cast<Picos>(ns * static_cast<double>(kPicosPerNano));
}
constexpr Picos microseconds(double us) {
  return static_cast<Picos>(us * static_cast<double>(kPicosPerMicro));
}
constexpr Picos milliseconds(double ms) {
  return static_cast<Picos>(ms * static_cast<double>(kPicosPerMilli));
}
constexpr Picos seconds(double s) {
  return static_cast<Picos>(s * static_cast<double>(kPicosPerSecond));
}

constexpr double to_seconds(Picos t) {
  return static_cast<double>(t) / static_cast<double>(kPicosPerSecond);
}
constexpr double to_milliseconds(Picos t) {
  return static_cast<double>(t) / static_cast<double>(kPicosPerMilli);
}
constexpr double to_microseconds(Picos t) {
  return static_cast<double>(t) / static_cast<double>(kPicosPerMicro);
}

/// Smallest multiple of \p step that is >= \p t (step > 0, t >= 0). The
/// sampling-edge arithmetic of the flight recorder: cadence edges are
/// exact multiples of the cadence, so two runs that reach the same fleet
/// time have sampled at exactly the same instants.
constexpr Picos align_up(Picos t, Picos step) {
  return step <= 0 ? t : ((t + step - 1) / step) * step;
}

/// Duration of moving \p bytes at \p bytes_per_second, rounded up to 1 ps
/// for any non-zero transfer so that time is strictly monotone.
constexpr Picos transfer_time(std::uint64_t bytes, double bytes_per_second) {
  if (bytes == 0 || bytes_per_second <= 0.0) return 0;
  const double s = static_cast<double>(bytes) / bytes_per_second;
  const auto ps = static_cast<Picos>(s * static_cast<double>(kPicosPerSecond));
  return ps > 0 ? ps : 1;
}

}  // namespace ghum::sim
