#pragma once

#include <cstdint>

/// \file rng.hpp
/// Deterministic pseudo-random generator (xoshiro256**). Workload
/// generators (graphs, images, quantum circuits) must be reproducible
/// across platforms and standard-library versions, so we do not use
/// std::mt19937 / std::uniform_*_distribution anywhere.

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, bound) without modulo bias (bound must be > 0).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Inter-arrival gap of an open-loop arrival process with the given mean:
  /// uniform in [0, 2*mean], i.e. mean spacing \p mean with bounded jitter.
  /// Pure integer arithmetic (no libm), so the generated arrival schedule
  /// is bit-identical across platforms and standard-library versions —
  /// the property every fleet reproducibility gate leans on.
  std::uint64_t next_interarrival(std::uint64_t mean) noexcept {
    return mean == 0 ? 0 : next_below(2 * mean + 1);
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) noexcept;
  std::uint64_t s_[4]{};

  // Checkpoint restore reinstates the exact generator state so continued
  // probability draws match the uninterrupted run draw for draw.
  friend class ghum::chk::Snapshotter;
};

}  // namespace ghum::sim
