#include "sim/clock.hpp"

#include <stdexcept>

namespace ghum::sim {

void Clock::advance(Picos delta) {
  if (delta < 0) throw std::invalid_argument{"Clock::advance: negative delta"};
  if (delta == 0) return;
  const Picos before = now_;
  now_ += delta;
  for (const auto& obs : observers_) {
    if (obs) obs(before, now_);
  }
}

std::size_t Clock::add_observer(Observer fn) {
  observers_.push_back(std::move(fn));
  return observers_.size() - 1;
}

void Clock::remove_observer(std::size_t id) {
  if (id < observers_.size()) observers_[id] = nullptr;
}

}  // namespace ghum::sim
