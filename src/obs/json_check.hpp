#pragma once

#include <string>
#include <string_view>

/// \file json_check.hpp
/// A strict RFC 8259 JSON validator (recursive descent, no allocation of a
/// document tree). The container ships no JSON library, and the exported
/// Chrome traces and metric snapshots must be *parseable* JSON, not just
/// brace-balanced text — tests and bench_observability validate every
/// artifact through this before calling it well-formed.

namespace ghum::obs {

/// True iff \p text is exactly one valid JSON value (with optional
/// surrounding whitespace). On failure, \p error (when non-null) receives a
/// byte offset and reason.
[[nodiscard]] bool json_valid(std::string_view text, std::string* error = nullptr);

}  // namespace ghum::obs
