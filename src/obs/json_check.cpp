#include "obs/json_check.hpp"

#include <cctype>

namespace ghum::obs {

namespace {

/// Cursor over the input with the strict grammar of RFC 8259. Depth is
/// bounded so a pathological input cannot overflow the C++ stack.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string* error = nullptr;
  static constexpr int kMaxDepth = 256;

  bool fail(const char* why) {
    if (error != nullptr) {
      *error = "offset " + std::to_string(pos) + ": " + why;
    }
    return false;
  }

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return fail("bad literal");
    pos += lit.size();
    return true;
  }

  bool string() {
    if (at_end() || peek() != '"') return fail("expected string");
    ++pos;
    while (true) {
      if (at_end()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos;
        if (at_end()) return fail("truncated escape");
        const char e = text[pos];
        if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
            e == 'n' || e == 'r' || e == 't') {
          ++pos;
        } else if (e == 'u') {
          ++pos;
          for (int i = 0; i < 4; ++i, ++pos) {
            if (at_end() || std::isxdigit(static_cast<unsigned char>(text[pos])) == 0) {
              return fail("bad \\u escape");
            }
          }
        } else {
          return fail("invalid escape character");
        }
      } else {
        ++pos;
      }
    }
  }

  bool number() {
    if (!at_end() && peek() == '-') ++pos;
    if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      return fail("expected digit");
    }
    if (peek() == '0') {
      ++pos;  // no leading zeros
    } else {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos;
    }
    if (!at_end() && peek() == '.') {
      ++pos;
      if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        return fail("expected fraction digit");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
      if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        return fail("expected exponent digit");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos;
    }
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("expected value");
    switch (peek()) {
      case '{': {
        ++pos;
        skip_ws();
        if (!at_end() && peek() == '}') {
          ++pos;
          return true;
        }
        while (true) {
          skip_ws();
          if (!string()) return false;
          skip_ws();
          if (at_end() || peek() != ':') return fail("expected ':'");
          ++pos;
          if (!value(depth + 1)) return false;
          skip_ws();
          if (at_end()) return fail("unterminated object");
          if (peek() == ',') {
            ++pos;
            continue;
          }
          if (peek() == '}') {
            ++pos;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos;
        skip_ws();
        if (!at_end() && peek() == ']') {
          ++pos;
          return true;
        }
        while (true) {
          if (!value(depth + 1)) return false;
          skip_ws();
          if (at_end()) return fail("unterminated array");
          if (peek() == ',') {
            ++pos;
            continue;
          }
          if (peek() == ']') {
            ++pos;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
};

}  // namespace

bool json_valid(std::string_view text, std::string* error) {
  Parser p{.text = text, .error = error};
  if (!p.value(0)) return false;
  p.skip_ws();
  if (!p.at_end()) return p.fail("trailing content after value");
  return true;
}

}  // namespace ghum::obs
