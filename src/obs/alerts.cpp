#include "obs/alerts.hpp"

namespace ghum::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void mix(std::uint64_t& h, std::uint64_t x) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

}  // namespace

AlertEngine::AlertEngine(const TimeSeries& ts, std::vector<AlertRule> rules)
    : ts_(&ts), rules_(std::move(rules)) {
  state_.resize(rules_.size());
  for (std::uint32_t i = 0; i < rules_.size(); ++i) {
    state_[i].series = ts_->find(rules_[i].instrument);
    if (state_[i].series == TimeSeries::kNoSeries) unresolved_.push_back(i);
  }
}

std::int64_t AlertEngine::evaluated_value(const AlertRule& r,
                                          const RuleState& s, sim::Picos edge,
                                          std::int64_t sample) const {
  if (r.burn_window <= 0) return sample;
  // Trailing (edge - burn_window, edge] average over whatever the ring
  // still retains; the edge itself is always included, so a burn window
  // shorter than the cadence degenerates to the instantaneous sample.
  const SeriesWindow w =
      ts_->window(s.series, edge - r.burn_window + 1, edge);
  return w.count == 0 ? sample : w.avg();
}

std::size_t AlertEngine::evaluate() {
  const std::size_t before = events_.size();
  // Walk retained recorder edges newer than the last one consumed, in
  // order. Edges the ring already overwrote are gone — callers evaluate at
  // every obs tick, far more often than the ring wraps.
  for (std::size_t i = 0; i < ts_->size(); ++i) {
    const sim::Picos edge = ts_->time_at(i);
    if (edge <= consumed_edge_) continue;
    for (std::uint32_t ri = 0; ri < rules_.size(); ++ri) {
      RuleState& s = state_[ri];
      if (s.series == TimeSeries::kNoSeries) continue;
      const AlertRule& r = rules_[ri];
      const std::int64_t v =
          evaluated_value(r, s, edge, ts_->value_at(s.series, i));
      const bool breach = r.predicate == AlertPredicate::kAbove
                              ? v > r.threshold
                              : v < r.threshold;
      if (breach) {
        if (s.breach_since < 0) s.breach_since = edge;
        if (!s.open && edge - s.breach_since >= r.for_duration) {
          s.open = true;
          events_.push_back({edge, ri, true, v});
        }
      } else {
        s.breach_since = -1;
        if (s.open) {
          s.open = false;
          events_.push_back({edge, ri, false, v});
        }
      }
    }
    consumed_edge_ = edge;
  }
  return events_.size() - before;
}

std::uint64_t AlertEngine::digest() const noexcept {
  std::uint64_t h = kFnvOffset;
  for (const AlertEvent& e : events_) {
    mix(h, static_cast<std::uint64_t>(e.time));
    mix(h, e.rule);
    mix(h, e.open ? 1 : 0);
    mix(h, static_cast<std::uint64_t>(e.value));
  }
  return h;
}

}  // namespace ghum::obs
