#include "obs/link_monitor.hpp"

#include <algorithm>

namespace ghum::obs {

namespace {

/// Byte capacity of one full window at \p bw_Bps. The double->integer
/// conversion happens once at construction, so every window shares one
/// exact cap and the per-window math stays pure integer.
std::uint64_t window_cap(double bw_Bps, sim::Picos window) {
  const double bytes = bw_Bps * sim::to_seconds(window);
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(bytes));
}

}  // namespace

LinkMonitor::LinkMonitor(core::Machine& m, sim::Picos window)
    : m_(&m), window_(std::max<sim::Picos>(window, 1)) {
  const auto& spec = m.c2c().spec();
  cap_h2d_ = window_cap(spec.bandwidth_h2d_Bps, window_);
  cap_d2h_ = window_cap(spec.bandwidth_d2h_Bps, window_);
}

void LinkMonitor::start() {
  if (running_) return;
  running_ = true;
  win_start_ = m_->clock().now();
  next_boundary_ = win_start_ + window_;
  last_h2d_ = m_->c2c().bytes_moved(interconnect::Direction::kCpuToGpu);
  last_d2h_ = m_->c2c().bytes_moved(interconnect::Direction::kGpuToCpu);
  observer_id_ = m_->clock().add_observer(
      [this](sim::Picos before, sim::Picos after) { on_advance(before, after); });
}

void LinkMonitor::stop() {
  if (!running_) return;
  if (m_->clock().now() > win_start_) close_window(m_->clock().now());
  m_->clock().remove_observer(observer_id_);
  running_ = false;
}

void LinkMonitor::rebase() {
  if (!running_) return;
  win_start_ = m_->clock().now();
  next_boundary_ = win_start_ + window_;
  last_h2d_ = m_->c2c().bytes_moved(interconnect::Direction::kCpuToGpu);
  last_d2h_ = m_->c2c().bytes_moved(interconnect::Direction::kGpuToCpu);
}

void LinkMonitor::clear() {
  samples_.clear();
  peak_h2d_ = 0;
  peak_d2h_ = 0;
}

void LinkMonitor::on_advance(sim::Picos /*before*/, sim::Picos after) {
  while (next_boundary_ <= after) {
    close_window(next_boundary_);
  }
}

std::uint32_t LinkMonitor::permille(std::uint64_t bytes, std::uint64_t cap,
                                    sim::Picos t0, sim::Picos t1) const {
  // Partial (final) windows get a proportionally smaller cap. 128-bit
  // intermediates: cap * dt would overflow u64 for second-scale windows.
  const auto dt = static_cast<unsigned __int128>(t1 - t0);
  unsigned __int128 eff =
      static_cast<unsigned __int128>(cap) * dt / static_cast<unsigned __int128>(window_);
  if (eff == 0) eff = 1;
  const unsigned __int128 pm = static_cast<unsigned __int128>(bytes) * 1000u / eff;
  return pm > 1000 ? 1000u : static_cast<std::uint32_t>(pm);
}

void LinkMonitor::close_window(sim::Picos t1) {
  const std::uint64_t h2d = m_->c2c().bytes_moved(interconnect::Direction::kCpuToGpu);
  const std::uint64_t d2h = m_->c2c().bytes_moved(interconnect::Direction::kGpuToCpu);
  LinkSample s{.t0 = win_start_,
               .t1 = t1,
               .h2d_bytes = h2d - last_h2d_,
               .d2h_bytes = d2h - last_d2h_,
               .h2d_util_permille = permille(h2d - last_h2d_, cap_h2d_, win_start_, t1),
               .d2h_util_permille = permille(d2h - last_d2h_, cap_d2h_, win_start_, t1)};
  samples_.push_back(s);
  peak_h2d_ = std::max(peak_h2d_, s.h2d_util_permille);
  peak_d2h_ = std::max(peak_d2h_, s.d2h_util_permille);
  m_->obs().gauge("ghum_c2c_util_permille", {{"dir", "h2d"}})
      .set(s.h2d_util_permille);
  m_->obs().gauge("ghum_c2c_util_permille", {{"dir", "d2h"}})
      .set(s.d2h_util_permille);
  last_h2d_ = h2d;
  last_d2h_ = d2h;
  win_start_ = t1;
  next_boundary_ = t1 >= next_boundary_ ? next_boundary_ + window_ : next_boundary_;
}

}  // namespace ghum::obs
