#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/timeseries.hpp"
#include "sim/time.hpp"

/// \file alerts.hpp
/// obs::AlertEngine — declarative SLO alerting on the flight recorder
/// (DESIGN.md Section 13). Rules name a recorder series, a predicate
/// (above/below a threshold), a for-duration (how long the breach must
/// hold before the alert opens — the Prometheus "for:" clause), and an
/// optional burn window (evaluate the trailing-window average instead of
/// the instantaneous sample — burn-rate semantics). evaluate() consumes
/// recorder edges in order at deterministic fleet-time instants, so the
/// open/close event sequence is bit-for-bit reproducible and mixes into
/// the fleet digest.

namespace ghum::obs {

enum class AlertPredicate : std::uint8_t {
  kAbove,  ///< breach while value > threshold
  kBelow,  ///< breach while value < threshold
};

enum class AlertSeverity : std::uint8_t { kInfo, kWarning, kCritical };

[[nodiscard]] constexpr std::string_view to_string(AlertPredicate p) noexcept {
  switch (p) {
    case AlertPredicate::kAbove: return "above";
    case AlertPredicate::kBelow: return "below";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(AlertSeverity s) noexcept {
  switch (s) {
    case AlertSeverity::kInfo: return "info";
    case AlertSeverity::kWarning: return "warning";
    case AlertSeverity::kCritical: return "critical";
  }
  return "?";
}

/// One declarative rule. \p instrument names a recorder series (resolved
/// at attach time; unknown names are reported, not silently dropped).
struct AlertRule {
  std::string name;        ///< alert identity in events and exports
  std::string instrument;  ///< recorder series to evaluate
  AlertPredicate predicate = AlertPredicate::kAbove;
  std::int64_t threshold = 0;
  /// Breach must hold this long (>= this many consecutive breaching
  /// edges' span) before the alert opens. 0 = open on the first edge.
  sim::Picos for_duration = 0;
  /// 0 = evaluate the instantaneous sample. > 0 = evaluate the average of
  /// samples in (edge - burn_window, edge] — burn-rate smoothing that
  /// ignores single-edge spikes.
  sim::Picos burn_window = 0;
  AlertSeverity severity = AlertSeverity::kWarning;
};

/// One open/close transition in the alert stream.
struct AlertEvent {
  sim::Picos time = 0;
  std::uint32_t rule = 0;  ///< index into rules()
  bool open = false;       ///< true = fired, false = resolved
  std::int64_t value = 0;  ///< evaluated value at the transition edge
};

class AlertEngine {
 public:
  /// Binds the engine to \p ts (not owned; must outlive the engine).
  /// Rules naming a series that does not exist in \p ts at attach time
  /// land in unresolved() and never fire.
  AlertEngine(const TimeSeries& ts, std::vector<AlertRule> rules);

  /// Evaluates every recorder edge not yet consumed, in order. Alert
  /// transitions append to events(); the return value is how many new
  /// transitions this call produced.
  std::size_t evaluate();

  [[nodiscard]] const std::vector<AlertRule>& rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] const std::vector<AlertEvent>& events() const noexcept {
    return events_;
  }
  /// Rule indexes whose instrument did not resolve to a recorder series.
  [[nodiscard]] const std::vector<std::uint32_t>& unresolved() const noexcept {
    return unresolved_;
  }
  [[nodiscard]] bool is_open(std::uint32_t rule) const noexcept {
    return rule < state_.size() && state_[rule].open;
  }
  [[nodiscard]] std::size_t open_count() const noexcept {
    std::size_t n = 0;
    for (const RuleState& s : state_) n += s.open ? 1 : 0;
    return n;
  }

  /// FNV-1a over the full transition sequence (time, rule, edge, value) —
  /// identical runs produce identical alert digests (bench_fleetscope's
  /// bit-for-bit gate).
  [[nodiscard]] std::uint64_t digest() const noexcept;

 private:
  struct RuleState {
    std::size_t series = TimeSeries::kNoSeries;
    bool open = false;
    sim::Picos breach_since = -1;  ///< first edge of the current breach run
  };

  [[nodiscard]] std::int64_t evaluated_value(const AlertRule& r,
                                             const RuleState& s,
                                             sim::Picos edge,
                                             std::int64_t sample) const;

  const TimeSeries* ts_;
  std::vector<AlertRule> rules_;
  std::vector<RuleState> state_;
  std::vector<AlertEvent> events_;
  std::vector<std::uint32_t> unresolved_;
  sim::Picos consumed_edge_ = -1;  ///< last recorder edge evaluated
};

}  // namespace ghum::obs
