#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

/// \file timeseries.hpp
/// obs::TimeSeries — a deterministic time-series flight recorder
/// (DESIGN.md Section 13). Samples a set of named integer-valued series
/// (each backed by a caller-supplied sampler callback) at a fixed cadence
/// of *simulated* time: advance(t) takes every cadence edge in
/// (last_edge, t] in order and snapshots all series at each. There is no
/// wall clock anywhere — two runs that reach the same fleet time have
/// sampled at exactly the same instants with exactly the same values, so
/// the recorder's digest is part of the fleet's bit-for-bit story.
///
/// Storage is a ring: one shared timestamp ring plus one value ring per
/// series, O(1) append, oldest samples overwritten once capacity is
/// reached (dropped() counts them). Windowed min/max/avg queries and
/// TSV/JSON export read whatever the ring still holds.

namespace ghum::obs {

/// Aggregate over the retained samples of one series in [t0, t1].
struct SeriesWindow {
  std::uint64_t count = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::int64_t sum = 0;

  [[nodiscard]] std::int64_t avg() const noexcept {
    return count == 0 ? 0 : sum / static_cast<std::int64_t>(count);
  }
};

class TimeSeries {
 public:
  static constexpr std::size_t kNoSeries = ~std::size_t{0};

  /// \p cadence must be > 0 and \p capacity (samples retained per series)
  /// must be > 0; both are clamped to 1 otherwise.
  explicit TimeSeries(sim::Picos cadence, std::size_t capacity = 4096);

  /// Registers a series. Samplers are invoked in registration order at
  /// every edge; they must be pure reads of simulated state (no wall
  /// clock, no RNG) or determinism is lost. Returns the series index.
  /// Registering after the first advance() keeps history aligned: the new
  /// series reads 0 for edges it missed.
  std::size_t add(std::string name, std::function<std::int64_t()> sampler);

  /// Index of a named series, or kNoSeries.
  [[nodiscard]] std::size_t find(std::string_view name) const noexcept;

  /// Samples every cadence edge in (last_edge, now]: edge times are exact
  /// multiples of the cadence, so they are independent of how callers
  /// chop the timeline into advance() calls as long as every edge is
  /// reached with the same simulated state.
  void advance(sim::Picos now);

  [[nodiscard]] sim::Picos cadence() const noexcept { return cadence_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t series_count() const noexcept {
    return series_.size();
  }
  [[nodiscard]] const std::string& name(std::size_t series) const {
    return series_[series].name;
  }
  /// Samples currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept { return used_; }
  /// Samples overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Time of the most recent edge sampled (-1 before the first).
  [[nodiscard]] sim::Picos last_edge() const noexcept { return last_edge_; }

  /// The i-th retained sample, oldest first (i < size()).
  [[nodiscard]] sim::Picos time_at(std::size_t i) const noexcept;
  [[nodiscard]] std::int64_t value_at(std::size_t series,
                                      std::size_t i) const noexcept;

  /// Aggregate of one series over retained samples with t0 <= t <= t1.
  [[nodiscard]] SeriesWindow window(std::size_t series, sim::Picos t0,
                                    sim::Picos t1) const noexcept;

  /// One header row (time_ps then series names) and one row per retained
  /// sample, oldest first, tab-separated.
  [[nodiscard]] std::string to_tsv() const;
  /// {"cadence_ps":..,"dropped":..,"series":[names],"samples":[[t,v0,v1,..]]}
  /// — valid JSON (obs::json_valid) and bit-identical across equal runs.
  [[nodiscard]] std::string to_json() const;

  /// FNV-1a over every retained (time, values...) tuple plus the drop
  /// count — the recorder's contribution to the fleet digest.
  [[nodiscard]] std::uint64_t digest() const noexcept;

 private:
  struct Series {
    std::string name;
    std::function<std::int64_t()> sampler;
    std::vector<std::int64_t> ring;
  };

  /// Ring slot of retained sample \p i (oldest first).
  [[nodiscard]] std::size_t slot_of(std::size_t i) const noexcept {
    return (head_ + i) % capacity_;
  }

  sim::Picos cadence_;
  std::size_t capacity_;
  std::vector<Series> series_;
  std::vector<sim::Picos> times_;
  std::size_t head_ = 0;  ///< ring slot of the oldest retained sample
  std::size_t used_ = 0;
  std::uint64_t dropped_ = 0;
  sim::Picos last_edge_ = -1;
};

}  // namespace ghum::obs
