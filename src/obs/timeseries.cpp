#include "obs/timeseries.hpp"

#include <algorithm>
#include <sstream>

namespace ghum::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void mix(std::uint64_t& h, std::uint64_t x) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

}  // namespace

TimeSeries::TimeSeries(sim::Picos cadence, std::size_t capacity)
    : cadence_(cadence > 0 ? cadence : 1),
      capacity_(capacity > 0 ? capacity : 1) {
  times_.resize(capacity_, 0);
}

std::size_t TimeSeries::add(std::string name,
                            std::function<std::int64_t()> sampler) {
  Series s;
  s.name = std::move(name);
  s.sampler = std::move(sampler);
  s.ring.resize(capacity_, 0);
  series_.push_back(std::move(s));
  return series_.size() - 1;
}

std::size_t TimeSeries::find(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i].name == name) return i;
  }
  return kNoSeries;
}

void TimeSeries::advance(sim::Picos now) {
  // First edge at the first cadence multiple > last_edge_ (or >= 0 on the
  // very first call), then every multiple up to and including now.
  sim::Picos edge = last_edge_ < 0
                        ? 0
                        : sim::align_up(last_edge_ + 1, cadence_);
  for (; edge <= now; edge += cadence_) {
    const std::size_t slot = (head_ + used_) % capacity_;
    if (used_ == capacity_) {
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
    times_[slot] = edge;
    for (Series& s : series_) s.ring[slot] = s.sampler();
    if (used_ < capacity_) ++used_;
    last_edge_ = edge;
  }
}

sim::Picos TimeSeries::time_at(std::size_t i) const noexcept {
  return times_[slot_of(i)];
}

std::int64_t TimeSeries::value_at(std::size_t series,
                                  std::size_t i) const noexcept {
  return series_[series].ring[slot_of(i)];
}

SeriesWindow TimeSeries::window(std::size_t series, sim::Picos t0,
                                sim::Picos t1) const noexcept {
  SeriesWindow w;
  if (series >= series_.size()) return w;
  for (std::size_t i = 0; i < used_; ++i) {
    const sim::Picos t = time_at(i);
    if (t < t0 || t > t1) continue;
    const std::int64_t v = value_at(series, i);
    if (w.count == 0 || v < w.min) w.min = v;
    if (w.count == 0 || v > w.max) w.max = v;
    w.sum += v;
    ++w.count;
  }
  return w;
}

std::string TimeSeries::to_tsv() const {
  std::ostringstream out;
  out << "time_ps";
  for (const Series& s : series_) out << '\t' << s.name;
  out << '\n';
  for (std::size_t i = 0; i < used_; ++i) {
    out << time_at(i);
    for (std::size_t s = 0; s < series_.size(); ++s) {
      out << '\t' << value_at(s, i);
    }
    out << '\n';
  }
  return out.str();
}

std::string TimeSeries::to_json() const {
  std::ostringstream out;
  out << "{\"cadence_ps\":" << cadence_ << ",\"dropped\":" << dropped_
      << ",\"series\":[";
  for (std::size_t s = 0; s < series_.size(); ++s) {
    if (s != 0) out << ',';
    // Series names are code-chosen identifiers ([a-z0-9._-]), not
    // user-supplied strings — no escaping needed.
    out << '"' << series_[s].name << '"';
  }
  out << "],\"samples\":[";
  for (std::size_t i = 0; i < used_; ++i) {
    if (i != 0) out << ',';
    out << "\n[" << time_at(i);
    for (std::size_t s = 0; s < series_.size(); ++s) {
      out << ',' << value_at(s, i);
    }
    out << ']';
  }
  out << "\n]}\n";
  return out.str();
}

std::uint64_t TimeSeries::digest() const noexcept {
  std::uint64_t h = kFnvOffset;
  mix(h, dropped_);
  for (std::size_t i = 0; i < used_; ++i) {
    mix(h, static_cast<std::uint64_t>(time_at(i)));
    for (std::size_t s = 0; s < series_.size(); ++s) {
      mix(h, static_cast<std::uint64_t>(value_at(s, i)));
    }
  }
  return h;
}

}  // namespace ghum::obs
