#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace ghum::obs {

namespace {

/// Prometheus label-value escaping. The exposition format defines exactly
/// three escapes — backslash, double quote, newline — and anything else
/// escaped (e.g. "\t") is a literal backslash-t to a spec-compliant
/// parser, breaking round-trips for user-supplied tenant/job names.
std::string prom_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

/// JSON string escaping (RFC 8259): quote, backslash, and *every* control
/// character below 0x20 — not just the newline class. A job named with an
/// embedded 0x01 must still yield a json_valid exposition.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string canonical_key(std::string_view name, const std::vector<Label>& labels) {
  std::string key{name};
  key += '{';
  bool first = true;
  for (const Label& l : labels) {
    if (!first) key += ',';
    first = false;
    key += l.key;
    key += "=\"";
    key += prom_escape(l.value);  // injective (backslash is escaped)
    key += '"';
  }
  key += '}';
  return key;
}

}  // namespace

MetricsRegistry::Slot& MetricsRegistry::slot(std::string_view name,
                                             const std::vector<Label>& labels,
                                             Kind kind) {
  std::vector<Label> sorted = labels;
  std::sort(sorted.begin(), sorted.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  const std::string key = canonical_key(name, sorted);
  auto it = slots_.find(key);
  if (it != slots_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error{"MetricsRegistry: " + key +
                             " re-registered as a different type"};
    }
    return it->second;
  }
  Slot s;
  s.kind = kind;
  s.name = std::string{name};
  s.labels = std::move(sorted);
  switch (kind) {
    case Kind::kCounter:
      s.index = counters_.size();
      counters_.emplace_back();
      break;
    case Kind::kGauge:
      s.index = gauges_.size();
      gauges_.emplace_back();
      break;
    case Kind::kHistogram:
      s.index = histograms_.size();
      histograms_.emplace_back();
      break;
  }
  return slots_.emplace(key, std::move(s)).first->second;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  const std::vector<Label>& labels) {
  return counters_[slot(name, labels, Kind::kCounter).index];
}

Gauge& MetricsRegistry::gauge(std::string_view name,
                              const std::vector<Label>& labels) {
  return gauges_[slot(name, labels, Kind::kGauge).index];
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<Label>& labels) {
  return histograms_[slot(name, labels, Kind::kHistogram).index];
}

void MetricsRegistry::merge_from(const MetricsRegistry& src,
                                 const std::vector<Label>& extra) {
  for (const auto& [key, s] : src.slots_) {
    std::vector<Label> labels = s.labels;
    labels.insert(labels.end(), extra.begin(), extra.end());
    switch (s.kind) {
      case Kind::kCounter:
        counter(s.name, labels).inc(src.counters_[s.index].value());
        break;
      case Kind::kGauge:
        gauge(s.name, labels).add(src.gauges_[s.index].value());
        break;
      case Kind::kHistogram:
        histogram(s.name, labels).merge(src.histograms_[s.index]);
        break;
    }
  }
}

std::string MetricsRegistry::to_prometheus() const {
  std::ostringstream out;
  std::string last_family;
  for (const auto& [key, s] : slots_) {
    if (s.name != last_family) {
      last_family = s.name;
      const char* type = s.kind == Kind::kCounter ? "counter"
                         : s.kind == Kind::kGauge ? "gauge"
                                                  : "histogram";
      out << "# TYPE " << s.name << ' ' << type << '\n';
    }
    auto labels_with = [&](std::string_view extra_key,
                           std::string_view extra_value) {
      std::string l = "{";
      bool first = true;
      for (const Label& lab : s.labels) {
        if (!first) l += ',';
        first = false;
        l += lab.key;
        l += "=\"";
        l += prom_escape(lab.value);
        l += '"';
      }
      if (!extra_key.empty()) {
        if (!first) l += ',';
        l += std::string{extra_key} + "=\"" + std::string{extra_value} + '"';
      }
      l += '}';
      return l == "{}" ? std::string{} : l;
    };
    switch (s.kind) {
      case Kind::kCounter:
        out << s.name << labels_with("", "") << ' '
            << counters_[s.index].value() << '\n';
        break;
      case Kind::kGauge:
        out << s.name << labels_with("", "") << ' ' << gauges_[s.index].value()
            << '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& h = histograms_[s.index];
        // Cumulative buckets up to the highest non-empty one, then +Inf.
        std::size_t top = 0;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          if (h.bucket(i) != 0) top = i;
        }
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i <= top; ++i) {
          cum += h.bucket(i);
          out << s.name << "_bucket"
              << labels_with("le", std::to_string(Histogram::bucket_bound(i)))
              << ' ' << cum << '\n';
        }
        out << s.name << "_bucket" << labels_with("le", "+Inf") << ' '
            << h.count() << '\n';
        out << s.name << "_sum" << labels_with("", "") << ' ' << h.sum() << '\n';
        out << s.name << "_count" << labels_with("", "") << ' ' << h.count()
            << '\n';
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  out << "{\"metrics\":[";
  bool first = true;
  for (const auto& [key, s] : slots_) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << json_escape(s.name) << "\",\"labels\":{";
    bool fl = true;
    for (const Label& l : s.labels) {
      if (!fl) out << ',';
      fl = false;
      out << '"' << json_escape(l.key) << "\":\"" << json_escape(l.value)
          << '"';
    }
    out << "},";
    switch (s.kind) {
      case Kind::kCounter:
        out << "\"type\":\"counter\",\"value\":" << counters_[s.index].value();
        break;
      case Kind::kGauge:
        out << "\"type\":\"gauge\",\"value\":" << gauges_[s.index].value();
        break;
      case Kind::kHistogram: {
        const Histogram& h = histograms_[s.index];
        out << "\"type\":\"histogram\",\"count\":" << h.count()
            << ",\"sum\":" << h.sum() << ",\"min\":" << h.min()
            << ",\"max\":" << h.max() << ",\"buckets\":[";
        bool fb = true;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          if (h.bucket(i) == 0) continue;
          if (!fb) out << ',';
          fb = false;
          out << "[" << Histogram::bucket_bound(i) << ',' << h.bucket(i) << ']';
        }
        out << ']';
        break;
      }
    }
    out << '}';
  }
  out << "\n]}\n";
  return out.str();
}

MemSysMetrics bind_memsys_metrics(MetricsRegistry& reg) {
  MemSysMetrics m;
  m.faults_cpu_first_touch =
      &reg.counter("ghum_faults_total", {{"type", "cpu_first_touch"}});
  m.faults_gpu_first_touch =
      &reg.counter("ghum_faults_total", {{"type", "gpu_first_touch"}});
  m.faults_gpu_managed =
      &reg.counter("ghum_faults_total", {{"type", "gpu_managed"}});
  m.gpu_fault_requests = &reg.counter("ghum_managed_fault_requests_total",
                                      {{"origin", "gpu"}});
  m.cpu_fault_requests = &reg.counter("ghum_managed_fault_requests_total",
                                      {{"origin", "cpu"}});
  m.fallback_placements = &reg.counter("ghum_fallback_placements_total");
  m.oom_events = &reg.counter("ghum_oom_events_total");
  m.fault_latency_cpu_first_touch =
      &reg.histogram("ghum_fault_latency_picos", {{"type", "cpu_first_touch"}});
  m.fault_latency_gpu_first_touch =
      &reg.histogram("ghum_fault_latency_picos", {{"type", "gpu_first_touch"}});
  m.fault_latency_gpu_managed =
      &reg.histogram("ghum_fault_latency_picos", {{"type", "gpu_managed"}});

  m.migrations_h2d = &reg.counter("ghum_migrations_total", {{"dir", "h2d"}});
  m.migrations_d2h = &reg.counter("ghum_migrations_total", {{"dir", "d2h"}});
  m.migrated_bytes_h2d =
      &reg.counter("ghum_migrated_bytes_total", {{"dir", "h2d"}});
  m.migrated_bytes_d2h =
      &reg.counter("ghum_migrated_bytes_total", {{"dir", "d2h"}});
  m.migration_batch_bytes_h2d =
      &reg.histogram("ghum_migration_batch_bytes", {{"dir", "h2d"}});
  m.migration_batch_bytes_d2h =
      &reg.histogram("ghum_migration_batch_bytes", {{"dir", "d2h"}});
  m.migration_latency_h2d =
      &reg.histogram("ghum_migration_latency_picos", {{"dir", "h2d"}});
  m.migration_latency_d2h =
      &reg.histogram("ghum_migration_latency_picos", {{"dir", "d2h"}});

  m.evictions = &reg.counter("ghum_evictions_total");
  m.evicted_bytes = &reg.counter("ghum_evicted_bytes_total");
  m.evictions_blocked = &reg.counter("ghum_evictions_blocked_total");
  m.cross_tenant_evictions = &reg.counter("ghum_cross_tenant_evictions_total");
  m.eviction_batch_bytes = &reg.histogram("ghum_eviction_batch_bytes");

  m.prefetches = &reg.counter("ghum_prefetches_total");
  m.prefetched_bytes = &reg.counter("ghum_prefetched_bytes_total");
  m.counter_notifications = &reg.counter("ghum_counter_notifications_total");
  m.host_registers = &reg.counter("ghum_host_registers_total");

  m.migration_retries = &reg.counter("ghum_migration_retries_total");
  m.migration_aborts = &reg.counter("ghum_migration_aborts_total");
  m.migration_retry_depth = &reg.histogram("ghum_migration_retry_attempts");
  m.alloc_denials = &reg.counter("ghum_alloc_denials_total");
  m.ecc_retirements = &reg.counter("ghum_ecc_retirements_total");
  m.ecc_retired_bytes = &reg.counter("ghum_ecc_retired_bytes_total");
  m.link_degrade_begins =
      &reg.counter("ghum_link_degrade_windows_total", {{"edge", "begin"}});
  m.link_degrade_ends =
      &reg.counter("ghum_link_degrade_windows_total", {{"edge", "end"}});
  m.gpu_resets = &reg.counter("ghum_gpu_resets_total");
  return m;
}

}  // namespace ghum::obs
