#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

/// \file metrics.hpp
/// Deterministic, zero-wall-clock metrics registry (DESIGN.md Section 9).
/// Three typed instruments — Counter, Gauge, Histogram — with static label
/// sets, owned by core::Machine and threaded through the layers that
/// previously counted ad hoc (TLB hit/miss, fault-service latencies,
/// migration batches, link utilization, eviction pressure, retry depth).
///
/// Everything is exact integer arithmetic: histograms use fixed
/// power-of-two buckets and a u64 running sum, so there is no
/// floating-point accumulation drift and two identical runs produce
/// bit-identical expositions (bench_observability asserts this).
///
/// Instruments are stable-addressed (deque storage): hot paths cache the
/// returned pointers once and do plain increments, never map lookups.

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::obs {

struct Label {
  std::string key;
  std::string value;
};

class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;

  friend class ghum::chk::Snapshotter;
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_ = v; }
  void add(std::int64_t delta) noexcept { value_ += delta; }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }

 private:
  std::int64_t value_ = 0;

  friend class ghum::chk::Snapshotter;
};

/// Fixed power-of-two-bucket histogram over u64 observations. Bucket i
/// holds values whose bit width is i, i.e. bucket 0 holds exactly 0 and
/// bucket i>=1 holds [2^(i-1), 2^i); the inclusive upper bound of bucket i
/// is 2^i - 1, which is what the exposition prints as "le".
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit widths 0..64

  void observe(std::uint64_t v) noexcept {
    ++buckets_[std::bit_width(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i];
  }
  /// Inclusive upper bound of bucket \p i (0, 1, 3, 7, ..., 2^64-1).
  [[nodiscard]] static std::uint64_t bucket_bound(std::size_t i) noexcept {
    return i >= 64 ? ~0ull : (1ull << i) - 1;
  }

  /// Adds \p o's observations to this histogram. Exact: bucket counts,
  /// count and sum add; min/max widen. The federation primitive — a
  /// merged histogram equals one that saw both observation streams.
  void merge(const Histogram& o) noexcept {
    if (o.count_ == 0) return;
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    if (count_ == 0 || o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
    count_ += o.count_;
    sum_ += o.sum_;
  }

  /// Upper bound of the bucket holding the \p percentile-th observation
  /// (0..100) — the SLO-latency readout of the fleet layer. Integer-exact
  /// and deterministic; with power-of-two buckets this is a bound, not an
  /// interpolation: the true percentile lies at or below the returned
  /// value. 0 when nothing has been observed.
  [[nodiscard]] std::uint64_t quantile_upper_bound(
      std::uint32_t percentile) const noexcept {
    if (count_ == 0) return 0;
    if (percentile > 100) percentile = 100;
    std::uint64_t rank = (count_ * percentile + 99) / 100;  // 1-based
    if (rank == 0) rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= rank) return bucket_bound(i);
    }
    return bucket_bound(kBuckets - 1);
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;

  friend class ghum::chk::Snapshotter;
};

/// Name+labels-keyed registry with deterministic (lexicographic) exposition
/// order. Re-registering an existing name+labels returns the same
/// instrument; re-registering it as a different type throws.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name, const std::vector<Label>& labels = {});
  Gauge& gauge(std::string_view name, const std::vector<Label>& labels = {});
  Histogram& histogram(std::string_view name,
                       const std::vector<Label>& labels = {});

  /// Prometheus text exposition (one # TYPE line per family, metrics in
  /// lexicographic key order; histogram buckets are cumulative with
  /// integer le bounds).
  [[nodiscard]] std::string to_prometheus() const;

  /// JSON snapshot of every instrument. Bit-identical across identical
  /// runs; bench_observability compares two runs' snapshots verbatim.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  /// Read-only view of one registered instrument: exactly one of the
  /// three instrument pointers is non-null.
  struct InstrumentView {
    std::string_view name;
    const std::vector<Label>* labels = nullptr;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  /// Visits every instrument in deterministic (lexicographic key) order —
  /// the naming-convention audit and the federation equality gates walk
  /// registries through this instead of parsing expositions.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, s] : slots_) {
      InstrumentView v;
      v.name = s.name;
      v.labels = &s.labels;
      switch (s.kind) {
        case Kind::kCounter: v.counter = &counters_[s.index]; break;
        case Kind::kGauge: v.gauge = &gauges_[s.index]; break;
        case Kind::kHistogram: v.histogram = &histograms_[s.index]; break;
      }
      fn(v);
    }
  }

  /// Folds every instrument of \p src into this registry under src's
  /// labels plus \p extra (the federation `node` label): counters and
  /// gauges add, histograms merge. Same name+labels from two sources
  /// accumulate — which is exactly what a label-less fleet sum wants.
  void merge_from(const MetricsRegistry& src, const std::vector<Label>& extra);

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Slot {
    Kind kind;
    std::size_t index;
    std::string name;
    std::vector<Label> labels;  // sorted by key
  };

  Slot& slot(std::string_view name, const std::vector<Label>& labels, Kind kind);

  std::map<std::string, Slot> slots_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;

  friend class ghum::chk::Snapshotter;
};

/// Cached instrument handles for the memory-system hot paths. Bound once by
/// core::Machine's constructor; the policy layers (os/, driver/, fault/)
/// reach them through Machine::metrics() and do pointer increments only.
///
/// Counters whose name mirrors an EventLog event type are incremented at
/// the exact code site that records the event, so bench_observability can
/// cross-validate them against independently derived Tracer summaries.
struct MemSysMetrics {
  // Faults (mirror the fault events).
  Counter* faults_cpu_first_touch = nullptr;
  Counter* faults_gpu_first_touch = nullptr;
  Counter* faults_gpu_managed = nullptr;  ///< kGpuManagedFault block migrations
  Counter* gpu_fault_requests = nullptr;  ///< every ManagedEngine::gpu_fault
  Counter* cpu_fault_requests = nullptr;  ///< every ManagedEngine::cpu_fault
  Counter* fallback_placements = nullptr;
  Counter* oom_events = nullptr;
  // Fault-service latency in simulated picoseconds, per fault type.
  Histogram* fault_latency_cpu_first_touch = nullptr;
  Histogram* fault_latency_gpu_first_touch = nullptr;
  Histogram* fault_latency_gpu_managed = nullptr;

  // Migrations (mirror kMigrationH2D/kMigrationD2H).
  Counter* migrations_h2d = nullptr;
  Counter* migrations_d2h = nullptr;
  Counter* migrated_bytes_h2d = nullptr;
  Counter* migrated_bytes_d2h = nullptr;
  Histogram* migration_batch_bytes_h2d = nullptr;
  Histogram* migration_batch_bytes_d2h = nullptr;
  Histogram* migration_latency_h2d = nullptr;
  Histogram* migration_latency_d2h = nullptr;

  // Eviction pressure (mirror kEviction).
  Counter* evictions = nullptr;
  Counter* evicted_bytes = nullptr;
  Counter* evictions_blocked = nullptr;
  Counter* cross_tenant_evictions = nullptr;
  Histogram* eviction_batch_bytes = nullptr;

  // Prefetch & access-counter engine.
  Counter* prefetches = nullptr;        ///< kExplicitPrefetch
  Counter* prefetched_bytes = nullptr;
  Counter* counter_notifications = nullptr;  ///< kCounterNotification
  Counter* host_registers = nullptr;         ///< kHostRegister

  // Fault injection & resilience (mirror the kFault*/kEcc* events).
  Counter* migration_retries = nullptr;
  Counter* migration_aborts = nullptr;
  Histogram* migration_retry_depth = nullptr;  ///< attempts until success/abort
  Counter* alloc_denials = nullptr;
  Counter* ecc_retirements = nullptr;
  Counter* ecc_retired_bytes = nullptr;
  Counter* link_degrade_begins = nullptr;
  Counter* link_degrade_ends = nullptr;
  Counter* gpu_resets = nullptr;  ///< kGpuReset channel resets
};

/// Creates every MemSysMetrics family in \p reg and returns the handles.
[[nodiscard]] MemSysMetrics bind_memsys_metrics(MetricsRegistry& reg);

}  // namespace ghum::obs
