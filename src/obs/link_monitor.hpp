#pragma once

#include <cstdint>
#include <vector>

#include "core/machine.hpp"
#include "sim/time.hpp"

/// \file link_monitor.hpp
/// Windowed NVLink-C2C utilization sampling (DESIGN.md Section 9). The
/// monitor attaches to the machine clock and, each fixed window of
/// *simulated* time, records the byte volume that crossed the link in each
/// direction plus its utilization against the Comm|Scope-measured sustained
/// bandwidth (C2CSpec). Utilization is an integer permille so samples are
/// exactly reproducible — no floating-point accumulation anywhere.
///
/// Attribution rule: when one clock advance crosses several window
/// boundaries, all bytes moved during that advance land in the first window
/// that closes; later windows covered by the same advance read zero. This
/// is a deterministic approximation (the simulator charges transfer time in
/// one lump, so finer attribution would be invented data).

namespace ghum::obs {

/// One closed utilization window [t0, t1).
struct LinkSample {
  sim::Picos t0 = 0;
  sim::Picos t1 = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint32_t h2d_util_permille = 0;  ///< vs sustained H2D peak, capped at 1000
  std::uint32_t d2h_util_permille = 0;  ///< vs sustained D2H peak, capped at 1000
};

class LinkMonitor {
 public:
  LinkMonitor(core::Machine& m, sim::Picos window);

  /// Attaches to the machine clock; windows open at the current sim time.
  void start();
  /// Detaches; a final partial window [win_start, now) is emitted when any
  /// time passed since the last boundary.
  void stop();
  /// Re-anchors a running monitor at the machine's *current* clock and
  /// byte totals without emitting a sample. Checkpoint restore jumps both
  /// without an observer-visible advance (chk::Snapshotter sets the clock
  /// directly), so without this the first post-restore window would open
  /// at t=0 and be charged the whole pre-checkpoint transfer history.
  void rebase();
  [[nodiscard]] bool running() const noexcept { return running_; }

  [[nodiscard]] sim::Picos window() const noexcept { return window_; }
  [[nodiscard]] const std::vector<LinkSample>& samples() const noexcept {
    return samples_;
  }

  /// Busiest closed window so far, by direction (permille).
  [[nodiscard]] std::uint32_t peak_h2d_permille() const noexcept { return peak_h2d_; }
  [[nodiscard]] std::uint32_t peak_d2h_permille() const noexcept { return peak_d2h_; }

  void clear();

 private:
  void on_advance(sim::Picos before, sim::Picos after);
  /// Closes the window [win_start_, t1), attributing all bytes moved since
  /// the previous close.
  void close_window(sim::Picos t1);
  [[nodiscard]] std::uint32_t permille(std::uint64_t bytes, std::uint64_t cap,
                                       sim::Picos t0, sim::Picos t1) const;

  core::Machine* m_;
  sim::Picos window_;
  bool running_ = false;
  std::size_t observer_id_ = 0;
  sim::Picos win_start_ = 0;
  sim::Picos next_boundary_ = 0;
  std::uint64_t last_h2d_ = 0;
  std::uint64_t last_d2h_ = 0;
  std::uint64_t cap_h2d_ = 1;  ///< byte capacity of one full window, H2D
  std::uint64_t cap_d2h_ = 1;
  std::uint32_t peak_h2d_ = 0;
  std::uint32_t peak_d2h_ = 0;
  std::vector<LinkSample> samples_;
};

}  // namespace ghum::obs
