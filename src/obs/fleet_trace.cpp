#include "obs/fleet_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace ghum::obs {

namespace {

/// Microsecond timestamp with fixed nanosecond precision — ostream
/// default formatting flips to scientific notation on long traces, which
/// Chrome's JSON parser rejects inside ts/dur.
std::string us(sim::Picos t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", sim::to_microseconds(t));
  return buf;
}

/// RFC 8259 string escaping. Labels carry user-supplied job names, so
/// this is load-bearing: quotes, backslashes and control characters must
/// not break the document (the hostile-name tests feed exactly those).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class TraceWriter {
 public:
  explicit TraceWriter(std::ostringstream& out) : out_(&out) {}

  std::ostringstream& next() {
    if (!first_) *out_ << ",\n";
    first_ = false;
    return *out_;
  }

 private:
  std::ostringstream* out_;
  bool first_ = true;
};

/// Lane assignment. The control plane is pid 1 (admission / alerts /
/// fabric threads); node i is pid 10+i with thread 0 for node-level
/// events and one thread per tenant.
struct Lane {
  int pid = 1;
  int tid = 1;
};

constexpr int kControlPid = 1;
constexpr int kAdmissionTid = 1;
constexpr int kAlertTid = 2;
constexpr int kFabricTid = 3;
constexpr int kNodePidBase = 10;

Lane lane_of(const FleetTraceEvent& e, const FleetTraceOptions& opts) {
  if (e.kind == FleetTraceKind::kTransfer ||
      e.kind == FleetTraceKind::kLinkFlap) {
    return {kControlPid, kFabricTid};
  }
  if (e.kind == FleetTraceKind::kAlertOpen ||
      e.kind == FleetTraceKind::kAlertClose) {
    return {kControlPid, kAlertTid};
  }
  if (e.node == FleetTraceEvent::kControlLane) {
    return {kControlPid, kAdmissionTid};
  }
  const int pid = kNodePidBase + static_cast<int>(e.node);
  const int tid = (opts.tenant_lanes && e.tenant != 0)
                      ? static_cast<int>(e.tenant)
                      : 0;
  return {pid, tid};
}

void append_metadata(TraceWriter& w, std::uint32_t machines,
                     const std::vector<FleetTraceEvent>& events,
                     const FleetTraceOptions& opts) {
  w.next() << R"({"name":"process_name","ph":"M","pid":1,"args":{"name":"fleet control"}})";
  w.next() << R"({"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"admission"}})";
  w.next() << R"({"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"alerts"}})";
  w.next() << R"({"name":"thread_name","ph":"M","pid":1,"tid":3,"args":{"name":"fabric"}})";
  for (std::uint32_t n = 0; n < machines; ++n) {
    w.next() << R"({"name":"process_name","ph":"M","pid":)"
             << (kNodePidBase + n) << R"(,"args":{"name":"node )" << n
             << R"("}})";
    w.next() << R"({"name":"thread_name","ph":"M","pid":)"
             << (kNodePidBase + n)
             << R"(,"tid":0,"args":{"name":"node events"}})";
  }
  if (opts.tenant_lanes) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> lanes;
    for (const FleetTraceEvent& e : events) {
      if (e.node != FleetTraceEvent::kControlLane && e.tenant != 0 &&
          e.node < machines) {
        lanes.emplace(e.node, e.tenant);
      }
    }
    for (const auto& [node, tenant] : lanes) {
      w.next() << R"({"name":"thread_name","ph":"M","pid":)"
               << (kNodePidBase + node) << R"(,"tid":)" << tenant
               << R"(,"args":{"name":"tenant )" << tenant << R"("}})";
    }
  }
}

void append_event(TraceWriter& w, const FleetTraceEvent& e, const Lane& lane) {
  std::string name{to_string(e.kind)};
  if (!e.label.empty()) {
    name += ' ';
    name += e.label;
  }
  auto& out = w.next();
  out << R"({"name":")" << json_escape(name) << R"(","ph":")"
      << (e.duration > 0 ? 'X' : 'i') << '"';
  if (e.duration <= 0) out << R"(,"s":"g")";
  out << R"(,"pid":)" << lane.pid << R"(,"tid":)" << lane.tid << R"(,"ts":)"
      << us(e.time);
  if (e.duration > 0) out << R"(,"dur":)" << us(e.duration);
  out << R"(,"args":{"span":)" << e.ctx.root_span << R"(,"origin":)"
      << static_cast<std::int64_t>(
             e.ctx.origin_node == TraceContext::kExternal
                 ? -1
                 : static_cast<std::int64_t>(e.ctx.origin_node))
      << R"(,"bytes":)" << e.bytes;
  if (e.job != ~0ull) out << R"(,"job":)" << e.job;
  if (e.peer != FleetTraceEvent::kControlLane) out << R"(,"peer":)" << e.peer;
  out << "}}";
}

/// s/t/f flow chains, one per root span with >= 2 member events. The
/// chain id is the (origin, span) pair's dense index — spans from
/// different origin nodes never collide even when their node-local ids
/// do. Members on different node lanes render as arrows crossing pid
/// boundaries: the cross-node causality the tentpole is about.
void append_flows(TraceWriter& w, const std::vector<const FleetTraceEvent*>& ordered,
                  const FleetTraceOptions& opts) {
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::vector<const FleetTraceEvent*>>
      chains;
  for (const FleetTraceEvent* e : ordered) {
    if (e->ctx.traced()) {
      chains[{e->ctx.origin_node, e->ctx.root_span}].push_back(e);
    }
  }
  std::uint64_t id = 0;
  for (const auto& [key, members] : chains) {
    ++id;
    if (members.size() < 2) continue;
    for (std::size_t i = 0; i < members.size(); ++i) {
      const FleetTraceEvent& e = *members[i];
      const Lane lane = lane_of(e, opts);
      const bool last = i + 1 == members.size();
      const char* ph = i == 0 ? "s" : (last ? "f" : "t");
      w.next() << R"({"name":"span","cat":"causal","ph":")" << ph
               << R"(","id":)" << id << R"(,"pid":)" << lane.pid
               << R"(,"tid":)" << lane.tid << R"(,"ts":)" << us(e.time)
               << (last ? R"(,"bp":"e"})" : "}");
    }
  }
}

}  // namespace

std::string export_fleet_trace(const std::vector<FleetTraceEvent>& events,
                               std::uint32_t machines,
                               const FleetTraceOptions& opts) {
  // Stable order by time: equal-time events keep their recording order,
  // which is itself deterministic.
  std::vector<const FleetTraceEvent*> ordered;
  ordered.reserve(events.size());
  for (const FleetTraceEvent& e : events) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FleetTraceEvent* a, const FleetTraceEvent* b) {
                     return a->time < b->time;
                   });

  std::ostringstream out;
  out << R"({"displayTimeUnit":"ms","traceEvents":[)" << "\n";
  TraceWriter w{out};
  append_metadata(w, machines, events, opts);
  for (const FleetTraceEvent* e : ordered) append_event(w, *e, lane_of(*e, opts));
  if (opts.flow_events) append_flows(w, ordered, opts);
  out << "\n]}\n";
  return out.str();
}

}  // namespace ghum::obs
