#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

/// \file fleet_trace.hpp
/// Cross-node causal tracing (DESIGN.md Section 13). A TraceContext —
/// the root span id plus the node that opened it — rides on every fabric
/// transfer and fleet control message, so a fault -> migration ->
/// evacuation -> re-placement chain keeps one causal identity across
/// machines. The fleet controller records FleetTraceEvents as the chain
/// unfolds; export_fleet_trace() renders them as a Chrome trace-event
/// document with one process lane per node, per-tenant threads, s/t/f
/// flow arrows that cross node (pid) boundaries, and link-flap duration
/// events. The output is validated by obs::json_valid in the tests and
/// benches that write it.

namespace ghum::obs {

/// Causal identity carried across node boundaries. span 0 = untraced.
/// origin kExternal = the span was opened by the control plane / outside
/// world rather than on a machine.
struct TraceContext {
  static constexpr std::uint32_t kExternal = ~0u;

  std::uint32_t root_span = 0;
  std::uint32_t origin_node = kExternal;

  [[nodiscard]] bool traced() const noexcept { return root_span != 0; }
};

enum class FleetTraceKind : std::uint8_t {
  kArrival,           ///< request reached the control plane
  kPlacement,         ///< placement command delivered to a node
  kJobFinish,         ///< replica completed on a node
  kJobFail,           ///< fleet job reached kFailed
  kNodeLoss,          ///< whole-node loss fired
  kNodeDegrade,       ///< node slowed down
  kEvacuation,        ///< live migration donor -> spare (duration, bytes)
  kReplacementRetry,  ///< backoff re-placement attempt scheduled
  kShed,              ///< admission control dropped a pending job
  kTransfer,          ///< bulk fabric message (duration, bytes)
  kAlertOpen,         ///< SLO alert fired
  kAlertClose,        ///< SLO alert resolved
  kLinkFlap,          ///< flap window (duration) on the fabric lane
  kNodeSuspect,       ///< heartbeat miss moved a node to suspected
  kNodeRejoin,        ///< suspected node answered in time; suspicion cleared
};

[[nodiscard]] constexpr std::string_view to_string(FleetTraceKind k) noexcept {
  switch (k) {
    case FleetTraceKind::kArrival: return "arrival";
    case FleetTraceKind::kPlacement: return "placement";
    case FleetTraceKind::kJobFinish: return "job finish";
    case FleetTraceKind::kJobFail: return "job fail";
    case FleetTraceKind::kNodeLoss: return "node loss";
    case FleetTraceKind::kNodeDegrade: return "node degrade";
    case FleetTraceKind::kEvacuation: return "evacuation";
    case FleetTraceKind::kReplacementRetry: return "replacement retry";
    case FleetTraceKind::kShed: return "shed";
    case FleetTraceKind::kTransfer: return "transfer";
    case FleetTraceKind::kAlertOpen: return "alert open";
    case FleetTraceKind::kAlertClose: return "alert close";
    case FleetTraceKind::kLinkFlap: return "link flap";
    case FleetTraceKind::kNodeSuspect: return "node suspect";
    case FleetTraceKind::kNodeRejoin: return "node rejoin";
  }
  return "?";
}

/// One record in the fleet event stream. node selects the process lane
/// (kControlLane = the fleet-control process); tenant selects the thread
/// within a node lane (0 = the node-events thread). A non-zero ctx makes
/// the event a member of that root span's flow chain.
struct FleetTraceEvent {
  static constexpr std::uint32_t kControlLane = ~0u;

  sim::Picos time = 0;
  sim::Picos duration = 0;  ///< > 0 renders as a Chrome "X" duration event
  FleetTraceKind kind = FleetTraceKind::kArrival;
  std::uint32_t node = kControlLane;
  std::uint32_t peer = kControlLane;  ///< transfer/evacuation destination
  std::uint32_t tenant = 0;
  std::uint64_t job = ~0ull;  ///< fleet job id (~0 = none)
  TraceContext ctx;
  std::uint64_t bytes = 0;
  std::string label;  ///< extra name detail (may be user-supplied; escaped)
};

struct FleetTraceOptions {
  bool flow_events = true;   ///< emit s/t/f chains per root span
  bool tenant_lanes = true;  ///< thread per tenant inside each node lane
};

/// Renders \p events (any order; stable-sorted by time internally) for
/// a fleet of \p machines node lanes. Strictly valid JSON regardless of
/// label contents.
[[nodiscard]] std::string export_fleet_trace(
    const std::vector<FleetTraceEvent>& events, std::uint32_t machines,
    const FleetTraceOptions& opts = {});

}  // namespace ghum::obs
