#include "benchsupport/report.hpp"

#include <cstdio>

namespace ghum::benchsupport {

void print_figure_header(std::string_view figure, std::string_view caption,
                         std::string_view paper_expectation) {
  std::printf("\n## %.*s — %.*s\n", static_cast<int>(figure.size()), figure.data(),
              static_cast<int>(caption.size()), caption.data());
  std::printf("paper: %.*s\n", static_cast<int>(paper_expectation.size()),
              paper_expectation.data());
}

void print_report_table_header() {
  std::printf("%-12s %-9s %8s %9s %10s %10s %10s %10s %12s\n", "app", "mode",
              "ctx_ms", "alloc_ms", "cpuinit_ms", "gpuinit_ms", "compute_ms",
              "dealloc_ms", "total_ms");
}

void print_report_row(const apps::AppReport& r) {
  std::printf("%-12s %-9s %8.1f %9.3f %10.3f %10.3f %10.3f %10.3f %12.3f\n",
              r.app.c_str(), std::string{to_string(r.mode)}.c_str(),
              r.times.context_s * 1e3, r.times.alloc_s * 1e3,
              r.times.cpu_init_s * 1e3, r.times.gpu_init_s * 1e3,
              r.times.compute_s * 1e3, r.times.dealloc_s * 1e3,
              r.times.reported_total_s() * 1e3);
}

double speedup(double baseline_s, double value_s) {
  return value_s > 0 ? baseline_s / value_s : 0.0;
}

void print_series(std::string_view name, const std::vector<double>& xs,
                  const std::vector<double>& ys, std::string_view x_label,
                  std::string_view y_label) {
  std::printf("data\tseries=%.*s\t%.*s\t%.*s\n", static_cast<int>(name.size()),
              name.data(), static_cast<int>(x_label.size()), x_label.data(),
              static_cast<int>(y_label.size()), y_label.data());
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    std::printf("data\t%.*s\t%g\t%g\n", static_cast<int>(name.size()), name.data(),
                xs[i], ys[i]);
  }
}

void print_metric(std::string_view name, double value, std::string_view unit) {
  std::printf("metric\t%.*s\t%g\t%.*s\n", static_cast<int>(name.size()), name.data(),
              value, static_cast<int>(unit.size()), unit.data());
}

}  // namespace ghum::benchsupport
