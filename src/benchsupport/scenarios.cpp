#include "benchsupport/scenarios.hpp"

#include <new>

#include "runtime/runtime.hpp"

namespace ghum::benchsupport {

core::SystemConfig rodinia_config(std::uint64_t page_size, bool access_counters) {
  core::SystemConfig cfg;
  cfg.system_page_size = page_size;
  cfg.hbm_capacity = 192ull << 20;
  cfg.ddr_capacity = 960ull << 20;
  cfg.gpu_driver_baseline = 1ull << 20;
  cfg.access_counter_migration = access_counters;
  cfg.name = "rodinia";
  return cfg;
}

core::SystemConfig qv_config(std::uint64_t page_size, bool access_counters) {
  core::SystemConfig cfg;
  cfg.system_page_size = page_size;
  cfg.hbm_capacity = 24ull << 20;
  cfg.ddr_capacity = 120ull << 20;
  cfg.gpu_driver_baseline = 1ull << 20;
  cfg.access_counter_migration = access_counters;
  cfg.name = "qv";
  return cfg;
}

core::SystemConfig full_scale() {
  core::SystemConfig cfg;
  cfg.system_page_size = pagetable::kSystemPage64K;
  cfg.hbm_capacity = 96ull << 30;
  cfg.ddr_capacity = 480ull << 30;
  cfg.gpu_driver_baseline = 600ull << 20;
  cfg.access_counter_migration = false;
  cfg.materialize_backing = false;
  cfg.event_log = false;
  cfg.name = "full-scale";
  return cfg;
}

apps::HotspotConfig hotspot_config(Scale s) {
  apps::HotspotConfig cfg;
  if (s == Scale::kSmall) {
    cfg.rows = cfg.cols = 192;
    cfg.iterations = 4;
  }
  return cfg;
}

apps::PathfinderConfig pathfinder_config(Scale s) {
  apps::PathfinderConfig cfg;
  if (s == Scale::kSmall) {
    cfg.cols = 1024;
    cfg.rows = 64;
  }
  return cfg;
}

apps::NeedleConfig needle_config(Scale s) {
  apps::NeedleConfig cfg;
  if (s == Scale::kSmall) cfg.n = 256;
  return cfg;
}

apps::BfsConfig bfs_config(Scale s) {
  apps::BfsConfig cfg;
  if (s == Scale::kSmall) cfg.nodes = 16384;
  return cfg;
}

apps::SradConfig srad_config(Scale s) {
  apps::SradConfig cfg;
  if (s == Scale::kSmall) {
    cfg.rows = cfg.cols = 160;
    cfg.iterations = 6;
  }
  return cfg;
}

apps::QvConfig qv_sim_config(Scale s, std::uint32_t qubits) {
  apps::QvConfig cfg;
  cfg.qubits = qubits;
  cfg.depth = s == Scale::kSmall ? 2 : 3;
  return cfg;
}

const std::vector<NamedApp>& rodinia_apps() {
  static const std::vector<NamedApp> apps_v = {
      {"bfs",
       [](runtime::Runtime& rt, apps::MemMode m, Scale s) {
         return apps::run_bfs(rt, m, bfs_config(s));
       }},
      {"hotspot",
       [](runtime::Runtime& rt, apps::MemMode m, Scale s) {
         return apps::run_hotspot(rt, m, hotspot_config(s));
       }},
      {"needle",
       [](runtime::Runtime& rt, apps::MemMode m, Scale s) {
         return apps::run_needle(rt, m, needle_config(s));
       }},
      {"pathfinder",
       [](runtime::Runtime& rt, apps::MemMode m, Scale s) {
         return apps::run_pathfinder(rt, m, pathfinder_config(s));
       }},
      {"srad",
       [](runtime::Runtime& rt, apps::MemMode m, Scale s) {
         return apps::run_srad(rt, m, srad_config(s));
       }},
  };
  return apps_v;
}

std::optional<core::Buffer> reserve_for_oversubscription(core::System& sys,
                                                         std::uint64_t peak_gpu_bytes,
                                                         double ratio) {
  if (ratio <= 1.0) return std::nullopt;
  // Target free GPU memory M_gpu = M_peak / R_oversub (Section 3.2).
  const auto target_free =
      static_cast<std::uint64_t>(static_cast<double>(peak_gpu_bytes) / ratio);
  const std::uint64_t free_now = sys.gpu_free_bytes();
  if (free_now <= target_free) return std::nullopt;  // already constrained
  return sys.gpu_malloc(free_now - target_free, "oversub.reserve");
}

std::uint64_t measure_peak_gpu(
    const core::SystemConfig& cfg,
    const std::function<apps::AppReport(runtime::Runtime&)>& run) {
  core::SystemConfig probe = cfg;
  probe.profiler_enabled = true;
  core::System sys{probe};
  runtime::Runtime rt{sys};
  (void)run(rt);
  // Peak application usage excludes the driver baseline.
  const std::uint64_t peak = sys.profiler().peak_gpu_used();
  const std::uint64_t base = cfg.gpu_driver_baseline;
  return peak > base ? peak - base : 0;
}

GuardedResult guarded_run(const std::function<apps::AppReport()>& run) {
  GuardedResult r;
  try {
    r.report = run();
  } catch (const StatusError& e) {
    r.status = e.status();
  } catch (const std::bad_alloc&) {
    r.status = Status::kErrorMemoryAllocation;
  }
  return r;
}

}  // namespace ghum::benchsupport
