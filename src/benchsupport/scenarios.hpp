#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "apps/app_common.hpp"
#include "apps/bfs.hpp"
#include "apps/hotspot.hpp"
#include "apps/needle.hpp"
#include "apps/pathfinder.hpp"
#include "apps/qvsim.hpp"
#include "apps/srad.hpp"
#include "core/system.hpp"

/// \file scenarios.hpp
/// Standard experiment setups shared by the bench binaries: machine
/// configurations matching the paper's testbed (Section 3, scaled per
/// DESIGN.md Section 4), per-app default problem sizes, and the simulated
/// memory-oversubscription rig of Section 3.2.

namespace ghum::benchsupport {

/// Problem-size tier: tests run kSmall, benches run kDefault.
enum class Scale { kSmall, kDefault };

/// Machine configuration for the Rodinia-app experiments:
/// HBM 192 MiB / DDR 960 MiB (the paper's 96/480 GB scaled 512x).
[[nodiscard]] core::SystemConfig rodinia_config(std::uint64_t page_size,
                                                bool access_counters);

/// Machine configuration for the Quantum Volume experiments: HBM 24 MiB so
/// the fits/oversubscribed boundary lands at 20/21 qubits, mirroring the
/// paper's 33/34 (DESIGN.md Section 4).
[[nodiscard]] core::SystemConfig qv_config(std::uint64_t page_size,
                                           bool access_counters);

/// The paper's actual testbed, unscaled: 96 GB HBM3 + 480 GB LPDDR5X
/// (Section 3), 64 KiB system pages. Only viable with the extent-based
/// page tables — a dense allocation here is millions of pages, so the
/// preset turns off VMA backing materialization (no host byte images; the
/// driving bench touches pages through resolve/commit, not Span I/O) and
/// the event log (hundreds of millions of events would dominate RSS).
[[nodiscard]] core::SystemConfig full_scale();

/// App problem sizes per scale tier.
[[nodiscard]] apps::HotspotConfig hotspot_config(Scale s);
[[nodiscard]] apps::PathfinderConfig pathfinder_config(Scale s);
[[nodiscard]] apps::NeedleConfig needle_config(Scale s);
[[nodiscard]] apps::BfsConfig bfs_config(Scale s);
[[nodiscard]] apps::SradConfig srad_config(Scale s);
[[nodiscard]] apps::QvConfig qv_sim_config(Scale s, std::uint32_t qubits);

/// All five Rodinia-derived apps, dispatchable by name.
struct NamedApp {
  std::string name;
  std::function<apps::AppReport(runtime::Runtime&, apps::MemMode, Scale)> run;
};
[[nodiscard]] const std::vector<NamedApp>& rodinia_apps();

/// Simulated-oversubscription rig (Section 3.2): a dummy cudaMalloc
/// allocation shrinks free GPU memory so that the application's peak GPU
/// footprint oversubscribes what is left by \p ratio
/// (R_oversub = M_peak / M_gpu). Returns the reserve buffer (free it after
/// the run) or nullopt when ratio <= 1 needs no reservation.
[[nodiscard]] std::optional<core::Buffer> reserve_for_oversubscription(
    core::System& sys, std::uint64_t peak_gpu_bytes, double ratio);

/// Measures an app's peak GPU usage with the profiler in a throwaway
/// in-memory run (the paper's M_peak measurement).
[[nodiscard]] std::uint64_t measure_peak_gpu(
    const core::SystemConfig& cfg,
    const std::function<apps::AppReport(runtime::Runtime&)>& run);

/// Outcome of a run guarded against memory exhaustion: either a report, or
/// the ghum::Status the run died with (out of memory, allocation failure).
struct GuardedResult {
  Status status = Status::kSuccess;
  apps::AppReport report{};
  [[nodiscard]] bool ok() const noexcept { return status == Status::kSuccess; }
};

/// Runs \p run, converting memory-exhaustion escapes (ghum::StatusError,
/// std::bad_alloc) into a Status — so sweep benches print a
/// "FAILED: out of memory" row and keep going instead of dying mid-table.
[[nodiscard]] GuardedResult guarded_run(const std::function<apps::AppReport()>& run);

}  // namespace ghum::benchsupport
