#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "apps/app_common.hpp"

/// \file report.hpp
/// Plain-text table/series printers used by every bench binary. Benches
/// print (a) a human-readable table mirroring the paper's figure, and
/// (b) machine-readable TSV blocks (prefixed "data\t") for replotting.

namespace ghum::benchsupport {

/// Prints "## <figure id> — <caption>" plus a paper-expectation note.
void print_figure_header(std::string_view figure, std::string_view caption,
                         std::string_view paper_expectation);

/// One row of an app-report table (mode, per-phase seconds, total).
void print_report_row(const apps::AppReport& report);
void print_report_table_header();

/// speedup = baseline / value (paper Figure 3 convention: higher is
/// better, relative to the explicit version).
[[nodiscard]] double speedup(double baseline_s, double value_s);

/// Prints a named numeric series as one TSV block row per element.
void print_series(std::string_view name, const std::vector<double>& xs,
                  const std::vector<double>& ys, std::string_view x_label,
                  std::string_view y_label);

/// Key-value result line benches use for single numbers.
void print_metric(std::string_view name, double value, std::string_view unit);

}  // namespace ghum::benchsupport
