#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chk/io.hpp"
#include "core/system.hpp"

/// \file snapshot.hpp
/// Deterministic checkpoint/restore of one simulated Grace Hopper node
/// (DESIGN.md Section 10). Snapshotter serializes the complete simulated
/// machine state — page tables and residency runs, physical-frame
/// accounting and retired ECC frames, TLB contents, driver-engine state
/// (managed LRU, migration byte counters, access-counter maps), fault
/// injector RNG and schedule cursors, the metrics registry, per-tenant
/// attribution, the event log, and every VMA's real backing bytes — into a
/// versioned, digest-stamped blob (chk/io.hpp describes the header).
///
/// restore() reconstructs a fresh core::System whose *continued* execution
/// is bit-identical to the uninterrupted run: same EventLog::digest(), same
/// simulated end time (tests/test_chk.cpp and bench_recovery enforce this
/// per app x memory mode). Passing the original System as \p donor lets the
/// restored machine adopt the donor's VMA backing arrays, so host pointers
/// held by live application coroutines stay valid across the swap
/// (runtime::Runtime::rebind switches the coroutine's Runtime onto the
/// restored System).
///
/// Not captured (observation-only; they never influence simulator
/// decisions or the event digest): memory-profiler samples, link-monitor
/// windows, and the WorkloadAnalysis kernel-record history. A restored run
/// restarts those series empty.

namespace ghum::chk {

/// A serialized machine checkpoint (header + payload, see io.hpp).
using Blob = std::vector<std::uint8_t>;

class Snapshotter {
 public:
  /// Serializes \p sys into a fresh blob. Must be called between phases:
  /// an open kernel/host phase holds un-serializable mid-flight state, so
  /// snapshotting there throws StatusError{kErrorInvalidValue}. \p version
  /// selects the blob format (io.hpp lists the history) — writing the
  /// legacy version 1 exists for compatibility tests and throws when the
  /// machine holds state version 1 cannot express (non-materialized VMA
  /// backing).
  [[nodiscard]] static Blob snapshot(core::System& sys,
                                     std::uint32_t version = kFormatVersion);

  /// Validates the blob (magic, version, payload digest) and reconstructs
  /// a fresh System continuing from the checkpoint. Accepts every format
  /// version in [kMinFormatVersion, kFormatVersion] — legacy version-1
  /// blobs (per-page page tables) load into the extent representation,
  /// which canonicalizes them by coalescing. When \p donor is the
  /// System the blob was taken from (or a descendant), matching VMAs adopt
  /// the donor's backing arrays — application-held host pointers survive —
  /// and the fault injector's ECC/reset schedule cursors never rewind
  /// below the donor's (a restarted job must not deterministically
  /// re-crash on an already-consumed scheduled fault). Throws
  /// StatusError{kErrorInvalidValue} on a malformed or corrupt blob.
  [[nodiscard]] static std::unique_ptr<core::System> restore(
      const Blob& blob, core::System* donor = nullptr);

  /// FNV-1a fingerprint of the state a snapshot taken now would carry
  /// (identical machines => identical digests). Same phase restrictions
  /// as snapshot().
  [[nodiscard]] static std::uint64_t state_digest(core::System& sys);

  /// The payload digest stamped in \p blob's header. Throws
  /// StatusError{kErrorInvalidValue} when the header is malformed.
  [[nodiscard]] static std::uint64_t blob_digest(const Blob& blob);

  /// End-to-end integrity check: recomputes the payload digest and
  /// compares it to the header stamp. False on any mismatch or malformed
  /// header — the receiver-side verification a migration target runs
  /// before restoring a blob that crossed a lossy fabric (never throws).
  [[nodiscard]] static bool verify(const Blob& blob) noexcept;

 private:
  static void save_config(const core::SystemConfig& cfg, Writer& w,
                          std::uint32_t version);
  [[nodiscard]] static core::SystemConfig load_config(Reader& r,
                                                      std::uint32_t version);
  static void save_state(core::System& sys, Writer& w, std::uint32_t version);
  static void load_state(core::System& sys, Reader& r, std::uint32_t version,
                         core::System* donor);
};

}  // namespace ghum::chk
