#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

/// \file io.hpp
/// Dependency-free little-endian serialization primitives for the
/// checkpoint subsystem (DESIGN.md Section 10). The blob format is a
/// versioned header followed by a flat payload:
///
///   offset 0  : u64 magic "GHUMCHK\0" (little-endian constant)
///   offset 8  : u32 format version
///   offset 12 : u64 FNV-1a digest of the payload bytes
///   offset 20 : u64 payload size in bytes
///   offset 28 : payload
///
/// Fixed-width fields are written explicitly (no struct memcpy) so the
/// format is identical across compilers; Reader throws StatusError-free
/// std::out_of_range on truncation so corruption is detected before any
/// machine state is mutated.

namespace ghum::chk {

inline constexpr std::uint64_t kMagic = 0x004b'4843'4d55'4847ull;  // "GHUMCHK\0"

/// Current blob format. Version history:
///  - 1: per-page page-table entries; VMA backing bytes unconditional.
///  - 2: page tables serialized as extents (first_vpn, pages, pte) — at
///       full-scale capacities the per-page encoding was larger than the
///       machine it described; VMAs carry a has-data flag (non-materialized
///       backing, SystemConfig::materialize_backing=false, has no bytes to
///       write); config gains materialize_backing after the name field.
/// restore() accepts both; snapshot() can be asked for version 1 as long as
/// the machine is representable in it (materialized backing only).
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::uint32_t kMinFormatVersion = 1;

/// FNV-1a over a byte range — the same hash family EventLog::digest uses,
/// applied to the serialized payload so blob integrity and state identity
/// share one fingerprint.
[[nodiscard]] inline std::uint64_t fnv1a(const std::uint8_t* data,
                                         std::size_t size) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void bytes(const std::uint8_t* data, std::size_t size) {
    u64(size);
    buf_.insert(buf_.end(), data, data + size);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_++]} << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_++]} << (8 * i);
    return v;
  }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  [[nodiscard]] bool boolean() { return u8() != 0; }
  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s{reinterpret_cast<const char*>(data_ + pos_), n};
    pos_ += n;
    return s;
  }
  /// Reads a length-prefixed byte run into \p dst (which must hold the
  /// serialized length exactly — a size mismatch means the blob does not
  /// describe this allocation).
  void bytes_into(std::uint8_t* dst, std::size_t expect) {
    const std::uint64_t n = u64();
    if (n != expect) throw std::out_of_range{"chk: byte-run length mismatch"};
    need(n);
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  void need(std::uint64_t n) const {
    if (size_ - pos_ < n) throw std::out_of_range{"chk: truncated checkpoint blob"};
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace ghum::chk
